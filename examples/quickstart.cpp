// Quickstart: the smallest complete use of the library.
//
// Builds a scale-12 Graph 500 Kronecker graph across 4 simulated ranks,
// runs one single-source shortest path with the fully-optimized
// delta-stepping engine, validates the result with the official checks and
// prints a short report.
//
//   ./quickstart [--scale N] [--ranks P] [--root V]
#include <cstdlib>
#include <iostream>

#include "core/delta_stepping.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);

  graph::KroneckerParams params;
  params.scale = static_cast<int>(options.get_int("scale", 12));
  params.edgefactor = static_cast<int>(options.get_int("edgefactor", 16));
  const int ranks = static_cast<int>(options.get_int("ranks", 4));
  const auto root = static_cast<graph::VertexId>(options.get_int("root", 1));

  std::cout << "Building scale-" << params.scale << " Kronecker graph on "
            << ranks << " simulated ranks...\n";

  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    // 1. Construct the distributed graph (each rank generates its slice).
    const graph::DistGraph g = graph::build_kronecker(comm, params);

    // 2. Run SSSP with all optimizations enabled (the defaults).
    core::SsspStats stats;
    const core::SsspResult mine =
        core::delta_stepping(comm, g, root, core::SsspConfig{}, &stats);

    // 3. Validate with the official Graph 500 result checks.
    const core::ValidationReport report =
        core::validate_sssp(comm, g, root, mine);

    if (comm.rank() == 0) {
      util::Table table({"metric", "value"});
      table.row().add("vertices").add(static_cast<std::uint64_t>(
          g.num_vertices));
      table.row().add("input edges").add(g.num_input_edges);
      table.row().add("root").add(static_cast<std::uint64_t>(root));
      table.row().add("reachable vertices").add(report.reachable);
      table.row().add("validation").add(report.ok ? "PASS" : "FAIL");
      table.row().add("SSSP time (s)").add(stats.total_seconds, 4);
      table.row().add("buckets processed").add(stats.buckets_processed);
      table.row().add("relaxations applied (rank 0)").add(stats.relax_applied);
      table.print(std::cout, "quickstart");
      if (!report.ok) {
        for (const auto& e : report.errors) std::cout << "  " << e << "\n";
      }
    }
    if (!report.ok) throw std::runtime_error("validation failed");
  });

  std::cout << "Done.\n";
  return EXIT_SUCCESS;
}
