// Hub structure analysis: why hub caching works on Graph 500 graphs.
//
// Characterizes a Kronecker graph the way the paper's motivation section
// does: degree distribution (log2 histogram), the traffic share of the
// top-k vertices, the giant-component structure, and the measured hub
// filter rate of an actual SSSP — the chain of facts that justifies
// replicating a few thousand vertices on 40 million cores.
//
//   ./hub_analysis [--scale 14] [--ranks 4]
#include <cstdlib>
#include <iostream>

#include "core/components.hpp"
#include "core/delta_stepping.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  graph::KroneckerParams params;
  params.scale = static_cast<int>(options.get_int("scale", 14));
  const int ranks = static_cast<int>(options.get_int("ranks", 4));

  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    graph::BuildOptions build;
    build.hub_count = 1024;
    const graph::DistGraph g = graph::build_kronecker(comm, params, build);

    // --- degree distribution -------------------------------------------
    // Merge the per-rank histograms through fixed-width buckets.
    std::vector<std::uint64_t> buckets(64, 0);
    const auto& local = g.degree_hist.buckets();
    for (std::size_t i = 0; i < local.size() && i < 64; ++i) {
      buckets[i] = local[i];
    }
    const auto merged = comm.allreduce_vec<std::uint64_t>(
        buckets, [](std::uint64_t a, std::uint64_t b) { return a + b; });

    // --- hub traffic share ----------------------------------------------
    // Fraction of directed edges pointing at the top-k hubs.
    std::vector<double> shares;
    const std::vector<std::size_t> ks = {16, 64, 256, 1024};
    for (const auto k : ks) {
      std::uint64_t covered = 0;
      for (std::size_t i = 0; i < std::min(k, g.hubs.size()); ++i) {
        covered += g.hub_degrees[i];
      }
      shares.push_back(static_cast<double>(covered) /
                       static_cast<double>(g.num_directed_edges));
    }

    // --- components ------------------------------------------------------
    const auto labels = core::connected_components(comm, g);
    const auto components = core::summarize_components(comm, g, labels);

    // --- measured filter rate -------------------------------------------
    core::SsspStats stats;
    (void)core::delta_stepping(comm, g, 1, core::SsspConfig{}, &stats);
    const auto generated = comm.allreduce_sum(stats.relax_generated);
    const auto filtered = comm.allreduce_sum(stats.filtered_hub);

    if (comm.rank() == 0) {
      std::cout << "Scale-" << params.scale << " Kronecker graph: "
                << g.num_vertices << " vertices, " << g.num_directed_edges
                << " directed edges.\n\n";

      std::cout << "Degree distribution (log2 buckets):\n";
      util::Log2Histogram hist;
      for (std::size_t i = 0; i < merged.size(); ++i) {
        if (merged[i] > 0) {
          hist.add(i == 0 ? 0 : (std::uint64_t{1} << i), merged[i]);
        }
      }
      std::cout << hist.to_string() << '\n';

      util::Table share_table({"top-k vertices", "share of all edges"});
      for (std::size_t i = 0; i < ks.size(); ++i) {
        share_table.row()
            .add(static_cast<std::uint64_t>(ks[i]))
            .add(shares[i], 3);
      }
      share_table.print(std::cout, "hub edge coverage");

      std::cout << '\n';
      util::Table comp_table({"structure metric", "value"});
      comp_table.row().add("components").add(components.num_components);
      comp_table.row().add("largest component").add(components.largest_size);
      comp_table.row()
          .add("largest fraction")
          .add(static_cast<double>(components.largest_size) /
                   static_cast<double>(g.num_vertices),
               3);
      comp_table.row().add("isolated vertices").add(
          components.isolated_vertices);
      comp_table.print(std::cout, "connectivity");

      std::cout << "\nMeasured SSSP hub filter: " << filtered << " of "
                << generated << " candidate relaxations ("
                << 100.0 * static_cast<double>(filtered) /
                       static_cast<double>(std::max<std::uint64_t>(1,
                                                                   generated))
                << "%) dropped before the wire.\n";
      std::cout << "\nReading: a ~0.1% vertex prefix covers a large share "
                   "of all edges — replicating\nonly those hubs filters a "
                   "disproportionate share of relaxation traffic.\n";
    }
  });
  return EXIT_SUCCESS;
}
