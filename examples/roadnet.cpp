// Road-network scenario: shortest travel times on a city-like grid.
//
// The paper's introduction motivates SSSP with route planning; this example
// shows the same engine on a large-diameter, low-degree graph — the
// opposite regime from Kronecker — computing door-to-door routes:
//
//   * builds an R x C grid (road segments with random travel times),
//   * runs SSSP from a "depot" corner,
//   * answers a few point-to-point queries by walking the parent tree,
//   * compares delta-stepping's round count against Bellman-Ford to show
//     why buckets matter when the diameter is large.
//
//   ./roadnet [--rows 64] [--cols 64] [--ranks 4]
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/bellman_ford.hpp"
#include "core/delta_stepping.hpp"
#include "core/remote.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

namespace {

using namespace g500;

/// Follow parent pointers from `target` back to the root, fetching remote
/// parents as needed.  Returns the route, target first.
std::vector<graph::VertexId> trace_route(simmpi::Comm& comm,
                                         const graph::DistGraph& g,
                                         const core::SsspResult& mine,
                                         graph::VertexId root,
                                         graph::VertexId target) {
  // Distributed pointer chase: every rank participates in each fetch.
  std::vector<graph::VertexId> route;
  graph::VertexId cursor = target;
  for (std::uint64_t hop = 0; hop <= g.num_vertices; ++hop) {
    route.push_back(cursor);
    if (cursor == root) return route;
    const auto next =
        core::fetch_values(comm, g.part, {cursor}, mine.parent);
    if (next[0] == graph::kNoVertex) {
      route.clear();  // unreachable
      return route;
    }
    cursor = next[0];
  }
  route.clear();  // cycle guard: should be impossible on validated output
  return route;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const auto rows = static_cast<graph::VertexId>(options.get_int("rows", 64));
  const auto cols = static_cast<graph::VertexId>(options.get_int("cols", 64));
  const int ranks = static_cast<int>(options.get_int("ranks", 4));

  const graph::EdgeList city = graph::grid_graph(rows, cols, 2024);
  const graph::VertexId depot = 0;  // north-west corner
  std::cout << "Road network: " << rows << "x" << cols << " grid, "
            << city.num_edges() << " road segments, depot at corner 0\n\n";

  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_distributed(
        comm, graph::slice_for_rank(city, comm.rank(), comm.size()),
        city.num_vertices);

    core::SsspStats ds_stats;
    const core::SsspResult routes =
        core::delta_stepping(comm, g, depot, {}, &ds_stats);
    const auto verdict = core::validate_sssp(comm, g, depot, routes);

    core::SsspStats bf_stats;
    (void)core::bellman_ford(comm, g, depot, {}, &bf_stats);

    // A few destinations across the map.
    const std::vector<graph::VertexId> destinations = {
        cols - 1,                    // north-east corner
        (rows - 1) * cols,           // south-west corner
        rows * cols - 1,             // south-east corner
        (rows / 2) * cols + cols / 2 // city centre
    };
    const auto dists =
        core::fetch_values(comm, g.part, destinations, routes.dist);

    std::vector<std::size_t> route_hops;
    for (const auto d : destinations) {
      route_hops.push_back(trace_route(comm, g, routes, depot, d).size());
    }

    const auto ds_rounds = ds_stats.light_iterations;
    const auto bf_rounds = bf_stats.light_iterations;
    const auto ds_work = comm.allreduce_sum(ds_stats.relax_generated);
    const auto bf_work = comm.allreduce_sum(bf_stats.relax_generated);

    if (comm.rank() == 0) {
      util::Table table({"destination", "travel time", "route hops"});
      const char* names[] = {"NE corner", "SW corner", "SE corner", "centre"};
      for (std::size_t i = 0; i < destinations.size(); ++i) {
        table.row()
            .add(names[i])
            .add(static_cast<double>(dists[i]), 3)
            .add(static_cast<std::uint64_t>(route_hops[i]));
      }
      table.print(std::cout, "routes from the depot");
      std::cout << "\nvalidation: " << (verdict.ok ? "PASS" : "FAIL")
                << ", reachable intersections: " << verdict.reachable << "\n";
      // On large-diameter graphs Bellman-Ford needs fewer global rounds
      // (one per hop level) but re-relaxes settled intersections as better
      // paths arrive; delta-stepping's buckets trade more, cheaper rounds
      // for near-minimal total work.
      std::cout << "delta-stepping: " << ds_work << " relaxations in "
                << ds_rounds << " rounds; bellman-ford: " << bf_work
                << " relaxations in " << bf_rounds << " rounds (diameter "
                << rows + cols - 2 << " hops)\n";
    }
    if (!verdict.ok) throw std::runtime_error("validation failed");
  });
  return EXIT_SUCCESS;
}
