// Full Graph 500 SSSP benchmark CLI — the reproduction's equivalent of the
// official reference runner.
//
//   ./graph500_runner --scale 16 --ranks 8 --roots 64 [--edgefactor 16]
//                     [--algorithm delta|bf] [--delta 0.03]
//                     [--no-validate] [--seed1 2 --seed2 3]
//
// Prints the construction summary, per-root timings, the Graph500-style
// summary block (harmonic-mean TEPS) and the aggregated execution
// statistics.
#include <cstdlib>
#include <iostream>

#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "graph/io.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  if (options.has("help")) {
    std::cout << "usage: " << options.program()
              << " [--scale N] [--edgefactor K] [--ranks P] [--roots R]\n"
                 "       [--algorithm delta|bf|bfs] [--delta D] "
                 "[--no-validate]\n"
                 "       [--seed1 S] [--seed2 S] [--hubs H]\n"
                 "       [--input FILE.tsv|FILE.bin] [--export-graph FILE]\n";
    return EXIT_SUCCESS;
  }

  graph::KroneckerParams params;
  params.scale = static_cast<int>(options.get_int("scale", 14));
  params.edgefactor = static_cast<int>(options.get_int("edgefactor", 16));
  params.seed1 = static_cast<std::uint64_t>(options.get_int("seed1", 2));
  params.seed2 = static_cast<std::uint64_t>(options.get_int("seed2", 3));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));

  core::RunnerOptions run_opts;
  run_opts.num_roots = static_cast<int>(options.get_int("roots", 16));
  run_opts.validate = !options.get_bool("no-validate", false);
  run_opts.config.delta = options.get_double("delta", 0.0);
  const std::string algorithm = options.get("algorithm", "delta");
  if (algorithm == "bf") {
    run_opts.algorithm = core::Algorithm::kBellmanFord;
  } else if (algorithm == "bfs") {
    run_opts.algorithm = core::Algorithm::kBfs;
  } else {
    run_opts.algorithm = core::Algorithm::kDeltaStepping;
  }

  // Optional external dataset: '.bin' loads the compact binary format,
  // anything else is parsed as TSV.  Without --input, Kronecker is
  // generated per the official benchmark.
  graph::EdgeList external;
  const std::string input = options.get("input", "");
  if (!input.empty()) {
    external = input.size() > 4 && input.ends_with(".bin")
                   ? graph::read_edge_list_binary(input)
                   : graph::read_edge_list_tsv(input);
    std::cout << "Loaded " << external.num_edges() << " edges / "
              << external.num_vertices << " vertices from " << input << "\n";
  }

  graph::BuildOptions build_opts;
  build_opts.hub_count =
      static_cast<std::size_t>(options.get_int("hubs", 1024));

  const std::string export_path = options.get("export-graph", "");
  if (!export_path.empty()) {
    const graph::EdgeList whole =
        external.num_vertices > 0 ? external : graph::kronecker_graph(params);
    if (export_path.ends_with(".bin")) {
      graph::write_edge_list_binary(export_path, whole);
    } else {
      graph::write_edge_list_tsv(export_path, whole);
    }
    std::cout << "Exported " << whole.num_edges() << " edges to "
              << export_path << "\n";
  }

  std::cout << "Graph500 SSSP: scale " << params.scale << ", edgefactor "
            << params.edgefactor << ", " << ranks << " simulated ranks, "
            << run_opts.num_roots << " roots\n\n";

  simmpi::World world(ranks);
  int exit_code = EXIT_SUCCESS;
  world.run([&](simmpi::Comm& comm) {
    comm.barrier();
    util::Timer construct;
    const graph::DistGraph g =
        external.num_vertices > 0
            ? graph::build_distributed(
                  comm,
                  graph::slice_for_rank(external, comm.rank(), comm.size()),
                  external.num_vertices, build_opts)
            : graph::build_kronecker(comm, params, build_opts);
    comm.barrier();
    const double construction = comm.allreduce_max(construct.seconds());

    const auto report = core::run_benchmark(comm, g, run_opts);

    if (comm.rank() == 0) {
      util::Table graph_table({"construction metric", "value"});
      graph_table.row().add("time (s)").add(construction, 3);
      graph_table.row().add("directed edges").add(g.num_directed_edges);
      graph_table.row()
          .add("construction MEPS")
          .add_si(static_cast<double>(g.num_input_edges) / construction);
      graph_table.row().add("hubs tracked").add(
          static_cast<std::uint64_t>(g.hubs.size()));
      if (!g.hub_degrees.empty()) {
        graph_table.row().add("max degree").add(g.hub_degrees.front());
      }
      graph_table.print(std::cout, "construction");
      std::cout << '\n';

      util::Table roots_table({"root", "time (s)", "TEPS", "reachable",
                               "valid"});
      for (const auto& run : report.runs) {
        roots_table.row()
            .add(static_cast<std::uint64_t>(run.root))
            .add(run.seconds, 4)
            .add_si(run.teps)
            .add(run.reachable)
            .add(run.valid ? "yes" : "NO");
      }
      roots_table.print(std::cout, "per-root results");
      std::cout << '\n';

      report.print(std::cout);
      std::cout << '\n';

      util::Table stats_table({"execution metric", "value"});
      const auto& s = report.stats;
      stats_table.row().add("buckets").add(s.buckets_processed);
      stats_table.row().add("light rounds").add(s.light_iterations);
      stats_table.row().add("push rounds").add(s.push_rounds);
      stats_table.row().add("pull rounds").add(s.pull_rounds);
      stats_table.row().add("relax generated").add_si(
          static_cast<double>(s.relax_generated));
      stats_table.row().add("relax applied").add_si(
          static_cast<double>(s.relax_applied));
      stats_table.row().add("hub-filtered").add_si(
          static_cast<double>(s.filtered_hub));
      stats_table.row().add("coalesce-filtered").add_si(
          static_cast<double>(s.filtered_coalesce));
      stats_table.row().add("fused locally").add_si(
          static_cast<double>(s.fused_local));
      stats_table.print(std::cout, "aggregated execution statistics");

      if (!report.all_valid) {
        std::cerr << "\nERROR: at least one root failed validation\n";
      }
    }
    if (!report.all_valid) exit_code = EXIT_FAILURE;
  });
  return exit_code;
}
