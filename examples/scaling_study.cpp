// Scaling study: from measured runs to a machine-size decision.
//
// The workflow a systems group follows before requesting allocation on a
// big machine, end to end with this library:
//
//   1. run the engine on simulated ranks at a few scales,
//   2. calibrate the analytic machine model from the measurements,
//   3. sweep machine sizes for the target problem and find the smallest
//      configuration that hits an SSSP-latency budget.
//
//   ./scaling_study [--target-scale 40] [--budget-seconds 2.0] [--ranks 8]
#include <cstdlib>
#include <iostream>

#include "core/delta_stepping.hpp"
#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "model/projection.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int cal_scale = static_cast<int>(options.get_int("cal-scale", 13));
  const int target_scale =
      static_cast<int>(options.get_int("target-scale", 40));
  const double budget = options.get_double("budget-seconds", 2.0);

  // --- 1. measure ---------------------------------------------------------
  graph::KroneckerParams params;
  params.scale = cal_scale;
  simmpi::World world(ranks);
  core::SsspStats merged;
  constexpr std::uint64_t kRuns = 3;
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    for (std::uint64_t i = 0; i < kRuns; ++i) {
      core::SsspStats local;
      (void)core::delta_stepping(comm, g, 1 + i, {}, &local);
      const auto total = core::global_stats(comm, local);
      if (comm.rank() == 0) merged.merge(total);
    }
    comm.barrier();
  });

  // --- 2. calibrate -------------------------------------------------------
  const auto cal = model::Calibration::from_run(
      merged, world.aggregate_stats(), params.num_edges(), kRuns, cal_scale);
  std::cout << "Calibrated from scale-" << cal_scale << " runs on " << ranks
            << " simulated ranks: " << cal.wire_bytes_per_input_edge
            << " wire bytes/edge, " << cal.relax_per_input_edge
            << " relaxations/edge, " << cal.rounds_per_sssp
            << " rounds/SSSP.\n\n";

  // --- 3. sweep machine sizes ---------------------------------------------
  const model::Projection proj(model::Machine::new_sunway(), cal);
  util::Table table({"nodes", "cores", "predicted s/SSSP", "GTEPS", "fits",
                     "meets budget"});
  std::int64_t chosen = -1;
  for (std::int64_t nodes = 1024;; nodes *= 2) {
    const auto p =
        proj.predict(target_scale, std::min<std::int64_t>(nodes, 107520));
    const bool meets = p.memory_feasible && p.total_seconds <= budget;
    if (meets && chosen < 0) chosen = p.nodes;
    table.row()
        .add(static_cast<std::uint64_t>(p.nodes))
        .add_si(static_cast<double>(p.cores), 1)
        .add(p.total_seconds, 3)
        .add(p.gteps, 1)
        .add(p.memory_feasible ? "yes" : "NO")
        .add(meets ? "yes" : "no");
    if (p.nodes >= 107520) break;  // full machine reached
  }
  table.print(std::cout, "machine-size sweep for scale-" +
                             std::to_string(target_scale) + " SSSP");

  if (chosen > 0) {
    std::cout << "\nSmallest configuration meeting the " << budget
              << " s budget: " << chosen << " nodes.\n";
  } else {
    std::cout << "\nNo swept configuration meets the " << budget
              << " s budget; the problem is interconnect-bound — "
                 "revisit delta/hub settings or relax the budget.\n";
  }
  return EXIT_SUCCESS;
}
