// The paper's whole pipeline, miniaturized: a Graph 500 record submission.
//
//   1. construct the largest graph this host can hold, distributed over
//      simulated ranks;
//   2. run the official SSSP protocol (sampled roots, validation,
//      harmonic-mean TEPS);
//   3. record the collective trace of one solve and replay it on the New
//      Sunway cost model — where would time go at machine scale?
//   4. calibrate the projection and print the headline: the 140-trillion-
//      edge entry at 107,520 nodes / ~41.9 million cores.
//
//   ./record_submission [--scale 15] [--ranks 8] [--roots 8]
#include <cstdlib>
#include <iostream>

#include "core/delta_stepping.hpp"
#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "model/projection.hpp"
#include "model/replay.hpp"
#include "simmpi/comm.hpp"
#include "util/options.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace g500;
  const util::Options options(argc, argv);
  graph::KroneckerParams params;
  params.scale = static_cast<int>(options.get_int("scale", 15));
  const int ranks = static_cast<int>(options.get_int("ranks", 8));
  const int roots = static_cast<int>(options.get_int("roots", 8));

  std::cout << "=== Stage 1+2: official protocol, scale " << params.scale
            << " on " << ranks << " simulated ranks ===\n\n";
  simmpi::World world(ranks);
  std::vector<graph::DistGraph> graphs(static_cast<std::size_t>(ranks));
  world.run([&](simmpi::Comm& comm) {
    graphs[static_cast<std::size_t>(comm.rank())] =
        graph::build_kronecker(comm, params);
  });

  core::BenchmarkReport report;
  world.reset_stats();
  world.run([&](simmpi::Comm& comm) {
    core::RunnerOptions opts;
    opts.num_roots = roots;
    const auto r = core::run_benchmark(
        comm, graphs[static_cast<std::size_t>(comm.rank())], opts);
    if (comm.rank() == 0) report = r;
    comm.barrier();
  });
  report.print(std::cout);
  if (!report.all_valid) {
    std::cerr << "validation failed — submission void\n";
    return EXIT_FAILURE;
  }
  const auto protocol_stats = world.aggregate_stats();

  std::cout << "\n=== Stage 3: trace replay on the New Sunway model ===\n\n";
  world.reset_stats();
  world.enable_trace();
  world.run([&](simmpi::Comm& comm) {
    (void)core::delta_stepping(
        comm, graphs[static_cast<std::size_t>(comm.rank())],
        report.runs.front().root);
  });
  const auto trace = world.merged_trace();
  const auto replay = model::replay_trace(
      trace, model::Machine::new_sunway(), 13440, 6, ranks);
  replay.print(std::cout);

  std::cout << "\n=== Stage 4: record projection ===\n\n";
  const auto cal = model::Calibration::from_run(
      report.stats, protocol_stats, params.num_edges(), report.runs.size(),
      params.scale);
  const model::Projection proj(model::Machine::new_sunway(), cal);
  const auto record = proj.predict(43, 107520);
  util::Table headline({"headline quantity", "value"});
  headline.row().add("graph scale").add(record.scale);
  headline.row().add("input edges").add_si(
      static_cast<double>(record.input_edges), 1);
  headline.row().add("nodes").add(static_cast<std::uint64_t>(record.nodes));
  headline.row().add("cores").add_si(static_cast<double>(record.cores), 1);
  headline.row().add("projected s/SSSP").add(record.total_seconds, 2);
  headline.row().add("projected GTEPS").add(record.gteps, 1);
  headline.row().add("memory feasible").add(record.memory_feasible ? "yes"
                                                                   : "NO");
  headline.print(std::cout, "scale-43 record entry (projected)");
  return EXIT_SUCCESS;
}
