// Landmark (ALT) oracle and adaptive-batching tests: triangle-inequality
// bounds must bracket the true distance on every graph shape, answers
// served through goal-directed pruned waves must stay bit-identical to
// unpruned ones, cross-component pairs must be settled without a wave,
// and the batch controller must converge on step-change arrival rates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "core/delta_stepping.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/adaptive.hpp"
#include "serve/driver.hpp"
#include "serve/oracle.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using serve::AdaptiveBatchController;
using serve::AdaptiveConfig;
using serve::DistanceService;
using serve::LandmarkOracle;
using serve::OracleConfig;
using serve::Query;
using serve::QueryKind;
using serve::ServeConfig;

graph::DistGraph build_test_graph(simmpi::Comm& comm,
                                  const graph::EdgeList& list) {
  return graph::build_distributed(
      comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
      list.num_vertices);
}

/// Loose float slack for soundness checks: the bounds hold exactly in the
/// metric, but engine distances carry per-hop rounding.
constexpr float kTol = 1e-4f;

/// lb <= d(s, t) <= ub for every pair on path, ring, star, grid and
/// random shapes — the shapes stress diameter, hub skew and disconnection
/// differently.
TEST(ServeOracle, BoundsSoundOnEveryShape) {
  const std::vector<graph::EdgeList> shapes = {
      graph::path_graph(48, 3),      graph::ring_graph(40, 5),
      graph::star_graph(33, 7),      graph::grid_graph(6, 8, 9),
      graph::random_graph(64, 200, 11)};
  for (const auto& list : shapes) {
    simmpi::World world(3);
    world.run([&](simmpi::Comm& comm) {
      const auto g = build_test_graph(comm, list);
      OracleConfig oc;
      oc.num_landmarks = 4;
      LandmarkOracle oracle(comm, g, oc, {});
      ASSERT_GE(oracle.landmarks().size(), 1u);

      // Ground truth from full waves rooted at a few sources.
      const std::vector<graph::VertexId> sources = {0, list.num_vertices / 2,
                                                    list.num_vertices - 1};
      std::vector<graph::VertexId> verts;
      for (graph::VertexId v = 0; v < list.num_vertices; ++v) {
        verts.push_back(v);
      }
      const auto rows = oracle.landmark_distances(verts);
      for (const auto s : sources) {
        const auto mine = core::delta_stepping(comm, g, s);
        const auto want = core::gather_result(comm, g, mine);
        for (graph::VertexId t = 0; t < list.num_vertices; ++t) {
          const auto b = oracle.bounds(rows[s], rows[t], s, t);
          const float d = want.dist[t];
          if (std::isinf(d)) {
            // Any finite upper bound would witness a path that isn't there.
            EXPECT_TRUE(std::isinf(b.ub)) << "s=" << s << " t=" << t;
          } else {
            EXPECT_LE(b.lb, d + d * kTol + kTol) << "s=" << s << " t=" << t;
            EXPECT_GE(b.ub, d - d * kTol - kTol) << "s=" << s << " t=" << t;
            EXPECT_FALSE(b.unreachable) << "s=" << s << " t=" << t;
          }
          if (b.exact) {
            EXPECT_EQ(b.ub, d) << "exact hit must be bit-identical, s=" << s
                               << " t=" << t;
          }
        }
      }
    });
  }
}

/// A service with the oracle enabled must return the same bits as one
/// without it — goal-directed pruning may skip work, never change the
/// answer — while actually pruning relaxations.
TEST(ServeOracle, PrunedAnswersBitIdenticalToFullWaves) {
  const auto list = graph::random_graph(160, 640, 21);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);

    serve::WorkloadConfig wl;
    wl.seed = 13;
    wl.ticks = 12;
    wl.arrivals_per_tick = 2.0;
    wl.zipf_s = 0.0;  // uniform over a wide universe: mostly cold queries
    for (graph::VertexId v = 0; v < g.num_vertices; v += 5) {
      wl.roots.push_back(v);
    }
    wl.num_vertices = g.num_vertices;
    const serve::Workload workload(wl);

    ServeConfig off;
    off.cache_budget_bytes = 0;  // every answer from a fresh wave
    off.queue_depth = 256;
    ServeConfig on = off;
    on.oracle.num_landmarks = 6;

    const auto full = serve::run_workload(comm, g, off, workload, true);
    const auto pruned = serve::run_workload(comm, g, on, workload, true);
    ASSERT_EQ(full.answers.size(), pruned.answers.size());
    ASSERT_GT(full.answers.size(), 0u);
    for (std::size_t i = 0; i < full.answers.size(); ++i) {
      EXPECT_EQ(full.answers[i].id, pruned.answers[i].id);
      EXPECT_EQ(full.answers[i].distance, pruned.answers[i].distance)
          << "query " << full.answers[i].id << " root "
          << full.answers[i].root << " target " << full.answers[i].target
          << " pruned_wave " << pruned.answers[i].pruned_wave
          << " from_oracle " << pruned.answers[i].from_oracle;
    }
    // The oracle run must really have gone goal-directed...
    EXPECT_GT(pruned.metrics.pruned_waves, 0u);
    EXPECT_GT(pruned.pruned_expand + pruned.pruned_apply, 0u);
    // ...and pruned waves generate strictly less relaxation work.
    EXPECT_LT(pruned.relax_generated, full.relax_generated);
  });
}

/// Queries whose root is a landmark are answered from the precomputed
/// slice without dispatching any wave, bit-identical to a fresh one.
TEST(ServeOracle, LandmarkRootsAnsweredWithoutAWave) {
  const auto list = graph::random_graph(96, 400, 33);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.oracle.num_landmarks = 4;
    config.cache_budget_bytes = 0;
    DistanceService service(comm, g, config);
    ASSERT_NE(service.oracle(), nullptr);
    const auto landmarks = service.oracle()->landmarks();
    ASSERT_GE(landmarks.size(), 1u);

    Query q;
    q.root = landmarks[0];
    q.target = 7;
    ASSERT_TRUE(service.submit(q));
    const auto answers = service.drain(0);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_TRUE(answers[0].from_oracle);

    const auto mine = core::delta_stepping(comm, g, landmarks[0]);
    const auto want = core::gather_result(comm, g, mine);
    EXPECT_EQ(answers[0].distance, want.dist[7]);
    EXPECT_EQ(service.metrics().waves, 0u);
    EXPECT_GT(service.metrics().oracle_exact, 0u);
  });
}

/// Cross-component pairs are proven unreachable by the landmark rows and
/// never dispatch a wave.
TEST(ServeOracle, DisconnectedPairsSettledWithoutAWave) {
  // Two disjoint paths: 0..15 and 16..31.
  graph::EdgeList list = graph::path_graph(16, 5);
  const auto other = graph::path_graph(16, 6);
  for (auto e : other.edges) {
    e.src += 16;
    e.dst += 16;
    list.edges.push_back(e);
  }
  list.num_vertices = 32;

  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.oracle.num_landmarks = 3;  // farthest-point seeds both components
    config.cache_budget_bytes = 0;
    DistanceService service(comm, g, config);

    Query q;
    q.id = 1;
    q.root = 2;    // first component
    q.target = 20; // second component
    ASSERT_TRUE(service.submit(q));
    const auto answers = service.drain(0);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_TRUE(answers[0].from_oracle);
    EXPECT_TRUE(std::isinf(answers[0].distance));
    EXPECT_EQ(service.metrics().waves, 0u);
    EXPECT_EQ(service.metrics().oracle_unreachable, 1u);
  });
}

/// The controller must track a step change in the arrival rate: knobs
/// sized for the low regime before the step, for the high regime after.
TEST(ServeOracle, AdaptiveControllerConvergesOnStepChange) {
  AdaptiveConfig cfg;
  cfg.enabled = true;
  cfg.min_batch = 1;
  cfg.max_batch = 32;
  cfg.min_wait_ticks = 1;
  cfg.max_wait_ticks = 16;
  cfg.target_wait_ticks = 4.0;
  AdaptiveBatchController ctl(cfg, 8, 4);

  for (int i = 0; i < 40; ++i) ctl.observe(2);
  EXPECT_NEAR(ctl.rate(), 2.0, 0.05);
  EXPECT_EQ(ctl.batch_size(), 8u);        // 2/tick * 4 ticks
  EXPECT_EQ(ctl.max_wait_ticks(), 4u);    // 8 / 2 per tick

  for (int i = 0; i < 40; ++i) ctl.observe(16);
  EXPECT_NEAR(ctl.rate(), 16.0, 0.5);
  EXPECT_EQ(ctl.batch_size(), 32u);       // 16 * 4 = 64, clamped to max
  EXPECT_EQ(ctl.max_wait_ticks(), 2u);    // 32 / 16 per tick
  EXPECT_GE(ctl.adjustments(), 2u);

  // Silence: the rate decays and the deadline stretches to its cap.
  for (int i = 0; i < 200; ++i) ctl.observe(0);
  EXPECT_EQ(ctl.batch_size(), 1u);
  EXPECT_EQ(ctl.max_wait_ticks(), 16u);
}

TEST(ServeOracle, AdaptiveControllerValidatesConfig) {
  AdaptiveConfig cfg;
  cfg.min_batch = 0;
  EXPECT_THROW(AdaptiveBatchController(cfg, 1, 1), std::invalid_argument);
  cfg = {};
  cfg.min_batch = 8;
  cfg.max_batch = 4;
  EXPECT_THROW(AdaptiveBatchController(cfg, 1, 1), std::invalid_argument);
  cfg = {};
  cfg.ewma_alpha = 0.0;
  EXPECT_THROW(AdaptiveBatchController(cfg, 1, 1), std::invalid_argument);
  cfg = {};
  cfg.adjust_period = 0;
  EXPECT_THROW(AdaptiveBatchController(cfg, 1, 1), std::invalid_argument);
  cfg = {};
  cfg.target_wait_ticks = 0.0;
  EXPECT_THROW(AdaptiveBatchController(cfg, 1, 1), std::invalid_argument);
}

/// End-to-end: an adaptive service answers the whole workload and its
/// knob trajectory agrees across ranks (it is a pure function of the
/// shared submission sequence).
TEST(ServeOracle, AdaptiveServiceAnswersEverythingConsistently) {
  const auto list = graph::random_graph(80, 320, 19);
  const int ranks = 3;
  std::vector<std::vector<std::uint64_t>> per_rank(ranks);
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    serve::WorkloadConfig wl;
    wl.seed = 23;
    wl.ticks = 24;
    wl.arrivals_per_tick = 6.0;
    wl.roots = {1, 9, 17, 33};
    wl.num_vertices = g.num_vertices;
    ServeConfig config;
    config.queue_depth = 512;
    config.adaptive.enabled = true;
    config.adaptive.max_batch = 64;
    const auto run = serve::run_workload(comm, g, config, serve::Workload(wl));
    EXPECT_EQ(run.metrics.answered, run.metrics.admitted);
    per_rank[static_cast<std::size_t>(comm.rank())] = {
        run.metrics.answered, run.metrics.batches, run.metrics.waves,
        run.metrics.adaptive_adjustments};
  });
  for (int r = 1; r < ranks; ++r) {
    EXPECT_EQ(per_rank[static_cast<std::size_t>(r)], per_rank[0])
        << "rank " << r;
  }
}

/// Persisted slices round-trip: a second oracle over the same graph and
/// config adopts the stored blob with ZERO precompute waves and serves
/// bit-identical landmark rows.
TEST(ServeOracle, SliceStoreRoundTripSkipsPrecompute) {
  const auto list = graph::random_graph(96, 400, 27);
  const int ranks = 2;
  std::vector<serve::OracleSliceStore> stores(ranks);
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    OracleConfig oc;
    oc.num_landmarks = 3;
    auto& store = stores[static_cast<std::size_t>(comm.rank())];

    LandmarkOracle fresh(comm, g, oc, {}, &store);
    EXPECT_FALSE(fresh.restored_from_store());
    EXPECT_GT(fresh.precompute_waves(), 0u);
    ASSERT_TRUE(store.valid());

    LandmarkOracle adopted(comm, g, oc, {}, &store);
    EXPECT_TRUE(adopted.restored_from_store());
    EXPECT_EQ(adopted.precompute_waves(), 0u);
    EXPECT_EQ(adopted.landmarks(), fresh.landmarks());

    std::vector<graph::VertexId> verts;
    for (graph::VertexId v = 0; v < g.num_vertices; v += 7) {
      verts.push_back(v);
    }
    const auto want = fresh.landmark_distances(verts);
    const auto got = adopted.landmark_distances(verts);
    EXPECT_EQ(got, want);  // bit-identical rows, not just equivalent
  });
}

/// The adopt gate is all-or-nothing across ranks: one rank's rotten blob
/// forces EVERY rank to recompute (no rank may adopt while another
/// recomputes — the waves are collective), and the recompute overwrites
/// the store so the next restart adopts again.
TEST(ServeOracle, SliceStoreDigestMismatchForcesGlobalRecompute) {
  const auto list = graph::random_graph(80, 320, 41);
  const int ranks = 2;
  std::vector<serve::OracleSliceStore> stores(ranks);
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    OracleConfig oc;
    oc.num_landmarks = 2;
    auto& store = stores[static_cast<std::size_t>(comm.rank())];
    LandmarkOracle fresh(comm, g, oc, {}, &store);
    ASSERT_TRUE(store.valid());

    // Bit rot in rank 0's slot only.
    if (comm.rank() == 0) store.blob[store.blob.size() / 2] ^= 0x40;
    LandmarkOracle recomputed(comm, g, oc, {}, &store);
    EXPECT_FALSE(recomputed.restored_from_store());
    EXPECT_GT(recomputed.precompute_waves(), 0u);
    EXPECT_EQ(recomputed.landmarks(), fresh.landmarks());

    // The recompute healed the store: the next restart adopts.
    ASSERT_TRUE(store.valid());
    LandmarkOracle healed(comm, g, oc, {}, &store);
    EXPECT_TRUE(healed.restored_from_store());

    // A different landmark request must not adopt slices computed for
    // another config.
    OracleConfig other;
    other.num_landmarks = 4;
    LandmarkOracle reconfigured(comm, g, other, {}, &store);
    EXPECT_FALSE(reconfigured.restored_from_store());
    EXPECT_GT(reconfigured.precompute_waves(), 0u);
  });
}

/// The oracle constructor rejects nonsense configurations.
TEST(ServeOracle, ValidatesConfig) {
  const auto list = graph::path_graph(8, 2);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    OracleConfig bad;
    bad.num_landmarks = 0;
    EXPECT_THROW(LandmarkOracle(comm, g, bad, {}), std::invalid_argument);
    bad.num_landmarks = 2;
    bad.prune_slack = 1.5;
    EXPECT_THROW(LandmarkOracle(comm, g, bad, {}), std::invalid_argument);
  });
}

}  // namespace
