// Tests for distributed connected components.
#include <gtest/gtest.h>

#include <numeric>

#include "core/components.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// Sequential oracle: union-find over the edge list.
std::vector<VertexId> reference_labels(const EdgeList& list) {
  std::vector<VertexId> parent(list.num_vertices);
  std::iota(parent.begin(), parent.end(), VertexId{0});
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const auto& e : list.edges) {
    const VertexId a = find(e.src);
    const VertexId b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::vector<VertexId> labels(list.num_vertices);
  for (VertexId v = 0; v < list.num_vertices; ++v) labels[v] = find(v);
  return labels;
}

void expect_matches_oracle(const EdgeList& list, int ranks) {
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto mine = core::connected_components(comm, g);
    const auto labels = comm.allgatherv(mine);
    const auto want = reference_labels(list);
    ASSERT_EQ(labels.size(), want.size());
    for (VertexId v = 0; v < list.num_vertices; ++v) {
      EXPECT_EQ(labels[v], want[v]) << "vertex " << v << " ranks " << ranks;
    }
  });
}

class ComponentsSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, ComponentsSweep,
                         ::testing::Values(1, 2, 4, 8));

TEST_P(ComponentsSweep, MatchesUnionFindOnKronecker) {
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 4;  // sparse enough to have several components
  expect_matches_oracle(kronecker_graph(params), GetParam());
}

TEST_P(ComponentsSweep, MatchesUnionFindOnRandom) {
  expect_matches_oracle(random_graph(200, 150, 13), GetParam());
}

TEST(Components, TwoIslandsAndDust) {
  EdgeList list;
  list.num_vertices = 9;
  list.edges = {{0, 1, 0.5f}, {1, 2, 0.5f}, {4, 5, 0.5f}};
  simmpi::World world(3);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(comm, slice_for_rank(list,
                                                               comm.rank(),
                                                               comm.size()),
                                          9);
    const auto labels = core::connected_components(comm, g);
    const auto summary = core::summarize_components(comm, g, labels);
    EXPECT_EQ(summary.num_components, 6u);  // {0,1,2}, {4,5}, 4 singletons
    EXPECT_EQ(summary.largest_size, 3u);
    EXPECT_EQ(summary.isolated_vertices, 4u);
  });
}

TEST(Components, KroneckerHasOneGiantComponent) {
  // The Graph 500 graph structure the benchmark relies on: nearly all
  // non-isolated vertices form a single giant component.
  KroneckerParams params;
  params.scale = 11;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    const auto labels = core::connected_components(comm, g);
    const auto summary = core::summarize_components(comm, g, labels);
    EXPECT_GT(summary.largest_size, g.num_vertices / 2);
    // Everything else is (almost entirely) isolated dust.
    EXPECT_GT(summary.isolated_vertices + summary.largest_size,
              static_cast<std::uint64_t>(0.95 * g.num_vertices));
  });
}

TEST(Components, RoundsTrackCrossRankDiameterOnPath) {
  // Label 0 must cross every rank boundary one exchange at a time, but
  // cascades within a rank's block in a single round (immediate local
  // application), so the round count sits between the rank-boundary count
  // and the full hop diameter.
  const EdgeList path = path_graph(64);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(path, comm.rank(), comm.size()), 64);
    core::ComponentsStats stats;
    (void)core::connected_components(comm, g, &stats);
    EXPECT_GE(stats.rounds, 4u);
    EXPECT_LE(stats.rounds, 70u);
  });
}

TEST(Components, StatsCountWork) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::ComponentsStats stats;
    (void)core::connected_components(comm, g, &stats);
    EXPECT_GT(stats.rounds, 0u);
    EXPECT_GT(comm.allreduce_sum(stats.labels_applied), 0u);
  });
}

}  // namespace
