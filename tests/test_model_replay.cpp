// Tests for collective tracing and trace replay.
#include <gtest/gtest.h>

#include "core/delta_stepping.hpp"
#include "graph/builder.hpp"
#include "model/replay.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using simmpi::CollectiveKind;

TEST(Trace, DisabledByDefault) {
  simmpi::World world(2);
  world.run([](simmpi::Comm& comm) { comm.barrier(); });
  EXPECT_TRUE(world.merged_trace().empty());
}

TEST(Trace, RecordsKindsInOrder) {
  simmpi::World world(3);
  world.enable_trace();
  world.run([](simmpi::Comm& comm) {
    comm.barrier();
    (void)comm.allreduce_sum(1);
    std::vector<std::vector<int>> out(3);
    out[(comm.rank() + 1) % 3] = {1, 2};
    (void)comm.alltoallv(out);
    (void)comm.allgatherv(std::vector<double>{1.0});
  });
  const auto trace = world.merged_trace();
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0].kind, CollectiveKind::kBarrier);
  EXPECT_EQ(trace[1].kind, CollectiveKind::kAllreduce);
  EXPECT_EQ(trace[2].kind, CollectiveKind::kAlltoallv);
  EXPECT_EQ(trace[3].kind, CollectiveKind::kAllgather);
  // alltoallv round: every rank sent 2 ints off-rank.
  EXPECT_EQ(trace[2].total_bytes, 3u * 2 * sizeof(int));
  EXPECT_EQ(trace[2].max_rank_bytes, 2 * sizeof(int));
  EXPECT_EQ(trace[0].total_bytes, 0u);
}

TEST(Trace, ResetClears) {
  simmpi::World world(2);
  world.enable_trace();
  world.run([](simmpi::Comm& comm) { comm.barrier(); });
  EXPECT_EQ(world.merged_trace().size(), 1u);
  world.reset_stats();
  EXPECT_TRUE(world.merged_trace().empty());
}

TEST(Replay, PricesEveryRound) {
  std::vector<simmpi::TraceRound> trace;
  trace.push_back({CollectiveKind::kAlltoallv, 1 << 20, 1 << 14});
  trace.push_back({CollectiveKind::kAllreduce, 256, 64});
  trace.push_back({CollectiveKind::kBarrier, 0, 0});
  const auto report = model::replay_trace(
      trace, model::Machine::new_sunway(), 1024, 6, 64);
  ASSERT_EQ(report.round_seconds.size(), 3u);
  double sum = 0.0;
  for (const double s : report.round_seconds) {
    EXPECT_GT(s, 0.0);
    sum += s;
  }
  EXPECT_DOUBLE_EQ(sum, report.total_seconds);
  EXPECT_EQ(report.by_kind.size(), 3u);
}

TEST(Replay, MoreTaperMeansMoreTime) {
  std::vector<simmpi::TraceRound> trace(
      10, {CollectiveKind::kAlltoallv, 1ULL << 30, 1ULL << 22});
  model::Machine loose = model::Machine::new_sunway();
  model::Machine tight = loose;
  tight.central_taper = 0.02;
  const auto a = model::replay_trace(trace, loose, 4096, 6, 64);
  const auto b = model::replay_trace(trace, tight, 4096, 6, 64);
  EXPECT_GT(b.total_seconds, a.total_seconds);
}

TEST(Replay, RejectsBadShapes) {
  EXPECT_THROW((void)model::replay_trace({}, model::Machine::new_sunway(), 0,
                                         6, 64),
               std::invalid_argument);
  EXPECT_THROW((void)model::replay_trace({}, model::Machine::new_sunway(),
                                         16, 0, 64),
               std::invalid_argument);
  EXPECT_THROW((void)model::replay_trace({}, model::Machine::new_sunway(),
                                         16, 6, 0),
               std::invalid_argument);
}

TEST(Replay, EndToEndSsspTraceReplays) {
  graph::KroneckerParams params;
  params.scale = 10;
  simmpi::World world(4);
  std::vector<graph::DistGraph> graphs(4);
  world.run([&](simmpi::Comm& comm) {
    graphs[comm.rank()] = graph::build_kronecker(comm, params);
  });
  world.reset_stats();
  world.enable_trace();
  world.run([&](simmpi::Comm& comm) {
    (void)core::delta_stepping(comm, graphs[comm.rank()], 1);
  });
  const auto trace = world.merged_trace();
  ASSERT_FALSE(trace.empty());
  const auto report =
      model::replay_trace(trace, model::Machine::new_sunway(), 840, 6, 4);
  EXPECT_GT(report.total_seconds, 0.0);
  // The solve is alltoallv + allreduce dominated.
  bool has_alltoallv = false;
  for (const auto& b : report.by_kind) {
    has_alltoallv = has_alltoallv || b.kind == CollectiveKind::kAlltoallv;
  }
  EXPECT_TRUE(has_alltoallv);
  std::ostringstream out;
  report.print(out);
  EXPECT_NE(out.str().find("alltoallv"), std::string::npos);
}

}  // namespace
