// Golden-schema tests for the machine-readable telemetry layer: the
// BENCH_<name>.json run-report envelope, the per-struct serializers, the
// Chrome trace export of a real solve, and the solve-only wire-counter
// bracket in measure_sssp.  docs/telemetry.md documents the schemas these
// tests pin down; a key removed here is a schema break and needs a
// schema_version bump there.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/delta_stepping.hpp"
#include "graph/builder.hpp"
#include "model/trace_export.hpp"
#include "simmpi/comm.hpp"
#include "util/json.hpp"

namespace {

using namespace g500;
using g500::util::Json;

Json parse_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return Json::parse(buf.str());
}

void expect_keys(const Json& j, const std::vector<std::string>& keys,
                 const std::string& where) {
  for (const auto& key : keys) {
    EXPECT_TRUE(j.contains(key)) << where << " is missing \"" << key << '"';
  }
}

class TempReportDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("g500_telemetry_" +
            std::to_string(static_cast<unsigned>(::getpid())));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

TEST_F(TempReportDir, RunReportWritesGoldenEnvelope) {
  const char* argv[] = {"test_harness", "--scale", "12", "--report-dir",
                        nullptr};
  const std::string dir_str = dir_.string();
  argv[4] = dir_str.c_str();
  const util::Options options(5, argv);

  bench::RunReport report("golden", options);
  Json c = Json::object();
  c["scale"] = 12;
  report.add_case(std::move(c));

  util::Table table({"a", "b"});
  table.row().add(1).add(2);
  std::ostringstream quiet;
  bench::write_report(report, table, quiet);

  const std::string expected = (dir_ / "BENCH_golden.json").string();
  EXPECT_EQ(report.path(), expected);
  EXPECT_NE(quiet.str().find(expected), std::string::npos);

  const Json doc = parse_file(expected);
  expect_keys(doc,
              {"schema_version", "harness", "manifest", "options", "cases",
               "table"},
              "run report");
  EXPECT_EQ(doc.at("schema_version").as_int64(),
            bench::kRunReportSchemaVersion);
  EXPECT_EQ(doc.at("harness").as_string(), "golden");
  expect_keys(doc.at("manifest"),
              {"schema_version", "host", "timestamp_utc", "git_describe",
               "build_type", "compiler", "cxx_standard"},
              "manifest");
  EXPECT_EQ(doc.at("options").at("scale").as_string(), "12");
  ASSERT_EQ(doc.at("cases").size(), 1u);
  EXPECT_EQ(doc.at("cases").at(0).at("scale").as_int64(), 12);
  expect_keys(doc.at("table"), {"headers", "rows"}, "table echo");
}

TEST(TelemetrySchemas, MeasurementCarriesRequiredKeys) {
  graph::KroneckerParams params;
  params.scale = 10;
  const auto m = bench::measure_sssp(params, 2, core::SsspConfig{}, 1);
  const Json j = bench::to_json(m);
  expect_keys(j,
              {"schema_version", "seconds", "teps", "valid", "wire_bytes",
               "wire_messages", "rounds", "sssp_stats"},
              "measurement");
  EXPECT_EQ(j.at("schema_version").as_int64(),
            bench::kMeasurementSchemaVersion);
  const Json& stats = j.at("sssp_stats");
  expect_keys(stats,
              {"schema_version", "relax_generated", "relax_sent",
               "relax_applied", "buckets_processed", "light_iterations",
               "checkpoints", "restores", "checkpoint_seconds"},
              "sssp_stats");
}

TEST(TelemetrySchemas, CommStatsCarriesRequiredKeys) {
  simmpi::World world(2);
  world.run([](simmpi::Comm& comm) {
    (void)comm.allreduce_sum(std::uint64_t{1});
    comm.barrier();
  });
  const Json j = simmpi::to_json(world.aggregate_stats());
  expect_keys(j,
              {"schema_version", "alltoallv", "allreduce", "allgather",
               "broadcast", "barriers", "stall_seconds", "total_bytes",
               "total_messages", "rounds"},
              "comm_stats");
  EXPECT_EQ(j.at("schema_version").as_int64(),
            simmpi::kCommStatsSchemaVersion);
  expect_keys(j.at("allreduce"), {"calls", "bytes", "messages"}, "allreduce");
  EXPECT_GE(j.at("allreduce").at("calls").as_uint64(), 1u);
}

TEST(TelemetrySchemas, ProjectionPointCarriesRequiredKeys) {
  model::Calibration cal;
  cal.calibration_scale = 12;
  const model::Projection proj(model::Machine::new_sunway(), cal);
  const Json j = model::to_json(proj.predict(40, 13440));
  expect_keys(j,
              {"schema_version", "scale", "nodes", "cores", "input_edges",
               "compute_seconds", "network_seconds", "latency_seconds",
               "total_seconds", "gteps", "memory_feasible"},
              "projection_point");
  EXPECT_EQ(j.at("schema_version").as_int64(),
            model::kProjectionPointSchemaVersion);
  const Json cj = model::to_json(cal);
  expect_keys(cj,
              {"schema_version", "relax_per_input_edge",
               "wire_bytes_per_input_edge", "rounds_per_sssp",
               "calibration_scale"},
              "calibration");
}

// The acceptance check from the issue: a scale-12 solve's exported Chrome
// trace must be structurally sound (metadata + one complete event per
// round, nondecreasing timestamps, pid/tid present on every event).
TEST(ChromeTrace, Scale12SolveExportsStructurallyValidTrace) {
  graph::KroneckerParams params;
  params.scale = 12;
  const int ranks = 4;

  simmpi::World world(ranks);
  std::vector<graph::DistGraph> graphs(static_cast<std::size_t>(ranks));
  world.run([&](simmpi::Comm& comm) {
    graphs[static_cast<std::size_t>(comm.rank())] =
        graph::build_kronecker(comm, params);
  });
  world.reset_stats();
  world.enable_trace();
  world.run([&](simmpi::Comm& comm) {
    (void)core::delta_stepping(
        comm, graphs[static_cast<std::size_t>(comm.rank())], 1);
  });
  const auto trace = world.merged_trace();
  ASSERT_FALSE(trace.empty());

  const Json doc = model::chrome_trace(trace, model::Machine::new_sunway(),
                                       13440, 6, ranks);
  expect_keys(doc,
              {"schema_version", "displayTimeUnit", "traceEvents",
               "otherData"},
              "chrome trace");
  EXPECT_EQ(doc.at("schema_version").as_int64(),
            model::kChromeTraceSchemaVersion);

  const Json& events = doc.at("traceEvents");
  ASSERT_GT(events.size(), 0u);
  std::size_t complete_events = 0;
  double last_ts = 0.0;
  bool saw_metadata = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    expect_keys(e, {"name", "ph", "pid", "tid"}, "trace event");
    const std::string ph = e.at("ph").as_string();
    if (ph == "M") {
      saw_metadata = true;
      continue;
    }
    ASSERT_EQ(ph, "X");
    expect_keys(e, {"ts", "dur", "cat", "args"}, "complete event");
    const double ts = e.at("ts").as_double();
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
    EXPECT_GE(e.at("dur").as_double(), 0.0);
    expect_keys(e.at("args"),
                {"round", "total_bytes", "max_rank_bytes", "stall_seconds"},
                "event args");
    ++complete_events;
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_EQ(complete_events, trace.size());
  EXPECT_EQ(doc.at("otherData").at("rounds").as_uint64(), trace.size());

  // Mismatched replay must be rejected, not silently mislabeled.
  auto truncated = trace;
  truncated.pop_back();
  const auto replay = model::replay_trace(
      truncated, model::Machine::new_sunway(), 13440, 6, ranks);
  EXPECT_THROW((void)model::chrome_trace(trace, replay),
               std::invalid_argument);
}

// Regression for the counter-bracket bug: validation traffic used to leak
// into the reported wire counters.  The runtime is deterministic, so the
// same measurement with and without validation must agree exactly.
TEST(MeasureSssp, WireCountersExcludeValidationTraffic) {
  graph::KroneckerParams params;
  params.scale = 10;
  const auto with_validation = bench::measure_sssp(
      params, 4, core::SsspConfig{}, 1, core::Algorithm::kDeltaStepping,
      /*validate=*/true);
  const auto without_validation = bench::measure_sssp(
      params, 4, core::SsspConfig{}, 1, core::Algorithm::kDeltaStepping,
      /*validate=*/false);
  EXPECT_TRUE(with_validation.valid);
  EXPECT_GT(with_validation.wire_bytes, 0u);
  EXPECT_EQ(with_validation.wire_bytes, without_validation.wire_bytes);
  EXPECT_EQ(with_validation.wire_messages, without_validation.wire_messages);
  EXPECT_EQ(with_validation.rounds, without_validation.rounds);
}

}  // namespace
