// Tests for the out-of-core pipelined build (src/ooc): the sharded result
// must be bit-identical to the in-memory builder's graph, spills must
// merge back losslessly, and the resident budget must be a hard cap.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "core/delta_stepping.hpp"
#include "core/graph_view.hpp"
#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "graph/kronecker.hpp"
#include "graph/shard.hpp"
#include "ooc/pipeline.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

namespace fs = std::filesystem;

template <typename SpanA, typename SpanB>
bool bytes_equal(SpanA a, SpanB b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size_bytes()) == 0);
}

/// Everything the engines read must match byte for byte.
void expect_identical(const DistGraph& mem, const DistGraph& mapped) {
  EXPECT_TRUE(bytes_equal(mem.csr.offsets(), mapped.csr.offsets()));
  EXPECT_TRUE(bytes_equal(mem.csr.adjacency(), mapped.csr.adjacency()));
  EXPECT_TRUE(bytes_equal(mem.csr.weights(), mapped.csr.weights()));
  EXPECT_TRUE(bytes_equal(mem.pull.sources(), mapped.pull.sources()));
  EXPECT_TRUE(bytes_equal(mem.pull.offsets(), mapped.pull.offsets()));
  EXPECT_TRUE(
      bytes_equal(mem.pull.destinations(), mapped.pull.destinations()));
  EXPECT_TRUE(bytes_equal(mem.pull.weights(), mapped.pull.weights()));
  EXPECT_EQ(mem.hubs, mapped.hubs);
  EXPECT_EQ(mem.hub_degrees, mapped.hub_degrees);
  EXPECT_EQ(mem.num_input_edges, mapped.num_input_edges);
  EXPECT_EQ(mem.num_directed_edges, mapped.num_directed_edges);
}

TEST(OocPipeline, MatchesInMemoryBuildAcrossRankCounts) {
  KroneckerParams params;
  params.scale = 7;
  for (const int ranks : {1, 3, 4}) {
    const std::string dir =
        ::testing::TempDir() + "/g500_ooc_identity_" + std::to_string(ranks);
    fs::remove_all(dir);
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const DistGraph mem = build_kronecker(comm, params);
      const auto stats =
          ooc::build_sharded_kronecker(comm, params, dir);
      const DistGraph mapped = graph::load_sharded(comm, dir);

      expect_identical(mem, mapped);
      EXPECT_EQ(mapped.backing, GraphBacking::kMapped);
      EXPECT_GT(mapped.mapped_bytes, 0u);
      EXPECT_EQ(core::graph_residency(mapped).resident_bytes, 0u);

      // Distances must agree bit for bit, not approximately.
      const auto roots = core::sample_roots(comm, mem, 2, 0x0c);
      for (const auto root : roots) {
        const auto a = core::delta_stepping(comm, mem, root);
        const auto b = core::delta_stepping(comm, mapped, root);
        ASSERT_EQ(a.dist.size(), b.dist.size());
        EXPECT_EQ(std::memcmp(a.dist.data(), b.dist.data(),
                              a.dist.size() * sizeof(Weight)),
                  0)
            << "distances diverge on rank " << comm.rank() << " at "
            << ranks << " ranks";
      }

      // Stage accounting sanity (stats are already allreduced): bin saw at
      // least every surviving directed edge, the shard holds bytes, and
      // the pipeline never exceeded its own budget.
      EXPECT_GE(stats.bin.edges, mem.num_directed_edges);
      EXPECT_GT(stats.shard_bytes, 0u);
      EXPECT_LE(stats.peak_resident_bytes, stats.budget_bytes);
      comm.barrier();
    });
    fs::remove_all(dir);
  }
}

TEST(OocPipeline, MultiRunSpillsMergeLosslessly) {
  // A budget small enough to force many runs per rank: the k-way merge and
  // cross-run dedup must still reproduce the in-memory build exactly.
  KroneckerParams params;
  params.scale = 10;
  const std::string dir = ::testing::TempDir() + "/g500_ooc_spill";
  fs::remove_all(dir);
  const int ranks = 2;
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    ooc::PipelineOptions opts;
    opts.resident_budget_bytes = 640u << 10;
    opts.chunk_edges = 512;
    const auto stats =
        ooc::build_sharded_kronecker(comm, params, dir, opts);
    const DistGraph mem = build_kronecker(comm, params);
    const DistGraph mapped = graph::load_sharded(comm, dir);
    expect_identical(mem, mapped);
    // More than one spilled run per rank, so the k-way merge actually had
    // to merge and dedup across runs; the cap still held throughout.
    EXPECT_GE(stats.runs_spilled, static_cast<std::uint64_t>(2 * ranks));
    EXPECT_LE(stats.peak_resident_bytes, opts.resident_budget_bytes);
    comm.barrier();
  });
  fs::remove_all(dir);
}

TEST(OocPipeline, ResidentBudgetIsAHardCap) {
  KroneckerParams params;
  params.scale = 8;
  const std::string dir = ::testing::TempDir() + "/g500_ooc_budget";
  fs::remove_all(dir);
  ooc::PipelineOptions opts;
  opts.resident_budget_bytes = 32u << 10;  // below even one run buffer
  simmpi::World world(1);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
    (void)ooc::build_sharded_kronecker(comm, params, dir, opts);
  }),
               std::runtime_error);
  fs::remove_all(dir);
}

TEST(OocPipeline, LoadRejectsMismatchedRankCount) {
  KroneckerParams params;
  params.scale = 6;
  const std::string dir = ::testing::TempDir() + "/g500_ooc_ranks";
  fs::remove_all(dir);
  {
    simmpi::World world(2);
    world.run([&](simmpi::Comm& comm) {
      (void)ooc::build_sharded_kronecker(comm, params, dir);
    });
  }
  // A 1-rank world cannot load a 2-rank shard set.
  simmpi::World world(1);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
    (void)graph::load_sharded(comm, dir);
  }),
               std::runtime_error);
  fs::remove_all(dir);
}

TEST(OocPipeline, PullIndexCanBeSkipped) {
  KroneckerParams params;
  params.scale = 6;
  const std::string dir = ::testing::TempDir() + "/g500_ooc_nopull";
  fs::remove_all(dir);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    ooc::PipelineOptions opts;
    opts.build_pull_index = false;
    (void)ooc::build_sharded_kronecker(comm, params, dir, opts);
    const ShardedCsr shard =
        ShardedCsr::map(shard_path(dir, comm.rank(), comm.size()));
    EXPECT_FALSE(shard.has_pull());
    // The mapped graph still solves correctly without the pull index.
    const DistGraph mapped = graph::load_sharded(comm, dir);
    graph::BuildOptions bopts;
    bopts.build_pull_index = false;
    const DistGraph mem = build_kronecker(comm, params, bopts);
    const auto roots = core::sample_roots(comm, mem, 1, 0x0c);
    core::SsspConfig config;
    config.direction_opt = false;
    const auto a = core::delta_stepping(comm, mem, roots.front(), config);
    const auto b = core::delta_stepping(comm, mapped, roots.front(), config);
    ASSERT_EQ(a.dist.size(), b.dist.size());
    EXPECT_EQ(std::memcmp(a.dist.data(), b.dist.data(),
                          a.dist.size() * sizeof(Weight)),
              0);
    comm.barrier();
  });
  fs::remove_all(dir);
}

}  // namespace
