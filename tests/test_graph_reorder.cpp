// Tests for vertex relabeling: permutation validity and the invariance of
// shortest paths under relabeling.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "core/dijkstra.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "graph/reorder.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

void expect_bijection(const std::vector<VertexId>& perm, VertexId n) {
  ASSERT_EQ(perm.size(), n);
  std::set<VertexId> image(perm.begin(), perm.end());
  EXPECT_EQ(image.size(), n);
  if (n > 0) {
    EXPECT_EQ(*image.begin(), 0u);
    EXPECT_EQ(*image.rbegin(), n - 1);
  }
}

TEST(DegreeOrder, StarCenterGetsIdZero) {
  const EdgeList star = star_graph(32);
  const auto perm = degree_descending_permutation(star);
  expect_bijection(perm, 32);
  EXPECT_EQ(perm[0], 0u);  // the hub keeps the first slot
  // Leaves (all degree 1) stay in id order after the hub.
  for (VertexId v = 1; v < 32; ++v) EXPECT_EQ(perm[v], v);
}

TEST(DegreeOrder, HubsFormDenseLowPrefix) {
  KroneckerParams params;
  params.scale = 10;
  const EdgeList g = kronecker_graph(params);
  const auto perm = degree_descending_permutation(g);
  expect_bijection(perm, g.num_vertices);
  // Degrees along the new ordering must be non-increasing.
  std::vector<std::uint64_t> degree(g.num_vertices, 0);
  for (const auto& e : g.edges) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  const auto inverse = invert_permutation(perm);
  for (VertexId new_id = 1; new_id < g.num_vertices; ++new_id) {
    EXPECT_GE(degree[inverse[new_id - 1]], degree[inverse[new_id]])
        << "position " << new_id;
  }
}

TEST(RandomPermutation, IsBijectiveAndSeedDependent) {
  const auto a = random_permutation(1000, 7);
  const auto b = random_permutation(1000, 7);
  const auto c = random_permutation(1000, 8);
  expect_bijection(a, 1000);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Not the identity (probability ~ 0).
  EXPECT_NE(a, random_permutation(1000, 0xffffffffULL) /*any other*/);
  std::vector<VertexId> identity(1000);
  std::iota(identity.begin(), identity.end(), VertexId{0});
  EXPECT_NE(a, identity);
}

TEST(RandomPermutation, TinyDomains) {
  expect_bijection(random_permutation(0, 1), 0);
  expect_bijection(random_permutation(1, 1), 1);
  expect_bijection(random_permutation(2, 1), 2);
}

TEST(ApplyPermutation, RelabelsEndpointsKeepsWeights) {
  EdgeList g;
  g.num_vertices = 3;
  g.edges = {{0, 1, 0.25f}, {1, 2, 0.75f}};
  const std::vector<VertexId> perm = {2, 0, 1};
  const EdgeList out = apply_permutation(g, perm);
  ASSERT_EQ(out.edges.size(), 2u);
  EXPECT_EQ(out.edges[0].src, 2u);
  EXPECT_EQ(out.edges[0].dst, 0u);
  EXPECT_FLOAT_EQ(out.edges[0].weight, 0.25f);
  EXPECT_EQ(out.edges[1].src, 0u);
  EXPECT_EQ(out.edges[1].dst, 1u);
}

TEST(ApplyPermutation, RejectsNonBijections) {
  EdgeList g;
  g.num_vertices = 3;
  g.edges = {{0, 1, 0.5f}};
  EXPECT_THROW((void)apply_permutation(g, std::vector<VertexId>{0, 0, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)apply_permutation(g, std::vector<VertexId>{0, 1, 9}),
               std::invalid_argument);
  EXPECT_THROW((void)apply_permutation(g, std::vector<VertexId>{0, 1}),
               std::invalid_argument);
}

TEST(InvertPermutation, RoundTrips) {
  const auto perm = random_permutation(257, 3);
  const auto inverse = invert_permutation(perm);
  for (VertexId v = 0; v < 257; ++v) {
    EXPECT_EQ(inverse[perm[v]], v);
    EXPECT_EQ(perm[inverse[v]], v);
  }
}

TEST(InvertPermutation, RejectsNonBijections) {
  EXPECT_THROW((void)invert_permutation(std::vector<VertexId>{1, 1}),
               std::invalid_argument);
  EXPECT_THROW((void)invert_permutation(std::vector<VertexId>{2, 0}),
               std::invalid_argument);
}

TEST(Reorder, ShortestPathsAreInvariantUnderRelabeling) {
  // dist_relabelled[perm[v]] == dist_original[v] for any permutation.
  const EdgeList g = random_graph(128, 512, 21);
  const auto perm = random_permutation(g.num_vertices, 5);
  const EdgeList relabelled = apply_permutation(g, perm);
  const VertexId root = 7;
  const auto original = core::dijkstra(g, root);
  const auto mapped = core::dijkstra(relabelled, perm[root]);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    EXPECT_EQ(mapped.dist[perm[v]], original.dist[v]) << "vertex " << v;
  }
}

TEST(Reorder, DegreeOrderImprovesHubPrefixCoverage) {
  // After degree ordering, the first 1% of ids must cover a far larger
  // fraction of edge endpoints than before (the property hub caching and
  // dense hub state rely on).
  KroneckerParams params;
  params.scale = 11;
  const EdgeList g = kronecker_graph(params);
  const auto perm = degree_descending_permutation(g);
  const VertexId prefix = g.num_vertices / 100 + 1;
  auto coverage = [&](auto&& id_of) {
    std::uint64_t hits = 0;
    for (const auto& e : g.edges) {
      if (id_of(e.src) < prefix) ++hits;
      if (id_of(e.dst) < prefix) ++hits;
    }
    return hits;
  };
  const auto before = coverage([](VertexId v) { return v; });
  const auto after = coverage([&](VertexId v) { return perm[v]; });
  EXPECT_GT(after, before * 2);
}

}  // namespace
