// Async delta-stepping tests: the barrier-free engine must produce
// BIT-IDENTICAL distance arrays to the synchronous engine on every graph,
// rank count and config variant — including under fault injection — while
// issuing fewer global collectives.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "core/async_delta_stepping.hpp"
#include "core/delta_stepping.hpp"
#include "core/json.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"
#include "sssp_test_util.hpp"

namespace {

using namespace g500;
using graph::VertexId;

/// Run both engines on `list` over `ranks` from every root and require the
/// owned distance slices to match byte-for-byte.  Also checks the async
/// result against the official validator and that the async run issued
/// fewer global collectives than the synchronous one.
void expect_bit_identical(const graph::EdgeList& list, int ranks,
                          const std::vector<VertexId>& roots,
                          const core::SsspConfig& config = {}) {
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_distributed(
        comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    for (const auto root : roots) {
      core::SsspStats sync_stats;
      core::SsspStats async_stats;
      const auto sync = core::delta_stepping(comm, g, root, config,
                                             &sync_stats);
      const auto async =
          core::async_delta_stepping(comm, g, root, config, &async_stats);
      ASSERT_EQ(sync.dist.size(), async.dist.size());
      EXPECT_EQ(std::memcmp(sync.dist.data(), async.dist.data(),
                            sync.dist.size() * sizeof(graph::Weight)),
                0)
          << "distances differ from sync engine, root " << root << " ranks "
          << ranks;
      const auto verdict = core::validate_sssp(comm, g, root, async);
      EXPECT_TRUE(verdict.ok)
          << "async validation failed (root " << root << "): "
          << (verdict.errors.empty() ? "?" : verdict.errors.front());
      EXPECT_LT(async_stats.global_collectives, sync_stats.global_collectives)
          << "root " << root << " ranks " << ranks;
    }
  });
}

TEST(AsyncDeltaStepping, MatchesSyncOnStandardGraphs) {
  for (const auto& gc : g500::testing::standard_graph_cases()) {
    SCOPED_TRACE(gc.name);
    const auto list = gc.make();
    for (const int ranks : {1, 2, 5, 8}) {
      expect_bit_identical(list, ranks, {0, 1});
    }
  }
}

TEST(AsyncDeltaStepping, MatchesSyncAcrossConfigVariants) {
  graph::KroneckerParams params;
  params.scale = 8;
  const auto list = graph::kronecker_graph(params);

  core::SsspConfig coalesce_off;
  coalesce_off.coalesce = false;
  core::SsspConfig compress_off;
  compress_off.compress = false;
  core::SsspConfig hub_off;
  hub_off.hub_cache = false;
  core::SsspConfig fusion_off;
  fusion_off.local_fusion = false;
  core::SsspConfig eager;  // degenerate flush policy: every send ships
  eager.aggregator_capacity = 1;
  eager.aggregator_max_age = 1;
  core::SsspConfig wide_delta;
  wide_delta.delta = 2.0;

  for (const auto& config : {core::SsspConfig{}, coalesce_off, compress_off,
                             hub_off, fusion_off, eager, wide_delta}) {
    expect_bit_identical(list, 4, {1}, config);
  }
}

TEST(AsyncDeltaStepping, MultiSourceMatchesSync) {
  const auto list = graph::random_graph(128, 512, 99);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_distributed(
        comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const std::vector<VertexId> roots = {3, 60, 101};
    const auto sync = core::delta_stepping_multi(comm, g, roots);
    const auto async = core::async_delta_stepping_multi(comm, g, roots);
    ASSERT_EQ(sync.dist.size(), async.dist.size());
    EXPECT_EQ(std::memcmp(sync.dist.data(), async.dist.data(),
                          sync.dist.size() * sizeof(graph::Weight)),
              0);
  });
}

TEST(AsyncDeltaStepping, RejectsGoalDirectedPruning) {
  // Pruning needs a monotone execution order; chaotic relaxation has none.
  const auto list = graph::path_graph(16);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_distributed(
        comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const std::vector<graph::Weight> lb(
        static_cast<std::size_t>(g.local_count()), 0.0f);
    core::SsspConfig config;
    config.prune_lb = &lb;
    EXPECT_THROW((void)core::async_delta_stepping(comm, g, 0, config),
                 std::invalid_argument);
  });
}

TEST(AsyncDeltaStepping, RejectsEmptyRootSet) {
  const auto list = graph::path_graph(8);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_distributed(
        comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    EXPECT_THROW((void)core::async_delta_stepping_multi(comm, g, {}),
                 std::invalid_argument);
  });
}

TEST(AsyncDeltaStepping, ReportsAsyncTelemetry) {
  graph::KroneckerParams params;
  params.scale = 8;
  const auto list = graph::kronecker_graph(params);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_distributed(
        comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    core::SsspStats stats;
    (void)core::async_delta_stepping(comm, g, 1, {}, &stats);
    EXPECT_GT(stats.sub_rounds, 0u);
    EXPECT_GT(stats.relax_applied, 0u);
    // A connected scale-8 Kronecker pushes enough relaxations that at least
    // one flush of either kind must have happened on some rank.
    const auto gs = core::global_stats(comm, stats);
    EXPECT_GT(gs.aggregator_flush_capacity + gs.aggregator_flush_timeout, 0u);
    // The whole async phase is barrier-free: the only collectives are the
    // settle sweep's convergence checks.
    EXPECT_LE(gs.global_collectives, 4u);
    const auto sj = core::to_json(gs);
    EXPECT_TRUE(sj.contains("global_collectives"));
    EXPECT_TRUE(sj.contains("sub_rounds"));
    EXPECT_TRUE(sj.contains("aggregator_flush_capacity"));
    EXPECT_TRUE(sj.contains("aggregator_flush_timeout"));
  });
}

TEST(AsyncDeltaStepping, RunnerProtocolValidates) {
  graph::KroneckerParams params;
  params.scale = 8;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    core::RunnerOptions opts;
    opts.num_roots = 4;
    opts.algorithm = core::Algorithm::kAsyncDeltaStepping;
    const auto report = core::run_benchmark(comm, g, opts);
    EXPECT_TRUE(report.all_valid);
    EXPECT_EQ(report.runs.size(), 4u);
  });
}

// --- Fault injection ----------------------------------------------------

TEST(AsyncDeltaStepping, StallDoesNotChangeDistances) {
  // A stalled rank slows the stream but the fixed point is schedule-
  // independent: distances stay bit-identical to the synchronous run.
  graph::KroneckerParams params;
  params.scale = 8;
  const auto list = graph::kronecker_graph(params);
  const int ranks = 4;

  std::vector<graph::Weight> reference;
  {
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const graph::DistGraph g = graph::build_distributed(
          comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
          list.num_vertices);
      const auto sync = core::delta_stepping(comm, g, 1);
      const auto gathered = core::gather_result(comm, g, sync);
      if (comm.rank() == 0) reference = gathered.dist;
    });
  }

  simmpi::World world(ranks);
  std::vector<graph::DistGraph> graphs(static_cast<std::size_t>(ranks));
  world.run([&](simmpi::Comm& comm) {
    graphs[static_cast<std::size_t>(comm.rank())] = graph::build_distributed(
        comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
  });
  // Installed after the build, so the stalls hit the solve's own parcel
  // deposits / settle collectives (every rank performs several: at least
  // two token forwards plus the settle allreduce).
  world.set_fault_plan(simmpi::FaultPlan{}
                           .stall(/*rank=*/1, /*at_call=*/2, /*seconds=*/0.5)
                           .stall(/*rank=*/3, /*at_call=*/3, /*seconds=*/0.5));
  world.run([&](simmpi::Comm& comm) {
    const auto& g = graphs[static_cast<std::size_t>(comm.rank())];
    const auto async = core::async_delta_stepping(comm, g, 1);
    const auto gathered = core::gather_result(comm, g, async);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.dist.size(), reference.size());
      EXPECT_EQ(std::memcmp(gathered.dist.data(), reference.data(),
                            reference.size() * sizeof(graph::Weight)),
                0);
    }
  });
  EXPECT_EQ(world.injector()->events_fired(), 2u);
}

TEST(AsyncDeltaStepping, CrashMidRunUnwindsAndRetrySucceeds) {
  graph::KroneckerParams params;
  params.scale = 8;
  const auto list = graph::kronecker_graph(params);
  const int ranks = 4;

  simmpi::World world(ranks);
  // Build once so the crash can be aimed past graph construction, at a
  // collective (or parcel deposit) inside the async solve itself.
  std::vector<graph::DistGraph> graphs(static_cast<std::size_t>(ranks));
  world.run([&](simmpi::Comm& comm) {
    graphs[static_cast<std::size_t>(comm.rank())] = graph::build_distributed(
        comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
  });
  world.set_fault_plan(simmpi::FaultPlan{}.crash(/*rank=*/2, /*at_call=*/5));

  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 (void)core::async_delta_stepping(
                     comm, graphs[static_cast<std::size_t>(comm.rank())], 1);
               }),
               simmpi::InjectedCrashError);

  // The crash latch is one-shot: the retry completes and still matches the
  // synchronous engine bit-for-bit.
  world.run([&](simmpi::Comm& comm) {
    const auto& g = graphs[static_cast<std::size_t>(comm.rank())];
    const auto sync = core::delta_stepping(comm, g, 1);
    const auto async = core::async_delta_stepping(comm, g, 1);
    ASSERT_EQ(sync.dist.size(), async.dist.size());
    EXPECT_EQ(std::memcmp(sync.dist.data(), async.dist.data(),
                          sync.dist.size() * sizeof(graph::Weight)),
              0);
  });
}

}  // namespace
