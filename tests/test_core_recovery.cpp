// Checkpoint/restart tests: snapshot integrity, bit-identical resumed
// results, end-to-end crash recovery, and the resilient benchmark driver.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/delta_stepping.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

KroneckerParams small_graph() {
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 8;
  return params;
}

core::SsspConfig checkpointed_config(std::uint64_t interval) {
  core::SsspConfig config;
  config.checkpoint_interval = interval;
  return config;
}

/// Auto-delta drains this small graph in a couple of buckets; narrow the
/// buckets so the sweep spans many checkpoint epochs worth crashing into.
core::SsspConfig long_sweep_config(std::uint64_t interval) {
  auto config = checkpointed_config(interval);
  config.delta = 0.01;
  return config;
}

// Vertices with a real neighborhood in the scale-9 instance (vertex 1 is
// near-isolated and drains in a single bucket).  From these, delta = 0.01
// yields ~90 bucket epochs — room to crash mid-sweep.
constexpr VertexId kConnectedRoot = 8;
constexpr VertexId kOtherConnectedRoot = 199;

/// Reference distances from an undisturbed run, gathered globally.
std::vector<Weight> clean_distances(const KroneckerParams& params,
                                    VertexId root, int num_ranks,
                                    const core::SsspConfig& config) {
  simmpi::World world(num_ranks);
  std::vector<Weight> dist;
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    const auto result = core::delta_stepping(comm, g, root, config);
    const auto whole = core::gather_result(comm, g, result);
    if (comm.rank() == 0) dist = whole.dist;
  });
  return dist;
}

TEST(Checkpoint, SealVerifyAndBitRotDetection) {
  core::CheckpointState state;
  state.roots_digest = 77;
  state.last_bucket = 4;
  state.buckets_done = 5;
  state.dist = {0.0f, 1.5f, 2.25f};
  state.parent = {0, 0, 1};
  state.seal();
  EXPECT_TRUE(state.valid);
  EXPECT_TRUE(state.checksum_ok());
  EXPECT_NO_THROW(state.verify());

  state.dist[1] = 1.25f;  // bit rot in "stable storage"
  EXPECT_FALSE(state.checksum_ok());
  EXPECT_THROW(state.verify(), core::CheckpointError);

  state.clear();
  EXPECT_FALSE(state.valid);
  EXPECT_NO_THROW(state.verify());  // invalid snapshots are simply unusable
}

TEST(Checkpoint, CheckpointedRunMatchesPlainBitForBit) {
  const auto params = small_graph();
  const VertexId root = 1;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    const auto plain = core::delta_stepping(comm, g, root);

    core::CheckpointState ckpt;
    core::SsspStats stats;
    const auto checkpointed = core::delta_stepping_checkpointed(
        comm, g, root, checkpointed_config(1), &ckpt, &stats);
    EXPECT_EQ(checkpointed.dist, plain.dist);
    EXPECT_EQ(checkpointed.parent, plain.parent);
    EXPECT_GT(stats.checkpoints, 0u);
    EXPECT_EQ(stats.restores, 0u);
    EXPECT_GE(stats.checkpoint_seconds, 0.0);
    // A completed run leaves no snapshot behind.
    EXPECT_FALSE(ckpt.valid);
  });
}

TEST(Checkpoint, RestoreRefusesSnapshotFromDifferentRun) {
  const auto params = small_graph();
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    // Snapshot of one root's run, kept alive by killing the run via
    // max_buckets before it completes.
    core::CheckpointState ckpt;
    auto config = long_sweep_config(1);
    config.max_buckets = 2;
    core::SsspStats stats;
    EXPECT_THROW((void)core::delta_stepping_checkpointed(
                     comm, g, kConnectedRoot, config, &ckpt, &stats),
                 std::runtime_error);
    ASSERT_TRUE(ckpt.valid);

    // A different root must ignore it and still be correct.
    core::SsspStats other_stats;
    const auto result = core::delta_stepping_checkpointed(
        comm, g, kOtherConnectedRoot, checkpointed_config(0), &ckpt,
        &other_stats);
    EXPECT_EQ(other_stats.restores, 0u);
    const auto verdict =
        core::validate_sssp(comm, g, kOtherConnectedRoot, result);
    EXPECT_TRUE(verdict.ok);
  });
}

TEST(Checkpoint, EndToEndCrashRecoveryIsBitIdentical) {
  // The acceptance drill: kill a rank mid-run with an injected fault,
  // restart from the checkpoints, and demand the recovered distances be
  // bit-identical to an undisturbed run.
  const auto params = small_graph();
  const VertexId root = kConnectedRoot;
  const int P = 4;
  const int victim = 2;
  const auto config = long_sweep_config(2);
  const auto reference = clean_distances(params, root, P, config);
  ASSERT_FALSE(reference.empty());

  // Probe with an empty plan to learn the victim's collective counts:
  // B for graph construction alone, T for construction plus the sweep.
  std::uint64_t build_calls = 0;
  std::uint64_t total_calls = 0;
  {
    simmpi::World probe(P);
    probe.set_fault_plan(simmpi::FaultPlan{});
    probe.run([&](simmpi::Comm& comm) { (void)build_kronecker(comm, params); });
    build_calls = probe.injector()->collective_calls(victim);
    probe.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      core::CheckpointState ckpt;
      (void)core::delta_stepping_checkpointed(comm, g, root, config, &ckpt);
    });
    total_calls = probe.injector()->collective_calls(victim);
  }
  ASSERT_GT(total_calls, 2 * build_calls + 16)
      << "graph too small to crash mid-sweep meaningfully";

  // The probe counted construction twice (once per run); the real attempt
  // builds once, so its sweep spans [B, B + S).  Crash two thirds in.
  const std::uint64_t sweep_calls = total_calls - 2 * build_calls;
  const std::uint64_t crash_at = build_calls + sweep_calls * 2 / 3;

  simmpi::World world(P);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(victim, crash_at));
  std::vector<core::CheckpointState> snapshots(P);

  auto attempt = [&](std::vector<Weight>* out_dist,
                     core::SsspStats* out_stats) {
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      core::SsspStats stats;
      const auto result = core::delta_stepping_checkpointed(
          comm, g, root, config,
          &snapshots[static_cast<std::size_t>(comm.rank())], &stats);
      const auto verdict = core::validate_sssp(comm, g, root, result);
      EXPECT_TRUE(verdict.ok);
      const auto whole = core::gather_result(comm, g, result);
      if (comm.rank() == 0) {
        if (out_dist != nullptr) *out_dist = whole.dist;
        if (out_stats != nullptr) *out_stats = stats;
      }
    });
  };

  EXPECT_THROW(attempt(nullptr, nullptr), simmpi::InjectedCrashError);
  // The crash interrupted the sweep after at least one snapshot epoch.
  ASSERT_TRUE(snapshots[0].valid)
      << "crash fired before the first checkpoint — graph/interval too small";

  std::vector<Weight> recovered;
  core::SsspStats stats;
  attempt(&recovered, &stats);  // consumed fault does not refire
  EXPECT_GE(stats.restores, 1u);
  EXPECT_EQ(recovered, reference);  // bit-identical, not just equivalent
}

TEST(ResilientRunner, RecoversFromMidBenchmarkCrash) {
  const auto params = small_graph();
  const int P = 4;
  core::RunnerOptions options;
  options.num_roots = 2;
  options.max_attempts = 3;
  options.retry_backoff_seconds = 0.5;
  options.config.checkpoint_interval = 2;

  const auto build = [&](simmpi::Comm& comm) {
    return build_kronecker(comm, params);
  };

  // Probe a fault-free resilient run for the total collective count, then
  // replay with a crash planted past the setup phase.
  std::uint64_t setup_calls = 0;
  std::uint64_t total_calls = 0;
  {
    simmpi::World probe(P);
    probe.set_fault_plan(simmpi::FaultPlan{});
    probe.run([&](simmpi::Comm& comm) {
      const DistGraph g = build(comm);
      (void)core::sample_roots(comm, g, options.num_roots, options.root_seed);
    });
    setup_calls = probe.injector()->collective_calls(0);
    const auto clean = core::run_benchmark_resilient(probe, build, options);
    ASSERT_TRUE(clean.all_valid);
    ASSERT_EQ(clean.runs.size(), 2u);
    total_calls = probe.injector()->collective_calls(0);
  }
  // Probe counted build+sample three times (the explicit run, the driver's
  // phase A, and its phase B); the crashing driver reaches the root sweep
  // after two (phase A, then phase B's own build).  Crash halfway through.
  ASSERT_GT(total_calls, 3 * setup_calls + 8);
  const std::uint64_t sweep_calls = total_calls - 3 * setup_calls;
  const std::uint64_t crash_at = 2 * setup_calls + sweep_calls / 2;

  simmpi::World world(P);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(1, crash_at));
  const auto report = core::run_benchmark_resilient(world, build, options);

  EXPECT_TRUE(report.all_valid);
  EXPECT_EQ(report.failed_roots, 0);
  ASSERT_EQ(report.runs.size(), 2u);
  int total_attempts = 0;
  for (const auto& run : report.runs) {
    EXPECT_TRUE(run.valid);
    total_attempts += run.attempts;
  }
  EXPECT_GT(total_attempts, 2);  // the crash cost at least one retry
  EXPECT_GT(report.backoff_seconds, 0.0);
  EXPECT_EQ(world.injector()->events_fired(), 1u);
}

TEST(ResilientRunner, ExhaustedRootDegradesToInvalidEntry) {
  const auto params = small_graph();
  const int P = 2;
  core::RunnerOptions options;
  options.num_roots = 2;
  options.max_attempts = 1;  // no second chances
  options.config.checkpoint_interval = 2;

  const auto build = [&](simmpi::Comm& comm) {
    return build_kronecker(comm, params);
  };

  std::uint64_t setup_calls = 0;
  std::uint64_t total_calls = 0;
  {
    simmpi::World probe(P);
    probe.set_fault_plan(simmpi::FaultPlan{});
    const auto clean = core::run_benchmark_resilient(probe, build, options);
    ASSERT_TRUE(clean.all_valid);
    total_calls = probe.injector()->collective_calls(0);
  }
  {
    simmpi::World probe(P);
    probe.set_fault_plan(simmpi::FaultPlan{});
    probe.run([&](simmpi::Comm& comm) {
      const DistGraph g = build(comm);
      (void)core::sample_roots(comm, g, options.num_roots, options.root_seed);
    });
    setup_calls = probe.injector()->collective_calls(0);
  }
  const std::uint64_t crash_at =
      2 * setup_calls + (total_calls - 2 * setup_calls) / 2;

  simmpi::World world(P);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(0, crash_at));
  const auto report = core::run_benchmark_resilient(world, build, options);

  EXPECT_FALSE(report.all_valid);
  EXPECT_EQ(report.failed_roots, 1);
  ASSERT_EQ(report.runs.size(), 2u);
  int invalid = 0;
  for (const auto& run : report.runs) {
    if (!run.valid) {
      ++invalid;
      EXPECT_EQ(run.seconds, 0.0);
      EXPECT_EQ(run.teps, 0.0);
    }
  }
  EXPECT_EQ(invalid, 1);
}

TEST(ResilientRunner, CleanWorldMatchesStandardProtocol) {
  const auto params = small_graph();
  simmpi::World world(2);
  core::RunnerOptions options;
  options.num_roots = 3;
  const auto build = [&](simmpi::Comm& comm) {
    return build_kronecker(comm, params);
  };
  const auto resilient = core::run_benchmark_resilient(world, build, options);
  ASSERT_EQ(resilient.runs.size(), 3u);
  EXPECT_TRUE(resilient.all_valid);
  EXPECT_EQ(resilient.recovered_roots, 0);
  EXPECT_EQ(resilient.failed_roots, 0);
  for (const auto& run : resilient.runs) {
    EXPECT_EQ(run.attempts, 1);
    EXPECT_FALSE(run.recovered);
  }

  // Same roots as the in-world protocol on the same world shape.
  std::vector<VertexId> standard_roots;
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build(comm);
    const auto roots =
        core::sample_roots(comm, g, options.num_roots, options.root_seed);
    if (comm.rank() == 0) standard_roots = roots;
  });
  ASSERT_EQ(standard_roots.size(), 3u);
  for (std::size_t i = 0; i < standard_roots.size(); ++i) {
    EXPECT_EQ(resilient.runs[i].root, standard_roots[i]);
  }
}

// Bit rot in "stable storage" must surface as CheckpointError at restore
// time — resuming silently from damaged distances would poison the sweep.
TEST(Checkpoint, RestoreThrowsOnSnapshotBitRot) {
  const auto params = small_graph();
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::CheckpointState ckpt;
    auto truncated = long_sweep_config(1);
    truncated.max_buckets = 2;
    EXPECT_THROW((void)core::delta_stepping_checkpointed(
                     comm, g, kConnectedRoot, truncated, &ckpt),
                 std::runtime_error);
    ASSERT_TRUE(ckpt.valid);
    ASSERT_FALSE(ckpt.dist.empty());
    ckpt.dist[0] = -7.5f;  // rot one value; the checksum no longer matches
    EXPECT_THROW((void)core::delta_stepping_checkpointed(
                     comm, g, kConnectedRoot, long_sweep_config(1), &ckpt),
                 core::CheckpointError);
  });
}

// A snapshot from the very first bucket epoch is already resumable; the
// recovered sweep must still be bit-identical to an undisturbed one.
TEST(Checkpoint, ResumeFromFirstEpochSnapshotIsBitIdentical) {
  const auto params = small_graph();
  const auto config = long_sweep_config(1);
  const auto reference = clean_distances(params, kConnectedRoot, 2, config);
  ASSERT_FALSE(reference.empty());
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::CheckpointState ckpt;
    auto first = config;
    first.max_buckets = 1;  // die right after the first epoch's snapshot
    EXPECT_THROW((void)core::delta_stepping_checkpointed(
                     comm, g, kConnectedRoot, first, &ckpt),
                 std::runtime_error);
    ASSERT_TRUE(ckpt.valid);
    EXPECT_EQ(ckpt.buckets_done, 1u);

    core::SsspStats stats;
    const auto result = core::delta_stepping_checkpointed(
        comm, g, kConnectedRoot, config, &ckpt, &stats);
    EXPECT_GE(stats.restores, 1u);
    const auto whole = core::gather_result(comm, g, result);
    if (comm.rank() == 0) {
      EXPECT_EQ(whole.dist, reference);
    }
  });
}

// Injected stalls during the recovery attempt charge virtual delay but
// must not perturb the restored sweep.
TEST(Checkpoint, RestoreUnderInjectedStallIsBitIdentical) {
  const auto params = small_graph();
  const auto config = long_sweep_config(2);
  const auto reference = clean_distances(params, kConnectedRoot, 2, config);
  ASSERT_FALSE(reference.empty());
  simmpi::World world(2);
  world.set_fault_plan(simmpi::FaultPlan{}
                           .stall(1, 60, 2.0)
                           .stall(1, 200, 2.0)
                           .stall(0, 400, 2.0));
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::CheckpointState ckpt;
    auto truncated = config;
    truncated.max_buckets = 4;
    EXPECT_THROW((void)core::delta_stepping_checkpointed(
                     comm, g, kConnectedRoot, truncated, &ckpt),
                 std::runtime_error);
    ASSERT_TRUE(ckpt.valid);
    core::SsspStats stats;
    const auto result = core::delta_stepping_checkpointed(
        comm, g, kConnectedRoot, config, &ckpt, &stats);
    EXPECT_GE(stats.restores, 1u);
    const auto whole = core::gather_result(comm, g, result);
    if (comm.rank() == 0) {
      EXPECT_EQ(whole.dist, reference);
    }
  });
  EXPECT_GT(world.aggregate_stats().stall_seconds, 0.0);
}

TEST(ResilientRunner, RejectsNonDeltaSteppingAlgorithms) {
  simmpi::World world(2);
  core::RunnerOptions options;
  options.algorithm = core::Algorithm::kBfs;
  EXPECT_THROW((void)core::run_benchmark_resilient(
                   world,
                   [](simmpi::Comm& comm) {
                     return build_kronecker(comm, KroneckerParams{});
                   },
                   options),
               std::invalid_argument);
}

}  // namespace
