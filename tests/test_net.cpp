// Unit tests for topologies and the collective cost model.
#include <gtest/gtest.h>

#include "net/costmodel.hpp"
#include "net/topology.hpp"

namespace {

using namespace g500::net;

LinkParams test_link() {
  LinkParams l;
  l.latency_us = 1.0;
  l.bandwidth_GBps = 10.0;
  l.injection_GBps = 10.0;
  return l;
}

// --------------------------------------------------------------- Flat

TEST(FlatTopology, HopsAreZeroOrOne) {
  FlatTopology t(8, test_link());
  EXPECT_EQ(t.hops(3, 3), 0);
  EXPECT_EQ(t.hops(0, 7), 1);
  EXPECT_EQ(t.num_nodes(), 8);
}

TEST(FlatTopology, FullBisection) {
  FlatTopology t(16, test_link());
  EXPECT_DOUBLE_EQ(t.bisection_links(), 8.0);
  EXPECT_DOUBLE_EQ(t.bisection_GBps(), 80.0);
}

TEST(FlatTopology, RejectsZeroNodes) {
  EXPECT_THROW(FlatTopology(0, test_link()), std::invalid_argument);
}

// ------------------------------------------------------------ FatTree

TEST(FatTreeTopology, HopCountsByLevel) {
  // radix 8: 4 nodes per edge switch, 16 per pod.
  FatTreeTopology t(64, 8, 1.0, test_link());
  EXPECT_EQ(t.nodes_per_edge_switch(), 4);
  EXPECT_EQ(t.nodes_per_pod(), 16);
  EXPECT_EQ(t.hops(0, 0), 0);
  EXPECT_EQ(t.hops(0, 3), 2);   // same edge switch
  EXPECT_EQ(t.hops(0, 4), 4);   // same pod, different switch
  EXPECT_EQ(t.hops(0, 16), 6);  // across pods
}

TEST(FatTreeTopology, TaperScalesBisection) {
  FatTreeTopology full(64, 8, 1.0, test_link());
  FatTreeTopology tapered(64, 8, 0.5, test_link());
  EXPECT_DOUBLE_EQ(tapered.bisection_links(), full.bisection_links() * 0.5);
}

TEST(FatTreeTopology, RejectsBadParameters) {
  EXPECT_THROW(FatTreeTopology(8, 1, 1.0, test_link()),
               std::invalid_argument);
  EXPECT_THROW(FatTreeTopology(8, 8, 0.0, test_link()),
               std::invalid_argument);
  EXPECT_THROW(FatTreeTopology(8, 8, 1.5, test_link()),
               std::invalid_argument);
}

// ------------------------------------------------------------- Sunway

TEST(SunwayTopology, SupernodeMembership) {
  SunwayTopology t(4, 256, 0.25, test_link());
  EXPECT_EQ(t.num_nodes(), 1024);
  EXPECT_EQ(t.supernode_of(0), 0);
  EXPECT_EQ(t.supernode_of(255), 0);
  EXPECT_EQ(t.supernode_of(256), 1);
  EXPECT_EQ(t.supernode_of(1023), 3);
}

TEST(SunwayTopology, HopsIntraVsInter) {
  SunwayTopology t(4, 256, 0.25, test_link());
  EXPECT_EQ(t.hops(5, 5), 0);
  EXPECT_EQ(t.hops(0, 200), 2);   // intra-supernode
  EXPECT_EQ(t.hops(0, 300), 5);   // inter-supernode
}

TEST(SunwayTopology, TaperedBisection) {
  SunwayTopology t(4, 256, 0.25, test_link());
  EXPECT_DOUBLE_EQ(t.bisection_links(), 0.25 * 1024 / 2.0);
}

TEST(SunwayTopology, SingleSupernodeIsFullBisection) {
  SunwayTopology t(1, 64, 0.25, test_link());
  EXPECT_DOUBLE_EQ(t.bisection_links(), 32.0);
}

TEST(SunwayTopology, LatencyScalesWithHops) {
  SunwayTopology t(2, 4, 1.0, test_link());
  EXPECT_DOUBLE_EQ(t.latency_us(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.latency_us(0, 5), 5.0);
}

// ----------------------------------------------------------- CostModel

TEST(CostModel, AlltoallvScalesWithBytes) {
  FlatTopology topo(64, test_link());
  CostModel cost(topo, 1);
  AlltoallTraffic small{1e6, 64e6, 0.5};
  AlltoallTraffic large{2e6, 128e6, 0.5};
  EXPECT_LT(cost.alltoallv_seconds(small, 64),
            cost.alltoallv_seconds(large, 64));
}

TEST(CostModel, ZeroBytesCostsOnlyLatency) {
  FlatTopology topo(16, test_link());
  CostModel cost(topo, 1);
  const double t = cost.alltoallv_seconds(AlltoallTraffic{}, 16);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 1e-3);  // pure latency term
}

TEST(CostModel, BisectionBindsWhenTapered) {
  // Heavily tapered Sunway: cross traffic should dominate injection.
  SunwayTopology tapered(16, 64, 0.01, test_link());
  SunwayTopology full(16, 64, 1.0, test_link());
  CostModel ct(tapered, 1);
  CostModel cf(full, 1);
  AlltoallTraffic traffic{1e6, 1024e6, 0.5};
  EXPECT_GT(ct.alltoallv_seconds(traffic, 1024),
            cf.alltoallv_seconds(traffic, 1024));
}

TEST(CostModel, SharedInjectionSlowsColocatedRanks) {
  FlatTopology topo(8, test_link());
  CostModel one(topo, 1);
  CostModel six(topo, 6);
  AlltoallTraffic traffic{8e6, 64e6, 0.0};  // injection-bound
  EXPECT_GT(six.alltoallv_seconds(traffic, 48),
            one.alltoallv_seconds(traffic, 8));
}

TEST(CostModel, AllreduceGrowsLogarithmically) {
  FlatTopology topo(1 << 20, test_link());
  CostModel cost(topo, 1);
  const double t1k = cost.allreduce_seconds(8, 1 << 10);
  const double t1m = cost.allreduce_seconds(8, 1 << 20);
  EXPECT_LT(t1k, t1m);
  EXPECT_NEAR(t1m / t1k, 2.0, 0.2);  // log2 doubles from 10 to 20
}

TEST(CostModel, BarrierEqualsEmptyAllreduce) {
  FlatTopology topo(64, test_link());
  CostModel cost(topo, 1);
  EXPECT_DOUBLE_EQ(cost.barrier_seconds(64), cost.allreduce_seconds(0.0, 64));
}

TEST(CostModel, AllgathervScalesWithTotalBytes) {
  FlatTopology topo(64, test_link());
  CostModel cost(topo, 1);
  EXPECT_LT(cost.allgatherv_seconds(1e6, 64),
            cost.allgatherv_seconds(1e9, 64));
}

TEST(CostModel, RejectsBadArguments) {
  FlatTopology topo(4, test_link());
  EXPECT_THROW(CostModel(topo, 0), std::invalid_argument);
  CostModel cost(topo, 1);
  EXPECT_THROW((void)cost.allreduce_seconds(8, 0), std::invalid_argument);
  EXPECT_THROW((void)cost.alltoallv_seconds(AlltoallTraffic{}, 0),
               std::invalid_argument);
}

}  // namespace
