// Tests for distributed graph construction: cleaning semantics, rank-count
// invariance, hub selection.
#include <gtest/gtest.h>

#include <map>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// Gather the full directed edge set (src, dst, w) of a DistGraph.
std::map<std::pair<VertexId, VertexId>, Weight> collect_edges(
    simmpi::Comm& comm, const DistGraph& g) {
  struct Row {
    VertexId src, dst;
    Weight w;
  };
  std::vector<Row> mine;
  const VertexId my_begin = g.part.begin(comm.rank());
  for (LocalId u = 0; u < g.csr.num_local(); ++u) {
    for (std::uint64_t e = g.csr.edges_begin(u); e < g.csr.edges_end(u); ++e) {
      mine.push_back(Row{my_begin + u, g.csr.dst(e), g.csr.weight(e)});
    }
  }
  const auto all = comm.allgatherv(mine);
  std::map<std::pair<VertexId, VertexId>, Weight> out;
  for (const auto& r : all) out[{r.src, r.dst}] = r.w;
  return out;
}

TEST(Builder, DropsSelfLoopsAndDedupsToMinWeight) {
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {
      {0, 1, 0.9f}, {1, 0, 0.2f},  // duplicate in both orientations
      {0, 1, 0.5f},                // duplicate same orientation
      {2, 2, 0.1f},                // self loop
      {2, 3, 0.7f},
  };
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()), 4);
    EXPECT_EQ(g.num_input_edges, 5u);
    EXPECT_EQ(g.num_directed_edges, 4u);  // {0,1} + {2,3}, both directions
    const auto edges = collect_edges(comm, g);
    ASSERT_EQ(edges.size(), 4u);
    EXPECT_FLOAT_EQ(edges.at({0, 1}), 0.2f);
    EXPECT_FLOAT_EQ(edges.at({1, 0}), 0.2f);
    EXPECT_FLOAT_EQ(edges.at({2, 3}), 0.7f);
    EXPECT_FLOAT_EQ(edges.at({3, 2}), 0.7f);
    EXPECT_EQ(edges.count({2, 2}), 0u);
  });
}

class BuilderRankSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Ranks, BuilderRankSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST_P(BuilderRankSweep, GlobalStructureIsRankCountInvariant) {
  KroneckerParams params;
  params.scale = 8;
  params.edgefactor = 8;

  // Reference: single-rank build.
  std::map<std::pair<VertexId, VertexId>, Weight> reference;
  {
    simmpi::World world(1);
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      reference = collect_edges(comm, g);
    });
  }

  simmpi::World world(GetParam());
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    const auto edges = collect_edges(comm, g);
    ASSERT_EQ(edges.size(), reference.size());
    for (const auto& [key, w] : reference) {
      auto it = edges.find(key);
      ASSERT_NE(it, edges.end())
          << "missing edge " << key.first << "->" << key.second;
      EXPECT_FLOAT_EQ(it->second, w);
    }
    EXPECT_EQ(g.num_input_edges, params.num_edges());
  });
}

TEST_P(BuilderRankSweep, HubListIsIdenticalOnAllRanks) {
  KroneckerParams params;
  params.scale = 9;
  simmpi::World world(GetParam());
  BuildOptions opts;
  opts.hub_count = 16;
  const auto hub_lists =
      world.run_collect<std::vector<VertexId>>([&](simmpi::Comm& comm) {
        return build_kronecker(comm, params, opts).hubs;
      });
  for (std::size_t r = 1; r < hub_lists.size(); ++r) {
    EXPECT_EQ(hub_lists[r], hub_lists[0]);
  }
  EXPECT_EQ(hub_lists[0].size(), 16u);
}

TEST(Builder, HubsAreTheTopDegreeVertices) {
  // Star graph: vertex 0 has degree n-1, all others degree 1.
  const EdgeList star = star_graph(64);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    BuildOptions opts;
    opts.hub_count = 4;
    const DistGraph g = build_distributed(
        comm, slice_for_rank(star, comm.rank(), comm.size()), 64, opts);
    ASSERT_EQ(g.hubs.size(), 4u);
    EXPECT_EQ(g.hubs[0], 0u);           // the center
    EXPECT_EQ(g.hub_degrees[0], 63u);
    for (std::size_t i = 1; i < 4; ++i) {
      EXPECT_EQ(g.hub_degrees[i], 1u);
    }
    // Ties broken by ascending id.
    EXPECT_LT(g.hubs[1], g.hubs[2]);
    EXPECT_LT(g.hubs[2], g.hubs[3]);
  });
}

TEST(Builder, HubCountZeroDisablesHubs) {
  KroneckerParams params;
  params.scale = 7;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    BuildOptions opts;
    opts.hub_count = 0;
    const DistGraph g = build_kronecker(comm, params, opts);
    EXPECT_TRUE(g.hubs.empty());
  });
}

TEST(Builder, PullIndexOptional) {
  KroneckerParams params;
  params.scale = 7;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    BuildOptions opts;
    opts.build_pull_index = false;
    const DistGraph g = build_kronecker(comm, params, opts);
    EXPECT_EQ(g.pull.num_entries(), 0u);
    BuildOptions with;
    const DistGraph g2 = build_kronecker(comm, params, with);
    EXPECT_EQ(g2.pull.num_entries(), g2.csr.num_edges());
  });
}

TEST(Builder, DegreeHistogramCountsOwnedVertices) {
  const EdgeList path = path_graph(16);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(path, comm.rank(), comm.size()), 16);
    EXPECT_EQ(g.degree_hist.total_count(), g.csr.num_local());
  });
}

TEST(Builder, SliceForRankTilesInput) {
  const EdgeList whole = path_graph(100);
  std::size_t total = 0;
  for (int r = 0; r < 7; ++r) {
    total += slice_for_rank(whole, r, 7).edges.size();
  }
  EXPECT_EQ(total, whole.edges.size());
  EXPECT_THROW((void)slice_for_rank(whole, 7, 7), std::invalid_argument);
}

TEST(Builder, RejectsOutOfRangeEndpoints) {
  EdgeList bad;
  bad.num_vertices = 4;
  bad.edges = {{0, 9, 0.5f}};
  simmpi::World world(1);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 (void)build_distributed(comm, bad, 4);
               }),
               std::out_of_range);
}

TEST(Builder, EmptyVertexSetRejected) {
  simmpi::World world(1);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 (void)build_distributed(comm, EdgeList{}, 0);
               }),
               std::invalid_argument);
}

TEST(Builder, EdgelessGraphBuilds) {
  EdgeList isolated;
  isolated.num_vertices = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(comm, isolated, 8);
    EXPECT_EQ(g.num_directed_edges, 0u);
    EXPECT_TRUE(g.hubs.empty());  // no vertex has degree > 0
  });
}

}  // namespace
