// Tests for the serving layer's LRU root-result cache.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "serve/cache.hpp"

namespace {

using namespace g500;
using serve::RootCache;

RootCache::Slice slice_of(float value) {
  return std::make_shared<const std::vector<graph::Weight>>(4, value);
}

TEST(RootCache, HitMissAndLruOrder) {
  // Budget for exactly two entries of 100 bytes each.
  RootCache cache(200, 100);
  EXPECT_EQ(cache.stats().capacity_entries, 2u);

  EXPECT_EQ(cache.lookup(1), nullptr);
  cache.insert(1, slice_of(1.0f));
  cache.insert(2, slice_of(2.0f));
  ASSERT_NE(cache.lookup(1), nullptr);  // 1 is now most-recent

  cache.insert(3, slice_of(3.0f));  // evicts 2, the least-recent
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(3));

  const auto& s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.inserts, 3u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.resident_entries, 2u);
  EXPECT_EQ(s.resident_bytes, 200u);
}

TEST(RootCache, ContainsDoesNotCountOrReorder) {
  RootCache cache(200, 100);
  cache.insert(1, slice_of(1.0f));
  cache.insert(2, slice_of(2.0f));
  EXPECT_TRUE(cache.contains(1));  // no LRU refresh
  cache.insert(3, slice_of(3.0f));
  // 1 was least-recent despite the contains() probe, so it was evicted.
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(RootCache, ZeroBudgetRejectsInserts) {
  RootCache cache(0, 100);
  EXPECT_EQ(cache.stats().capacity_entries, 0u);
  cache.insert(1, slice_of(1.0f));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(RootCache, ReplaceExistingKeyKeepsFootprint) {
  RootCache cache(100, 100);
  cache.insert(7, slice_of(1.0f));
  cache.insert(7, slice_of(9.0f));
  EXPECT_EQ(cache.stats().resident_entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  const auto got = cache.lookup(7);
  ASSERT_NE(got, nullptr);
  EXPECT_FLOAT_EQ(got->front(), 9.0f);
}

TEST(RootCache, SharedSliceSurvivesEviction) {
  RootCache cache(100, 100);
  cache.insert(1, slice_of(1.0f));
  const auto held = cache.lookup(1);
  ASSERT_NE(held, nullptr);
  cache.insert(2, slice_of(2.0f));  // evicts key 1
  EXPECT_FALSE(cache.contains(1));
  // The caller's reference keeps the evicted slice alive and intact.
  EXPECT_FLOAT_EQ(held->front(), 1.0f);
}

TEST(RootCache, ResetCountersKeepsResidency) {
  RootCache cache(300, 100);
  cache.insert(1, slice_of(1.0f));
  (void)cache.lookup(1);
  (void)cache.lookup(5);
  cache.reset_counters();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().inserts, 0u);
  // Residency survives: the next lookup is a hit, not a miss.
  EXPECT_NE(cache.lookup(1), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().resident_entries, 1u);
}

TEST(RootCache, ClearDropsEverything) {
  RootCache cache(300, 100);
  cache.insert(1, slice_of(1.0f));
  cache.insert(2, slice_of(2.0f));
  cache.clear();
  EXPECT_EQ(cache.stats().resident_entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
}

TEST(RootCache, HitRate) {
  RootCache cache(200, 100);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);  // no lookups yet
  cache.insert(1, slice_of(1.0f));
  (void)cache.lookup(1);
  (void)cache.lookup(1);
  (void)cache.lookup(9);
  EXPECT_NEAR(cache.stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

}  // namespace
