// Tests for distributed PageRank: bit-identity against a sequential
// reference (the determinism contract in core/pagerank.hpp), convergence
// behaviour, and the empty/disconnected edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/pagerank.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// Canonical adjacency the builder produces: undirected, self-loops
/// dropped, parallel edges deduplicated, neighbours in ascending order.
std::vector<std::vector<VertexId>> canonical_adjacency(const EdgeList& list) {
  std::vector<std::vector<VertexId>> adj(list.num_vertices);
  for (const auto& e : list.edges) {
    if (e.src == e.dst) continue;
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

/// Sequential reference with the exact arithmetic of core::pagerank:
/// contributions divided per vertex, sums in ascending neighbour order,
/// dangling mass leaking.  Bit-identical, not just close.
std::vector<double> reference_pagerank(const EdgeList& list,
                                       const core::PageRankConfig& config) {
  const auto adj = canonical_adjacency(list);
  const auto n = static_cast<double>(list.num_vertices);
  const double teleport = (1.0 - config.damping) / n;
  std::vector<double> pr(list.num_vertices, 1.0 / n);
  std::vector<double> contrib(list.num_vertices, 0.0);
  std::vector<double> next(list.num_vertices, 0.0);
  for (std::uint64_t iter = 0; iter < config.max_iters; ++iter) {
    for (VertexId v = 0; v < list.num_vertices; ++v) {
      contrib[v] = adj[v].empty()
                       ? 0.0
                       : pr[v] / static_cast<double>(adj[v].size());
    }
    for (VertexId v = 0; v < list.num_vertices; ++v) {
      double sum = 0.0;
      for (const auto u : adj[v]) sum += contrib[u];
      next[v] = teleport + config.damping * sum;
    }
    pr.swap(next);
    if (config.tolerance > 0.0) {
      // The residual the distributed engine computes is a sum of rank
      // partials; reproducing the stop decision exactly would couple this
      // reference to the partition, so tolerance runs are compared with
      // tolerance disabled instead (see ConvergesUnderTolerance).
      break;
    }
  }
  return pr;
}

void expect_matches_reference(const EdgeList& list, int ranks,
                              const core::PageRankConfig& config = {}) {
  const auto want = reference_pagerank(list, config);
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto mine = core::pagerank(comm, g, config);
    const auto full = comm.allgatherv(mine);
    ASSERT_EQ(full.size(), want.size());
    for (VertexId v = 0; v < list.num_vertices; ++v) {
      // EXPECT_EQ on doubles: the contract is BIT-identity, not closeness.
      EXPECT_EQ(full[v], want[v]) << "vertex " << v << " ranks " << ranks;
    }
  });
}

class PageRankSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, PageRankSweep, ::testing::Values(1, 2, 4, 8));

TEST_P(PageRankSweep, BitIdenticalToReferenceOnKronecker) {
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 8;
  expect_matches_reference(kronecker_graph(params), GetParam());
}

TEST_P(PageRankSweep, BitIdenticalToReferenceOnRandom) {
  expect_matches_reference(random_graph(200, 600, 17), GetParam());
}

TEST_P(PageRankSweep, BitIdenticalOnDisconnectedIslands) {
  // Two islands plus isolated dust: dangling vertices leak their mass.
  EdgeList list;
  list.num_vertices = 16;
  list.edges = {{0, 1, 0.5f}, {1, 2, 0.5f}, {2, 0, 0.5f},
                {8, 9, 0.5f}, {9, 10, 0.5f}};
  expect_matches_reference(list, GetParam());
}

TEST(PageRank, EdgelessGraphIsAllTeleport) {
  // No edges at all: every vertex is dangling, so after one iteration
  // every value is exactly the teleport term.
  EdgeList list;
  list.num_vertices = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto mine = core::pagerank(comm, g);
    const auto full = comm.allgatherv(mine);
    const double teleport = (1.0 - 0.85) / 8.0;
    for (const auto v : full) EXPECT_EQ(v, teleport);
  });
}

TEST(PageRank, MassIsBoundedByOne) {
  KroneckerParams params;
  params.scale = 8;
  const EdgeList list = kronecker_graph(params);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto mine = core::pagerank(comm, g);
    double local = 0.0;
    for (const auto v : mine) local += v;
    const double mass = comm.allreduce_sum(local);
    // Dangling mass leaks, so retained mass sits strictly inside (0, 1].
    EXPECT_GT(mass, 0.0);
    EXPECT_LE(mass, 1.0 + 1e-9);
  });
}

TEST(PageRank, ConvergesUnderTolerance) {
  const EdgeList list = ring_graph(64, 19);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    core::PageRankConfig config;
    config.max_iters = 200;
    config.tolerance = 1e-12;
    core::PageRankStats stats;
    // A regular ring's stationary vector is uniform: the L1 residual
    // contracts geometrically, so 200 iterations is far more than enough.
    const auto mine = core::pagerank(comm, g, config, &stats);
    EXPECT_TRUE(stats.converged);
    EXPECT_LT(stats.iterations, 200u);
    EXPECT_LE(stats.residual, config.tolerance);
    // Uniform degree => uniform PageRank.
    for (const auto v : mine) EXPECT_NEAR(v, 1.0 / 64.0, 1e-9);
  });
}

TEST(PageRank, StatsCountIterationsAndGathers) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::PageRankConfig config;
    config.max_iters = 5;
    core::PageRankStats stats;
    (void)core::pagerank(comm, g, config, &stats);
    EXPECT_EQ(stats.iterations, 5u);
    EXPECT_FALSE(stats.converged);
    // Every iteration gathers this rank's whole owned slice.
    EXPECT_EQ(stats.contribs_gathered, 5u * g.local_count());
  });
}

TEST(PageRank, RejectsBadConfig) {
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    KroneckerParams params;
    params.scale = 6;
    const DistGraph g = build_kronecker(comm, params);
    core::PageRankConfig bad;
    bad.damping = 1.0;
    EXPECT_THROW((void)core::pagerank(comm, g, bad), std::invalid_argument);
    bad.damping = -0.1;
    EXPECT_THROW((void)core::pagerank(comm, g, bad), std::invalid_argument);
    core::PageRankConfig neg;
    neg.tolerance = -1.0;
    EXPECT_THROW((void)core::pagerank(comm, g, neg), std::invalid_argument);
  });
}

}  // namespace
