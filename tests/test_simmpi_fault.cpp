// Fault-injection tests: planned crashes, payload corruption (with and
// without checksum detection), stall accounting, and the determinism /
// one-shot properties the checkpoint/restart layer relies on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"

namespace {

using namespace g500;

TEST(FaultInjection, CrashFiresAtExactCollective) {
  simmpi::World world(4);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(/*rank=*/1, /*at_call=*/3));
  int reached = 0;
  try {
    world.run([&](simmpi::Comm& comm) {
      comm.barrier();                 // call 1
      (void)comm.allreduce_sum(1);    // call 2
      if (comm.rank() == 1) ++reached;
      comm.barrier();                 // call 3: rank 1 dies here
      ADD_FAILURE() << "no rank survives the crash round";
    });
    FAIL() << "expected InjectedCrashError";
  } catch (const simmpi::InjectedCrashError& e) {
    EXPECT_EQ(e.rank(), 1);
    EXPECT_EQ(e.call_index(), 3u);
  }
  EXPECT_EQ(reached, 1);  // the victim made it past call 2
  EXPECT_EQ(world.injector()->events_fired(), 1u);
}

TEST(FaultInjection, SamePlanSameSeedIsDeterministic) {
  const auto plan = simmpi::FaultPlan::random(/*seed=*/42, /*num_ranks=*/4,
                                              /*crashes=*/2, /*corruptions=*/1,
                                              /*stalls=*/3, /*horizon=*/100);
  const auto again = simmpi::FaultPlan::random(42, 4, 2, 1, 3, 100);
  ASSERT_EQ(plan.events().size(), again.events().size());
  ASSERT_EQ(plan.events().size(), 6u);
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    EXPECT_EQ(plan.events()[i].kind, again.events()[i].kind);
    EXPECT_EQ(plan.events()[i].rank, again.events()[i].rank);
    EXPECT_EQ(plan.events()[i].at_call, again.events()[i].at_call);
    EXPECT_GE(plan.events()[i].rank, 0);
    EXPECT_LT(plan.events()[i].rank, 4);
    EXPECT_GE(plan.events()[i].at_call, 1u);
    EXPECT_LE(plan.events()[i].at_call, 100u);
  }
  // A different seed reshuffles the schedule.
  const auto other = simmpi::FaultPlan::random(43, 4, 2, 1, 3, 100);
  bool differs = false;
  for (std::size_t i = 0; i < plan.events().size(); ++i) {
    differs = differs || plan.events()[i].rank != other.events()[i].rank ||
              plan.events()[i].at_call != other.events()[i].at_call;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjection, CrashReproducesAcrossWorlds) {
  // The same plan against the same program kills the same rank at the same
  // call — the property that makes failure runs debuggable.
  for (int trial = 0; trial < 2; ++trial) {
    simmpi::World world(3);
    world.set_fault_plan(simmpi::FaultPlan{}.crash(2, 2));
    try {
      world.run([](simmpi::Comm& comm) {
        for (int i = 0; i < 5; ++i) (void)comm.allreduce_sum(i);
      });
      FAIL() << "expected InjectedCrashError";
    } catch (const simmpi::InjectedCrashError& e) {
      EXPECT_EQ(e.rank(), 2);
      EXPECT_EQ(e.call_index(), 2u);
    }
  }
}

TEST(FaultInjection, TwoRanksCrashInTheSameRound) {
  // Both crashes are planned for the same round.  Whether the second fires
  // in the first run or on the retry depends on how fast the abort
  // propagates; either way both events must fire before a run completes,
  // and the double failure must not wedge the world.
  simmpi::World world(4);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(0, 2).crash(2, 2));
  int crashes = 0;
  bool completed = false;
  for (int attempt = 0; attempt < 3 && !completed; ++attempt) {
    try {
      world.run([](simmpi::Comm& comm) {
        comm.barrier();
        comm.barrier();  // ranks 0 and 2 both die here (or on retry)
        comm.barrier();
      });
      completed = true;
    } catch (const simmpi::InjectedCrashError&) {
      ++crashes;
    }
  }
  EXPECT_TRUE(completed);
  EXPECT_GE(crashes, 1);
  EXPECT_LE(crashes, 2);
  EXPECT_EQ(world.injector()->events_fired(), 2u);
  world.run([](simmpi::Comm& comm) { EXPECT_EQ(comm.allreduce_sum(1), 4); });
}

TEST(FaultInjection, CrashLandsWhilePeersAreMidAllgatherv) {
  simmpi::World world(3);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(0, 2));
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 comm.barrier();  // call 1 everywhere
                 // Call 2: rank 0 dies at entry while ranks 1-2 are already
                 // publishing their variable-length contributions.
                 std::vector<int> mine(comm.rank() + 1, comm.rank());
                 (void)comm.allgatherv(mine);
               }),
               simmpi::InjectedCrashError);
}

TEST(FaultInjection, StallIsChargedNotSlept) {
  simmpi::World world(2);
  world.enable_trace();
  world.set_fault_plan(simmpi::FaultPlan{}.stall(1, 2, 0.25));
  world.run([](simmpi::Comm& comm) {
    comm.barrier();               // call 1
    (void)comm.allreduce_sum(1);  // call 2: rank 1 stalls here
  });
  EXPECT_DOUBLE_EQ(world.rank_stats(1).stall_seconds, 0.25);
  EXPECT_DOUBLE_EQ(world.rank_stats(0).stall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(world.aggregate_stats().stall_seconds, 0.25);
  // The merged trace charges the round with the slowest rank's stall.
  const auto rounds = world.merged_trace();
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_DOUBLE_EQ(rounds[0].stall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rounds[1].stall_seconds, 0.25);
}

TEST(FaultInjection, ChecksumsDetectInjectedCorruption) {
  simmpi::World world(2);
  world.enable_checksums();
  // Rank 1's first alltoallv: flip a bit in the payload arriving from
  // rank 0, after the sender computed its checksum.
  world.set_fault_plan(
      simmpi::FaultPlan{}.corrupt(/*rank=*/1, /*at_alltoallv=*/1,
                                  /*src=*/0, /*bit=*/5));
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 std::vector<std::vector<int>> out(2);
                 out[1 - comm.rank()] = {42};
                 (void)comm.alltoallv(out);
                 ADD_FAILURE() << "corruption must stop every rank";
               }),
               simmpi::CorruptionError);
}

TEST(FaultInjection, CorruptionWithoutChecksumsIsSilent) {
  // Without verification the damaged payload is delivered as-is — the
  // failure mode a real machine exhibits, and what checksums exist to
  // catch.
  simmpi::World world(2);
  world.set_fault_plan(
      simmpi::FaultPlan{}.corrupt(1, 1, /*src=*/0, /*bit=*/5));
  const auto received = world.run_collect<int>([](simmpi::Comm& comm) {
    std::vector<std::vector<int>> out(2);
    out[1 - comm.rank()] = {42};
    return comm.alltoallv_by_src(out)[1 - comm.rank()][0];
  });
  EXPECT_EQ(received[0], 42);        // link 1 -> 0 is untouched
  EXPECT_EQ(received[1], 42 ^ 32);   // bit 5 of the first byte flipped
}

TEST(FaultInjection, CleanChecksummedRunsPass) {
  simmpi::World world(4);
  world.enable_checksums();
  for (int trial = 0; trial < 2; ++trial) {
    world.run([](simmpi::Comm& comm) {
      const int P = comm.size();
      std::vector<std::vector<std::uint64_t>> out(P);
      for (int d = 0; d < P; ++d) {
        out[d].assign(static_cast<std::size_t>(d + 1),
                      static_cast<std::uint64_t>(comm.rank()));
      }
      const auto in = comm.alltoallv_by_src(out);
      for (int s = 0; s < P; ++s) {
        ASSERT_EQ(in[s].size(), static_cast<std::size_t>(comm.rank() + 1));
        EXPECT_EQ(in[s][0], static_cast<std::uint64_t>(s));
      }
    });
  }
}

TEST(FaultInjection, ConsumedFaultDoesNotRefireOnRetry) {
  // Injector counters are monotonic across run() calls and events latch
  // once fired, so a retry sails past the fault that killed the previous
  // attempt — the contract the checkpoint/restart driver builds on.
  simmpi::World world(3);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(0, 2));
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 for (int i = 0; i < 3; ++i) comm.barrier();
               }),
               simmpi::InjectedCrashError);
  EXPECT_EQ(world.injector()->events_fired(), 1u);
  const std::uint64_t calls_after_crash = world.injector()->collective_calls(0);
  EXPECT_EQ(calls_after_crash, 2u);

  world.run([](simmpi::Comm& comm) {
    for (int i = 0; i < 3; ++i) comm.barrier();
    EXPECT_EQ(comm.allreduce_sum(1), 3);
  });
  EXPECT_EQ(world.injector()->events_fired(), 1u);  // still just the one
  EXPECT_EQ(world.injector()->collective_calls(0), calls_after_crash + 4);
}

TEST(FaultInjection, InjectorCountsAlltoallvSeparately) {
  simmpi::World world(2);
  world.set_fault_plan(simmpi::FaultPlan{});
  world.run([](simmpi::Comm& comm) {
    comm.barrier();
    std::vector<std::vector<int>> out(2);
    (void)comm.alltoallv(out);
    (void)comm.allreduce_sum(1);
    (void)comm.alltoallv(out);
  });
  EXPECT_EQ(world.injector()->collective_calls(0), 4u);
  EXPECT_EQ(world.injector()->alltoallv_calls(0), 2u);
}

TEST(FaultInjection, ClearFaultPlanRemovesInjector) {
  simmpi::World world(2);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(0, 1));
  world.clear_fault_plan();
  EXPECT_EQ(world.injector(), nullptr);
  world.run([](simmpi::Comm& comm) { comm.barrier(); });
}

}  // namespace
