// Fault-tolerant serving tests: the circuit breaker's three-state
// protocol, opt-in degraded answers from oracle bounds, and the resilient
// workload driver (crash -> backoff -> resume -> bit-identical answers,
// persisted oracle slices adopted across restarts).  Part of the CI chaos
// suite (ctest -L chaos).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "core/delta_stepping.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/driver.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"

namespace {

using namespace g500;
using serve::Answer;
using serve::BreakerState;
using serve::DistanceService;
using serve::FaultContext;
using serve::Outcome;
using serve::Query;
using serve::ServeConfig;
using serve::Workload;
using serve::WorkloadConfig;

graph::DistGraph build_test_graph(simmpi::Comm& comm,
                                  const graph::EdgeList& list) {
  return graph::build_distributed(
      comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
      list.num_vertices);
}

/// An open breaker refuses wave-needing queries, half-opens once the
/// cooldown expires, and a successful probe wave closes it again — all as
/// a pure function of the tick clock, so every rank agrees.
TEST(ServeFault, BreakerRefusesThenProbeCloses) {
  const auto list = graph::path_graph(16, 6);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.batch_size = 1;
    config.fault.enabled = true;
    config.fault.breaker_threshold = 2;
    config.fault.breaker_cooldown_ticks = 4;

    FaultContext ctx;
    ctx.breaker.state = BreakerState::kOpen;
    ctx.breaker.opened_tick = 0;
    DistanceService service(comm, g, config, &ctx);
    EXPECT_EQ(service.breaker().state, BreakerState::kOpen);

    // While open: no wave, no fallback -> the query fails.
    Query q;
    q.id = 0;
    q.root = 0;
    q.target = 5;
    q.arrival_tick = 0;
    ASSERT_TRUE(service.submit(q));
    auto answers = service.tick(0);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_EQ(answers[0].outcome, Outcome::kFailed);
    EXPECT_TRUE(std::isinf(answers[0].distance));
    EXPECT_EQ(service.metrics().failed_queries, 1u);
    EXPECT_EQ(service.metrics().waves, 0u);

    // Cooldown expired: half-open admits exactly one probe wave, whose
    // completion closes the breaker and serves the query exactly.
    q.id = 1;
    q.arrival_tick = 4;
    ASSERT_TRUE(service.submit(q));
    answers = service.tick(4);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_EQ(answers[0].outcome, Outcome::kServed);
    EXPECT_EQ(service.breaker().state, BreakerState::kClosed);
    EXPECT_EQ(service.metrics().breaker_half_opened, 1u);
    EXPECT_EQ(service.metrics().breaker_closed, 1u);
    EXPECT_EQ(service.metrics().waves, 1u);

    const auto mine = core::delta_stepping(comm, g, 0, config.sssp);
    const auto want = core::gather_result(comm, g, mine);
    EXPECT_EQ(answers[0].distance, want.dist[5]);

    // Closed again: the probe wave's slice is cached and serves hits.
    q.id = 2;
    q.target = 7;
    q.arrival_tick = 5;
    ASSERT_TRUE(service.submit(q));
    answers = service.tick(5);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_EQ(answers[0].outcome, Outcome::kServed);
    EXPECT_TRUE(answers[0].from_cache);
  });
}

/// Queries on an abandoned key degrade to the oracle's certified lb/ub
/// interval when the caller opted in — and fail outright when it did not
/// (degraded answers are approximations, off by default).
TEST(ServeFault, DegradedAnswersAreOptInOracleBrackets) {
  const auto list = graph::path_graph(24, 7);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.batch_size = 1;
    config.oracle.num_landmarks = 2;
    config.fault.enabled = true;
    config.fault.degraded_answers = true;

    // Pick a root the oracle cannot settle exactly (not a landmark).
    graph::VertexId root = graph::kNoVertex;
    {
      DistanceService scout(comm, g, config);
      ASSERT_NE(scout.oracle(), nullptr);
      const auto& lm = scout.oracle()->landmarks();
      for (graph::VertexId v = 0; v < g.num_vertices; ++v) {
        if (std::find(lm.begin(), lm.end(), v) == lm.end()) {
          root = v;
          break;
        }
      }
    }
    ASSERT_NE(root, graph::kNoVertex);
    const graph::VertexId target = (root + 11) % g.num_vertices;

    const auto mine = core::delta_stepping(comm, g, root, config.sssp);
    const auto want = core::gather_result(comm, g, mine);
    const float exact = want.dist[target];
    ASSERT_TRUE(std::isfinite(exact));  // the path graph is connected

    FaultContext ctx;
    ctx.abandoned = {root};
    DistanceService service(comm, g, config, &ctx);
    Query q;
    q.id = 0;
    q.root = root;
    q.target = target;
    ASSERT_TRUE(service.submit(q));
    auto answers = service.tick(0);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_EQ(answers[0].outcome, Outcome::kDegraded);
    EXPECT_EQ(answers[0].distance, answers[0].ub);
    constexpr float kTol = 1e-4f;
    EXPECT_LE(answers[0].lb, exact + exact * kTol + kTol);
    EXPECT_GE(answers[0].ub, exact - exact * kTol - kTol);
    EXPECT_EQ(service.metrics().degraded, 1u);
    EXPECT_EQ(service.metrics().waves, 0u);

    // Same abandonment without the opt-in: the query fails.
    ServeConfig strict = config;
    strict.fault.degraded_answers = false;
    FaultContext strict_ctx;
    strict_ctx.abandoned = {root};
    DistanceService no_fallback(comm, g, strict, &strict_ctx);
    ASSERT_TRUE(no_fallback.submit(q));
    answers = no_fallback.tick(0);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_EQ(answers[0].outcome, Outcome::kFailed);
    EXPECT_TRUE(std::isinf(answers[0].distance));
    EXPECT_EQ(no_fallback.metrics().failed_queries, 1u);
  });
}

/// The resilient driver survives a mid-serving crash: it backs off,
/// restarts the world, re-admits the backlog, resumes the interrupted
/// wave from its checkpoint — and every answer is bit-identical to an
/// undisturbed run's.
TEST(ServeFault, ResilientDriverSurvivesCrashBitIdentical) {
  const auto list = graph::random_graph(128, 512, 24);
  const int P = 4;
  const int victim = 1;
  const auto build = [&](simmpi::Comm& comm) {
    return build_test_graph(comm, list);
  };

  WorkloadConfig wl;
  wl.seed = 17;
  wl.ticks = 12;
  wl.arrivals_per_tick = 2.0;
  wl.zipf_s = 1.1;
  wl.roots = {3, 11, 42};
  wl.num_vertices = list.num_vertices;
  const Workload workload(wl);

  ServeConfig config;
  config.batch_size = 4;
  config.max_wait_ticks = 2;
  config.queue_depth = 256;  // no shedding: fates must match exactly
  config.fault.enabled = true;
  config.fault.checkpoint_interval = 2;
  config.fault.backoff.base_seconds = 0.001;

  serve::ResilientServeOptions opts;
  opts.keep_answers = true;

  // Probe the victim's collective counts: one explicit build, then a
  // clean resilient run (its own build + the serving loop).
  std::uint64_t setup_calls = 0;
  std::uint64_t total_calls = 0;
  serve::ServingRunReport clean;
  {
    simmpi::World probe(P);
    probe.set_fault_plan(simmpi::FaultPlan{});
    probe.run([&](simmpi::Comm& comm) { (void)build(comm); });
    setup_calls = probe.injector()->collective_calls(victim);
    clean = serve::run_workload_resilient(probe, build, config, workload,
                                          opts);
    total_calls = probe.injector()->collective_calls(victim);
  }
  ASSERT_EQ(clean.availability.attempts, 1u);
  ASSERT_GT(clean.answers.size(), 0u);
  ASSERT_GT(total_calls, 2 * setup_calls + 8);
  // On a fresh world the resilient run builds once, so its serving loop
  // spans [setup, total - setup).  Crash halfway through it.
  const std::uint64_t crash_at =
      setup_calls + (total_calls - 2 * setup_calls) / 2;

  simmpi::World world(P);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(victim, crash_at));
  const auto chaos =
      serve::run_workload_resilient(world, build, config, workload, opts);

  EXPECT_EQ(world.injector()->events_fired(), 1u);
  EXPECT_GE(chaos.availability.attempts, 2u);
  EXPECT_EQ(chaos.availability.wave_retries, 1u);
  EXPECT_GT(chaos.availability.backoff_seconds, 0.0);
  EXPECT_GT(chaos.availability.recovery_ticks, 0u);
  EXPECT_EQ(chaos.availability.failed, 0u);
  EXPECT_EQ(chaos.availability.waves_abandoned, 0u);
  EXPECT_DOUBLE_EQ(chaos.availability.availability(), 1.0);

  // Same fates, same bits.
  std::map<std::uint64_t, float> reference;
  for (const auto& a : clean.answers) {
    EXPECT_EQ(a.outcome, Outcome::kServed);
    reference.emplace(a.id, a.distance);
  }
  ASSERT_EQ(chaos.answers.size(), clean.answers.size());
  for (const auto& a : chaos.answers) {
    EXPECT_EQ(a.outcome, Outcome::kServed) << "query " << a.id;
    const auto it = reference.find(a.id);
    ASSERT_NE(it, reference.end()) << "query " << a.id;
    EXPECT_EQ(a.distance, it->second) << "query " << a.id;
  }
}

/// Caller-owned oracle stores survive across resilient runs: the second
/// run adopts the persisted slices with zero precompute waves and still
/// answers identically.
TEST(ServeFault, ResilientRestartAdoptsPersistedOracleSlices) {
  const auto list = graph::random_graph(96, 400, 33);
  const int P = 2;
  const auto build = [&](simmpi::Comm& comm) {
    return build_test_graph(comm, list);
  };

  WorkloadConfig wl;
  wl.seed = 5;
  wl.ticks = 8;
  wl.arrivals_per_tick = 2.0;
  wl.roots = {1, 9, 17};
  wl.num_vertices = list.num_vertices;
  const Workload workload(wl);

  ServeConfig config;
  config.queue_depth = 256;
  config.oracle.num_landmarks = 2;
  config.fault.enabled = true;

  std::vector<serve::OracleSliceStore> stores;
  serve::ResilientServeOptions opts;
  opts.keep_answers = true;
  opts.oracle_stores = &stores;

  simmpi::World world(P);
  const auto first =
      serve::run_workload_resilient(world, build, config, workload, opts);
  EXPECT_FALSE(first.availability.oracle_restored);
  EXPECT_GT(first.metrics.oracle_precompute_waves, 0u);
  ASSERT_EQ(stores.size(), static_cast<std::size_t>(P));
  for (const auto& s : stores) EXPECT_TRUE(s.valid());

  const auto restarted =
      serve::run_workload_resilient(world, build, config, workload, opts);
  EXPECT_TRUE(restarted.availability.oracle_restored);
  EXPECT_EQ(restarted.metrics.oracle_precompute_waves, 0u);

  ASSERT_EQ(restarted.answers.size(), first.answers.size());
  for (std::size_t i = 0; i < first.answers.size(); ++i) {
    EXPECT_EQ(restarted.answers[i].id, first.answers[i].id);
    EXPECT_EQ(restarted.answers[i].distance, first.answers[i].distance)
        << "query " << first.answers[i].id;
  }
}

}  // namespace
