// Tests for the machine model, calibration and extreme-scale projection.
#include <gtest/gtest.h>

#include "core/delta_stepping.hpp"
#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "model/projection.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using model::Calibration;
using model::Machine;
using model::Projection;
using model::ProjectionPoint;

Calibration test_calibration() {
  Calibration cal;
  cal.relax_per_input_edge = 2.0;
  cal.wire_bytes_per_input_edge = 8.0;
  cal.rounds_per_sssp = 200.0;
  cal.calibration_scale = 16;
  return cal;
}

TEST(Machine, NewSunwayMatchesRecordConfiguration) {
  const Machine m = Machine::new_sunway();
  EXPECT_EQ(m.num_nodes, 107520);
  EXPECT_EQ(m.cores_per_node, 390);
  // The record headline: over 40 million cores.
  EXPECT_GT(m.total_cores(), 40'000'000);
  const auto topo = m.topology();
  EXPECT_EQ(topo.num_nodes(), m.num_nodes);
  EXPECT_EQ(topo.num_supernodes(), 107520 / 256);
}

TEST(Machine, FugakuLikeIsDistinctComparisonClass) {
  const Machine m = Machine::fugaku_like();
  EXPECT_GT(m.num_nodes, 150000);
  EXPECT_LT(m.cores_per_node, Machine::new_sunway().cores_per_node);
  EXPECT_GT(m.total_cores(), 7'000'000);
  // Both machine descriptions must produce working topologies.
  EXPECT_GT(m.topology().bisection_GBps(), 0.0);
}

TEST(Machine, ScaledToKeepsEverythingElse) {
  const Machine m = Machine::new_sunway().scaled_to(1024);
  EXPECT_EQ(m.num_nodes, 1024);
  EXPECT_EQ(m.cores_per_node, 390);
}

TEST(Machine, PartialSupernodeRoundsUp) {
  Machine m = Machine::new_sunway().scaled_to(300);
  const auto topo = m.topology();
  EXPECT_EQ(topo.num_supernodes(), 2);
}

TEST(Calibration, FromRunExtractsRatios) {
  core::SsspStats stats;
  stats.relax_generated = 2000;
  simmpi::CommStats comm;
  comm.alltoallv.bytes = 8000;
  comm.alltoallv.calls = 50;
  const Calibration cal = Calibration::from_run(stats, comm, 1000, 1, 12);
  EXPECT_DOUBLE_EQ(cal.relax_per_input_edge, 2.0);
  EXPECT_DOUBLE_EQ(cal.wire_bytes_per_input_edge, 8.0);
  EXPECT_DOUBLE_EQ(cal.rounds_per_sssp, 50.0);
  EXPECT_EQ(cal.calibration_scale, 12);
}

TEST(Calibration, FromRealMeasuredRun) {
  graph::KroneckerParams params;
  params.scale = 9;
  simmpi::World world(4);
  core::SsspStats total;
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    comm.barrier();
    // Measure only the SSSP traffic: stats were accumulating during build,
    // so snapshot via World::reset_stats is done outside; here just run.
    core::SsspStats local;  // per rank — stats are not thread-shareable
    (void)core::delta_stepping(comm, g, 1, core::SsspConfig{}, &local);
    const auto agg = core::global_stats(comm, local);
    if (comm.rank() == 0) total = agg;
  });
  const auto agg = world.aggregate_stats();
  const Calibration cal = Calibration::from_run(
      total, agg, params.num_edges(), 1, params.scale);
  EXPECT_GT(cal.wire_bytes_per_input_edge, 0.0);
  EXPECT_GT(cal.rounds_per_sssp, 0.0);
}

TEST(Calibration, RejectsEmptyRun) {
  EXPECT_THROW(Calibration::from_run({}, {}, 0, 1, 10),
               std::invalid_argument);
  EXPECT_THROW(Calibration::from_run({}, {}, 100, 0, 10),
               std::invalid_argument);
}

TEST(Projection, ComputeTermShrinksWithMoreNodes) {
  Projection proj(Machine::new_sunway(), test_calibration());
  const auto small = proj.predict(36, 1024);
  const auto large = proj.predict(36, 65536);
  EXPECT_GT(small.compute_seconds, large.compute_seconds);
}

TEST(Projection, LatencyTermGrowsWithMachine) {
  Projection proj(Machine::new_sunway(), test_calibration());
  EXPECT_LT(proj.predict(36, 1024).latency_seconds,
            proj.predict(36, 65536).latency_seconds);
}

TEST(Projection, RecordConfigurationIsFeasibleAndCommBound) {
  Projection proj(Machine::new_sunway(), test_calibration());
  // Scale 43 = 140.7 trillion edges on the full machine.
  const auto p = proj.predict(43, 107520);
  EXPECT_EQ(p.input_edges, std::uint64_t{16} << 43);
  EXPECT_GT(p.input_edges, 140'000'000'000'000ULL);
  EXPECT_GT(p.cores, 40'000'000);
  EXPECT_TRUE(p.memory_feasible);
  EXPECT_GT(p.gteps, 0.0);
  // The paper's point: at full scale the network, not compute, binds.
  EXPECT_GT(p.network_seconds + p.latency_seconds, p.compute_seconds);
}

TEST(Projection, MemoryInfeasibleWhenMachineTooSmall) {
  Projection proj(Machine::new_sunway(), test_calibration());
  EXPECT_FALSE(proj.predict(43, 64).memory_feasible);
}

TEST(Projection, WeakScalingGrowsThroughput) {
  Projection proj(Machine::new_sunway(), test_calibration());
  const auto points = proj.weak_scaling(36, 1024, 6);
  ASSERT_EQ(points.size(), 7u);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].gteps, points[i - 1].gteps)
        << "weak scaling step " << i;
    EXPECT_EQ(points[i].nodes, points[i - 1].nodes * 2);
    EXPECT_EQ(points[i].scale, points[i - 1].scale + 1);
  }
}

TEST(Projection, StrongScalingSweepsNodeCounts) {
  Projection proj(Machine::new_sunway(), test_calibration());
  const auto points = proj.strong_scaling(38, {1024, 4096, 16384});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_GT(points[0].total_seconds, points[2].total_seconds);
}

TEST(Projection, RejectsBadInputs) {
  Projection proj(Machine::new_sunway(), test_calibration());
  EXPECT_THROW((void)proj.predict(0, 1024), std::invalid_argument);
  EXPECT_THROW((void)proj.predict(60, 1024), std::invalid_argument);
  EXPECT_THROW((void)proj.predict(36, 0), std::invalid_argument);
  EXPECT_THROW((void)proj.predict(36, 8, 0), std::invalid_argument);
}

TEST(Projection, TotalIsSumOfTerms) {
  Projection proj(Machine::commodity_cluster(512), test_calibration());
  const auto p = proj.predict(34, 512, 1);
  EXPECT_NEAR(p.total_seconds,
              p.compute_seconds + p.network_seconds + p.latency_seconds,
              1e-12);
  EXPECT_NEAR(p.gteps,
              static_cast<double>(p.input_edges) / p.total_seconds / 1e9,
              p.gteps * 1e-9);
}

}  // namespace
