// Unit tests for LocalCsr and PullIndex.
#include <gtest/gtest.h>

#include "graph/csr.hpp"

namespace {

using namespace g500::graph;

LocalCsr make_csr() {
  // Vertex 0: edges to 10 (0.5), 11 (0.1), 12 (0.9)
  // Vertex 1: edge to 10 (0.3)
  // Vertex 2: no edges
  std::vector<WireEdge> edges = {
      {0, 10, 0.5f}, {0, 11, 0.1f}, {0, 12, 0.9f}, {1, 10, 0.3f}};
  return LocalCsr(3, std::move(edges));
}

TEST(LocalCsr, DegreesAndCounts) {
  const LocalCsr csr = make_csr();
  EXPECT_EQ(csr.num_local(), 3u);
  EXPECT_EQ(csr.num_edges(), 4u);
  EXPECT_EQ(csr.degree(0), 3u);
  EXPECT_EQ(csr.degree(1), 1u);
  EXPECT_EQ(csr.degree(2), 0u);
}

TEST(LocalCsr, AdjacencyIsWeightSorted) {
  const LocalCsr csr = make_csr();
  EXPECT_EQ(csr.dst(csr.edges_begin(0)), 11u);      // 0.1 first
  EXPECT_EQ(csr.dst(csr.edges_begin(0) + 1), 10u);  // 0.5
  EXPECT_EQ(csr.dst(csr.edges_begin(0) + 2), 12u);  // 0.9
  EXPECT_FLOAT_EQ(csr.weight(csr.edges_begin(0)), 0.1f);
}

TEST(LocalCsr, SplitAtSeparatesLightAndHeavy) {
  const LocalCsr csr = make_csr();
  // delta = 0.4: light edges of vertex 0 are {0.1}, heavy {0.5, 0.9}.
  const auto split = csr.split_at(0, 0.4f);
  EXPECT_EQ(split - csr.edges_begin(0), 1u);
  // delta = 1.0: everything light.
  EXPECT_EQ(csr.split_at(0, 1.0f), csr.edges_end(0));
  // delta = 0.05: everything heavy.
  EXPECT_EQ(csr.split_at(0, 0.05f), csr.edges_begin(0));
}

TEST(LocalCsr, SplitAtBoundaryIsHeavy) {
  // An edge with weight exactly delta is heavy (w >= delta).
  std::vector<WireEdge> edges = {{0, 1, 0.25f}};
  LocalCsr csr(1, std::move(edges));
  EXPECT_EQ(csr.split_at(0, 0.25f), csr.edges_begin(0));
}

TEST(LocalCsr, EmptyGraph) {
  LocalCsr csr(4, {});
  EXPECT_EQ(csr.num_edges(), 0u);
  for (LocalId u = 0; u < 4; ++u) EXPECT_EQ(csr.degree(u), 0u);
}

TEST(LocalCsr, RejectsOutOfRangeSource) {
  std::vector<WireEdge> edges = {{5, 0, 0.5f}};
  EXPECT_THROW(LocalCsr(3, std::move(edges)), std::out_of_range);
}

TEST(LocalCsr, TieWeightsOrderedByDestination) {
  std::vector<WireEdge> edges = {{0, 9, 0.5f}, {0, 3, 0.5f}, {0, 6, 0.5f}};
  LocalCsr csr(1, std::move(edges));
  EXPECT_EQ(csr.dst(0), 3u);
  EXPECT_EQ(csr.dst(1), 6u);
  EXPECT_EQ(csr.dst(2), 9u);
}

TEST(PullIndex, RegroupsBySource) {
  const LocalCsr csr = make_csr();
  const PullIndex pull = PullIndex::from_csr(csr);
  EXPECT_EQ(pull.num_entries(), csr.num_edges());
  EXPECT_EQ(pull.num_sources(), 3u);  // neighbours 10, 11, 12

  // Source 10 has in-edges to local 0 (w 0.5) and local 1 (w 0.3),
  // weight-sorted.
  const auto r = pull.find(10);
  ASSERT_EQ(r.last - r.first, 2u);
  EXPECT_EQ(pull.dst(r.first), 1u);
  EXPECT_FLOAT_EQ(pull.weight(r.first), 0.3f);
  EXPECT_EQ(pull.dst(r.first + 1), 0u);
  EXPECT_FLOAT_EQ(pull.weight(r.first + 1), 0.5f);
}

TEST(PullIndex, FindMissingSourceIsEmpty) {
  const PullIndex pull = PullIndex::from_csr(make_csr());
  EXPECT_TRUE(pull.find(999).empty());
  EXPECT_TRUE(pull.find(0).empty());  // 0 is a local vertex, not a neighbour
}

TEST(PullIndex, FindReportsIndexForSplitCache) {
  const PullIndex pull = PullIndex::from_csr(make_csr());
  std::size_t idx = 99;
  const auto r = pull.find(11, &idx);
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(pull.range(idx).first, r.first);
  EXPECT_EQ(pull.range(idx).last, r.last);
}

TEST(PullIndex, SplitAtMatchesWeights) {
  const PullIndex pull = PullIndex::from_csr(make_csr());
  const auto r = pull.find(10);
  // Weights in range: {0.3, 0.5}; delta 0.4 keeps one light entry.
  EXPECT_EQ(pull.split_at(r, 0.4f) - r.first, 1u);
  EXPECT_EQ(pull.split_at(r, 0.1f), r.first);
  EXPECT_EQ(pull.split_at(r, 0.9f), r.last);
}

TEST(PullIndex, EmptyCsrGivesEmptyIndex) {
  LocalCsr csr(2, {});
  const PullIndex pull = PullIndex::from_csr(csr);
  EXPECT_EQ(pull.num_sources(), 0u);
  EXPECT_EQ(pull.num_entries(), 0u);
  EXPECT_TRUE(pull.find(0).empty());
}

TEST(PullIndex, SourcesAreSortedUnique) {
  const PullIndex pull = PullIndex::from_csr(make_csr());
  const auto sources = pull.sources();
  for (std::size_t i = 1; i < sources.size(); ++i) {
    EXPECT_LT(sources[i - 1], sources[i]);
  }
}

}  // namespace
