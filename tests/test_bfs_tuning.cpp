// Parameter-sweep tests for the BFS direction heuristic: correctness must
// be independent of alpha/beta, while the switch behaviour tracks them.
#include <gtest/gtest.h>

#include <queue>

#include "core/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

std::vector<std::uint32_t> reference_levels(const EdgeList& list,
                                            VertexId root) {
  std::vector<std::vector<VertexId>> adj(list.num_vertices);
  for (const auto& e : list.edges) {
    if (e.src == e.dst) continue;
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  std::vector<std::uint32_t> level(list.num_vertices,
                                   core::BfsResult::kNoLevel);
  std::queue<VertexId> queue;
  level[root] = 0;
  queue.push(root);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    for (const VertexId v : adj[u]) {
      if (level[v] == core::BfsResult::kNoLevel) {
        level[v] = level[u] + 1;
        queue.push(v);
      }
    }
  }
  return level;
}

class BfsTuningSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

INSTANTIATE_TEST_SUITE_P(
    AlphaBeta, BfsTuningSweep,
    ::testing::Combine(::testing::Values(1.0, 4.0, 14.0, 1000.0),
                       ::testing::Values(2.0, 24.0, 1000.0)));

TEST_P(BfsTuningSweep, LevelsIndependentOfHeuristic) {
  const auto [alpha, beta] = GetParam();
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 16;
  const EdgeList whole = kronecker_graph(params);
  const auto want = reference_levels(whole, 1);

  simmpi::World world(4);
  world.run([&, alpha = alpha, beta = beta](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(whole, comm.rank(), comm.size()),
        whole.num_vertices);
    core::BfsConfig config;
    config.alpha = alpha;
    config.beta = beta;
    const auto mine = core::bfs(comm, g, 1, config);
    EXPECT_TRUE(core::validate_bfs(comm, g, 1, mine).ok)
        << "alpha " << alpha << " beta " << beta;
    const auto levels = comm.allgatherv(mine.level);
    for (std::size_t v = 0; v < want.size(); ++v) {
      ASSERT_EQ(levels[v], want[v])
          << "alpha " << alpha << " beta " << beta << " vertex " << v;
    }
  });
}

TEST(BfsTuning, LargeAlphaPullsEagerlyTinyAlphaNever) {
  // The switch fires when frontier_edges > unexplored_edges / alpha, so a
  // large alpha lowers the threshold (eager bottom-up) and a vanishing
  // alpha raises it beyond reach.
  KroneckerParams params;
  params.scale = 10;
  params.edgefactor = 16;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::BfsConfig eager;
    eager.alpha = 1e6;
    core::BfsConfig never;
    never.alpha = 1e-9;
    core::BfsStats eager_stats;
    core::BfsStats never_stats;
    (void)core::bfs(comm, g, 1, eager, &eager_stats);
    (void)core::bfs(comm, g, 1, never, &never_stats);
    EXPECT_GT(eager_stats.bottom_up_rounds, 0u);
    EXPECT_EQ(never_stats.bottom_up_rounds, 0u);
  });
}

TEST(BfsTuning, HugeBetaStaysBottomUpLonger) {
  KroneckerParams params;
  params.scale = 10;
  params.edgefactor = 16;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::BfsConfig sticky;
    sticky.beta = 1e18;  // never switch back to top-down
    core::BfsConfig snappy;
    snappy.beta = 1.0;  // switch back as soon as possible
    core::BfsStats sticky_stats;
    core::BfsStats snappy_stats;
    (void)core::bfs(comm, g, 1, sticky, &sticky_stats);
    (void)core::bfs(comm, g, 1, snappy, &snappy_stats);
    EXPECT_GE(sticky_stats.bottom_up_rounds, snappy_stats.bottom_up_rounds);
  });
}

}  // namespace
