// Tests for distributed k-core decomposition: exact agreement with a
// sequential peeling reference (coreness is unique, so any peel order must
// produce the same values), known closed-form corenesses, and the
// empty/disconnected edge cases.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/kcore.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// Canonical adjacency the builder produces: undirected, self-loops
/// dropped, parallel edges deduplicated.
std::vector<std::vector<VertexId>> canonical_adjacency(const EdgeList& list) {
  std::vector<std::vector<VertexId>> adj(list.num_vertices);
  for (const auto& e : list.edges) {
    if (e.src == e.dst) continue;
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  for (auto& nbrs : adj) {
    std::sort(nbrs.begin(), nbrs.end());
    nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
  }
  return adj;
}

/// Sequential cascading-peel reference: at level k, repeatedly remove
/// every remaining vertex with residual degree <= k until the level
/// quiesces, assigning removed vertices coreness k.
std::vector<std::uint32_t> reference_coreness(const EdgeList& list) {
  const auto adj = canonical_adjacency(list);
  std::vector<std::uint64_t> deg(list.num_vertices);
  for (VertexId v = 0; v < list.num_vertices; ++v) deg[v] = adj[v].size();
  std::vector<std::uint32_t> core(list.num_vertices, 0);
  std::vector<bool> alive(list.num_vertices, true);
  VertexId remaining = list.num_vertices;
  std::uint32_t k = 0;
  while (remaining > 0) {
    bool removed_any = true;
    while (removed_any) {
      removed_any = false;
      for (VertexId v = 0; v < list.num_vertices; ++v) {
        if (!alive[v] || deg[v] > k) continue;
        alive[v] = false;
        core[v] = k;
        --remaining;
        removed_any = true;
        for (const auto u : adj[v]) {
          if (alive[u] && deg[u] > 0) --deg[u];
        }
      }
    }
    ++k;
  }
  return core;
}

void expect_matches_reference(const EdgeList& list, int ranks) {
  const auto want = reference_coreness(list);
  const std::uint32_t want_max =
      want.empty() ? 0u : *std::max_element(want.begin(), want.end());
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    core::KCoreStats stats;
    const auto mine = core::kcore(comm, g, &stats);
    const auto full = comm.allgatherv(mine);
    ASSERT_EQ(full.size(), want.size());
    for (VertexId v = 0; v < list.num_vertices; ++v) {
      EXPECT_EQ(full[v], want[v]) << "vertex " << v << " ranks " << ranks;
    }
    EXPECT_EQ(stats.max_core, want_max);
    // Every owned vertex gets assigned exactly once.
    EXPECT_EQ(comm.allreduce_sum(stats.peeled), list.num_vertices);
  });
}

class KCoreSweep : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Ranks, KCoreSweep, ::testing::Values(1, 2, 4, 8));

TEST_P(KCoreSweep, MatchesReferenceOnKronecker) {
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 8;
  expect_matches_reference(kronecker_graph(params), GetParam());
}

TEST_P(KCoreSweep, MatchesReferenceOnRandomMultigraph) {
  // Self-loops and duplicate tuples must not inflate residual degrees.
  expect_matches_reference(random_graph(150, 700, 23), GetParam());
}

TEST_P(KCoreSweep, MatchesReferenceOnDisconnectedIslands) {
  // A triangle, a path, and isolated dust in one vertex range.
  EdgeList list;
  list.num_vertices = 20;
  list.edges = {{0, 1, 0.5f}, {1, 2, 0.5f}, {2, 0, 0.5f},
                {10, 11, 0.5f}, {11, 12, 0.5f}, {12, 13, 0.5f}};
  expect_matches_reference(list, GetParam());
}

TEST(KCore, CliqueHasUniformCoreness) {
  // K_n: every vertex has coreness n - 1.
  const VertexId n = 12;
  const EdgeList list = complete_graph(n, 31);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()), n);
    core::KCoreStats stats;
    const auto mine = core::kcore(comm, g, &stats);
    for (const auto c : mine) EXPECT_EQ(c, n - 1);
    EXPECT_EQ(stats.max_core, n - 1);
  });
}

TEST(KCore, PathAndStarAreOneCore) {
  // Trees have degeneracy 1: every vertex of a path or star has
  // coreness 1 (leaves included — they sit in the 1-core).
  for (const auto& list : {path_graph(17, 5), star_graph(17, 5)}) {
    simmpi::World world(2);
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_distributed(
          comm, slice_for_rank(list, comm.rank(), comm.size()),
          list.num_vertices);
      core::KCoreStats stats;
      const auto mine = core::kcore(comm, g, &stats);
      for (const auto c : mine) EXPECT_EQ(c, 1u);
      EXPECT_EQ(stats.max_core, 1u);
    });
  }
}

TEST(KCore, RingIsTwoCore) {
  const EdgeList list = ring_graph(32, 7);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto mine = core::kcore(comm, g);
    for (const auto c : mine) EXPECT_EQ(c, 2u);
  });
}

TEST(KCore, EdgelessGraphIsZeroCore) {
  EdgeList list;
  list.num_vertices = 9;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    core::KCoreStats stats;
    const auto mine = core::kcore(comm, g, &stats);
    for (const auto c : mine) EXPECT_EQ(c, 0u);
    EXPECT_EQ(stats.max_core, 0u);
    EXPECT_EQ(comm.allreduce_sum(stats.decrements_sent), 0u);
  });
}

TEST(KCore, StatsAreConsistent) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::KCoreStats stats;
    (void)core::kcore(comm, g, &stats);
    // Collective counts agree across ranks (every rank checks itself
    // against the maximum, so any straggler fails its own assertion).
    EXPECT_EQ(stats.rounds, comm.allreduce_max(stats.rounds));
    EXPECT_EQ(stats.max_core, comm.allreduce_max(stats.max_core));
    // No decrement is applied that was never sent.
    EXPECT_LE(comm.allreduce_sum(stats.decrements_applied),
              comm.allreduce_sum(stats.decrements_sent));
    EXPECT_GE(stats.levels, 1u);
  });
}

}  // namespace
