// Tests for the official result checks: they must accept every correct
// result and reject each class of corruption.
#include <gtest/gtest.h>

#include "core/delta_stepping.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// Build, solve, corrupt (via `mutate` on rank 0's slice), validate.
core::ValidationReport corrupted_verdict(
    const EdgeList& list, VertexId root,
    const std::function<void(core::SsspResult&, const DistGraph&)>& mutate) {
  core::ValidationReport verdict;
  simmpi::World world(3);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    core::SsspResult mine = core::delta_stepping(comm, g, root);
    if (comm.rank() == 0) mutate(mine, g);
    const auto v = core::validate_sssp(comm, g, root, mine);
    if (comm.rank() == 0) verdict = v;
  });
  return verdict;
}

const EdgeList kGrid = grid_graph(6, 8, 77);

TEST(Validate, AcceptsCorrectResult) {
  const auto verdict = corrupted_verdict(
      kGrid, 0, [](core::SsspResult&, const DistGraph&) {});
  EXPECT_TRUE(verdict.ok);
  EXPECT_TRUE(verdict.errors.empty());
  EXPECT_EQ(verdict.reachable, kGrid.num_vertices);
  EXPECT_GT(verdict.edges_checked, 0u);
}

TEST(Validate, DetectsInflatedDistance) {
  const auto verdict = corrupted_verdict(
      kGrid, 0, [](core::SsspResult& r, const DistGraph&) {
        r.dist[3] += 5.0f;  // now some edge into vertex 3 is relaxable
      });
  EXPECT_FALSE(verdict.ok);
  ASSERT_FALSE(verdict.errors.empty());
}

TEST(Validate, DetectsDeflatedDistance) {
  const auto verdict = corrupted_verdict(
      kGrid, 0, [](core::SsspResult& r, const DistGraph&) {
        r.dist[5] *= 0.1f;  // shorter than any real path: V3 must fail
      });
  EXPECT_FALSE(verdict.ok);
}

TEST(Validate, DetectsBogusParent) {
  const auto verdict = corrupted_verdict(
      kGrid, 0, [](core::SsspResult& r, const DistGraph& g) {
        // Point a vertex at a non-adjacent "parent" (grid vertex 2 is not
        // adjacent to the far corner).
        r.parent[2] = g.num_vertices - 1;
      });
  EXPECT_FALSE(verdict.ok);
}

TEST(Validate, DetectsFakeUnreachable) {
  const auto verdict = corrupted_verdict(
      kGrid, 0, [](core::SsspResult& r, const DistGraph&) {
        r.dist[4] = kInfDistance;
        r.parent[4] = kNoVertex;  // V2: reachable neighbours contradict it
      });
  EXPECT_FALSE(verdict.ok);
}

TEST(Validate, DetectsReachabilityMismatch) {
  const auto verdict = corrupted_verdict(
      kGrid, 0, [](core::SsspResult& r, const DistGraph&) {
        r.parent[6] = kNoVertex;  // finite dist but no parent: V1
      });
  EXPECT_FALSE(verdict.ok);
}

TEST(Validate, DetectsParentCycle) {
  // Two vertices pointing at each other (with plausible distances) must be
  // caught by the pointer-doubling check even when V3 is fooled.
  EdgeList list;
  list.num_vertices = 4;
  list.edges = {{0, 1, 0.5f}, {1, 2, 0.25f}, {2, 3, 0.25f}, {3, 1, 0.25f}};
  core::ValidationReport verdict;
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(comm, list, 4);
    core::SsspResult mine = core::delta_stepping(comm, g, 0);
    // Forge a 2-cycle between 2 and 3 with self-consistent distances:
    // dist[2] = dist[3] + w(3,2), dist[3] = dist[2] + w(2,3) cannot both
    // hold with positive weights, so force V4's job with equal distances.
    mine.parent[2] = 3;
    mine.parent[3] = 2;
    mine.dist[2] = 1.0f;
    mine.dist[3] = 1.0f;
    verdict = core::validate_sssp(comm, g, 0, mine);
  });
  EXPECT_FALSE(verdict.ok);
}

TEST(Validate, DetectsWrongRootDistance) {
  const auto verdict = corrupted_verdict(
      kGrid, 0, [](core::SsspResult& r, const DistGraph&) {
        r.dist[0] = 0.5f;  // root must be 0
      });
  EXPECT_FALSE(verdict.ok);
}

TEST(Validate, DetectsMalformedResultSize) {
  const auto verdict = corrupted_verdict(
      kGrid, 0,
      [](core::SsspResult& r, const DistGraph&) { r.dist.pop_back(); });
  EXPECT_FALSE(verdict.ok);
}

TEST(Validate, ErrorsArePropagatedToAllRanks) {
  simmpi::World world(4);
  const auto verdicts =
      world.run_collect<int>([&](simmpi::Comm& comm) {
        const DistGraph g = build_distributed(
            comm, slice_for_rank(kGrid, comm.rank(), comm.size()),
            kGrid.num_vertices);
        core::SsspResult mine = core::delta_stepping(comm, g, 0);
        if (comm.rank() == 2 && !mine.dist.empty()) {
          mine.dist[0] += 3.0f;  // corrupt a non-reporting rank
        }
        const auto v = core::validate_sssp(comm, g, 0, mine);
        return v.ok ? 1 : 0;
      });
  for (const int ok : verdicts) EXPECT_EQ(ok, 0);
}

TEST(Validate, UnreachableVerticesAreAccepted) {
  EdgeList two_islands;
  two_islands.num_vertices = 6;
  two_islands.edges = {{0, 1, 0.3f}, {3, 4, 0.3f}, {4, 5, 0.3f}};
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(two_islands, comm.rank(), comm.size()), 6);
    const auto mine = core::delta_stepping(comm, g, 0);
    const auto verdict = core::validate_sssp(comm, g, 0, mine);
    EXPECT_TRUE(verdict.ok);
    EXPECT_EQ(verdict.reachable, 2u);  // only {0, 1}
  });
}

}  // namespace
