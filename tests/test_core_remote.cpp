// Tests for the distributed value-fetch helper.
#include <gtest/gtest.h>

#include "core/remote.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using graph::BlockPartition;
using graph::VertexId;

TEST(FetchValues, ReturnsOwnersValuesInQueryOrder) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(40, comm.size());
    // Every owner stores value = global id * 10.
    std::vector<std::uint64_t> local(part.count(comm.rank()));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = (part.begin(comm.rank()) + i) * 10;
    }
    // Query a scattered mix, including duplicates and self-owned ids.
    const std::vector<VertexId> queries = {
        39, 0, 7, 7, static_cast<VertexId>(part.begin(comm.rank())), 20, 39};
    const auto got = core::fetch_values(comm, part, queries, local);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], queries[i] * 10) << "query " << i;
    }
  });
}

TEST(FetchValues, EmptyQueriesAreFine) {
  simmpi::World world(3);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(9, comm.size());
    std::vector<float> local(part.count(comm.rank()), 1.0f);
    // Rank 1 queries, others pass empty sets — still collectively matched.
    std::vector<VertexId> queries;
    if (comm.rank() == 1) queries = {0, 8};
    const auto got = core::fetch_values(comm, part, queries, local);
    EXPECT_EQ(got.size(), queries.size());
  });
}

TEST(FetchValues, SingleRank) {
  simmpi::World world(1);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(5, 1);
    const std::vector<int> local = {10, 11, 12, 13, 14};
    const auto got =
        core::fetch_values(comm, part, {4, 0, 2}, local);
    EXPECT_EQ(got, (std::vector<int>{14, 10, 12}));
  });
}

TEST(FetchValues, LargeVolume) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(1000, comm.size());
    std::vector<VertexId> local(part.count(comm.rank()));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = part.begin(comm.rank()) + i;  // identity
    }
    std::vector<VertexId> queries;
    for (VertexId v = comm.rank(); v < 1000; v += 3) queries.push_back(v);
    const auto got = core::fetch_values(comm, part, queries, local);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], queries[i]);
    }
  });
}

TEST(FetchValues, AllRemoteQueries) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(64, comm.size());
    std::vector<std::uint64_t> local(part.count(comm.rank()));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = (part.begin(comm.rank()) + i) * 3;
    }
    // Every query targets a vertex owned by somebody else.
    std::vector<VertexId> queries;
    for (VertexId v = 0; v < 64; ++v) {
      if (part.owner(v) != comm.rank()) queries.push_back(v);
    }
    ASSERT_FALSE(queries.empty());
    const auto got = core::fetch_values(comm, part, queries, local);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], queries[i] * 3) << "query " << i;
    }
  });
}

TEST(FetchValues, DuplicateHeavyQueries) {
  simmpi::World world(3);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(30, comm.size());
    std::vector<int> local(part.count(comm.rank()));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = static_cast<int>(part.begin(comm.rank()) + i) + 100;
    }
    // The same two vertices asked many times, interleaved.
    std::vector<VertexId> queries;
    for (int rep = 0; rep < 20; ++rep) {
      queries.push_back(29);
      queries.push_back(0);
      queries.push_back(29);
    }
    const auto got = core::fetch_values(comm, part, queries, local);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], static_cast<int>(queries[i]) + 100);
    }
  });
}

TEST(FetchValues, OrderPreservedUnderSkewedOwnership) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    // 10 vertices over 4 ranks: counts 3,3,2,2 — and the query stream
    // hammers rank 0's vertices with occasional remote detours, so the
    // per-rank reply cursors are exercised asymmetrically.
    const BlockPartition part(10, comm.size());
    std::vector<std::uint64_t> local(part.count(comm.rank()));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = (part.begin(comm.rank()) + i) * 7 + 1;
    }
    std::vector<VertexId> queries;
    for (int rep = 0; rep < 8; ++rep) {
      queries.push_back(0);
      queries.push_back(1);
      queries.push_back(2);                             // rank 0's block
      if (rep % 3 == 0) queries.push_back(9);           // last rank
      if (rep % 4 == 0) queries.push_back(5);           // middle rank
    }
    const auto got = core::fetch_values(comm, part, queries, local);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], queries[i] * 7 + 1) << "position " << i;
    }
  });
}

// ------------------------------------------------------ fetch_values_batched

TEST(FetchValuesBatched, AnswersAcrossSlotsInQueryOrder) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(40, comm.size());
    // Slot s stores value = global id * (s + 1).
    std::vector<std::vector<std::uint64_t>> sets(3);
    for (std::uint32_t s = 0; s < 3; ++s) {
      sets[s].resize(part.count(comm.rank()));
      for (std::size_t i = 0; i < sets[s].size(); ++i) {
        sets[s][i] = (part.begin(comm.rank()) + i) * (s + 1);
      }
    }
    const std::vector<const std::vector<std::uint64_t>*> slots = {
        &sets[0], &sets[1], &sets[2]};
    // A mix of slots, owners, duplicates — including (slot, vertex) pairs
    // repeated back-to-back.
    const std::vector<core::SlotQuery> queries = {
        {2, 39}, {0, 0}, {1, 7}, {1, 7}, {0, 39}, {2, 0}, {1, 20}, {2, 39}};
    const auto got = core::fetch_values_batched(comm, part, queries, slots);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], queries[i].vertex * (queries[i].slot + 1))
          << "query " << i;
    }
  });
}

TEST(FetchValuesBatched, EmptyQueriesAndSingleRank) {
  {
    simmpi::World world(3);
    world.run([](simmpi::Comm& comm) {
      const BlockPartition part(9, comm.size());
      const std::vector<float> mine(part.count(comm.rank()), 2.5f);
      const std::vector<const std::vector<float>*> slots = {&mine};
      std::vector<core::SlotQuery> queries;
      if (comm.rank() == 2) queries = {{0, 0}, {0, 8}};
      const auto got = core::fetch_values_batched(comm, part, queries, slots);
      EXPECT_EQ(got.size(), queries.size());
      for (const auto v : got) EXPECT_EQ(v, 2.5f);
    });
  }
  {
    simmpi::World world(1);
    world.run([](simmpi::Comm& comm) {
      const BlockPartition part(4, 1);
      const std::vector<int> a = {0, 1, 2, 3};
      const std::vector<int> b = {10, 11, 12, 13};
      const std::vector<const std::vector<int>*> slots = {&a, &b};
      const auto got = core::fetch_values_batched(
          comm, part, {{1, 3}, {0, 1}, {1, 0}}, slots);
      EXPECT_EQ(got, (std::vector<int>{13, 1, 10}));
    });
  }
}

TEST(FetchValuesBatched, RejectsOutOfRangeSlot) {
  simmpi::World world(2);
  EXPECT_THROW(
      world.run([](simmpi::Comm& comm) {
        const BlockPartition part(4, comm.size());
        const std::vector<int> mine(part.count(comm.rank()), 0);
        const std::vector<const std::vector<int>*> slots = {&mine};
        (void)core::fetch_values_batched(comm, part,
                                         {{1, 0}},  // slot 1 does not exist
                                         slots);
      }),
      std::out_of_range);
}

}  // namespace
