// Tests for the distributed value-fetch helper.
#include <gtest/gtest.h>

#include "core/remote.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using graph::BlockPartition;
using graph::VertexId;

TEST(FetchValues, ReturnsOwnersValuesInQueryOrder) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(40, comm.size());
    // Every owner stores value = global id * 10.
    std::vector<std::uint64_t> local(part.count(comm.rank()));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = (part.begin(comm.rank()) + i) * 10;
    }
    // Query a scattered mix, including duplicates and self-owned ids.
    const std::vector<VertexId> queries = {
        39, 0, 7, 7, static_cast<VertexId>(part.begin(comm.rank())), 20, 39};
    const auto got = core::fetch_values(comm, part, queries, local);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], queries[i] * 10) << "query " << i;
    }
  });
}

TEST(FetchValues, EmptyQueriesAreFine) {
  simmpi::World world(3);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(9, comm.size());
    std::vector<float> local(part.count(comm.rank()), 1.0f);
    // Rank 1 queries, others pass empty sets — still collectively matched.
    std::vector<VertexId> queries;
    if (comm.rank() == 1) queries = {0, 8};
    const auto got = core::fetch_values(comm, part, queries, local);
    EXPECT_EQ(got.size(), queries.size());
  });
}

TEST(FetchValues, SingleRank) {
  simmpi::World world(1);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(5, 1);
    const std::vector<int> local = {10, 11, 12, 13, 14};
    const auto got =
        core::fetch_values(comm, part, {4, 0, 2}, local);
    EXPECT_EQ(got, (std::vector<int>{14, 10, 12}));
  });
}

TEST(FetchValues, LargeVolume) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    const BlockPartition part(1000, comm.size());
    std::vector<VertexId> local(part.count(comm.rank()));
    for (std::size_t i = 0; i < local.size(); ++i) {
      local[i] = part.begin(comm.rank()) + i;  // identity
    }
    std::vector<VertexId> queries;
    for (VertexId v = comm.rank(); v < 1000; v += 3) queries.push_back(v);
    const auto got = core::fetch_values(comm, part, queries, local);
    ASSERT_EQ(got.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], queries[i]);
    }
  });
}

}  // namespace
