// Randomized cross-engine agreement: for a sweep of seeds, build a random
// graph with random shape, pick random roots, and require that every
// engine (1-D delta-stepping in default and plain trim, Bellman-Ford, the
// 2-D engine) agrees with sequential Dijkstra and passes official
// validation.  The widest net in the suite: anything that breaks only on
// odd shapes (duplicate edges, dangling vertices, skewed degrees, rank
// counts that don't divide n) lands here.
#include <gtest/gtest.h>

#include "core/bellman_ford.hpp"
#include "core/delta_stepping.hpp"
#include "core/delta_stepping_2d.hpp"
#include "core/dijkstra.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/grid2d.hpp"
#include "simmpi/comm.hpp"
#include "util/random.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

class FuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep,
                         ::testing::Range<std::uint64_t>(0, 16));

TEST_P(FuzzSweep, AllEnginesAgreeWithDijkstra) {
  const std::uint64_t seed = GetParam();
  util::SplitMix64 rng(util::hash64(0xf022, seed));

  // Random shape: n in [2, 400], m in [0, 4n], ranks in [1, 9].
  const auto n = static_cast<VertexId>(2 + rng.next_below(399));
  const auto m = rng.next_below(4 * n + 1);
  const int ranks = static_cast<int>(1 + rng.next_below(9));
  const EdgeList list = random_graph(n, m, seed * 77 + 5);
  const VertexId root = rng.next_below(n);

  const auto want = core::dijkstra(list, root);

  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()), n);
    const Dist2DGraph g2 = build_2d(
        comm, slice_for_rank(list, comm.rank(), comm.size()), n);

    struct Attempt {
      const char* name;
      core::SsspResult result;
    };
    std::vector<Attempt> attempts;
    attempts.push_back({"delta-default", core::delta_stepping(comm, g, root)});
    attempts.push_back({"delta-plain", core::delta_stepping(
                                           comm, g, root,
                                           core::SsspConfig::plain())});
    attempts.push_back({"bellman-ford", core::bellman_ford(comm, g, root)});
    attempts.push_back({"delta-2d", core::delta_stepping_2d(comm, g2, root)});

    for (const auto& attempt : attempts) {
      const auto verdict = core::validate_sssp(comm, g, root, attempt.result);
      EXPECT_TRUE(verdict.ok)
          << attempt.name << " failed validation (seed " << seed << "): "
          << (verdict.errors.empty() ? "?" : verdict.errors.front());
      const auto whole = core::gather_result(comm, g, attempt.result);
      for (VertexId v = 0; v < n; ++v) {
        ASSERT_EQ(whole.dist[v], want.dist[v])
            << attempt.name << " seed " << seed << " n " << n << " m " << m
            << " ranks " << ranks << " root " << root << " vertex " << v;
      }
    }
  });
}

TEST_P(FuzzSweep, MultiSourceAgreesWithMinOfSingles) {
  const std::uint64_t seed = GetParam();
  util::SplitMix64 rng(util::hash64(0xf033, seed));
  const auto n = static_cast<VertexId>(3 + rng.next_below(200));
  const EdgeList list = random_graph(n, 3 * n, seed * 131 + 17);
  std::vector<VertexId> roots;
  const std::size_t num_roots = 1 + rng.next_below(4);
  while (roots.size() < num_roots) {
    const VertexId candidate = rng.next_below(n);
    if (std::find(roots.begin(), roots.end(), candidate) == roots.end()) {
      roots.push_back(candidate);
    }
  }
  const int ranks = static_cast<int>(1 + rng.next_below(5));

  std::vector<float> want(n, kInfDistance);
  for (const auto root : roots) {
    const auto single = core::dijkstra(list, root);
    for (VertexId v = 0; v < n; ++v) {
      want[v] = std::min(want[v], single.dist[v]);
    }
  }

  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()), n);
    const auto mine = core::delta_stepping_multi(comm, g, roots);
    const auto whole = core::gather_result(comm, g, mine);
    for (VertexId v = 0; v < n; ++v) {
      ASSERT_EQ(whole.dist[v], want[v]) << "seed " << seed << " vertex " << v;
    }
  });
}

}  // namespace
