// Shared helpers for SSSP engine tests: run a distributed engine over an
// EdgeList and compare against the sequential Dijkstra oracle.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "core/bellman_ford.hpp"
#include "core/delta_stepping.hpp"
#include "core/dijkstra.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace g500::testing {

enum class EngineKind { kDeltaStepping, kBellmanFord };

/// Run `kind` on `list` distributed over `ranks`, from every root in
/// `roots`; assert official validation passes and distances match Dijkstra.
inline void expect_matches_oracle(const graph::EdgeList& list, int ranks,
                                  const std::vector<graph::VertexId>& roots,
                                  const core::SsspConfig& config = {},
                                  EngineKind kind = EngineKind::kDeltaStepping,
                                  graph::BuildOptions build_opts = {}) {
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_distributed(
        comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices, build_opts);
    for (const auto root : roots) {
      core::SsspResult mine;
      switch (kind) {
        case EngineKind::kDeltaStepping:
          mine = core::delta_stepping(comm, g, root, config);
          break;
        case EngineKind::kBellmanFord:
          mine = core::bellman_ford(comm, g, root, config);
          break;
      }
      const auto verdict = core::validate_sssp(comm, g, root, mine);
      EXPECT_TRUE(verdict.ok)
          << "validation failed (root " << root << "): "
          << (verdict.errors.empty() ? "?" : verdict.errors.front());
      const auto got = core::gather_result(comm, g, mine);
      const auto want = core::dijkstra(list, root);
      ASSERT_EQ(got.dist.size(), want.dist.size());
      for (std::size_t v = 0; v < want.dist.size(); ++v) {
        EXPECT_FLOAT_EQ(got.dist[v], want.dist[v])
            << "root " << root << " vertex " << v << " ranks " << ranks;
      }
    }
  });
}

/// Named graph cases reused by the parameterized sweeps.
struct GraphCase {
  std::string name;
  std::function<graph::EdgeList()> make;
};

inline std::vector<GraphCase> standard_graph_cases() {
  using namespace graph;
  return {
      {"kronecker_s8",
       [] {
         KroneckerParams p;
         p.scale = 8;
         p.edgefactor = 8;
         return kronecker_graph(p);
       }},
      {"grid_8x16", [] { return grid_graph(8, 16, 21); }},
      {"path_64", [] { return path_graph(64, 22); }},
      {"star_64", [] { return star_graph(64, 23); }},
      {"random_128", [] { return random_graph(128, 512, 24); }},
      {"ring_33", [] { return ring_graph(33, 25); }},
      {"kronecker_dense",
       [] {
         KroneckerParams p;
         p.scale = 7;
         p.edgefactor = 32;  // dense: exercises pull heuristics
         return kronecker_graph(p);
       }},
      {"complete_48", [] { return complete_graph(48, 26); }},
  };
}

}  // namespace g500::testing
