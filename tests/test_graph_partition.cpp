// Property tests for the 1-D block partition.
#include <gtest/gtest.h>

#include "graph/partition.hpp"

namespace {

using namespace g500::graph;

class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 7, 64, 100, 1023,
                                                        4096),
                       ::testing::Values(1, 2, 3, 5, 8, 16, 33)));

TEST_P(PartitionSweep, CountsSumToN) {
  const auto [n, p] = GetParam();
  BlockPartition part(n, p);
  VertexId total = 0;
  for (int r = 0; r < p; ++r) total += part.count(r);
  EXPECT_EQ(total, n);
}

TEST_P(PartitionSweep, CountsAreBalanced) {
  const auto [n, p] = GetParam();
  BlockPartition part(n, p);
  VertexId lo = ~VertexId{0};
  VertexId hi = 0;
  for (int r = 0; r < p; ++r) {
    lo = std::min(lo, part.count(r));
    hi = std::max(hi, part.count(r));
  }
  EXPECT_LE(hi - lo, VertexId{1});
}

TEST_P(PartitionSweep, RangesAreContiguousAndOrdered) {
  const auto [n, p] = GetParam();
  BlockPartition part(n, p);
  VertexId expect_begin = 0;
  for (int r = 0; r < p; ++r) {
    EXPECT_EQ(part.begin(r), expect_begin);
    EXPECT_EQ(part.end(r), part.begin(r) + part.count(r));
    expect_begin = part.end(r);
  }
  EXPECT_EQ(expect_begin, n);
}

TEST_P(PartitionSweep, OwnerLocalGlobalRoundTrip) {
  const auto [n, p] = GetParam();
  BlockPartition part(n, p);
  // Exhaustive for small n, strided sample for large.
  const VertexId step = n > 1000 ? n / 997 + 1 : 1;
  for (VertexId v = 0; v < n; v += step) {
    const int owner = part.owner(v);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, p);
    EXPECT_GE(v, part.begin(owner));
    EXPECT_LT(v, part.end(owner));
    EXPECT_EQ(part.global(owner, part.local(v)), v);
  }
}

TEST(BlockPartition, MoreRanksThanVertices) {
  BlockPartition part(3, 8);
  EXPECT_EQ(part.count(0), 1u);
  EXPECT_EQ(part.count(2), 1u);
  EXPECT_EQ(part.count(3), 0u);
  EXPECT_EQ(part.count(7), 0u);
  EXPECT_EQ(part.owner(2), 2);
}

TEST(BlockPartition, BoundsAreChecked) {
  BlockPartition part(10, 2);
  EXPECT_THROW((void)part.owner(10), std::out_of_range);
  EXPECT_THROW((void)part.count(2), std::out_of_range);
  EXPECT_THROW((void)part.begin(-1), std::out_of_range);
}

TEST(BlockPartition, ZeroRanksRejected) {
  EXPECT_THROW(BlockPartition(10, 0), std::invalid_argument);
}

TEST(BlockPartition, DefaultConstructedIsEmpty) {
  BlockPartition part;
  EXPECT_EQ(part.num_vertices(), 0u);
  EXPECT_EQ(part.num_ranks(), 1);
}

}  // namespace
