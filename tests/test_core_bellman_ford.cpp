// Correctness tests for the distributed Bellman-Ford baseline.
#include <gtest/gtest.h>

#include "sssp_test_util.hpp"

namespace {

using namespace g500;
using namespace g500::graph;
using g500::testing::EngineKind;
using g500::testing::expect_matches_oracle;
using g500::testing::standard_graph_cases;

class BellmanFordSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    GraphRank, BellmanFordSweep,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1, 3, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return standard_graph_cases()[std::get<0>(info.param)].name + "_r" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(BellmanFordSweep, MatchesDijkstraAndValidates) {
  const auto [graph_idx, ranks] = GetParam();
  const auto gc = standard_graph_cases()[graph_idx];
  const EdgeList list = gc.make();
  expect_matches_oracle(list, ranks, {0, list.num_vertices - 1},
                        core::SsspConfig{}, EngineKind::kBellmanFord);
}

TEST(BellmanFord, PlainConfigAlsoCorrect) {
  const EdgeList list = random_graph(96, 400, 8);
  expect_matches_oracle(list, 4, {0}, core::SsspConfig::plain(),
                        EngineKind::kBellmanFord);
}

TEST(BellmanFord, GeneratesMoreRelaxationsThanDeltaStepping) {
  // The whole point of buckets: BF re-relaxes settled vertices; on a path
  // graph with descending weights the gap is extreme, on Kronecker modest
  // but present.
  KroneckerParams params;
  params.scale = 10;
  params.edgefactor = 8;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::SsspStats bf_stats;
    core::SsspStats ds_stats;
    (void)core::bellman_ford(comm, g, 1, core::SsspConfig{}, &bf_stats);
    (void)core::delta_stepping(comm, g, 1, core::SsspConfig{}, &ds_stats);
    const auto bf = comm.allreduce_sum(bf_stats.relax_generated);
    const auto ds = comm.allreduce_sum(ds_stats.relax_generated);
    EXPECT_GT(bf, 0u);
    EXPECT_GT(ds, 0u);
    // Delta-stepping never generates more candidate work than BF here.
    EXPECT_LE(ds, bf * 2);  // sanity ordering, allows noise
  });
}

TEST(BellmanFord, RootOutOfRangeThrows) {
  const EdgeList g = path_graph(4);
  simmpi::World world(2);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 const DistGraph dg = build_distributed(
                     comm, slice_for_rank(g, comm.rank(), comm.size()), 4);
                 (void)core::bellman_ford(comm, dg, 44);
               }),
               std::out_of_range);
}

TEST(BellmanFord, EmptyGraphTerminates) {
  EdgeList isolated;
  isolated.num_vertices = 4;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(comm, isolated, 4);
    const auto mine = core::bellman_ford(comm, g, 0);
    EXPECT_TRUE(core::validate_sssp(comm, g, 0, mine).ok);
  });
}

}  // namespace
