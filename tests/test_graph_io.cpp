// Tests for edge-list I/O (binary and TSV).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/kronecker.hpp"

namespace {

using namespace g500::graph;

TEST(BinaryIo, RoundTripsExactly) {
  KroneckerParams params;
  params.scale = 8;
  const EdgeList original = kronecker_graph(params);
  std::stringstream buffer;
  write_edge_list_binary(buffer, original);
  const EdgeList loaded = read_edge_list_binary(buffer);
  EXPECT_EQ(loaded.num_vertices, original.num_vertices);
  ASSERT_EQ(loaded.edges.size(), original.edges.size());
  for (std::size_t i = 0; i < original.edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i], original.edges[i]) << "edge " << i;
  }
}

TEST(BinaryIo, EmptyGraphRoundTrips) {
  EdgeList empty;
  empty.num_vertices = 42;
  std::stringstream buffer;
  write_edge_list_binary(buffer, empty);
  const EdgeList loaded = read_edge_list_binary(buffer);
  EXPECT_EQ(loaded.num_vertices, 42u);
  EXPECT_TRUE(loaded.edges.empty());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "definitely not a graph file, but long enough to read a header";
  EXPECT_THROW((void)read_edge_list_binary(buffer), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncatedPayload) {
  const EdgeList g = path_graph(10);
  std::stringstream buffer;
  write_edge_list_binary(buffer, g);
  const std::string whole = buffer.str();
  std::stringstream cut(whole.substr(0, whole.size() - 10));
  EXPECT_THROW((void)read_edge_list_binary(cut), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/g500_io_test.bin";
  const EdgeList g = grid_graph(4, 5, 9);
  write_edge_list_binary(path, g);
  const EdgeList loaded = read_edge_list_binary(path);
  EXPECT_EQ(loaded.edges.size(), g.edges.size());
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW((void)read_edge_list_binary("/nonexistent/g500.bin"),
               std::runtime_error);
}

TEST(TsvIo, RoundTripsStructure) {
  const EdgeList g = star_graph(12, 4);
  std::stringstream buffer;
  write_edge_list_tsv(buffer, g);
  const EdgeList loaded = read_edge_list_tsv(buffer);
  EXPECT_EQ(loaded.num_vertices, g.num_vertices);
  ASSERT_EQ(loaded.edges.size(), g.edges.size());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i].src, g.edges[i].src);
    EXPECT_EQ(loaded.edges[i].dst, g.edges[i].dst);
    EXPECT_NEAR(loaded.edges[i].weight, g.edges[i].weight, 1e-6);
  }
}

TEST(TsvIo, ParsesCommentsAndDefaultWeight) {
  std::stringstream in(
      "# a comment\n"
      "0\t1\t0.5\n"
      "\n"
      "1 2\n"        // missing weight -> 1.0, space separated is fine
      "# trailing comment\n");
  const EdgeList g = read_edge_list_tsv(in);
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_FLOAT_EQ(g.edges[0].weight, 0.5f);
  EXPECT_FLOAT_EQ(g.edges[1].weight, 1.0f);
  EXPECT_EQ(g.num_vertices, 3u);
}

TEST(TsvIo, VerticesHeaderRaisesCount) {
  std::stringstream in(
      "# vertices: 100\n"
      "0\t1\t0.5\n");
  EXPECT_EQ(read_edge_list_tsv(in).num_vertices, 100u);
}

TEST(TsvIo, MalformedLineThrows) {
  std::stringstream in("0\tnot_a_number\n");
  EXPECT_THROW((void)read_edge_list_tsv(in), std::runtime_error);
}

TEST(TsvIo, RejectsNonPositiveWeights) {
  std::stringstream zero("0\t1\t0.0\n");
  EXPECT_THROW((void)read_edge_list_tsv(zero), std::runtime_error);
  std::stringstream negative("0\t1\t-2\n");
  EXPECT_THROW((void)read_edge_list_tsv(negative), std::runtime_error);
}

TEST(TsvIo, EmptyInputGivesEmptyGraph) {
  std::stringstream in("");
  const EdgeList g = read_edge_list_tsv(in);
  EXPECT_EQ(g.num_vertices, 0u);
  EXPECT_TRUE(g.edges.empty());
}

}  // namespace
