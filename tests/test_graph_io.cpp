// Tests for edge-list I/O (binary and TSV) and the v2 CSR shard format.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/binary_format.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/kronecker.hpp"
#include "graph/shard.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// A syntactically-valid binary stream with an arbitrary header and raw
/// edge payload — the corruption tests craft hostile inputs with it.
std::string make_binary(std::uint32_t version, std::uint64_t num_vertices,
                        std::uint64_t claimed_edges,
                        const std::vector<binfmt::BinaryEdge>& payload) {
  binfmt::BinaryHeader header{};
  std::memcpy(header.magic, binfmt::kMagic, sizeof(binfmt::kMagic));
  header.version = version;
  header.num_vertices = num_vertices;
  header.num_edges = claimed_edges;
  std::string bytes(reinterpret_cast<const char*>(&header), sizeof(header));
  bytes.append(reinterpret_cast<const char*>(payload.data()),
               payload.size() * sizeof(binfmt::BinaryEdge));
  return bytes;
}

TEST(BinaryIo, RoundTripsExactly) {
  KroneckerParams params;
  params.scale = 8;
  const EdgeList original = kronecker_graph(params);
  std::stringstream buffer;
  write_edge_list_binary(buffer, original);
  const EdgeList loaded = read_edge_list_binary(buffer);
  EXPECT_EQ(loaded.num_vertices, original.num_vertices);
  ASSERT_EQ(loaded.edges.size(), original.edges.size());
  for (std::size_t i = 0; i < original.edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i], original.edges[i]) << "edge " << i;
  }
}

TEST(BinaryIo, EmptyGraphRoundTrips) {
  EdgeList empty;
  empty.num_vertices = 42;
  std::stringstream buffer;
  write_edge_list_binary(buffer, empty);
  const EdgeList loaded = read_edge_list_binary(buffer);
  EXPECT_EQ(loaded.num_vertices, 42u);
  EXPECT_TRUE(loaded.edges.empty());
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream buffer;
  buffer << "definitely not a graph file, but long enough to read a header";
  EXPECT_THROW((void)read_edge_list_binary(buffer), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncatedPayload) {
  const EdgeList g = path_graph(10);
  std::stringstream buffer;
  write_edge_list_binary(buffer, g);
  const std::string whole = buffer.str();
  std::stringstream cut(whole.substr(0, whole.size() - 10));
  EXPECT_THROW((void)read_edge_list_binary(cut), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/g500_io_test.bin";
  const EdgeList g = grid_graph(4, 5, 9);
  write_edge_list_binary(path, g);
  const EdgeList loaded = read_edge_list_binary(path);
  EXPECT_EQ(loaded.edges.size(), g.edges.size());
  std::remove(path.c_str());
}

TEST(BinaryIo, MissingFileThrows) {
  EXPECT_THROW((void)read_edge_list_binary("/nonexistent/g500.bin"),
               std::runtime_error);
}

TEST(TsvIo, RoundTripsStructure) {
  const EdgeList g = star_graph(12, 4);
  std::stringstream buffer;
  write_edge_list_tsv(buffer, g);
  const EdgeList loaded = read_edge_list_tsv(buffer);
  EXPECT_EQ(loaded.num_vertices, g.num_vertices);
  ASSERT_EQ(loaded.edges.size(), g.edges.size());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(loaded.edges[i].src, g.edges[i].src);
    EXPECT_EQ(loaded.edges[i].dst, g.edges[i].dst);
    EXPECT_NEAR(loaded.edges[i].weight, g.edges[i].weight, 1e-6);
  }
}

TEST(TsvIo, ParsesCommentsAndDefaultWeight) {
  std::stringstream in(
      "# a comment\n"
      "0\t1\t0.5\n"
      "\n"
      "1 2\n"        // missing weight -> 1.0, space separated is fine
      "# trailing comment\n");
  const EdgeList g = read_edge_list_tsv(in);
  ASSERT_EQ(g.edges.size(), 2u);
  EXPECT_FLOAT_EQ(g.edges[0].weight, 0.5f);
  EXPECT_FLOAT_EQ(g.edges[1].weight, 1.0f);
  EXPECT_EQ(g.num_vertices, 3u);
}

TEST(TsvIo, VerticesHeaderRaisesCount) {
  std::stringstream in(
      "# vertices: 100\n"
      "0\t1\t0.5\n");
  EXPECT_EQ(read_edge_list_tsv(in).num_vertices, 100u);
}

TEST(TsvIo, MalformedLineThrows) {
  std::stringstream in("0\tnot_a_number\n");
  EXPECT_THROW((void)read_edge_list_tsv(in), std::runtime_error);
}

TEST(TsvIo, RejectsNonPositiveWeights) {
  std::stringstream zero("0\t1\t0.0\n");
  EXPECT_THROW((void)read_edge_list_tsv(zero), std::runtime_error);
  std::stringstream negative("0\t1\t-2\n");
  EXPECT_THROW((void)read_edge_list_tsv(negative), std::runtime_error);
}

TEST(TsvIo, EmptyInputGivesEmptyGraph) {
  std::stringstream in("");
  const EdgeList g = read_edge_list_tsv(in);
  EXPECT_EQ(g.num_vertices, 0u);
  EXPECT_TRUE(g.edges.empty());
}

// --- hardened-reader regression tests ---

TEST(BinaryIo, RejectsReserveBombHeader) {
  // A header claiming 2^60 edges over a 24-byte payload used to make the
  // reader reserve ~26 exabytes before noticing the truncation.
  std::stringstream in(make_binary(binfmt::kEdgeListVersion, 100,
                                   std::uint64_t{1} << 60,
                                   {{0, 1, 0.5f, 0.0f}}));
  try {
    (void)read_edge_list_binary(in);
    FAIL() << "reserve-bomb header was accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos)
        << e.what();
  }
}

TEST(BinaryIo, RejectsOutOfRangeEndpoint) {
  // dst 9 with num_vertices 4: must fail fast naming the record, not hand
  // the builder an endpoint it would crash on later.
  std::stringstream in(make_binary(binfmt::kEdgeListVersion, 4, 2,
                                   {{0, 1, 0.5f, 0.0f}, {2, 9, 0.5f, 0.0f}}));
  try {
    (void)read_edge_list_binary(in);
    FAIL() << "out-of-range endpoint was accepted";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("edge 1"), std::string::npos) << what;
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
  }
}

TEST(BinaryIo, RejectsShardVersionAsEdgeList) {
  std::stringstream in(
      make_binary(binfmt::kShardVersion, 4, 0, {}));
  EXPECT_THROW((void)read_edge_list_binary(in), std::runtime_error);
}

TEST(TsvIo, RejectsUnparseableWeightField) {
  // A present-but-garbage third field must be an error, not weight 1.0 —
  // only an *absent* field defaults.
  std::stringstream garbage("1\t2\tabc\n");
  EXPECT_THROW((void)read_edge_list_tsv(garbage), std::runtime_error);
  std::stringstream trailing("1\t2\t0.5junk\n");
  EXPECT_THROW((void)read_edge_list_tsv(trailing), std::runtime_error);
  std::stringstream overflow("1\t2\t1e999\n");
  EXPECT_THROW((void)read_edge_list_tsv(overflow), std::runtime_error);
}

// --- v2 CSR shard format ---

TEST(ShardIo, RoundTripsThroughShardFile) {
  KroneckerParams params;
  params.scale = 6;
  const std::string dir = ::testing::TempDir() + "/g500_shard_rt";
  std::filesystem::create_directories(dir);
  const int ranks = 2;
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    write_shard(shard_path(dir, comm.rank(), ranks), g, comm.rank());
    const ShardedCsr shard =
        ShardedCsr::map(shard_path(dir, comm.rank(), ranks));
    EXPECT_EQ(shard.rank(), comm.rank());
    EXPECT_EQ(shard.num_ranks(), ranks);
    EXPECT_EQ(shard.num_vertices(), g.num_vertices);
    EXPECT_EQ(shard.num_local(), g.csr.num_local());
    EXPECT_EQ(shard.num_input_edges(), g.num_input_edges);
    ASSERT_TRUE(shard.has_pull());
    const auto eq = [](auto a, auto b) {
      return a.size() == b.size() &&
             std::memcmp(a.data(), b.data(),
                         a.size_bytes()) == 0;
    };
    EXPECT_TRUE(eq(shard.csr().offsets(), g.csr.offsets()));
    EXPECT_TRUE(eq(shard.csr().adjacency(), g.csr.adjacency()));
    EXPECT_TRUE(eq(shard.csr().weights(), g.csr.weights()));
    EXPECT_TRUE(eq(shard.pull().sources(), g.pull.sources()));
    EXPECT_TRUE(eq(shard.pull().offsets(), g.pull.offsets()));
    EXPECT_TRUE(eq(shard.pull().destinations(), g.pull.destinations()));
    EXPECT_TRUE(eq(shard.pull().weights(), g.pull.weights()));
    EXPECT_FALSE(shard.csr().owns_storage());
    EXPECT_EQ(shard.csr().resident_bytes(), 0u);
  });
  std::filesystem::remove_all(dir);
}

TEST(ShardIo, MapRejectsCorruption) {
  KroneckerParams params;
  params.scale = 5;
  const std::string dir = ::testing::TempDir() + "/g500_shard_corrupt";
  std::filesystem::create_directories(dir);
  const std::string path = shard_path(dir, 0, 1);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    write_shard(path, build_kronecker(comm, params), 0);
  });

  // Pristine file maps fine.
  EXPECT_NO_THROW((void)ShardedCsr::map(path));

  // A flipped header byte fails the checksum.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    bytes = ss.str();
  }
  {
    std::string flipped = bytes;
    flipped[sizeof(binfmt::BinaryHeader) + 8] ^= 0x40;
    std::ofstream out(path, std::ios::binary);
    out << flipped;
  }
  EXPECT_THROW((void)ShardedCsr::map(path), std::runtime_error);

  // A truncated file fails the size check.
  {
    std::ofstream out(path, std::ios::binary);
    out << bytes.substr(0, bytes.size() - 16);
  }
  EXPECT_THROW((void)ShardedCsr::map(path), std::runtime_error);

  // An edge-list (v1) file is not a shard.
  {
    std::ofstream out(path, std::ios::binary);
    out << make_binary(binfmt::kEdgeListVersion, 4, 0, {});
  }
  EXPECT_THROW((void)ShardedCsr::map(path), std::runtime_error);
  std::filesystem::remove_all(dir);
}

}  // namespace
