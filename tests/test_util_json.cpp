// Unit tests for the dependency-free JSON writer/parser (util/json.hpp):
// escaping, number formatting (round-trippable doubles, NaN/Inf policy),
// insertion-order preservation, and parse errors.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "util/json.hpp"

namespace {

using g500::util::Json;
using g500::util::json_double;
using g500::util::json_escape;

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("hello world"), "hello world");
}

TEST(JsonEscape, EscapesQuotesAndBackslash) {
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
}

TEST(JsonEscape, EscapesControlCharacters) {
  EXPECT_EQ(json_escape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonDouble, IntegralValuesKeepDecimalPoint) {
  EXPECT_EQ(json_double(1.0), "1.0");
  EXPECT_EQ(json_double(-3.0), "-3.0");
  EXPECT_EQ(json_double(0.0), "0.0");
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonDouble, RoundTripsThroughParse) {
  for (const double v : {0.1, 1.0 / 3.0, 6.02214076e23, 1e-308, -2.5e-7,
                         123456789.123456789}) {
    const Json parsed = Json::parse(json_double(v));
    EXPECT_EQ(parsed.as_double(), v) << json_double(v);
  }
}

TEST(JsonValue, NonFiniteDoubleDumpsAsNull) {
  Json j = Json::object();
  j["x"] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(j.dump(), "{\"x\":null}");
}

TEST(JsonValue, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j["zeta"] = 1;
  j["alpha"] = 2;
  j["mid"] = 3;
  EXPECT_EQ(j.dump(), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
}

TEST(JsonValue, OperatorBracketOverwritesInPlace) {
  Json j = Json::object();
  j["a"] = 1;
  j["b"] = 2;
  j["a"] = 10;
  EXPECT_EQ(j.dump(), "{\"a\":10,\"b\":2}");
}

TEST(JsonValue, Uint64MaxSurvives) {
  const auto big = std::numeric_limits<std::uint64_t>::max();
  Json j = Json::object();
  j["n"] = big;
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("n").as_uint64(), big);
}

TEST(JsonValue, NegativeIntegersSurvive) {
  Json j = Json::object();
  j["n"] = std::int64_t{-42};
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.at("n").as_int64(), -42);
}

TEST(JsonValue, NestedStructureRoundTrips) {
  Json j = Json::object();
  j["name"] = "sssp";
  j["valid"] = true;
  j["none"] = Json();
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(3.5);
  j["mixed"] = std::move(arr);
  Json inner = Json::object();
  inner["depth"] = 2;
  j["inner"] = std::move(inner);

  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back, j);
  EXPECT_EQ(back.at("mixed").size(), 3u);
  EXPECT_EQ(back.at("mixed").at(1).as_string(), "two");
  EXPECT_EQ(back.at("inner").at("depth").as_int64(), 2);
}

TEST(JsonValue, PrettyPrintedOutputParsesBack) {
  Json j = Json::object();
  j["a"] = 1;
  Json arr = Json::array();
  arr.push_back(true);
  arr.push_back(Json());
  j["b"] = std::move(arr);
  const std::string pretty = j.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(Json::parse(pretty), j);
}

TEST(JsonParse, HandlesUnicodeEscapes) {
  const Json j = Json::parse("\"a\\u00e9\\u4e2d\"");
  EXPECT_EQ(j.as_string(), "a\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("tru"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("1 2"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse(""), std::invalid_argument);
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(1000, '[');
  EXPECT_THROW((void)Json::parse(deep), std::invalid_argument);
}

TEST(JsonValue, NumbersCompareByValueAcrossStorage) {
  Json a;
  a = std::int64_t{5};
  Json b;
  b = std::uint64_t{5};
  EXPECT_EQ(a, b);
}

}  // namespace
