// Cross-cutting property tests: algebraic invariants any correct SSSP/BFS
// implementation must satisfy, exercised through the distributed engines.
#include <gtest/gtest.h>

#include "core/bfs.hpp"
#include "core/delta_stepping.hpp"
#include "core/dijkstra.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// Solve on 4 ranks and gather global distances.
std::vector<Weight> solve(const EdgeList& list, VertexId root,
                          const core::SsspConfig& config = {}) {
  std::vector<Weight> dist;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto mine = core::delta_stepping(comm, g, root, config);
    const auto whole = core::gather_result(comm, g, mine);
    if (comm.rank() == 0) dist = whole.dist;
  });
  return dist;
}

TEST(Properties, ScalingWeightsByPowersOfTwoScalesDistances) {
  // Multiplication by 2^k is exact in binary floating point and commutes
  // with rounding of additions, so distances must scale exactly.
  const EdgeList base = random_graph(128, 512, 31);
  EdgeList doubled = base;
  for (auto& e : doubled.edges) e.weight *= 2.0f;
  const auto d1 = solve(base, 3);
  const auto d2 = solve(doubled, 3);
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t v = 0; v < d1.size(); ++v) {
    if (d1[v] == kInfDistance) {
      EXPECT_EQ(d2[v], kInfDistance);
    } else {
      EXPECT_EQ(d2[v], 2.0f * d1[v]) << "vertex " << v;
    }
  }
}

TEST(Properties, AddingEdgesNeverIncreasesDistances) {
  const EdgeList sparse = random_graph(100, 200, 17);
  EdgeList denser = sparse;
  const EdgeList extra = random_graph(100, 100, 18);
  denser.edges.insert(denser.edges.end(), extra.edges.begin(),
                      extra.edges.end());
  const auto before = solve(sparse, 0);
  const auto after = solve(denser, 0);
  for (std::size_t v = 0; v < before.size(); ++v) {
    EXPECT_LE(after[v], before[v]) << "vertex " << v;
  }
}

TEST(Properties, DisconnectedPaddingDoesNotPerturbDistances) {
  const EdgeList core_graph = random_graph(64, 256, 23);
  EdgeList padded = core_graph;
  padded.num_vertices = 96;  // 32 extra isolated vertices
  const auto a = solve(core_graph, 5);
  const auto b = solve(padded, 5);
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(b[v], a[v]) << "vertex " << v;
  }
  for (std::size_t v = 64; v < 96; ++v) {
    EXPECT_EQ(b[v], kInfDistance);
  }
}

TEST(Properties, UniformWeightsMakeSsspProportionalToBfsLevels) {
  // With every weight equal, shortest weighted paths minimize hop count,
  // so dist = w * level for all reachable vertices.
  KroneckerParams params;
  params.scale = 9;
  EdgeList list = kronecker_graph(params);
  constexpr Weight kUniform = 0.125f;  // power of two: products are exact
  for (auto& e : list.edges) e.weight = kUniform;

  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto sssp = core::delta_stepping(comm, g, 1);
    const auto levels = core::bfs(comm, g, 1);
    ASSERT_EQ(sssp.dist.size(), levels.level.size());
    for (std::size_t v = 0; v < sssp.dist.size(); ++v) {
      if (levels.level[v] == core::BfsResult::kNoLevel) {
        EXPECT_EQ(sssp.dist[v], kInfDistance);
      } else {
        EXPECT_EQ(sssp.dist[v],
                  kUniform * static_cast<Weight>(levels.level[v]))
            << "local vertex " << v;
      }
    }
  });
}

TEST(Properties, StarDistancesAreDirectEdgeWeights) {
  const EdgeList star = star_graph(64, 41);
  const auto dist = solve(star, 0);
  EXPECT_EQ(dist[0], 0.0f);
  for (VertexId v = 1; v < 64; ++v) {
    EXPECT_EQ(dist[v], star.edges[v - 1].weight) << "leaf " << v;
  }
}

TEST(Properties, SymmetryDistanceUVEqualsVU) {
  // Undirected graph: dist_u(v) == dist_v(u) up to float rounding (the
  // reversed path accumulates its edge weights in the opposite order).
  const EdgeList list = random_graph(96, 384, 47);
  const auto from_u = solve(list, 7);
  const auto from_v = solve(list, 55);
  ASSERT_NE(from_u[55], kInfDistance);
  EXPECT_NEAR(from_u[55], from_v[7], 1e-5);
}

TEST(Properties, DistancesBoundedByHopCountTimesMaxWeight) {
  KroneckerParams params;
  params.scale = 9;
  const EdgeList list = kronecker_graph(params);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto sssp = core::delta_stepping(comm, g, 1);
    const auto levels = core::bfs(comm, g, 1);
    for (std::size_t v = 0; v < sssp.dist.size(); ++v) {
      if (levels.level[v] == core::BfsResult::kNoLevel) continue;
      // Weights are < 1, so weighted distance < hop distance; and the
      // weighted shortest path has at least `level` hops' worth of cost
      // only as a lower bound of 0 — check the meaningful side.
      EXPECT_LT(sssp.dist[v], static_cast<Weight>(levels.level[v]) + 1.0f)
          << "local vertex " << v;
    }
  });
}

}  // namespace
