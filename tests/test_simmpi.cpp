// Unit tests for the simulated MPI runtime: collective semantics, traffic
// accounting and failure propagation.
#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "simmpi/comm.hpp"

namespace {

using namespace g500;

class SimMpiRanks : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, SimMpiRanks,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 16));

TEST_P(SimMpiRanks, AlltoallvDeliversEverything) {
  simmpi::World world(GetParam());
  world.run([](simmpi::Comm& comm) {
    const int P = comm.size();
    std::vector<std::vector<int>> out(P);
    for (int d = 0; d < P; ++d) {
      // rank r sends {r*100+d} repeated (d+1) times to rank d.
      out[d].assign(d + 1, comm.rank() * 100 + d);
    }
    const std::vector<int> in = comm.alltoallv(out);
    // Received: from each source s, (rank+1) copies of s*100+rank, in rank
    // order.
    ASSERT_EQ(in.size(), static_cast<std::size_t>(P * (comm.rank() + 1)));
    std::size_t idx = 0;
    for (int s = 0; s < P; ++s) {
      for (int k = 0; k <= comm.rank(); ++k) {
        EXPECT_EQ(in[idx++], s * 100 + comm.rank());
      }
    }
  });
}

TEST_P(SimMpiRanks, AlltoallvBySrcKeepsBoundaries) {
  simmpi::World world(GetParam());
  world.run([](simmpi::Comm& comm) {
    const int P = comm.size();
    std::vector<std::vector<std::uint64_t>> out(P);
    for (int d = 0; d < P; ++d) out[d] = {static_cast<std::uint64_t>(d)};
    const auto in = comm.alltoallv_by_src(out);
    ASSERT_EQ(in.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) {
      ASSERT_EQ(in[s].size(), 1u);
      EXPECT_EQ(in[s][0], static_cast<std::uint64_t>(comm.rank()));
    }
  });
}

TEST_P(SimMpiRanks, AllreduceSumMinMax) {
  simmpi::World world(GetParam());
  const int P = GetParam();
  world.run([P](simmpi::Comm& comm) {
    const int r = comm.rank();
    EXPECT_EQ(comm.allreduce_sum(r), P * (P - 1) / 2);
    EXPECT_EQ(comm.allreduce_min(r), 0);
    EXPECT_EQ(comm.allreduce_max(r), P - 1);
    EXPECT_TRUE(comm.allreduce_or(r == P - 1));
    EXPECT_FALSE(comm.allreduce_or(false));
  });
}

TEST_P(SimMpiRanks, AllreduceVecElementwise) {
  simmpi::World world(GetParam());
  const int P = GetParam();
  world.run([P](simmpi::Comm& comm) {
    const std::vector<int> mine{comm.rank(), 1, -comm.rank()};
    const auto sum = comm.allreduce_vec<int>(
        mine, [](int a, int b) { return a + b; });
    ASSERT_EQ(sum.size(), 3u);
    EXPECT_EQ(sum[0], P * (P - 1) / 2);
    EXPECT_EQ(sum[1], P);
    EXPECT_EQ(sum[2], -P * (P - 1) / 2);
  });
}

TEST_P(SimMpiRanks, AllgatherCollectsInRankOrder) {
  simmpi::World world(GetParam());
  const int P = GetParam();
  world.run([P](simmpi::Comm& comm) {
    const auto all = comm.allgather(comm.rank() * 3);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(P));
    for (int s = 0; s < P; ++s) EXPECT_EQ(all[s], s * 3);
  });
}

TEST_P(SimMpiRanks, AllgathervVariableLengths) {
  simmpi::World world(GetParam());
  const int P = GetParam();
  world.run([P](simmpi::Comm& comm) {
    std::vector<char> mine(static_cast<std::size_t>(comm.rank()),
                           static_cast<char>('a' + comm.rank()));
    std::vector<std::size_t> offsets;
    const auto all = comm.allgatherv(mine, &offsets);
    ASSERT_EQ(offsets.size(), static_cast<std::size_t>(P) + 1);
    EXPECT_EQ(offsets.front(), 0u);
    EXPECT_EQ(offsets.back(), all.size());
    for (int s = 0; s < P; ++s) {
      EXPECT_EQ(offsets[s + 1] - offsets[s], static_cast<std::size_t>(s));
      for (std::size_t i = offsets[s]; i < offsets[s + 1]; ++i) {
        EXPECT_EQ(all[i], static_cast<char>('a' + s));
      }
    }
  });
}

TEST_P(SimMpiRanks, BroadcastFromEveryRoot) {
  simmpi::World world(GetParam());
  const int P = GetParam();
  world.run([P](simmpi::Comm& comm) {
    for (int root = 0; root < P; ++root) {
      double v = comm.rank() == root ? 2.5 * root : -1.0;
      comm.broadcast(v, root);
      EXPECT_DOUBLE_EQ(v, 2.5 * root);
    }
  });
}

TEST(SimMpi, BarrierSynchronizes) {
  simmpi::World world(4);
  std::atomic<int> counter{0};
  world.run([&counter](simmpi::Comm& comm) {
    counter.fetch_add(1);
    comm.barrier();
    // After the barrier every rank must see all increments.
    EXPECT_EQ(counter.load(), 4);
  });
}

TEST(SimMpi, StatsCountOnlyRemoteTraffic) {
  simmpi::World world(2);
  world.run([](simmpi::Comm& comm) {
    std::vector<std::vector<std::uint32_t>> out(2);
    out[comm.rank()] = {1, 2, 3};       // self: free
    out[1 - comm.rank()] = {4, 5};      // remote: 8 bytes
    (void)comm.alltoallv(out);
  });
  const auto total = world.aggregate_stats();
  EXPECT_EQ(total.alltoallv.bytes, 2u * 2 * sizeof(std::uint32_t));
  EXPECT_EQ(total.alltoallv.messages, 2u);
  EXPECT_EQ(total.alltoallv.calls, 2u);  // one call per rank
}

TEST(SimMpi, StatsTrafficMatrix) {
  simmpi::World world(3);
  world.run([](simmpi::Comm& comm) {
    std::vector<std::vector<std::uint8_t>> out(3);
    if (comm.rank() == 0) out[2] = {1, 2, 3, 4, 5};  // 5 bytes 0->2
    (void)comm.alltoallv(out);
  });
  EXPECT_EQ(world.rank_stats(0).bytes_to[2], 5u);
  EXPECT_EQ(world.rank_stats(0).bytes_to[1], 0u);
  EXPECT_EQ(world.rank_stats(1).total_bytes(), 0u);
}

TEST(SimMpi, ResetStatsClears) {
  simmpi::World world(2);
  world.run([](simmpi::Comm& comm) { comm.barrier(); });
  EXPECT_GT(world.aggregate_stats().barriers, 0u);
  world.reset_stats();
  EXPECT_EQ(world.aggregate_stats().barriers, 0u);
  EXPECT_EQ(world.aggregate_stats().rounds(), 0u);
}

TEST(SimMpi, StatsAccumulateAcrossRuns) {
  simmpi::World world(2);
  world.run([](simmpi::Comm& comm) { comm.barrier(); });
  world.run([](simmpi::Comm& comm) { comm.barrier(); });
  EXPECT_EQ(world.aggregate_stats().barriers, 4u);  // 2 ranks x 2 runs
}

TEST(SimMpi, RunCollectGathersReturnValues) {
  simmpi::World world(4);
  const auto results = world.run_collect<int>(
      [](simmpi::Comm& comm) { return comm.rank() * comm.rank(); });
  ASSERT_EQ(results.size(), 4u);
  for (int r = 0; r < 4; ++r) EXPECT_EQ(results[r], r * r);
}

TEST(SimMpi, ExceptionPropagatesFromOneRank) {
  simmpi::World world(4);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 comm.barrier();
                 if (comm.rank() == 2) {
                   throw std::runtime_error("rank 2 failed");
                 }
                 // Survivors park on a barrier; the failure must release
                 // them instead of deadlocking.
                 comm.barrier();
               }),
               std::runtime_error);
}

TEST(SimMpi, WorldIsReusableAfterFailure) {
  simmpi::World world(3);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 if (comm.rank() == 0) throw std::logic_error("boom");
                 comm.barrier();
               }),
               std::logic_error);
  // A failed run must not poison the next one.
  world.run([](simmpi::Comm& comm) {
    comm.barrier();
    EXPECT_EQ(comm.allreduce_sum(1), 3);
  });
}

TEST(SimMpi, MismatchedVectorLengthsThrow) {
  simmpi::World world(2);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 std::vector<std::vector<int>> too_small(1);
                 (void)comm.alltoallv(too_small);
               }),
               std::invalid_argument);
}

TEST(SimMpi, SwallowedValidationErrorStillAbortsPeers) {
  // Argument-validation errors go through the world-abort path: even if
  // the offending rank catches the exception and tries to continue, the
  // world is already failed and every rank (the offender included) unwinds
  // at its next sync instead of pairing mismatched collectives.
  simmpi::World world(3);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 if (comm.rank() == 0) {
                   try {
                     std::vector<std::vector<int>> too_small(1);
                     (void)comm.alltoallv(too_small);
                   } catch (const std::invalid_argument&) {
                     // Swallow and carry on as if nothing happened.
                   }
                 }
                 comm.barrier();
                 ADD_FAILURE() << "no rank may pass a poisoned barrier";
               }),
               std::invalid_argument);
}

TEST(SimMpi, AllreduceVecLengthMismatchAbortsWorld) {
  simmpi::World world(2);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 std::vector<int> mine(comm.rank() == 0 ? 2 : 3, 1);
                 (void)comm.allreduce_vec<int>(
                     mine, [](int a, int b) { return a + b; });
               }),
               std::invalid_argument);
  // The mismatch must not poison the next run.
  world.run([](simmpi::Comm& comm) { EXPECT_EQ(comm.allreduce_sum(1), 2); });
}

TEST(SimMpi, TwoRanksThrowInTheSameRound) {
  simmpi::World world(4);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 comm.barrier();
                 if (comm.rank() == 1 || comm.rank() == 3) {
                   throw std::runtime_error("concurrent failure");
                 }
                 comm.barrier();
                 ADD_FAILURE() << "survivors must abort, not continue";
               }),
               std::runtime_error);
  world.run([](simmpi::Comm& comm) { EXPECT_EQ(comm.allreduce_sum(1), 4); });
}

TEST(SimMpi, ThrowWhilePeersAreMidAllgatherv) {
  // The victim dies before ever publishing; peers are already parked
  // inside the collective and must unwind instead of deadlocking.
  simmpi::World world(3);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 if (comm.rank() == 2) {
                   throw std::runtime_error("died before the exchange");
                 }
                 std::vector<int> mine(comm.rank() + 1, comm.rank());
                 (void)comm.allgatherv(mine);
               }),
               std::runtime_error);
  world.run([](simmpi::Comm& comm) { EXPECT_EQ(comm.allreduce_sum(1), 3); });
}

TEST(SimMpi, BadBroadcastRootThrows) {
  simmpi::World world(2);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 int v = 0;
                 comm.broadcast(v, 5);
               }),
               std::invalid_argument);
}

TEST(SimMpi, ZeroRanksRejected) {
  EXPECT_THROW(simmpi::World w(0), std::invalid_argument);
}

TEST(SimMpi, SingleRankCollectivesAreIdentity) {
  simmpi::World world(1);
  world.run([](simmpi::Comm& comm) {
    EXPECT_EQ(comm.allreduce_sum(7), 7);
    const auto g = comm.allgather(3.5);
    ASSERT_EQ(g.size(), 1u);
    std::vector<std::vector<int>> out(1, std::vector<int>{1, 2});
    const auto in = comm.alltoallv(out);
    EXPECT_EQ(in, (std::vector<int>{1, 2}));
  });
  // Self traffic is free.
  EXPECT_EQ(world.aggregate_stats().total_bytes(),
            world.aggregate_stats().allreduce.bytes +
                world.aggregate_stats().allgather.bytes);
}

TEST(SimMpi, DeterministicFloatReduction) {
  // Reduction order is rank 0..P-1 on every rank, so float sums are
  // bit-identical across ranks.
  simmpi::World world(8);
  const auto results = world.run_collect<float>([](simmpi::Comm& comm) {
    const float mine = 0.1f * static_cast<float>(comm.rank() + 1);
    return comm.allreduce_sum(mine);
  });
  for (int r = 1; r < 8; ++r) EXPECT_EQ(results[0], results[r]);
}

TEST(SimMpi, ManySmallRoundsSurvive) {
  // Stress the barrier reuse: thousands of collective phases.
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    std::uint64_t acc = 0;
    for (int i = 0; i < 2000; ++i) {
      acc += comm.allreduce_sum<std::uint64_t>(1);
    }
    EXPECT_EQ(acc, 2000u * 4);
  });
}

}  // namespace
