// Correctness tests for the delta-stepping engine: oracle sweeps over
// graph shapes x rank counts x optimization configurations, plus targeted
// feature and edge-case tests.
#include <gtest/gtest.h>

#include "sssp_test_util.hpp"

namespace {

using namespace g500;
using namespace g500::graph;
using g500::testing::EngineKind;
using g500::testing::expect_matches_oracle;
using g500::testing::GraphCase;
using g500::testing::standard_graph_cases;

// --------------------------------------------------------------------------
// Main oracle sweep: every standard graph x rank count x config variant.
// --------------------------------------------------------------------------

struct ConfigCase {
  std::string name;
  core::SsspConfig config;
};

std::vector<ConfigCase> config_cases() {
  std::vector<ConfigCase> cases;
  cases.push_back({"default", core::SsspConfig{}});
  cases.push_back({"plain", core::SsspConfig::plain()});
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.coalesce = true;
    cases.push_back({"coalesce_only", c});
  }
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.hub_cache = true;
    cases.push_back({"hub_only", c});
  }
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.local_fusion = true;
    cases.push_back({"fusion_only", c});
  }
  {
    core::SsspConfig c;
    c.direction_opt = true;
    c.pull_threshold = 0.0;  // pull as aggressively as possible
    c.pull_bias = 0.0;
    cases.push_back({"pull_always", c});
  }
  {
    core::SsspConfig c;
    c.delta = 0.05;
    cases.push_back({"small_delta", c});
  }
  {
    core::SsspConfig c;
    c.delta = 0.9;
    cases.push_back({"large_delta", c});
  }
  {
    core::SsspConfig c;
    c.delta = 10.0;  // one bucket: degenerates to Bellman-Ford-ish
    cases.push_back({"huge_delta", c});
  }
  {
    core::SsspConfig c = core::SsspConfig::plain();
    c.compress = true;
    cases.push_back({"compress_only", c});
  }
  {
    core::SsspConfig c;
    c.hierarchical_group = 3;
    cases.push_back({"hierarchical", c});
  }
  return cases;
}

class DeltaSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    GraphRankConfig, DeltaSweep,
    ::testing::Combine(::testing::Range(0, 8),   // graph case index
                       ::testing::Values(1, 2, 4, 7),
                       ::testing::Range(0, 11)),  // config case index
    [](const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
      const auto graphs = standard_graph_cases();
      const auto configs = config_cases();
      return graphs[std::get<0>(info.param)].name + "_r" +
             std::to_string(std::get<1>(info.param)) + "_" +
             configs[std::get<2>(info.param)].name;
    });

TEST_P(DeltaSweep, MatchesDijkstraAndValidates) {
  const auto [graph_idx, ranks, config_idx] = GetParam();
  const GraphCase gc = standard_graph_cases()[graph_idx];
  const ConfigCase cc = config_cases()[config_idx];
  const EdgeList list = gc.make();
  expect_matches_oracle(list, ranks, {0, list.num_vertices / 2}, cc.config);
}

// --------------------------------------------------------------------------
// Targeted feature tests.
// --------------------------------------------------------------------------

TEST(DeltaStepping, AutoDeltaTracksAverageDegree) {
  KroneckerParams params;
  params.scale = 8;
  params.edgefactor = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    const double delta = core::auto_delta(g);
    const double avg_deg = static_cast<double>(g.num_directed_edges) /
                           static_cast<double>(g.num_vertices);
    EXPECT_NEAR(delta, 1.0 / avg_deg, 1e-12);
    EXPECT_GE(delta, 1.0 / 64.0);
    EXPECT_LE(delta, 1.0);
  });
}

TEST(DeltaStepping, DeterministicAcrossRepeatedRuns) {
  KroneckerParams params;
  params.scale = 9;
  simmpi::World world(4);
  std::vector<float> first;
  for (int round = 0; round < 3; ++round) {
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      const auto mine = core::delta_stepping(comm, g, 3);
      const auto whole = core::gather_result(comm, g, mine);
      if (comm.rank() == 0) {
        if (round == 0) {
          first = whole.dist;
        } else {
          ASSERT_EQ(whole.dist.size(), first.size());
          for (std::size_t v = 0; v < first.size(); ++v) {
            EXPECT_EQ(whole.dist[v], first[v]) << "run " << round;
          }
        }
      }
    });
  }
}

TEST(DeltaStepping, DistancesIdenticalAcrossRankCounts) {
  KroneckerParams params;
  params.scale = 8;
  std::vector<float> reference;
  for (int ranks : {1, 2, 4, 8}) {
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      const auto mine = core::delta_stepping(comm, g, 5);
      const auto whole = core::gather_result(comm, g, mine);
      if (comm.rank() == 0) {
        if (reference.empty()) {
          reference = whole.dist;
        } else {
          for (std::size_t v = 0; v < reference.size(); ++v) {
            EXPECT_EQ(whole.dist[v], reference[v])
                << "ranks " << ranks << " vertex " << v;
          }
        }
      }
    });
  }
}

TEST(DeltaStepping, PullModeActuallyEngagesOnDenseFrontiers) {
  // A complete-ish graph with pull forced on must record pull rounds.
  const EdgeList dense = complete_graph(96, 31);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(dense, comm.rank(), comm.size()),
        dense.num_vertices);
    core::SsspConfig c;
    c.pull_threshold = 0.0;
    c.pull_bias = 0.0;
    core::SsspStats stats;
    const auto mine = core::delta_stepping(comm, g, 0, c, &stats);
    EXPECT_GT(stats.pull_rounds, 0u);
    const auto verdict = core::validate_sssp(comm, g, 0, mine);
    EXPECT_TRUE(verdict.ok);
  });
}

TEST(DeltaStepping, HubCacheFiltersTrafficOnStarGraph) {
  const EdgeList star = star_graph(256, 33);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    BuildOptions opts;
    opts.hub_count = 4;
    const DistGraph g = build_distributed(
        comm, slice_for_rank(star, comm.rank(), comm.size()),
        star.num_vertices, opts);
    core::SsspConfig with = core::SsspConfig::plain();
    with.hub_cache = true;
    core::SsspStats stats;
    // Root at a leaf: every other leaf relaxes toward the center.
    const auto mine = core::delta_stepping(comm, g, 5, with, &stats);
    const auto filtered = comm.allreduce_sum(stats.filtered_hub);
    EXPECT_GT(filtered, 0u);
    EXPECT_TRUE(core::validate_sssp(comm, g, 5, mine).ok);
  });
}

TEST(DeltaStepping, LocalFusionAvoidsSelfMessages) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::SsspConfig fused = core::SsspConfig::plain();
    fused.local_fusion = true;
    core::SsspStats stats;
    (void)core::delta_stepping(comm, g, 1, fused, &stats);
    EXPECT_GT(comm.allreduce_sum(stats.fused_local), 0u);
  });
}

TEST(DeltaStepping, CoalescingDropsDuplicateCandidates) {
  // Kronecker graphs have many parallel paths into hubs; a round's worth of
  // candidates per target collapses to one.
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 16;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::SsspConfig c = core::SsspConfig::plain();
    c.coalesce = true;
    core::SsspStats stats;
    (void)core::delta_stepping(comm, g, 1, c, &stats);
    EXPECT_GT(comm.allreduce_sum(stats.filtered_coalesce), 0u);
  });
}

TEST(DeltaStepping, StatsBucketsAgreeAcrossRanks) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(4);
  const auto counts = world.run_collect<std::uint64_t>(
      [&](simmpi::Comm& comm) {
        const DistGraph g = build_kronecker(comm, params);
        core::SsspStats stats;
        (void)core::delta_stepping(comm, g, 2, core::SsspConfig{}, &stats);
        return stats.buckets_processed;
      });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(counts[r], counts[0]);
}

// --------------------------------------------------------------------------
// Edge cases.
// --------------------------------------------------------------------------

TEST(DeltaStepping, BucketTraceRecordsEveryBucket) {
  KroneckerParams params;
  params.scale = 9;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::SsspConfig config;
    config.collect_bucket_trace = true;
    core::SsspStats stats;
    (void)core::delta_stepping(comm, g, 1, config, &stats);
    ASSERT_EQ(stats.bucket_trace.size(), stats.buckets_processed);
    std::uint64_t rounds = 0;
    std::uint64_t prev_bucket = 0;
    for (std::size_t i = 0; i < stats.bucket_trace.size(); ++i) {
      const auto& row = stats.bucket_trace[i];
      rounds += row.light_rounds;
      if (i > 0) EXPECT_GT(row.bucket, prev_bucket);  // strictly ascending
      prev_bucket = row.bucket;
      EXPECT_GE(row.seconds, 0.0);
    }
    EXPECT_EQ(rounds, stats.light_iterations);
    // Off by default.
    core::SsspStats quiet;
    (void)core::delta_stepping(comm, g, 1, core::SsspConfig{}, &quiet);
    EXPECT_TRUE(quiet.bucket_trace.empty());
  });
}

TEST(DeltaStepping, MultiSourceEqualsMinOverSingleSources) {
  const EdgeList list = grid_graph(12, 12, 51);
  const std::vector<VertexId> roots = {0, 77, 143};
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    const auto mine = core::delta_stepping_multi(comm, g, roots);
    const auto whole = core::gather_result(comm, g, mine);
    // Oracle: element-wise min over single-source Dijkstras.
    std::vector<float> want(list.num_vertices, kInfDistance);
    for (const auto root : roots) {
      const auto single = core::dijkstra(list, root);
      for (VertexId v = 0; v < list.num_vertices; ++v) {
        want[v] = std::min(want[v], single.dist[v]);
      }
    }
    for (VertexId v = 0; v < list.num_vertices; ++v) {
      EXPECT_FLOAT_EQ(whole.dist[v], want[v]) << "vertex " << v;
    }
    // Every root anchors itself.
    for (const auto root : roots) {
      EXPECT_EQ(whole.parent[root], root);
      EXPECT_EQ(whole.dist[root], 0.0f);
    }
  });
}

TEST(DeltaStepping, MultiSourceOracleAcrossAllGraphShapes) {
  // Batched nearest-root distances must equal the per-root Dijkstra
  // minimum on every standard graph shape, including when some roots are
  // isolated vertices appended past the generated edges.
  for (const auto& gcase : g500::testing::standard_graph_cases()) {
    EdgeList list = gcase.make();
    const VertexId isolated_a = list.num_vertices;
    const VertexId isolated_b = list.num_vertices + 1;
    list.num_vertices += 2;  // two isolated vertices, no edges touch them
    const std::vector<VertexId> roots = {0, list.num_vertices / 3,
                                         isolated_a, isolated_b};
    simmpi::World world(3);
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_distributed(
          comm, slice_for_rank(list, comm.rank(), comm.size()),
          list.num_vertices);
      const auto mine = core::delta_stepping_multi(comm, g, roots);
      const auto whole = core::gather_result(comm, g, mine);
      std::vector<float> want(list.num_vertices, kInfDistance);
      for (const auto root : roots) {
        const auto single = core::dijkstra(list, root);
        for (VertexId v = 0; v < list.num_vertices; ++v) {
          want[v] = std::min(want[v], single.dist[v]);
        }
      }
      ASSERT_EQ(whole.dist.size(), want.size()) << gcase.name;
      for (VertexId v = 0; v < list.num_vertices; ++v) {
        EXPECT_FLOAT_EQ(whole.dist[v], want[v])
            << gcase.name << " vertex " << v;
      }
      // Isolated roots reach only themselves but still anchor there.
      EXPECT_EQ(whole.dist[isolated_a], 0.0f) << gcase.name;
      EXPECT_EQ(whole.parent[isolated_b], isolated_b) << gcase.name;
    });
  }
}

TEST(DeltaStepping, MultiSourceRejectsEmptyAndBadRoots) {
  const EdgeList list = path_graph(8);
  simmpi::World world(2);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 const DistGraph g = build_distributed(
                     comm, slice_for_rank(list, comm.rank(), comm.size()), 8);
                 (void)core::delta_stepping_multi(comm, g, {});
               }),
               std::invalid_argument);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 const DistGraph g = build_distributed(
                     comm, slice_for_rank(list, comm.rank(), comm.size()), 8);
                 (void)core::delta_stepping_multi(comm, g, {1, 99});
               }),
               std::out_of_range);
}

TEST(DeltaStepping, RootOnlyGraph) {
  EdgeList isolated;
  isolated.num_vertices = 5;  // no edges at all
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(comm, isolated, 5);
    const auto mine = core::delta_stepping(comm, g, 2);
    const auto whole = core::gather_result(comm, g, mine);
    EXPECT_FLOAT_EQ(whole.dist[2], 0.0f);
    for (VertexId v = 0; v < 5; ++v) {
      if (v != 2) EXPECT_EQ(whole.dist[v], kInfDistance);
    }
    EXPECT_TRUE(core::validate_sssp(comm, g, 2, mine).ok);
  });
}

TEST(DeltaStepping, DisconnectedComponents) {
  // Two separate paths: 0-1-2 and 3-4-5.
  EdgeList g;
  g.num_vertices = 6;
  g.edges = {{0, 1, 0.5f}, {1, 2, 0.5f}, {3, 4, 0.5f}, {4, 5, 0.5f}};
  expect_matches_oracle(g, 3, {0, 4});
}

TEST(DeltaStepping, MoreRanksThanVertices) {
  EdgeList tiny;
  tiny.num_vertices = 3;
  tiny.edges = {{0, 1, 0.4f}, {1, 2, 0.4f}};
  expect_matches_oracle(tiny, 8, {0, 1, 2});
}

TEST(DeltaStepping, TinyWeightsNearZero) {
  EdgeList g;
  g.num_vertices = 4;
  g.edges = {{0, 1, 1e-9f}, {1, 2, 1e-9f}, {2, 3, 1e-9f}};
  core::SsspConfig c;
  c.delta = 0.5;
  expect_matches_oracle(g, 2, {0}, c);
}

TEST(DeltaStepping, RootOutOfRangeThrows) {
  EdgeList g = path_graph(4);
  simmpi::World world(2);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 const DistGraph dg = build_distributed(
                     comm, slice_for_rank(g, comm.rank(), comm.size()), 4);
                 (void)core::delta_stepping(comm, dg, 99);
               }),
               std::out_of_range);
}

TEST(DeltaStepping, MaxBucketsGuardFires) {
  const EdgeList g = path_graph(256, 41);
  simmpi::World world(2);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 const DistGraph dg = build_distributed(
                     comm, slice_for_rank(g, comm.rank(), comm.size()), 256);
                 core::SsspConfig c;
                 c.delta = 0.001;  // a path forces many buckets
                 c.max_buckets = 3;
                 (void)core::delta_stepping(comm, dg, 0, c);
               }),
               std::runtime_error);
}

TEST(DeltaStepping, SelfLoopAtRootIsHarmless) {
  EdgeList g;
  g.num_vertices = 2;
  g.edges = {{0, 0, 0.1f}, {0, 1, 0.5f}};
  expect_matches_oracle(g, 2, {0});
}

TEST(DeltaStepping, CompressionHalvesRequestBytes) {
  KroneckerParams params;
  params.scale = 10;
  auto solve_bytes = [&](bool compress) {
    simmpi::World world(4);
    std::uint64_t bytes = 0;
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      core::SsspConfig c = core::SsspConfig::plain();
      c.compress = compress;
      const std::uint64_t before =
          comm.allreduce_sum(comm.stats().alltoallv.bytes);
      const auto mine = core::delta_stepping(comm, g, 1, c);
      const std::uint64_t after =
          comm.allreduce_sum(comm.stats().alltoallv.bytes);
      EXPECT_TRUE(core::validate_sssp(comm, g, 1, mine).ok);
      if (comm.rank() == 0) bytes = after - before;
    });
    return bytes;
  };
  const auto wide = solve_bytes(false);
  const auto packed = solve_bytes(true);
  // sizeof(PackedRelaxRequest)=12 vs sizeof(RelaxRequest)=24: exactly half.
  EXPECT_EQ(packed * 2, wide);
}

TEST(DeltaStepping, WithoutPullIndexDirectionOptFallsBackToPush) {
  KroneckerParams params;
  params.scale = 7;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    BuildOptions opts;
    opts.build_pull_index = false;
    const DistGraph g = build_kronecker(comm, params, opts);
    core::SsspConfig c;
    c.pull_threshold = 0.0;
    c.pull_bias = 0.0;
    core::SsspStats stats;
    const auto mine = core::delta_stepping(comm, g, 0, c, &stats);
    EXPECT_EQ(stats.pull_rounds, 0u);
    EXPECT_TRUE(core::validate_sssp(comm, g, 0, mine).ok);
  });
}

}  // namespace
