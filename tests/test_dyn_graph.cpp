// MutableGraph semantics: staged batches against a host-side reference
// edge map applying the documented merge rules, version agreement,
// self-loop/duplicate handling, and compaction equivalence.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>
#include <utility>
#include <vector>

#include "dyn/mutable_graph.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"
#include "util/random.hpp"

namespace {

using namespace g500;
using namespace g500::graph;
using dyn::EdgeUpdate;
using dyn::MutableGraph;
using dyn::UpdateOp;

using EdgeTuple = std::tuple<VertexId, VertexId, Weight>;

/// Host-side reference: an undirected weighted edge map applying the same
/// batch-merge rule the MutableGraph documents (kDelete > kSet > kInsert,
/// min weight within the winning class; insert min-merges, set upserts).
class RefGraph {
 public:
  explicit RefGraph(const EdgeList& input) {
    for (const auto& e : input.edges) {
      if (e.src == e.dst) continue;
      const auto k = key(e.src, e.dst);
      const auto it = edges_.find(k);
      if (it == edges_.end()) {
        edges_.emplace(k, e.weight);
      } else {
        it->second = std::min(it->second, e.weight);
      }
    }
  }

  void apply(const std::vector<EdgeUpdate>& batch) {
    std::map<std::pair<VertexId, VertexId>, EdgeUpdate> merged;
    for (const auto& up : batch) {
      if (up.u == up.v) continue;
      const auto k = key(up.u, up.v);
      const auto it = merged.find(k);
      if (it == merged.end()) {
        merged.emplace(k, up);
        continue;
      }
      EdgeUpdate& win = it->second;
      if (up.op > win.op || (up.op == win.op && up.weight < win.weight)) {
        win = up;
      }
    }
    for (const auto& [k, up] : merged) {
      const auto it = edges_.find(k);
      switch (up.op) {
        case UpdateOp::kInsert:
          if (it == edges_.end()) {
            edges_.emplace(k, up.weight);
          } else {
            it->second = std::min(it->second, up.weight);
          }
          break;
        case UpdateOp::kSet:
          edges_[k] = up.weight;
          break;
        case UpdateOp::kDelete:
          if (it != edges_.end()) edges_.erase(it);
          break;
      }
    }
  }

  /// Both directed copies, sorted — the shape a gathered view must match.
  [[nodiscard]] std::vector<EdgeTuple> directed() const {
    std::vector<EdgeTuple> out;
    for (const auto& [k, w] : edges_) {
      out.emplace_back(k.first, k.second, w);
      out.emplace_back(k.second, k.first, w);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }

 private:
  static std::pair<VertexId, VertexId> key(VertexId u, VertexId v) {
    return {std::min(u, v), std::max(u, v)};
  }
  std::map<std::pair<VertexId, VertexId>, Weight> edges_;
};

/// Every directed edge of the committed view, gathered to all ranks.
std::vector<EdgeTuple> gather_view_edges(simmpi::Comm& comm,
                                         const DistGraph& g) {
  std::vector<WireEdge> mine;
  const VertexId my_begin = g.part.begin(comm.rank());
  for (LocalId u = 0; u < static_cast<LocalId>(g.part.count(comm.rank()));
       ++u) {
    for (std::uint64_t e = g.csr.edges_begin(u); e < g.csr.edges_end(u); ++e) {
      mine.push_back(WireEdge{my_begin + u, g.csr.dst(e), g.csr.weight(e)});
    }
  }
  const auto all = comm.allgatherv(mine);
  std::vector<EdgeTuple> out;
  out.reserve(all.size());
  for (const auto& e : all) out.emplace_back(e.src, e.dst, e.weight);
  std::sort(out.begin(), out.end());
  return out;
}

/// Deterministic test graph: a ring plus chords, with self-loops and
/// duplicates the builder must clean.
EdgeList test_graph(VertexId n) {
  EdgeList input;
  input.num_vertices = n;
  util::SplitMix64 rng(0xD11A);
  for (VertexId v = 0; v < n; ++v) {
    input.edges.push_back(
        Edge{v, (v + 1) % n, static_cast<Weight>(rng.next_double())});
  }
  for (int i = 0; i < 24; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    input.edges.push_back(Edge{u, v, static_cast<Weight>(rng.next_double())});
  }
  input.edges.push_back(Edge{3, 3, 0.5f});     // self-loop
  input.edges.push_back(input.edges.front());  // duplicate
  return input;
}

/// Random batch mixing inserts, deletes, weight sets, duplicates and
/// self-loops; identical on every rank for a fixed (seed, existing set).
std::vector<EdgeUpdate> random_batch(std::uint64_t seed, VertexId n,
                                     const std::vector<EdgeTuple>& existing) {
  util::SplitMix64 rng(seed);
  std::vector<EdgeUpdate> batch;
  const int count = 6 + static_cast<int>(rng.next_below(6));
  for (int i = 0; i < count; ++i) {
    const auto roll = rng.next_below(10);
    if (roll < 4 || existing.empty()) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      const auto v = static_cast<VertexId>(rng.next_below(n));  // may self-loop
      batch.push_back(EdgeUpdate{u, v, static_cast<Weight>(rng.next_double()),
                                 UpdateOp::kInsert});
    } else {
      const auto& [u, v, w] = existing[rng.next_below(existing.size())];
      if (roll < 7) {
        batch.push_back(EdgeUpdate{u, v, 0.0f, UpdateOp::kDelete});
      } else {
        batch.push_back(EdgeUpdate{
            u, v, static_cast<Weight>(rng.next_double() * 2), UpdateOp::kSet});
      }
    }
  }
  if (!batch.empty()) batch.push_back(batch.front());  // duplicate op
  return batch;
}

TEST(MutableGraph, CommittedViewMatchesReferenceAcrossRanks) {
  const auto input = test_graph(64);
  for (const int P : {1, 2, 3, 5}) {
    simmpi::World world(P);
    world.run([&](simmpi::Comm& comm) {
      MutableGraph mg(comm, build_distributed(
                                comm, slice_for_rank(input, comm.rank(), P),
                                input.num_vertices));
      RefGraph ref(input);
      ASSERT_EQ(gather_view_edges(comm, mg.view()), ref.directed())
          << "adopted base diverges, P=" << P;

      for (int round = 0; round < 8; ++round) {
        const auto existing = gather_view_edges(comm, mg.view());
        const auto batch = random_batch(0xBEE5 + round, 64, existing);
        // Spread the staging over the ranks; the committed outcome must
        // not depend on who staged what.
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (static_cast<int>(i % static_cast<std::size_t>(P)) ==
              comm.rank()) {
            mg.stage(batch[i]);
          }
        }
        const auto summary = mg.commit_batch();
        ref.apply(batch);
        EXPECT_EQ(summary.graph_version,
                  static_cast<std::uint64_t>(round + 1));
        ASSERT_EQ(gather_view_edges(comm, mg.view()), ref.directed())
            << "view diverges from reference, P=" << P << " round=" << round;
        EXPECT_EQ(mg.view().num_directed_edges, 2 * ref.num_edges());
      }
    });
  }
}

TEST(MutableGraph, InsertKeepsMinimumAndSetOverwrites) {
  const auto input = test_graph(32);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    MutableGraph mg(comm, build_distributed(
                              comm, slice_for_rank(input, comm.rank(), 2),
                              input.num_vertices));
    // A fresh edge inserted on both ranks at different weights: min wins.
    if (comm.rank() == 0) mg.stage_insert(10, 20, 0.75f);
    if (comm.rank() == 1) mg.stage_insert(20, 10, 0.25f);
    auto summary = mg.commit_batch();
    EXPECT_EQ(summary.inserted, 1u);
    ASSERT_EQ(summary.applied.size(), 1u);
    EXPECT_EQ(summary.applied[0].new_weight, 0.25f);
    EXPECT_EQ(summary.applied[0].had_old, 0);

    // Inserting over an existing edge min-merges; kSet overwrites even
    // upward (the only way to increase a weight).
    if (comm.rank() == 0) mg.stage_insert(10, 20, 0.9f);
    summary = mg.commit_batch();
    EXPECT_TRUE(summary.applied.empty()) << "insert above current is a no-op";
    if (comm.rank() == 1) mg.stage_set(10, 20, 0.9f);
    summary = mg.commit_batch();
    ASSERT_EQ(summary.applied.size(), 1u);
    EXPECT_EQ(summary.reweighted, 1u);
    EXPECT_EQ(summary.applied[0].old_weight, 0.25f);
    EXPECT_EQ(summary.applied[0].new_weight, 0.9f);
    // The increased copies surface as suspects on the owning ranks.
    const auto suspect_total = comm.allreduce_sum(
        static_cast<std::uint64_t>(summary.suspects.size()));
    EXPECT_EQ(suspect_total, 2u);

    // Deleting removes both directions and reports once.
    if (comm.rank() == 0) mg.stage_delete(20, 10);
    summary = mg.commit_batch();
    EXPECT_EQ(summary.removed, 1u);
    ASSERT_EQ(summary.applied.size(), 1u);
    EXPECT_EQ(summary.applied[0].removed, 1);
    // Deleting a missing edge is a no-op, but the version still advances.
    const auto version_before = mg.version();
    if (comm.rank() == 0) mg.stage_delete(20, 10);
    summary = mg.commit_batch();
    EXPECT_TRUE(summary.applied.empty());
    EXPECT_EQ(summary.graph_version, version_before + 1);
  });
}

TEST(MutableGraph, SelfLoopsDroppedAndRangeChecked) {
  const auto input = test_graph(16);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    MutableGraph mg(comm, build_distributed(
                              comm, slice_for_rank(input, comm.rank(), 2),
                              input.num_vertices));
    EXPECT_THROW(mg.stage_insert(3, 16, 0.5f), std::out_of_range);
    if (comm.rank() == 0) mg.stage_insert(5, 5, 0.5f);
    const auto summary = mg.commit_batch();
    EXPECT_EQ(summary.self_loops_dropped, 1u);
    EXPECT_TRUE(summary.applied.empty());
  });
}

TEST(MutableGraph, CompactionPreservesEdgesAndRefreshesHubs) {
  const auto input = test_graph(64);
  for (const int P : {1, 3}) {
    simmpi::World world(P);
    world.run([&](simmpi::Comm& comm) {
      MutableGraph::Config cfg;
      cfg.compact_every = 2;
      MutableGraph mg(comm,
                      build_distributed(
                          comm, slice_for_rank(input, comm.rank(), P),
                          input.num_vertices),
                      cfg);
      RefGraph ref(input);
      std::uint64_t version = 0;
      for (int round = 0; round < 4; ++round) {
        const auto existing = gather_view_edges(comm, mg.view());
        const auto batch = random_batch(0xC0DE + round, 64, existing);
        for (std::size_t i = 0; i < batch.size(); ++i) {
          if (static_cast<int>(i % static_cast<std::size_t>(P)) ==
              comm.rank()) {
            mg.stage(batch[i]);
          }
        }
        const auto summary = mg.commit_batch();
        ref.apply(batch);
        version = summary.graph_version;
        EXPECT_EQ(summary.compacted, round % 2 == 1);
        ASSERT_EQ(gather_view_edges(comm, mg.view()), ref.directed())
            << "P=" << P << " round=" << round
            << (summary.compacted ? " (compacted)" : "");
      }
      EXPECT_EQ(mg.stats().compactions, 2u);
      EXPECT_EQ(mg.version(), version);
      EXPECT_EQ(mg.overlay_edges(), 0u) << "compaction clears the overlay";
      EXPECT_FALSE(mg.view().hubs.empty());
    });
  }
}

}  // namespace
