// Tests for the Graph 500 benchmark protocol runner.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "core/delta_stepping.hpp"
#include "core/runner.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

TEST(SampleRoots, RootsAreDistinctEligibleAndDeterministic) {
  KroneckerParams params;
  params.scale = 9;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    const auto roots = core::sample_roots(comm, g, 16, 7);
    ASSERT_EQ(roots.size(), 16u);
    std::set<VertexId> unique(roots.begin(), roots.end());
    EXPECT_EQ(unique.size(), 16u);
    // Re-sampling with the same seed reproduces; another seed differs.
    EXPECT_EQ(core::sample_roots(comm, g, 16, 7), roots);
    EXPECT_NE(core::sample_roots(comm, g, 16, 8), roots);
  });
}

TEST(SampleRoots, SameOnEveryRank) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(4);
  const auto lists = world.run_collect<std::vector<VertexId>>(
      [&](simmpi::Comm& comm) {
        const DistGraph g = build_kronecker(comm, params);
        return core::sample_roots(comm, g, 8, 3);
      });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(lists[r], lists[0]);
}

TEST(SampleRoots, SkipsIsolatedVertices) {
  // Star graph: only vertex 0..n-1 touched by edges; make some isolated.
  EdgeList list = star_graph(8);
  list.num_vertices = 64;  // vertices 8..63 are isolated
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()), 64);
    const auto roots = core::sample_roots(comm, g, 8, 5);
    ASSERT_EQ(roots.size(), 8u);
    for (const auto r : roots) EXPECT_LT(r, 8u);
  });
}

TEST(SampleRoots, CapsAtEligibleCount) {
  EdgeList list;
  list.num_vertices = 16;
  list.edges = {{0, 1, 0.5f}};  // only two eligible vertices
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(comm, list, 16);
    const auto roots = core::sample_roots(comm, g, 10, 1);
    EXPECT_EQ(roots.size(), 2u);
  });
}

TEST(SampleRoots, EmptyGraphYieldsNoRoots) {
  // The builder refuses zero-vertex graphs, but callers can still hold an
  // empty DistGraph (default-constructed, or drained by a filter); sampling
  // must return nothing instead of probing vertex 0 of nothing.
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g;
    EXPECT_TRUE(core::sample_roots(comm, g, 8, 1).empty());
  });
}

TEST(RunBenchmark, EmptyGraphProducesWellFormedEmptyReport) {
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g;
    core::RunnerOptions opts;
    opts.num_roots = 8;
    const auto report = core::run_benchmark(comm, g, opts);
    EXPECT_TRUE(report.runs.empty());
    EXPECT_TRUE(report.all_valid);
    EXPECT_TRUE(std::isfinite(report.harmonic_mean_teps));
    EXPECT_TRUE(std::isfinite(report.mean_seconds));
    EXPECT_EQ(report.harmonic_mean_teps, 0.0);
    EXPECT_EQ(report.mean_seconds, 0.0);
    if (comm.rank() == 0) {
      std::ostringstream out;
      report.print(out);  // must not choke on zero runs
      EXPECT_NE(out.str().find("all valid"), std::string::npos);
    }
  });
}

TEST(RunBenchmark, AllIsolatedGraphProducesWellFormedEmptyReport) {
  EdgeList list;
  list.num_vertices = 16;  // vertices exist, none has an edge
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(comm, list, 16);
    core::RunnerOptions opts;
    opts.num_roots = 4;
    const auto report = core::run_benchmark(comm, g, opts);
    EXPECT_TRUE(report.runs.empty());
    EXPECT_TRUE(report.all_valid);
    EXPECT_TRUE(std::isfinite(report.harmonic_mean_teps));
    EXPECT_EQ(report.min_seconds, 0.0);
    EXPECT_EQ(report.max_seconds, 0.0);
  });
}

TEST(RunBenchmark, ProtocolProducesValidatedReport) {
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 8;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::RunnerOptions opts;
    opts.num_roots = 4;
    const auto report = core::run_benchmark(comm, g, opts);
    EXPECT_TRUE(report.all_valid);
    ASSERT_EQ(report.runs.size(), 4u);
    EXPECT_GT(report.harmonic_mean_teps, 0.0);
    EXPECT_GT(report.mean_seconds, 0.0);
    EXPECT_LE(report.min_seconds, report.max_seconds);
    EXPECT_EQ(report.num_input_edges, params.num_edges());
    EXPECT_EQ(report.num_ranks, 4);
    for (const auto& run : report.runs) {
      EXPECT_TRUE(run.valid);
      EXPECT_GT(run.teps, 0.0);
      EXPECT_GT(run.reachable, 0u);
    }
    // Harmonic mean lies within [min, max] of per-root TEPS.
    double lo = report.runs[0].teps, hi = report.runs[0].teps;
    for (const auto& run : report.runs) {
      lo = std::min(lo, run.teps);
      hi = std::max(hi, run.teps);
    }
    EXPECT_GE(report.harmonic_mean_teps, lo * 0.999);
    EXPECT_LE(report.harmonic_mean_teps, hi * 1.001);
  });
}

TEST(RunBenchmark, BellmanFordPathWorks) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::RunnerOptions opts;
    opts.num_roots = 2;
    opts.algorithm = core::Algorithm::kBellmanFord;
    const auto report = core::run_benchmark(comm, g, opts);
    EXPECT_TRUE(report.all_valid);
    EXPECT_EQ(report.runs.size(), 2u);
  });
}

TEST(RunBenchmark, ReportPrintsSummary) {
  KroneckerParams params;
  params.scale = 7;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::RunnerOptions opts;
    opts.num_roots = 1;
    const auto report = core::run_benchmark(comm, g, opts);
    if (comm.rank() == 0) {
      std::ostringstream out;
      report.print(out);
      EXPECT_NE(out.str().find("harmonic mean TEPS"), std::string::npos);
      EXPECT_NE(out.str().find("all valid"), std::string::npos);
    }
  });
}

TEST(GlobalStats, SumsTrafficAndAveragesRounds) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::SsspStats local;
    (void)core::delta_stepping(comm, g, 1, core::SsspConfig{}, &local);
    const auto total = core::global_stats(comm, local);
    // Round-type counters are global (identical per rank), so the
    // aggregate must equal the local value.
    EXPECT_EQ(total.buckets_processed, local.buckets_processed);
    EXPECT_EQ(total.light_iterations, local.light_iterations);
    // Traffic counters sum over ranks.
    EXPECT_GE(total.relax_generated, local.relax_generated);
    // Everything sent is received.
    EXPECT_EQ(total.relax_sent, total.relax_received);
  });
}

}  // namespace
