// End-to-end smoke test: build a Kronecker graph on 4 simulated ranks, run
// the fully-optimized engine on a few roots, validate officially and
// compare against the sequential Dijkstra oracle.
#include <gtest/gtest.h>

#include "core/delta_stepping.hpp"
#include "core/dijkstra.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;

TEST(Smoke, KroneckerSsspMatchesDijkstraAndValidates) {
  graph::KroneckerParams params;
  params.scale = 10;
  params.edgefactor = 8;

  const graph::EdgeList whole = graph::kronecker_graph(params);

  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    const auto roots = core::sample_roots(comm, g, 4, 7);
    ASSERT_FALSE(roots.empty());
    for (const auto root : roots) {
      const core::SsspResult mine = core::delta_stepping(comm, g, root);
      const auto report = core::validate_sssp(comm, g, root, mine);
      EXPECT_TRUE(report.ok) << (report.errors.empty()
                                     ? std::string("unknown")
                                     : report.errors.front());
      const core::SequentialResult got = core::gather_result(comm, g, mine);
      const core::SequentialResult want = core::dijkstra(whole, root);
      ASSERT_EQ(got.dist.size(), want.dist.size());
      for (std::size_t v = 0; v < want.dist.size(); ++v) {
        EXPECT_FLOAT_EQ(got.dist[v], want.dist[v]) << "vertex " << v;
      }
    }
  });
}

}  // namespace
