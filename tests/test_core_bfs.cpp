// Correctness tests for the direction-optimizing distributed BFS.
#include <gtest/gtest.h>

#include <queue>

#include "core/bfs.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// Sequential reference: hop levels by textbook BFS.
std::vector<std::uint32_t> reference_levels(const EdgeList& list,
                                            VertexId root) {
  std::vector<std::vector<VertexId>> adj(list.num_vertices);
  for (const auto& e : list.edges) {
    if (e.src == e.dst) continue;
    adj[e.src].push_back(e.dst);
    adj[e.dst].push_back(e.src);
  }
  std::vector<std::uint32_t> level(list.num_vertices,
                                   core::BfsResult::kNoLevel);
  std::queue<VertexId> queue;
  level[root] = 0;
  queue.push(root);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    for (const VertexId v : adj[u]) {
      if (level[v] == core::BfsResult::kNoLevel) {
        level[v] = level[u] + 1;
        queue.push(v);
      }
    }
  }
  return level;
}

/// Run distributed BFS and compare levels against the reference.
void expect_bfs_matches(const EdgeList& list, int ranks,
                        const std::vector<VertexId>& roots,
                        const core::BfsConfig& config = {}) {
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()),
        list.num_vertices);
    for (const auto root : roots) {
      const core::BfsResult mine = core::bfs(comm, g, root, config);
      const auto verdict = core::validate_bfs(comm, g, root, mine);
      EXPECT_TRUE(verdict.ok)
          << (verdict.errors.empty() ? "?" : verdict.errors.front());
      const auto levels = comm.allgatherv(mine.level);
      const auto want = reference_levels(list, root);
      ASSERT_EQ(levels.size(), want.size());
      for (std::size_t v = 0; v < want.size(); ++v) {
        EXPECT_EQ(levels[v], want[v]) << "root " << root << " vertex " << v;
      }
    }
  });
}

class BfsSweep : public ::testing::TestWithParam<std::tuple<int, bool>> {};

INSTANTIATE_TEST_SUITE_P(RanksAndDirection, BfsSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Bool()));

TEST_P(BfsSweep, KroneckerLevelsMatchReference) {
  const auto [ranks, direction] = GetParam();
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 8;
  core::BfsConfig config;
  config.direction_opt = direction;
  expect_bfs_matches(kronecker_graph(params), ranks, {0, 100}, config);
}

TEST_P(BfsSweep, GridLevelsMatchReference) {
  const auto [ranks, direction] = GetParam();
  core::BfsConfig config;
  config.direction_opt = direction;
  expect_bfs_matches(grid_graph(12, 17, 3), ranks, {0, 100}, config);
}

TEST(Bfs, StarAndPathShapes) {
  expect_bfs_matches(star_graph(64), 4, {0, 5});
  expect_bfs_matches(path_graph(64), 4, {0, 31, 63});
}

TEST(Bfs, DisconnectedComponentsStayUnreached) {
  EdgeList list;
  list.num_vertices = 6;
  list.edges = {{0, 1, 0.5f}, {3, 4, 0.5f}};
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(comm, list, 6);
    const auto mine = core::bfs(comm, g, 0);
    const auto verdict = core::validate_bfs(comm, g, 0, mine);
    EXPECT_TRUE(verdict.ok);
    EXPECT_EQ(verdict.reachable, 2u);
    EXPECT_EQ(verdict.max_level, 1u);
  });
}

TEST(Bfs, DirectionOptimizationActuallyGoesBottomUp) {
  // Dense power-law graph: the Beamer heuristic must fire.
  KroneckerParams params;
  params.scale = 10;
  params.edgefactor = 32;
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::BfsStats stats;
    const auto mine = core::bfs(comm, g, 1, core::BfsConfig{}, &stats);
    EXPECT_GT(stats.bottom_up_rounds, 0u);
    EXPECT_GT(stats.top_down_rounds, 0u);
    EXPECT_TRUE(core::validate_bfs(comm, g, 1, mine).ok);
  });
}

TEST(Bfs, TopDownOnlyWhenDisabled) {
  KroneckerParams params;
  params.scale = 9;
  params.edgefactor = 16;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::BfsConfig config;
    config.direction_opt = false;
    core::BfsStats stats;
    (void)core::bfs(comm, g, 1, config, &stats);
    EXPECT_EQ(stats.bottom_up_rounds, 0u);
    EXPECT_EQ(stats.rounds, stats.top_down_rounds);
  });
}

TEST(Bfs, BottomUpScansFewerEdgesOnDenseGraphs) {
  KroneckerParams params;
  params.scale = 10;
  params.edgefactor = 32;
  simmpi::World world(4);
  const auto scanned = world.run_collect<std::uint64_t>(
      [&](simmpi::Comm& comm) {
        const DistGraph g = build_kronecker(comm, params);
        core::BfsStats with;
        core::BfsStats without;
        core::BfsConfig off;
        off.direction_opt = false;
        (void)core::bfs(comm, g, 1, core::BfsConfig{}, &with);
        (void)core::bfs(comm, g, 1, off, &without);
        return comm.allreduce_sum(with.edges_scanned) <
                       comm.allreduce_sum(without.edges_scanned)
                   ? std::uint64_t{1}
                   : std::uint64_t{0};
      });
  EXPECT_EQ(scanned[0], 1u);
}

TEST(Bfs, ValidatorCatchesCorruptedLevels) {
  KroneckerParams params;
  params.scale = 8;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::BfsResult mine = core::bfs(comm, g, 1);
    if (comm.rank() == 0) {
      for (std::size_t v = 0; v < mine.level.size(); ++v) {
        if (mine.level[v] != core::BfsResult::kNoLevel &&
            mine.level[v] > 1) {
          mine.level[v] += 1;  // break the level structure
          break;
        }
      }
    }
    EXPECT_FALSE(core::validate_bfs(comm, g, 1, mine).ok);
  });
}

TEST(Bfs, ValidatorCatchesForgedParent) {
  // Path graph: vertex 3 is adjacent to exactly {2, 4}, so pointing its
  // parent at vertex 15 must trip the tree-edge check.
  const EdgeList list = path_graph(16);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_distributed(
        comm, slice_for_rank(list, comm.rank(), comm.size()), 16);
    core::BfsResult mine = core::bfs(comm, g, 0);
    if (comm.rank() == 0) mine.parent[3] = 15;
    EXPECT_FALSE(core::validate_bfs(comm, g, 0, mine).ok);
  });
}

TEST(Bfs, RootOutOfRangeThrows) {
  EdgeList list = path_graph(4);
  simmpi::World world(2);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 const DistGraph g = build_distributed(
                     comm, slice_for_rank(list, comm.rank(), comm.size()), 4);
                 (void)core::bfs(comm, g, 77);
               }),
               std::out_of_range);
}

TEST(Bfs, LevelsIdenticalAcrossRankCounts) {
  KroneckerParams params;
  params.scale = 9;
  std::vector<std::uint32_t> reference;
  for (int ranks : {1, 2, 4}) {
    simmpi::World world(ranks);
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      const auto mine = core::bfs(comm, g, 2);
      const auto levels = comm.allgatherv(mine.level);
      if (comm.rank() == 0) {
        if (reference.empty()) {
          reference = levels;
        } else {
          EXPECT_EQ(levels, reference) << "ranks " << ranks;
        }
      }
    });
  }
}

}  // namespace
