// Unit and property tests for the Graph 500 Kronecker generator.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "graph/kronecker.hpp"

namespace {

using namespace g500::graph;

TEST(Scramble, IsBijectiveExhaustivelyAtSmallScales) {
  for (int scale : {1, 2, 3, 5, 8, 12}) {
    std::set<VertexId> images;
    const VertexId n = VertexId{1} << scale;
    for (VertexId v = 0; v < n; ++v) {
      const VertexId s = scramble_vertex(v, scale, 2, 3);
      EXPECT_LT(s, n) << "scale " << scale;
      EXPECT_TRUE(images.insert(s).second)
          << "collision at scale " << scale << " v=" << v;
    }
    EXPECT_EQ(images.size(), n);
  }
}

TEST(Scramble, UnscrambleInverts) {
  for (int scale : {1, 2, 7, 13, 20, 31, 43}) {
    for (VertexId v : {VertexId{0}, VertexId{1}, VertexId{12345} %
                                                     (VertexId{1} << scale)}) {
      const VertexId s = scramble_vertex(v, scale, 2, 3);
      EXPECT_EQ(unscramble_vertex(s, scale, 2, 3), v)
          << "scale " << scale << " v " << v;
    }
  }
}

TEST(Scramble, DependsOnSeeds) {
  int moved = 0;
  for (VertexId v = 0; v < 256; ++v) {
    if (scramble_vertex(v, 8, 2, 3) != scramble_vertex(v, 8, 5, 7)) ++moved;
  }
  EXPECT_GT(moved, 200);
}

TEST(Kronecker, EdgeIsDeterministic) {
  KroneckerParams p;
  p.scale = 12;
  for (std::uint64_t i : {0ULL, 1ULL, 999ULL, 65535ULL}) {
    const Edge a = kronecker_edge(p, i);
    const Edge b = kronecker_edge(p, i);
    EXPECT_EQ(a, b);
  }
}

TEST(Kronecker, EndpointsInRange) {
  KroneckerParams p;
  p.scale = 10;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const Edge e = kronecker_edge(p, i);
    EXPECT_LT(e.src, p.num_vertices());
    EXPECT_LT(e.dst, p.num_vertices());
  }
}

TEST(Kronecker, WeightsAreInUnitIntervalAndPositive) {
  KroneckerParams p;
  p.scale = 10;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const Edge e = kronecker_edge(p, i);
    EXPECT_GT(e.weight, 0.0f);
    EXPECT_LT(e.weight, 1.0f);
  }
}

TEST(Kronecker, SlicesTileTheStream) {
  KroneckerParams p;
  p.scale = 8;
  p.edgefactor = 4;
  const auto whole = kronecker_slice(p, 0, p.num_edges());
  const auto first = kronecker_slice(p, 0, 100);
  const auto second = kronecker_slice(p, 100, p.num_edges());
  ASSERT_EQ(first.size() + second.size(), whole.size());
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], whole[i]);
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_EQ(second[i], whole[i + 100]);
  }
}

TEST(Kronecker, GraphHasDeclaredShape) {
  KroneckerParams p;
  p.scale = 9;
  p.edgefactor = 8;
  const EdgeList g = kronecker_graph(p);
  EXPECT_EQ(g.num_vertices, VertexId{512});
  EXPECT_EQ(g.num_edges(), 8u << 9);
}

TEST(Kronecker, DegreeDistributionIsSkewed) {
  // Power-law-ish: the max degree should far exceed the mean.
  KroneckerParams p;
  p.scale = 12;
  const EdgeList g = kronecker_graph(p);
  std::map<VertexId, std::uint64_t> degree;
  for (const auto& e : g.edges) {
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::uint64_t max_degree = 0;
  for (const auto& [v, d] : degree) max_degree = std::max(max_degree, d);
  const double mean = 2.0 * static_cast<double>(g.num_edges()) /
                      static_cast<double>(p.num_vertices());
  EXPECT_GT(static_cast<double>(max_degree), 10.0 * mean);
}

TEST(Kronecker, ScrambleSpreadsHubs) {
  // Without scrambling, low-id vertices dominate; the scramble must move
  // the heaviest vertex away from id 0 with overwhelming probability.
  KroneckerParams p;
  p.scale = 12;
  std::map<VertexId, std::uint64_t> degree;
  for (std::uint64_t i = 0; i < p.num_edges(); ++i) {
    const Edge e = kronecker_edge(p, i);
    ++degree[e.src];
  }
  VertexId heaviest = 0;
  std::uint64_t best = 0;
  for (const auto& [v, d] : degree) {
    if (d > best) {
      best = d;
      heaviest = v;
    }
  }
  EXPECT_NE(heaviest, VertexId{0});
}

TEST(Kronecker, DifferentSeedsDifferentGraphs) {
  KroneckerParams a;
  a.scale = 8;
  KroneckerParams b = a;
  b.seed1 = 77;
  int different = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    if (!(kronecker_edge(a, i) == kronecker_edge(b, i))) ++different;
  }
  EXPECT_GT(different, 90);
}

TEST(Kronecker, RejectsBadParameters) {
  KroneckerParams p;
  p.scale = 0;
  EXPECT_THROW((void)kronecker_edge(p, 0), std::invalid_argument);
  p.scale = 63;
  EXPECT_THROW((void)kronecker_edge(p, 0), std::invalid_argument);
  p.scale = 10;
  p.a = 0.9;
  p.b = 0.1;
  p.c = 0.1;  // a+b+c >= 1
  EXPECT_THROW((void)kronecker_edge(p, 0), std::invalid_argument);
}

TEST(Kronecker, SliceRangeChecked) {
  KroneckerParams p;
  p.scale = 8;
  EXPECT_THROW((void)kronecker_slice(p, 10, 5), std::out_of_range);
  EXPECT_THROW((void)kronecker_slice(p, 0, p.num_edges() + 1),
               std::out_of_range);
}

TEST(Kronecker, UnscrambledGeneratorConcentratesLowIds) {
  // Sanity check of the initiator math: with scramble off, quadrant A
  // dominance biases endpoints toward small ids.
  KroneckerParams p;
  p.scale = 12;
  p.scramble = false;
  std::uint64_t low = 0;
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const Edge e = kronecker_edge(p, i);
    if (e.src < p.num_vertices() / 4) ++low;
    ++total;
  }
  // Uniform endpoints would put ~25% in the low quarter; RMAT puts far more.
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(total), 0.45);
}

}  // namespace
