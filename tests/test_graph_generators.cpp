// Unit tests for the structured graph generators.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"

namespace {

using namespace g500::graph;

TEST(PathGraph, ShapeAndWeights) {
  const EdgeList g = path_graph(5);
  EXPECT_EQ(g.num_vertices, 5u);
  ASSERT_EQ(g.num_edges(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(g.edges[i].src, i);
    EXPECT_EQ(g.edges[i].dst, i + 1);
    EXPECT_GT(g.edges[i].weight, 0.0f);
    EXPECT_LT(g.edges[i].weight, 1.0f);
  }
}

TEST(PathGraph, SingleVertexHasNoEdges) {
  const EdgeList g = path_graph(1);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(PathGraph, DeterministicPerSeed) {
  const EdgeList a = path_graph(10, 5);
  const EdgeList b = path_graph(10, 5);
  const EdgeList c = path_graph(10, 6);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges[0].weight, c.edges[0].weight);
}

TEST(RingGraph, ClosesTheLoop) {
  const EdgeList g = ring_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.edges.back().src, 5u);
  EXPECT_EQ(g.edges.back().dst, 0u);
}

TEST(RingGraph, RejectsTiny) {
  EXPECT_THROW((void)ring_graph(2), std::invalid_argument);
}

TEST(StarGraph, CenterTouchesAllLeaves) {
  const EdgeList g = star_graph(9);
  EXPECT_EQ(g.num_edges(), 8u);
  std::set<VertexId> leaves;
  for (const auto& e : g.edges) {
    EXPECT_EQ(e.src, 0u);
    leaves.insert(e.dst);
  }
  EXPECT_EQ(leaves.size(), 8u);
}

TEST(GridGraph, EdgeCountMatchesFormula) {
  // rows x cols grid: rows*(cols-1) + cols*(rows-1) edges.
  const EdgeList g = grid_graph(4, 6);
  EXPECT_EQ(g.num_vertices, 24u);
  EXPECT_EQ(g.num_edges(), 4u * 5 + 6u * 3);
}

TEST(GridGraph, NeighboursDifferByOneStep) {
  const EdgeList g = grid_graph(3, 3);
  for (const auto& e : g.edges) {
    const auto diff = e.dst - e.src;
    EXPECT_TRUE(diff == 1 || diff == 3) << e.src << "->" << e.dst;
  }
}

TEST(GridGraph, DegenerateSingleRow) {
  const EdgeList g = grid_graph(1, 5);
  EXPECT_EQ(g.num_edges(), 4u);  // a path
}

TEST(CompleteGraph, AllPairsOnce) {
  const EdgeList g = complete_graph(5);
  EXPECT_EQ(g.num_edges(), 10u);
  std::set<std::pair<VertexId, VertexId>> pairs;
  for (const auto& e : g.edges) {
    EXPECT_LT(e.src, e.dst);
    EXPECT_TRUE(pairs.insert({e.src, e.dst}).second);
  }
}

TEST(CompleteGraph, RejectsHuge) {
  EXPECT_THROW((void)complete_graph(100000), std::invalid_argument);
}

TEST(RandomGraph, RespectsBounds) {
  const EdgeList g = random_graph(100, 500, 3);
  EXPECT_EQ(g.num_vertices, 100u);
  EXPECT_EQ(g.num_edges(), 500u);
  for (const auto& e : g.edges) {
    EXPECT_LT(e.src, 100u);
    EXPECT_LT(e.dst, 100u);
  }
}

TEST(RandomGraph, ContainsSelfLoopsEventually) {
  // With n=4 and many edges, self-loops are statistically certain; the
  // builder must be able to digest them.
  const EdgeList g = random_graph(4, 1000, 1);
  bool self_loop = false;
  for (const auto& e : g.edges) self_loop = self_loop || e.src == e.dst;
  EXPECT_TRUE(self_loop);
}

TEST(EdgeWeight, DeterministicAndPositive) {
  EXPECT_EQ(edge_weight(1, 1), edge_weight(1, 1));
  EXPECT_NE(edge_weight(1, 1), edge_weight(1, 2));
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_GT(edge_weight(7, i), 0.0f);
    EXPECT_LT(edge_weight(7, i), 1.0f);
  }
}

TEST(Generators, RejectEmpty) {
  EXPECT_THROW((void)path_graph(0), std::invalid_argument);
  EXPECT_THROW((void)star_graph(1), std::invalid_argument);
  EXPECT_THROW((void)grid_graph(0, 3), std::invalid_argument);
  EXPECT_THROW((void)random_graph(0, 10), std::invalid_argument);
}

}  // namespace
