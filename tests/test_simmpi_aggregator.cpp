// Aggregator and quiescence tests: capacity/timeout flush policy, the
// p2p-vs-collective wire accounting split, and the Mattern four-counter
// termination edge cases (single rank, zero messages, in-flight messages,
// faults during flush).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "simmpi/aggregator.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"

namespace {

using namespace g500;

struct Record {
  std::uint64_t key = 0;
  std::uint64_t payload = 0;
};

// The standard idle loop: poll + advance the token until globally done.
// Returns the records received.  Every test that terminates goes through
// this; if quiescence is unsafe or deadlocks, these tests hang or lose
// records.
std::vector<Record> drain_until_quiescent(simmpi::Aggregator<Record>& agg) {
  std::vector<Record> in;
  while (!agg.quiescent()) {
    agg.poll(in);
    agg.advance_quiescence();
  }
  agg.poll(in);  // pick up anything deposited with the terminate decision
  return in;
}

TEST(Aggregator, CapacityFlushDeliversAllRecords) {
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    simmpi::AggregatorOptions opts;
    opts.capacity = 4;
    simmpi::Aggregator<Record> agg(comm, opts);
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 8; ++i) {
        agg.send(1, Record{i, i * 10});
      }
      // Two full buffers left at capacity; nothing is pending.
      EXPECT_EQ(agg.pending(), 0u);
      EXPECT_EQ(comm.stats().p2p_flush_capacity, 2u);
      EXPECT_EQ(comm.stats().p2p_flush_timeout, 0u);
    }
    const auto in = drain_until_quiescent(agg);
    if (comm.rank() == 1) {
      ASSERT_EQ(in.size(), 8u);
      std::uint64_t sum = 0;
      for (const auto& r : in) sum += r.payload;
      EXPECT_EQ(sum, 280u);  // 10 * (0+1+...+7)
    } else {
      EXPECT_TRUE(in.empty());
    }
  });
}

TEST(Aggregator, TimeoutFlushAgesOutPartialBuffers) {
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    simmpi::AggregatorOptions opts;
    opts.capacity = 1024;  // never reached
    opts.max_age = 3;
    simmpi::Aggregator<Record> agg(comm, opts);
    std::vector<Record> in;
    if (comm.rank() == 0) {
      agg.send(1, Record{7, 77});
      EXPECT_EQ(agg.pending(), 1u);
      // The buffer sits until max_age poll cycles have passed.
      agg.poll(in);
      agg.poll(in);
      EXPECT_EQ(agg.pending(), 1u);
      EXPECT_EQ(comm.stats().p2p_flush_timeout, 0u);
      agg.poll(in);  // cycle 3: ages out
      EXPECT_EQ(agg.pending(), 0u);
      EXPECT_EQ(comm.stats().p2p_flush_timeout, 1u);
      EXPECT_EQ(comm.stats().p2p_flush_capacity, 0u);
    }
    const auto rest = drain_until_quiescent(agg);
    if (comm.rank() == 1) {
      ASSERT_EQ(rest.size(), 1u);
      EXPECT_EQ(rest[0].key, 7u);
      EXPECT_EQ(rest[0].payload, 77u);
    }
  });
}

TEST(Aggregator, CompactorRunsBeforeEveryFlush) {
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    simmpi::AggregatorOptions opts;
    opts.capacity = 8;
    simmpi::Aggregator<Record> agg(comm, opts);
    // Keep only the smallest payload per key.
    agg.set_compactor([](std::vector<Record>& buf) {
      std::sort(buf.begin(), buf.end(), [](const Record& a, const Record& b) {
        return a.key != b.key ? a.key < b.key : a.payload < b.payload;
      });
      buf.erase(std::unique(buf.begin(), buf.end(),
                            [](const Record& a, const Record& b) {
                              return a.key == b.key;
                            }),
                buf.end());
    });
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 8; ++i) {
        agg.send(1, Record{i % 2, 100 - i});  // two keys, shrinking payloads
      }
    }
    const auto in = drain_until_quiescent(agg);
    if (comm.rank() == 1) {
      ASSERT_EQ(in.size(), 2u);  // deduped on the sender before the wire
      for (const auto& r : in) {
        EXPECT_EQ(r.payload, r.key == 0 ? 94u : 93u);
      }
    }
  });
}

TEST(Aggregator, RejectsReservedControlTags) {
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    simmpi::AggregatorOptions opts;
    opts.tag = simmpi::kQuiescenceTokenTag;
    EXPECT_THROW(simmpi::Aggregator<Record> agg(comm, opts),
                 std::invalid_argument);
  });
}

TEST(Aggregator, P2pTrafficIsSplitFromCollectives) {
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto rounds_before = comm.stats().rounds();
    simmpi::AggregatorOptions opts;
    opts.capacity = 2;
    simmpi::Aggregator<Record> agg(comm, opts);
    if (comm.rank() == 0) {
      agg.send(1, Record{1, 1});
      agg.send(1, Record{2, 2});  // capacity flush: one parcel, 32 bytes
      EXPECT_EQ(comm.stats().p2p.calls, 1u);
      EXPECT_EQ(comm.stats().p2p.messages, 1u);
      EXPECT_EQ(comm.stats().p2p.bytes, 2 * sizeof(Record));
    }
    (void)drain_until_quiescent(agg);
    // Parcels are unmatched sends: they never contribute synchronized
    // rounds, which is what the replay model prices per-round latency on.
    EXPECT_EQ(comm.stats().rounds(), rounds_before);
    EXPECT_EQ(comm.stats().alltoallv.calls, 0u);
  });
  const auto p2p = world.p2p_summary();
  EXPECT_GE(p2p.flushes, 1u);
  EXPECT_GE(p2p.bytes, 2 * sizeof(Record));
  EXPECT_EQ(p2p.flush_capacity, 1u);
}

TEST(Aggregator, SelfSendsAreDeliveredButNotOnTheWire) {
  // Single-rank world: every parcel (data and quiescence control alike) is
  // a loopback, so nothing may land in the wire byte counters.
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    simmpi::AggregatorOptions opts;
    opts.capacity = 1;  // every send flushes immediately
    simmpi::Aggregator<Record> agg(comm, opts);
    agg.send(0, Record{5, 55});
    EXPECT_EQ(comm.stats().p2p.bytes, 0u);  // loopback: no wire traffic
    EXPECT_EQ(comm.stats().p2p_flush_capacity, 1u);
    const auto in = drain_until_quiescent(agg);
    ASSERT_EQ(in.size(), 1u);
    EXPECT_EQ(in[0].payload, 55u);
  });
  EXPECT_EQ(world.p2p_summary().bytes, 0u);
}

// --- Quiescence edge cases ---------------------------------------------

TEST(Quiescence, SingleRankWorldTerminates) {
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    simmpi::Aggregator<Record> agg(comm);
    agg.send(0, Record{1, 2});
    agg.flush_all();
    const auto in = drain_until_quiescent(agg);
    EXPECT_EQ(in.size(), 1u);
    EXPECT_TRUE(agg.quiescent());
    EXPECT_GE(agg.detector().waves_completed(), 2u);
  });
}

TEST(Quiescence, ZeroMessageRunTerminates) {
  simmpi::World world(5);
  world.run([&](simmpi::Comm& comm) {
    simmpi::Aggregator<Record> agg(comm);
    const auto in = drain_until_quiescent(agg);
    EXPECT_TRUE(in.empty());
    EXPECT_TRUE(agg.quiescent());
  });
  // Only control traffic (token + terminate) crossed the wire.
  const auto p2p = world.p2p_summary();
  EXPECT_EQ(p2p.flush_capacity, 0u);
  EXPECT_EQ(p2p.flush_timeout, 0u);
}

TEST(Quiescence, InFlightMessagesBlockTermination) {
  // Safety: termination may not be declared while records are in flight.
  // Rank 0 deposits parcels and immediately starts driving the token; the
  // protocol must not terminate until rank 1 has consumed every record, so
  // when quiescent() first turns true the receiver's inbox total is exact.
  for (int trial = 0; trial < 5; ++trial) {
    simmpi::World world(3);
    constexpr std::uint64_t kRecords = 100;
    world.run([&](simmpi::Comm& comm) {
      simmpi::AggregatorOptions opts;
      opts.capacity = 7;
      simmpi::Aggregator<Record> agg(comm, opts);
      if (comm.rank() == 0) {
        for (std::uint64_t i = 0; i < kRecords; ++i) {
          agg.send(1 + static_cast<int>(i % 2), Record{i, 1});
        }
      }
      const auto in = drain_until_quiescent(agg);
      if (comm.rank() == 0) {
        EXPECT_TRUE(in.empty());
      } else {
        EXPECT_EQ(in.size(), kRecords / 2);
      }
      // Two consecutive identical waves are required; the round-trip count
      // lives on rank 0, where the token returns.
      if (comm.rank() == 0) {
        EXPECT_GE(agg.detector().waves_completed(), 2u);
      }
    });
  }
}

TEST(Quiescence, StallDuringFlushOnlyDelaysTermination) {
  // A fault-injected stall on a victim's parcel deposit charges virtual
  // seconds but must not lose the record or wedge the token ring.
  simmpi::World world(2);
  world.set_fault_plan(
      simmpi::FaultPlan{}.stall(/*rank=*/0, /*at_call=*/1, /*seconds=*/0.25));
  world.run([&](simmpi::Comm& comm) {
    simmpi::AggregatorOptions opts;
    opts.capacity = 1;
    simmpi::Aggregator<Record> agg(comm, opts);
    if (comm.rank() == 0) {
      agg.send(1, Record{9, 99});  // collective call 1: the stalled flush
      EXPECT_DOUBLE_EQ(comm.stats().stall_seconds, 0.25);
    }
    const auto in = drain_until_quiescent(agg);
    if (comm.rank() == 1) {
      ASSERT_EQ(in.size(), 1u);
      EXPECT_EQ(in[0].payload, 99u);
    }
  });
  EXPECT_EQ(world.injector()->events_fired(), 1u);
}

TEST(Quiescence, CrashDuringAsyncPhaseUnwindsEveryRank) {
  // The victim dies at its first parcel deposit; the peer spinning in
  // poll/advance must observe AbortedError instead of hanging, and the
  // whole run surfaces the injected crash.
  simmpi::World world(2);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(/*rank=*/1, /*at_call=*/1));
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 simmpi::AggregatorOptions opts;
                 opts.capacity = 1;
                 simmpi::Aggregator<Record> agg(comm, opts);
                 if (comm.rank() == 1) {
                   agg.send(0, Record{1, 1});  // collective call 1: crash
                 }
                 (void)drain_until_quiescent(agg);
               }),
               simmpi::InjectedCrashError);
  // The fault latch is one-shot: a fresh run over the same world completes.
  world.run([&](simmpi::Comm& comm) {
    simmpi::Aggregator<Record> agg(comm);
    if (comm.rank() == 1) agg.send(0, Record{2, 4});
    const auto in = drain_until_quiescent(agg);
    if (comm.rank() == 0) {
      EXPECT_EQ(in.size(), 1u);
    }
  });
}

}  // namespace
