// Version-aware serving over streaming mutations: caches must fail
// closed on a graph-version mismatch, scoped invalidation must retain
// exactly the artifacts the oracle brackets prove untouched (answers
// staying bit-identical to a fresh recompute on the mutated graph), and
// the persisted point cache must round-trip behind its digest gate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/delta_stepping.hpp"
#include "dyn/mutable_graph.hpp"
#include "graph/builder.hpp"
#include "serve/cache.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"
#include "simmpi/comm.hpp"
#include "util/random.hpp"

namespace {

using namespace g500;
using namespace g500::graph;
using dyn::MutableGraph;
using serve::Answer;
using serve::DistanceService;
using serve::Query;
using serve::QueryKind;
using serve::ServeConfig;

/// Two disjoint ring-plus-chords components: A = [0, n/2), B = [n/2, n).
/// Cross-component verdicts become exact unreachability proofs, so an
/// edit inside B provably cannot touch any artifact rooted in A.
EdgeList two_component_graph(VertexId n) {
  EdgeList input;
  input.num_vertices = n;
  const VertexId half = n / 2;
  util::SplitMix64 rng(0xFEED5);
  const auto w = [&rng] {
    return static_cast<Weight>(0.5 + rng.next_double());
  };
  for (VertexId v = 0; v < half; ++v) {
    input.edges.push_back(Edge{v, (v + 1) % half, w()});
    input.edges.push_back(Edge{half + v, half + (v + 1) % half, w()});
  }
  for (int i = 0; i < 12; ++i) {
    input.edges.push_back(Edge{rng.next_below(half), rng.next_below(half),
                               w()});
    input.edges.push_back(Edge{half + rng.next_below(half),
                               half + rng.next_below(half), w()});
  }
  return input;
}

DistGraph build_piece(simmpi::Comm& comm, const EdgeList& list) {
  return build_distributed(
      comm, slice_for_rank(list, comm.rank(), comm.size()),
      list.num_vertices);
}

/// Push one point-to-point query through the service synchronously.
Answer ask(DistanceService& svc, std::uint64_t& id, std::uint64_t& tick,
           VertexId root, VertexId target) {
  Query q;
  q.id = id++;
  q.arrival_tick = tick;
  q.kind = QueryKind::kPointToPoint;
  q.root = root;
  q.target = target;
  EXPECT_TRUE(svc.submit(q));
  const auto answers = svc.tick(tick++, /*flush=*/true);
  EXPECT_EQ(answers.size(), 1u);
  return answers.front();
}

/// The fresh-recompute value of d(root, target) on the current view.
Weight fresh_distance(simmpi::Comm& comm, const DistGraph& g, VertexId root,
                      VertexId target, const core::SsspConfig& config) {
  const auto mine = core::delta_stepping(comm, g, root, config);
  return core::gather_result(comm, g, mine).dist[target];
}

TEST(DynServe, RootCacheVersioningFailsClosed) {
  serve::RootCache cache(std::size_t{1} << 16, 64 * sizeof(Weight));
  cache.insert(5, std::vector<Weight>(64, 1.0f), /*version=*/1);
  cache.insert(9, std::vector<Weight>(64, 2.0f), /*version=*/1);
  ASSERT_NE(cache.lookup(5, 1), nullptr);

  // Version mismatch: the entry is dropped and the lookup is a miss.
  EXPECT_EQ(cache.lookup(5, 2), nullptr);
  EXPECT_FALSE(cache.contains(5));
  EXPECT_EQ(cache.stats().version_misses, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().resident_entries, 1u);

  // A retained-and-restamped entry answers at the new version.
  cache.restamp(9, 2);
  EXPECT_NE(cache.lookup(9, 2), nullptr);
  EXPECT_EQ(cache.keys(), std::vector<VertexId>{9});
  EXPECT_TRUE(cache.erase(9));
  EXPECT_FALSE(cache.erase(9));
  EXPECT_EQ(cache.stats().resident_entries, 0u);
}

/// Scoped invalidation across a mutation confined to component B: point
/// entries rooted in component A survive (and keep answering), the
/// landmark slices of A never re-solve, and every post-update answer is
/// bit-identical to a fresh recompute on the mutated graph.
TEST(DynServe, ScopedInvalidationRetainsOtherComponent) {
  const VertexId n = 128;
  const auto list = two_component_graph(n);
  simmpi::World world(3);
  world.run([&](simmpi::Comm& comm) {
    MutableGraph mg(comm, build_piece(comm, list));

    ServeConfig config;
    config.queue_depth = 64;
    config.oracle.num_landmarks = 4;
    config.graph_version = mg.version();
    DistanceService svc(comm, mg.view(), config);
    ASSERT_EQ(svc.graph_version(), 0u);

    std::uint64_t id = 0;
    std::uint64_t tick = 0;
    const auto a1 = ask(svc, id, tick, 5, 40);    // component A
    const auto b1 = ask(svc, id, tick, 70, 100);  // component B
    EXPECT_EQ(a1.graph_version, 0u);
    EXPECT_EQ(a1.distance,
              fresh_distance(comm, mg.view(), 5, 40, config.sssp));
    EXPECT_EQ(b1.distance,
              fresh_distance(comm, mg.view(), 70, 100, config.sssp));

    // A drastic shortcut entirely inside B.
    if (comm.rank() == 0) mg.stage_insert(80, 120, 0.05f);
    const auto summary = mg.commit_batch();
    ASSERT_EQ(summary.edges_applied(), 1u);
    svc.note_graph_update(summary);
    EXPECT_EQ(svc.graph_version(), mg.version());

    auto& m = svc.metrics();
    EXPECT_EQ(m.graph_updates, 1u);
    EXPECT_EQ(m.update_edges_applied, 1u);
    EXPECT_EQ(m.wholesale_flushes, 0u);
    // The A-rooted point entries are provably untouched (cross-component
    // unreachability) and must survive the commit.
    EXPECT_GE(m.points_retained, 1u);
    // At least B's landmark re-solves; A's landmarks (which see neither
    // endpoint) must not — scoped, not wholesale.
    EXPECT_GE(m.slices_refreshed, 1u);
    EXPECT_LT(m.slices_refreshed, m.oracle_landmarks);

    // Post-update answers are bit-identical to a fresh recompute on the
    // mutated graph, for retained roots and invalidated ones alike.
    const auto a2 = ask(svc, id, tick, 5, 40);
    const auto b2 = ask(svc, id, tick, 70, 100);
    EXPECT_EQ(a2.graph_version, mg.version());
    EXPECT_EQ(b2.graph_version, mg.version());
    EXPECT_EQ(a2.distance,
              fresh_distance(comm, mg.view(), 5, 40, config.sssp));
    EXPECT_EQ(b2.distance,
              fresh_distance(comm, mg.view(), 70, 100, config.sssp));
    EXPECT_EQ(a2.distance, a1.distance);  // A provably unchanged
  });
}

/// A commit whose staged ops all merge to no-ops only bumps the version:
/// nothing is invalidated, artifacts are restamped and keep answering.
TEST(DynServe, EmptyCommitRestampsWithoutInvalidation) {
  const auto list = two_component_graph(64);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    MutableGraph mg(comm, build_piece(comm, list));
    ServeConfig config;
    config.oracle.num_landmarks = 3;
    config.graph_version = mg.version();
    DistanceService svc(comm, mg.view(), config);

    std::uint64_t id = 0;
    std::uint64_t tick = 0;
    const auto before = ask(svc, id, tick, 3, 20);

    const auto summary = mg.commit_batch();  // nothing staged
    ASSERT_EQ(summary.edges_applied(), 0u);
    svc.note_graph_update(summary);
    EXPECT_EQ(svc.graph_version(), mg.version());

    const auto& m = svc.metrics();
    EXPECT_EQ(m.points_invalidated, 0u);
    EXPECT_EQ(m.roots_invalidated, 0u);
    EXPECT_EQ(m.slices_refreshed, 0u);

    const std::uint64_t hits_before = m.point_cache_hits;
    const auto after = ask(svc, id, tick, 3, 20);
    EXPECT_EQ(after.distance, before.distance);
    EXPECT_EQ(after.graph_version, mg.version());
    if (before.pruned_wave) {
      // The banked point entry survived the restamp and answered.
      EXPECT_TRUE(after.from_point_cache);
      EXPECT_GT(svc.metrics().point_cache_hits, hits_before);
    }
  });
}

/// Without an oracle there is no bracket to scope with: every cached
/// artifact flushes wholesale, and answers stay correct on the new graph.
TEST(DynServe, WholesaleFlushWithoutOracle) {
  const auto list = two_component_graph(64);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    MutableGraph mg(comm, build_piece(comm, list));
    ServeConfig config;  // no oracle
    config.graph_version = mg.version();
    DistanceService svc(comm, mg.view(), config);

    std::uint64_t id = 0;
    std::uint64_t tick = 0;
    (void)ask(svc, id, tick, 3, 20);
    // Without an oracle the root slice is cached; a repeat hits it.
    const auto repeat = ask(svc, id, tick, 3, 20);
    EXPECT_TRUE(repeat.from_cache);

    if (comm.rank() == 0) mg.stage_insert(3, 20, 0.01f);
    const auto summary = mg.commit_batch();
    svc.note_graph_update(summary);

    const auto& m = svc.metrics();
    EXPECT_EQ(m.wholesale_flushes, 1u);
    EXPECT_GE(m.roots_invalidated, 1u);
    EXPECT_EQ(m.cache.resident_entries, 0u);

    const auto after = ask(svc, id, tick, 3, 20);
    EXPECT_FALSE(after.from_cache);
    EXPECT_EQ(after.distance,
              fresh_distance(comm, mg.view(), 3, 20, config.sssp));
    EXPECT_EQ(after.distance, 0.01f);
  });
}

/// The exact point cache persists next to the oracle slices and is
/// adopted back behind the digest gate; a version bump fails the gate
/// closed on both artifacts.
TEST(DynServe, PointCachePersistsAndFailsClosedOnVersionBump) {
  const auto list = two_component_graph(64);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_piece(comm, list);
    serve::OracleSliceStore store;
    ServeConfig config;
    config.oracle.num_landmarks = 3;
    config.graph_version = 7;

    Weight banked = 0.0f;
    bool have_banked = false;
    {
      serve::FaultContext ctx;
      ctx.oracle_store = &store;
      DistanceService svc(comm, g, config, &ctx);
      std::uint64_t id = 0;
      std::uint64_t tick = 0;
      const auto a = ask(svc, id, tick, 3, 20);
      banked = a.distance;
      have_banked = a.pruned_wave;  // only pruned waves bank point entries
      svc.persist_point_cache(store);
      if (have_banked) {
        EXPECT_GE(svc.metrics().point_persisted, 1u);
      }
    }
    ASSERT_TRUE(store.valid());
    ASSERT_FALSE(store.point_blob.empty());

    // Same graph version: both blobs adopt — zero precompute waves, and
    // the banked point answers without any wave or oracle pass.
    {
      serve::FaultContext ctx;
      ctx.oracle_store = &store;
      DistanceService svc(comm, g, config, &ctx);
      ASSERT_NE(svc.oracle(), nullptr);
      EXPECT_TRUE(svc.oracle()->restored_from_store());
      EXPECT_EQ(svc.oracle()->precompute_waves(), 0u);
      if (have_banked) {
        EXPECT_GE(svc.metrics().point_restored, 1u);
        std::uint64_t id = 100;
        std::uint64_t tick = 0;
        const auto a = ask(svc, id, tick, 3, 20);
        EXPECT_TRUE(a.from_point_cache);
        EXPECT_EQ(a.distance, banked);
      }
    }

    // Bumped graph version: the digest gate rejects BOTH blobs (a
    // mutated graph must never resurrect pre-mutation artifacts).
    {
      ServeConfig stale = config;
      stale.graph_version = 8;
      serve::FaultContext ctx;
      ctx.oracle_store = &store;
      DistanceService svc(comm, g, stale, &ctx);
      ASSERT_NE(svc.oracle(), nullptr);
      EXPECT_FALSE(svc.oracle()->restored_from_store());
      EXPECT_GT(svc.oracle()->precompute_waves(), 0u);
      EXPECT_EQ(svc.metrics().point_restored, 0u);
    }
  });
}

}  // namespace
