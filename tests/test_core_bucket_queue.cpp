// Unit tests for the lazy-deletion bucket queue.
#include <gtest/gtest.h>

#include "core/bucket_queue.hpp"

namespace {

using g500::core::BucketQueue;
using g500::graph::LocalId;

TEST(BucketQueue, StartsEmpty) {
  BucketQueue q(4);
  EXPECT_EQ(q.next_nonempty(0), BucketQueue::kNone);
  EXPECT_TRUE(q.extract(0).empty());
  EXPECT_EQ(q.position(0), BucketQueue::kNone);
}

TEST(BucketQueue, InsertAndExtract) {
  BucketQueue q(4);
  q.update(2, 5);
  EXPECT_EQ(q.position(2), 5u);
  EXPECT_EQ(q.next_nonempty(0), 5u);
  const auto got = q.extract(5);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], 2u);
  EXPECT_EQ(q.position(2), BucketQueue::kNone);
  EXPECT_EQ(q.next_nonempty(0), BucketQueue::kNone);
}

TEST(BucketQueue, MoveLeavesStaleEntryBehind) {
  BucketQueue q(4);
  q.update(1, 7);
  q.update(1, 3);  // moved down: entry in 7 is now stale
  EXPECT_EQ(q.next_nonempty(0), 3u);
  EXPECT_EQ(q.extract(3), std::vector<LocalId>{1});
  // The stale copy in bucket 7 must not resurface.
  EXPECT_TRUE(q.extract(7).empty());
  EXPECT_EQ(q.next_nonempty(0), BucketQueue::kNone);
}

TEST(BucketQueue, ReinsertSameBucketIsIdempotent) {
  BucketQueue q(2);
  q.update(0, 2);
  q.update(0, 2);
  EXPECT_EQ(q.extract(2).size(), 1u);
}

TEST(BucketQueue, ReinsertAfterExtract) {
  BucketQueue q(2);
  q.update(0, 2);
  (void)q.extract(2);
  q.update(0, 2);
  EXPECT_EQ(q.extract(2).size(), 1u);
}

TEST(BucketQueue, NextNonemptySkipsStaleBuckets) {
  BucketQueue q(3);
  q.update(0, 1);
  q.update(1, 4);
  q.update(0, 0);  // bucket 1 now holds only a stale entry
  EXPECT_EQ(q.next_nonempty(0), 0u);
  (void)q.extract(0);
  EXPECT_EQ(q.next_nonempty(0), 4u);
}

TEST(BucketQueue, NextNonemptyRespectsFrom) {
  BucketQueue q(3);
  q.update(0, 1);
  q.update(1, 5);
  EXPECT_EQ(q.next_nonempty(2), 5u);
}

TEST(BucketQueue, ManyVerticesOneBucket) {
  BucketQueue q(100);
  for (LocalId v = 0; v < 100; ++v) q.update(v, 3);
  const auto got = q.extract(3);
  EXPECT_EQ(got.size(), 100u);
}

TEST(BucketQueue, TotalQueuedCountsInsertions) {
  BucketQueue q(4);
  q.update(0, 1);
  q.update(0, 1);  // no-op
  q.update(0, 0);  // move
  EXPECT_EQ(q.total_queued(), 2u);
}

TEST(BucketQueue, GrowsToLargeBucketIndices) {
  BucketQueue q(1);
  q.update(0, 100000);
  EXPECT_EQ(q.next_nonempty(0), 100000u);
  EXPECT_GE(q.num_buckets(), 100001u);
}

}  // namespace
