// Unit tests for histogram, table printer, CLI options and timers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <sstream>
#include <thread>

#include "util/histogram.hpp"
#include "util/options.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace g500::util;

// ------------------------------------------------------------ Log2Histogram

TEST(Log2Histogram, EmptyIsZero) {
  Log2Histogram h;
  EXPECT_EQ(h.total_count(), 0u);
  EXPECT_EQ(h.total_sum(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 0u);
}

TEST(Log2Histogram, BucketBoundaries) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  // 0 and 1 share bucket 0; 2,3 in bucket 1; 4 in bucket 2.
  ASSERT_GE(h.buckets().size(), 3u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
}

TEST(Log2Histogram, TracksSumCountMax) {
  Log2Histogram h;
  h.add(10);
  h.add(20);
  h.add(5, 2);  // weighted
  EXPECT_EQ(h.total_count(), 4u);
  EXPECT_EQ(h.total_sum(), 40u);
  EXPECT_EQ(h.max_value(), 20u);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
}

TEST(Log2Histogram, MergeCombines) {
  Log2Histogram a;
  Log2Histogram b;
  a.add(1);
  a.add(1000);
  b.add(7);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 3u);
  EXPECT_EQ(a.max_value(), 1000u);
  EXPECT_EQ(a.total_sum(), 1008u);
}

TEST(Log2Histogram, MergeIntoEmpty) {
  Log2Histogram a;
  Log2Histogram b;
  b.add(42);
  a.merge(b);
  EXPECT_EQ(a.total_count(), 1u);
  EXPECT_EQ(a.max_value(), 42u);
}

TEST(Log2Histogram, QuantileUpperBoundIsMonotone) {
  Log2Histogram h;
  for (std::uint64_t i = 1; i <= 1024; ++i) h.add(i);
  const auto q25 = h.quantile_upper_bound(0.25);
  const auto q50 = h.quantile_upper_bound(0.5);
  const auto q99 = h.quantile_upper_bound(0.99);
  EXPECT_LE(q25, q50);
  EXPECT_LE(q50, q99);
  EXPECT_GE(q99, 512u);
}

TEST(Log2Histogram, InterpolatedQuantileEmptyAndClamp) {
  Log2Histogram h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.add(8);  // single sample: every quantile is within [8, 16) clamped to 8
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 8.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 8.0);
}

TEST(Log2Histogram, InterpolatedQuantileTracksExactWithinBinWidth) {
  Log2Histogram h;
  for (std::uint64_t i = 1; i <= 1024; ++i) h.add(i);
  // Exact quantile of 1..1024 is ~q*1024; the estimate may be off by at
  // most the width of the bin it lands in.
  for (const double q : {0.10, 0.25, 0.50, 0.90, 0.99}) {
    const double exact = q * 1024.0;
    const double got = h.quantile(q);
    const double bin_width = std::max(2.0, exact);  // [2^k, 2^(k+1)) width
    EXPECT_NEAR(got, exact, bin_width) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);  // clamped to the observed max
}

TEST(Log2Histogram, InterpolatedQuantileIsMonotone) {
  Log2Histogram h;
  h.add(1);
  h.add(3, 5);
  h.add(100, 2);
  h.add(4000);
  double prev = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_LE(h.quantile(1.0), static_cast<double>(h.max_value()));
}

TEST(Log2Histogram, InterpolatedQuantileMovesInsideBin) {
  Log2Histogram h;
  // All mass in bin [16, 32): interpolation spreads quantiles across it.
  for (std::uint64_t i = 0; i < 100; ++i) h.add(16 + i % 16);
  const double p10 = h.quantile(0.10);
  const double p90 = h.quantile(0.90);
  EXPECT_GE(p10, 16.0);
  EXPECT_LT(p10, p90);  // uniform-in-bin assumption separates them
  EXPECT_LE(p90, 32.0);
}

TEST(Log2Histogram, SloPercentilesAreOrdered) {
  Log2Histogram h;
  for (std::uint64_t i = 0; i < 500; ++i) h.add(i % 64);
  const auto p = h.slo_percentiles();
  ASSERT_EQ(p.size(), 3u);
  EXPECT_LE(p[0], p[1]);
  EXPECT_LE(p[1], p[2]);
}

TEST(Log2Histogram, ToStringMentionsBuckets) {
  Log2Histogram h;
  h.add(3);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[2, 3]"), std::string::npos);
}

// Regression: a truncating rank resolved the median of {1, 8, 8} to the
// first sample's bucket (upper bound 1); the q-th sample is the smallest
// rank k >= q * count, so the median is the second sample — bucket [8, 15].
TEST(Log2Histogram, QuantileUpperBoundUsesCeilingRank) {
  Log2Histogram h;
  h.add(1);
  h.add(8);
  h.add(8);
  EXPECT_EQ(h.quantile_upper_bound(0.5), 15u);
  // And the rank-1 sample (any q reaching only the first sample) still
  // resolves to the first bucket.
  EXPECT_EQ(h.quantile_upper_bound(0.25), 1u);
}

// Regression: q == 0 used to fall through with target rank 0 and report
// the first non-empty bucket's *upper* bound; the minimum can be no
// larger than that bucket's lower bound.
TEST(Log2Histogram, QuantileZeroReportsMinimumBucketLowerBound) {
  Log2Histogram h;
  h.add(8);
  h.add(9);
  EXPECT_EQ(h.quantile_upper_bound(0.0), 8u);
}

// Regression: a sample in the top bucket (bit 63 set) made the quantile
// and to_string compute 1 << 64 — shift UB.  The top bucket's upper bound
// saturates at 2^64 - 1 instead.
TEST(Log2Histogram, TopBucketSaturatesInsteadOfShiftOverflow) {
  Log2Histogram h;
  h.add(std::uint64_t{1} << 63);
  EXPECT_EQ(h.quantile_upper_bound(1.0),
            std::numeric_limits<std::uint64_t>::max());
  const std::string s = h.to_string();
  EXPECT_NE(s.find("18446744073709551615"), std::string::npos);
}

// ---------------------------------------------------------------- Table

TEST(Table, AlignsColumns) {
  Table t({"a", "longheader"});
  t.row().add("xx").add(1);
  t.row().add("y").add(123456);
  std::ostringstream out;
  t.print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("longheader"), std::string::npos);
  EXPECT_NE(s.find("123456"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, TitleIsPrinted) {
  Table t({"x"});
  t.row().add(1);
  const std::string s = t.to_string("my title");
  EXPECT_NE(s.find("== my title =="), std::string::npos);
}

TEST(Table, DoubleFormatting) {
  Table t({"v"});
  t.row().add(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
}

TEST(Table, SiFormatting) {
  EXPECT_EQ(si_format(1500.0, 1), "1.5k");
  EXPECT_EQ(si_format(2.5e6, 1), "2.5M");
  EXPECT_EQ(si_format(3.25e9, 2), "3.25G");
  EXPECT_EQ(si_format(1.2e13, 1), "12.0T");
  EXPECT_EQ(si_format(12.0, 0), "12");
}

TEST(Table, RowCellAccess) {
  Table t({"a", "b"});
  t.row().add("p").add("q");
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.row_cells(0)[1], "q");
}

// -------------------------------------------------------------- Options

TEST(Options, ParsesSpaceSeparated) {
  const char* argv[] = {"prog", "--scale", "14", "--name", "abc"};
  Options o(5, argv);
  EXPECT_EQ(o.get_int("scale", 0), 14);
  EXPECT_EQ(o.get("name", ""), "abc");
}

TEST(Options, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--delta=0.25"};
  Options o(2, argv);
  EXPECT_DOUBLE_EQ(o.get_double("delta", 0.0), 0.25);
}

TEST(Options, BooleanFlags) {
  const char* argv[] = {"prog", "--verbose", "--quiet"};
  Options o(3, argv);
  EXPECT_TRUE(o.get_bool("verbose", false));
  EXPECT_TRUE(o.get_bool("quiet", false));
  EXPECT_FALSE(o.get_bool("absent", false));
}

TEST(Options, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  Options o(1, argv);
  EXPECT_EQ(o.get_int("x", 42), 42);
  EXPECT_DOUBLE_EQ(o.get_double("y", 1.5), 1.5);
  EXPECT_EQ(o.get("z", "dflt"), "dflt");
}

TEST(Options, PositionalArguments) {
  const char* argv[] = {"prog", "input.txt", "--flag", "out.txt"};
  Options o(4, argv);
  // "--flag out.txt" consumes out.txt as the flag value.
  ASSERT_EQ(o.positional().size(), 1u);
  EXPECT_EQ(o.positional()[0], "input.txt");
  EXPECT_EQ(o.get("flag", ""), "out.txt");
}

TEST(Options, MalformedIntThrows) {
  const char* argv[] = {"prog", "--n", "abc"};
  Options o(3, argv);
  EXPECT_THROW((void)o.get_int("n", 0), std::invalid_argument);
}

TEST(Options, HasDetectsPresence) {
  const char* argv[] = {"prog", "--a=1"};
  Options o(2, argv);
  EXPECT_TRUE(o.has("a"));
  EXPECT_FALSE(o.has("b"));
}

// ---------------------------------------------------------------- Timer

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.milliseconds(), 15.0);
  EXPECT_LT(t.seconds(), 5.0);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.milliseconds(), 15.0);
}

TEST(Accumulator, TracksTotalsAndMax) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  acc.add(2.0);
  EXPECT_DOUBLE_EQ(acc.total(), 6.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_EQ(acc.count(), 3u);
  acc.clear();
  EXPECT_EQ(acc.count(), 0u);
}

}  // namespace
