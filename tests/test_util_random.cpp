// Unit tests for the deterministic random primitives.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/random.hpp"

namespace {

using namespace g500::util;

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(0), mix64(0));
  EXPECT_EQ(mix64(12345), mix64(12345));
}

TEST(Mix64, ChangesInput) {
  // A strong mixer should not fix small values.
  for (std::uint64_t x = 1; x < 100; ++x) {
    EXPECT_NE(mix64(x), x);
  }
}

TEST(Mix64, IsInjectiveOnSample) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t x = 0; x < 10000; ++x) {
    EXPECT_TRUE(seen.insert(mix64(x)).second) << "collision at " << x;
  }
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x123456789abcdefULL);
    const std::uint64_t b = mix64(0x123456789abcdefULL ^ (1ULL << bit));
    const int flipped = std::popcount(a ^ b);
    EXPECT_GT(flipped, 10) << "bit " << bit;
    EXPECT_LT(flipped, 54) << "bit " << bit;
  }
}

TEST(Hash64, TwoWordOrderMatters) {
  EXPECT_NE(hash64(1, 2), hash64(2, 1));
}

TEST(Hash64, ThreeWordDistinctFromTwoWord) {
  EXPECT_NE(hash64(1, 2, 3), hash64(1, 2));
  EXPECT_NE(hash64(1, 2, 3), hash64(1, 3, 2));
}

TEST(Hash64, CounterStreamHasNoShortCycles) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    EXPECT_TRUE(seen.insert(hash64(42, i)).second);
  }
}

TEST(ToUnitDouble, AlwaysInHalfOpenRange) {
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const double u = to_unit_double(hash64(7, i));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(to_unit_double(0), 0.0);
  EXPECT_LT(to_unit_double(~std::uint64_t{0}), 1.0);
}

TEST(ToUnitFloat, AlwaysInHalfOpenRange) {
  for (std::uint64_t i = 0; i < 10000; ++i) {
    const float u = to_unit_float(hash64(9, i));
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
  EXPECT_LT(to_unit_float(~std::uint64_t{0}), 1.0f);
}

TEST(ToUnitDouble, MeanIsAboutHalf) {
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (std::uint64_t i = 0; i < kSamples; ++i) {
    sum += to_unit_double(hash64(13, i));
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(SplitMix64, SameSeedSameStream) {
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SplitMix64, NextBelowRespectsBound) {
  SplitMix64 rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000007ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(SplitMix64, NextBelowCoversSmallRange) {
  SplitMix64 rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SplitMix64, NextDoubleInRange) {
  SplitMix64 rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(SplitMix64, SatisfiesUniformRandomBitGenerator) {
  static_assert(SplitMix64::min() == 0);
  static_assert(SplitMix64::max() == ~std::uint64_t{0});
  SplitMix64 rng(1);
  std::vector<int> v{1, 2, 3, 4, 5};
  std::shuffle(v.begin(), v.end(), rng);  // must compile and run
  EXPECT_EQ(v.size(), 5u);
}

}  // namespace
