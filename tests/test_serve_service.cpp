// End-to-end tests for the online distance-query service: answers must be
// bit-identical to a fresh offline delta-stepping run, the micro-batcher
// must honor its size/deadline triggers, shedding must follow the
// configured policy, and the counters must agree across ranks.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "core/delta_stepping.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "serve/driver.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using serve::Answer;
using serve::DistanceService;
using serve::Query;
using serve::QueryKind;
using serve::ServeConfig;
using serve::ShedPolicy;
using serve::Workload;
using serve::WorkloadConfig;

graph::DistGraph build_test_graph(simmpi::Comm& comm,
                                  const graph::EdgeList& list) {
  return graph::build_distributed(
      comm, graph::slice_for_rank(list, comm.rank(), comm.size()),
      list.num_vertices);
}

/// Every answer of a seeded workload replayed through the service equals
/// the fresh offline computation for its root, bit for bit — cache hits,
/// batching and dedup must not perturb a single value.
TEST(ServeService, AnswersBitIdenticalToFreshDeltaStepping) {
  const auto list = graph::random_graph(128, 512, 24);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);

    WorkloadConfig wl;
    wl.seed = 7;
    wl.ticks = 24;
    wl.arrivals_per_tick = 3.0;
    wl.zipf_s = 1.1;
    wl.roots = {3, 11, 42, 64, 100};
    wl.num_vertices = g.num_vertices;

    ServeConfig config;
    config.batch_size = 4;
    config.max_wait_ticks = 2;
    config.queue_depth = 256;  // no shedding: every query must be answered

    const auto run = serve::run_workload(comm, g, config, Workload(wl),
                                         /*keep_answers=*/true);
    ASSERT_GT(run.answers.size(), 0u);
    EXPECT_EQ(run.metrics.answered, run.answers.size());
    EXPECT_EQ(run.metrics.shed, 0u);

    // Fresh single-source runs, one per distinct root in the answer set.
    std::map<graph::VertexId, core::SequentialResult> oracle;
    for (const auto& a : run.answers) {
      if (!oracle.count(a.root)) {
        const auto mine = core::delta_stepping(comm, g, a.root, config.sssp);
        oracle.emplace(a.root, core::gather_result(comm, g, mine));
      }
    }
    std::uint64_t from_cache = 0;
    for (const auto& a : run.answers) {
      ASSERT_EQ(a.kind, QueryKind::kPointToPoint);
      const auto& want = oracle.at(a.root).dist;
      ASSERT_LT(a.target, want.size());
      EXPECT_EQ(a.distance, want[a.target])
          << "query " << a.id << " root " << a.root << " target " << a.target
          << " from_cache " << a.from_cache;
      if (a.from_cache) ++from_cache;
    }
    // A Zipf workload over 5 roots must produce warm answers.
    EXPECT_GT(from_cache, 0u);
    EXPECT_GT(run.metrics.cache.hit_rate(), 0.0);
    // Dedup + cache: far fewer waves than answers.
    EXPECT_LT(run.metrics.waves, run.metrics.answered);
  });
}

TEST(ServeService, NearestFacilityMatchesMultiSourceOracle) {
  const auto list = graph::random_graph(96, 384, 31);
  simmpi::World world(3);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);

    ServeConfig config;
    config.facilities = {2, 47, 90};
    config.batch_size = 4;

    WorkloadConfig wl;
    wl.seed = 9;
    wl.ticks = 12;
    wl.arrivals_per_tick = 2.0;
    wl.nearest_fraction = 1.0;
    wl.num_vertices = g.num_vertices;

    const auto run = serve::run_workload(comm, g, config, Workload(wl),
                                         /*keep_answers=*/true);
    ASSERT_GT(run.answers.size(), 0u);

    const auto mine =
        core::delta_stepping_multi(comm, g, config.facilities, config.sssp);
    const auto want = core::gather_result(comm, g, mine);
    for (const auto& a : run.answers) {
      ASSERT_EQ(a.kind, QueryKind::kNearestFacility);
      EXPECT_EQ(a.distance, want.dist[a.target]) << "query " << a.id;
    }
    // One facility wave serves the whole run (single reserved cache key).
    EXPECT_EQ(run.metrics.waves, 1u);
  });
}

TEST(ServeService, BatchDispatchTriggers) {
  const auto list = graph::path_graph(32, 5);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.batch_size = 3;
    config.max_wait_ticks = 2;
    DistanceService service(comm, g, config);

    Query q;
    q.root = 0;
    q.target = 5;
    q.arrival_tick = 0;

    // Deadline trigger: one waiter, batch far from full.
    ASSERT_TRUE(service.submit(q));
    EXPECT_TRUE(service.tick(0).empty());
    EXPECT_TRUE(service.tick(1).empty());
    const auto by_deadline = service.tick(2);  // age == max_wait_ticks
    ASSERT_EQ(by_deadline.size(), 1u);
    EXPECT_EQ(by_deadline[0].completion_tick, 2u);
    EXPECT_EQ(by_deadline[0].latency_ticks(), 2u);

    // Size trigger: the third submission fills the batch; it dispatches
    // on the next tick even though no one hit the deadline.
    for (std::uint64_t i = 0; i < 3; ++i) {
      q.id = 10 + i;
      q.arrival_tick = 3;
      ASSERT_TRUE(service.submit(q));
    }
    const auto by_size = service.tick(3);
    ASSERT_EQ(by_size.size(), 3u);
    for (const auto& a : by_size) EXPECT_EQ(a.latency_ticks(), 0u);
  });
}

TEST(ServeService, RejectNewShedsArrivalsAndAllowsResubmit) {
  const auto list = graph::path_graph(16, 6);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.queue_depth = 2;
    config.batch_size = 8;
    config.shed_policy = ShedPolicy::kRejectNew;
    DistanceService service(comm, g, config);

    Query q;
    q.root = 0;
    for (std::uint64_t i = 0; i < 3; ++i) {
      q.id = i;
      q.target = i;
      const bool admitted = service.submit(q);
      EXPECT_EQ(admitted, i < 2) << "query " << i;
    }
    ASSERT_EQ(service.shed_log().size(), 1u);
    EXPECT_EQ(service.shed_log()[0].id, 2u);  // the arrival bounced
    EXPECT_EQ(service.pending(), 2u);

    auto answers = service.drain(1);
    EXPECT_EQ(answers.size(), 2u);

    // The shed query can be resubmitted once the queue has room.
    Query retry = service.shed_log()[0];
    retry.arrival_tick = 5;
    ASSERT_TRUE(service.submit(retry));
    answers = service.drain(5);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_EQ(answers[0].id, 2u);

    const auto& m = service.metrics();
    EXPECT_EQ(m.arrived, 4u);
    EXPECT_EQ(m.admitted, 3u);
    EXPECT_EQ(m.shed, 1u);
    EXPECT_EQ(m.answered, 3u);
  });
}

TEST(ServeService, DropOldestShedsLongestWaiter) {
  const auto list = graph::path_graph(16, 6);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.queue_depth = 2;
    config.batch_size = 8;
    config.shed_policy = ShedPolicy::kDropOldest;
    DistanceService service(comm, g, config);

    Query q;
    q.root = 0;
    for (std::uint64_t i = 0; i < 3; ++i) {
      q.id = i;
      q.target = i;
      EXPECT_TRUE(service.submit(q));  // drop-oldest always admits
    }
    ASSERT_EQ(service.shed_log().size(), 1u);
    EXPECT_EQ(service.shed_log()[0].id, 0u);  // the longest waiter went
    const auto answers = service.drain(0);
    ASSERT_EQ(answers.size(), 2u);
    EXPECT_EQ(answers[0].id, 1u);
    EXPECT_EQ(answers[1].id, 2u);
  });
}

// A query still queued at its deadline tick completes immediately with
// Outcome::kDeadlineExceeded and the vacuous [0, inf) interval — it must
// not age silently or count as answered.
TEST(ServeService, QueueExpiredDeadlineCompletesUnanswered) {
  const auto list = graph::path_graph(16, 6);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.batch_size = 8;        // size trigger never fires
    config.max_wait_ticks = 100;  // age trigger never fires
    DistanceService service(comm, g, config);

    Query q;
    q.id = 9;
    q.root = 0;
    q.target = 12;
    q.arrival_tick = 0;
    q.deadline_tick = 3;
    ASSERT_TRUE(service.submit(q));
    EXPECT_TRUE(service.tick(0).empty());
    EXPECT_TRUE(service.tick(2).empty());
    const auto answers = service.tick(3);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_EQ(answers[0].id, 9u);
    EXPECT_EQ(answers[0].outcome, serve::Outcome::kDeadlineExceeded);
    EXPECT_TRUE(std::isinf(answers[0].distance));
    EXPECT_EQ(answers[0].lb, 0.0f);
    EXPECT_EQ(service.pending(), 0u);
    EXPECT_EQ(service.metrics().deadline_exceeded, 1u);
    EXPECT_EQ(service.metrics().answered, 0u);
    EXPECT_EQ(service.metrics().waves, 0u);
  });
}

// A batch deadline budget truncates the wave at the engine level: targets
// beyond the settled bound come back kDeadlineExceeded with a certified
// [settled_bound, ub) interval, while targets inside it stay exact — and
// the truncated slice must never enter the cache.
TEST(ServeService, DeadlineBudgetTruncatesWaveKeepsSettledPrefixExact) {
  const auto list = graph::path_graph(32, 5);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.batch_size = 2;
    config.sssp.delta = 0.05;  // narrow buckets: the sweep spans many epochs
    config.fault.deadline_buckets_per_tick = 1;
    DistanceService service(comm, g, config);

    Query far;
    far.id = 0;
    far.root = 0;
    far.target = 31;  // the other end of the path: way past two epochs
    far.arrival_tick = 0;
    far.deadline_tick = 2;
    Query near = far;
    near.id = 1;
    near.target = 0;  // distance 0 settles inside any budget
    ASSERT_TRUE(service.submit(far));
    ASSERT_TRUE(service.submit(near));

    const auto answers = service.tick(0);  // size trigger; budget = 2 epochs
    ASSERT_EQ(answers.size(), 2u);
    const auto& a_far = answers[0].id == 0 ? answers[0] : answers[1];
    const auto& a_near = answers[0].id == 1 ? answers[0] : answers[1];
    EXPECT_EQ(a_far.outcome, serve::Outcome::kDeadlineExceeded);
    EXPECT_TRUE(std::isinf(a_far.distance));
    EXPECT_GT(a_far.lb, 0.0f);  // the settled bound certifies the prefix
    EXPECT_EQ(a_near.outcome, serve::Outcome::kServed);
    EXPECT_EQ(a_near.distance, 0.0f);
    EXPECT_EQ(service.metrics().deadline_truncated_waves, 1u);
    EXPECT_EQ(service.metrics().deadline_exceeded, 1u);
    EXPECT_EQ(service.metrics().answered, 1u);
    // Truncated slices are upper bounds beyond the settled boundary and
    // must never be cached.
    EXPECT_EQ(service.metrics().cache.inserts, 0u);
  });
}

// Regression: the shed log is bounded by shed_log_cap — overflowing shed
// queries are still counted and rejected, but their records are dropped
// (an adversarial burst must not grow memory without bound).
TEST(ServeService, ShedLogHonorsItsCap) {
  const auto list = graph::path_graph(16, 6);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.queue_depth = 1;
    config.batch_size = 8;
    config.shed_policy = ShedPolicy::kRejectNew;
    config.shed_log_cap = 2;
    DistanceService service(comm, g, config);

    Query q;
    q.root = 0;
    for (std::uint64_t i = 0; i < 5; ++i) {
      q.id = i;
      q.target = i;
      const bool admitted = service.submit(q);
      EXPECT_EQ(admitted, i == 0) << "query " << i;
    }
    ASSERT_EQ(service.shed_log().size(), 2u);
    EXPECT_EQ(service.shed_log()[0].id, 1u);
    EXPECT_EQ(service.shed_log()[1].id, 2u);
    EXPECT_EQ(service.metrics().shed, 4u);
    EXPECT_EQ(service.metrics().shed_log_overflow, 2u);
  });
}

TEST(ServeService, WarmCacheSkipsWaves) {
  const auto list = graph::random_graph(64, 256, 12);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);

    WorkloadConfig wl;
    wl.seed = 5;
    wl.ticks = 8;
    wl.arrivals_per_tick = 2.0;
    wl.roots = {1, 2, 3};
    wl.num_vertices = g.num_vertices;
    const Workload workload(wl);

    ServeConfig config;
    DistanceService service(comm, g, config);
    const auto cold =
        serve::run_workload(comm, g, config, workload, false, &service);
    ASSERT_GT(cold.metrics.answered, 0u);
    EXPECT_GT(cold.metrics.waves, 0u);

    // Same trace again on the warm service: every root is resident, so
    // no wave dispatches at all and every lookup hits.
    const auto warm =
        serve::run_workload(comm, g, config, workload, false, &service);
    EXPECT_EQ(warm.metrics.answered, cold.metrics.answered);
    EXPECT_EQ(warm.metrics.waves, 0u);
    EXPECT_DOUBLE_EQ(warm.metrics.cache.hit_rate(), 1.0);
  });
}

TEST(ServeService, MetricsAgreeAcrossRanks) {
  const auto list = graph::random_graph(80, 320, 17);
  const int ranks = 4;
  std::vector<std::vector<std::uint64_t>> per_rank(ranks);
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    WorkloadConfig wl;
    wl.seed = 3;
    wl.ticks = 16;
    wl.arrivals_per_tick = 3.0;
    wl.roots = {0, 10, 20, 30};
    wl.num_vertices = g.num_vertices;
    ServeConfig config;
    config.queue_depth = 8;  // tight: force some shedding too
    const auto run = serve::run_workload(comm, g, config, Workload(wl));
    const auto& m = run.metrics;
    per_rank[static_cast<std::size_t>(comm.rank())] = {
        m.arrived,      m.admitted, m.shed,
        m.answered,     m.batches,  m.waves,
        m.fetch_rounds, m.cache.hits, m.cache.misses,
        m.cache.evictions};
  });
  for (int r = 1; r < ranks; ++r) {
    EXPECT_EQ(per_rank[static_cast<std::size_t>(r)], per_rank[0])
        << "rank " << r;
  }
}

TEST(ServeService, ValidatesQueriesAndConfig) {
  const auto list = graph::path_graph(8, 2);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);

    ServeConfig bad = {};
    bad.queue_depth = 0;
    EXPECT_THROW(DistanceService(comm, g, bad), std::invalid_argument);
    bad = {};
    bad.batch_size = 0;
    EXPECT_THROW(DistanceService(comm, g, bad), std::invalid_argument);
    bad = {};
    bad.facilities = {g.num_vertices};
    EXPECT_THROW(DistanceService(comm, g, bad), std::out_of_range);
    bad = {};
    bad.shed_log_cap = 0;
    EXPECT_THROW(DistanceService(comm, g, bad), std::invalid_argument);
    bad = {};
    bad.fault.max_wave_attempts = 0;
    EXPECT_THROW(DistanceService(comm, g, bad), std::invalid_argument);

    DistanceService service(comm, g, ServeConfig{});
    Query q;
    q.root = g.num_vertices;  // out of range
    q.target = 0;
    EXPECT_THROW(service.submit(q), std::out_of_range);
    q.root = 0;
    q.kind = QueryKind::kNearestFacility;  // no facility set configured
    EXPECT_THROW(service.submit(q), std::invalid_argument);
  });
}

// Regression: submit() bumped `arrived` before validating, so a rejected
// query still counted — and on an SPMD run only the ranks that caught the
// throw kept going, with metrics permanently skewed from the rest.
TEST(ServeService, RejectedSubmissionLeavesMetricsUntouched) {
  const auto list = graph::path_graph(8, 2);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    DistanceService service(comm, g, ServeConfig{});
    Query bad;
    bad.root = g.num_vertices;  // out of range
    EXPECT_THROW(service.submit(bad), std::out_of_range);
    EXPECT_EQ(service.metrics().arrived, 0u);

    Query good;
    good.root = 0;
    good.target = 3;
    ASSERT_TRUE(service.submit(good));
    EXPECT_EQ(service.metrics().arrived, 1u);
    EXPECT_EQ(service.metrics().admitted, 1u);
  });
}

// The simulated clock must never move backwards: a stale `now` would make
// latency_ticks underflow to ~2^64 and poison the histograms.
TEST(ServeService, BackwardsClockIsRejected) {
  const auto list = graph::path_graph(8, 2);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    DistanceService service(comm, g, ServeConfig{});
    (void)service.tick(5);
    (void)service.tick(5);  // equal is fine
    EXPECT_THROW(service.tick(4), std::invalid_argument);
    // reset_metrics restarts the watermark for a new measured phase.
    service.reset_metrics();
    (void)service.tick(0);
  });
}

// A flush can complete a query whose recorded arrival tick lies beyond
// the drain clock; latency saturates at 0 instead of wrapping.
TEST(ServeService, LatencySaturatesWhenCompletionPrecedesArrival) {
  const auto list = graph::path_graph(8, 2);
  simmpi::World world(1);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    DistanceService service(comm, g, ServeConfig{});
    Query q;
    q.root = 0;
    q.target = 4;
    q.arrival_tick = 100;  // claims to arrive in the future
    ASSERT_TRUE(service.submit(q));
    const auto answers = service.drain(0);
    ASSERT_EQ(answers.size(), 1u);
    EXPECT_EQ(answers[0].latency_ticks(), 0u);
    EXPECT_EQ(service.metrics().slo_violations, 0u);
    EXPECT_LE(service.metrics().latency_ticks.max_value(), 0u);
  });
}

TEST(ServeService, RunReportJsonCarriesTheSchema) {
  const auto list = graph::random_graph(48, 192, 8);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    WorkloadConfig wl;
    wl.seed = 2;
    wl.ticks = 8;
    wl.arrivals_per_tick = 2.0;
    wl.roots = {1, 5};
    wl.num_vertices = g.num_vertices;
    ServeConfig config;
    config.facilities = {1};
    const auto run = serve::run_workload(comm, g, config, Workload(wl));
    if (comm.rank() != 0) return;

    const auto j = serve::to_json(run);
    ASSERT_TRUE(j.is_object());
    EXPECT_TRUE(j.contains("ticks_run"));
    EXPECT_TRUE(j.contains("wall_seconds"));
    EXPECT_TRUE(j.contains("throughput_qps"));
    for (const auto* key : {"wire_bytes", "relax_generated", "relax_sent",
                            "pruned_expand", "pruned_apply"}) {
      EXPECT_TRUE(j.contains(key)) << key;
    }
    ASSERT_TRUE(j.contains("metrics"));
    const auto& m = j.at("metrics");
    for (const auto* key :
         {"arrived", "admitted", "shed", "shed_rate", "answered",
          "slo_violations", "batches", "waves", "pruned_waves",
          "fetch_rounds", "oracle_exact", "oracle_unreachable",
          "adaptive_adjustments", "wave_relax_generated", "oracle_seconds",
          "latency_ticks", "queue_depth", "cache"}) {
      EXPECT_TRUE(m.contains(key)) << key;
    }
    const auto& lat = m.at("latency_ticks");
    for (const auto* key : {"p50", "p90", "p99"}) {
      EXPECT_TRUE(lat.contains(key)) << key;
    }
    const auto& cache = m.at("cache");
    for (const auto* key : {"hits", "misses", "evictions", "hit_rate"}) {
      EXPECT_TRUE(cache.contains(key)) << key;
    }

    const auto cfg = serve::to_json(config);
    for (const auto* key : {"queue_depth", "batch_size", "max_wait_ticks",
                            "shed_policy", "slo_ticks", "cache_budget_bytes",
                            "facilities", "sssp", "oracle", "adaptive"}) {
      EXPECT_TRUE(cfg.contains(key)) << key;
    }
    const auto wj = serve::to_json(wl);
    for (const auto* key : {"seed", "ticks", "arrivals_per_tick", "zipf_s",
                            "nearest_fraction", "root_universe",
                            "num_vertices"}) {
      EXPECT_TRUE(wj.contains(key)) << key;
    }
  });
}

// The YCSB-style mixed workload: long analytics jobs run alongside the
// distance reads, and the scheduler (distance micro-batch first, at most
// one analytics job per tick) must keep the distance class inside its SLO
// while the analytics class still completes.
TEST(ServeService, MixedWorkloadNeverStarvesDistanceClass) {
  const auto list = graph::random_graph(96, 384, 41);
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);

    WorkloadConfig wl;
    wl.seed = 13;
    wl.ticks = 48;
    wl.arrivals_per_tick = 2.5;
    wl.analytics_fraction = 0.35;  // heavy mix: every third arrival is a job
    wl.roots = {4, 17, 60};
    wl.num_vertices = g.num_vertices;

    ServeConfig config;
    config.batch_size = 4;
    config.max_wait_ticks = 2;
    config.queue_depth = 256;
    config.slo_ticks = 16;  // tight distance SLO, far below the horizon
    config.oracle.num_landmarks = 2;  // reachability short-circuit path

    const auto run = serve::run_workload(comm, g, config, Workload(wl),
                                         /*keep_answers=*/true);
    const auto& m = run.metrics;

    // Both classes flowed: distance reads AND analytics jobs completed.
    ASSERT_GT(m.analytics_arrived, 0u);
    EXPECT_GT(m.analytics_answered, 0u);
    const auto distance_answered = m.answered - m.analytics_answered;
    ASSERT_GT(distance_answered, 0u);

    // The no-starvation contract: the distance class never blows its SLO
    // even with analytics jobs interleaved (slo_violations is
    // distance-only by convention).
    EXPECT_EQ(m.slo_violations, 0u);
    EXPECT_LE(m.latency_ticks.quantile(0.99), config.slo_ticks);

    // Whole-graph kernels are memoized on the immutable graph: at most
    // one execution per kernel, everything else is a memo hit, and every
    // answered job was either executed or served from the memo.
    EXPECT_EQ(m.analytics_answered, m.analytics_jobs + m.analytics_memo_hits);
    for (std::size_t k = 0; k < serve::kNumAnalyticsKernels; ++k) {
      if (static_cast<serve::AnalyticsKernel>(k) !=
          serve::AnalyticsKernel::kReachability) {
        EXPECT_LE(m.kernel_jobs[k], 1u) << "kernel slot " << k;
      }
    }

    // Determinism: repeated answers of the same whole-graph kernel carry
    // the identical digest (memo or not), and distance answers are still
    // bit-identical to fresh offline runs.
    std::map<serve::AnalyticsKernel, std::uint64_t> digest_of;
    std::map<graph::VertexId, core::SequentialResult> oracle;
    for (const auto& a : run.answers) {
      if (a.kind == QueryKind::kAnalytics) {
        if (a.outcome != serve::Outcome::kServed) continue;
        if (a.kernel == serve::AnalyticsKernel::kReachability) continue;
        const auto [it, fresh] = digest_of.emplace(a.kernel, a.digest);
        if (!fresh) {
          EXPECT_EQ(a.digest, it->second) << "query " << a.id;
        }
        continue;
      }
      if (a.kind != QueryKind::kPointToPoint ||
          a.outcome != serve::Outcome::kServed) {
        continue;
      }
      if (!oracle.count(a.root)) {
        const auto mine = core::delta_stepping(comm, g, a.root, config.sssp);
        oracle.emplace(a.root, core::gather_result(comm, g, mine));
      }
      EXPECT_EQ(a.distance, oracle.at(a.root).dist[a.target])
          << "query " << a.id;
    }
  });
}

// Oracle carry-over: a pruned wave's answer is exact at its target even
// though the slice never enters the root cache.  The point cache banks
// those values, so repeating the pair is a map lookup — same bits, no
// second wave.
TEST(ServeService, PointCacheServesRepeatedPrunedPair) {
  const auto list = graph::random_graph(96, 384, 41);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.batch_size = 4;
    config.max_wait_ticks = 1;
    config.oracle.num_landmarks = 2;  // loose bounds => pruned p2p waves
    DistanceService service(comm, g, config);

    // A spread of pairs: at least one must fall outside the oracle's
    // exact cases and run as a pruned wave.
    std::vector<Answer> first;
    std::uint64_t id = 0;
    std::uint64_t now = 0;
    for (const graph::VertexId root : {3, 29, 57}) {
      for (const graph::VertexId target : {11, 44, 91}) {
        Query q;
        q.id = id++;
        q.root = root;
        q.target = target;
        q.arrival_tick = now;
        ASSERT_TRUE(service.submit(q));
        for (const auto& a : service.tick(now++)) first.push_back(a);
      }
    }
    while (service.pending() > 0) {
      for (const auto& a : service.tick(now++, /*flush=*/true)) {
        first.push_back(a);
      }
    }
    std::vector<Answer> pruned;
    for (const auto& a : first) {
      if (a.outcome == serve::Outcome::kServed && a.pruned_wave) {
        pruned.push_back(a);
      }
    }
    ASSERT_GT(pruned.size(), 0u);
    EXPECT_EQ(service.metrics().point_cache_inserts, pruned.size());
    EXPECT_EQ(service.metrics().point_cache_hits, 0u);
    const auto waves_before = service.metrics().waves;

    // Replay every pruned pair: answered from the point cache with the
    // identical distance, and not a single new wave dispatches.
    for (const auto& p : pruned) {
      Query q;
      q.id = id++;
      q.root = p.root;
      q.target = p.target;
      q.arrival_tick = now;
      ASSERT_TRUE(service.submit(q));
      bool got = false;
      while (!got) {
        for (const auto& a : service.tick(now++, /*flush=*/true)) {
          ASSERT_EQ(a.root, p.root);
          ASSERT_EQ(a.target, p.target);
          EXPECT_TRUE(a.from_point_cache) << "pair " << p.root << "->"
                                          << p.target;
          EXPECT_EQ(a.outcome, serve::Outcome::kServed);
          EXPECT_EQ(a.distance, p.distance);
          EXPECT_EQ(a.lb, a.distance);
          EXPECT_EQ(a.ub, a.distance);
          got = true;
        }
      }
    }
    EXPECT_EQ(service.metrics().point_cache_hits, pruned.size());
    EXPECT_EQ(service.metrics().waves, waves_before);
  });
}

// The point cache is FIFO-bounded: filling it past point_cache_cap evicts
// the oldest pair, which then misses (and re-runs its wave) while newer
// pairs still hit.
TEST(ServeService, PointCacheEvictsFifoAtItsCap) {
  const auto list = graph::random_graph(96, 384, 41);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const auto g = build_test_graph(comm, list);
    ServeConfig config;
    config.batch_size = 1;
    config.max_wait_ticks = 1;
    config.oracle.num_landmarks = 2;
    config.point_cache_cap = 2;
    DistanceService service(comm, g, config);

    std::vector<Answer> served;
    std::uint64_t id = 0;
    std::uint64_t now = 0;
    for (const graph::VertexId root : {3, 29, 57}) {
      for (const graph::VertexId target : {11, 44, 91}) {
        Query q;
        q.id = id++;
        q.root = root;
        q.target = target;
        q.arrival_tick = now;
        ASSERT_TRUE(service.submit(q));
        for (const auto& a : service.tick(now++, /*flush=*/true)) {
          if (a.outcome == serve::Outcome::kServed && a.pruned_wave) {
            served.push_back(a);
          }
        }
      }
    }
    if (served.size() <= config.point_cache_cap) GTEST_SKIP();
    EXPECT_EQ(service.metrics().point_cache_evictions,
              served.size() - config.point_cache_cap);
    // The oldest banked pair has been evicted: replaying it misses.
    const auto hits_before = service.metrics().point_cache_hits;
    Query q;
    q.id = id++;
    q.root = served.front().root;
    q.target = served.front().target;
    q.arrival_tick = now;
    ASSERT_TRUE(service.submit(q));
    std::vector<Answer> replay;
    while (replay.empty()) {
      for (const auto& a : service.tick(now++, /*flush=*/true)) {
        replay.push_back(a);
      }
    }
    EXPECT_FALSE(replay[0].from_point_cache);
    EXPECT_EQ(replay[0].distance, served.front().distance);
    EXPECT_EQ(service.metrics().point_cache_hits, hits_before);
  });
}

}  // namespace
