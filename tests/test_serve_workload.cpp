// Tests for the deterministic simulated-clock serving workload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "serve/workload.hpp"

namespace {

using namespace g500;
using serve::Query;
using serve::QueryKind;
using serve::Workload;
using serve::WorkloadConfig;

WorkloadConfig base_config() {
  WorkloadConfig c;
  c.seed = 42;
  c.ticks = 64;
  c.arrivals_per_tick = 3.0;
  c.zipf_s = 1.1;
  c.roots = {10, 20, 30, 40, 50, 60, 70, 80};
  c.num_vertices = 100;
  return c;
}

bool same_query(const Query& a, const Query& b) {
  return a.id == b.id && a.arrival_tick == b.arrival_tick &&
         a.kind == b.kind && a.root == b.root && a.target == b.target;
}

TEST(ServeWorkload, DeterministicAcrossInstances) {
  const Workload a(base_config());
  const Workload b(base_config());
  const auto ta = a.trace();
  const auto tb = b.trace();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_TRUE(same_query(ta[i], tb[i])) << "query " << i;
  }
  // A different seed changes the trace.
  auto other = base_config();
  other.seed = 43;
  const auto tc = Workload(other).trace();
  bool any_diff = tc.size() != ta.size();
  for (std::size_t i = 0; !any_diff && i < ta.size(); ++i) {
    any_diff = !same_query(ta[i], tc[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(ServeWorkload, TraceIsConcatenationOfArrivals) {
  const Workload w(base_config());
  std::vector<Query> stitched;
  for (std::uint64_t t = 0; t < base_config().ticks; ++t) {
    const auto batch = w.arrivals(t);
    for (const auto& q : batch) {
      EXPECT_EQ(q.arrival_tick, t);
      stitched.push_back(q);
    }
  }
  const auto full = w.trace();
  ASSERT_EQ(full.size(), stitched.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_TRUE(same_query(full[i], stitched[i])) << "query " << i;
  }
}

TEST(ServeWorkload, IdsAreSequentialFromZero) {
  const Workload w(base_config());
  const auto full = w.trace();
  ASSERT_FALSE(full.empty());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i].id, i);
  }
}

TEST(ServeWorkload, PoissonMeanIsNearLambda) {
  auto c = base_config();
  c.ticks = 4096;
  c.arrivals_per_tick = 3.0;
  const Workload w(c);
  const double mean =
      static_cast<double>(w.trace().size()) / static_cast<double>(c.ticks);
  // 4096 ticks of Poisson(3): the sample mean is within ~4 sigma of 3.
  EXPECT_NEAR(mean, 3.0, 4.0 * std::sqrt(3.0 / 4096.0));
}

TEST(ServeWorkload, ZipfSkewsTowardLowRanks) {
  auto c = base_config();
  c.ticks = 2048;
  c.zipf_s = 1.2;
  const Workload w(c);
  std::map<graph::VertexId, std::uint64_t> counts;
  for (const auto& q : w.trace()) {
    ASSERT_EQ(q.kind, QueryKind::kPointToPoint);
    counts[q.root]++;
    EXPECT_LT(q.target, c.num_vertices);
  }
  // Rank 0 of the universe must dominate the tail rank clearly.
  EXPECT_GT(counts[c.roots.front()], 2 * counts[c.roots.back()]);
  // Every root must be from the universe.
  for (const auto& [root, n] : counts) {
    EXPECT_NE(std::find(c.roots.begin(), c.roots.end(), root),
              c.roots.end())
        << "root " << root;
    (void)n;
  }
}

TEST(ServeWorkload, ZeroExponentIsRoughlyUniform) {
  auto c = base_config();
  c.ticks = 4096;
  c.zipf_s = 0.0;
  const Workload w(c);
  std::map<graph::VertexId, std::uint64_t> counts;
  for (const auto& q : w.trace()) counts[q.root]++;
  const double expect_each =
      static_cast<double>(w.trace().size()) /
      static_cast<double>(c.roots.size());
  for (const auto root : c.roots) {
    EXPECT_NEAR(static_cast<double>(counts[root]), expect_each,
                0.2 * expect_each)
        << "root " << root;
  }
}

TEST(ServeWorkload, NearestFractionMixesKinds) {
  auto c = base_config();
  c.ticks = 1024;
  c.nearest_fraction = 0.25;
  const Workload w(c);
  std::uint64_t nearest = 0;
  std::uint64_t p2p = 0;
  for (const auto& q : w.trace()) {
    (q.kind == QueryKind::kNearestFacility ? nearest : p2p)++;
  }
  ASSERT_GT(nearest + p2p, 0u);
  const double frac =
      static_cast<double>(nearest) / static_cast<double>(nearest + p2p);
  EXPECT_NEAR(frac, 0.25, 0.05);

  c.nearest_fraction = 1.0;
  c.roots.clear();  // allowed: no point-to-point queries need the universe
  for (const auto& q : Workload(c).trace()) {
    EXPECT_EQ(q.kind, QueryKind::kNearestFacility);
  }
}

// Regression: the unchunked Knuth product method underflows for large
// lambdas — exp(-1000) rounds to 0, the product loop only terminates when
// its running product underflows (~780 iterations), and every tick drew
// ~780 arrivals no matter the configured rate.  Chunking the rate keeps
// the sample mean tracking lambda.
TEST(ServeWorkload, PoissonMeanTracksLargeLambda) {
  auto c = base_config();
  c.ticks = 256;
  c.arrivals_per_tick = 1000.0;
  const Workload w(c);
  const double mean =
      static_cast<double>(w.trace().size()) / static_cast<double>(c.ticks);
  // 256 ticks of Poisson(1000): sample mean within ~4 sigma of 1000 —
  // the pre-fix generator sat pinned near 780.
  EXPECT_NEAR(mean, 1000.0, 4.0 * std::sqrt(1000.0 / 256.0));
}

TEST(ServeWorkload, RejectsInvalidConfig) {
  auto c = base_config();
  c.ticks = 0;
  EXPECT_THROW(Workload{c}, std::invalid_argument);

  c = base_config();
  c.arrivals_per_tick = -1.0;
  EXPECT_THROW(Workload{c}, std::invalid_argument);

  c = base_config();
  c.nearest_fraction = 1.5;
  EXPECT_THROW(Workload{c}, std::invalid_argument);

  c = base_config();
  c.roots.clear();  // needed while nearest_fraction < 1
  EXPECT_THROW(Workload{c}, std::invalid_argument);

  c = base_config();
  c.num_vertices = 0;
  EXPECT_THROW(Workload{c}, std::invalid_argument);
}

}  // namespace
