// Tests for the 2-D checkerboard distribution and its SSSP engine.
#include <gtest/gtest.h>

#include "core/delta_stepping.hpp"
#include "core/delta_stepping_2d.hpp"
#include "core/dijkstra.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/grid2d.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

// --------------------------------------------------------------- geometry

TEST(ProcessGrid, FactorsNearSquare) {
  EXPECT_EQ(ProcessGrid(1).rows(), 1);
  EXPECT_EQ(ProcessGrid(1).cols(), 1);
  EXPECT_EQ(ProcessGrid(4).rows(), 2);
  EXPECT_EQ(ProcessGrid(4).cols(), 2);
  EXPECT_EQ(ProcessGrid(6).rows(), 2);
  EXPECT_EQ(ProcessGrid(6).cols(), 3);
  EXPECT_EQ(ProcessGrid(12).rows(), 3);
  EXPECT_EQ(ProcessGrid(12).cols(), 4);
  EXPECT_EQ(ProcessGrid(7).rows(), 1);  // prime: degenerates to 1 x P
  EXPECT_EQ(ProcessGrid(7).cols(), 7);
}

TEST(ProcessGrid, CoordinatesRoundTrip) {
  const ProcessGrid grid(12);
  for (int r = 0; r < 12; ++r) {
    EXPECT_EQ(grid.rank_at(grid.row_of(r), grid.col_of(r)), r);
  }
}

TEST(ProcessGrid, EdgeHomeLiesInExpectedRowAndColumn) {
  const ProcessGrid grid(16);
  for (int ou = 0; ou < 16; ++ou) {
    for (int ov = 0; ov < 16; ++ov) {
      const int home = grid.edge_home(ou, ov);
      // Column of the source's owner: the owner can broadcast down it.
      EXPECT_EQ(grid.col_of(home), grid.col_of(ou));
      // Row of the destination's owner: candidates stay in the row.
      EXPECT_EQ(grid.row_of(home), grid.row_of(ov));
    }
  }
}

TEST(ProcessGrid, RejectsZeroRanks) {
  EXPECT_THROW(ProcessGrid(0), std::invalid_argument);
}

// ------------------------------------------------------------ SourceBlock

TEST(SourceBlock, GroupsAndSplits) {
  std::vector<WireEdge> edges = {
      {5, 1, 0.9f}, {5, 2, 0.1f}, {7, 3, 0.5f}};
  const SourceBlock block(std::move(edges));
  EXPECT_EQ(block.num_sources(), 2u);
  EXPECT_EQ(block.num_edges(), 3u);
  const auto r5 = block.find(5);
  ASSERT_EQ(r5.last - r5.first, 2u);
  EXPECT_EQ(block.dst(r5.first), 2u);  // weight-sorted
  EXPECT_EQ(block.split_at(r5, 0.5f) - r5.first, 1u);
  EXPECT_TRUE(block.find(6).empty());
}

// ------------------------------------------------------------------ build

TEST(Build2D, EdgeCountsMatch1DBuild) {
  KroneckerParams params;
  params.scale = 9;
  simmpi::World world(6);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph one_d = build_kronecker(comm, params);
    EdgeList slice;
    slice.num_vertices = params.num_vertices();
    {
      const std::uint64_t total = params.num_edges();
      const auto P = static_cast<std::uint64_t>(comm.size());
      const auto r = static_cast<std::uint64_t>(comm.rank());
      slice.edges = kronecker_slice(params, total * r / P,
                                    total * (r + 1) / P);
    }
    const Dist2DGraph two_d = build_2d(comm, slice, params.num_vertices());
    EXPECT_EQ(two_d.num_directed_edges, one_d.num_directed_edges);
    EXPECT_EQ(two_d.num_input_edges, one_d.num_input_edges);
    // Owned degrees agree with the 1-D CSR.
    for (LocalId v = 0; v < one_d.csr.num_local(); ++v) {
      EXPECT_EQ(two_d.owned_degree[v], one_d.csr.degree(v)) << "vertex " << v;
    }
  });
}

TEST(Build2D, SelfLoopsAndDuplicatesCleaned) {
  EdgeList list;
  list.num_vertices = 8;
  list.edges = {{0, 1, 0.9f}, {1, 0, 0.2f}, {3, 3, 0.5f}, {2, 5, 0.4f}};
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const Dist2DGraph g = build_2d(
        comm, slice_for_rank(list, comm.rank(), comm.size()), 8);
    EXPECT_EQ(g.num_directed_edges, 4u);  // {0,1} and {2,5}, both ways
  });
}

// ----------------------------------------------------------------- engine

class TwoDSweep : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(Ranks, TwoDSweep,
                         ::testing::Values(1, 2, 4, 6, 8, 9, 12, 16));

TEST_P(TwoDSweep, MatchesDijkstraOnKronecker) {
  const int ranks = GetParam();
  KroneckerParams params;
  params.scale = 8;
  params.edgefactor = 8;
  const EdgeList whole = kronecker_graph(params);
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const Dist2DGraph g = build_2d(
        comm, slice_for_rank(whole, comm.rank(), comm.size()),
        whole.num_vertices);
    for (const VertexId root : {VertexId{0}, VertexId{100}}) {
      const auto mine = core::delta_stepping_2d(comm, g, root);
      const auto dist = comm.allgatherv(mine.dist);
      const auto want = core::dijkstra(whole, root);
      for (std::size_t v = 0; v < want.dist.size(); ++v) {
        EXPECT_FLOAT_EQ(dist[v], want.dist[v])
            << "ranks " << ranks << " root " << root << " vertex " << v;
      }
    }
  });
}

TEST_P(TwoDSweep, MatchesDijkstraOnGrid) {
  const int ranks = GetParam();
  const EdgeList whole = grid_graph(9, 13, 8);
  simmpi::World world(ranks);
  world.run([&](simmpi::Comm& comm) {
    const Dist2DGraph g = build_2d(
        comm, slice_for_rank(whole, comm.rank(), comm.size()),
        whole.num_vertices);
    const auto mine = core::delta_stepping_2d(comm, g, 0);
    const auto dist = comm.allgatherv(mine.dist);
    const auto want = core::dijkstra(whole, 0);
    for (std::size_t v = 0; v < want.dist.size(); ++v) {
      EXPECT_FLOAT_EQ(dist[v], want.dist[v]) << "vertex " << v;
    }
  });
}

TEST(TwoD, AgreesWithOneDEngine) {
  KroneckerParams params;
  params.scale = 9;
  const EdgeList whole = kronecker_graph(params);
  simmpi::World world(8);
  world.run([&](simmpi::Comm& comm) {
    const DistGraph one_d = build_kronecker(comm, params);
    const Dist2DGraph two_d = build_2d(
        comm, slice_for_rank(whole, comm.rank(), comm.size()),
        whole.num_vertices);
    const auto a = core::delta_stepping(comm, one_d, 5);
    const auto b = core::delta_stepping_2d(comm, two_d, 5);
    ASSERT_EQ(a.dist.size(), b.dist.size());
    for (std::size_t v = 0; v < a.dist.size(); ++v) {
      EXPECT_EQ(a.dist[v], b.dist[v]) << "local vertex " << v;
    }
    // The 2-D result passes the official validation against the 1-D graph
    // (same ownership, so the result formats are interchangeable).
    EXPECT_TRUE(core::validate_sssp(comm, one_d, 5, b).ok);
  });
}

TEST(TwoD, MessagePartnersBoundedByRowPlusColumn) {
  // The point of the checkerboard: each rank talks to at most
  // R + C (+ itself) distinct ranks, not P.
  KroneckerParams params;
  params.scale = 9;
  constexpr int kRanks = 16;  // 4 x 4 grid
  const EdgeList whole = kronecker_graph(params);
  // Construction routes input slices anywhere, so build first, reset the
  // traffic counters, then measure the solve alone.
  simmpi::World solve_world(kRanks);
  std::vector<Dist2DGraph> graphs(kRanks);
  solve_world.run([&](simmpi::Comm& comm) {
    graphs[comm.rank()] = build_2d(
        comm, slice_for_rank(whole, comm.rank(), comm.size()),
        whole.num_vertices);
  });
  solve_world.reset_stats();
  solve_world.run([&](simmpi::Comm& comm) {
    (void)core::delta_stepping_2d(comm, graphs[comm.rank()], 1);
  });
  const ProcessGrid grid(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const auto& bytes_to = solve_world.rank_stats(r).bytes_to;
    int partners = 0;
    for (int d = 0; d < kRanks; ++d) {
      if (bytes_to[d] > 0 && d != r) ++partners;
    }
    EXPECT_LE(partners, grid.rows() + grid.cols())
        << "rank " << r << " exceeded its row+column neighbourhood";
  }
}

TEST(TwoD, RootOutOfRangeThrows) {
  EdgeList list = path_graph(4);
  simmpi::World world(4);
  EXPECT_THROW(world.run([&](simmpi::Comm& comm) {
                 const Dist2DGraph g = build_2d(
                     comm, slice_for_rank(list, comm.rank(), comm.size()), 4);
                 (void)core::delta_stepping_2d(comm, g, 99);
               }),
               std::out_of_range);
}

TEST(TwoD, DisconnectedAndEdgeless) {
  EdgeList list;
  list.num_vertices = 10;
  list.edges = {{0, 1, 0.3f}};
  simmpi::World world(4);
  world.run([&](simmpi::Comm& comm) {
    const Dist2DGraph g = build_2d(comm, slice_for_rank(list, comm.rank(),
                                                        comm.size()),
                                   10);
    const auto mine = core::delta_stepping_2d(comm, g, 0);
    const auto dist = comm.allgatherv(mine.dist);
    EXPECT_EQ(dist[0], 0.0f);
    EXPECT_GT(dist[1], 0.0f);
    EXPECT_NE(dist[1], kInfDistance);
    for (VertexId v = 2; v < 10; ++v) EXPECT_EQ(dist[v], kInfDistance);
  });
}

}  // namespace
