// Tests for the two-level supernode-aggregated alltoallv.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/delta_stepping.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/hierarchical.hpp"

namespace {

using namespace g500;

class HierarchicalSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(RanksGroups, HierarchicalSweep,
                         ::testing::Combine(::testing::Values(4, 6, 8, 12, 16),
                                            ::testing::Values(2, 3, 4)));

TEST_P(HierarchicalSweep, DeliversSamePayloadsAsFlat) {
  const auto [ranks, group] = GetParam();
  simmpi::World world(ranks);
  world.run([group = group](simmpi::Comm& comm) {
    const int P = comm.size();
    std::vector<std::vector<std::uint64_t>> out(P);
    // rank r sends {r * 1000 + d + i} for i < (r + d) % 3 items to d.
    for (int d = 0; d < P; ++d) {
      for (int i = 0; i < (comm.rank() + d) % 3; ++i) {
        out[d].push_back(
            static_cast<std::uint64_t>(comm.rank() * 1000 + d * 10 + i));
      }
    }
    auto flat = comm.alltoallv(out);
    auto routed = simmpi::two_level_alltoallv(comm, out, group);
    // Same multiset of payloads; order may differ by design.
    std::sort(flat.begin(), flat.end());
    std::sort(routed.begin(), routed.end());
    EXPECT_EQ(flat, routed);
  });
}

TEST(Hierarchical, DegenerateGroupsFallBackToFlat) {
  simmpi::World world(4);
  world.run([](simmpi::Comm& comm) {
    std::vector<std::vector<int>> out(4);
    out[(comm.rank() + 1) % 4] = {comm.rank()};
    const auto a = simmpi::two_level_alltoallv(comm, out, 0);
    const auto b = simmpi::two_level_alltoallv(comm, out, 1);
    const auto c = simmpi::two_level_alltoallv(comm, out, 4);
    const auto d = simmpi::two_level_alltoallv(comm, out, 99);
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
    EXPECT_EQ(a, d);
  });
}

TEST(Hierarchical, ReducesMessageCountOnDenseExchanges) {
  // All-pairs traffic: flat needs P*(P-1) messages; the two-level schedule
  // concentrates it into far fewer, larger messages.
  constexpr int kRanks = 16;
  auto count_messages = [](bool hierarchical) {
    simmpi::World world(kRanks);
    world.run([hierarchical](simmpi::Comm& comm) {
      std::vector<std::vector<std::uint32_t>> out(kRanks);
      for (int d = 0; d < kRanks; ++d) {
        out[d] = {static_cast<std::uint32_t>(comm.rank()), 1u, 2u};
      }
      if (hierarchical) {
        (void)simmpi::two_level_alltoallv(comm, out, 4);
      } else {
        (void)comm.alltoallv(out);
      }
    });
    return world.aggregate_stats().alltoallv.messages;
  };
  const auto flat = count_messages(false);
  const auto routed = count_messages(true);
  EXPECT_EQ(flat, static_cast<std::uint64_t>(kRanks) * (kRanks - 1));
  EXPECT_LT(routed, flat);
}

TEST(Hierarchical, MismatchedOutboxThrows) {
  simmpi::World world(4);
  EXPECT_THROW(world.run([](simmpi::Comm& comm) {
                 std::vector<std::vector<int>> bad(2);
                 (void)simmpi::two_level_alltoallv(comm, bad, 2);
               }),
               std::invalid_argument);
}

TEST(Hierarchical, EngineProducesIdenticalDistances) {
  graph::KroneckerParams params;
  params.scale = 9;
  std::vector<float> reference;
  for (const int group : {0, 2, 4}) {
    simmpi::World world(8);
    world.run([&](simmpi::Comm& comm) {
      const graph::DistGraph g = graph::build_kronecker(comm, params);
      core::SsspConfig config;
      config.hierarchical_group = group;
      const auto mine = core::delta_stepping(comm, g, 3, config);
      EXPECT_TRUE(core::validate_sssp(comm, g, 3, mine).ok);
      const auto whole = core::gather_result(comm, g, mine);
      if (comm.rank() == 0) {
        if (reference.empty()) {
          reference = whole.dist;
        } else {
          EXPECT_EQ(whole.dist, reference) << "group " << group;
        }
      }
    });
  }
}

TEST(Hierarchical, UnevenLastGroupStillDelivers) {
  // 10 ranks with groups of 4: the last group has only 2 members.
  simmpi::World world(10);
  world.run([](simmpi::Comm& comm) {
    std::vector<std::vector<int>> out(10);
    for (int d = 0; d < 10; ++d) out[d] = {comm.rank() * 100 + d};
    auto got = simmpi::two_level_alltoallv(comm, out, 4);
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got.size(), 10u);
    for (int s = 0; s < 10; ++s) {
      EXPECT_EQ(got[s], s * 100 + comm.rank());
    }
  });
}

}  // namespace
