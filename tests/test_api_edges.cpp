// Coverage for less-travelled API corners across modules: argument
// validation, empty/degenerate inputs, and accessor contracts that no
// larger test exercises directly.
#include <gtest/gtest.h>

#include <sstream>

#include "core/runner.hpp"
#include "graph/grid2d.hpp"
#include "graph/kronecker.hpp"
#include "model/machine.hpp"
#include "model/replay.hpp"
#include "net/costmodel.hpp"
#include "simmpi/comm.hpp"
#include "util/random.hpp"
#include "util/table.hpp"

namespace {

using namespace g500;

TEST(ApiEdges, AllreduceVecLengthMismatchThrows) {
  simmpi::World world(2);
  EXPECT_THROW(
      world.run([](simmpi::Comm& comm) {
        std::vector<int> mine(static_cast<std::size_t>(comm.rank()) + 1, 1);
        (void)comm.allreduce_vec<int>(mine,
                                      [](int a, int b) { return a + b; });
      }),
      std::invalid_argument);
}

TEST(ApiEdges, SourceBlockAccessorsOnEmptyBlock) {
  const graph::SourceBlock block{std::vector<graph::WireEdge>{}};
  EXPECT_EQ(block.num_sources(), 0u);
  EXPECT_EQ(block.num_edges(), 0u);
  EXPECT_TRUE(block.find(42).empty());
}

TEST(ApiEdges, SourceBlockSourceAccessor) {
  std::vector<graph::WireEdge> edges = {{9, 1, 0.5f}, {3, 2, 0.25f}};
  const graph::SourceBlock block(std::move(edges));
  ASSERT_EQ(block.num_sources(), 2u);
  EXPECT_EQ(block.source(0), 3u);  // sorted
  EXPECT_EQ(block.source(1), 9u);
}

TEST(ApiEdges, KroneckerParamsAccessors) {
  graph::KroneckerParams p;
  p.scale = 5;
  p.edgefactor = 3;
  EXPECT_EQ(p.num_vertices(), 32u);
  EXPECT_EQ(p.num_edges(), 96u);
}

TEST(ApiEdges, MachineTopologyAndScaling) {
  const auto m = model::Machine::commodity_cluster(100);
  EXPECT_EQ(m.topology().num_nodes(), 128);  // 2 supernodes of 64, rounded
  const auto tiny = m.scaled_to(1);
  EXPECT_EQ(tiny.topology().num_supernodes(), 1);
  EXPECT_EQ(tiny.total_cores(), 64);
}

TEST(ApiEdges, ReplayReportPrintEmptyTrace) {
  const auto report = model::replay_trace({}, model::Machine::new_sunway(),
                                          16, 1, 16);
  EXPECT_EQ(report.total_seconds, 0.0);
  std::ostringstream out;
  report.print(out);
  EXPECT_NE(out.str().find("0 rounds"), std::string::npos);
}

TEST(ApiEdges, TableHandlesShortRows) {
  util::Table t({"a", "b", "c"});
  t.row().add("only-one");  // fewer cells than headers
  std::ostringstream out;
  t.print(out);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

TEST(ApiEdges, RunnerZeroRootsYieldsEmptyReport) {
  graph::KroneckerParams params;
  params.scale = 7;
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    const graph::DistGraph g = graph::build_kronecker(comm, params);
    core::RunnerOptions opts;
    opts.num_roots = 0;
    const auto report = core::run_benchmark(comm, g, opts);
    EXPECT_TRUE(report.runs.empty());
    EXPECT_TRUE(report.all_valid);
    EXPECT_EQ(report.harmonic_mean_teps, 0.0);
  });
}

TEST(ApiEdges, BroadcastEveryRootDeliversDistinctPayloads) {
  // Regression surface for slot reuse across back-to-back collectives.
  simmpi::World world(5);
  world.run([](simmpi::Comm& comm) {
    for (int repeat = 0; repeat < 20; ++repeat) {
      std::uint64_t v =
          comm.rank() == repeat % 5
              ? util::hash64(static_cast<std::uint64_t>(repeat), 1)
              : 0;
      comm.broadcast(v, repeat % 5);
      EXPECT_EQ(v, util::hash64(static_cast<std::uint64_t>(repeat), 1));
    }
  });
}

TEST(ApiEdges, ProcessGridLargePrimeDegeneratesGracefully) {
  const graph::ProcessGrid grid(13);
  EXPECT_EQ(grid.rows(), 1);
  EXPECT_EQ(grid.cols(), 13);
  EXPECT_EQ(grid.edge_home(5, 7), 5);  // 1 x P: column of the source owner
}

TEST(ApiEdges, CostModelFlatVsSunwayOrdering) {
  // A tapered Sunway machine can never beat the ideal crossbar.
  net::LinkParams link;
  const net::FlatTopology flat(1024, link);
  const net::SunwayTopology sunway(4, 256, 0.25, link);
  const net::CostModel flat_cost(flat, 1);
  const net::CostModel sunway_cost(sunway, 1);
  const net::AlltoallTraffic traffic{1e7, 1e10, 0.5};
  EXPECT_LE(flat_cost.alltoallv_seconds(traffic, 1024),
            sunway_cost.alltoallv_seconds(traffic, 1024));
}

}  // namespace
