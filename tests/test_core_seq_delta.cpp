// Tests for the sequential Meyer-Sanders reference engine.
#include <gtest/gtest.h>

#include "core/dijkstra.hpp"
#include "core/seq_delta_stepping.hpp"
#include "graph/generators.hpp"
#include "graph/kronecker.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

class SeqDeltaSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

INSTANTIATE_TEST_SUITE_P(
    GraphAndDelta, SeqDeltaSweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(0.0, 0.01, 0.1, 0.5, 2.0)));

EdgeList graph_case(int idx) {
  switch (idx) {
    case 0: {
      KroneckerParams p;
      p.scale = 9;
      p.edgefactor = 8;
      return kronecker_graph(p);
    }
    case 1:
      return grid_graph(10, 13, 3);
    case 2:
      return path_graph(100, 4);
    case 3:
      return star_graph(80, 5);
    default:
      return random_graph(150, 600, 6);
  }
}

TEST_P(SeqDeltaSweep, MatchesDijkstra) {
  const auto [graph_idx, delta] = GetParam();
  const EdgeList list = graph_case(graph_idx);
  for (const VertexId root : {VertexId{0}, list.num_vertices / 3}) {
    const auto got = core::seq_delta_stepping(list, root, delta);
    const auto want = core::dijkstra(list, root);
    ASSERT_EQ(got.dist.size(), want.dist.size());
    for (VertexId v = 0; v < list.num_vertices; ++v) {
      EXPECT_FLOAT_EQ(got.dist[v], want.dist[v])
          << "delta " << delta << " root " << root << " vertex " << v;
    }
  }
}

TEST(SeqDelta, SmallerDeltaMeansMoreBuckets) {
  const EdgeList list = random_graph(200, 800, 7);
  core::SeqDeltaStats fine;
  core::SeqDeltaStats coarse;
  (void)core::seq_delta_stepping(list, 0, 0.01, &fine);
  (void)core::seq_delta_stepping(list, 0, 0.5, &coarse);
  EXPECT_GT(fine.buckets_processed, coarse.buckets_processed);
}

TEST(SeqDelta, LargerDeltaMeansMoreRelaxations) {
  // Coarse buckets re-relax more (Bellman-Ford-ward drift).
  const EdgeList list = random_graph(300, 2400, 9);
  core::SeqDeltaStats fine;
  core::SeqDeltaStats coarse;
  (void)core::seq_delta_stepping(list, 0, 0.05, &fine);
  (void)core::seq_delta_stepping(list, 0, 10.0, &coarse);
  EXPECT_GE(coarse.relaxations, fine.relaxations);
}

TEST(SeqDelta, BadInputsThrow) {
  const EdgeList list = path_graph(4);
  EXPECT_THROW((void)core::seq_delta_stepping(list, 9), std::out_of_range);
}

TEST(SeqDelta, UnreachableStayInfinite) {
  EdgeList list;
  list.num_vertices = 5;
  list.edges = {{0, 1, 0.5f}};
  const auto got = core::seq_delta_stepping(list, 0);
  EXPECT_EQ(got.dist[4], kInfDistance);
  EXPECT_EQ(got.parent[4], kNoVertex);
}

}  // namespace
