// Cross-module integration tests: the optimization claims the paper's
// evaluation rests on, verified end-to-end on the simulated runtime.
#include <gtest/gtest.h>

#include "core/delta_stepping.hpp"
#include "core/runner.hpp"
#include "core/validate.hpp"
#include "graph/builder.hpp"
#include "model/projection.hpp"
#include "simmpi/comm.hpp"

namespace {

using namespace g500;
using namespace g500::graph;

/// Run one SSSP with `config` and return the aggregate wire bytes it cost.
std::uint64_t wire_bytes_for(const KroneckerParams& params,
                             const core::SsspConfig& config, int ranks,
                             BuildOptions build_opts = {}) {
  simmpi::World world(ranks);
  std::uint64_t bytes = 0;
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params, build_opts);
    // Isolate the solve's traffic from construction by measuring the delta
    // around it (alltoallv relaxations + allgatherv frontier broadcasts).
    const std::uint64_t before = comm.allreduce_sum(
        comm.stats().alltoallv.bytes + comm.stats().allgather.bytes);
    const auto mine = core::delta_stepping(comm, g, 1, config);
    const std::uint64_t after = comm.allreduce_sum(
        comm.stats().alltoallv.bytes + comm.stats().allgather.bytes);
    EXPECT_TRUE(core::validate_sssp(comm, g, 1, mine).ok);
    if (comm.rank() == 0) bytes = after - before;
  });
  return bytes;
}

TEST(Integration, CoalescingReducesWireBytes) {
  KroneckerParams params;
  params.scale = 11;
  params.edgefactor = 16;
  core::SsspConfig plain = core::SsspConfig::plain();
  core::SsspConfig coalesced = core::SsspConfig::plain();
  coalesced.coalesce = true;
  const auto without = wire_bytes_for(params, plain, 4);
  const auto with = wire_bytes_for(params, coalesced, 4);
  EXPECT_LT(with, without);
}

TEST(Integration, HubCacheReducesWireBytesOnSkewedGraphs) {
  KroneckerParams params;
  params.scale = 11;
  params.edgefactor = 16;
  core::SsspConfig base = core::SsspConfig::plain();
  base.coalesce = true;
  core::SsspConfig hub = base;
  hub.hub_cache = true;
  const auto without = wire_bytes_for(params, base, 4);
  const auto with = wire_bytes_for(params, hub, 4);
  EXPECT_LT(with, without);
}

TEST(Integration, LocalFusionKeepsLocalCandidatesOutOfTheExchange) {
  // Fusion applies on-rank candidates directly, so the number of requests
  // routed through the alltoallv exchange must drop by exactly the fused
  // share.
  KroneckerParams params;
  params.scale = 10;
  core::SsspConfig base = core::SsspConfig::plain();
  core::SsspConfig fused = base;
  fused.local_fusion = true;
  auto sent_with = [&](const core::SsspConfig& config) {
    simmpi::World world(2);
    std::uint64_t sent = 0;
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      core::SsspStats stats;
      const auto mine = core::delta_stepping(comm, g, 1, config, &stats);
      EXPECT_TRUE(core::validate_sssp(comm, g, 1, mine).ok);
      const auto total = comm.allreduce_sum(stats.relax_sent);
      if (comm.rank() == 0) sent = total;
    });
    return sent;
  };
  EXPECT_LT(sent_with(fused), sent_with(base));
}

TEST(Integration, AllConfigurationsAgreeOnDistances) {
  KroneckerParams params;
  params.scale = 10;
  std::vector<core::SsspConfig> configs;
  configs.push_back(core::SsspConfig{});
  configs.push_back(core::SsspConfig::plain());
  {
    core::SsspConfig c;
    c.pull_threshold = 0.0;
    c.pull_bias = 0.0;
    configs.push_back(c);
  }
  std::vector<float> reference;
  for (const auto& config : configs) {
    simmpi::World world(4);
    world.run([&](simmpi::Comm& comm) {
      const DistGraph g = build_kronecker(comm, params);
      const auto mine = core::delta_stepping(comm, g, 7, config);
      const auto whole = core::gather_result(comm, g, mine);
      if (comm.rank() == 0) {
        if (reference.empty()) {
          reference = whole.dist;
        } else {
          ASSERT_EQ(whole.dist.size(), reference.size());
          for (std::size_t v = 0; v < reference.size(); ++v) {
            EXPECT_EQ(whole.dist[v], reference[v]) << "vertex " << v;
          }
        }
      }
    });
  }
}

TEST(Integration, FullProtocolThenProjection) {
  // The complete workflow of the record submission, miniaturized: run the
  // official protocol, calibrate the analytic model from its measurements,
  // project to the record configuration.
  KroneckerParams params;
  params.scale = 10;
  simmpi::World world(4);
  core::BenchmarkReport report;
  world.reset_stats();
  world.run([&](simmpi::Comm& comm) {
    const DistGraph g = build_kronecker(comm, params);
    core::RunnerOptions opts;
    opts.num_roots = 2;
    const auto r = core::run_benchmark(comm, g, opts);
    if (comm.rank() == 0) report = r;
    comm.barrier();
  });
  ASSERT_TRUE(report.all_valid);

  const auto cal = model::Calibration::from_run(
      report.stats, world.aggregate_stats(), params.num_edges(),
      report.runs.size(), params.scale);
  model::Projection proj(model::Machine::new_sunway(), cal);
  const auto record = proj.predict(43, 107520);
  EXPECT_TRUE(record.memory_feasible);
  EXPECT_GT(record.gteps, 0.0);
  EXPECT_GT(record.cores, 40'000'000);
}

TEST(Integration, PullModeSavesBytesOnDenseBuckets) {
  // Force a dense frontier regime and confirm direction switching lowers
  // alltoallv traffic (replaced by frontier broadcasts).
  KroneckerParams params;
  params.scale = 10;
  params.edgefactor = 32;  // dense: big frontiers per bucket
  core::SsspConfig push_only = core::SsspConfig::plain();
  push_only.coalesce = true;
  core::SsspConfig with_pull = push_only;
  with_pull.direction_opt = true;
  with_pull.pull_threshold = 0.01;
  const auto push_bytes = wire_bytes_for(params, push_only, 8);
  const auto pull_bytes = wire_bytes_for(params, with_pull, 8);
  EXPECT_LT(pull_bytes, push_bytes);
}

}  // namespace
