// Unit tests for the sequential Dijkstra oracle.
#include <gtest/gtest.h>

#include "core/dijkstra.hpp"
#include "graph/generators.hpp"

namespace {

using namespace g500;
using namespace g500::graph;
using core::dijkstra;

EdgeList tiny() {
  // 0 --0.5-- 1 --0.5-- 2,  0 --0.9-- 2,  3 isolated
  EdgeList g;
  g.num_vertices = 4;
  g.edges = {{0, 1, 0.5f}, {1, 2, 0.5f}, {0, 2, 0.9f}};
  return g;
}

TEST(Dijkstra, PicksTheShorterRoute) {
  const auto r = dijkstra(tiny(), 0);
  EXPECT_FLOAT_EQ(r.dist[0], 0.0f);
  EXPECT_FLOAT_EQ(r.dist[1], 0.5f);
  EXPECT_FLOAT_EQ(r.dist[2], 0.9f);  // direct edge beats 1.0 via vertex 1
  EXPECT_EQ(r.parent[2], 0u);
}

TEST(Dijkstra, RootIsItsOwnParent) {
  const auto r = dijkstra(tiny(), 1);
  EXPECT_EQ(r.parent[1], 1u);
  EXPECT_FLOAT_EQ(r.dist[1], 0.0f);
}

TEST(Dijkstra, UnreachableVerticesStayInfinite) {
  const auto r = dijkstra(tiny(), 0);
  EXPECT_EQ(r.dist[3], kInfDistance);
  EXPECT_EQ(r.parent[3], kNoVertex);
}

TEST(Dijkstra, UndirectedEdgesWorkBothWays) {
  const auto r = dijkstra(tiny(), 2);
  EXPECT_FLOAT_EQ(r.dist[0], 0.9f);
  EXPECT_FLOAT_EQ(r.dist[1], 0.5f);
}

TEST(Dijkstra, ParallelEdgesResolveToMinWeight) {
  EdgeList g;
  g.num_vertices = 2;
  g.edges = {{0, 1, 0.8f}, {1, 0, 0.3f}, {0, 1, 0.5f}};
  const auto r = dijkstra(g, 0);
  EXPECT_FLOAT_EQ(r.dist[1], 0.3f);
}

TEST(Dijkstra, SelfLoopsIgnored) {
  EdgeList g;
  g.num_vertices = 2;
  g.edges = {{0, 0, 0.1f}, {0, 1, 0.5f}};
  const auto r = dijkstra(g, 0);
  EXPECT_FLOAT_EQ(r.dist[0], 0.0f);
  EXPECT_FLOAT_EQ(r.dist[1], 0.5f);
}

TEST(Dijkstra, PathGraphAccumulatesWeights) {
  const EdgeList g = path_graph(64, 9);
  const auto r = dijkstra(g, 0);
  float acc = 0.0f;
  for (VertexId v = 1; v < 64; ++v) {
    acc = acc + g.edges[v - 1].weight;
    EXPECT_FLOAT_EQ(r.dist[v], acc);
    EXPECT_EQ(r.parent[v], v - 1);
  }
}

TEST(Dijkstra, TreeEdgesSatisfyDistanceEquation) {
  const EdgeList g = grid_graph(8, 8, 4);
  const auto r = dijkstra(g, 0);
  for (VertexId v = 1; v < g.num_vertices; ++v) {
    ASSERT_NE(r.parent[v], kNoVertex);
    // Find the parent edge weight.
    float w = -1.0f;
    for (const auto& e : g.edges) {
      if ((e.src == v && e.dst == r.parent[v]) ||
          (e.dst == v && e.src == r.parent[v])) {
        w = e.weight;
        break;
      }
    }
    ASSERT_GE(w, 0.0f);
    EXPECT_FLOAT_EQ(r.dist[v], r.dist[r.parent[v]] + w);
  }
}

TEST(Dijkstra, TriangleInequalityHoldsOnAllEdges) {
  const EdgeList g = random_graph(64, 256, 11);
  const auto r = dijkstra(g, 0);
  for (const auto& e : g.edges) {
    if (e.src == e.dst) continue;
    if (r.dist[e.src] != kInfDistance) {
      EXPECT_LE(r.dist[e.dst], r.dist[e.src] + e.weight + 1e-6f);
    }
  }
}

TEST(Dijkstra, RootOutOfRangeThrows) {
  EXPECT_THROW((void)dijkstra(tiny(), 4), std::out_of_range);
}

TEST(Dijkstra, BadEdgeEndpointThrows) {
  EdgeList g;
  g.num_vertices = 2;
  g.edges = {{0, 5, 0.5f}};
  EXPECT_THROW((void)dijkstra(g, 0), std::out_of_range);
}

}  // namespace
