// Incremental repair vs from-scratch recompute: randomized update-batch
// fuzzing across rank counts (bit-identical distances after every batch),
// localized-repair work bounds, and injected crash/stall chaos during a
// repair wave.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "core/delta_stepping.hpp"
#include "core/validate.hpp"
#include "dyn/mutable_graph.hpp"
#include "dyn/repair.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"
#include "simmpi/fault.hpp"
#include "util/random.hpp"

namespace {

using namespace g500;
using namespace g500::graph;
using dyn::EdgeUpdate;
using dyn::MutableGraph;
using dyn::UpdateOp;

using EdgeTuple = std::tuple<VertexId, VertexId, Weight>;
constexpr VertexId kRoot = 0;

/// Ring backbone (keeps vertex 0 connected to everything initially) plus
/// random chords — long shortest paths, so deletions cut real subtrees.
EdgeList fuzz_graph(VertexId n, std::uint64_t seed) {
  EdgeList input;
  input.num_vertices = n;
  util::SplitMix64 rng(seed);
  for (VertexId v = 0; v < n; ++v) {
    input.edges.push_back(
        Edge{v, (v + 1) % n, static_cast<Weight>(rng.next_double())});
  }
  for (VertexId i = 0; i < n / 2; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    input.edges.push_back(Edge{u, v, static_cast<Weight>(rng.next_double())});
  }
  return input;
}

/// Every directed edge of the committed view, gathered to all ranks —
/// the shared pool random batches draw existing edges from.
std::vector<EdgeTuple> gather_view_edges(simmpi::Comm& comm,
                                         const DistGraph& g) {
  std::vector<WireEdge> mine;
  const VertexId my_begin = g.part.begin(comm.rank());
  for (LocalId u = 0; u < static_cast<LocalId>(g.part.count(comm.rank()));
       ++u) {
    for (std::uint64_t e = g.csr.edges_begin(u); e < g.csr.edges_end(u); ++e) {
      mine.push_back(WireEdge{my_begin + u, g.csr.dst(e), g.csr.weight(e)});
    }
  }
  const auto all = comm.allgatherv(mine);
  std::vector<EdgeTuple> out;
  out.reserve(all.size());
  for (const auto& e : all) out.emplace_back(e.src, e.dst, e.weight);
  std::sort(out.begin(), out.end());
  return out;
}

/// Random batch mixing inserts (incl. self-loops), deletions of existing
/// edges, and weight sets both up and down; deterministic per (seed, pool),
/// so every rank generates the identical batch.
std::vector<EdgeUpdate> random_batch(std::uint64_t seed, VertexId n,
                                     const std::vector<EdgeTuple>& existing) {
  util::SplitMix64 rng(seed);
  std::vector<EdgeUpdate> batch;
  const int count = 5 + static_cast<int>(rng.next_below(6));
  for (int i = 0; i < count; ++i) {
    const auto roll = rng.next_below(10);
    if (roll < 4 || existing.empty()) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      const auto v = static_cast<VertexId>(rng.next_below(n));  // may self-loop
      batch.push_back(EdgeUpdate{u, v, static_cast<Weight>(rng.next_double()),
                                 UpdateOp::kInsert});
    } else {
      const auto& [u, v, w] = existing[rng.next_below(existing.size())];
      if (roll < 7) {
        batch.push_back(EdgeUpdate{u, v, 0.0f, UpdateOp::kDelete});
      } else {
        // kSet up to 2x the unit range: roughly half are increases, which
        // exercise suspect detection and descendant invalidation.
        batch.push_back(EdgeUpdate{
            u, v, static_cast<Weight>(rng.next_double() * 2), UpdateOp::kSet});
      }
    }
  }
  if (!batch.empty()) batch.push_back(batch.front());  // duplicate op
  return batch;
}

/// The fuzz loop: commit random batches, repair the chained labels, and
/// demand bit-identical distances vs a from-scratch recompute every time.
void fuzz_rounds(int P, int rounds, std::uint64_t seed,
                 const core::SsspConfig& config) {
  const auto input = fuzz_graph(128, seed);
  simmpi::World world(P);
  world.run([&](simmpi::Comm& comm) {
    MutableGraph mg(comm, build_distributed(
                              comm, slice_for_rank(input, comm.rank(), P),
                              input.num_vertices));
    auto labels = core::delta_stepping(comm, mg.view(), kRoot, config);
    for (int round = 0; round < rounds; ++round) {
      const auto existing = gather_view_edges(comm, mg.view());
      const auto batch = random_batch(seed + 17 * round + 1, 128, existing);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (static_cast<int>(i % static_cast<std::size_t>(P)) == comm.rank()) {
          mg.stage(batch[i]);
        }
      }
      const auto summary = mg.commit_batch();

      dyn::RepairStats rs;
      dyn::incremental_sssp_repair(comm, mg.view(), kRoot, summary, labels,
                                   config, &rs);
      const auto scratch = core::delta_stepping(comm, mg.view(), kRoot, config);
      ASSERT_EQ(labels.dist, scratch.dist)
          << "repair diverges from recompute, P=" << P << " round=" << round;
      if (round % 3 == 0) {
        const auto verdict =
            core::validate_sssp(comm, mg.view(), kRoot, labels);
        EXPECT_TRUE(verdict.ok) << "repaired tree invalid, P=" << P
                                << " round=" << round;
      }
    }
  });
}

TEST(IncrementalRepair, FuzzedBatchesMatchRecomputeAcrossRanks) {
  for (const int P : {1, 2, 3, 5, 8}) {
    fuzz_rounds(P, 6, 0xF122 + static_cast<std::uint64_t>(P), {});
  }
}

TEST(IncrementalRepair, FuzzedBatchesMatchRecomputePlainConfig) {
  for (const int P : {1, 3, 8}) {
    fuzz_rounds(P, 5, 0x9A17 + static_cast<std::uint64_t>(P),
                core::SsspConfig::plain());
  }
}

TEST(IncrementalRepair, EmptyCommitIsNoOpAndKeepsLabels) {
  const auto input = fuzz_graph(64, 0xE0);
  simmpi::World world(2);
  world.run([&](simmpi::Comm& comm) {
    MutableGraph mg(comm, build_distributed(
                              comm, slice_for_rank(input, comm.rank(), 2),
                              input.num_vertices));
    auto labels = core::delta_stepping(comm, mg.view(), kRoot);
    const auto before = labels;
    const auto summary = mg.commit_batch();  // nothing staged
    EXPECT_TRUE(summary.applied.empty());
    dyn::RepairStats rs;
    dyn::incremental_sssp_repair(comm, mg.view(), kRoot, summary, labels, {},
                                 &rs);
    EXPECT_EQ(rs.seeds, 0u);
    EXPECT_EQ(rs.invalidated, 0u);
    EXPECT_EQ(labels.dist, before.dist);
    EXPECT_EQ(labels.parent, before.parent);
  });
}

// A localized batch must cost the repair strictly less relaxation work
// than recomputing from scratch — the claim bench_dynamic gates on.
TEST(IncrementalRepair, LocalizedBatchDoesLessWorkThanRecompute) {
  const auto input = fuzz_graph(512, 0x10CA1);
  const int P = 4;
  simmpi::World world(P);
  world.run([&](simmpi::Comm& comm) {
    MutableGraph mg(comm, build_distributed(
                              comm, slice_for_rank(input, comm.rank(), P),
                              input.num_vertices));
    auto labels = core::delta_stepping(comm, mg.view(), kRoot);
    // One fresh edge far from the root, at a weight unlikely to shorten
    // much beyond its own neighborhood.
    if (comm.rank() == 0) mg.stage_insert(300, 303, 0.9f);
    const auto summary = mg.commit_batch();

    dyn::RepairStats rs;
    dyn::incremental_sssp_repair(comm, mg.view(), kRoot, summary, labels, {},
                                 &rs);
    core::SsspStats scratch_stats;
    const auto scratch =
        core::delta_stepping(comm, mg.view(), kRoot, {}, &scratch_stats);
    ASSERT_EQ(labels.dist, scratch.dist);

    const auto repair_work = comm.allreduce_sum(rs.sssp.relax_generated);
    const auto scratch_work = comm.allreduce_sum(scratch_stats.relax_generated);
    EXPECT_LT(repair_work, scratch_work)
        << "repairing one edge should not re-relax the whole graph";
  });
}

// Chaos: a rank crashes mid-repair; the recovery model is wholesale re-run
// (the caller re-plays the commit + repair), and the recovered distances
// must be bit-identical to an undisturbed run.
TEST(IncrementalRepair, CrashDuringRepairWaveRecoversBitIdentical) {
  const auto input = fuzz_graph(256, 0xC4A5);
  const int P = 3;
  const int victim = 1;

  // The update batch: cut two ring edges (forcing descendant invalidation
  // waves) and add a decrease — a repair with real multi-phase work.
  const auto stage_batch = [](MutableGraph& mg, int rank) {
    if (rank == 0) {
      mg.stage_delete(40, 41);
      mg.stage_set(200, 201, 1.9f);
    }
    if (rank == 2 % 3) mg.stage_insert(90, 140, 0.05f);
  };

  // One full episode: build, solve, commit the batch, repair, report the
  // repaired owned slices gathered to rank 0.
  const auto episode = [&](simmpi::Comm& comm, bool stop_before_repair,
                           std::vector<Weight>* out) {
    MutableGraph mg(comm, build_distributed(
                              comm, slice_for_rank(input, comm.rank(), P),
                              input.num_vertices));
    auto labels = core::delta_stepping(comm, mg.view(), kRoot);
    stage_batch(mg, comm.rank());
    const auto summary = mg.commit_batch();
    if (stop_before_repair) return;
    dyn::incremental_sssp_repair(comm, mg.view(), kRoot, summary, labels);
    const auto whole = core::gather_result(comm, mg.view(), labels);
    if (comm.rank() == 0 && out != nullptr) *out = whole.dist;
  };

  std::vector<Weight> reference;
  {
    simmpi::World clean(P);
    clean.run([&](simmpi::Comm& comm) { episode(comm, false, &reference); });
  }
  ASSERT_FALSE(reference.empty());

  // Probe the victim's collective counts up to the repair, then through
  // the whole episode, and plant the crash inside the repair wave.
  std::uint64_t pre_calls = 0;
  std::uint64_t total_calls = 0;
  {
    simmpi::World probe(P);
    probe.set_fault_plan(simmpi::FaultPlan{});
    probe.run([&](simmpi::Comm& comm) { episode(comm, true, nullptr); });
    pre_calls = probe.injector()->collective_calls(victim);
  }
  {
    simmpi::World probe(P);
    probe.set_fault_plan(simmpi::FaultPlan{});
    probe.run([&](simmpi::Comm& comm) { episode(comm, false, nullptr); });
    total_calls = probe.injector()->collective_calls(victim);
  }
  ASSERT_GT(total_calls, pre_calls + 4)
      << "repair phase too small to crash into";
  const std::uint64_t crash_at = pre_calls + (total_calls - pre_calls) / 2;

  simmpi::World world(P);
  world.set_fault_plan(simmpi::FaultPlan{}.crash(victim, crash_at));
  std::vector<Weight> recovered;
  EXPECT_THROW(
      world.run([&](simmpi::Comm& comm) { episode(comm, false, nullptr); }),
      simmpi::InjectedCrashError);
  EXPECT_EQ(world.injector()->events_fired(), 1u);
  // Wholesale re-run: the consumed fault does not refire.
  world.run([&](simmpi::Comm& comm) { episode(comm, false, &recovered); });
  EXPECT_EQ(recovered, reference);
}

// Injected stalls charge virtual delay but must not perturb the repair.
TEST(IncrementalRepair, RepairUnderInjectedStallIsBitIdentical) {
  const auto input = fuzz_graph(192, 0x57A1);
  const int P = 2;

  const auto episode = [&](simmpi::Comm& comm, std::vector<Weight>* out) {
    MutableGraph mg(comm, build_distributed(
                              comm, slice_for_rank(input, comm.rank(), P),
                              input.num_vertices));
    auto labels = core::delta_stepping(comm, mg.view(), kRoot);
    if (comm.rank() == 0) {
      mg.stage_delete(10, 11);
      mg.stage_insert(50, 120, 0.1f);
    }
    const auto summary = mg.commit_batch();
    dyn::incremental_sssp_repair(comm, mg.view(), kRoot, summary, labels);
    const auto whole = core::gather_result(comm, mg.view(), labels);
    if (comm.rank() == 0 && out != nullptr) *out = whole.dist;
  };

  std::vector<Weight> reference;
  {
    simmpi::World clean(P);
    clean.run([&](simmpi::Comm& comm) { episode(comm, &reference); });
  }
  ASSERT_FALSE(reference.empty());

  simmpi::World world(P);
  world.set_fault_plan(
      simmpi::FaultPlan{}.stall(1, 40, 1.5).stall(0, 90, 1.5));
  std::vector<Weight> stalled;
  world.run([&](simmpi::Comm& comm) { episode(comm, &stalled); });
  EXPECT_EQ(stalled, reference);
  EXPECT_GT(world.aggregate_stats().stall_seconds, 0.0);
}

}  // namespace
