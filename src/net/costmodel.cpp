#include "net/costmodel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace g500::net {

namespace {
constexpr double kGB = 1e9;
}

CostModel::CostModel(const Topology& topo, int ranks_per_node)
    : topo_(topo), ranks_per_node_(ranks_per_node) {
  if (ranks_per_node < 1) {
    throw std::invalid_argument("ranks_per_node must be >= 1");
  }
}

double CostModel::worst_latency_seconds() const {
  // Diameter latency: hop count between the two most distant endpoints.
  const std::int64_t last = topo_.num_nodes() - 1;
  return topo_.latency_us(0, last) * 1e-6;
}

double CostModel::alltoallv_seconds(const AlltoallTraffic& t,
                                    std::int64_t num_ranks) const {
  if (num_ranks < 1) throw std::invalid_argument("num_ranks must be >= 1");
  // Latency term: pairwise-exchange schedules take O(log P) steps when
  // software-pipelined; each step pays worst-case hop latency.
  const double steps = std::max(1.0, std::log2(static_cast<double>(num_ranks)));
  const double latency = steps * worst_latency_seconds();

  // Injection term: the busiest node must push the bytes of all its ranks.
  const double node_bytes = t.max_rank_bytes * ranks_per_node_;
  const double injection = node_bytes / (topo_.link().injection_GBps * kGB);

  // Bisection term: the fraction of total traffic that crosses the cut must
  // fit through the bisection bandwidth.
  const double cross_bytes = t.total_bytes * t.cross_cut_fraction;
  const double bisection = cross_bytes / (topo_.bisection_GBps() * kGB);

  return latency + std::max(injection, bisection);
}

double CostModel::allreduce_seconds(double bytes,
                                    std::int64_t num_ranks) const {
  if (num_ranks < 1) throw std::invalid_argument("num_ranks must be >= 1");
  const double steps = std::max(1.0, std::log2(static_cast<double>(num_ranks)));
  // Recursive doubling: log P rounds, each moving the payload once.
  const double latency = steps * worst_latency_seconds();
  const double bandwidth =
      steps * bytes / (topo_.link().bandwidth_GBps * kGB);
  return latency + bandwidth;
}

double CostModel::allgatherv_seconds(double total_bytes,
                                     std::int64_t num_ranks) const {
  if (num_ranks < 1) throw std::invalid_argument("num_ranks must be >= 1");
  const double steps = std::max(1.0, std::log2(static_cast<double>(num_ranks)));
  const double latency = steps * worst_latency_seconds();
  // Ring/bruck allgather: every node receives the full concatenation once.
  const double bandwidth = total_bytes / (topo_.link().bandwidth_GBps * kGB);
  return latency + bandwidth;
}

}  // namespace g500::net
