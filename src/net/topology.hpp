// Interconnect topology models.
//
// The record run targets the New Sunway machine: nodes grouped into
// supernodes (256 nodes, full-bisection internal network) joined by a
// tapered central fat-tree.  simmpi measures *logical* traffic; this module
// supplies the geometry (hop counts, bisection widths) that the cost model
// in costmodel.hpp uses to turn traffic into time.  A flat crossbar and a
// classic fat-tree are provided as comparators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace g500::net {

/// Physical link parameters shared by all topologies.
struct LinkParams {
  double latency_us = 1.0;       ///< per-hop latency
  double bandwidth_GBps = 16.0;  ///< per-link, per-direction
  double injection_GBps = 16.0;  ///< NIC injection limit per node
};

/// Abstract interconnect: a set of `num_nodes()` endpoints with a distance
/// metric and a bisection width.
class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::int64_t num_nodes() const = 0;

  /// Switch hops between endpoints a and b (0 when a == b).
  [[nodiscard]] virtual int hops(std::int64_t a, std::int64_t b) const = 0;

  /// Number of links crossing the worst-case half/half cut.
  [[nodiscard]] virtual double bisection_links() const = 0;

  [[nodiscard]] const LinkParams& link() const noexcept { return link_; }

  /// End-to-end latency between two endpoints.
  [[nodiscard]] double latency_us(std::int64_t a, std::int64_t b) const {
    return link_.latency_us * hops(a, b);
  }

  /// Aggregate bandwidth across the bisection.
  [[nodiscard]] double bisection_GBps() const {
    return bisection_links() * link_.bandwidth_GBps;
  }

 protected:
  explicit Topology(LinkParams link) : link_(link) {}

 private:
  LinkParams link_;
};

/// Ideal full crossbar: one hop everywhere, full bisection.  Upper bound.
class FlatTopology final : public Topology {
 public:
  FlatTopology(std::int64_t num_nodes, LinkParams link);

  [[nodiscard]] std::string name() const override { return "flat"; }
  [[nodiscard]] std::int64_t num_nodes() const override { return n_; }
  [[nodiscard]] int hops(std::int64_t a, std::int64_t b) const override;
  [[nodiscard]] double bisection_links() const override;

 private:
  std::int64_t n_;
};

/// Three-level fat-tree with `radix`-port switches and a configurable
/// taper at the core level (taper = 1 is a full-bisection Clos).
class FatTreeTopology final : public Topology {
 public:
  FatTreeTopology(std::int64_t num_nodes, int radix, double taper,
                  LinkParams link);

  [[nodiscard]] std::string name() const override { return "fat-tree"; }
  [[nodiscard]] std::int64_t num_nodes() const override { return n_; }
  [[nodiscard]] int hops(std::int64_t a, std::int64_t b) const override;
  [[nodiscard]] double bisection_links() const override;

  [[nodiscard]] std::int64_t nodes_per_edge_switch() const noexcept {
    return leaf_size_;
  }
  [[nodiscard]] std::int64_t nodes_per_pod() const noexcept {
    return pod_size_;
  }

 private:
  std::int64_t n_;
  int radix_;
  double taper_;
  std::int64_t leaf_size_;  // nodes under one edge switch
  std::int64_t pod_size_;   // nodes under one aggregation group
};

/// Sunway-style hierarchy: supernodes of `supernode_size` nodes with full
/// internal bisection; supernodes joined by a central network tapered by
/// `central_taper` (fraction of per-node bandwidth available across the
/// top-level bisection).
class SunwayTopology final : public Topology {
 public:
  SunwayTopology(std::int64_t num_supernodes, std::int64_t supernode_size,
                 double central_taper, LinkParams link);

  [[nodiscard]] std::string name() const override { return "sunway"; }
  [[nodiscard]] std::int64_t num_nodes() const override {
    return num_supernodes_ * supernode_size_;
  }
  [[nodiscard]] int hops(std::int64_t a, std::int64_t b) const override;
  [[nodiscard]] double bisection_links() const override;

  [[nodiscard]] std::int64_t supernode_of(std::int64_t node) const noexcept {
    return node / supernode_size_;
  }
  [[nodiscard]] std::int64_t num_supernodes() const noexcept {
    return num_supernodes_;
  }
  [[nodiscard]] std::int64_t supernode_size() const noexcept {
    return supernode_size_;
  }
  [[nodiscard]] double central_taper() const noexcept { return central_taper_; }

 private:
  std::int64_t num_supernodes_;
  std::int64_t supernode_size_;
  double central_taper_;
};

}  // namespace g500::net
