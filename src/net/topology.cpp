#include "net/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace g500::net {

namespace {
void check_positive(std::int64_t v, const char* what) {
  if (v < 1) throw std::invalid_argument(std::string(what) + " must be >= 1");
}
}  // namespace

// ---------------------------------------------------------------- Flat

FlatTopology::FlatTopology(std::int64_t num_nodes, LinkParams link)
    : Topology(link), n_(num_nodes) {
  check_positive(num_nodes, "num_nodes");
}

int FlatTopology::hops(std::int64_t a, std::int64_t b) const {
  return a == b ? 0 : 1;
}

double FlatTopology::bisection_links() const {
  // Crossbar: every node can push its full link across the cut.
  return static_cast<double>(n_) / 2.0;
}

// ---------------------------------------------------------------- FatTree

FatTreeTopology::FatTreeTopology(std::int64_t num_nodes, int radix,
                                 double taper, LinkParams link)
    : Topology(link), n_(num_nodes), radix_(radix), taper_(taper) {
  check_positive(num_nodes, "num_nodes");
  if (radix < 2) throw std::invalid_argument("fat-tree radix must be >= 2");
  if (taper <= 0.0 || taper > 1.0) {
    throw std::invalid_argument("fat-tree taper must be in (0, 1]");
  }
  leaf_size_ = radix_ / 2;                 // half the ports go down to nodes
  pod_size_ = leaf_size_ * (radix_ / 2);   // k/2 edge switches per pod
}

int FatTreeTopology::hops(std::int64_t a, std::int64_t b) const {
  if (a == b) return 0;
  if (a / leaf_size_ == b / leaf_size_) return 2;   // via edge switch
  if (a / pod_size_ == b / pod_size_) return 4;     // via aggregation
  return 6;                                          // via core
}

double FatTreeTopology::bisection_links() const {
  // Full Clos provides n/2 links across the cut; the core taper scales it.
  return taper_ * static_cast<double>(n_) / 2.0;
}

// ---------------------------------------------------------------- Sunway

SunwayTopology::SunwayTopology(std::int64_t num_supernodes,
                               std::int64_t supernode_size,
                               double central_taper, LinkParams link)
    : Topology(link),
      num_supernodes_(num_supernodes),
      supernode_size_(supernode_size),
      central_taper_(central_taper) {
  check_positive(num_supernodes, "num_supernodes");
  check_positive(supernode_size, "supernode_size");
  if (central_taper <= 0.0 || central_taper > 1.0) {
    throw std::invalid_argument("central_taper must be in (0, 1]");
  }
}

int SunwayTopology::hops(std::int64_t a, std::int64_t b) const {
  if (a == b) return 0;
  return supernode_of(a) == supernode_of(b) ? 2 : 5;
}

double SunwayTopology::bisection_links() const {
  if (num_supernodes_ == 1) {
    return static_cast<double>(supernode_size_) / 2.0;
  }
  // The worst cut splits the supernode set; only the tapered central
  // network carries that traffic.
  return central_taper_ * static_cast<double>(num_nodes()) / 2.0;
}

}  // namespace g500::net
