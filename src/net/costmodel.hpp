// Analytic collective cost model.
//
// Turns the logical traffic recorded by simmpi (bytes per rank, messages,
// rounds) into estimated wall time on a given Topology.  Uses the standard
// alpha-beta formulation: a collective round costs a latency term (alpha x
// software/hop latency, logarithmic for reductions) plus a bandwidth term
// (bytes over the binding link: injection or bisection, whichever saturates
// first).  This is the same first-order methodology record-run papers use
// to argue where their machine becomes communication-bound.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"

namespace g500::net {

/// Traffic of one alltoallv round as seen from the whole machine.
struct AlltoallTraffic {
  double max_rank_bytes = 0.0;    ///< heaviest sender (injection bound)
  double total_bytes = 0.0;       ///< sum over all ranks
  double cross_cut_fraction = 0.5;///< fraction of bytes crossing the bisection
};

class CostModel {
 public:
  /// `ranks_per_node`: how many algorithm ranks share one network endpoint
  /// (they also share its injection bandwidth).
  CostModel(const Topology& topo, int ranks_per_node);

  /// Estimated time of one alltoallv round.
  [[nodiscard]] double alltoallv_seconds(const AlltoallTraffic& t,
                                         std::int64_t num_ranks) const;

  /// Estimated time of an allreduce of `bytes` payload over `num_ranks`.
  [[nodiscard]] double allreduce_seconds(double bytes,
                                         std::int64_t num_ranks) const;

  /// Estimated time of an allgatherv totalling `total_bytes`.
  [[nodiscard]] double allgatherv_seconds(double total_bytes,
                                          std::int64_t num_ranks) const;

  /// Barrier = zero-byte allreduce.
  [[nodiscard]] double barrier_seconds(std::int64_t num_ranks) const {
    return allreduce_seconds(0.0, num_ranks);
  }

  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }

 private:
  [[nodiscard]] double worst_latency_seconds() const;

  const Topology& topo_;
  int ranks_per_node_;
};

}  // namespace g500::net
