// Sequential Dijkstra: the correctness oracle every distributed engine is
// tested against, and the single-node baseline in the comparison benchmark.
#pragma once

#include "graph/edge_list.hpp"
#include "core/sssp_types.hpp"

namespace g500::core {

/// Full-graph SSSP result (indexed by global vertex id).
struct SequentialResult {
  std::vector<graph::Weight> dist;
  std::vector<graph::VertexId> parent;
};

/// Binary-heap Dijkstra over an undirected EdgeList (self-loops ignored,
/// parallel edges resolved to minimum weight — the same cleaning the
/// distributed builder applies).  O((n + m) log n).
[[nodiscard]] SequentialResult dijkstra(const graph::EdgeList& graph,
                                        graph::VertexId root);

}  // namespace g500::core
