#include "core/json.hpp"

namespace g500::core {

util::Json to_json(const SsspConfig& config) {
  util::Json j = util::Json::object();
  j["delta"] = config.delta;
  j["coalesce"] = config.coalesce;
  j["hub_cache"] = config.hub_cache;
  j["direction_opt"] = config.direction_opt;
  j["pull_threshold"] = config.pull_threshold;
  j["pull_bias"] = config.pull_bias;
  j["local_fusion"] = config.local_fusion;
  j["compress"] = config.compress;
  j["hierarchical_group"] = config.hierarchical_group;
  j["aggregator_capacity"] = config.aggregator_capacity;
  j["aggregator_max_age"] = config.aggregator_max_age;
  j["max_buckets"] = config.max_buckets;
  j["deadline_buckets"] = config.deadline_buckets;
  j["checkpoint_interval"] = config.checkpoint_interval;
  j["collect_bucket_trace"] = config.collect_bucket_trace;
  return j;
}

util::Json to_json(const BucketTraceRow& row) {
  util::Json j = util::Json::object();
  j["bucket"] = row.bucket;
  j["light_rounds"] = row.light_rounds;
  j["frontier_total"] = row.frontier_total;
  j["settled"] = row.settled;
  j["seconds"] = row.seconds;
  return j;
}

util::Json to_json(const util::Log2Histogram& hist) {
  util::Json j = util::Json::object();
  util::Json buckets = util::Json::array();
  for (const auto b : hist.buckets()) buckets.push_back(b);
  j["buckets"] = std::move(buckets);
  j["count"] = hist.total_count();
  j["sum"] = hist.total_sum();
  j["max"] = hist.max_value();
  j["mean"] = hist.mean();
  return j;
}

util::Json to_json(const ComponentsStats& stats) {
  util::Json j = util::Json::object();
  j["rounds"] = stats.rounds;
  j["labels_sent"] = stats.labels_sent;
  j["labels_applied"] = stats.labels_applied;
  j["seconds"] = stats.seconds;
  return j;
}

util::Json to_json(const PageRankStats& stats) {
  util::Json j = util::Json::object();
  j["iterations"] = stats.iterations;
  j["contribs_gathered"] = stats.contribs_gathered;
  j["residual"] = stats.residual;
  j["converged"] = stats.converged;
  j["seconds"] = stats.seconds;
  return j;
}

util::Json to_json(const KCoreStats& stats) {
  util::Json j = util::Json::object();
  j["rounds"] = stats.rounds;
  j["levels"] = stats.levels;
  j["peeled"] = stats.peeled;
  j["decrements_sent"] = stats.decrements_sent;
  j["decrements_applied"] = stats.decrements_applied;
  j["max_core"] = stats.max_core;
  j["seconds"] = stats.seconds;
  return j;
}

util::Json to_json(const SsspStats& stats) {
  util::Json j = util::Json::object();
  j["schema_version"] = kSsspStatsSchemaVersion;
  j["buckets_processed"] = stats.buckets_processed;
  j["light_iterations"] = stats.light_iterations;
  j["heavy_phases"] = stats.heavy_phases;
  j["push_rounds"] = stats.push_rounds;
  j["pull_rounds"] = stats.pull_rounds;
  j["relax_generated"] = stats.relax_generated;
  j["relax_sent"] = stats.relax_sent;
  j["relax_received"] = stats.relax_received;
  j["relax_applied"] = stats.relax_applied;
  j["fused_local"] = stats.fused_local;
  j["filtered_hub"] = stats.filtered_hub;
  j["filtered_coalesce"] = stats.filtered_coalesce;
  j["frontier_broadcast"] = stats.frontier_broadcast;
  j["pruned_expand"] = stats.pruned_expand;
  j["pruned_apply"] = stats.pruned_apply;
  j["checkpoints"] = stats.checkpoints;
  j["restores"] = stats.restores;
  j["deadline_stops"] = stats.deadline_stops;
  j["settled_bound"] = stats.settled_bound;
  j["global_collectives"] = stats.global_collectives;
  j["sub_rounds"] = stats.sub_rounds;
  j["aggregator_flush_capacity"] = stats.aggregator_flush_capacity;
  j["aggregator_flush_timeout"] = stats.aggregator_flush_timeout;
  j["total_seconds"] = stats.total_seconds;
  j["light_seconds"] = stats.light_seconds;
  j["heavy_seconds"] = stats.heavy_seconds;
  j["checkpoint_seconds"] = stats.checkpoint_seconds;
  j["frontier_hist"] = to_json(stats.frontier_hist);
  if (!stats.bucket_trace.empty()) {
    util::Json trace = util::Json::array();
    for (const auto& row : stats.bucket_trace) trace.push_back(to_json(row));
    j["bucket_trace"] = std::move(trace);
  }
  return j;
}

util::Json to_json(const RootRun& run) {
  util::Json j = util::Json::object();
  j["root"] = run.root;
  j["seconds"] = run.seconds;
  j["teps"] = run.teps;
  j["valid"] = run.valid;
  j["reachable"] = run.reachable;
  j["attempts"] = run.attempts;
  j["recovered"] = run.recovered;
  return j;
}

util::Json to_json(const BenchmarkReport& report) {
  util::Json j = util::Json::object();
  j["schema_version"] = kBenchmarkReportSchemaVersion;
  j["num_vertices"] = report.num_vertices;
  j["num_input_edges"] = report.num_input_edges;
  j["num_directed_edges"] = report.num_directed_edges;
  j["num_ranks"] = report.num_ranks;
  j["all_valid"] = report.all_valid;
  j["harmonic_mean_teps"] = report.harmonic_mean_teps;
  j["mean_seconds"] = report.mean_seconds;
  j["min_seconds"] = report.min_seconds;
  j["max_seconds"] = report.max_seconds;
  j["recovered_roots"] = report.recovered_roots;
  j["failed_roots"] = report.failed_roots;
  j["backoff_seconds"] = report.backoff_seconds;
  util::Json backoffs = util::Json::array();
  for (const auto d : report.attempt_backoffs) backoffs.push_back(d);
  j["attempt_backoffs"] = std::move(backoffs);
  util::Json runs = util::Json::array();
  for (const auto& run : report.runs) runs.push_back(to_json(run));
  j["runs"] = std::move(runs);
  j["stats"] = to_json(report.stats);
  return j;
}

}  // namespace g500::core
