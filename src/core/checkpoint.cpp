#include "core/checkpoint.hpp"

#include "util/random.hpp"

namespace g500::core {

void CheckpointState::clear() {
  valid = false;
  roots_digest = 0;
  last_bucket = 0;
  buckets_done = 0;
  dist.clear();
  parent.clear();
  hub_mirror.clear();
  checksum = 0;
}

std::uint64_t CheckpointState::compute_checksum() const {
  std::uint64_t h = util::hash_bytes(dist.data(),
                                     dist.size() * sizeof(graph::Weight));
  h = util::hash_bytes(parent.data(),
                       parent.size() * sizeof(graph::VertexId), h);
  h = util::hash_bytes(hub_mirror.data(),
                       hub_mirror.size() * sizeof(graph::Weight), h);
  h = util::hash64(h, roots_digest);
  h = util::hash64(h, last_bucket);
  h = util::hash64(h, buckets_done);
  return h;
}

void CheckpointState::seal() {
  checksum = compute_checksum();
  valid = true;
}

void CheckpointState::verify() const {
  if (!valid) return;
  if (!checksum_ok()) {
    throw CheckpointError(
        "checkpoint: snapshot failed integrity check (bucket " +
        std::to_string(last_bucket) + ")");
  }
}

}  // namespace g500::core
