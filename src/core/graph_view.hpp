// Residency accounting for the graph an engine runs over.
//
// Engines are oblivious to whether a DistGraph's adjacency is heap-resident
// or mmap'd from a CSR shard (graph/csr.hpp views make both look alike);
// harnesses are not — the out-of-core experiments gate on *how much memory
// the graph actually pins*.  graph_residency() reports that split, and
// estimate_inmemory_build_bytes() is the planning-side counterpart: a lower
// bound on what graph::build_distributed would need per rank, used to
// decide (and to prove in telemetry) that a scale step is infeasible
// in-memory under a given cap.
#pragma once

#include <cstdint>

#include "graph/builder.hpp"
#include "graph/kronecker.hpp"
#include "util/json.hpp"

namespace g500::core {

/// Where a DistGraph's bytes live.
struct GraphResidency {
  graph::GraphBacking backing = graph::GraphBacking::kResident;
  /// Heap bytes pinned by the adjacency structures (csr + pull).  Zero
  /// adjacency heap for a mapped graph.
  std::uint64_t resident_bytes = 0;
  /// File-backed bytes behind the views (0 for a resident graph).  The OS
  /// pages these in on demand and may evict them under pressure.
  std::uint64_t mapped_bytes = 0;
};

[[nodiscard]] GraphResidency graph_residency(const graph::DistGraph& g);

/// Lower bound on the per-rank heap graph::build_distributed needs for
/// this Kronecker configuration: the builder simultaneously holds the
/// routed outbox (both directions of every generated tuple) and the
/// alltoallv result before the CSR even exists, so ~4 WireEdge copies of
/// the rank's input slice is the floor — independent of any CSR savings.
[[nodiscard]] std::uint64_t estimate_inmemory_build_bytes(
    const graph::KroneckerParams& params, int ranks);

/// Telemetry object (docs/out_of_core.md "residency").
[[nodiscard]] util::Json to_json(const GraphResidency& r);

}  // namespace g500::core
