// Barrier-free delta-stepping over the simmpi::Aggregator transport.
//
// The synchronous engine (delta_stepping.hpp) pays one alltoallv plus a
// min-allreduce per bucket sub-round, so its critical path scales with the
// round count.  This variant removes the per-round synchronization
// entirely: relaxations stream out through per-destination aggregation
// buffers as they are generated, incoming candidates are drained
// opportunistically between local bucket expansions, and ranks proceed
// through their bucket queues without waiting for stragglers.  Termination
// is decided by Mattern-style quiescence detection instead of an epoch
// barrier, followed by one synchronous settle sweep that certifies the
// fixed point (see docs/async.md).
//
// Correctness: chaotic relaxation converges to the unique fixed point of
// the relaxation operator regardless of message order, and that fixed
// point — evaluated in the same float arithmetic — is exactly what the
// synchronous engine computes.  The distance array is therefore
// BIT-IDENTICAL to delta_stepping's for any schedule (parents may differ:
// several shortest paths can tie).  The one feature this argument excludes
// is goal-directed pruning, whose correctness depends on a monotone
// execution order; passing SsspConfig::prune_lb throws.
//
// Config knobs honoured: delta, coalesce (per-flush dedup), hub_cache
// (send-side mirror, tightened locally instead of by allreduce),
// local_fusion, compress, aggregator_capacity, aggregator_max_age,
// max_buckets (counts per-rank bucket expansions here).  Ignored —
// meaningless without synchronized rounds: direction_opt (pull needs a
// globally agreed frontier), hierarchical_group (no alltoallv to
// restructure), checkpoint_interval, collect_bucket_trace.
#pragma once

#include "core/dijkstra.hpp"
#include "core/sssp_types.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

/// Run one asynchronous SSSP from `root`.  SPMD: call from every rank
/// inside World::run.  Distances are bit-identical to delta_stepping();
/// stats (when non-null) additionally reports global_collectives,
/// sub_rounds and the aggregator flush split.  Throws std::invalid_argument
/// when config.prune_lb is set (see header comment).
[[nodiscard]] SsspResult async_delta_stepping(simmpi::Comm& comm,
                                              const graph::DistGraph& g,
                                              graph::VertexId root,
                                              const SsspConfig& config = {},
                                              SsspStats* stats = nullptr);

/// Multi-source variant (nearest of `roots`), matching
/// delta_stepping_multi.
[[nodiscard]] SsspResult async_delta_stepping_multi(
    simmpi::Comm& comm, const graph::DistGraph& g,
    const std::vector<graph::VertexId>& roots, const SsspConfig& config = {},
    SsspStats* stats = nullptr);

}  // namespace g500::core
