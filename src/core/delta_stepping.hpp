// Distributed delta-stepping SSSP — the paper's primary contribution.
//
// Owner-computes over a 1-D block partition: each rank holds the tentative
// distance, parent and bucket position of its owned vertices.  The engine
// runs the classic Meyer-Sanders bucket schedule (light-edge inner rounds
// until the bucket drains, then one heavy-edge phase), with the
// record-scale optimizations as independently switchable features:
//
//   * message coalescing  — per-destination dedup, min candidate per target;
//   * hub caching         — replicated tentative distances for the top-degree
//                           vertices filter most traffic aimed at them;
//   * direction switching — dense frontiers are broadcast once (pull) instead
//                           of pushing a message per cut edge;
//   * local fusion        — relaxations that stay on-rank are applied
//                           immediately, skipping the exchange entirely;
//   * goal-directed pruning — point-to-point queries pass an ALT lower-bound
//                           slice (SsspConfig::prune_lb / prune_budget) and
//                           the engine drops expansions and candidates that
//                           provably cannot improve the target's distance.
//
// Call SPMD-style from inside simmpi::World::run; every rank passes its own
// DistGraph piece and receives its owned slice of the result.
#pragma once

#include "core/checkpoint.hpp"
#include "core/dijkstra.hpp"
#include "core/sssp_types.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

/// Run one SSSP from `root`.  `stats`, when non-null, receives this rank's
/// execution counters.  Deterministic for a fixed (graph, root, config,
/// rank count).
[[nodiscard]] SsspResult delta_stepping(simmpi::Comm& comm,
                                        const graph::DistGraph& g,
                                        graph::VertexId root,
                                        const SsspConfig& config = {},
                                        SsspStats* stats = nullptr);

/// Multi-source variant: distance to the *nearest* of `roots` (all start
/// at distance 0 and act as their own parents).  Equivalent to adding a
/// zero-weight super-source; used for nearest-facility queries.  `roots`
/// must be non-empty and identical on every rank.
[[nodiscard]] SsspResult delta_stepping_multi(
    simmpi::Comm& comm, const graph::DistGraph& g,
    const std::vector<graph::VertexId>& roots, const SsspConfig& config = {},
    SsspStats* stats = nullptr);

/// Warm-start labels for an incremental repair run (delta_stepping_repair).
/// `dist`/`parent` are the owned slices of tentative labels to start from;
/// every finite label must be an attainable path sum from the root in the
/// *current* graph (or kInfDistance).  `seeds` lists the owned local ids to
/// queue initially (at bucket_of(dist)); only finite-distance vertices may
/// be seeded.  Relaxation from such a state converges to the same unique
/// fixed point as a fresh run, so the repaired distances are bit-identical
/// to a from-scratch recompute (parents may differ — both are valid trees).
struct WarmStart {
  std::vector<graph::Weight> dist;
  std::vector<graph::VertexId> parent;
  std::vector<graph::LocalId> seeds;
};

/// Resume relaxation from `warm` instead of seeding the root: the engine
/// queues only `warm.seeds` and runs the normal bucket schedule to
/// quiescence.  Used by dyn::incremental_sssp_repair to re-relax only the
/// affected cone after a graph mutation.  The root must carry distance 0 in
/// `warm.dist`.  Checkpoint/deadline features are rejected (repair is
/// re-run wholesale after a failure instead of resumed).
[[nodiscard]] SsspResult delta_stepping_repair(
    simmpi::Comm& comm, const graph::DistGraph& g, graph::VertexId root,
    const WarmStart& warm, const SsspConfig& config = {},
    SsspStats* stats = nullptr);

/// Checkpointed variant of delta_stepping: when `ckpt` is non-null and
/// config.checkpoint_interval > 0, the engine snapshots its state into
/// `ckpt` every interval bucket epochs, and — if `ckpt` already holds a
/// usable snapshot of the *same* run (same root, delta, graph shape, same
/// epoch on every rank) — resumes from it instead of starting fresh.
/// Deterministic re-execution makes the resumed result bit-identical to an
/// uninterrupted run.  A completed run clears `ckpt`.  Throws
/// CheckpointError if a snapshot fails its integrity check.
[[nodiscard]] SsspResult delta_stepping_checkpointed(
    simmpi::Comm& comm, const graph::DistGraph& g, graph::VertexId root,
    const SsspConfig& config, CheckpointState* ckpt,
    SsspStats* stats = nullptr);

/// The delta the engine would choose for this graph when config.delta <= 0:
/// 1 / average directed degree, clamped to [1/64... 1].
[[nodiscard]] double auto_delta(const graph::DistGraph& g);

/// Gather a distributed result into full global vectors on every rank
/// (test/example helper; materializes O(n) per rank).
[[nodiscard]] SequentialResult gather_result(simmpi::Comm& comm,
                                             const graph::DistGraph& g,
                                             const SsspResult& mine);

}  // namespace g500::core
