// Official Graph 500 SSSP benchmark protocol.
//
// A submission runs: construct the graph, sample 64 search keys uniformly
// among vertices with degree >= 1, run SSSP from each, validate every
// result, and report TEPS = input-edge-count / time per root with the
// harmonic mean as the headline number.  This runner reproduces that
// protocol on the simulated ranks.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/sssp_types.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"
#include "util/backoff.hpp"

namespace g500::core {

enum class Algorithm {
  kDeltaStepping,       ///< the SSSP kernel (paper's contribution)
  kAsyncDeltaStepping,  ///< barrier-free variant over the aggregator
  kBellmanFord,         ///< SSSP baseline
  kBfs,  ///< the Graph 500 BFS kernel (hop distances, no weights)
};

struct RunnerOptions {
  int num_roots = 64;
  std::uint64_t root_seed = 0x9500;  ///< search-key sampling seed
  bool validate = true;
  Algorithm algorithm = Algorithm::kDeltaStepping;
  SsspConfig config;

  /// Resilient protocol only (run_benchmark_resilient): total attempts a
  /// root gets before it degrades into an invalid report entry (min 1).
  int max_attempts = 3;
  /// Virtual delay charged per retry, mirroring a real machine's restart
  /// latency.  Recorded in BenchmarkReport::backoff_seconds, not slept.
  /// This is the BASE of a seeded exponential-backoff-with-jitter schedule
  /// (util::BackoffPolicy) shared with bench_recovery and the serving
  /// layer's wave retry; the knobs below shape it.
  double retry_backoff_seconds = 0.0;
  /// Growth factor per consecutive retry.
  double retry_backoff_multiplier = 2.0;
  /// Cap on the un-jittered delay.
  double retry_backoff_max_seconds = 60.0;
  /// Fraction of each delay subject to deterministic jitter ([0, 1]);
  /// 0 reproduces the old fixed-backoff behaviour exactly.
  double retry_backoff_jitter = 0.5;
  /// Seed of the jitter stream (pure function of (seed, attempt)).
  std::uint64_t retry_backoff_seed = 0x0b0f;

  /// The schedule the resilient driver charges retries against.
  [[nodiscard]] util::BackoffPolicy backoff_policy() const {
    return {retry_backoff_seconds, retry_backoff_multiplier,
            retry_backoff_max_seconds, retry_backoff_jitter,
            retry_backoff_seed};
  }
};

/// Outcome of one root.
struct RootRun {
  graph::VertexId root = 0;
  double seconds = 0.0;
  double teps = 0.0;
  bool valid = true;
  std::uint64_t reachable = 0;
  int attempts = 1;       ///< World::run launches this root consumed
  bool recovered = false; ///< completed by resuming from a checkpoint
};

struct BenchmarkReport {
  graph::VertexId num_vertices = 0;
  std::uint64_t num_input_edges = 0;
  std::uint64_t num_directed_edges = 0;
  int num_ranks = 0;

  std::vector<RootRun> runs;
  SsspStats stats;  ///< summed over ranks and roots

  bool all_valid = true;
  double harmonic_mean_teps = 0.0;
  double mean_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;

  /// Resilient protocol only: roots that needed more than one attempt /
  /// were abandoned after RunnerOptions::max_attempts.
  int recovered_roots = 0;
  int failed_roots = 0;
  /// Virtual retry backoff charged across all attempts (not slept).
  double backoff_seconds = 0.0;
  /// Per-retry backoff actually charged, in order (jitter included) —
  /// the audit trail of the exponential schedule.
  std::vector<double> attempt_backoffs;

  /// Graph500-style summary block.
  void print(std::ostream& out) const;
};

/// Sample `count` distinct search keys with degree >= 1, identically on all
/// ranks.  Returns fewer if the graph has fewer eligible vertices.
[[nodiscard]] std::vector<graph::VertexId> sample_roots(
    simmpi::Comm& comm, const graph::DistGraph& g, int count,
    std::uint64_t seed);

/// Execute the protocol.  SPMD: call from every rank; the report is
/// identical on all ranks.
[[nodiscard]] BenchmarkReport run_benchmark(simmpi::Comm& comm,
                                            const graph::DistGraph& g,
                                            const RunnerOptions& options);

/// Sum a per-rank SsspStats across ranks (histogram included).
[[nodiscard]] SsspStats global_stats(simmpi::Comm& comm,
                                     const SsspStats& local);

/// Fault-tolerant variant of the protocol, driven from OUTSIDE World::run
/// so it can restart the world after a rank crash.  `build_graph` must be
/// deterministic — it is re-invoked on every attempt to rebuild each
/// rank's graph piece.  Roots run with checkpointing
/// (config.checkpoint_interval); when an attempt dies, the next one
/// resumes the interrupted root from the per-rank snapshots ("stable
/// storage" held by this driver) and the finished roots are not re-run.  A
/// root that still fails after max_attempts degrades into an invalid
/// report entry instead of sinking the benchmark.  Delta-stepping only.
[[nodiscard]] BenchmarkReport run_benchmark_resilient(
    simmpi::World& world,
    const std::function<graph::DistGraph(simmpi::Comm&)>& build_graph,
    const RunnerOptions& options);

}  // namespace g500::core
