#include "core/dijkstra.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace g500::core {

using graph::kInfDistance;
using graph::kNoVertex;
using graph::VertexId;
using graph::Weight;

SequentialResult dijkstra(const graph::EdgeList& graph, VertexId root) {
  const VertexId n = graph.num_vertices;
  if (root >= n) throw std::out_of_range("dijkstra: root out of range");

  // Build a cleaned adjacency (both directions, no self-loops, min-weight
  // duplicates) mirroring the distributed builder.
  struct Adj {
    VertexId dst;
    Weight w;
  };
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<Adj> adj;
  {
    struct Dir {
      VertexId src, dst;
      Weight w;
    };
    std::vector<Dir> dirs;
    dirs.reserve(graph.edges.size() * 2);
    for (const auto& e : graph.edges) {
      if (e.src == e.dst) continue;
      if (e.src >= n || e.dst >= n) {
        throw std::out_of_range("dijkstra: edge endpoint >= n");
      }
      dirs.push_back({e.src, e.dst, e.weight});
      dirs.push_back({e.dst, e.src, e.weight});
    }
    std::sort(dirs.begin(), dirs.end(), [](const Dir& a, const Dir& b) {
      if (a.src != b.src) return a.src < b.src;
      if (a.dst != b.dst) return a.dst < b.dst;
      return a.w < b.w;
    });
    dirs.erase(std::unique(dirs.begin(), dirs.end(),
                           [](const Dir& a, const Dir& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               dirs.end());
    adj.reserve(dirs.size());
    for (const auto& d : dirs) {
      ++offsets[d.src + 1];
      adj.push_back({d.dst, d.w});
    }
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  }

  SequentialResult result;
  result.dist.assign(n, kInfDistance);
  result.parent.assign(n, kNoVertex);
  result.dist[root] = 0.0f;
  result.parent[root] = root;

  using HeapEntry = std::pair<Weight, VertexId>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap;
  heap.push({0.0f, root});
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > result.dist[u]) continue;  // stale entry
    for (std::uint64_t e = offsets[u]; e < offsets[u + 1]; ++e) {
      const Weight cand = d + adj[e].w;
      if (cand < result.dist[adj[e].dst]) {
        result.dist[adj[e].dst] = cand;
        result.parent[adj[e].dst] = u;
        heap.push({cand, adj[e].dst});
      }
    }
  }
  return result;
}

}  // namespace g500::core
