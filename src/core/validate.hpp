// Graph 500 SSSP result validation.
//
// An official submission must pass result checks on every sampled root; the
// same checks gate every benchmark run and test here:
//
//   V1  root/parent/dist local consistency (root is its own parent at
//       distance 0; unreachable <=> no parent <=> infinite distance);
//   V2  no relaxable edge remains: for every edge (u, v, w) with u
//       reachable, dist[v] <= dist[u] + w (up to float tolerance);
//   V3  every reachable non-root vertex has a tree edge: an edge
//       (parent[v], v, w) exists with dist[v] = dist[parent[v]] + w;
//   V4  the parent pointers form a tree rooted at the SSSP root (verified
//       by distributed pointer doubling — detects cycles and stray forests).
//
// All checks run SPMD over the distributed result; failures are aggregated
// so every rank returns the same report.
#pragma once

#include <string>
#include <vector>

#include "core/sssp_types.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

struct ValidationReport {
  bool ok = true;
  /// Human-readable failure descriptions (capped; same on every rank).
  std::vector<std::string> errors;
  /// Directed edges examined by V2 (global).
  std::uint64_t edges_checked = 0;
  /// Vertices with finite distance (global).
  std::uint64_t reachable = 0;
};

/// Validate `mine` (this rank's slice) against the distributed graph.
/// `tolerance` absorbs float rounding in the V2/V3 comparisons.
[[nodiscard]] ValidationReport validate_sssp(simmpi::Comm& comm,
                                             const graph::DistGraph& g,
                                             graph::VertexId root,
                                             const SsspResult& mine,
                                             double tolerance = 1e-5);

}  // namespace g500::core
