#include "core/bellman_ford.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/timer.hpp"

namespace g500::core {

using graph::kInfDistance;
using graph::kNoVertex;
using graph::LocalId;
using graph::VertexId;
using graph::Weight;

SsspResult bellman_ford(simmpi::Comm& comm, const graph::DistGraph& g,
                        VertexId root, const SsspConfig& config,
                        SsspStats* stats) {
  if (root >= g.num_vertices) {
    throw std::out_of_range("bellman_ford: root out of range");
  }
  SsspStats scratch;
  SsspStats& st = stats != nullptr ? *stats : scratch;
  util::Timer total;

  const auto local_n = static_cast<std::size_t>(g.part.count(comm.rank()));
  const VertexId my_begin = g.part.begin(comm.rank());

  SsspResult result;
  result.dist.assign(local_n, kInfDistance);
  result.parent.assign(local_n, kNoVertex);

  std::vector<LocalId> active;
  std::vector<char> queued(local_n, 0);
  auto enqueue = [&](LocalId v) {
    if (queued[v] == 0) {
      queued[v] = 1;
      active.push_back(v);
    }
  };
  auto relax_local = [&](LocalId v, Weight cand, VertexId via) {
    if (cand < result.dist[v]) {
      result.dist[v] = cand;
      result.parent[v] = via;
      ++st.relax_applied;
      enqueue(v);
    }
  };

  if (g.part.owner(root) == comm.rank()) {
    const auto lr = g.part.local(root);
    result.dist[lr] = 0.0f;
    result.parent[lr] = root;
    enqueue(lr);
  }

  std::vector<std::vector<RelaxRequest>> outbox(
      static_cast<std::size_t>(comm.size()));
  while (comm.allreduce_or(!active.empty())) {
    ++st.light_iterations;  // BF has a single phase class; reuse the counter
    std::vector<LocalId> frontier;
    frontier.swap(active);
    for (const auto v : frontier) queued[v] = 0;

    for (const auto v : frontier) {
      const Weight d = result.dist[v];
      const VertexId via = my_begin + v;
      for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v);
           ++e) {
        ++st.relax_generated;
        const VertexId target = g.csr.dst(e);
        const Weight cand = d + g.csr.weight(e);
        const int owner = g.part.owner(target);
        if (owner == comm.rank() && config.local_fusion) {
          relax_local(g.part.local(target), cand, via);
          ++st.fused_local;
        } else {
          outbox[static_cast<std::size_t>(owner)].push_back(
              RelaxRequest{target, via, cand});
        }
      }
    }

    if (config.coalesce) {
      for (auto& box : outbox) {
        if (box.size() < 2) continue;
        std::sort(box.begin(), box.end(),
                  [](const RelaxRequest& a, const RelaxRequest& b) {
                    if (a.target != b.target) return a.target < b.target;
                    if (a.dist != b.dist) return a.dist < b.dist;
                    return a.parent < b.parent;
                  });
        const auto last =
            std::unique(box.begin(), box.end(),
                        [](const RelaxRequest& a, const RelaxRequest& b) {
                          return a.target == b.target;
                        });
        st.filtered_coalesce += static_cast<std::uint64_t>(box.end() - last);
        box.erase(last, box.end());
      }
    }
    for (const auto& box : outbox) st.relax_sent += box.size();
    const std::vector<RelaxRequest> incoming = comm.alltoallv(outbox);
    for (auto& box : outbox) box.clear();
    st.relax_received += incoming.size();
    for (const auto& req : incoming) {
      relax_local(g.part.local(req.target), req.dist, req.parent);
    }
  }

  st.total_seconds = total.seconds();
  return result;
}

}  // namespace g500::core
