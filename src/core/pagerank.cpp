#include "core/pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/timer.hpp"

namespace g500::core {

using graph::LocalId;
using graph::VertexId;

std::vector<double> pagerank(simmpi::Comm& comm, const graph::DistGraph& g,
                             const PageRankConfig& config,
                             PageRankStats* stats) {
  if (config.damping < 0.0 || config.damping >= 1.0) {
    throw std::invalid_argument("pagerank: damping must be in [0, 1)");
  }
  if (config.tolerance < 0.0) {
    throw std::invalid_argument("pagerank: tolerance must be >= 0");
  }
  PageRankStats scratch;
  PageRankStats& st = stats != nullptr ? *stats : scratch;
  util::Timer total;

  const int rank = comm.rank();
  const auto local_n = static_cast<LocalId>(g.part.count(rank));
  const VertexId n = g.num_vertices;
  if (n == 0) {
    st.seconds = total.seconds();
    return {};
  }

  // Per-vertex edge permutation sorted by neighbour id: the CSR keeps
  // adjacency weight-sorted (for the light/heavy split), but float sums
  // must run in an order a sequential reference can reproduce without
  // knowing the weights.  Dedup in the builder guarantees distinct
  // neighbour ids, so the order is total.
  std::vector<std::uint64_t> order(g.csr.num_edges());
  std::iota(order.begin(), order.end(), std::uint64_t{0});
  for (LocalId v = 0; v < local_n; ++v) {
    std::sort(order.begin() + static_cast<std::ptrdiff_t>(g.csr.edges_begin(v)),
              order.begin() + static_cast<std::ptrdiff_t>(g.csr.edges_end(v)),
              [&](std::uint64_t a, std::uint64_t b) {
                return g.csr.dst(a) < g.csr.dst(b);
              });
  }

  const double teleport = (1.0 - config.damping) / static_cast<double>(n);
  std::vector<double> pr(local_n, 1.0 / static_cast<double>(n));
  std::vector<double> contrib(local_n, 0.0);
  std::vector<double> next(local_n, 0.0);

  for (std::uint64_t iter = 0; iter < config.max_iters; ++iter) {
    for (LocalId v = 0; v < local_n; ++v) {
      const auto deg = g.csr.degree(v);
      contrib[v] = deg > 0 ? pr[v] / static_cast<double>(deg) : 0.0;
    }
    // Rank-order concatenation is global vertex order under the block
    // partition, so full[u] is u's contribution for any global id u.
    const std::vector<double> full = comm.allgatherv(contrib);
    st.contribs_gathered += local_n;

    for (LocalId v = 0; v < local_n; ++v) {
      double sum = 0.0;
      for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v);
           ++e) {
        sum += full[g.csr.dst(order[e])];
      }
      next[v] = teleport + config.damping * sum;
    }
    ++st.iterations;

    double local_residual = 0.0;
    for (LocalId v = 0; v < local_n; ++v) {
      local_residual += std::abs(next[v] - pr[v]);
    }
    st.residual = comm.allreduce_sum(local_residual);
    pr.swap(next);
    if (config.tolerance > 0.0 && st.residual <= config.tolerance) {
      st.converged = true;
      break;
    }
  }

  st.seconds = total.seconds();
  return pr;
}

}  // namespace g500::core
