// Sequential delta-stepping (Meyer & Sanders 2003) — the algorithm the
// distributed engine descends from, in its original single-address-space
// form.  Serves as the single-core baseline between Dijkstra (strict
// priority order, no wasted work, poor parallelism) and Bellman-Ford
// (no order, massive wasted work): buckets of width delta trade a bounded
// amount of re-relaxation for bulk processing.
#pragma once

#include "core/dijkstra.hpp"
#include "graph/edge_list.hpp"

namespace g500::core {

struct SeqDeltaStats {
  std::uint64_t buckets_processed = 0;
  std::uint64_t light_phases = 0;
  std::uint64_t relaxations = 0;
  double seconds = 0.0;
};

/// Run sequential delta-stepping over an undirected EdgeList (cleaned the
/// same way as dijkstra()).  delta <= 0 selects 1/average-degree.
[[nodiscard]] SequentialResult seq_delta_stepping(const graph::EdgeList& graph,
                                                  graph::VertexId root,
                                                  double delta = 0.0,
                                                  SeqDeltaStats* stats =
                                                      nullptr);

}  // namespace g500::core
