// Public types of the SSSP engines: configuration knobs (each one is an
// optimization the evaluation ablates), per-rank results, and the detailed
// execution statistics the communication-analysis experiments report.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/types.hpp"
#include "util/histogram.hpp"

namespace g500::core {

/// Tuning knobs of the delta-stepping engine.  Defaults reproduce the
/// fully-optimized configuration; the ablation benchmarks switch features
/// off one at a time.
struct SsspConfig {
  /// Bucket width.  <= 0 selects automatically: ~1/average-degree, the
  /// standard choice for uniform [0,1) weights (Meyer & Sanders).
  double delta = 0.0;

  /// Deduplicate relaxation requests per destination before sending
  /// (keep only the minimum candidate per target vertex per round).
  bool coalesce = true;

  /// Filter relaxations aimed at replicated top-degree vertices against a
  /// local mirror of their tentative distance.  Requires graph.hubs.
  bool hub_cache = true;

  /// Enable the push->pull direction switch for dense frontiers.
  bool direction_opt = true;
  /// Only consider pulling when the active fraction exceeds this.
  double pull_threshold = 0.02;
  /// Pull is chosen when estimated push bytes exceed pull bytes times this
  /// factor (>1 biases toward push).
  double pull_bias = 1.0;

  /// Apply relaxations that target locally-owned vertices immediately
  /// instead of routing them through the exchange.
  bool local_fusion = true;

  /// Pack relaxation requests into 12-byte records (32-bit local target
  /// index + 32-bit parent + float distance) when the graph has fewer than
  /// 2^32 vertices — halves wire bytes per request.  Falls back to the
  /// wide format automatically on larger graphs.
  bool compress = true;

  /// Async engine only (async_delta_stepping): records buffered per
  /// destination before the aggregator's capacity flush ships them.
  std::size_t aggregator_capacity = 512;
  /// Async engine only: poll cycles a non-empty aggregation buffer may age
  /// before a timeout flush ships it regardless of fill level.
  std::uint64_t aggregator_max_age = 4;

  /// Route relaxation exchanges through the two-level supernode-aggregated
  /// alltoallv with groups of this many consecutive ranks (<= 1 = flat).
  /// Cuts per-round message count from O(P^2) to O(P*G + P^2/G^2) at the
  /// cost of each byte crossing the network up to three times — the
  /// topology-aware trade record runs make.
  int hierarchical_group = 0;

  /// Goal-directed (ALT) pruning.  When `prune_lb` is non-null it points
  /// at this rank's owned slice (indexed by local id) of an admissible
  /// lower bound on the remaining distance to a query target:
  /// prune_lb[local(v)] <= d(v, target).  The engine then drops work that
  /// provably cannot improve the target's distance against `prune_budget`,
  /// the best known upper bound on the answer: a vertex v is not expanded
  /// when dist(v) + lb(v) > budget, and an incoming candidate is not
  /// applied when cand + lb(v) > budget.  Every rank must pass slices of
  /// the same global bound vector and an identical budget, and the slice
  /// must outlive the call.  The resulting distance vector is exact at the
  /// target (and at every vertex within budget) but stale beyond it — do
  /// not reuse a pruned wave's slice for other targets.
  const std::vector<graph::Weight>* prune_lb = nullptr;
  /// Upper bound on the target's distance for the pruning test above
  /// (infinity = no candidate is ever dropped even when prune_lb is set).
  graph::Weight prune_budget = graph::kInfDistance;

  /// Safety valve: abort after this many global buckets (0 = unlimited).
  std::uint64_t max_buckets = 0;

  /// Deadline budget: stop *gracefully* after this many global bucket
  /// epochs (0 = unlimited).  Unlike max_buckets this is not an error —
  /// the engine breaks out of the bucket loop at the allreduce-agreed
  /// epoch (so every rank stops at the same point), records the settled
  /// frontier in SsspStats::settled_bound, and returns the partial
  /// distance vector.  Every vertex with dist < settled_bound holds its
  /// exact distance; everything beyond is a (possibly infinite) upper
  /// bound.  The serving layer uses this to honour per-query deadlines.
  std::uint64_t deadline_buckets = 0;

  /// Snapshot the engine state every N completed bucket epochs so a crashed
  /// run can restart from the last checkpoint instead of from scratch
  /// (0 = checkpointing off).  Only honoured by the checkpointed entry
  /// point (delta_stepping_checkpointed); the snapshot cost is recorded in
  /// SsspStats::checkpoint_seconds.
  std::uint64_t checkpoint_interval = 0;

  /// Record a per-bucket execution log in SsspStats::bucket_trace
  /// (bucket index, rounds, frontier mass, wall time) — the time-series
  /// behind the phase-breakdown figure.
  bool collect_bucket_trace = false;

  /// Convenience: everything off = textbook distributed delta-stepping.
  [[nodiscard]] static SsspConfig plain() {
    SsspConfig c;
    c.coalesce = false;
    c.hub_cache = false;
    c.direction_opt = false;
    c.local_fusion = false;
    c.compress = false;
    return c;
  }
};

/// Per-rank SSSP output: tentative distance and parent for owned vertices
/// (indexed by local id).  Reachable vertices satisfy
/// dist[v] = dist[parent[v]] + w(parent[v], v); the root is its own parent.
struct SsspResult {
  std::vector<graph::Weight> dist;
  std::vector<graph::VertexId> parent;
};

/// One bucket's execution record (collected when
/// SsspConfig::collect_bucket_trace is set; global values, identical on
/// every rank except wall time which is rank-local).
struct BucketTraceRow {
  std::uint64_t bucket = 0;
  std::uint64_t light_rounds = 0;
  std::uint64_t frontier_total = 0;  ///< sum of global frontier sizes
  std::uint64_t settled = 0;         ///< R-set size on this rank
  double seconds = 0.0;
};

/// Execution counters for one SSSP run (per rank; allreduce to aggregate).
struct SsspStats {
  std::uint64_t buckets_processed = 0;
  std::uint64_t light_iterations = 0;  ///< inner rounds across all buckets
  std::uint64_t heavy_phases = 0;
  std::uint64_t push_rounds = 0;
  std::uint64_t pull_rounds = 0;

  std::uint64_t relax_generated = 0;   ///< candidate relaxations produced
  std::uint64_t relax_sent = 0;        ///< survived filters, left this rank
  std::uint64_t relax_received = 0;
  std::uint64_t relax_applied = 0;     ///< actually improved a distance
  std::uint64_t fused_local = 0;       ///< applied locally without a message
  std::uint64_t filtered_hub = 0;      ///< dropped by the hub mirror
  std::uint64_t filtered_coalesce = 0; ///< dropped by per-round dedup
  std::uint64_t frontier_broadcast = 0;///< vertices shipped by pull rounds
  std::uint64_t pruned_expand = 0;     ///< vertices skipped by goal-directed
                                       ///< pruning at expansion
  std::uint64_t pruned_apply = 0;      ///< improving candidates dropped by
                                       ///< goal-directed pruning

  std::uint64_t checkpoints = 0;       ///< snapshots taken this run
  std::uint64_t restores = 0;          ///< runs resumed from a snapshot
  std::uint64_t deadline_stops = 0;    ///< runs truncated by deadline_buckets

  /// When the run stopped at its deadline budget, the bucket boundary
  /// k * delta at which it broke: distances strictly below this value are
  /// exactly settled, larger ones are only upper bounds.  Infinity for a
  /// run that completed normally (every distance exact).
  double settled_bound = std::numeric_limits<double>::infinity();

  /// Global synchronization rounds (collective calls) this run charged —
  /// the quantity the async engine exists to shrink.  Identical on every
  /// rank (collectives are matched).
  std::uint64_t global_collectives = 0;
  /// Work sub-rounds: inner exchange rounds + heavy phases for the sync
  /// engine; bucket expansions for the async engine (rank-local there —
  /// ranks proceed independently, so global_stats reports the mean).
  std::uint64_t sub_rounds = 0;
  /// Async engine only: aggregator flushes by trigger (capacity vs
  /// timeout/idle drain).
  std::uint64_t aggregator_flush_capacity = 0;
  std::uint64_t aggregator_flush_timeout = 0;

  double total_seconds = 0.0;
  double light_seconds = 0.0;
  double heavy_seconds = 0.0;
  double checkpoint_seconds = 0.0;     ///< time spent taking snapshots

  util::Log2Histogram frontier_hist;   ///< active-set size per inner round

  /// Per-bucket log (empty unless requested; not merged across runs).
  std::vector<BucketTraceRow> bucket_trace;

  void merge(const SsspStats& other) {
    buckets_processed += other.buckets_processed;
    light_iterations += other.light_iterations;
    heavy_phases += other.heavy_phases;
    push_rounds += other.push_rounds;
    pull_rounds += other.pull_rounds;
    relax_generated += other.relax_generated;
    relax_sent += other.relax_sent;
    relax_received += other.relax_received;
    relax_applied += other.relax_applied;
    fused_local += other.fused_local;
    filtered_hub += other.filtered_hub;
    filtered_coalesce += other.filtered_coalesce;
    frontier_broadcast += other.frontier_broadcast;
    pruned_expand += other.pruned_expand;
    pruned_apply += other.pruned_apply;
    checkpoints += other.checkpoints;
    restores += other.restores;
    deadline_stops += other.deadline_stops;
    settled_bound = std::min(settled_bound, other.settled_bound);
    global_collectives += other.global_collectives;
    sub_rounds += other.sub_rounds;
    aggregator_flush_capacity += other.aggregator_flush_capacity;
    aggregator_flush_timeout += other.aggregator_flush_timeout;
    total_seconds += other.total_seconds;
    light_seconds += other.light_seconds;
    heavy_seconds += other.heavy_seconds;
    checkpoint_seconds += other.checkpoint_seconds;
    frontier_hist.merge(other.frontier_hist);
  }
};

/// One relaxation request on the wire: "target may be reachable at
/// distance `dist` via `parent`".
struct RelaxRequest {
  graph::VertexId target;
  graph::VertexId parent;
  graph::Weight dist;
};

/// Compressed wire format (SsspConfig::compress): target as the owner's
/// local index and parent as a 32-bit global id — valid while
/// num_vertices < 2^32, which covers any graph a rank set materializes.
struct PackedRelaxRequest {
  std::uint32_t target_local;
  std::uint32_t parent;
  graph::Weight dist;
};
static_assert(sizeof(PackedRelaxRequest) == 12);

/// One frontier entry broadcast by a pull round.
struct FrontierEntry {
  graph::VertexId vertex;
  graph::Weight dist;
};

}  // namespace g500::core
