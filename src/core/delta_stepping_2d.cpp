#include "core/delta_stepping_2d.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/bucket_queue.hpp"
#include "util/timer.hpp"

namespace g500::core {

using graph::kInfDistance;
using graph::kNoVertex;
using graph::LocalId;
using graph::VertexId;
using graph::Weight;

namespace {

class Engine2D {
 public:
  Engine2D(simmpi::Comm& comm, const graph::Dist2DGraph& g, VertexId root,
           const SsspConfig& config, SsspStats& stats)
      : comm_(comm),
        g_(g),
        config_(config),
        stats_(stats),
        local_n_(static_cast<std::size_t>(g.part.count(comm.rank()))),
        my_begin_(g.part.begin(comm.rank())),
        queue_(local_n_),
        dist_(local_n_, kInfDistance),
        parent_(local_n_, kNoVertex),
        r_tag_(local_n_, BucketQueue::kNone),
        frontier_out_(static_cast<std::size_t>(comm.size())),
        candidate_out_(static_cast<std::size_t>(comm.size())) {
    if (root >= g.num_vertices) {
      throw std::out_of_range("delta_stepping_2d: root out of range");
    }
    if (config.delta > 0.0) {
      delta_ = config.delta;
    } else {
      const double avg_degree =
          std::max(1.0, static_cast<double>(g.num_directed_edges) /
                            static_cast<double>(g.num_vertices));
      delta_ = std::clamp(1.0 / avg_degree, 1.0 / 64.0, 1.0);
    }
    // Precompute light/heavy splits per source group in the edge block.
    split_.resize(g_.block.num_sources());
    for (std::size_t i = 0; i < g_.block.num_sources(); ++i) {
      split_[i] =
          g_.block.split_at(g_.block.range(i), static_cast<Weight>(delta_));
    }
    // The R ranks in my grid column hold my owned vertices' edges.
    const int me = comm_.rank();
    for (int row = 0; row < g_.grid.rows(); ++row) {
      column_group_.push_back(g_.grid.rank_at(row, g_.grid.col_of(me)));
    }
    if (g_.part.owner(root) == me) {
      const auto lr = g_.part.local(root);
      dist_[lr] = 0.0f;
      parent_[lr] = root;
      queue_.update(lr, 0);
    }
  }

  SsspResult run() {
    util::Timer total;
    std::uint64_t k_hint = 0;
    while (true) {
      const std::uint64_t k_local = queue_.next_nonempty(k_hint);
      const std::uint64_t k = comm_.allreduce_min(k_local);
      if (k == BucketQueue::kNone) break;
      ++stats_.buckets_processed;
      if (config_.max_buckets != 0 &&
          stats_.buckets_processed > config_.max_buckets) {
        throw std::runtime_error("delta_stepping_2d: max_buckets exceeded");
      }
      process_bucket(k);
      k_hint = k + 1;
    }
    stats_.total_seconds = total.seconds();

    SsspResult result;
    result.dist = std::move(dist_);
    result.parent = std::move(parent_);
    return result;
  }

 private:
  [[nodiscard]] std::uint64_t bucket_of(Weight d) const {
    return static_cast<std::uint64_t>(static_cast<double>(d) / delta_);
  }

  void relax_local(LocalId v, Weight cand, VertexId via) {
    if (!(cand < dist_[v])) return;
    dist_[v] = cand;
    parent_[v] = via;
    queue_.update(v, bucket_of(cand));
    ++stats_.relax_applied;
  }

  /// One frontier broadcast + edge scan + candidate return.  `light`
  /// selects which half of each source group is relaxed.
  void relax_round(const std::vector<LocalId>& active, bool light) {
    // --- 1. owners -> column group: active (vertex, distance) pairs.
    for (const auto v : active) {
      const FrontierEntry entry{my_begin_ + v, dist_[v]};
      for (const int dst : column_group_) {
        frontier_out_[static_cast<std::size_t>(dst)].push_back(entry);
      }
    }
    stats_.frontier_broadcast += active.size() * column_group_.size();
    const std::vector<FrontierEntry> frontier =
        comm_.alltoallv(frontier_out_);
    for (auto& box : frontier_out_) box.clear();

    // --- 2. scan edge groups, emit candidates along the row.
    for (const auto& fe : frontier) {
      const auto it_range = g_.block.find(fe.vertex);
      if (it_range.empty()) continue;
      // Recover the group index to reuse the precomputed split.
      const std::size_t group = find_group_index(fe.vertex);
      const std::uint64_t first =
          light ? it_range.first : split_[group];
      const std::uint64_t last = light ? split_[group] : it_range.last;
      for (std::uint64_t e = first; e < last; ++e) {
        ++stats_.relax_generated;
        const VertexId target = g_.block.dst(e);
        candidate_out_[static_cast<std::size_t>(g_.part.owner(target))]
            .push_back(RelaxRequest{target, fe.vertex,
                                    fe.dist + g_.block.weight(e)});
      }
    }
    if (config_.coalesce) {
      for (auto& box : candidate_out_) {
        if (box.size() < 2) continue;
        std::sort(box.begin(), box.end(),
                  [](const RelaxRequest& a, const RelaxRequest& b) {
                    if (a.target != b.target) return a.target < b.target;
                    if (a.dist != b.dist) return a.dist < b.dist;
                    return a.parent < b.parent;
                  });
        const auto last = std::unique(box.begin(), box.end(),
                                      [](const RelaxRequest& a,
                                         const RelaxRequest& b) {
                                        return a.target == b.target;
                                      });
        stats_.filtered_coalesce +=
            static_cast<std::uint64_t>(box.end() - last);
        box.erase(last, box.end());
      }
    }
    for (const auto& box : candidate_out_) stats_.relax_sent += box.size();

    // --- 3. owners apply.
    const std::vector<RelaxRequest> incoming =
        comm_.alltoallv(candidate_out_);
    for (auto& box : candidate_out_) box.clear();
    stats_.relax_received += incoming.size();
    for (const auto& req : incoming) {
      relax_local(g_.part.local(req.target), req.dist, req.parent);
    }
  }

  /// Index of `source` within the block's group list (must exist).
  [[nodiscard]] std::size_t find_group_index(VertexId source) const {
    // SourceBlock keeps sources sorted; binary search mirrors find().
    std::size_t lo = 0;
    std::size_t hi = g_.block.num_sources();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (g_.block.source(mid) < source) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  void process_bucket(std::uint64_t k) {
    util::Timer phase;
    std::vector<LocalId> settled;
    while (true) {
      std::vector<LocalId> active = queue_.extract(k);
      for (const auto v : active) {
        if (r_tag_[v] != k) {
          r_tag_[v] = k;
          settled.push_back(v);
        }
      }
      const std::uint64_t total =
          comm_.allreduce_sum<std::uint64_t>(active.size());
      if (total == 0) break;
      ++stats_.light_iterations;
      ++stats_.push_rounds;
      stats_.frontier_hist.add(total);
      relax_round(active, /*light=*/true);
    }
    stats_.light_seconds += phase.seconds();

    phase.reset();
    ++stats_.heavy_phases;
    relax_round(settled, /*light=*/false);
    stats_.heavy_seconds += phase.seconds();
  }

  simmpi::Comm& comm_;
  const graph::Dist2DGraph& g_;
  const SsspConfig& config_;
  SsspStats& stats_;

  std::size_t local_n_;
  VertexId my_begin_;
  double delta_ = 1.0;

  BucketQueue queue_;
  std::vector<Weight> dist_;
  std::vector<VertexId> parent_;
  std::vector<std::uint64_t> r_tag_;
  std::vector<std::uint64_t> split_;
  std::vector<int> column_group_;

  std::vector<std::vector<FrontierEntry>> frontier_out_;
  std::vector<std::vector<RelaxRequest>> candidate_out_;
};

}  // namespace

SsspResult delta_stepping_2d(simmpi::Comm& comm, const graph::Dist2DGraph& g,
                             VertexId root, const SsspConfig& config,
                             SsspStats* stats) {
  SsspStats scratch;
  Engine2D engine(comm, g, root, config, stats != nullptr ? *stats : scratch);
  return engine.run();
}

}  // namespace g500::core
