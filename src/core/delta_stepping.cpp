#include "core/delta_stepping.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "core/bucket_queue.hpp"
#include "core/checkpoint.hpp"
#include "simmpi/hierarchical.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace g500::core {

using graph::kInfDistance;
using graph::kNoVertex;
using graph::LocalId;
using graph::VertexId;
using graph::Weight;

double auto_delta(const graph::DistGraph& g) {
  const double avg_degree =
      std::max(1.0, static_cast<double>(g.num_directed_edges) /
                        static_cast<double>(g.num_vertices));
  return std::clamp(1.0 / avg_degree, 1.0 / 64.0, 1.0);
}

namespace {

/// All per-run state of one rank's engine.
class Engine {
 public:
  Engine(simmpi::Comm& comm, const graph::DistGraph& g,
         const std::vector<VertexId>& roots, const SsspConfig& config,
         SsspStats& stats, CheckpointState* ckpt = nullptr,
         const WarmStart* warm = nullptr)
      : comm_(comm),
        ckpt_(ckpt),
        g_(g),
        config_(config),
        stats_(stats),
        local_n_(static_cast<std::size_t>(g.part.count(comm.rank()))),
        my_begin_(g.part.begin(comm.rank())),
        delta_(config.delta > 0.0 ? config.delta : auto_delta(g)),
        queue_(local_n_),
        dist_(local_n_, kInfDistance),
        parent_(local_n_, kNoVertex),
        r_tag_(local_n_, BucketQueue::kNone),
        outbox_(static_cast<std::size_t>(comm.size())),
        use_compression_(config.compress &&
                         g.num_vertices <=
                             std::numeric_limits<std::uint32_t>::max()) {
    if (roots.empty()) {
      throw std::invalid_argument("delta_stepping: no roots");
    }
    if (config.prune_lb != nullptr && config.prune_lb->size() != local_n_) {
      throw std::invalid_argument(
          "delta_stepping: prune_lb slice does not match the owned range");
    }
    for (const auto root : roots) {
      if (root >= g.num_vertices) {
        throw std::out_of_range("delta_stepping: root out of range");
      }
    }
    // Identity of this run for snapshot matching: the roots, the effective
    // bucket width and the graph shape.  A snapshot from any other run (or
    // a different partition of the same graph) is refused on restore.
    roots_digest_ =
        util::hash_bytes(roots.data(), roots.size() * sizeof(VertexId));
    std::uint64_t delta_bits = 0;
    static_assert(sizeof(delta_bits) == sizeof(delta_));
    std::memcpy(&delta_bits, &delta_, sizeof(delta_bits));
    roots_digest_ = util::hash64(roots_digest_, delta_bits);
    roots_digest_ = util::hash64(roots_digest_, g.num_vertices);
    roots_digest_ = util::hash64(roots_digest_, local_n_);

    precompute_splits();
    init_hub_cache();
    // Pull rounds are only safe when EVERY rank that stores edges also has
    // a pull index for them; a rank-local check would diverge (e.g. a rank
    // owning only isolated vertices has an empty index) and desynchronize
    // the collective schedule.  Agree once, globally.
    const bool local_pull_ok =
        g.pull.num_entries() > 0 || g.csr.num_edges() == 0;
    pull_available_ = config.direction_opt && !comm.allreduce_or(!local_pull_ok);
    if (warm != nullptr) {
      // Repair mode: adopt the caller's labels and queue only its seeds.
      // Checkpointing is mutually exclusive — a crashed repair is re-run
      // from the (caller-held) pre-update labels, not resumed mid-wave.
      if (ckpt_ != nullptr) {
        throw std::invalid_argument(
            "delta_stepping: warm start and checkpointing are exclusive");
      }
      if (warm->dist.size() != local_n_ || warm->parent.size() != local_n_) {
        throw std::invalid_argument(
            "delta_stepping: warm-start slices do not match the owned range");
      }
      dist_ = warm->dist;
      parent_ = warm->parent;
      for (const auto root : roots) {
        if (g_.part.owner(root) == comm_.rank() &&
            dist_[g_.part.local(root)] != 0.0f) {
          throw std::invalid_argument(
              "delta_stepping: warm-start root distance must be 0");
        }
      }
      for (const auto v : warm->seeds) {
        if (v >= local_n_ || dist_[v] == kInfDistance) {
          throw std::invalid_argument(
              "delta_stepping: warm-start seed invalid or unreachable");
        }
        queue_.update(v, bucket_of(dist_[v]));
      }
      return;
    }
    for (const auto root : roots) {
      if (g_.part.owner(root) == comm_.rank()) {
        const auto lr = g_.part.local(root);
        dist_[lr] = 0.0f;
        parent_[lr] = root;
        queue_.update(lr, 0);
      }
    }
  }

  SsspResult run() {
    util::Timer total;
    const std::uint64_t rounds_at_start = comm_.stats().rounds();
    std::uint64_t k_hint = try_restore();
    while (true) {
      const std::uint64_t k_local = queue_.next_nonempty(k_hint);
      const std::uint64_t k = comm_.allreduce_min(k_local);
      if (k == BucketQueue::kNone) break;
      // Deadline budget: every rank sees the same allreduce-agreed k and
      // the same local bucket count (epochs are global), so this break is
      // taken (or not) by all ranks in lockstep — no collective skew.
      // Distances strictly below k * delta are already exactly settled.
      if (config_.deadline_buckets != 0 &&
          stats_.buckets_processed >= config_.deadline_buckets) {
        ++stats_.deadline_stops;
        stats_.settled_bound = static_cast<double>(k) * delta_;
        break;
      }
      ++stats_.buckets_processed;
      if (config_.max_buckets != 0 &&
          stats_.buckets_processed > config_.max_buckets) {
        throw std::runtime_error("delta_stepping: max_buckets exceeded");
      }
      process_bucket(k);
      maybe_checkpoint(k);
      k_hint = k + 1;
    }
    stats_.total_seconds = total.seconds();
    stats_.global_collectives = comm_.stats().rounds() - rounds_at_start;
    // A completed run's snapshot must not leak into the next one.
    if (ckpt_ != nullptr) ckpt_->clear();

    SsspResult result;
    result.dist = std::move(dist_);
    result.parent = std::move(parent_);
    return result;
  }

 private:
  // -------------------------------------------------------------- setup

  void precompute_splits() {
    split_.resize(local_n_);
    for (LocalId u = 0; u < static_cast<LocalId>(local_n_); ++u) {
      split_[u] = g_.csr.split_at(u, static_cast<Weight>(delta_));
    }
    if (config_.direction_opt && g_.pull.num_entries() > 0) {
      pull_split_.resize(g_.pull.num_sources());
      for (std::size_t i = 0; i < g_.pull.num_sources(); ++i) {
        pull_split_[i] =
            g_.pull.split_at(g_.pull.range(i), static_cast<Weight>(delta_));
      }
    }
  }

  void init_hub_cache() {
    if (!config_.hub_cache || g_.hubs.empty()) return;
    hub_mirror_.assign(g_.hubs.size(), kInfDistance);
    hub_index_.reserve(g_.hubs.size() * 2);
    for (std::size_t i = 0; i < g_.hubs.size(); ++i) {
      hub_index_.emplace(g_.hubs[i], static_cast<std::uint32_t>(i));
    }
  }

  // ------------------------------------------------------------ relaxing

  [[nodiscard]] std::uint64_t bucket_of(Weight d) const {
    return static_cast<std::uint64_t>(static_cast<double>(d) / delta_);
  }

  /// Goal-directed pruning test: can a path reaching owned vertex `v` at
  /// distance `base` still improve the query target within budget?  False
  /// when pruning is off.  Written so NaN/infinity compare conservatively
  /// (an infinite bound at an unreachable v prunes; an infinite budget
  /// never does).
  [[nodiscard]] bool pruned(LocalId v, Weight base) const {
    return config_.prune_lb != nullptr &&
           base + (*config_.prune_lb)[v] > config_.prune_budget;
  }

  /// Apply a candidate to an owned vertex.  Returns true if it improved.
  bool relax_local(LocalId v, Weight cand, VertexId via) {
    if (!(cand < dist_[v])) return false;
    if (pruned(v, cand)) {
      ++stats_.pruned_apply;
      return false;
    }
    dist_[v] = cand;
    parent_[v] = via;
    queue_.update(v, bucket_of(cand));
    ++stats_.relax_applied;
    return true;
  }

  /// Route one candidate produced by a push phase: hub filter, local
  /// fusion, or the outbox.
  void route_candidate(VertexId target, Weight cand, VertexId via) {
    ++stats_.relax_generated;
    const int owner = g_.part.owner(target);
    const bool is_local = owner == comm_.rank();

    if (!hub_mirror_.empty()) {
      const auto it = hub_index_.find(target);
      if (it != hub_index_.end()) {
        // The filter reference must never undercut the owner's authoritative
        // distance, or improving candidates would be dropped; mirrors only
        // carry values that were (or will be this round) delivered to the
        // owner, so mirror >= authoritative always holds.
        const Weight ref = is_local ? dist_[g_.part.local(target)]
                                    : hub_mirror_[it->second];
        if (!(cand < ref)) {
          ++stats_.filtered_hub;
          return;
        }
        if (!is_local) hub_mirror_[it->second] = cand;
      }
    }

    if (is_local && config_.local_fusion) {
      relax_local(g_.part.local(target), cand, via);
      ++stats_.fused_local;
      return;
    }
    outbox_[static_cast<std::size_t>(owner)].push_back(
        RelaxRequest{target, via, cand});
  }

  /// Dedup outboxes (keep the best candidate per target) and exchange.
  void exchange_and_apply() {
    if (config_.coalesce) {
      for (auto& box : outbox_) {
        if (box.size() < 2) continue;
        std::sort(box.begin(), box.end(),
                  [](const RelaxRequest& a, const RelaxRequest& b) {
                    if (a.target != b.target) return a.target < b.target;
                    if (a.dist != b.dist) return a.dist < b.dist;
                    return a.parent < b.parent;
                  });
        const auto last = std::unique(
            box.begin(), box.end(), [](const RelaxRequest& a,
                                       const RelaxRequest& b) {
              return a.target == b.target;
            });
        stats_.filtered_coalesce +=
            static_cast<std::uint64_t>(box.end() - last);
        box.erase(last, box.end());
      }
    }
    for (const auto& box : outbox_) stats_.relax_sent += box.size();
    if (use_compression_) {
      exchange_packed();
    } else {
      const std::vector<RelaxRequest> incoming =
          config_.hierarchical_group > 1
              ? simmpi::two_level_alltoallv(comm_, outbox_,
                                            config_.hierarchical_group)
              : comm_.alltoallv(outbox_);
      stats_.relax_received += incoming.size();
      for (const auto& req : incoming) {
        relax_local(g_.part.local(req.target), req.dist, req.parent);
      }
    }
    for (auto& box : outbox_) box.clear();
  }

  /// Compressed exchange: 12-byte records, target pre-localized to the
  /// owner's index space (sender knows the owner's block base).
  void exchange_packed() {
    const int P = comm_.size();
    std::vector<std::vector<PackedRelaxRequest>> packed(
        static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      const VertexId base = g_.part.begin(d);
      auto& box = packed[static_cast<std::size_t>(d)];
      box.reserve(outbox_[static_cast<std::size_t>(d)].size());
      for (const auto& req : outbox_[static_cast<std::size_t>(d)]) {
        box.push_back(PackedRelaxRequest{
            static_cast<std::uint32_t>(req.target - base),
            static_cast<std::uint32_t>(req.parent), req.dist});
      }
    }
    const std::vector<PackedRelaxRequest> incoming =
        config_.hierarchical_group > 1
            ? simmpi::two_level_alltoallv(comm_, packed,
                                          config_.hierarchical_group)
            : comm_.alltoallv(packed);
    stats_.relax_received += incoming.size();
    for (const auto& req : incoming) {
      relax_local(static_cast<LocalId>(req.target_local), req.dist,
                  req.parent);
    }
  }

  // -------------------------------------------------------- bucket logic

  /// Should this inner round pull instead of push?  Decided from global
  /// totals, so all ranks agree.
  [[nodiscard]] bool choose_pull(std::uint64_t active_global,
                                 std::uint64_t light_edges_global) const {
    if (!pull_available_) return false;
    const double fraction = static_cast<double>(active_global) /
                            static_cast<double>(g_.num_vertices);
    if (fraction < config_.pull_threshold) return false;
    const double push_bytes =
        static_cast<double>(light_edges_global) * sizeof(RelaxRequest);
    const double pull_bytes = static_cast<double>(active_global) *
                              sizeof(FrontierEntry) *
                              static_cast<double>(comm_.size());
    return push_bytes > pull_bytes * config_.pull_bias;
  }

  void push_round(const std::vector<LocalId>& active, bool light,
                  std::uint64_t k) {
    (void)k;
    for (const auto v : active) {
      // A vertex whose best continuation toward the query target already
      // exceeds the budget cannot lie on a path that improves the answer;
      // skipping its expansion is where goal-directed pruning saves edge
      // relaxations and wire traffic.
      if (pruned(v, dist_[v])) {
        ++stats_.pruned_expand;
        continue;
      }
      const std::uint64_t first = light ? g_.csr.edges_begin(v) : split_[v];
      const std::uint64_t last = light ? split_[v] : g_.csr.edges_end(v);
      const Weight d = dist_[v];
      const VertexId via = my_begin_ + v;
      for (std::uint64_t e = first; e < last; ++e) {
        route_candidate(g_.csr.dst(e), d + g_.csr.weight(e), via);
      }
    }
    exchange_and_apply();
  }

  void pull_round(const std::vector<LocalId>& active) {
    std::vector<FrontierEntry> frontier;
    frontier.reserve(active.size());
    for (const auto v : active) {
      if (pruned(v, dist_[v])) {
        ++stats_.pruned_expand;
        continue;
      }
      frontier.push_back(FrontierEntry{my_begin_ + v, dist_[v]});
    }
    stats_.frontier_broadcast += frontier.size();
    const std::vector<FrontierEntry> global = comm_.allgatherv(frontier);
    for (const auto& fe : global) {
      std::size_t idx = 0;
      const auto range = g_.pull.find(fe.vertex, &idx);
      if (range.empty()) continue;
      // Light entries only: [range.first, pull_split_[idx]).
      for (std::uint64_t e = range.first; e < pull_split_[idx]; ++e) {
        ++stats_.relax_generated;
        relax_local(g_.pull.dst(e), fe.dist + g_.pull.weight(e), fe.vertex);
      }
    }
  }

  void process_bucket(std::uint64_t k) {
    util::Timer phase;
    util::Timer bucket_timer;
    std::vector<LocalId> settled;  // the R set for the heavy phase
    BucketTraceRow row;
    row.bucket = k;

    while (true) {
      std::vector<LocalId> active = queue_.extract(k);
      for (const auto v : active) {
        if (r_tag_[v] != k) {
          r_tag_[v] = k;
          settled.push_back(v);
        }
      }
      std::uint64_t light_edges = 0;
      for (const auto v : active) {
        light_edges += split_[v] - g_.csr.edges_begin(v);
      }
      const auto totals = comm_.allreduce_vec<std::uint64_t>(
          {active.size(), light_edges},
          [](std::uint64_t a, std::uint64_t b) { return a + b; });
      if (totals[0] == 0) break;  // bucket k drained everywhere
      ++stats_.light_iterations;
      ++stats_.sub_rounds;
      ++row.light_rounds;
      row.frontier_total += totals[0];
      stats_.frontier_hist.add(totals[0]);

      if (choose_pull(totals[0], totals[1])) {
        ++stats_.pull_rounds;
        pull_round(active);
      } else {
        ++stats_.push_rounds;
        push_round(active, /*light=*/true, k);
      }
    }
    stats_.light_seconds += phase.seconds();

    sync_hub_mirrors();

    phase.reset();
    ++stats_.heavy_phases;
    ++stats_.sub_rounds;
    push_round(settled, /*light=*/false, k);
    stats_.heavy_seconds += phase.seconds();

    if (config_.collect_bucket_trace) {
      row.settled = settled.size();
      row.seconds = bucket_timer.seconds();
      stats_.bucket_trace.push_back(row);
    }
  }

  /// Tighten every mirror to the owner's authoritative distance (cheap:
  /// one H-length min-allreduce per bucket).
  void sync_hub_mirrors() {
    if (hub_mirror_.empty()) return;
    std::vector<Weight> contribution(hub_mirror_.size());
    for (std::size_t i = 0; i < g_.hubs.size(); ++i) {
      const VertexId h = g_.hubs[i];
      contribution[i] = g_.part.owner(h) == comm_.rank()
                            ? dist_[g_.part.local(h)]
                            : hub_mirror_[i];
    }
    hub_mirror_ = comm_.allreduce_vec<Weight>(
        contribution, [](Weight a, Weight b) { return b < a ? b : a; });
  }

  // -------------------------------------------------------- checkpointing

  /// Resume from the installed snapshot if every rank holds a usable one
  /// for the same epoch of the same run.  Returns the bucket to resume
  /// from (0 = fresh start).  Collective: all ranks agree on the outcome.
  std::uint64_t try_restore() {
    if (ckpt_ == nullptr) return 0;
    const bool usable = ckpt_->valid &&
                        ckpt_->roots_digest == roots_digest_ &&
                        ckpt_->dist.size() == local_n_ &&
                        ckpt_->parent.size() == local_n_ &&
                        ckpt_->hub_mirror.size() == hub_mirror_.size();
    // All ranks must restore the same epoch or none at all; a token of
    // kNone marks "no snapshot here".
    const std::uint64_t token = usable ? ckpt_->last_bucket : BucketQueue::kNone;
    const std::uint64_t lo = comm_.allreduce_min(token);
    const std::uint64_t hi = comm_.allreduce_max(token);
    if (lo != hi || lo == BucketQueue::kNone) {
      ckpt_->clear();  // stale or partial cut: start fresh everywhere
      return 0;
    }
    ckpt_->verify();  // throws CheckpointError on bit rot

    dist_ = ckpt_->dist;
    parent_ = ckpt_->parent;
    hub_mirror_ = ckpt_->hub_mirror;
    // The queue is a function of the distances: pending vertices are
    // exactly those whose bucket lies beyond the last drained epoch.
    // Entries the constructor queued below the cursor go stale harmlessly
    // (the scan starts past them and never extracts their buckets).
    for (LocalId v = 0; v < static_cast<LocalId>(local_n_); ++v) {
      if (dist_[v] == kInfDistance) continue;
      const std::uint64_t b = bucket_of(dist_[v]);
      if (b > ckpt_->last_bucket) queue_.update(v, b);
    }
    stats_.buckets_processed = ckpt_->buckets_done;
    ++stats_.restores;
    return ckpt_->last_bucket + 1;
  }

  /// Snapshot after bucket `k` when the interval says so.  Purely local —
  /// every rank reaches the same decision at the same epoch, so the
  /// per-rank snapshots form a consistent global cut without a collective.
  void maybe_checkpoint(std::uint64_t k) {
    if (ckpt_ == nullptr || config_.checkpoint_interval == 0) return;
    if (++buckets_since_ckpt_ < config_.checkpoint_interval) return;
    buckets_since_ckpt_ = 0;
    util::Timer timer;
    ckpt_->roots_digest = roots_digest_;
    ckpt_->last_bucket = k;
    ckpt_->buckets_done = stats_.buckets_processed;
    ckpt_->dist = dist_;
    ckpt_->parent = parent_;
    ckpt_->hub_mirror = hub_mirror_;
    ckpt_->seal();
    ++stats_.checkpoints;
    stats_.checkpoint_seconds += timer.seconds();
  }

  // ------------------------------------------------------------- members

  simmpi::Comm& comm_;
  CheckpointState* ckpt_;
  const graph::DistGraph& g_;
  const SsspConfig& config_;
  SsspStats& stats_;
  std::uint64_t roots_digest_ = 0;
  std::uint64_t buckets_since_ckpt_ = 0;

  std::size_t local_n_;
  VertexId my_begin_;
  double delta_;

  BucketQueue queue_;
  std::vector<Weight> dist_;
  std::vector<VertexId> parent_;
  std::vector<std::uint64_t> r_tag_;
  std::vector<std::uint64_t> split_;       // light/heavy boundary per vertex
  std::vector<std::uint64_t> pull_split_;  // same for pull source groups

  std::unordered_map<VertexId, std::uint32_t> hub_index_;
  std::vector<Weight> hub_mirror_;

  std::vector<std::vector<RelaxRequest>> outbox_;
  bool use_compression_;
  bool pull_available_ = false;
};

}  // namespace

SsspResult delta_stepping(simmpi::Comm& comm, const graph::DistGraph& g,
                          VertexId root, const SsspConfig& config,
                          SsspStats* stats) {
  SsspStats local_stats;
  Engine engine(comm, g, {root}, config,
                stats != nullptr ? *stats : local_stats);
  return engine.run();
}

SsspResult delta_stepping_multi(simmpi::Comm& comm, const graph::DistGraph& g,
                                const std::vector<VertexId>& roots,
                                const SsspConfig& config, SsspStats* stats) {
  SsspStats local_stats;
  Engine engine(comm, g, roots, config,
                stats != nullptr ? *stats : local_stats);
  return engine.run();
}

SsspResult delta_stepping_repair(simmpi::Comm& comm,
                                 const graph::DistGraph& g, VertexId root,
                                 const WarmStart& warm,
                                 const SsspConfig& config, SsspStats* stats) {
  if (config.checkpoint_interval != 0 || config.deadline_buckets != 0) {
    throw std::invalid_argument(
        "delta_stepping_repair: checkpoint/deadline features are rejected");
  }
  SsspStats local_stats;
  Engine engine(comm, g, {root}, config,
                stats != nullptr ? *stats : local_stats, nullptr, &warm);
  return engine.run();
}

SsspResult delta_stepping_checkpointed(simmpi::Comm& comm,
                                       const graph::DistGraph& g,
                                       VertexId root,
                                       const SsspConfig& config,
                                       CheckpointState* ckpt,
                                       SsspStats* stats) {
  SsspStats local_stats;
  Engine engine(comm, g, {root}, config,
                stats != nullptr ? *stats : local_stats, ckpt);
  return engine.run();
}

SequentialResult gather_result(simmpi::Comm& comm, const graph::DistGraph& g,
                               const SsspResult& mine) {
  // Block partitions are contiguous in rank order, so concatenating the
  // per-rank slices yields globally-indexed vectors directly.
  SequentialResult whole;
  whole.dist = comm.allgatherv(mine.dist);
  whole.parent = comm.allgatherv(mine.parent);
  if (whole.dist.size() != g.num_vertices ||
      whole.parent.size() != g.num_vertices) {
    throw std::logic_error("gather_result: size mismatch");
  }
  return whole;
}

}  // namespace g500::core
