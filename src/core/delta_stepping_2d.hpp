// Delta-stepping over the 2-D (checkerboard) edge distribution.
//
// The comparison engine for the paper's 1-D design: vertex state (distance,
// parent, buckets) stays with the 1-D owner, but edges live on the process
// grid, so a relaxation round becomes
//
//   1. owners broadcast their active (vertex, distance) pairs down their
//      grid *column* (the R ranks holding their out-edges),
//   2. edge ranks scan the light (or heavy) part of each active source's
//      edge group and emit candidates,
//   3. candidates travel along the grid *row* to the destination's owner,
//      which applies them and re-buckets.
//
// Per-rank communication partners shrink from P to R + C ~ 2 sqrt(P); the
// price is that every frontier entry is replicated R times.  bench
// `bench_partition2d` quantifies the trade against the 1-D engine.
//
// Honoured SsspConfig fields: delta, coalesce, max_buckets.  Hub caching,
// direction switching, fusion and compression are 1-D engine features.
#pragma once

#include "core/dijkstra.hpp"
#include "core/sssp_types.hpp"
#include "graph/grid2d.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

[[nodiscard]] SsspResult delta_stepping_2d(simmpi::Comm& comm,
                                           const graph::Dist2DGraph& g,
                                           graph::VertexId root,
                                           const SsspConfig& config = {},
                                           SsspStats* stats = nullptr);

}  // namespace g500::core
