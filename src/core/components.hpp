// Distributed connected components by min-label propagation.
//
// Labels every vertex with the smallest vertex id in its component.
// Built on the same owner-computes substrate as the SSSP engines: rounds
// of neighbour exchanges (coalesced per destination) until no label
// improves anywhere.  Used by the evaluation to characterize the Kronecker
// graphs (one giant component plus isolated-vertex dust) and by examples
// as a reachability preflight before shortest-path queries.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

/// Execution counters of one labelling run, SsspStats-style: rounds is
/// identical on every rank (it counts collectives), labels_sent /
/// labels_applied are this rank's share (allreduce_sum for global
/// totals), and merge() accumulates windows the same way
/// SsspStats::merge does — so the serving layer can fold component waves
/// into its per-class cost breakdown instead of reporting zeros.
struct ComponentsStats {
  std::uint64_t rounds = 0;
  std::uint64_t labels_sent = 0;
  std::uint64_t labels_applied = 0;
  double seconds = 0.0;

  void merge(const ComponentsStats& other) {
    rounds += other.rounds;
    labels_sent += other.labels_sent;
    labels_applied += other.labels_applied;
    seconds += other.seconds;
  }
};

/// Per-owned-vertex component labels (label == smallest global id in the
/// component; isolated vertices label themselves).
[[nodiscard]] std::vector<graph::VertexId> connected_components(
    simmpi::Comm& comm, const graph::DistGraph& g,
    ComponentsStats* stats = nullptr);

/// Summary over a labelling: component count and the size of the largest
/// component (global, identical on every rank).
struct ComponentsSummary {
  std::uint64_t num_components = 0;
  std::uint64_t largest_size = 0;
  std::uint64_t isolated_vertices = 0;  ///< components of size 1
};

[[nodiscard]] ComponentsSummary summarize_components(
    simmpi::Comm& comm, const graph::DistGraph& g,
    const std::vector<graph::VertexId>& labels);

}  // namespace g500::core
