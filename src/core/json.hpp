// JSON serialization of the SSSP engine's config, counters and protocol
// reports (docs/telemetry.md is the authoritative schema reference).
//
// Versioning: bump the constant on any breaking change; added fields are
// non-breaking.
#pragma once

#include "core/components.hpp"
#include "core/kcore.hpp"
#include "core/pagerank.hpp"
#include "core/runner.hpp"
#include "core/sssp_types.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"

namespace g500::core {

constexpr int kSsspStatsSchemaVersion = 1;
constexpr int kBenchmarkReportSchemaVersion = 1;

/// The full knob set (one field per SsspConfig member, same names).
[[nodiscard]] util::Json to_json(const SsspConfig& config);

/// One per-bucket execution record.
[[nodiscard]] util::Json to_json(const BucketTraceRow& row);

/// Log2 histogram: {"buckets", "count", "sum", "max", "mean"}.
[[nodiscard]] util::Json to_json(const util::Log2Histogram& hist);

/// Execution counters of one run, including the checkpoint/recovery
/// counters and (when collected) the per-bucket trace.
[[nodiscard]] util::Json to_json(const SsspStats& stats);

/// Analytics-kernel counters (docs/kernels.md): rounds/labels of a
/// components labelling, iterations/residual of a PageRank run, the
/// peel schedule of a k-core decomposition.
[[nodiscard]] util::Json to_json(const ComponentsStats& stats);
[[nodiscard]] util::Json to_json(const PageRankStats& stats);
[[nodiscard]] util::Json to_json(const KCoreStats& stats);

/// One root's outcome under the benchmark protocol.
[[nodiscard]] util::Json to_json(const RootRun& run);

/// Whole-protocol report: graph facts, per-root runs, aggregated stats,
/// headline numbers, resilience accounting.
[[nodiscard]] util::Json to_json(const BenchmarkReport& report);

}  // namespace g500::core
