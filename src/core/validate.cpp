#include "core/validate.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/remote.hpp"

namespace g500::core {

using graph::kInfDistance;
using graph::kNoVertex;
using graph::LocalId;
using graph::VertexId;
using graph::Weight;

namespace {

constexpr std::size_t kMaxErrorsPerRank = 4;

class Collector {
 public:
  void fail(const std::string& message) {
    ok_ = false;
    if (errors_.size() < kMaxErrorsPerRank) errors_.push_back(message);
  }

  [[nodiscard]] bool ok() const noexcept { return ok_; }
  [[nodiscard]] const std::vector<std::string>& errors() const noexcept {
    return errors_;
  }

 private:
  bool ok_ = true;
  std::vector<std::string> errors_;
};

std::string describe(const char* check, VertexId v, const std::string& what) {
  std::ostringstream out;
  out << check << " failed at vertex " << v << ": " << what;
  return out.str();
}

}  // namespace

ValidationReport validate_sssp(simmpi::Comm& comm, const graph::DistGraph& g,
                               VertexId root, const SsspResult& mine,
                               double tolerance) {
  Collector c;
  const int rank = comm.rank();
  const VertexId my_begin = g.part.begin(rank);
  const auto local_n = static_cast<LocalId>(g.part.count(rank));

  if (mine.dist.size() != local_n || mine.parent.size() != local_n) {
    c.fail("result size does not match owned vertex count");
  }
  // Work on padded copies so a malformed result still keeps every rank's
  // collective sequence in lockstep (the verdict is already a failure).
  std::vector<Weight> dist = mine.dist;
  dist.resize(local_n, kInfDistance);
  std::vector<VertexId> parent = mine.parent;
  parent.resize(local_n, kNoVertex);

  // ---- V1: local consistency ------------------------------------------
  std::uint64_t reachable_local = 0;
  if (c.ok()) {
    for (LocalId v = 0; v < local_n; ++v) {
      const VertexId gv = my_begin + v;
      const bool has_parent = parent[v] != kNoVertex;
      const bool has_dist = dist[v] != kInfDistance;
      if (has_dist) ++reachable_local;
      if (has_parent != has_dist) {
        c.fail(describe("V1", gv, "parent/distance reachability mismatch"));
      }
      if (gv == root) {
        if (parent[v] != root || dist[v] != 0.0f) {
          c.fail(describe("V1", gv, "root must be its own parent at dist 0"));
        }
      } else if (has_parent && parent[v] == gv) {
        c.fail(describe("V1", gv, "non-root vertex is its own parent"));
      }
      if (has_dist && !(dist[v] >= 0.0f)) {
        c.fail(describe("V1", gv, "negative distance"));
      }
    }
  }

  // ---- Fetch remote distances for V2/V3 --------------------------------
  // One query per adjacency entry plus one per parent; deduplicated.
  std::vector<VertexId> queries;
  queries.reserve(g.csr.num_edges() + local_n);
  for (std::uint64_t e = 0; e < g.csr.num_edges(); ++e) {
    queries.push_back(g.csr.dst(e));
  }
  for (LocalId v = 0; v < local_n; ++v) {
    if (parent[v] != kNoVertex) queries.push_back(parent[v]);
  }
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  const std::vector<Weight> fetched =
      fetch_values(comm, g.part, queries, dist);
  auto dist_of = [&](VertexId v) -> Weight {
    const auto it = std::lower_bound(queries.begin(), queries.end(), v);
    return fetched[static_cast<std::size_t>(it - queries.begin())];
  };

  // ---- V2: no relaxable edge -------------------------------------------
  std::uint64_t edges_checked_local = 0;
  for (LocalId u = 0; c.ok() && u < local_n; ++u) {
    const Weight du = dist[u];
    if (du == kInfDistance) {
      // Unreachable u imposes no forward constraint, but a reachable
      // neighbour would make u reachable: covered when scanning that
      // neighbour's own edges (the graph stores both directions).
      continue;
    }
    for (std::uint64_t e = g.csr.edges_begin(u); e < g.csr.edges_end(u); ++e) {
      ++edges_checked_local;
      const Weight dv = dist_of(g.csr.dst(e));
      const double slack = static_cast<double>(du) +
                           static_cast<double>(g.csr.weight(e)) -
                           static_cast<double>(dv);
      if (dv == kInfDistance || slack < -tolerance) {
        c.fail(describe("V2", my_begin + u,
                        "edge to " + std::to_string(g.csr.dst(e)) +
                            " is still relaxable"));
        break;
      }
    }
  }

  // ---- V3: tree edges are real edges with consistent distances ---------
  for (LocalId v = 0; c.ok() && v < local_n; ++v) {
    const VertexId gv = my_begin + v;
    const VertexId p = parent[v];
    if (p == kNoVertex || gv == root) continue;
    const Weight dp = dist_of(p);
    bool found = false;
    for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v); ++e) {
      if (g.csr.dst(e) != p) continue;
      const double expect =
          static_cast<double>(dp) + static_cast<double>(g.csr.weight(e));
      if (std::fabs(expect - static_cast<double>(dist[v])) <=
          tolerance * std::max(1.0, std::fabs(expect))) {
        found = true;
        break;
      }
    }
    if (!found) {
      c.fail(describe("V3", gv,
                      "no edge to parent " + std::to_string(p) +
                          " matching dist[v] = dist[p] + w"));
    }
  }

  // ---- V4: parent structure is a tree rooted at `root` ------------------
  // Pointer doubling: anchor[v] <- anchor[anchor[v]] until every reachable
  // vertex anchors at the root.  64 iterations cover any acyclic depth;
  // non-convergence means a cycle or a stray forest.
  {
    std::vector<VertexId> anchor(local_n);
    for (LocalId v = 0; v < local_n; ++v) {
      anchor[v] = parent[v] == kNoVertex ? my_begin + v : parent[v];
    }
    bool converged = false;
    for (int iter = 0; iter < 64; ++iter) {
      bool moving_local = false;
      for (LocalId v = 0; v < local_n; ++v) {
        if (parent[v] != kNoVertex && anchor[v] != root) {
          moving_local = true;
          break;
        }
      }
      if (!comm.allreduce_or(moving_local)) {
        converged = true;
        break;
      }
      const std::vector<VertexId> next =
          fetch_values(comm, g.part, anchor, anchor);
      for (LocalId v = 0; v < local_n; ++v) anchor[v] = next[v];
    }
    if (!converged) {
      c.fail("V4 failed: parent pointers do not converge to the root "
             "(cycle or disconnected tree)");
    }
  }

  // ---- Aggregate the verdict --------------------------------------------
  ValidationReport report;
  report.ok = !comm.allreduce_or(!c.ok());
  report.edges_checked = comm.allreduce_sum(edges_checked_local);
  report.reachable = comm.allreduce_sum(reachable_local);
  struct ErrorLine {
    char text[160];
  };
  std::vector<ErrorLine> lines;
  for (const auto& msg : c.errors()) {
    ErrorLine line{};
    msg.copy(line.text, sizeof(line.text) - 1);
    lines.push_back(line);
  }
  const std::vector<ErrorLine> all = comm.allgatherv(lines);
  for (const auto& line : all) report.errors.emplace_back(line.text);
  return report;
}

}  // namespace g500::core
