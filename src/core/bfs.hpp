// Distributed direction-optimizing BFS — the other Graph 500 kernel.
//
// The record team's SSSP work builds directly on their 281-trillion-edge
// BFS run; the BFS engine here implements the same structure on this
// library's substrate: 1-D owner-computes partition, top-down rounds that
// push (child, parent) messages to owners, and bottom-up rounds where each
// unvisited vertex scans its own edges against a broadcast frontier bitmap
// (Beamer-style direction optimization).  Frontier representation switches
// between a sparse vertex list and a dense bitmap with the direction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

struct BfsConfig {
  /// Enable bottom-up rounds at all.
  bool direction_opt = true;
  /// Switch top-down -> bottom-up when frontier edges exceed (unexplored
  /// edges / alpha); Beamer's heuristic, alpha ~ 14 on power-law graphs.
  double alpha = 14.0;
  /// Switch back to top-down when the frontier shrinks below n / beta.
  double beta = 24.0;
};

/// Per-rank BFS output for owned vertices: parent in the BFS tree
/// (kNoVertex when unreached, root for the root) and hop level
/// (kNoLevel when unreached).
struct BfsResult {
  static constexpr std::uint32_t kNoLevel = ~std::uint32_t{0};
  std::vector<graph::VertexId> parent;
  std::vector<std::uint32_t> level;
};

struct BfsStats {
  std::uint64_t rounds = 0;
  std::uint64_t top_down_rounds = 0;
  std::uint64_t bottom_up_rounds = 0;
  std::uint64_t edges_scanned = 0;
  std::uint64_t messages_sent = 0;
  double seconds = 0.0;
};

/// Run one BFS from `root`.  SPMD: call from every rank.
[[nodiscard]] BfsResult bfs(simmpi::Comm& comm, const graph::DistGraph& g,
                            graph::VertexId root, const BfsConfig& config = {},
                            BfsStats* stats = nullptr);

/// Graph 500 BFS result checks: root/level/parent consistency, tree edges
/// are graph edges spanning exactly one level, every edge spans <= 1 level
/// (so the labelling is a true BFS), and reachability agrees across edges.
struct BfsValidationReport {
  bool ok = true;
  std::vector<std::string> errors;
  std::uint64_t reachable = 0;
  std::uint32_t max_level = 0;
};

[[nodiscard]] BfsValidationReport validate_bfs(simmpi::Comm& comm,
                                               const graph::DistGraph& g,
                                               graph::VertexId root,
                                               const BfsResult& mine);

}  // namespace g500::core
