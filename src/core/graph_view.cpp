#include "core/graph_view.hpp"

#include <algorithm>

namespace g500::core {

GraphResidency graph_residency(const graph::DistGraph& g) {
  GraphResidency r;
  r.backing = g.backing;
  r.resident_bytes = g.csr.resident_bytes() + g.pull.resident_bytes();
  r.mapped_bytes = g.mapped_bytes;
  return r;
}

std::uint64_t estimate_inmemory_build_bytes(
    const graph::KroneckerParams& params, int ranks) {
  const std::uint64_t per_rank =
      params.num_edges() / static_cast<std::uint64_t>(std::max(1, ranks));
  // Outbox: 2 directed WireEdges per input tuple; alltoallv result: the
  // same 2 per tuple on average.  Both live at once at the exchange peak.
  return per_rank * 4 * sizeof(graph::WireEdge);
}

util::Json to_json(const GraphResidency& r) {
  util::Json j = util::Json::object();
  j["backing"] =
      r.backing == graph::GraphBacking::kMapped ? "mapped" : "resident";
  j["resident_bytes"] = r.resident_bytes;
  j["mapped_bytes"] = r.mapped_bytes;
  return j;
}

}  // namespace g500::core
