#include "core/bfs.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/remote.hpp"
#include "util/timer.hpp"

namespace g500::core {

using graph::kNoVertex;
using graph::LocalId;
using graph::VertexId;

namespace {

/// (child, parent) message of a top-down round.
struct Visit {
  VertexId child;
  VertexId parent;
};

class BitmapFrontier {
 public:
  explicit BitmapFrontier(VertexId n)
      : words_((static_cast<std::size_t>(n) + 63) / 64, 0) {}

  void set(VertexId v) { words_[v >> 6] |= std::uint64_t{1} << (v & 63); }

  [[nodiscard]] bool test(VertexId v) const {
    return (words_[v >> 6] >> (v & 63)) & 1;
  }

  /// OR-combine across ranks so every rank sees the global frontier.
  void allreduce(simmpi::Comm& comm) {
    words_ = comm.allreduce_vec<std::uint64_t>(
        words_, [](std::uint64_t a, std::uint64_t b) { return a | b; });
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

 private:
  std::vector<std::uint64_t> words_;
};

}  // namespace

BfsResult bfs(simmpi::Comm& comm, const graph::DistGraph& g, VertexId root,
              const BfsConfig& config, BfsStats* stats) {
  if (root >= g.num_vertices) {
    throw std::out_of_range("bfs: root out of range");
  }
  BfsStats scratch;
  BfsStats& st = stats != nullptr ? *stats : scratch;
  util::Timer total;

  const int rank = comm.rank();
  const auto local_n = static_cast<LocalId>(g.part.count(rank));
  const VertexId my_begin = g.part.begin(rank);

  BfsResult result;
  result.parent.assign(local_n, kNoVertex);
  result.level.assign(local_n, BfsResult::kNoLevel);

  std::vector<LocalId> frontier;
  std::vector<LocalId> next;
  BitmapFrontier bitmap(g.num_vertices);

  // Unexplored out-edges of this rank (the "mu" of Beamer's heuristic),
  // maintained incrementally as vertices are visited.
  std::uint64_t unexplored_edges = g.csr.num_edges();

  auto visit = [&](LocalId v, VertexId parent, std::uint32_t level) {
    result.parent[v] = parent;
    result.level[v] = level;
    next.push_back(v);
    unexplored_edges -= g.csr.degree(v);
  };

  if (g.part.owner(root) == rank) {
    visit(g.part.local(root), root, 0);
  }
  frontier.swap(next);

  std::vector<std::vector<Visit>> outbox(static_cast<std::size_t>(comm.size()));
  bool bottom_up = false;
  std::uint32_t level = 0;

  while (true) {
    std::uint64_t frontier_edges = 0;
    for (const auto v : frontier) frontier_edges += g.csr.degree(v);
    const auto totals = comm.allreduce_vec<std::uint64_t>(
        {static_cast<std::uint64_t>(frontier.size()), frontier_edges,
         unexplored_edges},
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    if (totals[0] == 0) break;
    ++st.rounds;
    ++level;

    if (config.direction_opt) {
      // Beamer's switch: go bottom-up when the frontier's edges outnumber
      // a 1/alpha share of what is left to explore; return to top-down
      // when the frontier thins below n/beta.
      if (!bottom_up && totals[1] > totals[2] / config.alpha) {
        bottom_up = true;
      } else if (bottom_up &&
                 totals[0] < static_cast<double>(g.num_vertices) /
                                 config.beta) {
        bottom_up = false;
      }
    }

    if (bottom_up) {
      ++st.bottom_up_rounds;
      bitmap.clear();
      for (const auto v : frontier) bitmap.set(my_begin + v);
      bitmap.allreduce(comm);
      for (LocalId v = 0; v < local_n; ++v) {
        if (result.level[v] != BfsResult::kNoLevel) continue;
        for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v);
             ++e) {
          ++st.edges_scanned;
          if (bitmap.test(g.csr.dst(e))) {
            visit(v, g.csr.dst(e), level);
            break;
          }
        }
      }
    } else {
      ++st.top_down_rounds;
      for (const auto v : frontier) {
        const VertexId via = my_begin + v;
        for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v);
             ++e) {
          ++st.edges_scanned;
          const VertexId target = g.csr.dst(e);
          const int owner = g.part.owner(target);
          if (owner == rank) {
            const auto lt = g.part.local(target);
            if (result.level[lt] == BfsResult::kNoLevel) {
              visit(lt, via, level);
            }
          } else {
            outbox[static_cast<std::size_t>(owner)].push_back(
                Visit{target, via});
          }
        }
      }
      // Per-destination dedup: one visit per child suffices.
      for (auto& box : outbox) {
        std::sort(box.begin(), box.end(), [](const Visit& a, const Visit& b) {
          if (a.child != b.child) return a.child < b.child;
          return a.parent < b.parent;
        });
        box.erase(std::unique(box.begin(), box.end(),
                              [](const Visit& a, const Visit& b) {
                                return a.child == b.child;
                              }),
                  box.end());
        st.messages_sent += box.size();
      }
      const std::vector<Visit> incoming = comm.alltoallv(outbox);
      for (auto& box : outbox) box.clear();
      for (const auto& m : incoming) {
        const auto lv = g.part.local(m.child);
        if (result.level[lv] == BfsResult::kNoLevel) {
          visit(lv, m.parent, level);
        }
      }
    }

    frontier.clear();
    frontier.swap(next);
  }

  st.seconds = total.seconds();
  return result;
}

BfsValidationReport validate_bfs(simmpi::Comm& comm,
                                 const graph::DistGraph& g, VertexId root,
                                 const BfsResult& mine) {
  const int rank = comm.rank();
  const auto local_n = static_cast<LocalId>(g.part.count(rank));
  const VertexId my_begin = g.part.begin(rank);

  bool ok = true;
  std::vector<std::string> errors;
  auto fail = [&](const std::string& message) {
    ok = false;
    if (errors.size() < 4) errors.push_back(message);
  };

  std::vector<std::uint32_t> level = mine.level;
  level.resize(local_n, BfsResult::kNoLevel);
  std::vector<VertexId> parent = mine.parent;
  parent.resize(local_n, kNoVertex);
  if (mine.level.size() != local_n || mine.parent.size() != local_n) {
    fail("result size does not match owned vertex count");
  }

  // ---- B1: local consistency -------------------------------------------
  std::uint64_t reachable_local = 0;
  std::uint32_t max_level_local = 0;
  for (LocalId v = 0; v < local_n; ++v) {
    const VertexId gv = my_begin + v;
    const bool has_parent = parent[v] != kNoVertex;
    const bool has_level = level[v] != BfsResult::kNoLevel;
    if (has_level) {
      ++reachable_local;
      max_level_local = std::max(max_level_local, level[v]);
    }
    if (has_parent != has_level) {
      fail("B1: vertex " + std::to_string(gv) +
           " parent/level reachability mismatch");
    }
    if (gv == root) {
      if (parent[v] != root || level[v] != 0) {
        fail("B1: root must be its own parent at level 0");
      }
    } else if (has_parent && parent[v] == gv) {
      fail("B1: non-root vertex " + std::to_string(gv) +
           " is its own parent");
    }
  }

  // ---- Fetch remote levels ----------------------------------------------
  std::vector<VertexId> queries;
  queries.reserve(g.csr.num_edges() + local_n);
  for (std::uint64_t e = 0; e < g.csr.num_edges(); ++e) {
    queries.push_back(g.csr.dst(e));
  }
  for (LocalId v = 0; v < local_n; ++v) {
    if (parent[v] != kNoVertex) queries.push_back(parent[v]);
  }
  std::sort(queries.begin(), queries.end());
  queries.erase(std::unique(queries.begin(), queries.end()), queries.end());
  const auto fetched = fetch_values(comm, g.part, queries, level);
  auto level_of = [&](VertexId v) {
    const auto it = std::lower_bound(queries.begin(), queries.end(), v);
    return fetched[static_cast<std::size_t>(it - queries.begin())];
  };

  // ---- B2: every edge spans at most one level; reachability agrees -------
  for (LocalId u = 0; ok && u < local_n; ++u) {
    if (level[u] == BfsResult::kNoLevel) continue;
    for (std::uint64_t e = g.csr.edges_begin(u); e < g.csr.edges_end(u); ++e) {
      const auto lv = level_of(g.csr.dst(e));
      if (lv == BfsResult::kNoLevel) {
        fail("B2: reachable vertex " + std::to_string(my_begin + u) +
             " has unreached neighbour " + std::to_string(g.csr.dst(e)));
        break;
      }
      const auto hi = std::max(level[u], lv);
      const auto lo = std::min(level[u], lv);
      if (hi - lo > 1) {
        fail("B2: edge " + std::to_string(my_begin + u) + "->" +
             std::to_string(g.csr.dst(e)) + " spans more than one level");
        break;
      }
    }
  }

  // ---- B3: tree edges are graph edges spanning exactly one level ---------
  for (LocalId v = 0; ok && v < local_n; ++v) {
    const VertexId gv = my_begin + v;
    const VertexId p = parent[v];
    if (p == kNoVertex || gv == root) continue;
    bool adjacent = false;
    for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v); ++e) {
      if (g.csr.dst(e) == p) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) {
      fail("B3: parent of " + std::to_string(gv) + " is not adjacent");
      continue;
    }
    if (level_of(p) == BfsResult::kNoLevel) {
      fail("B3: parent of " + std::to_string(gv) + " is unreached");
      continue;
    }
    if (level_of(p) + 1 != level[v]) {
      fail("B3: vertex " + std::to_string(gv) +
           " level is not parent level + 1");
    }
  }

  // ---- aggregate ----------------------------------------------------------
  BfsValidationReport report;
  report.ok = !comm.allreduce_or(!ok);
  report.reachable = comm.allreduce_sum(reachable_local);
  report.max_level = comm.allreduce_max(max_level_local);
  struct ErrorLine {
    char text[160];
  };
  std::vector<ErrorLine> lines;
  for (const auto& msg : errors) {
    ErrorLine line{};
    msg.copy(line.text, sizeof(line.text) - 1);
    lines.push_back(line);
  }
  const auto all = comm.allgatherv(lines);
  for (const auto& line : all) report.errors.emplace_back(line.text);
  return report;
}

}  // namespace g500::core
