#include "core/async_delta_stepping.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "core/bucket_queue.hpp"
#include "core/delta_stepping.hpp"
#include "simmpi/aggregator.hpp"
#include "util/timer.hpp"

namespace g500::core {

using graph::kInfDistance;
using graph::kNoVertex;
using graph::LocalId;
using graph::VertexId;
using graph::Weight;

namespace {

/// One rank's asynchronous engine, templated on the wire record: the wide
/// RelaxRequest or the 12-byte PackedRelaxRequest (compress on and the
/// graph small enough for 32-bit ids, the same rule the sync engine uses).
template <typename Msg>
class AsyncEngine {
 public:
  AsyncEngine(simmpi::Comm& comm, const graph::DistGraph& g,
              const std::vector<VertexId>& roots, const SsspConfig& config,
              SsspStats& stats)
      : comm_(comm),
        g_(g),
        config_(config),
        stats_(stats),
        local_n_(static_cast<std::size_t>(g.part.count(comm.rank()))),
        my_begin_(g.part.begin(comm.rank())),
        delta_(config.delta > 0.0 ? config.delta : auto_delta(g)),
        queue_(local_n_),
        dist_(local_n_, kInfDistance),
        parent_(local_n_, kNoVertex),
        agg_(comm, make_options(config)) {
    if (roots.empty()) {
      throw std::invalid_argument("async_delta_stepping: no roots");
    }
    if (config.prune_lb != nullptr) {
      // Pruning drops candidates against a budget that only monotone
      // (synchronized) execution keeps admissible; a chaotic schedule could
      // prune a path the fixed point needs.
      throw std::invalid_argument(
          "async_delta_stepping: goal-directed pruning requires the "
          "synchronous engine");
    }
    for (const auto root : roots) {
      if (root >= g.num_vertices) {
        throw std::out_of_range("async_delta_stepping: root out of range");
      }
    }
    init_hub_cache();
    agg_.set_compactor([this](std::vector<Msg>& buf) { compact(buf); });
    for (const auto root : roots) {
      if (g_.part.owner(root) == comm_.rank()) {
        const auto lr = g_.part.local(root);
        dist_[lr] = 0.0f;
        parent_[lr] = root;
        queue_.update(lr, 0);
      }
    }
  }

  SsspResult run() {
    util::Timer total;
    const simmpi::CommStats& cs = comm_.stats();
    const std::uint64_t rounds0 = cs.rounds();
    const std::uint64_t cap0 = cs.p2p_flush_capacity;
    const std::uint64_t timeout0 = cs.p2p_flush_timeout;

    async_phase();
    settle_sync();

    stats_.total_seconds = total.seconds();
    stats_.global_collectives = cs.rounds() - rounds0;
    stats_.aggregator_flush_capacity = cs.p2p_flush_capacity - cap0;
    stats_.aggregator_flush_timeout = cs.p2p_flush_timeout - timeout0;

    SsspResult result;
    result.dist = std::move(dist_);
    result.parent = std::move(parent_);
    return result;
  }

 private:
  static simmpi::AggregatorOptions make_options(const SsspConfig& config) {
    simmpi::AggregatorOptions options;
    options.capacity = std::max<std::size_t>(1, config.aggregator_capacity);
    options.max_age = std::max<std::uint64_t>(1, config.aggregator_max_age);
    return options;
  }

  void init_hub_cache() {
    if (!config_.hub_cache || g_.hubs.empty()) return;
    hub_mirror_.assign(g_.hubs.size(), kInfDistance);
    hub_index_.reserve(g_.hubs.size() * 2);
    for (std::size_t i = 0; i < g_.hubs.size(); ++i) {
      hub_index_.emplace(g_.hubs[i], static_cast<std::uint32_t>(i));
    }
  }

  [[nodiscard]] std::uint64_t bucket_of(Weight d) const {
    return static_cast<std::uint64_t>(static_cast<double>(d) / delta_);
  }

  // --------------------------------------------------------- wire format

  [[nodiscard]] Msg encode(int owner, VertexId target, Weight cand,
                           VertexId via) const {
    if constexpr (std::is_same_v<Msg, PackedRelaxRequest>) {
      return PackedRelaxRequest{
          static_cast<std::uint32_t>(target - g_.part.begin(owner)),
          static_cast<std::uint32_t>(via), cand};
    } else {
      return RelaxRequest{target, via, cand};
    }
  }

  void apply(const Msg& m) {
    ++stats_.relax_received;
    if constexpr (std::is_same_v<Msg, PackedRelaxRequest>) {
      relax_local(static_cast<LocalId>(m.target_local), m.dist,
                  static_cast<VertexId>(m.parent));
    } else {
      relax_local(g_.part.local(m.target), m.dist, m.parent);
    }
  }

  /// Flush hook: dedup to the best candidate per target (the aggregator
  /// analog of the sync engine's per-round coalescing), then count what
  /// actually ships.
  void compact(std::vector<Msg>& buf) {
    if (config_.coalesce && buf.size() > 1) {
      const auto key = [](const Msg& m) {
        if constexpr (std::is_same_v<Msg, PackedRelaxRequest>) {
          return m.target_local;
        } else {
          return m.target;
        }
      };
      std::sort(buf.begin(), buf.end(), [&](const Msg& a, const Msg& b) {
        if (key(a) != key(b)) return key(a) < key(b);
        if (a.dist != b.dist) return a.dist < b.dist;
        return a.parent < b.parent;
      });
      const auto last = std::unique(
          buf.begin(), buf.end(),
          [&](const Msg& a, const Msg& b) { return key(a) == key(b); });
      stats_.filtered_coalesce += static_cast<std::uint64_t>(buf.end() - last);
      buf.erase(last, buf.end());
    }
    stats_.relax_sent += buf.size();
  }

  // ------------------------------------------------------------ relaxing

  bool relax_local(LocalId v, Weight cand, VertexId via) {
    if (!(cand < dist_[v])) return false;
    dist_[v] = cand;
    parent_[v] = via;
    const std::uint64_t b = bucket_of(cand);
    queue_.update(v, b);
    hint_ = std::min(hint_, b);
    ++stats_.relax_applied;
    return true;
  }

  /// Route one generated candidate: hub filter, local fusion, or the
  /// aggregator.  Unlike the sync engine the hub mirror is never tightened
  /// by a collective — it only records candidates this rank itself shipped,
  /// which still upper-bounds the owner's authoritative distance (the
  /// invariant the filter needs), just less tightly.
  void route_candidate(VertexId target, Weight cand, VertexId via) {
    ++stats_.relax_generated;
    const int owner = g_.part.owner(target);
    const bool is_local = owner == comm_.rank();

    if (!hub_mirror_.empty()) {
      const auto it = hub_index_.find(target);
      if (it != hub_index_.end()) {
        const Weight ref = is_local ? dist_[g_.part.local(target)]
                                    : hub_mirror_[it->second];
        if (!(cand < ref)) {
          ++stats_.filtered_hub;
          return;
        }
        if (!is_local) hub_mirror_[it->second] = cand;
      }
    }

    if (is_local && config_.local_fusion) {
      relax_local(g_.part.local(target), cand, via);
      ++stats_.fused_local;
      return;
    }
    agg_.send(owner, encode(owner, target, cand, via));
  }

  // ---------------------------------------------------------- async phase

  /// Expand every edge of every vertex in bucket k.  No light/heavy split:
  /// without a drained-bucket barrier there is no "settled" set to defer
  /// heavy edges for, and re-expansion on improvement keeps correctness.
  void expand_bucket(std::uint64_t k) {
    const std::vector<LocalId> active = queue_.extract(k);
    for (const auto v : active) {
      const Weight d = dist_[v];
      const VertexId via = my_begin_ + v;
      const std::uint64_t last = g_.csr.edges_end(v);
      for (std::uint64_t e = g_.csr.edges_begin(v); e < last; ++e) {
        route_candidate(g_.csr.dst(e), d + g_.csr.weight(e), via);
      }
    }
  }

  void async_phase() {
    std::vector<Msg> inbox;
    while (!agg_.quiescent()) {
      inbox.clear();
      agg_.poll(inbox);
      for (const Msg& m : inbox) apply(m);

      const std::uint64_t k = queue_.next_nonempty(hint_);
      if (k != BucketQueue::kNone) {
        ++stats_.sub_rounds;
        ++stats_.buckets_processed;
        if (config_.max_buckets != 0 &&
            stats_.buckets_processed > config_.max_buckets) {
          throw std::runtime_error(
              "async_delta_stepping: max_buckets exceeded");
        }
        hint_ = k;  // relaxations may refill this very bucket
        expand_bucket(k);
      } else if (inbox.empty()) {
        // Locally idle: ship any buffered residue and drive the
        // termination token; peers may still wake us with new candidates.
        agg_.advance_quiescence();
        std::this_thread::yield();
      }
    }
    // The terminate decision proves no data parcel was in flight, but
    // drain defensively: a stray record here is caught by settle_sync.
    inbox.clear();
    agg_.poll(inbox);
    for (const Msg& m : inbox) apply(m);
  }

  // --------------------------------------------------------- settle phase

  /// Synchronous convergence certification: Bellman-Ford-style rounds over
  /// whatever the async phase left queued, until a global allreduce agrees
  /// the queues are empty everywhere.  Quiescence detection makes this a
  /// single empty round in practice, but the fixed-point guarantee —
  /// distances identical to the synchronous engine — rests on this sweep,
  /// not on the token protocol.
  void settle_sync() {
    std::vector<std::vector<RelaxRequest>> outbox(
        static_cast<std::size_t>(comm_.size()));
    while (true) {
      const bool work = queue_.next_nonempty(0) != BucketQueue::kNone;
      if (!comm_.allreduce_or(work)) break;
      ++stats_.sub_rounds;
      std::uint64_t k = 0;
      while ((k = queue_.next_nonempty(k)) != BucketQueue::kNone) {
        for (const auto v : queue_.extract(k)) {
          const Weight d = dist_[v];
          const VertexId via = my_begin_ + v;
          const std::uint64_t last = g_.csr.edges_end(v);
          for (std::uint64_t e = g_.csr.edges_begin(v); e < last; ++e) {
            ++stats_.relax_generated;
            const VertexId target = g_.csr.dst(e);
            const int owner = g_.part.owner(target);
            if (owner == comm_.rank()) {
              relax_local(g_.part.local(target), d + g_.csr.weight(e), via);
            } else {
              outbox[static_cast<std::size_t>(owner)].push_back(
                  RelaxRequest{target, via, d + g_.csr.weight(e)});
            }
          }
        }
      }
      for (const auto& box : outbox) stats_.relax_sent += box.size();
      const std::vector<RelaxRequest> incoming = comm_.alltoallv(outbox);
      for (auto& box : outbox) box.clear();
      stats_.relax_received += incoming.size();
      for (const auto& req : incoming) {
        relax_local(g_.part.local(req.target), req.dist, req.parent);
      }
    }
  }

  // ------------------------------------------------------------- members

  simmpi::Comm& comm_;
  const graph::DistGraph& g_;
  const SsspConfig& config_;
  SsspStats& stats_;

  std::size_t local_n_;
  VertexId my_begin_;
  double delta_;

  BucketQueue queue_;
  std::uint64_t hint_ = 0;
  std::vector<Weight> dist_;
  std::vector<VertexId> parent_;

  std::unordered_map<VertexId, std::uint32_t> hub_index_;
  std::vector<Weight> hub_mirror_;

  simmpi::Aggregator<Msg> agg_;
};

SsspResult dispatch(simmpi::Comm& comm, const graph::DistGraph& g,
                    const std::vector<VertexId>& roots,
                    const SsspConfig& config, SsspStats* stats) {
  SsspStats local_stats;
  SsspStats& s = stats != nullptr ? *stats : local_stats;
  const bool packed =
      config.compress &&
      g.num_vertices <= std::numeric_limits<std::uint32_t>::max();
  if (packed) {
    AsyncEngine<PackedRelaxRequest> engine(comm, g, roots, config, s);
    return engine.run();
  }
  AsyncEngine<RelaxRequest> engine(comm, g, roots, config, s);
  return engine.run();
}

}  // namespace

SsspResult async_delta_stepping(simmpi::Comm& comm, const graph::DistGraph& g,
                                VertexId root, const SsspConfig& config,
                                SsspStats* stats) {
  return dispatch(comm, g, {root}, config, stats);
}

SsspResult async_delta_stepping_multi(simmpi::Comm& comm,
                                      const graph::DistGraph& g,
                                      const std::vector<VertexId>& roots,
                                      const SsspConfig& config,
                                      SsspStats* stats) {
  return dispatch(comm, g, roots, config, stats);
}

}  // namespace g500::core
