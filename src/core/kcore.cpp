#include "core/kcore.hpp"

#include <algorithm>

#include "core/bucket_queue.hpp"
#include "util/timer.hpp"

namespace g500::core {

using graph::LocalId;
using graph::VertexId;

namespace {

/// One coalesced degree decrement on the wire.
struct Decrement {
  VertexId target;
  std::uint32_t count;
};

}  // namespace

std::vector<std::uint32_t> kcore(simmpi::Comm& comm,
                                 const graph::DistGraph& g,
                                 KCoreStats* stats) {
  KCoreStats scratch;
  KCoreStats& st = stats != nullptr ? *stats : scratch;
  util::Timer total;

  const int P = comm.size();
  const int rank = comm.rank();
  const auto local_n = static_cast<LocalId>(g.part.count(rank));

  std::vector<std::uint64_t> deg(local_n);
  std::vector<char> alive(local_n, 1);
  std::vector<std::uint32_t> core(local_n, 0);
  BucketQueue bq(local_n);
  for (LocalId v = 0; v < local_n; ++v) {
    deg[v] = g.csr.degree(v);
    bq.update(v, deg[v]);
  }
  std::uint64_t remaining = local_n;

  // Global minimum occupied bucket (kNone when every rank is drained);
  // min(x) == ~max(~x) over unsigned, and kNone is all-ones so an empty
  // rank contributes the identity.
  const auto global_min_bucket = [&]() {
    return ~comm.allreduce_max(~bq.next_nonempty(0));
  };

  std::vector<std::vector<Decrement>> outbox(static_cast<std::size_t>(P));
  std::vector<VertexId> targets;

  while (comm.allreduce_sum(remaining) > 0) {
    // Jump straight to the lowest occupied residual degree anywhere: every
    // level below it already quiesced, so the levels in between are empty.
    const std::uint64_t k = global_min_bucket();
    ++st.levels;

    // Peel rounds at level k until no rank holds a vertex at or below it.
    for (;;) {
      std::vector<LocalId> peeled;
      for (std::uint64_t b = bq.next_nonempty(0);
           b != BucketQueue::kNone && b <= k; b = bq.next_nonempty(b)) {
        const auto batch = bq.extract(b);
        peeled.insert(peeled.end(), batch.begin(), batch.end());
      }
      targets.clear();
      for (const auto v : peeled) {
        core[v] = static_cast<std::uint32_t>(k);
        alive[v] = 0;
        --remaining;
        ++st.peeled;
        for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v);
             ++e) {
          targets.push_back(g.csr.dst(e));
        }
      }
      // Coalesce: one (target, count) entry per distinct neighbour.
      std::sort(targets.begin(), targets.end());
      for (std::size_t i = 0; i < targets.size();) {
        std::size_t j = i;
        while (j < targets.size() && targets[j] == targets[i]) ++j;
        outbox[static_cast<std::size_t>(g.part.owner(targets[i]))].push_back(
            Decrement{targets[i], static_cast<std::uint32_t>(j - i)});
        i = j;
      }
      for (const auto& box : outbox) st.decrements_sent += box.size();
      const std::vector<Decrement> incoming = comm.alltoallv(outbox);
      for (auto& box : outbox) box.clear();
      ++st.rounds;
      for (const auto& d : incoming) {
        const LocalId t = g.part.local(d.target);
        if (alive[t] == 0) continue;
        deg[t] = deg[t] > d.count ? deg[t] - d.count : 0;
        bq.update(t, deg[t]);
        ++st.decrements_applied;
      }
      const std::uint64_t low = bq.next_nonempty(0);
      if (!comm.allreduce_or(low != BucketQueue::kNone && low <= k)) break;
    }
  }

  std::uint32_t local_max = 0;
  for (const auto c : core) local_max = std::max(local_max, c);
  st.max_core = comm.allreduce_max(local_max);
  st.seconds = total.seconds();
  return core;
}

}  // namespace g500::core
