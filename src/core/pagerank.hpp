// Distributed PageRank over the 1-D partitioned CSR.
//
// Power iteration in its undirected form: every iteration each vertex
// divides its mass over its (deduplicated) neighbours and collects the
// contributions of those neighbours, damped toward the uniform vector —
//
//   pr'(v) = (1 - d) / n + d * sum_{u in N(v)} pr(u) / deg(u)
//
// Dangling vertices (deg == 0) keep their teleport share but contribute
// nothing, so their mass leaks and the vector's sum converges below 1;
// this deliberate choice keeps the value math free of any cross-vertex
// float reduction, which is what makes the distributed run *bit-identical*
// to a sequential reference.
//
// Determinism contract: each vertex sums its neighbours' contributions in
// ascending neighbour-id order (a per-vertex permutation of the
// weight-sorted CSR computed once up front), and the full contribution
// vector is assembled with one allgatherv per iteration (rank-order
// concatenation == global vertex order under the block partition).  The
// result is therefore identical across rank counts, and equal bit-for-bit
// to a sequential implementation that sums sorted deduplicated adjacency.
// The L1 residual used for the tolerance stop is the only cross-vertex
// reduction; it is reduced in fixed rank order, so the iteration count is
// deterministic for a fixed rank count (and in practice across rank
// counts — the residual would have to straddle the tolerance within one
// ulp to differ).
//
// SPMD: call from every rank inside World::run; returns this rank's owned
// slice of the PageRank vector.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

struct PageRankConfig {
  double damping = 0.85;
  /// Hard iteration cap (also the deadline-budget hook for the serving
  /// layer: a truncated run reports converged == false).
  std::uint64_t max_iters = 20;
  /// Stop once the global L1 residual |pr' - pr| drops to this value or
  /// below; 0 disables the residual stop (run exactly max_iters).
  double tolerance = 0.0;
};

struct PageRankStats {
  std::uint64_t iterations = 0;
  /// Contribution entries this rank shipped through the per-iteration
  /// allgatherv (owned count x iterations).
  std::uint64_t contribs_gathered = 0;
  /// Global L1 residual after the last iteration.
  double residual = 0.0;
  /// True when the run stopped on the tolerance, false when the iteration
  /// cap cut it off first (always false when tolerance == 0).
  bool converged = false;
  double seconds = 0.0;
};

/// PageRank values for this rank's owned vertices (indexed by local id).
[[nodiscard]] std::vector<double> pagerank(simmpi::Comm& comm,
                                           const graph::DistGraph& g,
                                           const PageRankConfig& config = {},
                                           PageRankStats* stats = nullptr);

}  // namespace g500::core
