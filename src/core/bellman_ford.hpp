// Distributed Bellman-Ford: the bucket-less baseline the evaluation
// compares delta-stepping against.  Every round relaxes *all* edges of the
// active set — no priority schedule, so low-distance vertices are relaxed
// repeatedly as better paths arrive, and the round count equals the graph's
// unweighted hop diameter in the worst case.
#pragma once

#include "core/sssp_types.hpp"
#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

/// Options: Bellman-Ford reuses the coalescing/local-fusion knobs of
/// SsspConfig (hub caching and direction switching are delta-stepping
/// features and are ignored here).
[[nodiscard]] SsspResult bellman_ford(simmpi::Comm& comm,
                                      const graph::DistGraph& g,
                                      graph::VertexId root,
                                      const SsspConfig& config = {},
                                      SsspStats* stats = nullptr);

}  // namespace g500::core
