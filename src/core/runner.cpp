#include "core/runner.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <stdexcept>

#include "core/async_delta_stepping.hpp"
#include "core/bellman_ford.hpp"
#include "core/bfs.hpp"
#include "core/delta_stepping.hpp"
#include "core/validate.hpp"
#include "util/random.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace g500::core {

using graph::VertexId;

std::vector<VertexId> sample_roots(simmpi::Comm& comm,
                                   const graph::DistGraph& g, int count,
                                   std::uint64_t seed) {
  std::vector<VertexId> roots;
  // An empty graph has no eligible keys (and no vertex 0 to probe below).
  if (count <= 0 || g.num_vertices == 0) return roots;
  util::SplitMix64 rng(seed);  // identical stream on every rank
  const std::uint64_t max_attempts =
      100 * static_cast<std::uint64_t>(count) + 1000;
  for (std::uint64_t attempt = 0;
       attempt < max_attempts && roots.size() < static_cast<std::size_t>(count);
       ++attempt) {
    const VertexId candidate = rng.next_below(g.num_vertices);
    if (std::find(roots.begin(), roots.end(), candidate) != roots.end()) {
      continue;
    }
    bool eligible_local = false;
    if (g.part.owner(candidate) == comm.rank()) {
      eligible_local = g.csr.degree(g.part.local(candidate)) > 0;
    }
    if (comm.allreduce_or(eligible_local)) roots.push_back(candidate);
  }
  return roots;
}

SsspStats global_stats(simmpi::Comm& comm, const SsspStats& local) {
  // Counters: element-wise sum.  Histogram: fixed 64-slot projection.
  std::array<std::uint64_t, 20> counters = {
      local.buckets_processed, local.light_iterations, local.heavy_phases,
      local.push_rounds,       local.pull_rounds,      local.relax_generated,
      local.relax_sent,        local.relax_received,   local.relax_applied,
      local.fused_local,       local.filtered_hub,     local.filtered_coalesce,
      local.frontier_broadcast, local.checkpoints,     local.restores,
      local.global_collectives, local.sub_rounds,
      local.aggregator_flush_capacity, local.aggregator_flush_timeout,
      local.deadline_stops};
  std::vector<std::uint64_t> payload(counters.begin(), counters.end());
  payload.resize(counters.size() + 64, 0);
  const auto& buckets = local.frontier_hist.buckets();
  for (std::size_t i = 0; i < buckets.size() && i < 64; ++i) {
    payload[counters.size() + i] = buckets[i];
  }
  const auto summed = comm.allreduce_vec<std::uint64_t>(
      payload, [](std::uint64_t a, std::uint64_t b) { return a + b; });

  SsspStats total;
  // Per-bucket/round structure is identical on all ranks; divide by P so
  // the round counters stay "global rounds", while traffic counters sum.
  const auto P = static_cast<std::uint64_t>(comm.size());
  total.buckets_processed = summed[0] / P;
  total.light_iterations = summed[1] / P;
  total.heavy_phases = summed[2] / P;
  total.push_rounds = summed[3] / P;
  total.pull_rounds = summed[4] / P;
  total.relax_generated = summed[5];
  total.relax_sent = summed[6];
  total.relax_received = summed[7];
  total.relax_applied = summed[8];
  total.fused_local = summed[9];
  total.filtered_hub = summed[10];
  total.filtered_coalesce = summed[11];
  total.frontier_broadcast = summed[12];
  // Checkpoint decisions are epoch-synchronous, so these are per-rank
  // duplicates of a global count, like the round counters above.
  total.checkpoints = summed[13] / P;
  total.restores = summed[14] / P;
  // Collectives are matched, so every rank reports the same count.
  total.global_collectives = summed[15] / P;
  // Sync: identical per rank (global rounds).  Async: rank-local bucket
  // expansions, so this is the mean per rank.
  total.sub_rounds = summed[16] / P;
  // Flushes are traffic-like: sum over ranks.
  total.aggregator_flush_capacity = summed[17];
  total.aggregator_flush_timeout = summed[18];
  // Deadline stops are epoch-synchronous (taken at an allreduce-agreed k).
  total.deadline_stops = summed[19] / P;
  for (std::size_t i = 0; i < 64; ++i) {
    // Every rank records the same global frontier size per round; undo the
    // P-fold duplication.
    const std::uint64_t c = summed[counters.size() + i] / P;
    if (c > 0) {
      total.frontier_hist.add(i == 0 ? 0 : (std::uint64_t{1} << i), c);
    }
  }
  total.settled_bound = comm.allreduce_min(local.settled_bound);
  total.total_seconds =
      comm.allreduce_max(local.total_seconds);
  total.light_seconds = comm.allreduce_max(local.light_seconds);
  total.heavy_seconds = comm.allreduce_max(local.heavy_seconds);
  total.checkpoint_seconds = comm.allreduce_max(local.checkpoint_seconds);
  return total;
}

namespace {

/// Derive the headline numbers from report.runs (shared by both protocols).
void finalize_summary(BenchmarkReport& report) {
  if (report.runs.empty()) return;
  double inv_teps_sum = 0.0;
  double time_sum = 0.0;
  for (const RootRun& run : report.runs) {
    inv_teps_sum += run.teps > 0.0 ? 1.0 / run.teps : 0.0;
    time_sum += run.seconds;
  }
  report.harmonic_mean_teps =
      inv_teps_sum > 0.0
          ? static_cast<double>(report.runs.size()) / inv_teps_sum
          : 0.0;
  report.mean_seconds = time_sum / static_cast<double>(report.runs.size());
  auto [lo, hi] = std::minmax_element(
      report.runs.begin(), report.runs.end(),
      [](const RootRun& a, const RootRun& b) { return a.seconds < b.seconds; });
  report.min_seconds = lo->seconds;
  report.max_seconds = hi->seconds;
}

}  // namespace

BenchmarkReport run_benchmark(simmpi::Comm& comm, const graph::DistGraph& g,
                              const RunnerOptions& options) {
  BenchmarkReport report;
  report.num_vertices = g.num_vertices;
  report.num_input_edges = g.num_input_edges;
  report.num_directed_edges = g.num_directed_edges;
  report.num_ranks = comm.size();

  const std::vector<VertexId> roots =
      sample_roots(comm, g, options.num_roots, options.root_seed);

  for (const VertexId root : roots) {
    SsspStats local;
    util::Timer timer;
    SsspResult result;
    BfsResult bfs_result;
    switch (options.algorithm) {
      case Algorithm::kDeltaStepping:
        result = delta_stepping(comm, g, root, options.config, &local);
        break;
      case Algorithm::kAsyncDeltaStepping:
        result = async_delta_stepping(comm, g, root, options.config, &local);
        break;
      case Algorithm::kBellmanFord:
        result = bellman_ford(comm, g, root, options.config, &local);
        break;
      case Algorithm::kBfs:
        bfs_result = bfs(comm, g, root);
        break;
    }
    comm.barrier();
    const double local_seconds = timer.seconds();

    RootRun run;
    run.root = root;
    run.seconds = comm.allreduce_max(local_seconds);
    run.teps = run.seconds > 0.0
                   ? static_cast<double>(g.num_input_edges) / run.seconds
                   : 0.0;
    if (options.validate) {
      if (options.algorithm == Algorithm::kBfs) {
        const auto verdict = validate_bfs(comm, g, root, bfs_result);
        run.valid = verdict.ok;
        run.reachable = verdict.reachable;
        report.all_valid = report.all_valid && verdict.ok;
      } else {
        const auto verdict = validate_sssp(comm, g, root, result);
        run.valid = verdict.ok;
        run.reachable = verdict.reachable;
        report.all_valid = report.all_valid && verdict.ok;
      }
    }
    report.stats.merge(global_stats(comm, local));
    report.runs.push_back(run);
  }

  finalize_summary(report);
  return report;
}

BenchmarkReport run_benchmark_resilient(
    simmpi::World& world,
    const std::function<graph::DistGraph(simmpi::Comm&)>& build_graph,
    const RunnerOptions& options) {
  if (options.algorithm != Algorithm::kDeltaStepping) {
    throw std::invalid_argument(
        "run_benchmark_resilient: checkpointing is delta-stepping only");
  }
  const int P = world.size();
  const int max_attempts = std::max(1, options.max_attempts);

  // The driver's "stable storage": everything that survives a crashed
  // World::run.  Rank 0 is the only in-run writer of the shared report
  // state, and only between collectives, so harvested entries are never
  // torn (injected crashes fire at collective entry).
  std::vector<CheckpointState> snapshots(static_cast<std::size_t>(P));
  BenchmarkReport report;
  report.num_ranks = P;

  // Shared backoff schedule (jittered, deterministic in the seed): one
  // global retry counter drives the exponential ramp across both phases.
  const util::BackoffPolicy backoff = options.backoff_policy();
  std::uint64_t retries = 0;
  auto charge_backoff = [&]() {
    const double d = backoff.delay(++retries);
    report.backoff_seconds += d;
    report.attempt_backoffs.push_back(d);
  };

  // ---- Phase A: build the graph and agree on the search keys. ---------
  std::vector<VertexId> roots;
  bool setup_done = false;
  for (int attempt = 1; !setup_done; ++attempt) {
    try {
      world.run([&](simmpi::Comm& comm) {
        const graph::DistGraph g = build_graph(comm);
        const std::vector<VertexId> sampled =
            sample_roots(comm, g, options.num_roots, options.root_seed);
        if (comm.rank() == 0) {
          roots = sampled;
          report.num_vertices = g.num_vertices;
          report.num_input_edges = g.num_input_edges;
          report.num_directed_edges = g.num_directed_edges;
        }
      });
      setup_done = true;
    } catch (...) {
      if (attempt >= max_attempts) throw;  // never even built the graph
      charge_backoff();
    }
  }

  const std::size_t n = roots.size();
  std::vector<RootRun> results(n);
  std::vector<std::uint8_t> done(n, 0);
  std::vector<std::uint8_t> exhausted(n, 0);
  std::vector<int> failures(n, 0);
  SsspStats stats_total;

  auto first_undone = [&]() -> std::size_t {
    std::size_t i = 0;
    while (i < n && done[i] != 0) ++i;
    return i;
  };

  // ---- Phase B: drain the roots, restarting the world after faults. ---
  while (first_undone() < n) {
    // Fixed work list for this attempt; rank 0 mutates done/results only
    // AFTER a root's closing collectives, which every rank has passed, so
    // intra-run readers of `todo` never race those writes.
    const std::vector<std::uint8_t> todo(done);
    bool run_failed = false;
    try {
      world.run([&](simmpi::Comm& comm) {
        const graph::DistGraph g = build_graph(comm);
        const std::vector<VertexId> sampled =
            sample_roots(comm, g, options.num_roots, options.root_seed);
        for (std::size_t i = 0; i < sampled.size(); ++i) {
          if (todo[i] != 0) continue;  // finished by an earlier attempt
          SsspStats local;
          util::Timer timer;
          const SsspResult result = delta_stepping_checkpointed(
              comm, g, sampled[i], options.config,
              &snapshots[static_cast<std::size_t>(comm.rank())], &local);
          comm.barrier();
          const double local_seconds = timer.seconds();

          RootRun run;
          run.root = sampled[i];
          run.seconds = comm.allreduce_max(local_seconds);
          run.teps = run.seconds > 0.0
                         ? static_cast<double>(g.num_input_edges) / run.seconds
                         : 0.0;
          if (options.validate) {
            const auto verdict = validate_sssp(comm, g, sampled[i], result);
            run.valid = verdict.ok;
            run.reachable = verdict.reachable;
          }
          const SsspStats gstats = global_stats(comm, local);
          run.recovered = gstats.restores > 0;
          if (comm.rank() == 0) {
            results[i] = run;
            stats_total.merge(gstats);
            done[i] = 1;
          }
        }
      });
    } catch (const CheckpointError&) {
      // Storage bit rot: the snapshots cannot be trusted; the interrupted
      // root restarts from scratch.
      for (auto& snapshot : snapshots) snapshot.clear();
      run_failed = true;
    } catch (...) {
      run_failed = true;
    }
    if (!run_failed) break;  // every root on the work list completed

    charge_backoff();
    const std::size_t victim = first_undone();
    if (victim >= n) break;  // died after the last root's bookkeeping
    if (++failures[victim] >= max_attempts) {
      // Out of budget: degrade to an invalid entry rather than sinking
      // the whole benchmark, and move on to the remaining roots.
      RootRun failed;
      failed.root = roots[victim];
      failed.valid = false;
      results[victim] = failed;
      done[victim] = 1;
      exhausted[victim] = 1;
      for (auto& snapshot : snapshots) snapshot.clear();
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    // A completed root consumed its failures plus the successful launch;
    // an abandoned one consumed only the failures.
    results[i].attempts = failures[i] + (exhausted[i] != 0 ? 0 : 1);
    report.all_valid = report.all_valid && results[i].valid;
    if (results[i].valid && results[i].attempts > 1) ++report.recovered_roots;
    if (!results[i].valid) ++report.failed_roots;
  }
  report.runs = std::move(results);
  report.stats = std::move(stats_total);
  finalize_summary(report);
  return report;
}

void BenchmarkReport::print(std::ostream& out) const {
  util::Table summary({"metric", "value"});
  summary.row().add("ranks").add(num_ranks);
  summary.row().add("vertices").add(static_cast<std::uint64_t>(num_vertices));
  summary.row().add("input edges (M)").add(num_input_edges);
  summary.row().add("directed edges").add(num_directed_edges);
  summary.row().add("roots").add(static_cast<std::uint64_t>(runs.size()));
  summary.row().add("all valid").add(all_valid ? "yes" : "NO");
  if (recovered_roots > 0 || failed_roots > 0) {
    summary.row().add("recovered roots").add(recovered_roots);
    summary.row().add("failed roots").add(failed_roots);
  }
  summary.row().add("harmonic mean TEPS").add_si(harmonic_mean_teps);
  summary.row().add("mean time (s)").add(mean_seconds, 4);
  summary.row().add("min time (s)").add(min_seconds, 4);
  summary.row().add("max time (s)").add(max_seconds, 4);
  summary.print(out, "Graph500 SSSP benchmark");
}

}  // namespace g500::core
