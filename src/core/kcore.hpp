// Distributed k-core decomposition by bucketed peeling.
//
// The coreness of a vertex is the largest k such that it survives in the
// k-core (the maximal subgraph where every vertex has degree >= k).  The
// classic peeling schedule computes it exactly: process levels k = 0, 1,
// 2, ... and at each level repeatedly remove every remaining vertex whose
// residual degree is <= k, assigning it coreness k, until the level
// quiesces globally.  Removals decrement neighbours' residual degrees,
// which may drag them into the current level — the same wavefront
// structure as delta-stepping's bucket schedule, so the engine reuses
// core::BucketQueue (lazy-deletion buckets keyed by residual degree) for
// its worklist, following GBBS's bucketing formulation of the kernel.
//
// Decrements are coalesced per (owner, target) into one alltoallv per
// peel round; a level advances when an allreduce agrees no rank holds a
// vertex at or below it.  Empty levels are skipped by reducing the global
// minimum occupied bucket.  Coreness is unique (independent of peel
// order), so the output is deterministic across rank counts and matches a
// sequential reference exactly.
//
// SPMD: call from every rank inside World::run; returns this rank's owned
// coreness slice.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

struct KCoreStats {
  std::uint64_t rounds = 0;       ///< peel/exchange rounds (collective count)
  std::uint64_t levels = 0;       ///< distinct occupied core levels processed
  std::uint64_t peeled = 0;       ///< vertices this rank assigned a coreness
  std::uint64_t decrements_sent = 0;     ///< coalesced (target, count) entries
  std::uint64_t decrements_applied = 0;  ///< entries applied to live vertices
  std::uint32_t max_core = 0;     ///< global degeneracy (identical on all ranks)
  double seconds = 0.0;
};

/// Coreness of this rank's owned vertices (indexed by local id; isolated
/// vertices get 0).
[[nodiscard]] std::vector<std::uint32_t> kcore(simmpi::Comm& comm,
                                               const graph::DistGraph& g,
                                               KCoreStats* stats = nullptr);

}  // namespace g500::core
