// Distributed value lookup: fetch per-vertex values owned by other ranks.
//
// The validation checks need remote tentative distances / parent anchors;
// this helper turns "give me value[v] for these global ids" into two
// alltoallv rounds (queries out, answers back) while preserving the
// caller's query order.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "graph/partition.hpp"
#include "graph/types.hpp"
#include "simmpi/comm.hpp"

namespace g500::core {

/// For each global vertex id in `queries` (any owner, duplicates fine),
/// return the owner's `local_values[local(id)]`, in query order.
/// `local_values` must hold this rank's owned values.  SPMD: every rank
/// must call this, even with empty queries.
template <typename T>
std::vector<T> fetch_values(simmpi::Comm& comm,
                            const graph::BlockPartition& part,
                            const std::vector<graph::VertexId>& queries,
                            const std::vector<T>& local_values) {
  const int P = comm.size();
  std::vector<std::vector<graph::VertexId>> ask(static_cast<std::size_t>(P));
  // Remember where each query goes so answers can be re-interleaved.
  std::vector<int> query_rank(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const int owner = part.owner(queries[i]);
    query_rank[i] = owner;
    ask[static_cast<std::size_t>(owner)].push_back(queries[i]);
  }

  const auto incoming = comm.alltoallv_by_src(ask);

  // Answer every incoming query from local storage, preserving order.
  std::vector<std::vector<T>> answers(static_cast<std::size_t>(P));
  for (int s = 0; s < P; ++s) {
    answers[static_cast<std::size_t>(s)].reserve(
        incoming[static_cast<std::size_t>(s)].size());
    for (const auto v : incoming[static_cast<std::size_t>(s)]) {
      if (part.owner(v) != comm.rank()) {
        throw std::logic_error("fetch_values: query routed to wrong owner");
      }
      answers[static_cast<std::size_t>(s)].push_back(
          local_values.at(part.local(v)));
    }
  }

  const auto replies = comm.alltoallv_by_src(answers);

  // Replies from rank r arrive in the order we asked rank r; walk per-rank
  // cursors to restore the original interleaving.
  std::vector<std::size_t> cursor(static_cast<std::size_t>(P), 0);
  std::vector<T> result(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto r = static_cast<std::size_t>(query_rank[i]);
    result[i] = replies[r].at(cursor[r]++);
  }
  return result;
}

/// One entry of a multi-slot batched fetch: "value of `vertex` in value
/// set `slot`".  Slots let one exchange answer queries against several
/// distributed vectors at once (e.g. the distance slices of every root in
/// a serving micro-batch).
struct SlotQuery {
  std::uint32_t slot;
  graph::VertexId vertex;
};
static_assert(std::is_trivially_copyable_v<SlotQuery>);

/// Batched multi-slot variant of fetch_values: for each (slot, vertex)
/// query return `*slots[slot]` at the owner's local index of `vertex`, in
/// query order, using a single query/answer exchange for the whole batch.
///
/// `slots` holds this rank's owned slice of each logical value set; every
/// rank must pass the same number of slots in the same logical order
/// (SPMD), and every rank must call this even with empty queries.
/// Duplicates and self-owned queries are fine.  Throws std::out_of_range
/// on a slot index past `slots.size()` and std::logic_error on a
/// misrouted query or a null slot pointer.
template <typename T>
std::vector<T> fetch_values_batched(
    simmpi::Comm& comm, const graph::BlockPartition& part,
    const std::vector<SlotQuery>& queries,
    const std::vector<const std::vector<T>*>& slots) {
  const int P = comm.size();
  std::vector<std::vector<SlotQuery>> ask(static_cast<std::size_t>(P));
  std::vector<int> query_rank(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (queries[i].slot >= slots.size()) {
      throw std::out_of_range("fetch_values_batched: slot out of range");
    }
    const int owner = part.owner(queries[i].vertex);
    query_rank[i] = owner;
    ask[static_cast<std::size_t>(owner)].push_back(queries[i]);
  }

  const auto incoming = comm.alltoallv_by_src(ask);

  std::vector<std::vector<T>> answers(static_cast<std::size_t>(P));
  for (int s = 0; s < P; ++s) {
    answers[static_cast<std::size_t>(s)].reserve(
        incoming[static_cast<std::size_t>(s)].size());
    for (const auto q : incoming[static_cast<std::size_t>(s)]) {
      if (part.owner(q.vertex) != comm.rank()) {
        throw std::logic_error(
            "fetch_values_batched: query routed to wrong owner");
      }
      if (q.slot >= slots.size() || slots[q.slot] == nullptr) {
        throw std::logic_error("fetch_values_batched: bad slot on owner");
      }
      answers[static_cast<std::size_t>(s)].push_back(
          slots[q.slot]->at(part.local(q.vertex)));
    }
  }

  const auto replies = comm.alltoallv_by_src(answers);

  std::vector<std::size_t> cursor(static_cast<std::size_t>(P), 0);
  std::vector<T> result(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const auto r = static_cast<std::size_t>(query_rank[i]);
    result[i] = replies[r].at(cursor[r]++);
  }
  return result;
}

}  // namespace g500::core
