// Bucketed priority structure of delta-stepping.
//
// Buckets are vectors with *lazy deletion*: when a vertex's distance
// improves it is pushed into its new bucket and the entry in the old bucket
// becomes stale; staleness is detected by comparing against the vertex's
// recorded target bucket.  Every stale entry is discarded exactly once, so
// the total queue overhead is O(insertions).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/types.hpp"

namespace g500::core {

class BucketQueue {
 public:
  /// Sentinel: "not queued anywhere" / "no non-empty bucket".
  static constexpr std::uint64_t kNone =
      std::numeric_limits<std::uint64_t>::max();

  explicit BucketQueue(std::size_t num_vertices)
      : position_(num_vertices, kNone) {}

  /// Queue vertex v for bucket b (moving it if queued elsewhere).
  void update(graph::LocalId v, std::uint64_t bucket) {
    if (position_[v] == bucket) return;  // already queued there
    position_[v] = bucket;
    if (bucket >= buckets_.size()) buckets_.resize(bucket + 1);
    buckets_[bucket].push_back(v);
    ++queued_;
  }

  /// The bucket v is currently queued for (kNone if not queued).
  [[nodiscard]] std::uint64_t position(graph::LocalId v) const {
    return position_[v];
  }

  /// Remove and return all valid members of bucket k (they become
  /// unqueued).  Stale entries encountered are dropped.
  std::vector<graph::LocalId> extract(std::uint64_t k) {
    std::vector<graph::LocalId> valid;
    if (k >= buckets_.size()) return valid;
    valid.reserve(buckets_[k].size());
    for (const auto v : valid_sweep(k)) {
      position_[v] = kNone;
      valid.push_back(v);
    }
    buckets_[k].clear();
    return valid;
  }

  /// Smallest bucket >= from containing a valid entry, or kNone.
  [[nodiscard]] std::uint64_t next_nonempty(std::uint64_t from) {
    for (std::uint64_t b = from; b < buckets_.size(); ++b) {
      compact(b);
      if (!buckets_[b].empty()) return b;
    }
    return kNone;
  }

  /// Total update() calls that enqueued something (stale entries included).
  [[nodiscard]] std::uint64_t total_queued() const noexcept { return queued_; }

  [[nodiscard]] std::size_t num_buckets() const noexcept {
    return buckets_.size();
  }

 private:
  /// Drop stale entries of bucket b in place.
  void compact(std::uint64_t b) {
    auto& bucket = buckets_[b];
    std::size_t keep = 0;
    for (const auto v : bucket) {
      if (position_[v] == b) bucket[keep++] = v;
    }
    bucket.resize(keep);
  }

  /// View of valid entries (after compaction).
  const std::vector<graph::LocalId>& valid_sweep(std::uint64_t k) {
    compact(k);
    return buckets_[k];
  }

  std::vector<std::vector<graph::LocalId>> buckets_;
  std::vector<std::uint64_t> position_;
  std::uint64_t queued_ = 0;
};

}  // namespace g500::core
