#include "core/seq_delta_stepping.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/bucket_queue.hpp"
#include "util/timer.hpp"

namespace g500::core {

using graph::kInfDistance;
using graph::kNoVertex;
using graph::LocalId;
using graph::VertexId;
using graph::Weight;

SequentialResult seq_delta_stepping(const graph::EdgeList& graph,
                                    VertexId root, double delta,
                                    SeqDeltaStats* stats) {
  const VertexId n = graph.num_vertices;
  if (root >= n) {
    throw std::out_of_range("seq_delta_stepping: root out of range");
  }
  SeqDeltaStats scratch;
  SeqDeltaStats& st = stats != nullptr ? *stats : scratch;
  util::Timer total;

  // Clean adjacency, weight-sorted per vertex so the light/heavy split is
  // a single boundary index (mirrors LocalCsr).
  struct Adj {
    VertexId dst;
    Weight w;
  };
  std::vector<std::uint64_t> offsets(n + 1, 0);
  std::vector<Adj> adj;
  {
    struct Dir {
      VertexId src, dst;
      Weight w;
    };
    std::vector<Dir> dirs;
    dirs.reserve(graph.edges.size() * 2);
    for (const auto& e : graph.edges) {
      if (e.src == e.dst) continue;
      if (e.src >= n || e.dst >= n) {
        throw std::out_of_range("seq_delta_stepping: edge endpoint >= n");
      }
      dirs.push_back({e.src, e.dst, e.weight});
      dirs.push_back({e.dst, e.src, e.weight});
    }
    std::sort(dirs.begin(), dirs.end(), [](const Dir& a, const Dir& b) {
      if (a.src != b.src) return a.src < b.src;
      if (a.dst != b.dst) return a.dst < b.dst;
      return a.w < b.w;
    });
    dirs.erase(std::unique(dirs.begin(), dirs.end(),
                           [](const Dir& a, const Dir& b) {
                             return a.src == b.src && a.dst == b.dst;
                           }),
               dirs.end());
    // Weight-sort within each vertex group.
    std::stable_sort(dirs.begin(), dirs.end(), [](const Dir& a, const Dir& b) {
      if (a.src != b.src) return a.src < b.src;
      return a.w < b.w;
    });
    adj.reserve(dirs.size());
    for (const auto& d : dirs) {
      ++offsets[d.src + 1];
      adj.push_back({d.dst, d.w});
    }
    for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  }

  if (delta <= 0.0) {
    const double avg_degree = std::max(
        1.0, static_cast<double>(adj.size()) / static_cast<double>(n));
    delta = std::clamp(1.0 / avg_degree, 1.0 / 64.0, 1.0);
  }
  std::vector<std::uint64_t> split(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto first = adj.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
    const auto last = adj.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
    split[v] = static_cast<std::uint64_t>(
        std::lower_bound(first, last, static_cast<Weight>(delta),
                         [](const Adj& a, Weight d) { return a.w < d; }) -
        adj.begin());
  }

  SequentialResult result;
  result.dist.assign(n, kInfDistance);
  result.parent.assign(n, kNoVertex);
  BucketQueue queue(n);
  std::vector<std::uint64_t> r_tag(n, BucketQueue::kNone);

  auto relax = [&](VertexId v, Weight cand, VertexId via) {
    ++st.relaxations;
    if (cand < result.dist[v]) {
      result.dist[v] = cand;
      result.parent[v] = via;
      queue.update(static_cast<LocalId>(v),
                   static_cast<std::uint64_t>(
                       static_cast<double>(cand) / delta));
    }
  };

  result.dist[root] = 0.0f;
  result.parent[root] = root;
  queue.update(static_cast<LocalId>(root), 0);

  std::uint64_t k = 0;
  while ((k = queue.next_nonempty(k)) != BucketQueue::kNone) {
    ++st.buckets_processed;
    std::vector<LocalId> settled;
    while (true) {
      const auto active = queue.extract(k);
      if (active.empty()) break;
      ++st.light_phases;
      for (const auto v : active) {
        if (r_tag[v] != k) {
          r_tag[v] = k;
          settled.push_back(v);
        }
        const Weight d = result.dist[v];
        for (std::uint64_t e = offsets[v]; e < split[v]; ++e) {
          relax(adj[e].dst, d + adj[e].w, v);
        }
      }
    }
    for (const auto v : settled) {
      const Weight d = result.dist[v];
      for (std::uint64_t e = split[v]; e < offsets[v + 1]; ++e) {
        relax(adj[e].dst, d + adj[e].w, v);
      }
    }
    ++k;
  }
  st.seconds = total.seconds();
  return result;
}

}  // namespace g500::core
