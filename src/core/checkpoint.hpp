// Bucket-epoch checkpointing for the delta-stepping engine.
//
// At record scale an SSSP sweep outlives the machine's MTBF, so the engine
// can snapshot its per-rank state between bucket epochs and, after a crash,
// restart World::run and re-drain from the last completed epoch instead of
// from scratch.  Correctness rests on a property of the simulated runtime:
// faults fire *at* collectives, and simmpi's matched-collective protocol
// means no rank ever gets a full epoch ahead of a peer — so a snapshot taken
// after bucket k on one rank is taken after bucket k on every rank, and the
// set of per-rank snapshots is always a globally consistent cut.
//
// The snapshot is everything the engine cannot re-derive: tentative
// distances, parents and (when hub caching is on) the hub mirror, plus the
// bucket cursor.  The bucket queue is NOT stored — it is a function of the
// distances (vertex v is pending iff bucket_of(dist[v]) > last_bucket) and
// is rebuilt on restore.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace g500::core {

/// Thrown when a snapshot fails its integrity check on restore (bit rot in
/// "stable storage").  The resilient runner reacts by discarding snapshots
/// and restarting the root from scratch.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One rank's snapshot of an SSSP run after a completed bucket epoch.
/// Value type: the retry driver keeps one per rank as its "stable storage".
struct CheckpointState {
  bool valid = false;

  /// Identity of the run this snapshot belongs to: a digest of the roots,
  /// the bucket width and the graph shape.  Restore refuses snapshots from
  /// a different run.
  std::uint64_t roots_digest = 0;

  std::uint64_t last_bucket = 0;   ///< highest bucket fully drained
  std::uint64_t buckets_done = 0;  ///< buckets processed when taken

  std::vector<graph::Weight> dist;
  std::vector<graph::VertexId> parent;
  std::vector<graph::Weight> hub_mirror;  ///< empty when hub cache is off

  std::uint64_t checksum = 0;  ///< seal() writes it, verify() checks it

  void clear();

  /// Stamp the snapshot with its checksum and mark it valid.
  void seal();

  /// Recompute the checksum over the current contents.
  [[nodiscard]] std::uint64_t compute_checksum() const;

  [[nodiscard]] bool checksum_ok() const {
    return checksum == compute_checksum();
  }

  /// Throws CheckpointError if the snapshot is valid but fails its
  /// integrity check.
  void verify() const;
};

}  // namespace g500::core
