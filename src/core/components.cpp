#include "core/components.hpp"

#include <algorithm>

#include "util/timer.hpp"

namespace g500::core {

using graph::LocalId;
using graph::VertexId;

std::vector<VertexId> connected_components(simmpi::Comm& comm,
                                           const graph::DistGraph& g,
                                           ComponentsStats* stats) {
  ComponentsStats scratch;
  ComponentsStats& st = stats != nullptr ? *stats : scratch;
  util::Timer total;

  const int P = comm.size();
  const int rank = comm.rank();
  const auto local_n = static_cast<LocalId>(g.part.count(rank));
  const VertexId my_begin = g.part.begin(rank);

  std::vector<VertexId> label(local_n);
  for (LocalId v = 0; v < local_n; ++v) label[v] = my_begin + v;

  struct LabelMsg {
    VertexId target;
    VertexId label;
  };
  std::vector<std::vector<LabelMsg>> outbox(static_cast<std::size_t>(P));
  std::vector<LocalId> active;
  std::vector<char> queued(local_n, 0);
  auto enqueue = [&](LocalId v) {
    if (queued[v] == 0 && g.csr.degree(v) > 0) {
      queued[v] = 1;
      active.push_back(v);
    }
  };
  for (LocalId v = 0; v < local_n; ++v) enqueue(v);

  auto apply = [&](LocalId v, VertexId candidate) {
    if (candidate < label[v]) {
      label[v] = candidate;
      ++st.labels_applied;
      enqueue(v);
    }
  };

  while (comm.allreduce_or(!active.empty())) {
    ++st.rounds;
    std::vector<LocalId> frontier;
    frontier.swap(active);
    for (const auto v : frontier) queued[v] = 0;

    for (const auto v : frontier) {
      const VertexId mine = label[v];
      for (std::uint64_t e = g.csr.edges_begin(v); e < g.csr.edges_end(v);
           ++e) {
        const VertexId target = g.csr.dst(e);
        const int owner = g.part.owner(target);
        if (owner == rank) {
          apply(g.part.local(target), mine);
        } else {
          outbox[static_cast<std::size_t>(owner)].push_back(
              LabelMsg{target, mine});
        }
      }
    }
    // Coalesce: minimum label per target per round.
    for (auto& box : outbox) {
      std::sort(box.begin(), box.end(), [](const LabelMsg& a,
                                           const LabelMsg& b) {
        if (a.target != b.target) return a.target < b.target;
        return a.label < b.label;
      });
      box.erase(std::unique(box.begin(), box.end(),
                            [](const LabelMsg& a, const LabelMsg& b) {
                              return a.target == b.target;
                            }),
                box.end());
      st.labels_sent += box.size();
    }
    const std::vector<LabelMsg> incoming = comm.alltoallv(outbox);
    for (auto& box : outbox) box.clear();
    for (const auto& msg : incoming) {
      apply(g.part.local(msg.target), msg.label);
    }
  }

  st.seconds = total.seconds();
  return label;
}

ComponentsSummary summarize_components(simmpi::Comm& comm,
                                       const graph::DistGraph& g,
                                       const std::vector<VertexId>& labels) {
  const int P = comm.size();
  const int rank = comm.rank();
  const auto local_n = static_cast<LocalId>(g.part.count(rank));
  const VertexId my_begin = g.part.begin(rank);

  ComponentsSummary summary;
  std::uint64_t representatives = 0;
  std::uint64_t isolated = 0;
  for (LocalId v = 0; v < local_n; ++v) {
    if (labels[v] == my_begin + v) {
      ++representatives;
      if (g.csr.degree(v) == 0) ++isolated;
    }
  }
  summary.num_components = comm.allreduce_sum(representatives);
  summary.isolated_vertices = comm.allreduce_sum(isolated);

  // Size of the largest component: ship per-label counts to the label's
  // owner (the representative's rank) and reduce there.
  struct Count {
    VertexId label;
    std::uint64_t count;
  };
  std::vector<VertexId> sorted(labels.begin(), labels.end());
  std::sort(sorted.begin(), sorted.end());
  std::vector<std::vector<Count>> outbox(static_cast<std::size_t>(P));
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    outbox[static_cast<std::size_t>(g.part.owner(sorted[i]))].push_back(
        Count{sorted[i], j - i});
    i = j;
  }
  const std::vector<Count> incoming = comm.alltoallv(outbox);
  std::vector<std::uint64_t> size_of(local_n, 0);
  for (const auto& c : incoming) {
    size_of[g.part.local(c.label)] += c.count;
  }
  std::uint64_t local_max = 0;
  for (const auto s : size_of) local_max = std::max(local_max, s);
  summary.largest_size = comm.allreduce_max(local_max);
  return summary;
}

}  // namespace g500::core
