// Adaptive micro-batch sizing for the distance service.
//
// A fixed batch_size only fits one arrival rate: too small and the queue
// grows without bound under load, too large and sparse traffic waits out
// the full deadline every time.  The controller tracks the observed
// arrival rate with an EWMA and periodically re-derives both dispatch
// knobs from it:
//
//   batch_size     = clamp(round(rate * target_wait_ticks))
//   max_wait_ticks = clamp(round(batch_size / rate))
//
// so a full batch accumulates in about target_wait_ticks at the current
// rate, and the deadline still bounds latency when traffic thins out.
//
// SPMD contract: every rank feeds the controller the identical per-tick
// arrival counts (the service's shared submission sequence), so the knob
// trajectory is deterministic and identical everywhere — dispatch
// decisions stay collective without any communication.
#pragma once

#include <cstddef>
#include <cstdint>

namespace g500::serve {

struct AdaptiveConfig {
  /// Off by default: the service uses its fixed batch_size/max_wait_ticks.
  bool enabled = false;

  /// Knob ranges the controller may move within.
  std::size_t min_batch = 1;
  std::size_t max_batch = 32;
  std::uint64_t min_wait_ticks = 1;
  std::uint64_t max_wait_ticks = 16;

  /// Queueing delay (ticks) a full batch should take to accumulate.
  double target_wait_ticks = 4.0;

  /// EWMA smoothing for the arrival rate (weight of the newest tick).
  double ewma_alpha = 0.25;

  /// Re-derive the knobs every this many observed ticks.
  std::uint64_t adjust_period = 4;
};

class AdaptiveBatchController {
 public:
  /// `batch0` / `wait0` seed the knobs until the first adjustment (they
  /// are clamped into the configured ranges).  Throws std::invalid_argument
  /// on an inconsistent config (empty ranges, alpha outside (0, 1], zero
  /// adjust_period, non-positive target).
  AdaptiveBatchController(const AdaptiveConfig& config, std::size_t batch0,
                          std::uint64_t wait0);

  /// Record one tick's arrival count.  Call exactly once per service tick,
  /// before reading the knobs for that tick's dispatch decision.
  void observe(std::uint64_t arrivals);

  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_; }
  [[nodiscard]] std::uint64_t max_wait_ticks() const noexcept {
    return wait_;
  }
  /// Smoothed arrivals per tick.
  [[nodiscard]] double rate() const noexcept { return rate_; }
  /// Times an adjustment actually changed a knob.
  [[nodiscard]] std::uint64_t adjustments() const noexcept {
    return adjustments_;
  }

 private:
  AdaptiveConfig config_;
  double rate_ = 0.0;
  bool primed_ = false;  ///< first observation seeds the EWMA directly
  std::uint64_t ticks_since_adjust_ = 0;
  std::size_t batch_;
  std::uint64_t wait_;
  std::uint64_t adjustments_ = 0;
};

}  // namespace g500::serve
