#include "serve/cache.hpp"

namespace g500::serve {

RootCache::RootCache(std::size_t budget_bytes, std::size_t entry_bytes)
    : capacity_(entry_bytes == 0 ? 0 : budget_bytes / entry_bytes),
      entry_bytes_(entry_bytes) {
  stats_.capacity_entries = capacity_;
}

RootCache::Slice RootCache::lookup(graph::VertexId key,
                                   std::uint64_t version) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  if (it->second->version != version) {
    // Fail closed: a slice solved on another graph version must never
    // answer a query — drop it and report a miss.
    lru_.erase(it->second);
    index_.erase(it);
    ++stats_.misses;
    ++stats_.version_misses;
    stats_.resident_entries = lru_.size();
    stats_.resident_bytes = lru_.size() * entry_bytes_;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->slice;
}

bool RootCache::contains(graph::VertexId key) const {
  return index_.find(key) != index_.end();
}

void RootCache::insert(graph::VertexId key, Slice slice,
                       std::uint64_t version) {
  if (capacity_ == 0) {
    ++stats_.rejected;
    return;
  }
  if (const auto it = index_.find(key); it != index_.end()) {
    // Replace in place (a re-computed root refreshes its entry).
    it->second->slice = std::move(slice);
    it->second->version = version;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.inserts;
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::move(slice), version});
  index_[key] = lru_.begin();
  ++stats_.inserts;
  stats_.resident_entries = lru_.size();
  stats_.resident_bytes = lru_.size() * entry_bytes_;
}

void RootCache::insert(graph::VertexId key, std::vector<graph::Weight> slice,
                       std::uint64_t version) {
  insert(key,
         std::make_shared<const std::vector<graph::Weight>>(std::move(slice)),
         version);
}

std::vector<graph::VertexId> RootCache::keys() const {
  std::vector<graph::VertexId> out;
  out.reserve(lru_.size());
  for (const auto& entry : lru_) out.push_back(entry.key);
  return out;
}

bool RootCache::erase(graph::VertexId key) {
  const auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.erase(it->second);
  index_.erase(it);
  stats_.resident_entries = lru_.size();
  stats_.resident_bytes = lru_.size() * entry_bytes_;
  return true;
}

void RootCache::restamp(graph::VertexId key, std::uint64_t version) {
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->version = version;
  }
}

void RootCache::clear() {
  lru_.clear();
  index_.clear();
  stats_.resident_entries = 0;
  stats_.resident_bytes = 0;
}

void RootCache::reset_counters() {
  const auto entries = stats_.resident_entries;
  const auto bytes = stats_.resident_bytes;
  const auto capacity = stats_.capacity_entries;
  stats_ = CacheStats{};
  stats_.resident_entries = entries;
  stats_.resident_bytes = bytes;
  stats_.capacity_entries = capacity;
}

}  // namespace g500::serve
