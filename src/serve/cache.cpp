#include "serve/cache.hpp"

namespace g500::serve {

RootCache::RootCache(std::size_t budget_bytes, std::size_t entry_bytes)
    : capacity_(entry_bytes == 0 ? 0 : budget_bytes / entry_bytes),
      entry_bytes_(entry_bytes) {
  stats_.capacity_entries = capacity_;
}

RootCache::Slice RootCache::lookup(graph::VertexId key) {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->slice;
}

bool RootCache::contains(graph::VertexId key) const {
  return index_.find(key) != index_.end();
}

void RootCache::insert(graph::VertexId key, Slice slice) {
  if (capacity_ == 0) {
    ++stats_.rejected;
    return;
  }
  if (const auto it = index_.find(key); it != index_.end()) {
    // Replace in place (a re-computed root refreshes its entry).
    it->second->slice = std::move(slice);
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.inserts;
    return;
  }
  while (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, std::move(slice)});
  index_[key] = lru_.begin();
  ++stats_.inserts;
  stats_.resident_entries = lru_.size();
  stats_.resident_bytes = lru_.size() * entry_bytes_;
}

void RootCache::insert(graph::VertexId key, std::vector<graph::Weight> slice) {
  insert(key, std::make_shared<const std::vector<graph::Weight>>(
                  std::move(slice)));
}

void RootCache::clear() {
  lru_.clear();
  index_.clear();
  stats_.resident_entries = 0;
  stats_.resident_bytes = 0;
}

void RootCache::reset_counters() {
  const auto entries = stats_.resident_entries;
  const auto bytes = stats_.resident_bytes;
  const auto capacity = stats_.capacity_entries;
  stats_ = CacheStats{};
  stats_.resident_entries = entries;
  stats_.resident_bytes = bytes;
  stats_.capacity_entries = capacity;
}

}  // namespace g500::serve
