#include "serve/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace g500::serve {

AdaptiveBatchController::AdaptiveBatchController(const AdaptiveConfig& config,
                                                std::size_t batch0,
                                                std::uint64_t wait0)
    : config_(config) {
  if (config_.min_batch == 0 || config_.min_batch > config_.max_batch) {
    throw std::invalid_argument(
        "AdaptiveBatchController: need 1 <= min_batch <= max_batch");
  }
  if (config_.min_wait_ticks > config_.max_wait_ticks) {
    throw std::invalid_argument(
        "AdaptiveBatchController: need min_wait_ticks <= max_wait_ticks");
  }
  if (!(config_.ewma_alpha > 0.0) || config_.ewma_alpha > 1.0) {
    throw std::invalid_argument(
        "AdaptiveBatchController: ewma_alpha must be in (0, 1]");
  }
  if (config_.adjust_period == 0) {
    throw std::invalid_argument(
        "AdaptiveBatchController: adjust_period must be >= 1");
  }
  if (!(config_.target_wait_ticks > 0.0)) {
    throw std::invalid_argument(
        "AdaptiveBatchController: target_wait_ticks must be > 0");
  }
  batch_ = std::clamp(batch0, config_.min_batch, config_.max_batch);
  wait_ = std::clamp(wait0, config_.min_wait_ticks, config_.max_wait_ticks);
}

void AdaptiveBatchController::observe(std::uint64_t arrivals) {
  const auto x = static_cast<double>(arrivals);
  if (!primed_) {
    rate_ = x;
    primed_ = true;
  } else {
    rate_ = config_.ewma_alpha * x + (1.0 - config_.ewma_alpha) * rate_;
  }
  if (++ticks_since_adjust_ < config_.adjust_period) return;
  ticks_since_adjust_ = 0;

  const auto want_batch = static_cast<std::size_t>(std::llround(
      std::max(0.0, rate_ * config_.target_wait_ticks)));
  const std::size_t batch =
      std::clamp(want_batch, config_.min_batch, config_.max_batch);
  // Deadline sized so the chosen batch actually fills at the current rate;
  // at very low rates the max_wait_ticks cap keeps latency bounded.
  const double fill_ticks =
      rate_ > 0.0 ? static_cast<double>(batch) / rate_
                  : static_cast<double>(config_.max_wait_ticks);
  const std::uint64_t wait =
      std::clamp(static_cast<std::uint64_t>(std::llround(fill_ticks)),
                 config_.min_wait_ticks, config_.max_wait_ticks);
  if (batch != batch_ || wait != wait_) ++adjustments_;
  batch_ = batch;
  wait_ = wait;
}

}  // namespace g500::serve
