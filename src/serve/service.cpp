#include "serve/service.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/remote.hpp"
#include "util/timer.hpp"

namespace g500::serve {

namespace {
/// slot_of sentinel for queries the oracle settles without a fetch.
constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();
}  // namespace

DistanceService::DistanceService(simmpi::Comm& comm,
                                 const graph::DistGraph& g, ServeConfig config)
    : comm_(comm),
      g_(g),
      config_(std::move(config)),
      // Charge every entry the widest owned slice so residency decisions
      // are rank-independent (see cache.hpp).
      cache_(config_.cache_budget_bytes,
             g.part.count(0) * sizeof(graph::Weight)) {
  if (config_.queue_depth == 0) {
    throw std::invalid_argument("DistanceService: queue_depth must be >= 1");
  }
  if (config_.batch_size == 0) {
    throw std::invalid_argument("DistanceService: batch_size must be >= 1");
  }
  for (const auto f : config_.facilities) {
    if (f >= g_.num_vertices) {
      throw std::out_of_range("DistanceService: facility out of range");
    }
  }
  // Pruning is owned by the service (per-batch bounds); a caller-supplied
  // slice would dangle and poison every wave.
  config_.sssp.prune_lb = nullptr;
  config_.sssp.prune_budget = graph::kInfDistance;
  if (config_.oracle.num_landmarks > 0) {
    oracle_.emplace(comm_, g_, config_.oracle, config_.sssp);
  }
  if (config_.adaptive.enabled) {
    controller_.emplace(config_.adaptive, config_.batch_size,
                        config_.max_wait_ticks);
  }
}

bool DistanceService::submit(const Query& q) {
  // Validate before counting: a rejected query must leave every metric
  // untouched or ranks that saw the throw disagree with ranks that did not.
  if (q.kind == QueryKind::kNearestFacility && config_.facilities.empty()) {
    throw std::invalid_argument(
        "DistanceService: nearest query without a facility set");
  }
  if (q.target >= g_.num_vertices ||
      (q.kind == QueryKind::kPointToPoint && q.root >= g_.num_vertices)) {
    throw std::out_of_range("DistanceService: query vertex out of range");
  }
  ++metrics_.arrived;
  ++arrived_since_tick_;
  if (queue_.size() >= config_.queue_depth) {
    if (config_.shed_policy == ShedPolicy::kRejectNew) {
      ++metrics_.shed;
      shed_log_.push_back(q);
      return false;
    }
    // kDropOldest: the longest waiter is shed to make room.
    ++metrics_.shed;
    shed_log_.push_back(queue_.front());
    queue_.pop_front();
  }
  ++metrics_.admitted;
  queue_.push_back(q);
  return true;
}

void DistanceService::note_wave(const core::SsspStats& stats) {
  metrics_.wave_relax_generated += stats.relax_generated;
  metrics_.wave_relax_sent += stats.relax_sent;
  metrics_.wave_pruned_expand += stats.pruned_expand;
  metrics_.wave_pruned_apply += stats.pruned_apply;
}

RootCache::Slice DistanceService::resolve(graph::VertexId key,
                                          bool* from_cache) {
  if (auto slice = cache_.lookup(key)) {
    *from_cache = true;
    return slice;
  }
  *from_cache = false;
  util::Timer timer;
  core::SsspResult result;
  core::SsspStats stats;
  if (key == facility_key()) {
    result = core::delta_stepping_multi(comm_, g_, config_.facilities,
                                        config_.sssp, &stats);
  } else {
    result = core::delta_stepping(comm_, g_, key, config_.sssp, &stats);
  }
  metrics_.wave_seconds += timer.seconds();
  ++metrics_.waves;
  note_wave(stats);
  auto slice = std::make_shared<const std::vector<graph::Weight>>(
      std::move(result.dist));
  // Shared ownership keeps the slice alive for this batch's extraction
  // even if a later insert evicts the entry again.
  cache_.insert(key, slice);
  return slice;
}

std::vector<Answer> DistanceService::tick(std::uint64_t now, bool flush) {
  if (last_now_ && now < *last_now_) {
    throw std::invalid_argument(
        "DistanceService: tick clock moved backwards");
  }
  last_now_ = now;
  ++metrics_.ticks;
  if (controller_) {
    // The controller sees the offered load (all arrivals since the last
    // tick, shed included) — identical on every rank by the SPMD contract.
    controller_->observe(arrived_since_tick_);
    metrics_.adaptive_adjustments = controller_->adjustments();
  }
  arrived_since_tick_ = 0;
  const std::size_t batch_limit = current_batch_size();
  const std::uint64_t max_wait = current_max_wait_ticks();
  metrics_.queue_depth.add(queue_.size());
  if (queue_.empty()) return {};

  const bool deadline = now >= queue_.front().arrival_tick + max_wait;
  const bool full = queue_.size() >= batch_limit;
  if (!flush && !deadline && !full) return {};

  // ---- form the batch (FIFO prefix) ----------------------------------
  const std::size_t take = std::min(queue_.size(), batch_limit);
  std::vector<Query> batch(queue_.begin(),
                           queue_.begin() + static_cast<std::ptrdiff_t>(take));
  queue_.erase(queue_.begin(), queue_.begin() +
                                   static_cast<std::ptrdiff_t>(take));
  ++metrics_.batches;
  metrics_.batch_occupancy.add(batch.size());

  // ---- oracle pass: bound every point-to-point pair ------------------
  // One collective row fetch covers all distinct endpoints; the bound
  // math itself is local.  Exact verdicts (s == t, landmark roots,
  // proven-unreachable pairs) never reach the wave or fetch stages.
  std::vector<LandmarkOracle::Bounds> verdict(batch.size());
  std::vector<std::vector<graph::Weight>> rows;
  std::vector<std::size_t> target_row(batch.size(), 0);
  std::vector<char> direct(batch.size(), 0);
  bool any_p2p = false;
  if (oracle_) {
    for (const auto& q : batch) {
      if (q.kind == QueryKind::kPointToPoint) any_p2p = true;
    }
  }
  if (oracle_ && any_p2p) {
    util::Timer oracle_timer;
    std::vector<graph::VertexId> verts;
    const auto index_of = [&verts](graph::VertexId v) {
      for (std::size_t j = 0; j < verts.size(); ++j) {
        if (verts[j] == v) return j;
      }
      verts.push_back(v);
      return verts.size() - 1;
    };
    std::vector<std::size_t> root_row(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind != QueryKind::kPointToPoint) continue;
      root_row[i] = index_of(batch[i].root);
      target_row[i] = index_of(batch[i].target);
    }
    rows = oracle_->landmark_distances(verts);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind != QueryKind::kPointToPoint) continue;
      verdict[i] = oracle_->bounds(rows[root_row[i]], rows[target_row[i]],
                                   batch[i].root, batch[i].target);
      if (verdict[i].exact) {
        direct[i] = 1;
        ++metrics_.oracle_exact;
        if (verdict[i].unreachable) ++metrics_.oracle_unreachable;
      }
    }
    metrics_.oracle_seconds += oracle_timer.seconds();
  }

  // ---- dedupe the remaining queries by resolution key ----------------
  // First-appearance order keeps the collective sequence identical on
  // every rank.
  std::vector<graph::VertexId> keys;
  std::vector<std::vector<std::size_t>> members;
  std::vector<std::uint32_t> slot_of(batch.size(), kNoSlot);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (direct[i]) continue;
    const graph::VertexId key = batch[i].kind == QueryKind::kNearestFacility
                                    ? facility_key()
                                    : batch[i].root;
    const auto it = std::find(keys.begin(), keys.end(), key);
    if (it == keys.end()) {
      slot_of[i] = static_cast<std::uint32_t>(keys.size());
      keys.push_back(key);
      members.push_back({i});
    } else {
      slot_of[i] = static_cast<std::uint32_t>(it - keys.begin());
      members[static_cast<std::size_t>(it - keys.begin())].push_back(i);
    }
  }

  // ---- resolve each group's distance slice ---------------------------
  std::vector<RootCache::Slice> slices;
  std::vector<bool> cached;
  std::vector<bool> pruned;
  slices.reserve(keys.size());
  for (std::size_t gi = 0; gi < keys.size(); ++gi) {
    const graph::VertexId key = keys[gi];
    const bool p2p = key != facility_key();
    bool from_cache = false;
    RootCache::Slice slice;
    bool group_pruned = false;
    if (!oracle_ || !p2p) {
      slice = resolve(key, &from_cache);
    } else if (auto hit = cache_.lookup(key)) {
      from_cache = true;
      slice = hit;
    } else {
      // Goal-directed pruned wave: admissible toward every target of the
      // group (elementwise-min lb), budgeted by the loosest upper bound.
      util::Timer oracle_timer;
      auto lb = oracle_->lb_slice(rows[target_row[members[gi][0]]]);
      graph::Weight budget = oracle_->budget(verdict[members[gi][0]].ub);
      for (std::size_t m = 1; m < members[gi].size(); ++m) {
        const std::size_t qi = members[gi][m];
        oracle_->min_into_lb_slice(lb, rows[target_row[qi]]);
        budget = std::max(budget, oracle_->budget(verdict[qi].ub));
      }
      metrics_.oracle_seconds += oracle_timer.seconds();
      core::SsspConfig cfg = config_.sssp;
      cfg.prune_lb = &lb;
      cfg.prune_budget = budget;
      util::Timer wave_timer;
      core::SsspStats stats;
      auto result = core::delta_stepping(comm_, g_, key, cfg, &stats);
      metrics_.wave_seconds += wave_timer.seconds();
      ++metrics_.waves;
      ++metrics_.pruned_waves;
      note_wave(stats);
      // A pruned slice is exact only at (and within budget of) its
      // targets — never cache it.
      slice = std::make_shared<const std::vector<graph::Weight>>(
          std::move(result.dist));
      group_pruned = true;
    }
    slices.push_back(std::move(slice));
    cached.push_back(from_cache);
    pruned.push_back(group_pruned);
  }

  // ---- one batched exchange answers every remaining query ------------
  std::vector<core::SlotQuery> fetches;
  std::vector<std::size_t> fetch_idx(batch.size(), 0);
  fetches.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (direct[i]) continue;
    fetch_idx[i] = fetches.size();
    fetches.push_back(core::SlotQuery{slot_of[i], batch[i].target});
  }
  std::vector<const std::vector<graph::Weight>*> slots;
  slots.reserve(slices.size());
  for (const auto& s : slices) slots.push_back(s.get());
  util::Timer fetch_timer;
  const auto distances =
      core::fetch_values_batched(comm_, g_.part, fetches, slots);
  metrics_.fetch_seconds += fetch_timer.seconds();
  ++metrics_.fetch_rounds;

  // ---- complete ------------------------------------------------------
  std::vector<Answer> answers;
  answers.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Answer a;
    a.id = batch[i].id;
    a.kind = batch[i].kind;
    a.root = batch[i].root;
    a.target = batch[i].target;
    if (direct[i]) {
      a.distance = verdict[i].ub;
      a.from_oracle = true;
    } else {
      a.distance = distances[fetch_idx[i]];
      a.from_cache = cached[slot_of[i]];
      a.pruned_wave = pruned[slot_of[i]];
    }
    a.arrival_tick = batch[i].arrival_tick;
    a.completion_tick = now;
    ++metrics_.answered;
    metrics_.latency_ticks.add(a.latency_ticks());
    if (a.latency_ticks() > config_.slo_ticks) ++metrics_.slo_violations;
    answers.push_back(a);
  }
  return answers;
}

std::vector<Answer> DistanceService::drain(std::uint64_t start_tick,
                                           std::uint64_t* end_tick) {
  std::vector<Answer> all;
  std::uint64_t now = start_tick;
  while (!queue_.empty()) {
    auto batch = tick(now++, /*flush=*/true);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  if (end_tick != nullptr) *end_tick = now;
  return all;
}

const ServiceMetrics& DistanceService::metrics() {
  metrics_.cache = cache_.stats();
  if (oracle_) {
    metrics_.oracle_landmarks = oracle_->landmarks().size();
    metrics_.oracle_precompute_waves = oracle_->precompute_waves();
    metrics_.oracle_precompute_seconds = oracle_->precompute_seconds();
  }
  return metrics_;
}

void DistanceService::reset_metrics() {
  metrics_ = ServiceMetrics{};
  shed_log_.clear();
  cache_.reset_counters();
  arrived_since_tick_ = 0;
  last_now_.reset();
}

}  // namespace g500::serve
