#include "serve/service.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/remote.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace g500::serve {

namespace {
/// slot_of sentinel for queries the oracle settles without a fetch.
constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();
}  // namespace

DistanceService::DistanceService(simmpi::Comm& comm,
                                 const graph::DistGraph& g, ServeConfig config,
                                 FaultContext* fault)
    : comm_(comm),
      g_(g),
      config_(std::move(config)),
      // Charge every entry the widest owned slice so residency decisions
      // are rank-independent (see cache.hpp).
      cache_(config_.cache_budget_bytes,
             g.part.count(0) * sizeof(graph::Weight)),
      registry_(config_.analytics),
      fault_(fault) {
  if (config_.queue_depth == 0) {
    throw std::invalid_argument("DistanceService: queue_depth must be >= 1");
  }
  if (config_.batch_size == 0) {
    throw std::invalid_argument("DistanceService: batch_size must be >= 1");
  }
  if (config_.shed_log_cap == 0) {
    throw std::invalid_argument("DistanceService: shed_log_cap must be >= 1");
  }
  if (config_.fault.max_wave_attempts < 1) {
    throw std::invalid_argument(
        "DistanceService: max_wave_attempts must be >= 1");
  }
  if (config_.analytics_queue_depth == 0) {
    throw std::invalid_argument(
        "DistanceService: analytics_queue_depth must be >= 1");
  }
  for (const auto f : config_.facilities) {
    if (f >= g_.num_vertices) {
      throw std::out_of_range("DistanceService: facility out of range");
    }
  }
  // Pruning, deadline truncation and checkpointing are owned by the
  // service (per-batch decisions); caller-supplied values would dangle or
  // desync the waves.
  config_.sssp.prune_lb = nullptr;
  config_.sssp.prune_budget = graph::kInfDistance;
  config_.sssp.deadline_buckets = 0;
  config_.sssp.checkpoint_interval = 0;
  graph_version_ = config_.graph_version;
  // The oracle's persistence digest pins the graph version: slices saved
  // before a streaming mutation can never be adopted after one.
  config_.oracle.graph_version = config_.graph_version;
  if (config_.oracle.num_landmarks > 0) {
    oracle_.emplace(comm_, g_, config_.oracle, config_.sssp,
                    fault_ != nullptr ? fault_->oracle_store : nullptr);
  }
  if (config_.adaptive.enabled) {
    controller_.emplace(config_.adaptive, config_.batch_size,
                        config_.max_wait_ticks);
  }
  if (fault_ != nullptr) breaker_ = fault_->breaker;
  if (fault_ != nullptr && fault_->oracle_store != nullptr) {
    // Exact point-cache adoption, all-or-nothing across ranks for the
    // same reason as the oracle's (residency feeds collective decisions).
    const bool mine = try_adopt_points(*fault_->oracle_store);
    if (comm_.allreduce_or(!mine)) {
      point_cache_.clear();
      point_order_.clear();
    } else {
      metrics_.point_restored = point_cache_.size();
    }
  }
}

bool DistanceService::submit(const Query& q) {
  // Validate before counting: a rejected query must leave every metric
  // untouched or ranks that saw the throw disagree with ranks that did not.
  if (q.kind == QueryKind::kNearestFacility && config_.facilities.empty()) {
    throw std::invalid_argument(
        "DistanceService: nearest query without a facility set");
  }
  if (q.kind == QueryKind::kAnalytics) {
    if (q.kernel == AnalyticsKernel::kReachability &&
        (q.root >= g_.num_vertices || q.target >= g_.num_vertices)) {
      throw std::out_of_range(
          "DistanceService: reachability vertex out of range");
    }
  } else if (q.target >= g_.num_vertices ||
             (q.kind == QueryKind::kPointToPoint &&
              q.root >= g_.num_vertices)) {
    throw std::out_of_range("DistanceService: query vertex out of range");
  }
  ++metrics_.arrived;
  ++arrived_since_tick_;
  if (q.kind == QueryKind::kAnalytics) {
    // Analytics jobs have their own bounded queue so they can never crowd
    // distance reads out of admission (and vice versa).
    ++metrics_.analytics_arrived;
    if (analytics_queue_.size() >= config_.analytics_queue_depth) {
      ++metrics_.shed;
      ++metrics_.analytics_shed;
      if (config_.shed_policy == ShedPolicy::kRejectNew) {
        log_shed(q);
        return false;
      }
      log_shed(analytics_queue_.front());
      analytics_queue_.pop_front();
    }
    ++metrics_.admitted;
    ++metrics_.analytics_admitted;
    analytics_queue_.push_back(q);
    return true;
  }
  if (queue_.size() >= config_.queue_depth) {
    if (config_.shed_policy == ShedPolicy::kRejectNew) {
      ++metrics_.shed;
      log_shed(q);
      return false;
    }
    // kDropOldest: the longest waiter is shed to make room.
    ++metrics_.shed;
    log_shed(queue_.front());
    queue_.pop_front();
  }
  ++metrics_.admitted;
  queue_.push_back(q);
  return true;
}

void DistanceService::log_shed(const Query& q) {
  if (shed_log_.size() >= config_.shed_log_cap) {
    ++metrics_.shed_log_overflow;
    return;
  }
  shed_log_.push_back(q);
}

void DistanceService::restore_backlog(const std::vector<Query>& backlog) {
  for (const auto& q : backlog) {
    if (q.kind == QueryKind::kAnalytics) {
      analytics_queue_.push_back(q);
      continue;
    }
    if (q.target >= g_.num_vertices ||
        (q.kind == QueryKind::kPointToPoint && q.root >= g_.num_vertices)) {
      throw std::out_of_range("DistanceService: backlog vertex out of range");
    }
    queue_.push_back(q);
  }
}

bool DistanceService::is_abandoned(graph::VertexId key) const noexcept {
  if (fault_ == nullptr) return false;
  if (key == facility_key()) return fault_->facility_abandoned;
  return std::find(fault_->abandoned.begin(), fault_->abandoned.end(), key) !=
         fault_->abandoned.end();
}

core::CheckpointState* DistanceService::snapshot_for(
    graph::VertexId key) const noexcept {
  if (fault_ == nullptr || fault_->snapshot == nullptr ||
      !config_.fault.enabled) {
    return nullptr;
  }
  // The slot holds a crashed wave's progress: only the matching wave may
  // touch it (any other wave's digest check would clear it).  Once the
  // resume consumed it (the engine clears a completed run's snapshot),
  // every wave can checkpoint into the free slot again.
  if (fault_->snapshot->valid && (!fault_->has_resume || key != fault_->resume_key)) {
    return nullptr;
  }
  return fault_->snapshot;
}

void DistanceService::note_wave(const core::SsspStats& stats) {
  metrics_.wave_relax_generated += stats.relax_generated;
  metrics_.wave_relax_sent += stats.relax_sent;
  metrics_.wave_pruned_expand += stats.pruned_expand;
  metrics_.wave_pruned_apply += stats.pruned_apply;
}

RootCache::Slice DistanceService::dispatch_wave(graph::VertexId key,
                                                const core::SsspConfig& cfg,
                                                bool cacheable,
                                                double* settled_bound) {
  *settled_bound = std::numeric_limits<double>::infinity();
  FaultLedger* ledger = fault_ != nullptr ? fault_->ledger : nullptr;
  if (ledger != nullptr && comm_.rank() == 0) {
    // Rank-0 write between collectives: a crash inside the wave leaves
    // this record intact for the driver's retry attribution.
    ledger->wave_open = true;
    ledger->wave_facility = key == facility_key();
    ledger->wave_key = key;
  }
  util::Timer timer;
  core::SsspResult result;
  core::SsspStats stats;
  if (key == facility_key()) {
    result = core::delta_stepping_multi(comm_, g_, config_.facilities, cfg,
                                        &stats);
  } else if (core::CheckpointState* ckpt = snapshot_for(key);
             ckpt != nullptr && cfg.prune_lb == nullptr) {
    // Pruned waves never checkpoint: a snapshot's digest pins only the
    // root/delta/shape, so a resume could mix full-wave and pruned-wave
    // state and break bit-identity.
    core::SsspConfig ck = cfg;
    ck.checkpoint_interval = config_.fault.checkpoint_interval;
    result = core::delta_stepping_checkpointed(comm_, g_, key, ck, ckpt,
                                               &stats);
  } else {
    result = core::delta_stepping(comm_, g_, key, cfg, &stats);
  }
  metrics_.wave_seconds += timer.seconds();
  ++metrics_.waves;
  note_wave(stats);
  if (stats.restores > 0) ++metrics_.wave_resumes;
  if (ledger != nullptr && comm_.rank() == 0) ledger->wave_open = false;
  auto slice = std::make_shared<const std::vector<graph::Weight>>(
      std::move(result.dist));
  if (stats.deadline_stops > 0) {
    ++metrics_.deadline_truncated_waves;
    *settled_bound = stats.settled_bound;
    // Beyond the settled boundary the slice holds upper bounds only —
    // never cache it.
    return slice;
  }
  // Shared ownership keeps the slice alive for this batch's extraction
  // even if a later insert evicts the entry again.
  if (cacheable) cache_.insert(key, slice, graph_version_);
  return slice;
}

void ServiceMetrics::merge(const ServiceMetrics& other) {
  arrived += other.arrived;
  admitted += other.admitted;
  shed += other.shed;
  answered += other.answered;
  slo_violations += other.slo_violations;
  batches += other.batches;
  waves += other.waves;
  pruned_waves += other.pruned_waves;
  fetch_rounds += other.fetch_rounds;
  ticks += other.ticks;
  oracle_exact += other.oracle_exact;
  oracle_unreachable += other.oracle_unreachable;
  adaptive_adjustments += other.adaptive_adjustments;
  deadline_exceeded += other.deadline_exceeded;
  degraded += other.degraded;
  failed_queries += other.failed_queries;
  shed_log_overflow += other.shed_log_overflow;
  deadline_truncated_waves += other.deadline_truncated_waves;
  wave_resumes += other.wave_resumes;
  breaker_half_opened += other.breaker_half_opened;
  breaker_closed += other.breaker_closed;
  analytics_arrived += other.analytics_arrived;
  analytics_admitted += other.analytics_admitted;
  analytics_shed += other.analytics_shed;
  analytics_answered += other.analytics_answered;
  analytics_slo_violations += other.analytics_slo_violations;
  analytics_deadline_exceeded += other.analytics_deadline_exceeded;
  analytics_degraded += other.analytics_degraded;
  analytics_failed += other.analytics_failed;
  analytics_jobs += other.analytics_jobs;
  analytics_memo_hits += other.analytics_memo_hits;
  analytics_deferred_ticks += other.analytics_deferred_ticks;
  reachability_cutoffs += other.reachability_cutoffs;
  for (std::size_t k = 0; k < kernel_jobs.size(); ++k) {
    kernel_jobs[k] += other.kernel_jobs[k];
  }
  analytics_rounds += other.analytics_rounds;
  analytics_items_sent += other.analytics_items_sent;
  analytics_items_applied += other.analytics_items_applied;
  analytics_seconds += other.analytics_seconds;
  point_cache_hits += other.point_cache_hits;
  point_cache_misses += other.point_cache_misses;
  point_cache_inserts += other.point_cache_inserts;
  point_cache_evictions += other.point_cache_evictions;
  point_persisted += other.point_persisted;
  point_restored += other.point_restored;
  graph_updates += other.graph_updates;
  update_edges_applied += other.update_edges_applied;
  roots_invalidated += other.roots_invalidated;
  roots_retained += other.roots_retained;
  points_invalidated += other.points_invalidated;
  points_retained += other.points_retained;
  memo_invalidated += other.memo_invalidated;
  slices_refreshed += other.slices_refreshed;
  wholesale_flushes += other.wholesale_flushes;
  latency_ticks.merge(other.latency_ticks);
  analytics_latency_ticks.merge(other.analytics_latency_ticks);
  batch_occupancy.merge(other.batch_occupancy);
  queue_depth.merge(other.queue_depth);
  wave_seconds += other.wave_seconds;
  fetch_seconds += other.fetch_seconds;
  oracle_seconds += other.oracle_seconds;
  wave_relax_generated += other.wave_relax_generated;
  wave_relax_sent += other.wave_relax_sent;
  wave_pruned_expand += other.wave_pruned_expand;
  wave_pruned_apply += other.wave_pruned_apply;
  oracle_landmarks = other.oracle_landmarks;
  oracle_precompute_waves += other.oracle_precompute_waves;
  oracle_precompute_seconds += other.oracle_precompute_seconds;
  cache.hits += other.cache.hits;
  cache.misses += other.cache.misses;
  cache.inserts += other.cache.inserts;
  cache.evictions += other.cache.evictions;
  cache.rejected += other.cache.rejected;
  cache.version_misses += other.cache.version_misses;
  cache.resident_entries = other.cache.resident_entries;
  cache.resident_bytes = other.cache.resident_bytes;
  cache.capacity_entries = other.cache.capacity_entries;
}

std::vector<Answer> DistanceService::tick(std::uint64_t now, bool flush) {
  if (last_now_ && now < *last_now_) {
    throw std::invalid_argument(
        "DistanceService: tick clock moved backwards");
  }
  last_now_ = now;
  ++metrics_.ticks;
  if (controller_) {
    // The controller sees the offered load (all arrivals since the last
    // tick, shed included) — identical on every rank by the SPMD contract.
    controller_->observe(arrived_since_tick_);
    metrics_.adaptive_adjustments = controller_->adjustments();
  }
  arrived_since_tick_ = 0;

  // Breaker timer: an open breaker half-opens once the cooldown expires,
  // admitting exactly one probe wave this tick.  Deterministic across
  // ranks (pure function of `now` and the carried-in state).
  if (config_.fault.breaker_threshold > 0 &&
      breaker_.state == BreakerState::kOpen &&
      now >= breaker_.opened_tick + config_.fault.breaker_cooldown_ticks) {
    breaker_.state = BreakerState::kHalfOpen;
    ++metrics_.breaker_half_opened;
  }

  std::vector<Answer> answers;

  // ---- deadline sweep: expired waiters complete NOW ------------------
  // Local bookkeeping only (no collectives), so it stays deterministic
  // across ranks and cheap on idle ticks.  Both classes expire the same
  // way; analytics expiries also feed the per-class counter.
  const auto sweep = [&](std::deque<Query>& queue) {
    bool any_expired = false;
    for (const auto& q : queue) {
      if (q.deadline_tick != 0 && now >= q.deadline_tick) {
        any_expired = true;
        break;
      }
    }
    if (!any_expired) return;
    std::deque<Query> keep;
    for (const auto& q : queue) {
      if (q.deadline_tick != 0 && now >= q.deadline_tick) {
        Answer a;
        a.id = q.id;
        a.kind = q.kind;
        a.root = q.root;
        a.target = q.target;
        a.kernel = q.kernel;
        a.distance = graph::kInfDistance;
        a.outcome = Outcome::kDeadlineExceeded;
        a.arrival_tick = q.arrival_tick;
        a.completion_tick = now;
        ++metrics_.deadline_exceeded;
        if (q.kind == QueryKind::kAnalytics) {
          ++metrics_.analytics_deadline_exceeded;
        }
        answers.push_back(a);
      } else {
        keep.push_back(q);
      }
    }
    queue.swap(keep);
  };
  sweep(queue_);
  sweep(analytics_queue_);

  // Distance micro-batch first — the cheap class must keep flowing — then
  // at most one analytics job.
  dispatch_distance_batch(now, flush, answers);
  run_analytics_stage(now, flush, answers);
  // Every answer this tick was computed against the live graph version.
  for (auto& a : answers) a.graph_version = graph_version_;
  return answers;
}

void DistanceService::dispatch_distance_batch(std::uint64_t now, bool flush,
                                              std::vector<Answer>& answers) {
  const std::size_t batch_limit = current_batch_size();
  const std::uint64_t max_wait = current_max_wait_ticks();
  metrics_.queue_depth.add(queue_.size());
  if (queue_.empty()) return;

  const bool deadline = now >= queue_.front().arrival_tick + max_wait;
  const bool full = queue_.size() >= batch_limit;
  if (!flush && !deadline && !full) return;

  // ---- form the batch (FIFO prefix) ----------------------------------
  const std::size_t take = std::min(queue_.size(), batch_limit);
  std::vector<Query> batch(queue_.begin(),
                           queue_.begin() + static_cast<std::ptrdiff_t>(take));
  queue_.erase(queue_.begin(), queue_.begin() +
                                   static_cast<std::ptrdiff_t>(take));
  ++metrics_.batches;
  metrics_.batch_occupancy.add(batch.size());

  // ---- exact point cache: earlier pruned waves carry over -------------
  // A pruned slice is exact at its targets even though it never enters the
  // root cache; those point values were banked at completion, so a repeat
  // of the same (root, target) pair costs a map lookup here instead of
  // another wave.  Hits skip the oracle pass, dedupe and fetch entirely.
  std::vector<char> from_point(batch.size(), 0);
  std::vector<graph::Weight> point_val(batch.size(), graph::kInfDistance);
  if (config_.point_cache_cap > 0) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind != QueryKind::kPointToPoint) continue;
      if (const graph::Weight* hit =
              lookup_point(batch[i].root, batch[i].target)) {
        from_point[i] = 1;
        point_val[i] = *hit;
        ++metrics_.point_cache_hits;
      } else {
        ++metrics_.point_cache_misses;
      }
    }
  }

  // ---- oracle pass: bound every point-to-point pair ------------------
  // One collective row fetch covers all distinct endpoints; the bound
  // math itself is local.  Exact verdicts (s == t, landmark roots,
  // proven-unreachable pairs) never reach the wave or fetch stages.
  std::vector<LandmarkOracle::Bounds> verdict(batch.size());
  std::vector<std::vector<graph::Weight>> rows;
  std::vector<std::size_t> target_row(batch.size(), 0);
  std::vector<char> direct(batch.size(), 0);
  bool any_p2p = false;
  if (oracle_) {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind == QueryKind::kPointToPoint && !from_point[i]) {
        any_p2p = true;
      }
    }
  }
  if (oracle_ && any_p2p) {
    util::Timer oracle_timer;
    std::vector<graph::VertexId> verts;
    const auto index_of = [&verts](graph::VertexId v) {
      for (std::size_t j = 0; j < verts.size(); ++j) {
        if (verts[j] == v) return j;
      }
      verts.push_back(v);
      return verts.size() - 1;
    };
    std::vector<std::size_t> root_row(batch.size(), 0);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind != QueryKind::kPointToPoint || from_point[i]) continue;
      root_row[i] = index_of(batch[i].root);
      target_row[i] = index_of(batch[i].target);
    }
    rows = oracle_->landmark_distances(verts);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].kind != QueryKind::kPointToPoint || from_point[i]) continue;
      verdict[i] = oracle_->bounds(rows[root_row[i]], rows[target_row[i]],
                                   batch[i].root, batch[i].target);
      if (verdict[i].exact) {
        direct[i] = 1;
        ++metrics_.oracle_exact;
        if (verdict[i].unreachable) ++metrics_.oracle_unreachable;
      }
    }
    metrics_.oracle_seconds += oracle_timer.seconds();
  }

  // ---- dedupe the remaining queries by resolution key ----------------
  // First-appearance order keeps the collective sequence identical on
  // every rank.
  std::vector<graph::VertexId> keys;
  std::vector<std::vector<std::size_t>> members;
  std::vector<std::uint32_t> slot_of(batch.size(), kNoSlot);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (direct[i] || from_point[i]) continue;
    const graph::VertexId key = batch[i].kind == QueryKind::kNearestFacility
                                    ? facility_key()
                                    : batch[i].root;
    const auto it = std::find(keys.begin(), keys.end(), key);
    if (it == keys.end()) {
      slot_of[i] = static_cast<std::uint32_t>(keys.size());
      keys.push_back(key);
      members.push_back({i});
    } else {
      slot_of[i] = static_cast<std::uint32_t>(it - keys.begin());
      members[static_cast<std::size_t>(it - keys.begin())].push_back(i);
    }
  }

  // ---- batch deadline budget -----------------------------------------
  // The tightest outstanding deadline in the batch caps every wave this
  // tick: the engine stops cleanly after that many bucket epochs and
  // reports the settled bound (sweep above guarantees deadline_tick > now
  // for everything still queued, so `left` is always >= 1).
  core::SsspConfig wave_cfg = config_.sssp;
  if (config_.fault.deadline_buckets_per_tick != 0) {
    std::uint64_t tightest = 0;
    for (const auto& q : batch) {
      if (q.deadline_tick != 0 &&
          (tightest == 0 || q.deadline_tick < tightest)) {
        tightest = q.deadline_tick;
      }
    }
    if (tightest != 0) {
      wave_cfg.deadline_buckets =
          (tightest - now) * config_.fault.deadline_buckets_per_tick;
    }
  }

  // ---- resolve each group's distance slice ---------------------------
  // Exactly ONE cache lookup per group (the hit/miss accounting must not
  // depend on the oracle or fault machinery).  A group is REFUSED — no
  // wave, empty slice — when its key's retry budget is exhausted or the
  // circuit breaker withholds waves; a half-open breaker admits a single
  // probe wave whose completion closes it.
  std::vector<RootCache::Slice> slices;
  std::vector<bool> cached;
  std::vector<bool> pruned;
  std::vector<char> refused(keys.size(), 0);
  std::vector<double> bound(keys.size(),
                            std::numeric_limits<double>::infinity());
  bool probe_used = false;
  bool wave_dispatched = false;
  slices.reserve(keys.size());
  for (std::size_t gi = 0; gi < keys.size(); ++gi) {
    const graph::VertexId key = keys[gi];
    const bool p2p = key != facility_key();
    bool from_cache = false;
    bool group_pruned = false;
    RootCache::Slice slice;
    if (auto hit = cache_.lookup(key, graph_version_)) {
      from_cache = true;
      slice = hit;
    } else if (is_abandoned(key) || breaker_.state == BreakerState::kOpen ||
               (breaker_.state == BreakerState::kHalfOpen && probe_used)) {
      refused[gi] = 1;
    } else {
      const bool probing = breaker_.state == BreakerState::kHalfOpen;
      if (probing) probe_used = true;
      if (oracle_ && p2p) {
        // Goal-directed pruned wave: admissible toward every target of
        // the group (elementwise-min lb), budgeted by the loosest upper
        // bound.  A pruned slice is exact only at (and within budget of)
        // its targets, so dispatch_wave never caches it.
        util::Timer oracle_timer;
        auto lb = oracle_->lb_slice(rows[target_row[members[gi][0]]]);
        graph::Weight budget = oracle_->budget(verdict[members[gi][0]].ub);
        for (std::size_t m = 1; m < members[gi].size(); ++m) {
          const std::size_t qi = members[gi][m];
          oracle_->min_into_lb_slice(lb, rows[target_row[qi]]);
          budget = std::max(budget, oracle_->budget(verdict[qi].ub));
        }
        metrics_.oracle_seconds += oracle_timer.seconds();
        core::SsspConfig cfg = wave_cfg;
        cfg.prune_lb = &lb;
        cfg.prune_budget = budget;
        slice = dispatch_wave(key, cfg, /*cacheable=*/false, &bound[gi]);
        ++metrics_.pruned_waves;
        group_pruned = true;
      } else {
        slice = dispatch_wave(key, wave_cfg, /*cacheable=*/true, &bound[gi]);
      }
      wave_dispatched = true;
      if (probing) {
        // The probe wave came back: close the breaker.
        breaker_.state = BreakerState::kClosed;
        breaker_.consecutive_failures = 0;
        ++metrics_.breaker_closed;
      }
    }
    slices.push_back(std::move(slice));
    cached.push_back(from_cache);
    pruned.push_back(group_pruned);
  }
  // Any wave that came back alive ends the failure streak (the driver
  // increments it on crashes; a completed tick's harvest carries this
  // reset back to the ledger).
  if (wave_dispatched) breaker_.consecutive_failures = 0;

  // ---- one batched exchange answers every remaining query ------------
  // Refused groups hold null slices; their members skip the fetch (no
  // query ever references those slots, identically on every rank).
  std::vector<core::SlotQuery> fetches;
  std::vector<std::size_t> fetch_idx(batch.size(), 0);
  fetches.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (direct[i] || from_point[i] || refused[slot_of[i]]) continue;
    fetch_idx[i] = fetches.size();
    fetches.push_back(core::SlotQuery{slot_of[i], batch[i].target});
  }
  std::vector<const std::vector<graph::Weight>*> slots;
  slots.reserve(slices.size());
  for (const auto& s : slices) slots.push_back(s.get());
  util::Timer fetch_timer;
  const auto distances =
      core::fetch_values_batched(comm_, g_.part, fetches, slots);
  metrics_.fetch_seconds += fetch_timer.seconds();
  ++metrics_.fetch_rounds;

  // ---- complete ------------------------------------------------------
  answers.reserve(answers.size() + batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Answer a;
    a.id = batch[i].id;
    a.kind = batch[i].kind;
    a.root = batch[i].root;
    a.target = batch[i].target;
    a.arrival_tick = batch[i].arrival_tick;
    a.completion_tick = now;
    if (from_point[i]) {
      a.distance = point_val[i];
      a.from_point_cache = true;
      a.lb = a.ub = a.distance;
    } else if (direct[i]) {
      a.distance = verdict[i].ub;
      a.from_oracle = true;
      a.lb = a.ub = a.distance;
    } else if (refused[slot_of[i]]) {
      if (config_.fault.degraded_answers && oracle_ &&
          batch[i].kind == QueryKind::kPointToPoint &&
          std::isfinite(verdict[i].ub)) {
        // Graceful degradation: answer from the oracle's bracket with the
        // witness-path upper bound as the estimate.  Opt-in only.
        a.distance = verdict[i].ub;
        a.lb = verdict[i].lb;
        a.ub = verdict[i].ub;
        a.outcome = Outcome::kDegraded;
        a.from_oracle = true;
        ++metrics_.degraded;
      } else {
        a.distance = graph::kInfDistance;
        a.outcome = Outcome::kFailed;
        ++metrics_.failed_queries;
      }
    } else {
      a.distance = distances[fetch_idx[i]];
      a.from_cache = cached[slot_of[i]];
      a.pruned_wave = pruned[slot_of[i]];
      const double b = bound[slot_of[i]];
      if (static_cast<double>(a.distance) < b) {
        // Complete wave, or a truncated one that still settled this
        // target exactly (dist < settled bound).
        a.lb = a.ub = a.distance;
      } else {
        // Truncated wave and the target sits past the settled boundary:
        // the fetched value is only an upper bound.
        a.outcome = Outcome::kDeadlineExceeded;
        a.lb = static_cast<graph::Weight>(b);
        a.ub = a.distance;
        ++metrics_.deadline_exceeded;
      }
    }
    if (a.outcome == Outcome::kServed) {
      ++metrics_.answered;
      metrics_.latency_ticks.add(a.latency_ticks());
      if (a.latency_ticks() > config_.slo_ticks) ++metrics_.slo_violations;
      if (a.pruned_wave) {
        // Bank the carry-over: the pruned slice is exact at this target
        // even though the slice itself was never cacheable.
        insert_point(a.root, a.target, a.distance);
      }
    }
    answers.push_back(a);
  }
}

void DistanceService::run_analytics_stage(std::uint64_t now, bool flush,
                                          std::vector<Answer>& answers) {
  if (analytics_queue_.empty()) return;
  // Scheduler policy: an analytics job runs only when it has aged past the
  // defer bound, the distance queue has gone idle, or the tick is a flush
  // — and never more than one per tick, so a burst of jobs cannot lock
  // the wave engine away from distance batches.
  const bool aged = now >= analytics_queue_.front().arrival_tick +
                              config_.analytics_defer_ticks;
  if (!flush && !aged && !queue_.empty()) {
    ++metrics_.analytics_deferred_ticks;
    return;
  }
  const Query q = analytics_queue_.front();
  analytics_queue_.pop_front();

  Answer a;
  a.id = q.id;
  a.kind = q.kind;
  a.root = q.root;
  a.target = q.target;
  a.kernel = q.kernel;
  a.arrival_tick = q.arrival_tick;
  a.completion_tick = now;

  if (breaker_.state == BreakerState::kOpen) {
    // An open breaker withholds analytics collectives just like waves;
    // jobs don't probe (a cheap distance wave is the better canary).
    a.distance = graph::kInfDistance;
    a.outcome = Outcome::kFailed;
    ++metrics_.failed_queries;
    ++metrics_.analytics_failed;
    answers.push_back(a);
    return;
  }

  const auto slot = static_cast<std::size_t>(q.kernel);
  const bool memoizable = q.kernel != AnalyticsKernel::kReachability;
  AnalyticsOutcome out;
  if (memoizable && memo_[slot]) {
    // The graph is immutable, so a completed untruncated whole-graph run
    // answers every later job of the same kernel without a collective.
    out = *memo_[slot];
    a.from_cache = true;
    ++metrics_.analytics_memo_hits;
  } else {
    // Deadline budget: remaining ticks map onto a PageRank iteration cap
    // exactly how distance deadlines map onto bucket budgets (the sweep
    // guarantees deadline_tick > now for anything still queued).
    std::uint64_t iter_budget = 0;
    if (config_.deadline_iters_per_tick != 0 && q.deadline_tick != 0) {
      iter_budget = (q.deadline_tick - now) * config_.deadline_iters_per_tick;
    }
    out = registry_.run(comm_, g_, q.kernel, q.root, q.target,
                        oracle_ ? &*oracle_ : nullptr, iter_budget);
    ++metrics_.analytics_jobs;
    ++metrics_.kernel_jobs[slot];
    metrics_.analytics_rounds += out.rounds;
    metrics_.analytics_items_sent += out.items_sent;
    metrics_.analytics_items_applied += out.items_applied;
    metrics_.analytics_seconds += out.seconds;
    if (out.oracle_short_circuit) ++metrics_.reachability_cutoffs;
    if (memoizable && !out.truncated) memo_[slot] = out;
  }

  a.value = out.value;
  a.digest = out.digest;
  a.lb = a.ub = a.distance;
  if (out.truncated) {
    a.outcome = Outcome::kDegraded;
    ++metrics_.degraded;
    ++metrics_.analytics_degraded;
  } else {
    ++metrics_.answered;
    ++metrics_.analytics_answered;
    metrics_.analytics_latency_ticks.add(a.latency_ticks());
    if (a.latency_ticks() > config_.analytics_slo_ticks) {
      ++metrics_.analytics_slo_violations;
    }
  }
  answers.push_back(a);
}

const graph::Weight* DistanceService::lookup_point(graph::VertexId root,
                                                   graph::VertexId target) {
  if (config_.point_cache_cap == 0) return nullptr;
  const auto it = point_cache_.find({root, target});
  if (it == point_cache_.end()) return nullptr;
  if (it->second.version != graph_version_) {
    // Fail closed: a value solved on another graph version must never
    // answer (scoped invalidation restamps survivors, so this only fires
    // when an entry slipped past it — drop and miss).
    point_order_.erase(std::find(point_order_.begin(), point_order_.end(),
                                 it->first));
    point_cache_.erase(it);
    return nullptr;
  }
  return &it->second.distance;
}

void DistanceService::insert_point(graph::VertexId root,
                                   graph::VertexId target,
                                   graph::Weight distance) {
  if (config_.point_cache_cap == 0) return;
  const std::pair<graph::VertexId, graph::VertexId> key{root, target};
  if (!point_cache_.emplace(key, PointEntry{distance, graph_version_})
           .second) {
    return;  // resident
  }
  ++metrics_.point_cache_inserts;
  point_order_.push_back(key);
  if (point_order_.size() > config_.point_cache_cap) {
    point_cache_.erase(point_order_.front());
    point_order_.pop_front();
    ++metrics_.point_cache_evictions;
  }
}

void DistanceService::note_graph_update(const dyn::CommitSummary& commit) {
  ++metrics_.graph_updates;
  metrics_.update_edges_applied += commit.edges_applied();
  const std::uint64_t new_version = commit.graph_version;

  if (commit.applied.empty()) {
    // Version-only bump (every staged op merged to a no-op): nothing in
    // the graph changed, so every artifact stays exact — restamp.
    for (const auto key : cache_.keys()) cache_.restamp(key, new_version);
    for (auto& [key, entry] : point_cache_) {
      (void)key;
      entry.version = new_version;
    }
    if (oracle_) (void)oracle_->refresh_slices({}, new_version);
    graph_version_ = new_version;
    return;
  }

  if (!oracle_) {
    // No landmark brackets to scope the blast radius with: flush.
    ++metrics_.wholesale_flushes;
    metrics_.roots_invalidated += cache_.stats().resident_entries;
    cache_.clear();
    metrics_.points_invalidated += point_cache_.size();
    point_cache_.clear();
    point_order_.clear();
    for (auto& slot : memo_) {
      if (slot) {
        ++metrics_.memo_invalidated;
        slot.reset();
      }
    }
    graph_version_ = new_version;
    return;
  }

  // ---- scoped invalidation -------------------------------------------
  // One collective row fetch on the OLD landmark slices covers every
  // vertex the verdicts need: the applied edges' endpoints, every cached
  // root, every point-cache root.  Cache residency and the commit are
  // agreed state, so the sorted-unique list is identical on every rank
  // and so is every verdict derived from the fetched rows.
  util::Timer oracle_timer;
  std::vector<graph::VertexId> verts;
  for (const auto& e : commit.applied) {
    verts.push_back(e.u);
    verts.push_back(e.v);
  }
  const auto cached_roots = cache_.keys();
  for (const auto r : cached_roots) {
    if (r != facility_key()) verts.push_back(r);
  }
  for (const auto& [key, entry] : point_cache_) {
    (void)entry;
    verts.push_back(key.first);
  }
  std::sort(verts.begin(), verts.end());
  verts.erase(std::unique(verts.begin(), verts.end()), verts.end());
  const auto rows = oracle_->landmark_distances(verts);
  const auto row_of = [&verts](graph::VertexId v) {
    return static_cast<std::size_t>(
        std::lower_bound(verts.begin(), verts.end(), v) - verts.begin());
  };

  // Classify each applied edge: a decrease (insert, or set below the old
  // weight) can only create shorter paths THROUGH the edge; a delete or
  // increase can only matter where the OLD edge was load-bearing.
  struct EdgeCase {
    std::size_t u_row = 0;
    std::size_t v_row = 0;
    graph::VertexId u = 0;
    graph::VertexId v = 0;
    bool decrease = false;
    graph::Weight dec_w = 0.0f;  ///< new weight
    bool increase = false;
    graph::Weight inc_w = 0.0f;  ///< old weight
  };
  std::vector<EdgeCase> cases;
  cases.reserve(commit.applied.size());
  for (const auto& e : commit.applied) {
    EdgeCase c;
    c.u = e.u;
    c.v = e.v;
    c.u_row = row_of(e.u);
    c.v_row = row_of(e.v);
    if (e.removed != 0) {
      c.increase = true;
      c.inc_w = e.old_weight;
    } else if (e.had_old == 0) {
      c.decrease = true;
      c.dec_w = e.new_weight;
    } else if (e.new_weight < e.old_weight) {
      c.decrease = true;
      c.dec_w = e.new_weight;
    } else if (e.new_weight > e.old_weight) {
      c.increase = true;
      c.inc_w = e.old_weight;
    }
    cases.push_back(c);
  }

  // Root retention bracket (see the header): r's entire distance vector
  // is provably unchanged iff every applied edge passes.  Slack margins
  // absorb float rounding; infinite or absent bounds fail the test, so
  // uncertainty always lands on the invalidate side.  An edge both of
  // whose endpoints are PROVEN outside r's component can never matter.
  const double slack = config_.oracle.prune_slack;
  const auto lo = [slack](graph::Weight lb) {
    return static_cast<double>(lb) * (1.0 - slack);
  };
  const auto hi = [slack](graph::Weight ub) {
    return static_cast<double>(ub) * (1.0 + slack);
  };
  const auto retains = [&](graph::VertexId r) {
    const auto& row_r = rows[row_of(r)];
    for (const auto& c : cases) {
      const auto bu = oracle_->bounds(row_r, rows[c.u_row], r, c.u);
      const auto bv = oracle_->bounds(row_r, rows[c.v_row], r, c.v);
      if (bu.unreachable && bv.unreachable) continue;
      const double wu = lo(bu.lb);
      const double wv = lo(bv.lb);
      if (c.decrease) {
        const double w = static_cast<double>(c.dec_w);
        if (!(wu + w >= hi(bv.ub) && wv + w >= hi(bu.ub))) return false;
      }
      if (c.increase) {
        // Strict: a tie edge may be load-bearing for attainability.
        const double w = static_cast<double>(c.inc_w);
        if (!(wu + w > hi(bv.ub) && wv + w > hi(bu.ub))) return false;
      }
    }
    return true;
  };
  std::map<graph::VertexId, bool> verdict;
  const auto root_ok = [&](graph::VertexId r) {
    const auto it = verdict.find(r);
    if (it != verdict.end()) return it->second;
    const bool ok = retains(r);
    verdict.emplace(r, ok);
    return ok;
  };

  // Cached root slices: retain + restamp, or drop.  The facility slice
  // is a multi-source wave the per-root bracket does not cover — always
  // dropped.
  for (const auto key : cached_roots) {
    if (key != facility_key() && root_ok(key)) {
      cache_.restamp(key, new_version);
      ++metrics_.roots_retained;
    } else {
      (void)cache_.erase(key);
      ++metrics_.roots_invalidated;
    }
  }

  // Point entries: d(r, t) is unchanged whenever r's whole vector is.
  for (auto it = point_cache_.begin(); it != point_cache_.end();) {
    if (root_ok(it->first.first)) {
      it->second.version = new_version;
      ++metrics_.points_retained;
      ++it;
    } else {
      point_order_.erase(std::find(point_order_.begin(), point_order_.end(),
                                   it->first));
      ++metrics_.points_invalidated;
      it = point_cache_.erase(it);
    }
  }

  // Whole-graph kernel memos never survive a mutation.
  for (auto& slot : memo_) {
    if (slot) {
      ++metrics_.memo_invalidated;
      slot.reset();
    }
  }

  // Landmark slices: the fetched rows ARE the oracle's own labels, so
  // the flag test is exact arithmetic, not a bracket.  A slice re-solves
  // only when the edge could lie on one of ITS shortest paths (infinite
  // arithmetic handles reachability changes: finite + w < inf flags the
  // slice that just gained a reachable region).
  std::vector<std::size_t> flagged;
  for (std::size_t k = 0; k < oracle_->landmarks().size(); ++k) {
    bool need = false;
    for (const auto& c : cases) {
      const graph::Weight du = rows[c.u_row][k];
      const graph::Weight dv = rows[c.v_row][k];
      if (!std::isfinite(du) && !std::isfinite(dv)) continue;
      if (c.decrease && (du + c.dec_w < dv || dv + c.dec_w < du)) {
        need = true;
        break;
      }
      if (c.increase && (du + c.inc_w <= dv || dv + c.inc_w <= du)) {
        need = true;
        break;
      }
    }
    if (need) flagged.push_back(k);
  }
  metrics_.oracle_seconds += oracle_timer.seconds();
  metrics_.slices_refreshed += oracle_->refresh_slices(flagged, new_version);

  graph_version_ = new_version;

  // Keep the persistence slot current: a restart must adopt artifacts of
  // THIS version or recompute, never resurrect pre-mutation state.
  if (fault_ != nullptr && fault_->oracle_store != nullptr) {
    oracle_->save(*fault_->oracle_store);
    persist_point_cache(*fault_->oracle_store);
  }
}

void DistanceService::persist_point_cache(OracleSliceStore& store) {
  auto& b = store.point_blob;
  b.clear();
  const auto put_u64 = [&b](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    b.insert(b.end(), p, p + sizeof(v));
  };
  put_u64(OracleSliceStore::kFormatVersion);
  put_u64(util::hash64(OracleSliceStore::kFormatVersion, g_.num_vertices,
                       graph_version_));
  put_u64(point_order_.size());
  for (const auto& key : point_order_) {
    put_u64(static_cast<std::uint64_t>(key.first));
    put_u64(static_cast<std::uint64_t>(key.second));
    std::uint64_t w_bits = 0;
    std::memcpy(&w_bits, &point_cache_.at(key).distance,
                sizeof(graph::Weight));
    put_u64(w_bits);
  }
  put_u64(util::hash_bytes(b.data(), b.size()));
  metrics_.point_persisted += point_order_.size();
}

bool DistanceService::try_adopt_points(const OracleSliceStore& store) {
  const auto& b = store.point_blob;
  if (b.empty()) return false;
  std::size_t off = 0;
  const auto get_u64 = [&b, &off](std::uint64_t& v) {
    if (off + sizeof(v) > b.size()) return false;
    std::memcpy(&v, b.data() + off, sizeof(v));
    off += sizeof(v);
    return true;
  };
  std::uint64_t version = 0;
  std::uint64_t digest = 0;
  std::uint64_t count = 0;
  if (!get_u64(version) || version != OracleSliceStore::kFormatVersion) {
    return false;
  }
  if (!get_u64(digest) ||
      digest != util::hash64(OracleSliceStore::kFormatVersion,
                             g_.num_vertices, config_.graph_version)) {
    return false;
  }
  if (!get_u64(count) || count > config_.point_cache_cap) return false;
  const std::size_t expected = (4 + 3 * count) * sizeof(std::uint64_t);
  if (b.size() != expected) return false;
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, b.data() + b.size() - sizeof(stored_sum),
              sizeof(stored_sum));
  if (util::hash_bytes(b.data(), b.size() - sizeof(stored_sum)) !=
      stored_sum) {
    return false;
  }
  point_cache_.clear();
  point_order_.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t r = 0;
    std::uint64_t t = 0;
    std::uint64_t w_bits = 0;
    (void)get_u64(r);
    (void)get_u64(t);
    (void)get_u64(w_bits);
    if (r >= g_.num_vertices || t >= g_.num_vertices) return false;
    graph::Weight w = 0.0f;
    std::memcpy(&w, &w_bits, sizeof(w));
    const std::pair<graph::VertexId, graph::VertexId> key{r, t};
    if (point_cache_.emplace(key, PointEntry{w, config_.graph_version})
            .second) {
      point_order_.push_back(key);
    }
  }
  return true;
}

std::vector<Answer> DistanceService::drain(std::uint64_t start_tick,
                                           std::uint64_t* end_tick) {
  std::vector<Answer> all;
  std::uint64_t now = start_tick;
  while (pending() > 0) {
    auto batch = tick(now++, /*flush=*/true);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  if (end_tick != nullptr) *end_tick = now;
  return all;
}

const ServiceMetrics& DistanceService::metrics() {
  metrics_.cache = cache_.stats();
  if (oracle_) {
    metrics_.oracle_landmarks = oracle_->landmarks().size();
    metrics_.oracle_precompute_waves = oracle_->precompute_waves();
    metrics_.oracle_precompute_seconds = oracle_->precompute_seconds();
  }
  return metrics_;
}

void DistanceService::reset_metrics() {
  metrics_ = ServiceMetrics{};
  shed_log_.clear();
  cache_.reset_counters();
  arrived_since_tick_ = 0;
  last_now_.reset();
}

}  // namespace g500::serve
