#include "serve/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/remote.hpp"
#include "util/timer.hpp"

namespace g500::serve {

DistanceService::DistanceService(simmpi::Comm& comm,
                                 const graph::DistGraph& g, ServeConfig config)
    : comm_(comm),
      g_(g),
      config_(std::move(config)),
      // Charge every entry the widest owned slice so residency decisions
      // are rank-independent (see cache.hpp).
      cache_(config_.cache_budget_bytes,
             g.part.count(0) * sizeof(graph::Weight)) {
  if (config_.queue_depth == 0) {
    throw std::invalid_argument("DistanceService: queue_depth must be >= 1");
  }
  if (config_.batch_size == 0) {
    throw std::invalid_argument("DistanceService: batch_size must be >= 1");
  }
  for (const auto f : config_.facilities) {
    if (f >= g_.num_vertices) {
      throw std::out_of_range("DistanceService: facility out of range");
    }
  }
}

bool DistanceService::submit(const Query& q) {
  ++metrics_.arrived;
  if (q.kind == QueryKind::kNearestFacility && config_.facilities.empty()) {
    throw std::invalid_argument(
        "DistanceService: nearest query without a facility set");
  }
  if (q.target >= g_.num_vertices ||
      (q.kind == QueryKind::kPointToPoint && q.root >= g_.num_vertices)) {
    throw std::out_of_range("DistanceService: query vertex out of range");
  }
  if (queue_.size() >= config_.queue_depth) {
    if (config_.shed_policy == ShedPolicy::kRejectNew) {
      ++metrics_.shed;
      shed_log_.push_back(q);
      return false;
    }
    // kDropOldest: the longest waiter is shed to make room.
    ++metrics_.shed;
    shed_log_.push_back(queue_.front());
    queue_.pop_front();
  }
  ++metrics_.admitted;
  queue_.push_back(q);
  return true;
}

RootCache::Slice DistanceService::resolve(graph::VertexId key,
                                          bool* from_cache) {
  if (auto slice = cache_.lookup(key)) {
    *from_cache = true;
    return slice;
  }
  *from_cache = false;
  util::Timer timer;
  core::SsspResult result;
  if (key == facility_key()) {
    result = core::delta_stepping_multi(comm_, g_, config_.facilities,
                                        config_.sssp);
  } else {
    result = core::delta_stepping(comm_, g_, key, config_.sssp);
  }
  metrics_.wave_seconds += timer.seconds();
  ++metrics_.waves;
  auto slice = std::make_shared<const std::vector<graph::Weight>>(
      std::move(result.dist));
  // Shared ownership keeps the slice alive for this batch's extraction
  // even if a later insert evicts the entry again.
  cache_.insert(key, slice);
  return slice;
}

std::vector<Answer> DistanceService::tick(std::uint64_t now, bool flush) {
  ++metrics_.ticks;
  metrics_.queue_depth.add(queue_.size());
  if (queue_.empty()) return {};

  const bool deadline =
      now >= queue_.front().arrival_tick + config_.max_wait_ticks;
  const bool full = queue_.size() >= config_.batch_size;
  if (!flush && !deadline && !full) return {};

  // ---- form the batch (FIFO prefix) ----------------------------------
  const std::size_t take = std::min(queue_.size(), config_.batch_size);
  std::vector<Query> batch(queue_.begin(),
                           queue_.begin() + static_cast<std::ptrdiff_t>(take));
  queue_.erase(queue_.begin(), queue_.begin() +
                                   static_cast<std::ptrdiff_t>(take));
  ++metrics_.batches;
  metrics_.batch_occupancy.add(batch.size());

  // ---- dedupe roots and resolve each group's distance slice ----------
  // First-appearance order keeps the collective sequence identical on
  // every rank.
  std::vector<graph::VertexId> keys;
  std::vector<RootCache::Slice> slices;
  std::vector<bool> cached;
  std::vector<std::uint32_t> slot_of(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const graph::VertexId key = batch[i].kind == QueryKind::kNearestFacility
                                    ? facility_key()
                                    : batch[i].root;
    const auto it = std::find(keys.begin(), keys.end(), key);
    if (it == keys.end()) {
      bool from_cache = false;
      auto slice = resolve(key, &from_cache);
      slot_of[i] = static_cast<std::uint32_t>(keys.size());
      keys.push_back(key);
      slices.push_back(std::move(slice));
      cached.push_back(from_cache);
    } else {
      slot_of[i] = static_cast<std::uint32_t>(it - keys.begin());
    }
  }

  // ---- one batched exchange answers every query ----------------------
  std::vector<core::SlotQuery> fetches;
  fetches.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    fetches.push_back(core::SlotQuery{slot_of[i], batch[i].target});
  }
  std::vector<const std::vector<graph::Weight>*> slots;
  slots.reserve(slices.size());
  for (const auto& s : slices) slots.push_back(s.get());
  util::Timer fetch_timer;
  const auto distances =
      core::fetch_values_batched(comm_, g_.part, fetches, slots);
  metrics_.fetch_seconds += fetch_timer.seconds();
  ++metrics_.fetch_rounds;

  // ---- complete ------------------------------------------------------
  std::vector<Answer> answers;
  answers.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Answer a;
    a.id = batch[i].id;
    a.kind = batch[i].kind;
    a.root = batch[i].root;
    a.target = batch[i].target;
    a.distance = distances[i];
    a.from_cache = cached[slot_of[i]];
    a.arrival_tick = batch[i].arrival_tick;
    a.completion_tick = now;
    ++metrics_.answered;
    metrics_.latency_ticks.add(a.latency_ticks());
    if (a.latency_ticks() > config_.slo_ticks) ++metrics_.slo_violations;
    answers.push_back(a);
  }
  return answers;
}

std::vector<Answer> DistanceService::drain(std::uint64_t start_tick,
                                           std::uint64_t* end_tick) {
  std::vector<Answer> all;
  std::uint64_t now = start_tick;
  while (!queue_.empty()) {
    auto batch = tick(now++, /*flush=*/true);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  if (end_tick != nullptr) *end_tick = now;
  return all;
}

const ServiceMetrics& DistanceService::metrics() {
  metrics_.cache = cache_.stats();
  return metrics_;
}

void DistanceService::reset_metrics() {
  metrics_ = ServiceMetrics{};
  shed_log_.clear();
  cache_.reset_counters();
}

}  // namespace g500::serve
