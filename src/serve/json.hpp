// JSON serialization of the serving layer's config, counters and run
// reports (docs/telemetry.md and docs/serving.md are the schema
// references).  Versioning follows the repo convention: bump on breaking
// changes only; added keys are non-breaking.
#pragma once

#include "serve/cache.hpp"
#include "serve/driver.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "util/json.hpp"

namespace g500::serve {

constexpr int kServingSchemaVersion = 1;

/// The full knob set (one field per ServeConfig member; facilities as an
/// array, the engine knobs nested under "sssp").
[[nodiscard]] util::Json to_json(const ServeConfig& config);

/// Workload model: seed, horizon, arrival/popularity parameters, universe
/// size (not the universe itself — it can be large).
[[nodiscard]] util::Json to_json(const WorkloadConfig& config);

/// Cache counters: hits/misses/inserts/evictions/rejected, hit_rate,
/// residency and capacity.
[[nodiscard]] util::Json to_json(const CacheStats& stats);

/// Service counters plus the interpolated p50/p90/p99 of each histogram.
[[nodiscard]] util::Json to_json(const ServiceMetrics& metrics);

/// Availability block: per-outcome counts, the availability ratio and the
/// retry/breaker audit trail.
[[nodiscard]] util::Json to_json(const AvailabilityStats& stats);

/// One workload run: metrics, availability, ticks, wall seconds,
/// throughput_qps.
[[nodiscard]] util::Json to_json(const ServingRunReport& report);

}  // namespace g500::serve
