// Landmark (ALT) distance oracle for the serving layer.
//
// A point-to-point query does not need a whole SSSP wave: with K landmark
// vertices and their precomputed distance vectors, the triangle inequality
// brackets any d(s, t) from 2K lookups —
//
//   lb(s, t) = max_k |d(L_k, s) - d(L_k, t)|     (admissible lower bound)
//   ub(s, t) = min_k  d(L_k, s) + d(L_k, t)      (witness upper bound)
//
// — and the lower bound doubles as a goal-direction heuristic: a wave from
// s may drop any relaxation whose tentative distance plus lb(v, t) exceeds
// the best known ub(s, t), because no path through v can still improve the
// target (the pruning hook in core::delta_stepping).  Bounds alone settle
// three query classes outright: s == t, s a landmark (the precomputed wave
// *is* the fresh wave from s, so the value is bit-identical), and pairs a
// landmark proves to be in different components (one endpoint reachable
// from L_k, the other not).
//
// Landmark selection is degree-weighted farthest-point refinement: the
// seed is the global top-degree vertex (hub traffic makes it a good cover
// of the core), then each further landmark is the vertex farthest from the
// current set under one delta_stepping_multi wave, ties broken by higher
// degree then lower id.  Every choice reduces over global data, so all
// ranks agree without extra coordination.
//
// SPMD contract: the constructor and landmark_distances() are collective —
// every rank must call them in lockstep with identical arguments.  Bound
// math and lb slices are pure rank-local arithmetic on the fetched rows.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/delta_stepping.hpp"
#include "core/sssp_types.hpp"
#include "graph/builder.hpp"
#include "serve/fault.hpp"
#include "simmpi/comm.hpp"

namespace g500::serve {

struct OracleConfig {
  /// Landmark count K.  0 disables the oracle at the service level; the
  /// constructor itself requires K >= 1.  Clamped to the vertex count.
  std::size_t num_landmarks = 0;

  /// Relative safety margin for the goal-directed pruning test: lower
  /// bounds are scaled by (1 - slack) and the budget by (1 + slack), so
  /// float rounding accumulated along long paths can never prune a
  /// relaxation the unpruned wave would have kept.  1/256 dwarfs the
  /// worst-case accumulation at any materializable diameter while costing
  /// a negligible slice of pruning power.
  double prune_slack = 1.0 / 256.0;

  /// Graph version the slices are solved on.  Part of the persistence
  /// identity digest, so slices persisted before a streaming mutation can
  /// never be adopted after one.
  std::uint64_t graph_version = 0;
};

class LandmarkOracle {
 public:
  /// Triangle-inequality verdict on one (s, t) pair.  When `exact` is set
  /// the answer is `ub` verbatim and it is bit-identical to what a fresh
  /// unpruned wave from s would report at t (0 for s == t, the landmark
  /// slice value for s in the landmark set, infinity when `unreachable`).
  struct Bounds {
    graph::Weight lb = 0.0f;
    graph::Weight ub = graph::kInfDistance;
    bool exact = false;
    bool unreachable = false;
  };

  /// Collective: selects the landmarks and runs one wave per landmark to
  /// precompute this rank's owned distance slices.  `sssp` supplies the
  /// engine knobs for those waves (any pruning fields are ignored).
  ///
  /// When `store` is non-null it is this rank's persistence slot: a valid
  /// blob whose digest gate passes (format version, graph shape, landmark
  /// config and wave-relevant engine knobs all match, checksum intact —
  /// agreed across ranks, so no rank recomputes while another adopts) is
  /// adopted with ZERO precompute waves; otherwise the slices are
  /// recomputed and saved back into the slot.
  LandmarkOracle(simmpi::Comm& comm, const graph::DistGraph& g,
                 const OracleConfig& config, const core::SsspConfig& sssp,
                 OracleSliceStore* store = nullptr);

  /// Landmark-distance rows for `vertices`: out[i][k] = d(L_k,
  /// vertices[i]).  One batched collective fetch for the whole list;
  /// every rank must pass the identical list (duplicates fine).
  [[nodiscard]] std::vector<std::vector<graph::Weight>> landmark_distances(
      const std::vector<graph::VertexId>& vertices);

  /// Bounds for (s, t) from rows previously fetched for both endpoints.
  /// Pure local arithmetic.
  [[nodiscard]] Bounds bounds(const std::vector<graph::Weight>& at_s,
                              const std::vector<graph::Weight>& at_t,
                              graph::VertexId s, graph::VertexId t) const;

  /// This rank's owned lower-bound slice toward a target with landmark
  /// row `at_t`: entry local(v) = max_k |d(L_k, v) - at_t[k]|, scaled by
  /// (1 - prune_slack); infinite when some landmark proves v and the
  /// target live in different components.  Feed to
  /// core::SsspConfig::prune_lb.
  [[nodiscard]] std::vector<graph::Weight> lb_slice(
      const std::vector<graph::Weight>& at_t) const;

  /// Loosen `slice` so it stays admissible for an additional target
  /// (elementwise min with that target's bound) — lets one pruned wave
  /// serve every target of a batched root group.
  void min_into_lb_slice(std::vector<graph::Weight>& slice,
                         const std::vector<graph::Weight>& at_t) const;

  /// Pruning budget for an upper bound: ub * (1 + prune_slack).
  [[nodiscard]] graph::Weight budget(graph::Weight ub) const;

  [[nodiscard]] const std::vector<graph::VertexId>& landmarks()
      const noexcept {
    return landmarks_;
  }

  /// Waves spent selecting landmarks and precomputing slices (0 when the
  /// slices were adopted from a persisted store).
  [[nodiscard]] std::uint64_t precompute_waves() const noexcept {
    return precompute_waves_;
  }
  [[nodiscard]] double precompute_seconds() const noexcept {
    return precompute_seconds_;
  }

  /// True when this oracle skipped precompute by adopting a store blob.
  [[nodiscard]] bool restored_from_store() const noexcept {
    return restored_;
  }

  /// Serialize landmarks and this rank's slices into `store` (versioned
  /// blob, identity digest, trailing checksum).  Called automatically by
  /// the constructor when it was given a slot; exposed for tests.
  void save(OracleSliceStore& store) const;

  /// Graph version the slices are currently solved on.
  [[nodiscard]] std::uint64_t graph_version() const noexcept {
    return config_.graph_version;
  }

  /// Collective: re-solve the slices whose index appears in `flagged`
  /// (one multi-source wave each, sorted-unique order) against the
  /// mutated graph the oracle's DistGraph reference now views, and stamp
  /// the oracle to `new_version`.  Unflagged slices are kept verbatim —
  /// the caller certifies their rows were unaffected by the mutation.
  /// Returns the number of waves run.  Every rank must pass identical
  /// arguments.
  std::uint64_t refresh_slices(const std::vector<std::size_t>& flagged,
                               std::uint64_t new_version);

 private:
  /// Digest pinning what a stored blob must have been computed from:
  /// format version, graph shape, landmark request and the engine knobs
  /// that affect slice bits.
  [[nodiscard]] std::uint64_t identity_digest() const;

  /// Rank-local half of the adopt gate: parse + verify `store` and load
  /// landmarks_/slices_ on success.
  [[nodiscard]] bool try_adopt(const OracleSliceStore& store);

  simmpi::Comm& comm_;
  const graph::DistGraph& g_;
  OracleConfig config_;
  core::SsspConfig sssp_;  ///< wave knobs with pruning fields cleared

  std::vector<graph::VertexId> landmarks_;
  /// Per landmark, this rank's owned distance slice (indexed by local id).
  std::vector<std::vector<graph::Weight>> slices_;

  std::uint64_t precompute_waves_ = 0;
  double precompute_seconds_ = 0.0;
  bool restored_ = false;
};

}  // namespace g500::serve
