// Online analytics service on top of the distributed graph kernels.
//
// The service turns the offline kernels into a request-serving loop
// with the shape of an inference-serving stack:
//
//   * admission queue — bounded depth; over-capacity arrivals are shed
//     (reject-new) or displace the oldest waiter (drop-oldest);
//   * micro-batch scheduler — pending queries are coalesced per simulated
//     tick and dispatched together once the batch fills or the oldest
//     waiter hits the dispatch deadline; the batch's roots are deduped so
//     one delta-stepping wave serves every query on that root, and all
//     answers of a batch are extracted through a single batched
//     value-fetch exchange (core::fetch_values_batched);
//   * adaptive batching — optionally (ServeConfig::adaptive) the
//     batch-size and deadline knobs track the observed arrival rate
//     instead of staying fixed (adaptive.hpp);
//   * landmark oracle — optionally (ServeConfig::oracle) point-to-point
//     batches consult an ALT distance oracle first: triangle-inequality
//     bounds answer s == t, landmark roots and proven-unreachable pairs
//     outright, and every remaining cache-miss root dispatches a
//     goal-directed *pruned* wave bounded by the oracle's lb/ub instead
//     of a full one (oracle.hpp).  Pruned slices are exact at their
//     targets but stale elsewhere, so they never enter the cache;
//   * root-result cache — LRU over per-rank distance slices (cache.hpp),
//     so popular roots skip the wave entirely;
//   * exact point cache — a tiny FIFO of (root, target) -> distance
//     entries proven exact by earlier pruned waves; it sits IN FRONT of
//     the slice cache, so a repeated point query costs a map lookup
//     instead of a wave (pruned slices themselves are never cacheable);
//   * analytics class — kAnalytics queries queue separately (bounded by
//     analytics_queue_depth) and run through the kernel registry
//     (kernels.hpp: PageRank, k-core, components, reachability).  The
//     scheduler keeps cheap distance batches flowing: every tick serves
//     the distance batch first, then at most ONE analytics job, and only
//     when the job has aged past analytics_defer_ticks, the distance
//     queue is idle, or the tick is a flush.  Whole-graph results are
//     memoized (the graph is immutable), and a job's deadline budget maps
//     onto a PageRank iteration cap through deadline_iters_per_tick the
//     same way distance deadlines map onto bucket budgets;
//   * SLO telemetry — PER-CLASS latency (in ticks) histograms with
//     interpolated p50/p90/p99 and per-class SLO targets, queue depth,
//     batch occupancy, shed and cache counters.
//
// SPMD contract: construct one DistanceService per rank inside
// World::run, feed every rank the identical submission sequence (the
// deterministic serve::Workload guarantees this), and call tick() on all
// ranks in lockstep — waves and fetches are collectives, and with the
// oracle enabled so is the constructor (landmark precompute).  Nearest-
// facility queries are answered from one delta_stepping_multi wave over
// the configured facility set, cached under a reserved key.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include <array>
#include <map>

#include "core/delta_stepping.hpp"
#include "dyn/mutable_graph.hpp"
#include "graph/builder.hpp"
#include "serve/adaptive.hpp"
#include "serve/cache.hpp"
#include "serve/fault.hpp"
#include "serve/kernels.hpp"
#include "serve/oracle.hpp"
#include "serve/workload.hpp"
#include "simmpi/comm.hpp"
#include "util/histogram.hpp"

namespace g500::serve {

enum class ShedPolicy : std::uint8_t {
  kRejectNew,   ///< a full queue bounces the arriving query
  kDropOldest,  ///< a full queue sheds the longest waiter to admit the new one
};

struct ServeConfig {
  std::size_t queue_depth = 64;    ///< admission bound (>=1)
  std::size_t batch_size = 8;      ///< max queries dispatched per tick
  std::uint64_t max_wait_ticks = 4;  ///< dispatch once the oldest waits this long
  ShedPolicy shed_policy = ShedPolicy::kRejectNew;
  std::uint64_t slo_ticks = 32;    ///< latency objective (violations counted)
  std::size_t cache_budget_bytes = std::size_t{1} << 20;  ///< per rank
  std::vector<graph::VertexId> facilities;  ///< nearest-query source set
  core::SsspConfig sssp;           ///< engine knobs for dispatched waves
                                   ///< (pruning/deadline/checkpoint fields
                                   ///< are service-managed)
  OracleConfig oracle;             ///< num_landmarks > 0 enables the oracle
  AdaptiveConfig adaptive;         ///< enabled = true activates the controller
  /// Bound on shed_log() entries; once full, further shed queries are
  /// still counted and rejected but their records are dropped
  /// (ServiceMetrics::shed_log_overflow counts the drops).  Must be >= 1.
  std::size_t shed_log_cap = 4096;
  FaultToleranceConfig fault;      ///< retry/degradation/breaker knobs

  // ---- analytics class -------------------------------------------------
  AnalyticsConfig analytics;       ///< kernel-registry knobs
  /// Admission bound of the analytics queue (>= 1); the distance class
  /// keeps queue_depth to itself so analytics jobs can never crowd out
  /// distance reads at admission.
  std::size_t analytics_queue_depth = 16;
  /// Per-class latency objective for analytics jobs (violations counted
  /// separately from the distance-class slo_ticks).
  std::uint64_t analytics_slo_ticks = 256;
  /// Scheduler aging bound: an analytics job may be deferred behind
  /// distance traffic for at most this many ticks before it runs anyway.
  std::uint64_t analytics_defer_ticks = 8;
  /// Deadline budget for analytics jobs: remaining ticks x this = the
  /// PageRank iteration cap (0 disables; the analogue of
  /// fault.deadline_buckets_per_tick for distance waves).
  std::uint64_t deadline_iters_per_tick = 0;
  /// Entry bound of the exact point cache (FIFO; 0 disables it).
  std::size_t point_cache_cap = 1024;

  /// Graph version the service starts on (dyn::MutableGraph::version of
  /// the view it was constructed over; 0 for a static graph).  Every
  /// cached artifact is stamped with the version it was solved on and
  /// fails closed on mismatch; note_graph_update() advances the live
  /// version after a commit.
  std::uint64_t graph_version = 0;
};

/// How a query's lifecycle ended.
enum class Outcome : std::uint8_t {
  kServed,            ///< exact answer (cache, oracle-exact or wave)
  kDegraded,          ///< approximate answer from the oracle's lb/ub interval
  kDeadlineExceeded,  ///< deadline expired in queue, or the wave was truncated
  kFailed,            ///< no answer (retries/breaker exhausted, no fallback)
};

/// One completed query.
struct Answer {
  std::uint64_t id = 0;
  QueryKind kind = QueryKind::kPointToPoint;
  graph::VertexId root = 0;
  graph::VertexId target = 0;
  graph::Weight distance = 0.0f;
  bool from_cache = false;
  bool from_oracle = false;  ///< settled by landmark bounds, no wave or fetch
  bool pruned_wave = false;  ///< answered by a goal-directed pruned wave
  Outcome outcome = Outcome::kServed;
  /// Certified interval around the true distance.  kServed: lb == ub ==
  /// distance.  kDegraded: the oracle's triangle-inequality bracket
  /// (distance == ub).  kDeadlineExceeded via wave truncation: lb is the
  /// settled bound, ub the tentative value.  kFailed / queue-expired: the
  /// vacuous [0, inf).
  graph::Weight lb = 0.0f;
  graph::Weight ub = graph::kInfDistance;
  std::uint64_t arrival_tick = 0;
  std::uint64_t completion_tick = 0;
  /// Served from the exact point cache (no oracle pass, wave or fetch).
  bool from_point_cache = false;
  /// Analytics fields (valid when kind == kAnalytics): which kernel ran,
  /// its headline scalar (see AnalyticsOutcome::value) and its validation
  /// digest.  kDegraded here means a deadline-capped (truncated) kernel.
  AnalyticsKernel kernel = AnalyticsKernel::kPageRank;
  double value = 0.0;
  std::uint64_t digest = 0;
  /// Graph version the answer was computed against (the service's live
  /// version at completion time).
  std::uint64_t graph_version = 0;
  /// Saturating: a flush can complete a query on an earlier tick than its
  /// recorded arrival only if the caller's clocks disagree; report 0
  /// rather than wrapping to ~2^64.
  [[nodiscard]] std::uint64_t latency_ticks() const noexcept {
    return completion_tick >= arrival_tick ? completion_tick - arrival_tick
                                           : 0;
  }
};

/// Service counters.  Everything except the *_seconds fields and the
/// wave work counters (wave_relax_* / wave_pruned_*, which count this
/// rank's share of engine work — allreduce_sum for global totals) is a
/// pure function of the submission sequence and thus identical across
/// ranks.
struct ServiceMetrics {
  std::uint64_t arrived = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t answered = 0;
  std::uint64_t slo_violations = 0;

  std::uint64_t batches = 0;
  std::uint64_t waves = 0;         ///< delta-stepping waves dispatched
  std::uint64_t pruned_waves = 0;  ///< subset of `waves` that ran pruned
  std::uint64_t fetch_rounds = 0;  ///< batched answer-extraction exchanges
  std::uint64_t ticks = 0;         ///< tick() calls observed

  std::uint64_t oracle_exact = 0;        ///< answered outright by bounds
  std::uint64_t oracle_unreachable = 0;  ///< subset proven unreachable
  std::uint64_t adaptive_adjustments = 0;  ///< controller knob changes

  // Fault-tolerance outcomes and machinery (zero unless enabled).
  std::uint64_t deadline_exceeded = 0;  ///< expired in queue or truncated wave
  std::uint64_t degraded = 0;           ///< answered from oracle lb/ub
  std::uint64_t failed_queries = 0;     ///< completed with no usable answer
  std::uint64_t shed_log_overflow = 0;  ///< shed records dropped at the cap
  std::uint64_t deadline_truncated_waves = 0;  ///< waves stopped at budget
  std::uint64_t wave_resumes = 0;       ///< waves resumed from a checkpoint
  std::uint64_t breaker_half_opened = 0;  ///< open -> half-open transitions
  std::uint64_t breaker_closed = 0;       ///< half-open -> closed transitions

  // ---- analytics class (zero unless kAnalytics queries arrive) --------
  // The global counters above cover BOTH classes (arrived/admitted/shed/
  // answered/deadline_exceeded/degraded/failed_queries include analytics
  // jobs); the analytics_* fields carve out the analytics share, so the
  // distance class is always the difference.
  std::uint64_t analytics_arrived = 0;
  std::uint64_t analytics_admitted = 0;
  std::uint64_t analytics_shed = 0;
  std::uint64_t analytics_answered = 0;
  std::uint64_t analytics_slo_violations = 0;  ///< vs analytics_slo_ticks
  std::uint64_t analytics_deadline_exceeded = 0;
  std::uint64_t analytics_degraded = 0;  ///< truncated (iteration-capped) kernels
  std::uint64_t analytics_failed = 0;    ///< refused by an open breaker
  std::uint64_t analytics_jobs = 0;      ///< kernel executions (memo misses)
  std::uint64_t analytics_memo_hits = 0; ///< whole-graph results reused
  std::uint64_t analytics_deferred_ticks = 0;  ///< job waited behind distance load
  std::uint64_t reachability_cutoffs = 0;  ///< oracle settled a pair, no BFS
  std::array<std::uint64_t, kNumAnalyticsKernels> kernel_jobs{};
  /// Kernel-cost breakdown summed over executed jobs (rounds identical on
  /// every rank; items_* are this rank's share — see AnalyticsOutcome).
  std::uint64_t analytics_rounds = 0;
  std::uint64_t analytics_items_sent = 0;
  std::uint64_t analytics_items_applied = 0;
  double analytics_seconds = 0.0;

  // ---- exact point cache ----------------------------------------------
  std::uint64_t point_cache_hits = 0;
  std::uint64_t point_cache_misses = 0;  ///< p2p lookups that found nothing
  std::uint64_t point_cache_inserts = 0;
  std::uint64_t point_cache_evictions = 0;
  std::uint64_t point_persisted = 0;  ///< entries written to the slice store
  std::uint64_t point_restored = 0;   ///< entries adopted from the store

  // ---- streaming mutations (zero unless note_graph_update runs) -------
  std::uint64_t graph_updates = 0;         ///< commits observed
  std::uint64_t update_edges_applied = 0;  ///< undirected effective changes
  /// Scoped-invalidation verdicts: cached root slices / point entries
  /// either proven untouched by the oracle brackets (retained, restamped
  /// to the new version) or dropped.
  std::uint64_t roots_invalidated = 0;
  std::uint64_t roots_retained = 0;
  std::uint64_t points_invalidated = 0;
  std::uint64_t points_retained = 0;
  std::uint64_t memo_invalidated = 0;   ///< whole-graph memo slots dropped
  std::uint64_t slices_refreshed = 0;   ///< landmark slices re-solved
  std::uint64_t wholesale_flushes = 0;  ///< updates with no oracle to scope by

  util::Log2Histogram latency_ticks;     ///< per answered DISTANCE query
  util::Log2Histogram analytics_latency_ticks;  ///< per answered analytics job
  util::Log2Histogram batch_occupancy;   ///< queries per dispatched batch
  util::Log2Histogram queue_depth;       ///< distance queue, sampled at every tick()

  double wave_seconds = 0.0;    ///< rank-local time inside waves
  double fetch_seconds = 0.0;   ///< rank-local time inside answer fetches
  double oracle_seconds = 0.0;  ///< rank-local time in bound math / rows

  /// This rank's engine work summed over every dispatched wave; the
  /// pruned counters are what goal-direction saved.
  std::uint64_t wave_relax_generated = 0;
  std::uint64_t wave_relax_sent = 0;
  std::uint64_t wave_pruned_expand = 0;
  std::uint64_t wave_pruned_apply = 0;

  /// Oracle precompute summary (refreshed from the oracle on read;
  /// survives reset_metrics).
  std::uint64_t oracle_landmarks = 0;
  std::uint64_t oracle_precompute_waves = 0;
  double oracle_precompute_seconds = 0.0;

  CacheStats cache;  ///< copied from the root cache on read

  /// Accumulate another window's counters (the resilient driver merges
  /// per-attempt harvests across World restarts).  Counters sum,
  /// histograms merge; residency/capacity and the oracle precompute
  /// block take `other`'s (latest) values.
  void merge(const ServiceMetrics& other);
};

class DistanceService {
 public:
  /// `g` is this rank's graph piece; facilities (if any) are validated
  /// against the vertex range here.  When config.oracle.num_landmarks > 0
  /// the constructor is collective: it runs the landmark selection and
  /// precompute waves on every rank (or adopts persisted slices from
  /// fault->oracle_store and runs none).  `fault` is the resilient
  /// driver's per-attempt context (see fault.hpp); it must outlive the
  /// service.  nullptr = no fault machinery beyond config.fault's
  /// deadline handling.
  DistanceService(simmpi::Comm& comm, const graph::DistGraph& g,
                  ServeConfig config, FaultContext* fault = nullptr);

  /// Offer `q` to the admission queue (local bookkeeping, no collectives
  /// — but every rank must observe the same submission sequence).
  /// Returns false when the query was shed; with kDropOldest the
  /// displaced victim lands in shed_log() instead and this returns true.
  /// An invalid query throws without touching any counter.
  bool submit(const Query& q);

  /// Re-admit queries that were already counted as arrived/admitted by a
  /// previous attempt of a resilient run: they enter the queue in order
  /// without touching the arrival counters.  Queue-depth bounds do not
  /// apply (they were already enforced at original admission).
  void restore_backlog(const std::vector<Query>& backlog);

  /// Advance the simulated clock to `now`: samples the queue depth and
  /// dispatches at most one micro-batch if the batch-size or deadline
  /// trigger fires (`flush` forces dispatch of any pending queries, used
  /// for draining).  Collective when a batch dispatches; every rank must
  /// call tick() in lockstep with identical arguments.  `now` must never
  /// move backwards across the service's lifetime (throws
  /// std::invalid_argument; reset_metrics restarts the watermark).
  /// Returns the answers completed this tick, in batch order.
  std::vector<Answer> tick(std::uint64_t now, bool flush = false);

  /// Run tick(now, flush=true) from `start_tick` until the queue is
  /// empty, collecting every answer.  Returns the first idle tick in
  /// `*end_tick` when non-null.
  std::vector<Answer> drain(std::uint64_t start_tick,
                            std::uint64_t* end_tick = nullptr);

  /// Queued queries across both classes (drain() loops until this is 0).
  [[nodiscard]] std::size_t pending() const noexcept {
    return queue_.size() + analytics_queue_.size();
  }

  /// Queries shed so far (either bounced arrivals or drop-oldest
  /// victims), in shed order; the caller may re-submit them later.
  [[nodiscard]] const std::vector<Query>& shed_log() const noexcept {
    return shed_log_;
  }

  /// Counters with the cache and oracle blocks refreshed.
  [[nodiscard]] const ServiceMetrics& metrics();

  /// Zero the counters and the shed log but keep the cache contents —
  /// the warm-up / measured-phase split every serving benchmark needs.
  /// Also restarts the monotonic-clock watermark so the next measured
  /// phase may begin again at tick 0.
  void reset_metrics();

  [[nodiscard]] const ServeConfig& config() const noexcept { return config_; }

  /// The landmark oracle, or nullptr when disabled.
  [[nodiscard]] const LandmarkOracle* oracle() const noexcept {
    return oracle_ ? &*oracle_ : nullptr;
  }

  /// Dispatch knobs in effect for the next tick (fixed config values, or
  /// the controller's when adaptive batching is enabled).
  [[nodiscard]] std::size_t current_batch_size() const noexcept {
    return controller_ ? controller_->batch_size() : config_.batch_size;
  }
  [[nodiscard]] std::uint64_t current_max_wait_ticks() const noexcept {
    return controller_ ? controller_->max_wait_ticks()
                       : config_.max_wait_ticks;
  }

  /// Circuit-breaker state (deterministic across ranks; rank 0 harvests
  /// it into the driver's ledger every tick).
  [[nodiscard]] const BreakerStatus& breaker() const noexcept {
    return breaker_;
  }

  /// Graph version the service is currently answering against.
  [[nodiscard]] std::uint64_t graph_version() const noexcept {
    return graph_version_;
  }

  /// Collective: absorb one committed mutation batch.  Call it on every
  /// rank, in lockstep, with the identical CommitSummary, after the
  /// DistGraph the service was constructed over has been rebuilt (i.e.
  /// right after dyn::MutableGraph::commit_batch on the same view).
  ///
  /// With the oracle enabled the invalidation is SCOPED: one collective
  /// row fetch on the OLD landmark slices brackets every applied edge
  /// against every cached root, retaining (and restamping) exactly the
  /// entries whose distances provably cannot have changed —
  ///
  ///   decrease to weight w keeps root r iff for both endpoint orders
  ///     lb(r,u)*(1-slack) + w >= ub(r,v)*(1+slack)
  ///   (no path through the new edge can undercut any old label), and
  ///   delete / increase from old weight w keeps r iff the same holds
  ///   STRICTLY (a tie edge may be load-bearing for attainability) —
  ///
  /// while landmark slices re-solve only when their own (exact) rows show
  /// the edge could lie on one of their shortest paths.  Infinite or
  /// absent bounds fail the test, i.e. fail closed.  Without an oracle
  /// every cached artifact is flushed wholesale.  The analytics memo is
  /// always cleared (kernel digests are whole-graph).
  void note_graph_update(const dyn::CommitSummary& commit);

  /// Serialize the exact point cache into `store.point_blob` (digest
  /// pins format version, graph shape and graph version; trailing
  /// checksum).  The constructor adopts it back behind the same gate,
  /// agreed across ranks.  Counterpart of LandmarkOracle::save.
  void persist_point_cache(OracleSliceStore& store);

 private:
  /// Reserved cache key for the facility wave (delta_stepping_multi over
  /// config_.facilities).  No real root can collide: vertex ids are
  /// < num_vertices.
  [[nodiscard]] graph::VertexId facility_key() const noexcept {
    return graph::kNoVertex;
  }

  /// Run one wave for `key` under `cfg` (collective): the facility
  /// multi-source wave for the reserved key, otherwise a (possibly
  /// checkpointed, possibly resumed) single-source wave.  Handles ledger
  /// bookkeeping and wave metrics.  The complete slice is cached when
  /// `cacheable`; a deadline-truncated one never is, and
  /// `*settled_bound` reports the exactness boundary (infinity when the
  /// wave ran to completion).
  [[nodiscard]] RootCache::Slice dispatch_wave(graph::VertexId key,
                                               const core::SsspConfig& cfg,
                                               bool cacheable,
                                               double* settled_bound);

  /// Accumulate one wave's engine counters into the metrics.
  void note_wave(const core::SsspStats& stats);

  /// True when `key`'s retry budget is exhausted for this attempt.
  [[nodiscard]] bool is_abandoned(graph::VertexId key) const noexcept;

  /// Record a shed query, honouring the shed-log cap.
  void log_shed(const Query& q);

  /// The distance micro-batch stage of tick() (batch formation through
  /// answer completion); collective when a batch dispatches.
  void dispatch_distance_batch(std::uint64_t now, bool flush,
                               std::vector<Answer>& answers);

  /// The analytics stage of tick(): at most one job per tick, deferred
  /// behind distance traffic until it ages out (see the scheduler notes
  /// in the header comment).  Collective when a job runs.
  void run_analytics_stage(std::uint64_t now, bool flush,
                           std::vector<Answer>& answers);

  /// Exact point cache (FIFO, bounded by config_.point_cache_cap).
  /// Lookup fails closed on a version-stale entry (drops it, returns
  /// nullptr); insert stamps the live graph version.
  [[nodiscard]] const graph::Weight* lookup_point(graph::VertexId root,
                                                  graph::VertexId target);
  void insert_point(graph::VertexId root, graph::VertexId target,
                    graph::Weight distance);

  /// Rank-local half of the point-cache adopt gate (see
  /// persist_point_cache); the constructor agrees the verdict by
  /// allreduce so residency never diverges across ranks.
  [[nodiscard]] bool try_adopt_points(const OracleSliceStore& store);

  /// The snapshot slot to pass to a wave on `key`, honouring the
  /// resume-key protection rule (see FaultContext::snapshot).
  [[nodiscard]] core::CheckpointState* snapshot_for(graph::VertexId key)
      const noexcept;

  simmpi::Comm& comm_;
  const graph::DistGraph& g_;
  ServeConfig config_;
  RootCache cache_;
  std::optional<LandmarkOracle> oracle_;
  std::optional<AdaptiveBatchController> controller_;
  KernelRegistry registry_;
  std::deque<Query> queue_;            ///< distance classes (p2p / facility)
  std::deque<Query> analytics_queue_;  ///< kAnalytics jobs, FIFO
  /// Memoized whole-graph kernel outcomes (the graph is immutable, so a
  /// completed untruncated run answers every later job of that kernel);
  /// reachability is per-pair and never memoized.
  std::array<std::optional<AnalyticsOutcome>, kNumAnalyticsKernels> memo_;
  /// Exact point cache: pruned-wave target values, keyed (root, target)
  /// and stamped with the graph version they were solved on.
  /// Deterministic FIFO residency — a pure function of the submission
  /// sequence, like every other collective decision here.
  struct PointEntry {
    graph::Weight distance = 0.0f;
    std::uint64_t version = 0;
  };
  std::map<std::pair<graph::VertexId, graph::VertexId>, PointEntry>
      point_cache_;
  std::deque<std::pair<graph::VertexId, graph::VertexId>> point_order_;
  std::vector<Query> shed_log_;
  ServiceMetrics metrics_;
  std::uint64_t arrived_since_tick_ = 0;  ///< controller observation window
  std::optional<std::uint64_t> last_now_;  ///< monotonic-clock watermark
  FaultContext* fault_ = nullptr;          ///< driver-owned; may be nullptr
  BreakerStatus breaker_;  ///< per-rank copy; transitions are deterministic
  /// Live graph version; starts at config_.graph_version, advanced by
  /// note_graph_update.  Identical on every rank (allreduce-agreed
  /// upstream in MutableGraph::commit_batch).
  std::uint64_t graph_version_ = 0;
};

}  // namespace g500::serve
