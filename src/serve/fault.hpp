// Fault-tolerance plumbing of the serving layer.
//
// The simulated-MPI world cannot survive a fault in place: an injected
// crash poisons every rank of the current World::run.  Serving therefore
// recovers the same way the resilient benchmark driver does — the retry
// loop lives OUTSIDE World::run (serve::run_workload_resilient) and
// everything that must survive an attempt sits in driver-owned "stable
// storage" declared here:
//
//   * core::CheckpointState snapshots let a crashed wave resume from its
//     last bucket epoch instead of from scratch;
//   * OracleSliceStore persists the landmark oracle's distance slices in
//     a versioned, digest-gated format so a restarted service skips the
//     precompute waves entirely;
//   * FaultLedger records which wave was in flight (rank-0 bookkeeping
//     between collectives, so a crash never tears it) — the driver uses
//     it to attribute the failure, budget per-key retries, and drive the
//     circuit breaker;
//   * FaultContext is the per-attempt view the driver hands each rank's
//     DistanceService: the snapshot/store slots, the resume key, the
//     abandoned-key list and the breaker state at attempt start.
//
// The circuit breaker itself follows the classic three-state protocol:
// closed (waves dispatch normally) -> open after K consecutive wave
// failures (cache/oracle-only; wave-needing queries degrade or fail) ->
// half-open once a cooldown timer expires (exactly one probe wave; its
// success closes the breaker, its failure re-opens it).  Open transitions
// are decided by the driver (it is the one that observes crashes); the
// timer and probe transitions are pure functions of the agreed submission
// sequence, so every rank computes them identically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/checkpoint.hpp"
#include "graph/types.hpp"
#include "util/backoff.hpp"

namespace g500::serve {

/// Versioned persistence slot for one rank's landmark-oracle slices
/// ("next to" that rank's CheckpointState in the driver's stable
/// storage).  The blob is written by LandmarkOracle::save and adopted by
/// the constructor when its digest gate passes; any mismatch (format
/// version, graph shape, graph version, landmark config, engine knobs,
/// bit rot) falls back to a full recompute.
struct OracleSliceStore {
  /// Layout version of both blobs; bumped on any incompatible change.
  /// v2: the identity digest pins the graph_version, so slices persisted
  /// before a streaming mutation can never be adopted after one.
  static constexpr std::uint64_t kFormatVersion = 2;

  std::vector<std::uint8_t> blob;

  /// The exact point cache persisted alongside the slices (written by
  /// DistanceService::persist_point_cache, adopted by the service
  /// constructor behind its own digest gate).  Empty = nothing persisted.
  std::vector<std::uint8_t> point_blob;

  [[nodiscard]] bool valid() const noexcept { return !blob.empty(); }
  void clear() noexcept {
    blob.clear();
    point_blob.clear();
  }
};

enum class BreakerState : std::uint8_t {
  kClosed,    ///< waves dispatch normally
  kOpen,      ///< cache/oracle-only; wave-needing queries degrade or fail
  kHalfOpen,  ///< one probe wave decides: success closes, failure re-opens
};

/// Breaker state carried across attempts (and ticks) by the driver.
struct BreakerStatus {
  BreakerState state = BreakerState::kClosed;
  std::uint64_t opened_tick = 0;     ///< when the breaker last opened
  int consecutive_failures = 0;      ///< crash streak feeding the threshold
};

/// Fault-tolerance knobs of the serving layer (ServeConfig::fault).
struct FaultToleranceConfig {
  /// Master switch for the wave retry machinery: checkpointed waves,
  /// resume keys, ledger bookkeeping.  Off = PR-4 behaviour.
  bool enabled = false;

  /// Bucket epochs between wave snapshots (passed to the engine as
  /// SsspConfig::checkpoint_interval when `enabled`).
  std::uint64_t checkpoint_interval = 4;

  /// World launches a single wave key may consume before the driver
  /// abandons it (its queries then degrade or fail).  Min 1.
  int max_wave_attempts = 3;

  /// Answer wave-exhausted / breaker-open point-to-point queries from the
  /// landmark oracle's lb/ub interval with Outcome::kDegraded instead of
  /// failing them.  Off by default: degraded answers are approximations
  /// and callers must opt in.
  bool degraded_answers = false;

  /// Consecutive wave failures that open the circuit breaker
  /// (0 = breaker disabled).
  int breaker_threshold = 0;

  /// Ticks an open breaker waits before half-opening for a probe wave.
  std::uint64_t breaker_cooldown_ticks = 16;

  /// Deadline propagation into the engine: a dispatched wave's
  /// SsspConfig::deadline_buckets = (ticks until the batch's tightest
  /// deadline) * this factor (0 = deadlines never truncate waves).
  std::uint64_t deadline_buckets_per_tick = 0;

  /// Seeded exponential backoff charged (in simulated seconds, not
  /// slept) for each retried attempt — shared with the core resilient
  /// benchmark driver so retry semantics cannot drift.
  util::BackoffPolicy backoff;
};

/// Cross-attempt bookkeeping written by rank 0 only, between collectives
/// (injected faults fire at collective entry, so these writes are never
/// torn) and read by the driver after World::run returns or throws.
struct FaultLedger {
  /// The wave dispatched most recently and not yet completed.  When the
  /// attempt dies with `wave_open` set, that key's retry budget is
  /// charged; `wave_facility` disambiguates the facility wave (whose
  /// cache key is the kNoVertex sentinel).
  bool wave_open = false;
  bool wave_facility = false;
  graph::VertexId wave_key = graph::kNoVertex;

  /// Breaker state as of the last completed tick (rank-0 harvest).
  BreakerStatus breaker;
};

/// Per-attempt fault view the driver hands to DistanceService.  All
/// pointers refer to driver-owned stable storage and must outlive the
/// service.
struct FaultContext {
  /// This rank's wave snapshot slot.  The service passes it only to the
  /// wave whose key matches `resume_key` (a mismatched wave would clear
  /// the snapshot on its digest check and destroy the crashed wave's
  /// progress); other waves run with checkpointing into the slot once it
  /// is free again.
  core::CheckpointState* snapshot = nullptr;

  /// This rank's oracle persistence slot (nullptr = no persistence).
  OracleSliceStore* oracle_store = nullptr;

  /// Wave to resume from `snapshot`, when `has_resume` is set.
  bool has_resume = false;
  graph::VertexId resume_key = graph::kNoVertex;

  /// Keys whose retry budget is exhausted: their queries skip the wave
  /// and degrade or fail.  Identical on every rank.
  std::vector<graph::VertexId> abandoned;
  bool facility_abandoned = false;

  /// Breaker state at attempt start (each rank copies it; transitions
  /// from here are deterministic).
  BreakerStatus breaker;

  /// Shared ledger (rank 0 writes; may be nullptr outside the driver).
  FaultLedger* ledger = nullptr;
};

/// The availability block of a serving run: how every query in the
/// workload ultimately ended, plus the retry/breaker machinery's audit
/// trail.  Enforced in BENCH_serving.json by check_report_schema.py.
struct AvailabilityStats {
  std::uint64_t served = 0;             ///< exact answers (cache/oracle/wave)
  std::uint64_t degraded = 0;           ///< answered from oracle lb/ub
  std::uint64_t deadline_exceeded = 0;  ///< expired waiters / truncated waves
  std::uint64_t failed = 0;             ///< no answer at all
  std::uint64_t shed = 0;               ///< bounced at admission

  std::uint64_t attempts = 1;        ///< World::run launches consumed
  std::uint64_t wave_retries = 0;    ///< failed attempts that were retried
  std::uint64_t waves_abandoned = 0; ///< keys that ran out of retry budget
  std::uint64_t breaker_opened = 0;
  std::uint64_t breaker_half_opened = 0;
  std::uint64_t breaker_closed = 0;
  std::uint64_t recovery_ticks = 0;  ///< simulated ticks lost to replay+backoff
  double backoff_seconds = 0.0;      ///< virtual retry delay charged
  bool oracle_restored = false;      ///< slices adopted from the store

  /// Fraction of completed queries that got a usable answer (exact or
  /// degraded).  Shed queries are excluded: admission control is load
  /// shedding, not a fault.
  [[nodiscard]] double availability() const noexcept {
    const std::uint64_t total = served + degraded + deadline_exceeded + failed;
    return total == 0
               ? 1.0
               : static_cast<double>(served + degraded) /
                     static_cast<double>(total);
  }
};

}  // namespace g500::serve
