// Root-result cache for the distance-query service.
//
// A wave for root r leaves each rank holding its owned slice of r's
// distance vector; caching that slice answers later queries on the same
// root with a value fetch instead of a recomputation.  Popular roots
// (Zipf-shaped workloads) make this the service's main throughput lever.
//
// SPMD discipline: a cache miss triggers a collective delta-stepping
// wave, so residency decisions MUST be identical on every rank or the
// ranks deadlock on mismatched collectives.  The cache therefore charges
// every entry the same rank-independent cost (the widest owned slice in
// the partition, passed at construction) instead of the rank's actual
// slice size, and evicts purely by LRU order — both are pure functions of
// the call sequence, which the scheduler keeps identical across ranks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/types.hpp"

namespace g500::serve {

/// Cache occupancy and effectiveness counters (per rank; identical across
/// ranks by the SPMD discipline above except nothing here is rank-local).
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected = 0;   ///< inserts refused because capacity is 0
  /// Lookups that found an entry stamped with a different graph version;
  /// the entry is dropped and the lookup fails closed as a miss (also
  /// counted in `misses`).
  std::uint64_t version_misses = 0;
  std::size_t resident_entries = 0;
  std::size_t resident_bytes = 0;  ///< charged, not actual, bytes
  std::size_t capacity_entries = 0;

  [[nodiscard]] double hit_rate() const noexcept {
    const auto lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// LRU cache: root id -> shared owned distance slice.  Entries are handed
/// out as shared_ptr so an extraction in flight survives the eviction of
/// its entry by a later insert in the same batch.
class RootCache {
 public:
  using Slice = std::shared_ptr<const std::vector<graph::Weight>>;

  /// `budget_bytes` is the per-rank memory budget; `entry_bytes` the
  /// rank-independent charge per entry (use the widest owned slice:
  /// part.count(0) * sizeof(Weight)).  capacity = budget / entry charge.
  RootCache(std::size_t budget_bytes, std::size_t entry_bytes);

  /// Lookup that counts a hit or miss and refreshes LRU order on hit.
  /// An entry stamped with a graph version other than `version` FAILS
  /// CLOSED: it is evicted, the lookup counts a miss (and a
  /// version_miss), and nullptr is returned — a stale slice must never
  /// answer a query against a mutated graph.
  [[nodiscard]] Slice lookup(graph::VertexId key, std::uint64_t version = 0);

  /// Lookup without touching LRU order or the counters.
  [[nodiscard]] bool contains(graph::VertexId key) const;

  /// Insert (or replace) the slice for `key`, stamped with `version`,
  /// evicting least-recently-used entries until the charged footprint
  /// fits the budget.  With capacity 0 the insert is refused (counted in
  /// stats().rejected).  Shared ownership: callers may keep their
  /// reference across later evictions.
  void insert(graph::VertexId key, Slice slice, std::uint64_t version = 0);
  void insert(graph::VertexId key, std::vector<graph::Weight> slice,
              std::uint64_t version = 0);

  /// Resident keys in LRU order (front = most recent) — the iteration
  /// surface for scoped invalidation.  Deterministic across ranks by the
  /// SPMD discipline above.
  [[nodiscard]] std::vector<graph::VertexId> keys() const;

  /// Drop one entry (no eviction counter: invalidation is accounted by
  /// the caller).  Returns true when the key was resident.
  bool erase(graph::VertexId key);

  /// Re-stamp a retained entry to a newer graph version (scoped
  /// invalidation proved its slice still exact).  No-op when absent.
  void restamp(graph::VertexId key, std::uint64_t version);

  void clear();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  /// Zero the effectiveness counters, keeping residency (warm restarts).
  void reset_counters();

 private:
  struct Entry {
    graph::VertexId key;
    Slice slice;
    std::uint64_t version = 0;  ///< graph version the slice was solved on
  };

  std::size_t capacity_;  ///< max resident entries
  std::size_t entry_bytes_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<graph::VertexId, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace g500::serve
