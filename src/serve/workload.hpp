// Deterministic simulated-clock workload for the distance-query service.
//
// Time is a virtual tick counter, not the wall clock, so a (config, seed)
// pair always produces the identical query trace — on every rank of an
// SPMD run and across repeated runs.  The model is the standard open-loop
// serving workload: arrivals per tick are Poisson(lambda) (the stream
// does not wait for answers), sources follow a Zipf popularity law over a
// fixed root universe (rank 0 of the universe is the most popular), and
// targets are uniform over the vertex range.  A configurable fraction of
// queries asks for the nearest of the service's facility set instead of a
// point-to-point distance.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace g500::serve {

enum class QueryKind : std::uint8_t {
  kPointToPoint,     ///< distance from `root` to `target`
  kNearestFacility,  ///< distance from the nearest configured facility
};

/// One distance query.  Ids are assigned in arrival order by the trace
/// generator; the arrival tick is when the query enters the admission
/// queue.
struct Query {
  std::uint64_t id = 0;
  std::uint64_t arrival_tick = 0;
  QueryKind kind = QueryKind::kPointToPoint;
  graph::VertexId root = 0;    ///< source vertex (ignored for kNearestFacility)
  graph::VertexId target = 0;  ///< vertex whose distance is requested
  /// Absolute tick by which the caller needs the answer (0 = no deadline).
  /// A query still queued at this tick completes with
  /// Outcome::kDeadlineExceeded instead of aging silently.
  std::uint64_t deadline_tick = 0;
};

struct WorkloadConfig {
  std::uint64_t seed = 0x5e21;
  std::uint64_t ticks = 256;        ///< horizon of the arrival process
  double arrivals_per_tick = 4.0;   ///< Poisson lambda per tick
  double zipf_s = 1.1;              ///< popularity exponent (0 = uniform)
  double nearest_fraction = 0.0;    ///< share of kNearestFacility queries
  /// Per-query deadline budget: every generated query gets
  /// deadline_tick = arrival_tick + deadline_ticks (0 = no deadlines).
  std::uint64_t deadline_ticks = 0;

  /// Popularity-ranked root universe (index 0 = most popular).  Must be
  /// non-empty unless nearest_fraction == 1.
  std::vector<graph::VertexId> roots;
  /// Targets are drawn uniformly from [0, num_vertices).
  graph::VertexId num_vertices = 0;
};

/// Pure function of its config: arrivals(t) and trace() depend on nothing
/// else, so every rank can generate the workload locally and agree on it.
class Workload {
 public:
  explicit Workload(WorkloadConfig config);

  [[nodiscard]] const WorkloadConfig& config() const noexcept {
    return config_;
  }

  /// Queries arriving at `tick`, in arrival order.  Ids are globally
  /// sequential across ticks (precomputed arrival counts make them a pure
  /// function of (seed, tick) too).
  [[nodiscard]] std::vector<Query> arrivals(std::uint64_t tick) const;

  /// The whole trace, all ticks concatenated in arrival order.
  [[nodiscard]] std::vector<Query> trace() const;

 private:
  [[nodiscard]] std::uint64_t poisson_count(std::uint64_t tick) const;

  WorkloadConfig config_;
  std::vector<double> zipf_cdf_;         ///< over config_.roots
  std::vector<std::uint64_t> id_base_;   ///< first query id of each tick
};

}  // namespace g500::serve
