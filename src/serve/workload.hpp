// Deterministic simulated-clock workload for the analytics service.
//
// Time is a virtual tick counter, not the wall clock, so a (config, seed)
// pair always produces the identical query trace — on every rank of an
// SPMD run and across repeated runs.  The model is the standard open-loop
// serving workload: arrivals per tick are Poisson(lambda) (the stream
// does not wait for answers), sources follow a Zipf popularity law over a
// fixed root universe (rank 0 of the universe is the most popular), and
// targets are uniform over the vertex range.  A configurable fraction of
// queries asks for the nearest of the service's facility set instead of a
// point-to-point distance.
//
// YCSB-style mixed driver: a second query class — whole-graph or
// single-pair analytics jobs drawn from the kernel registry
// (serve/kernels.hpp) — arrives interleaved with the distance reads at
// its own rate (analytics_fraction of the arrival stream, kernels picked
// by weight) and carries its own per-class deadline, mirroring the mixed
// read/scan drivers used to stress key-value stores.  When
// analytics_fraction == 0 the generator consumes exactly the pre-mixed
// random stream, so existing distance-only traces are unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace g500::serve {

enum class QueryKind : std::uint8_t {
  kPointToPoint,     ///< distance from `root` to `target`
  kNearestFacility,  ///< distance from the nearest configured facility
  kAnalytics,        ///< run an analytics kernel (see `Query::kernel`)
};

/// The analytics kernels the service can run (serve/kernels.hpp holds the
/// registry; the enum lives here so queries can name a kernel without the
/// workload depending on the runners).
enum class AnalyticsKernel : std::uint8_t {
  kPageRank,      ///< whole-graph PageRank (core::pagerank)
  kKCore,         ///< whole-graph k-core decomposition (core::kcore)
  kComponents,    ///< whole-graph connected components (core::connected_components)
  kReachability,  ///< single-pair reachability (BFS, oracle-short-circuited)
};
inline constexpr std::size_t kNumAnalyticsKernels = 4;

/// One distance query.  Ids are assigned in arrival order by the trace
/// generator; the arrival tick is when the query enters the admission
/// queue.
struct Query {
  std::uint64_t id = 0;
  std::uint64_t arrival_tick = 0;
  QueryKind kind = QueryKind::kPointToPoint;
  graph::VertexId root = 0;    ///< source vertex (ignored for kNearestFacility)
  graph::VertexId target = 0;  ///< vertex whose distance is requested
  /// Absolute tick by which the caller needs the answer (0 = no deadline).
  /// A query still queued at this tick completes with
  /// Outcome::kDeadlineExceeded instead of aging silently.
  std::uint64_t deadline_tick = 0;
  /// Kernel to run when kind == kAnalytics (root/target parameterize
  /// kReachability; the whole-graph kernels ignore them).
  AnalyticsKernel kernel = AnalyticsKernel::kPageRank;
};

struct WorkloadConfig {
  std::uint64_t seed = 0x5e21;
  std::uint64_t ticks = 256;        ///< horizon of the arrival process
  double arrivals_per_tick = 4.0;   ///< Poisson lambda per tick
  double zipf_s = 1.1;              ///< popularity exponent (0 = uniform)
  double nearest_fraction = 0.0;    ///< share of kNearestFacility queries
  /// Per-query deadline budget: every generated query gets
  /// deadline_tick = arrival_tick + deadline_ticks (0 = no deadlines).
  std::uint64_t deadline_ticks = 0;

  // ---- analytics class (YCSB-style mix) -------------------------------
  /// Share of arrivals that are analytics jobs instead of distance reads.
  /// 0 keeps the generator byte-identical to the distance-only driver.
  double analytics_fraction = 0.0;
  /// Relative draw weights over {pagerank, kcore, components,
  /// reachability}; empty = uniform.  Must have kNumAnalyticsKernels
  /// entries when non-empty, each >= 0, with a positive sum.
  std::vector<double> kernel_weights;
  /// Per-class deadline for analytics jobs (0 = inherit deadline_ticks).
  std::uint64_t analytics_deadline_ticks = 0;

  /// Popularity-ranked root universe (index 0 = most popular).  Must be
  /// non-empty unless nearest_fraction == 1.
  std::vector<graph::VertexId> roots;
  /// Targets are drawn uniformly from [0, num_vertices).
  graph::VertexId num_vertices = 0;
};

/// Pure function of its config: arrivals(t) and trace() depend on nothing
/// else, so every rank can generate the workload locally and agree on it.
class Workload {
 public:
  explicit Workload(WorkloadConfig config);

  [[nodiscard]] const WorkloadConfig& config() const noexcept {
    return config_;
  }

  /// Queries arriving at `tick`, in arrival order.  Ids are globally
  /// sequential across ticks (precomputed arrival counts make them a pure
  /// function of (seed, tick) too).
  [[nodiscard]] std::vector<Query> arrivals(std::uint64_t tick) const;

  /// The whole trace, all ticks concatenated in arrival order.
  [[nodiscard]] std::vector<Query> trace() const;

 private:
  [[nodiscard]] std::uint64_t poisson_count(std::uint64_t tick) const;

  WorkloadConfig config_;
  std::vector<double> zipf_cdf_;         ///< over config_.roots
  std::vector<double> kernel_cdf_;       ///< over the analytics kernels
  std::vector<std::uint64_t> id_base_;   ///< first query id of each tick
};

}  // namespace g500::serve
