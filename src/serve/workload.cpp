#include "serve/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/random.hpp"

namespace g500::serve {

namespace {
// Independent sub-streams of the workload seed, mixed into the per-tick
// engines so arrival counts and query contents never correlate.
constexpr std::uint64_t kArrivalStream = 0xa1;
constexpr std::uint64_t kQueryStream = 0x9e;
}  // namespace

Workload::Workload(WorkloadConfig config) : config_(std::move(config)) {
  if (config_.ticks == 0) {
    throw std::invalid_argument("Workload: ticks must be positive");
  }
  if (config_.arrivals_per_tick < 0.0 || config_.arrivals_per_tick > 1e4) {
    throw std::invalid_argument("Workload: arrivals_per_tick out of range");
  }
  if (config_.nearest_fraction < 0.0 || config_.nearest_fraction > 1.0) {
    throw std::invalid_argument("Workload: nearest_fraction not in [0,1]");
  }
  if (config_.roots.empty() && config_.nearest_fraction < 1.0) {
    throw std::invalid_argument(
        "Workload: point-to-point queries need a root universe");
  }
  if (config_.num_vertices == 0) {
    throw std::invalid_argument("Workload: num_vertices must be positive");
  }
  if (config_.analytics_fraction < 0.0 || config_.analytics_fraction > 1.0) {
    throw std::invalid_argument("Workload: analytics_fraction not in [0,1]");
  }
  if (!config_.kernel_weights.empty() &&
      config_.kernel_weights.size() != kNumAnalyticsKernels) {
    throw std::invalid_argument(
        "Workload: kernel_weights needs one entry per kernel");
  }
  // Kernel-draw CDF (uniform when no weights given).
  std::vector<double> weights = config_.kernel_weights;
  if (weights.empty()) weights.assign(kNumAnalyticsKernels, 1.0);
  double weight_total = 0.0;
  for (const auto w : weights) {
    if (w < 0.0) {
      throw std::invalid_argument("Workload: kernel weight must be >= 0");
    }
    weight_total += w;
  }
  if (config_.analytics_fraction > 0.0 && weight_total <= 0.0) {
    throw std::invalid_argument("Workload: kernel weights sum to zero");
  }
  kernel_cdf_.reserve(weights.size());
  double kernel_acc = 0.0;
  for (const auto w : weights) {
    kernel_acc += w;
    kernel_cdf_.push_back(weight_total > 0.0 ? kernel_acc / weight_total
                                             : 1.0);
  }
  // Zipf CDF over the universe: p(k) proportional to 1/(k+1)^s.
  zipf_cdf_.reserve(config_.roots.size());
  double total = 0.0;
  for (std::size_t k = 0; k < config_.roots.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), config_.zipf_s);
    zipf_cdf_.push_back(total);
  }
  for (auto& c : zipf_cdf_) c /= total;
  // Arrival counts are cheap; precompute the prefix so query ids are a
  // pure function of the tick.
  id_base_.reserve(config_.ticks + 1);
  id_base_.push_back(0);
  for (std::uint64_t t = 0; t < config_.ticks; ++t) {
    id_base_.push_back(id_base_.back() + poisson_count(t));
  }
}

std::uint64_t Workload::poisson_count(std::uint64_t tick) const {
  if (config_.arrivals_per_tick <= 0.0) return 0;
  // Knuth's product method on a per-tick engine: deterministic, and exact
  // for small lambdas.  The product p underflows to 0 once -ln(p) passes
  // ~745, so exp(-lambda) == 0 for lambda beyond that and the raw method
  // would return a count pinned near 780 regardless of lambda.  Chunk the
  // rate instead: Poisson(lambda) is the sum of ceil(lambda/32)
  // independent Poisson(lambda/chunks) draws, each safely inside the
  // product method's range (exp(-32) ~ 1e-14).  A single chunk reproduces
  // the pre-chunking draw sequence exactly.
  util::SplitMix64 rng(
      util::hash64(config_.seed, kArrivalStream, tick));
  const auto chunks = static_cast<std::uint64_t>(
      std::ceil(config_.arrivals_per_tick / 32.0));
  const double limit = std::exp(-config_.arrivals_per_tick /
                                static_cast<double>(chunks));
  std::uint64_t total = 0;
  for (std::uint64_t c = 0; c < chunks; ++c) {
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.next_double();
    } while (p > limit);
    total += k - 1;
  }
  return total;
}

std::vector<Query> Workload::arrivals(std::uint64_t tick) const {
  if (tick >= config_.ticks) return {};
  const std::uint64_t count = id_base_[tick + 1] - id_base_[tick];
  std::vector<Query> out;
  out.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = id_base_[tick] + i;
    util::SplitMix64 rng(util::hash64(config_.seed, kQueryStream, id));
    Query q;
    q.id = id;
    q.arrival_tick = tick;
    if (config_.deadline_ticks != 0) {
      q.deadline_tick = tick + config_.deadline_ticks;
    }
    // Class draw first, but only when the analytics class is active: a
    // fraction of 0 must not consume a variate, so distance-only traces
    // stay identical to the pre-mix generator.
    if (config_.analytics_fraction > 0.0 &&
        rng.next_double() < config_.analytics_fraction) {
      q.kind = QueryKind::kAnalytics;
      if (config_.analytics_deadline_ticks != 0) {
        q.deadline_tick = tick + config_.analytics_deadline_ticks;
      }
      const double ku = rng.next_double();
      const auto kit =
          std::lower_bound(kernel_cdf_.begin(), kernel_cdf_.end(), ku);
      q.kernel = static_cast<AnalyticsKernel>(std::min<std::size_t>(
          static_cast<std::size_t>(kit - kernel_cdf_.begin()),
          kNumAnalyticsKernels - 1));
    } else {
      q.kind = rng.next_double() < config_.nearest_fraction
                   ? QueryKind::kNearestFacility
                   : QueryKind::kPointToPoint;
    }
    if (q.kind != QueryKind::kNearestFacility && !config_.roots.empty()) {
      const double u = rng.next_double();
      const auto it =
          std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
      const auto idx = static_cast<std::size_t>(
          std::min<std::ptrdiff_t>(it - zipf_cdf_.begin(),
                                   static_cast<std::ptrdiff_t>(
                                       config_.roots.size()) - 1));
      q.root = config_.roots[idx];
    }
    q.target = rng.next_below(config_.num_vertices);
    out.push_back(q);
  }
  return out;
}

std::vector<Query> Workload::trace() const {
  std::vector<Query> all;
  all.reserve(id_base_.back());
  for (std::uint64_t t = 0; t < config_.ticks; ++t) {
    const auto batch = arrivals(t);
    all.insert(all.end(), batch.begin(), batch.end());
  }
  return all;
}

}  // namespace g500::serve
