// Analytics kernel registry for the serving layer.
//
// The service answers more than distance reads: this registry maps each
// serve::AnalyticsKernel to a distributed runner over the shared graph
// substrate (GBBS-style — one bucketing/frontier toolkit, many kernels):
//
//   * kPageRank     — core::pagerank, iteration-count/L1-residual stop;
//                     the only kernel that honours a deadline iteration
//                     budget (a capped run completes as *truncated*);
//   * kKCore        — core::kcore bucketed peeling;
//   * kComponents   — core::connected_components min-label propagation;
//   * kReachability — single-pair: the landmark oracle's bounds settle
//                     the pair without any wave when a landmark proves
//                     disconnection (or exact reachability), otherwise
//                     one core::bfs wave decides it.
//
// Every runner is collective (SPMD: all ranks in lockstep) and finishes
// by reducing a *validation digest* — FNV-1a over the canonical global
// result bytes in vertex order — so a caller can compare the distributed
// answer bit-for-bit against a sequential reference.  Cost counters come
// back in a kernel-agnostic shape (rounds / items_sent / items_applied)
// so the service's per-class accounting stays complete for every kernel.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/bfs.hpp"
#include "core/pagerank.hpp"
#include "graph/builder.hpp"
#include "serve/oracle.hpp"
#include "serve/workload.hpp"
#include "simmpi/comm.hpp"

namespace g500::serve {

/// Knobs for the registry's runners.
struct AnalyticsConfig {
  core::PageRankConfig pagerank;
  core::BfsConfig bfs;  ///< reachability waves
};

/// One finished analytics job.
struct AnalyticsOutcome {
  /// Headline scalar: retained PageRank mass, the graph's degeneracy
  /// (max coreness), the component count, or 0/1 reachability.
  double value = 0.0;
  /// FNV-1a digest of the canonical global result (identical on every
  /// rank; bit-comparable against a sequential reference).
  std::uint64_t digest = 0;
  /// PageRank stopped at an iteration budget before converging — the
  /// analytics analogue of a deadline-truncated wave.
  bool truncated = false;
  /// The oracle settled reachability without dispatching a BFS wave.
  bool oracle_short_circuit = false;
  /// Kernel-agnostic cost: collective rounds/iterations (identical on
  /// every rank) and this rank's share of wire items sent/applied.
  std::uint64_t rounds = 0;
  std::uint64_t items_sent = 0;
  std::uint64_t items_applied = 0;
  double seconds = 0.0;
};

[[nodiscard]] std::string_view kernel_name(AnalyticsKernel kernel);

/// FNV-1a over a byte span (exposed so benches hash sequential references
/// exactly the way the runners hash distributed results).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t bytes,
                                  std::uint64_t seed = 0xcbf29ce484222325ull);

class KernelRegistry {
 public:
  explicit KernelRegistry(AnalyticsConfig config) : config_(config) {}

  [[nodiscard]] const AnalyticsConfig& config() const noexcept {
    return config_;
  }

  /// Run `kernel` over `g`.  Collective: every rank must call with
  /// identical arguments.  `root`/`target` parameterize kReachability
  /// (whole-graph kernels ignore them).  `oracle` (nullable) provides the
  /// reachability short-circuit; its landmark_distances call is itself
  /// collective.  `iter_budget` caps PageRank iterations when non-zero
  /// (deadline budgeting; other kernels run to completion — truncating a
  /// peeling or labelling schedule would change the answer, not degrade
  /// it).
  [[nodiscard]] AnalyticsOutcome run(simmpi::Comm& comm,
                                     const graph::DistGraph& g,
                                     AnalyticsKernel kernel,
                                     graph::VertexId root,
                                     graph::VertexId target,
                                     LandmarkOracle* oracle,
                                     std::uint64_t iter_budget) const;

 private:
  AnalyticsConfig config_;
};

}  // namespace g500::serve
