#include "serve/driver.hpp"

#include <optional>

#include "util/timer.hpp"

namespace g500::serve {

ServingRunReport run_workload(simmpi::Comm& comm, const graph::DistGraph& g,
                              const ServeConfig& config,
                              const Workload& workload, bool keep_answers,
                              DistanceService* service) {
  std::optional<DistanceService> own;
  if (service == nullptr) {
    own.emplace(comm, g, config);
    service = &*own;
  } else {
    service->reset_metrics();
  }

  ServingRunReport report;
  comm.barrier();
  const std::uint64_t bytes_before = comm.stats().total_bytes();
  util::Timer timer;
  const std::uint64_t horizon = workload.config().ticks;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    for (const auto& q : workload.arrivals(t)) (void)service->submit(q);
    auto answers = service->tick(t);
    if (keep_answers) {
      report.answers.insert(report.answers.end(), answers.begin(),
                            answers.end());
    }
  }
  std::uint64_t end_tick = horizon;
  auto tail = service->drain(horizon, &end_tick);
  if (keep_answers) {
    report.answers.insert(report.answers.end(), tail.begin(), tail.end());
  }
  report.wall_seconds = comm.allreduce_max(timer.seconds());
  report.ticks_run = end_tick;
  report.metrics = service->metrics();
  // Global work totals (the per-rank metrics only hold this rank's share).
  // The byte delta is read before these reductions so they don't count
  // themselves.
  const std::uint64_t bytes_mine = comm.stats().total_bytes() - bytes_before;
  report.wire_bytes = comm.allreduce_sum(bytes_mine);
  report.relax_generated =
      comm.allreduce_sum(report.metrics.wave_relax_generated);
  report.relax_sent = comm.allreduce_sum(report.metrics.wave_relax_sent);
  report.pruned_expand =
      comm.allreduce_sum(report.metrics.wave_pruned_expand);
  report.pruned_apply = comm.allreduce_sum(report.metrics.wave_pruned_apply);
  return report;
}

}  // namespace g500::serve
