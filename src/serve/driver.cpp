#include "serve/driver.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/checkpoint.hpp"
#include "util/timer.hpp"

namespace g500::serve {

namespace {

/// Outcome counters from the service's merged metrics (what both drivers
/// share; the resilient one layers the retry audit on top).
void fill_outcomes(AvailabilityStats& a, const ServiceMetrics& m) {
  a.served = m.answered;
  a.degraded = m.degraded;
  a.deadline_exceeded = m.deadline_exceeded;
  a.failed = m.failed_queries;
  a.shed = m.shed;
}

}  // namespace

ServingRunReport run_workload(simmpi::Comm& comm, const graph::DistGraph& g,
                              const ServeConfig& config,
                              const Workload& workload, bool keep_answers,
                              DistanceService* service) {
  std::optional<DistanceService> own;
  if (service == nullptr) {
    own.emplace(comm, g, config);
    service = &*own;
  } else {
    service->reset_metrics();
  }

  ServingRunReport report;
  comm.barrier();
  const std::uint64_t bytes_before = comm.stats().total_bytes();
  util::Timer timer;
  const std::uint64_t horizon = workload.config().ticks;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    for (const auto& q : workload.arrivals(t)) (void)service->submit(q);
    auto answers = service->tick(t);
    if (keep_answers) {
      report.answers.insert(report.answers.end(), answers.begin(),
                            answers.end());
    }
  }
  std::uint64_t end_tick = horizon;
  auto tail = service->drain(horizon, &end_tick);
  if (keep_answers) {
    report.answers.insert(report.answers.end(), tail.begin(), tail.end());
  }
  report.wall_seconds = comm.allreduce_max(timer.seconds());
  report.ticks_run = end_tick;
  report.graph_version = service->graph_version();
  report.metrics = service->metrics();
  // Global work totals (the per-rank metrics only hold this rank's share).
  // The byte delta is read before these reductions so they don't count
  // themselves.
  const std::uint64_t bytes_mine = comm.stats().total_bytes() - bytes_before;
  report.wire_bytes = comm.allreduce_sum(bytes_mine);
  report.relax_generated =
      comm.allreduce_sum(report.metrics.wave_relax_generated);
  report.relax_sent = comm.allreduce_sum(report.metrics.wave_relax_sent);
  report.pruned_expand =
      comm.allreduce_sum(report.metrics.wave_pruned_expand);
  report.pruned_apply = comm.allreduce_sum(report.metrics.wave_pruned_apply);
  fill_outcomes(report.availability, report.metrics);
  return report;
}

ServingRunReport run_workload_resilient(
    simmpi::World& world,
    const std::function<graph::DistGraph(simmpi::Comm&)>& build_graph,
    const ServeConfig& config, const Workload& workload,
    const ResilientServeOptions& options) {
  const int P = world.size();
  const std::uint64_t horizon = workload.config().ticks;
  const std::vector<Query> trace = workload.trace();

  // ---- driver-owned "stable storage" ---------------------------------
  // Everything that must survive a crashed World::run.  In-run writers:
  // each rank touches only its own per-rank slot, rank 0 alone touches
  // the shared harvest state, and both only between collectives — an
  // injected fault fires at collective entry, so nothing here is ever
  // torn, and world.run joins its threads before rethrowing.
  std::vector<core::CheckpointState> snapshots(static_cast<std::size_t>(P));
  std::vector<OracleSliceStore> own_stores;
  std::vector<OracleSliceStore>* stores = options.oracle_stores;
  if (stores == nullptr) {
    own_stores.resize(static_cast<std::size_t>(P));
    stores = &own_stores;
  } else if (stores->size() != static_cast<std::size_t>(P)) {
    stores->assign(static_cast<std::size_t>(P), OracleSliceStore{});
  }

  struct RankSlot {
    ServiceMetrics metrics;  ///< as of this attempt's last completed tick
    double wall_seconds = 0.0;
  };
  std::vector<RankSlot> slots(static_cast<std::size_t>(P));
  std::vector<ServiceMetrics> accum(static_cast<std::size_t>(P));
  std::vector<double> accum_wall(static_cast<std::size_t>(P), 0.0);

  FaultLedger ledger;
  BreakerStatus breaker;
  std::vector<graph::VertexId> abandoned;
  bool facility_abandoned = false;
  bool has_resume = false;
  graph::VertexId resume_key = graph::kNoVertex;
  std::uint64_t resume_tick = 0;
  std::uint64_t next_resume_tick = 0;  ///< rank-0 written, per harvested tick
  std::uint64_t end_tick = horizon;    ///< rank-0 written on a clean finish
  bool oracle_restored = false;        ///< rank-0 written after construction
  std::uint64_t final_version = config.graph_version;  ///< rank-0 written

  // Query fate across attempts, indexed by the trace's global ids.  The
  // shed marks come from the shed log, so records dropped at the
  // shed-log cap can (rarely) let a crashed attempt's shed query be
  // re-admitted and answered — availability errs high, never low.
  std::vector<std::uint8_t> resolved(trace.size(), 0);
  std::vector<std::uint8_t> shed_marks(trace.size(), 0);

  // Per-key retry ledger.
  std::vector<std::pair<graph::VertexId, int>> wave_failures;
  int facility_failures = 0;

  ServingRunReport report;
  AvailabilityStats avail;
  avail.attempts = 0;
  std::uint64_t retries = 0;
  const std::uint64_t bytes_before = world.aggregate_stats().total_bytes();

  const int max_attempts = std::max(1, options.max_attempts);
  bool finished = false;
  while (!finished && avail.attempts < static_cast<std::uint64_t>(max_attempts)) {
    ++avail.attempts;
    for (auto& s : slots) s = RankSlot{};
    std::size_t shed_seen = 0;  ///< rank-0 cursor into this attempt's shed log
    ledger.wave_open = false;
    bool attempt_failed = false;
    try {
      world.run([&](simmpi::Comm& comm) {
        const auto rank = static_cast<std::size_t>(comm.rank());
        const graph::DistGraph g = build_graph(comm);
        FaultContext ctx;
        ctx.snapshot = &snapshots[rank];
        ctx.oracle_store = &(*stores)[rank];
        ctx.has_resume = has_resume;
        ctx.resume_key = resume_key;
        ctx.abandoned = abandoned;
        ctx.facility_abandoned = facility_abandoned;
        ctx.breaker = breaker;
        ctx.ledger = &ledger;
        DistanceService service(comm, g, config, &ctx);
        if (comm.rank() == 0 && service.oracle() != nullptr &&
            service.oracle()->restored_from_store()) {
          oracle_restored = true;
        }
        // Re-admit the backlog: queries an earlier attempt admitted (and
        // counted) but never completed or shed.  Pure function of the
        // trace and the driver's fate arrays, so every rank agrees.
        std::vector<Query> backlog;
        for (const auto& q : trace) {
          if (q.arrival_tick >= resume_tick) break;
          if (resolved[q.id] == 0 && shed_marks[q.id] == 0) {
            backlog.push_back(q);
          }
        }
        service.restore_backlog(backlog);

        util::Timer timer;
        auto harvest = [&](std::uint64_t t, const std::vector<Answer>& answers) {
          slots[rank].metrics = service.metrics();
          slots[rank].wall_seconds = timer.seconds();
          if (comm.rank() != 0) return;
          for (const auto& a : answers) {
            if (a.id < resolved.size()) resolved[a.id] = 1;
            if (options.keep_answers) report.answers.push_back(a);
          }
          const auto& log = service.shed_log();
          for (; shed_seen < log.size(); ++shed_seen) {
            const auto id = log[shed_seen].id;
            if (id < shed_marks.size()) shed_marks[id] = 1;
          }
          ledger.breaker = service.breaker();
          next_resume_tick = t + 1;
        };

        for (std::uint64_t t = resume_tick; t < horizon; ++t) {
          for (const auto& q : workload.arrivals(t)) (void)service.submit(q);
          harvest(t, service.tick(t));
        }
        std::uint64_t t = std::max(resume_tick, horizon);
        while (service.pending() > 0) {
          harvest(t, service.tick(t, /*flush=*/true));
          ++t;
        }
        // The run completed cleanly: persist the exact point cache next
        // to the oracle slices so the next run over this graph adopts
        // both (each rank writes only its own slot, after the last
        // collective, so a crash can never tear it).
        service.persist_point_cache((*stores)[rank]);
        slots[rank].metrics = service.metrics();  // pick up the persist count
        if (comm.rank() == 0) {
          end_tick = t;
          final_version = service.graph_version();
        }
      });
      finished = true;
    } catch (const core::CheckpointError&) {
      // Snapshot bit rot: nothing in the slots can be trusted; the
      // interrupted wave restarts from scratch.
      for (auto& s : snapshots) s.clear();
      has_resume = false;
      attempt_failed = true;
    } catch (...) {
      attempt_failed = true;
    }

    // Fold this attempt's completed-tick window into the running totals
    // (counters sum, histograms merge — ServiceMetrics::merge).
    for (std::size_t r = 0; r < slots.size(); ++r) {
      accum[r].merge(slots[r].metrics);
      accum_wall[r] += slots[r].wall_seconds;
    }
    resume_tick = next_resume_tick;
    if (!attempt_failed) break;

    // ---- attribute the failure and pace the retry --------------------
    ++avail.wave_retries;
    breaker = ledger.breaker;  // latest harvested tick's state
    const double delay = config.fault.backoff.delay(++retries);
    avail.backoff_seconds += delay;
    // One tick of replay plus the virtual backoff, rounded up.
    avail.recovery_ticks +=
        1 + static_cast<std::uint64_t>(std::ceil(delay));
    if (ledger.wave_open) {
      int failures = 0;
      if (ledger.wave_facility) {
        failures = ++facility_failures;
      } else {
        auto it = std::find_if(
            wave_failures.begin(), wave_failures.end(),
            [&](const auto& e) { return e.first == ledger.wave_key; });
        if (it == wave_failures.end()) {
          wave_failures.emplace_back(ledger.wave_key, 0);
          it = std::prev(wave_failures.end());
        }
        failures = ++it->second;
      }
      if (failures >= config.fault.max_wave_attempts) {
        if (ledger.wave_facility) {
          facility_abandoned = true;
        } else {
          abandoned.push_back(ledger.wave_key);
        }
        ++avail.waves_abandoned;
        has_resume = false;
        for (auto& s : snapshots) s.clear();
      } else if (!ledger.wave_facility) {
        // The crashed wave resumes from its last checkpointed epoch (the
        // facility multi-wave has no checkpointed variant — it simply
        // reruns).
        has_resume = true;
        resume_key = ledger.wave_key;
      }
      if (config.fault.breaker_threshold > 0) {
        ++breaker.consecutive_failures;
        if (breaker.state != BreakerState::kOpen &&
            breaker.consecutive_failures >= config.fault.breaker_threshold) {
          breaker.state = BreakerState::kOpen;
          breaker.opened_tick = resume_tick;
          ++avail.breaker_opened;
        }
      }
    }
  }

  // ---- finalize ------------------------------------------------------
  report.metrics = accum[0];
  report.ticks_run = finished ? end_tick : resume_tick;
  report.graph_version = final_version;
  report.wall_seconds =
      *std::max_element(accum_wall.begin(), accum_wall.end());
  report.wire_bytes = world.aggregate_stats().total_bytes() - bytes_before;
  for (const auto& m : accum) {
    report.relax_generated += m.wave_relax_generated;
    report.relax_sent += m.wave_relax_sent;
    report.pruned_expand += m.wave_pruned_expand;
    report.pruned_apply += m.wave_pruned_apply;
  }
  fill_outcomes(avail, report.metrics);
  if (!finished) {
    // Retry budget exhausted: whatever never completed is a failure.
    for (const auto& q : trace) {
      if (resolved[q.id] == 0 && shed_marks[q.id] == 0) ++avail.failed;
    }
  }
  avail.breaker_half_opened = report.metrics.breaker_half_opened;
  avail.breaker_closed = report.metrics.breaker_closed;
  avail.oracle_restored = oracle_restored;
  report.availability = avail;
  return report;
}

}  // namespace g500::serve
