#include "serve/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/remote.hpp"
#include "util/random.hpp"
#include "util/timer.hpp"

namespace g500::serve {

namespace {

/// Reduction candidate for landmark selection.  Ordering: farther wins,
/// then higher degree (hubs cover more shortest paths), then lower id —
/// a total order, so the allreduce result is rank-count independent.
struct Candidate {
  graph::Weight dist = -1.0f;
  std::uint64_t degree = 0;
  graph::VertexId id = graph::kNoVertex;
};

Candidate better(Candidate a, Candidate b) {
  if (a.dist != b.dist) return a.dist > b.dist ? a : b;
  if (a.degree != b.degree) return a.degree > b.degree ? a : b;
  return a.id <= b.id ? a : b;
}

}  // namespace

LandmarkOracle::LandmarkOracle(simmpi::Comm& comm, const graph::DistGraph& g,
                               const OracleConfig& config,
                               const core::SsspConfig& sssp,
                               OracleSliceStore* store)
    : comm_(comm), g_(g), config_(config), sssp_(sssp) {
  if (config_.num_landmarks == 0) {
    throw std::invalid_argument("LandmarkOracle: num_landmarks must be >= 1");
  }
  if (!(config_.prune_slack >= 0.0) || config_.prune_slack >= 1.0) {
    throw std::invalid_argument(
        "LandmarkOracle: prune_slack must be in [0, 1)");
  }
  // Precompute waves must never themselves be pruned or truncated.
  sssp_.prune_lb = nullptr;
  sssp_.prune_budget = graph::kInfDistance;
  sssp_.deadline_buckets = 0;

  if (store != nullptr && store->valid()) {
    // Adoption must be all-or-nothing across ranks: slices feed
    // collective row fetches, and a rank recomputing while another
    // adopts would desync the precompute collective schedule.
    const bool mine = try_adopt(*store);
    if (!comm_.allreduce_or(!mine)) {
      restored_ = true;
      return;  // zero precompute waves
    }
    // Some rank's digest gate failed: drop the blob and recompute.
    landmarks_.clear();
    slices_.clear();
    store->clear();
  }

  util::Timer timer;
  const auto want = static_cast<std::size_t>(
      std::min<graph::VertexId>(config_.num_landmarks, g_.num_vertices));
  const graph::VertexId my_begin = g_.part.begin(comm_.rank());
  const auto local_n = static_cast<graph::LocalId>(g_.csr.num_local());

  // Seed: the global top-degree vertex (dist field unused, left equal).
  {
    Candidate mine;
    for (graph::LocalId v = 0; v < local_n; ++v) {
      const Candidate c{0.0f, g_.csr.degree(v), my_begin + v};
      mine = better(mine, c);
    }
    const Candidate seed = comm_.allreduce(mine, better);
    landmarks_.push_back(seed.id);
  }

  // Farthest-point refinement: each round, one multi-source wave from the
  // current set, then the globally farthest non-member joins.  Vertices
  // the set cannot reach count as infinitely far, so every component
  // acquires a landmark before coverage deepens — which is what turns
  // cross-component queries into free unreachability proofs.
  while (landmarks_.size() < want) {
    const auto wave = core::delta_stepping_multi(comm_, g_, landmarks_, sssp_);
    ++precompute_waves_;
    Candidate mine;
    for (graph::LocalId v = 0; v < local_n; ++v) {
      const graph::Weight d = wave.dist[v];
      if (d <= 0.0f) continue;  // a member of the set (or co-located)
      mine = better(mine, Candidate{d, g_.csr.degree(v), my_begin + v});
    }
    const Candidate next = comm_.allreduce(mine, better);
    if (next.id == graph::kNoVertex) break;  // set already covers everything
    landmarks_.push_back(next.id);
  }

  slices_.reserve(landmarks_.size());
  for (const auto lm : landmarks_) {
    auto wave = core::delta_stepping_multi(comm_, g_, {lm}, sssp_);
    ++precompute_waves_;
    slices_.push_back(std::move(wave.dist));
  }
  precompute_seconds_ = timer.seconds();
  if (store != nullptr) save(*store);
}

std::uint64_t LandmarkOracle::identity_digest() const {
  std::uint64_t h = util::hash64(OracleSliceStore::kFormatVersion,
                                 g_.num_vertices);
  h = util::hash64(h, static_cast<std::uint64_t>(g_.csr.num_local()));
  h = util::hash64(h, static_cast<std::uint64_t>(config_.num_landmarks));
  // Slice bits depend on the effective wave configuration; a blob from a
  // differently-tuned engine could differ in the last float bits and
  // silently break the oracle's bit-identity guarantees.
  std::uint64_t delta_bits = 0;
  static_assert(sizeof(delta_bits) == sizeof(sssp_.delta));
  std::memcpy(&delta_bits, &sssp_.delta, sizeof(delta_bits));
  h = util::hash64(h, delta_bits);
  const std::uint64_t flags = (sssp_.coalesce ? 1u : 0u) |
                              (sssp_.hub_cache ? 2u : 0u) |
                              (sssp_.direction_opt ? 4u : 0u) |
                              (sssp_.local_fusion ? 8u : 0u) |
                              (sssp_.compress ? 16u : 0u);
  h = util::hash64(h, flags,
                   static_cast<std::uint64_t>(
                       static_cast<std::int64_t>(sssp_.hierarchical_group)));
  // Streaming mutations bump the graph version; slices solved on an older
  // version answer a different graph and must never pass the adopt gate.
  h = util::hash64(h, config_.graph_version);
  return h;
}

std::uint64_t LandmarkOracle::refresh_slices(
    const std::vector<std::size_t>& flagged, std::uint64_t new_version) {
  std::vector<std::size_t> order(flagged);
  std::sort(order.begin(), order.end());
  order.erase(std::unique(order.begin(), order.end()), order.end());
  std::uint64_t waves = 0;
  for (const auto k : order) {
    if (k >= landmarks_.size()) {
      throw std::out_of_range("refresh_slices: landmark index out of range");
    }
    auto wave = core::delta_stepping_multi(comm_, g_, {landmarks_[k]}, sssp_);
    slices_[k] = std::move(wave.dist);
    ++waves;
  }
  config_.graph_version = new_version;
  return waves;
}

void LandmarkOracle::save(OracleSliceStore& store) const {
  auto& b = store.blob;
  b.clear();
  const auto put_u64 = [&b](std::uint64_t v) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    b.insert(b.end(), p, p + sizeof(v));
  };
  put_u64(OracleSliceStore::kFormatVersion);
  put_u64(identity_digest());
  put_u64(landmarks_.size());
  const std::uint64_t local_n =
      slices_.empty() ? 0 : static_cast<std::uint64_t>(slices_[0].size());
  put_u64(local_n);
  for (const auto lm : landmarks_) put_u64(static_cast<std::uint64_t>(lm));
  for (const auto& slice : slices_) {
    const auto* p = reinterpret_cast<const std::uint8_t*>(slice.data());
    b.insert(b.end(), p, p + slice.size() * sizeof(graph::Weight));
  }
  // Trailing checksum over everything above guards against bit rot.
  put_u64(util::hash_bytes(b.data(), b.size()));
}

bool LandmarkOracle::try_adopt(const OracleSliceStore& store) {
  const auto& b = store.blob;
  std::size_t off = 0;
  const auto get_u64 = [&b, &off](std::uint64_t& v) {
    if (off + sizeof(v) > b.size()) return false;
    std::memcpy(&v, b.data() + off, sizeof(v));
    off += sizeof(v);
    return true;
  };
  std::uint64_t version = 0;
  std::uint64_t identity = 0;
  std::uint64_t K = 0;
  std::uint64_t local_n = 0;
  if (!get_u64(version) || version != OracleSliceStore::kFormatVersion) {
    return false;
  }
  if (!get_u64(identity) || identity != identity_digest()) return false;
  if (!get_u64(K) || !get_u64(local_n)) return false;
  if (K == 0 || K > config_.num_landmarks ||
      local_n != static_cast<std::uint64_t>(g_.csr.num_local())) {
    return false;
  }
  const std::size_t expected = 4 * sizeof(std::uint64_t) +
                               K * sizeof(std::uint64_t) +
                               K * local_n * sizeof(graph::Weight) +
                               sizeof(std::uint64_t);
  if (b.size() != expected) return false;
  std::uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, b.data() + b.size() - sizeof(stored_sum),
              sizeof(stored_sum));
  if (util::hash_bytes(b.data(), b.size() - sizeof(stored_sum)) !=
      stored_sum) {
    return false;
  }

  landmarks_.clear();
  landmarks_.reserve(K);
  for (std::uint64_t k = 0; k < K; ++k) {
    std::uint64_t lm = 0;
    (void)get_u64(lm);
    if (lm >= g_.num_vertices) return false;
    landmarks_.push_back(static_cast<graph::VertexId>(lm));
  }
  slices_.assign(K, {});
  for (std::uint64_t k = 0; k < K; ++k) {
    slices_[k].resize(local_n);
    std::memcpy(slices_[k].data(), b.data() + off,
                local_n * sizeof(graph::Weight));
    off += local_n * sizeof(graph::Weight);
  }
  return true;
}

std::vector<std::vector<graph::Weight>> LandmarkOracle::landmark_distances(
    const std::vector<graph::VertexId>& vertices) {
  const std::size_t K = slices_.size();
  std::vector<const std::vector<graph::Weight>*> slots;
  slots.reserve(K);
  for (const auto& s : slices_) slots.push_back(&s);

  std::vector<core::SlotQuery> queries;
  queries.reserve(vertices.size() * K);
  for (const auto v : vertices) {
    for (std::size_t k = 0; k < K; ++k) {
      queries.push_back({static_cast<std::uint32_t>(k), v});
    }
  }
  const auto flat = core::fetch_values_batched(comm_, g_.part, queries, slots);

  std::vector<std::vector<graph::Weight>> rows(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    rows[i].assign(flat.begin() + static_cast<std::ptrdiff_t>(i * K),
                   flat.begin() + static_cast<std::ptrdiff_t>((i + 1) * K));
  }
  return rows;
}

LandmarkOracle::Bounds LandmarkOracle::bounds(
    const std::vector<graph::Weight>& at_s,
    const std::vector<graph::Weight>& at_t, graph::VertexId s,
    graph::VertexId t) const {
  Bounds b;
  if (s == t) {
    b.lb = b.ub = 0.0f;
    b.exact = true;
    return b;
  }
  for (std::size_t k = 0; k < landmarks_.size(); ++k) {
    const graph::Weight ds = at_s[k];
    const graph::Weight dt = at_t[k];
    const bool s_in = std::isfinite(ds);
    const bool t_in = std::isfinite(dt);
    if (s_in != t_in) {
      // One endpoint inside L_k's component, the other outside: no path.
      b.lb = b.ub = graph::kInfDistance;
      b.exact = true;
      b.unreachable = true;
      return b;
    }
    if (!s_in) continue;  // landmark sees neither endpoint: no information
    b.lb = std::max(b.lb, std::abs(ds - dt));
    b.ub = std::min(b.ub, ds + dt);
  }
  for (std::size_t k = 0; k < landmarks_.size(); ++k) {
    if (landmarks_[k] == s) {
      // The precomputed wave from L_k == s *is* the fresh wave from s.
      b.lb = b.ub = at_t[k];
      b.exact = true;
      b.unreachable = !std::isfinite(at_t[k]);
      return b;
    }
  }
  // Note: t being a landmark gives d(t, s), which equals d(s, t) in the
  // metric but may differ in the last float bits from a wave rooted at s
  // (path sums accumulate in the opposite order) — it stays a bound, not
  // an exact hit, to preserve bit-identity with unpruned waves.
  b.lb = std::min(b.lb, b.ub);
  return b;
}

std::vector<graph::Weight> LandmarkOracle::lb_slice(
    const std::vector<graph::Weight>& at_t) const {
  const auto local_n = static_cast<std::size_t>(g_.csr.num_local());
  std::vector<graph::Weight> lb(local_n, 0.0f);
  const auto scale = static_cast<graph::Weight>(1.0 - config_.prune_slack);
  for (std::size_t k = 0; k < slices_.size(); ++k) {
    const auto& slice = slices_[k];
    const graph::Weight dt = at_t[k];
    const bool t_in = std::isfinite(dt);
    for (std::size_t v = 0; v < local_n; ++v) {
      const graph::Weight dv = slice[v];
      if (std::isfinite(dv) == t_in) {
        if (t_in) lb[v] = std::max(lb[v], std::abs(dv - dt) * scale);
        // both infinite: L_k sees neither v nor the target — no information
      } else {
        // Exactly one of v / target in L_k's component: v can never reach
        // the target, prune it unconditionally.
        lb[v] = graph::kInfDistance;
      }
    }
  }
  return lb;
}

void LandmarkOracle::min_into_lb_slice(
    std::vector<graph::Weight>& slice,
    const std::vector<graph::Weight>& at_t) const {
  const auto extra = lb_slice(at_t);
  for (std::size_t v = 0; v < slice.size(); ++v) {
    slice[v] = std::min(slice[v], extra[v]);
  }
}

graph::Weight LandmarkOracle::budget(graph::Weight ub) const {
  return ub * static_cast<graph::Weight>(1.0 + config_.prune_slack);
}

}  // namespace g500::serve
