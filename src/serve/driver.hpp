// Open-loop workload driver: feed a deterministic serve::Workload through
// a DistanceService tick by tick, then drain, and collect the SLO report
// a serving benchmark needs.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/builder.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "simmpi/comm.hpp"

namespace g500::serve {

/// Outcome of one workload run on one rank.  Counters and answers are
/// identical across ranks; wall_seconds is the max over ranks (agreed via
/// allreduce at the end of the run).
struct ServingRunReport {
  ServiceMetrics metrics;
  std::vector<Answer> answers;  ///< kept only when requested
  std::uint64_t ticks_run = 0;  ///< arrival horizon plus the drain tail
  double wall_seconds = 0.0;    ///< serving loop only (graph build excluded)

  /// Wire bytes all ranks moved during the serving loop (comm-stats delta
  /// summed over ranks) — the cost side of the oracle's pruning ledger.
  std::uint64_t wire_bytes = 0;
  /// Engine work summed over ranks and over every wave of the run.
  std::uint64_t relax_generated = 0;
  std::uint64_t relax_sent = 0;
  std::uint64_t pruned_expand = 0;
  std::uint64_t pruned_apply = 0;

  [[nodiscard]] double throughput_qps() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(metrics.answered) / wall_seconds
               : 0.0;
  }
};

/// Run `workload` through a fresh service built from `config`.  SPMD:
/// call from every rank.  When `service` is non-null it is used instead
/// of a fresh one (warm-cache runs); its metrics are reset first.
[[nodiscard]] ServingRunReport run_workload(simmpi::Comm& comm,
                                            const graph::DistGraph& g,
                                            const ServeConfig& config,
                                            const Workload& workload,
                                            bool keep_answers = false,
                                            DistanceService* service = nullptr);

}  // namespace g500::serve
