// Open-loop workload driver: feed a deterministic serve::Workload through
// a DistanceService tick by tick, then drain, and collect the SLO report
// a serving benchmark needs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/builder.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "simmpi/comm.hpp"

namespace g500::serve {

/// Outcome of one workload run on one rank.  Counters and answers are
/// identical across ranks; wall_seconds is the max over ranks (agreed via
/// allreduce at the end of the run).
struct ServingRunReport {
  ServiceMetrics metrics;
  std::vector<Answer> answers;  ///< kept only when requested
  std::uint64_t ticks_run = 0;  ///< arrival horizon plus the drain tail
  double wall_seconds = 0.0;    ///< serving loop only (graph build excluded)
  /// Graph version the service ended the run on (every answer carries the
  /// version it was computed against; this is the final one).
  std::uint64_t graph_version = 0;

  /// How every query of the workload ultimately ended plus the
  /// retry/breaker audit trail.  run_workload fills the outcome counters
  /// (one attempt, no faults); run_workload_resilient fills everything.
  AvailabilityStats availability;

  /// Wire bytes all ranks moved during the serving loop (comm-stats delta
  /// summed over ranks) — the cost side of the oracle's pruning ledger.
  std::uint64_t wire_bytes = 0;
  /// Engine work summed over ranks and over every wave of the run.
  std::uint64_t relax_generated = 0;
  std::uint64_t relax_sent = 0;
  std::uint64_t pruned_expand = 0;
  std::uint64_t pruned_apply = 0;

  [[nodiscard]] double throughput_qps() const noexcept {
    return wall_seconds > 0.0
               ? static_cast<double>(metrics.answered) / wall_seconds
               : 0.0;
  }
};

/// Run `workload` through a fresh service built from `config`.  SPMD:
/// call from every rank.  When `service` is non-null it is used instead
/// of a fresh one (warm-cache runs); its metrics are reset first.
[[nodiscard]] ServingRunReport run_workload(simmpi::Comm& comm,
                                            const graph::DistGraph& g,
                                            const ServeConfig& config,
                                            const Workload& workload,
                                            bool keep_answers = false,
                                            DistanceService* service = nullptr);

/// Knobs of the fault-tolerant workload driver.
struct ResilientServeOptions {
  /// Hard cap on World::run launches (a recurring fault plan must not
  /// spin forever).  When the budget runs out, every query still
  /// unresolved is counted as failed in the availability block.
  int max_attempts = 32;

  bool keep_answers = false;

  /// Caller-owned oracle persistence slots, one per rank (nullptr = the
  /// driver uses private slots that die with the call).  A first run
  /// populates them; a later run over the same graph/config adopts them
  /// and skips the oracle precompute waves entirely.
  std::vector<OracleSliceStore>* oracle_stores = nullptr;
};

/// Fault-tolerant variant of run_workload: owns the World::run retry loop
/// (the simulated machine cannot survive a fault in place), so it must be
/// called from OUTSIDE World::run.  Crashed attempts restart the world,
/// rebuild the graph via `build_graph`, re-admit the unresolved backlog,
/// and resume the tick loop from the first un-harvested tick; the wave
/// that was in flight resumes from its last checkpoint (bit-identical to
/// an undisturbed run), retries are paced by config.fault.backoff, keys
/// that exhaust config.fault.max_wave_attempts are abandoned (their
/// queries degrade or fail), and crash streaks drive the circuit breaker.
/// The returned metrics/availability merge every attempt; wire_bytes
/// includes the graph rebuild traffic of each attempt.
[[nodiscard]] ServingRunReport run_workload_resilient(
    simmpi::World& world,
    const std::function<graph::DistGraph(simmpi::Comm&)>& build_graph,
    const ServeConfig& config, const Workload& workload,
    const ResilientServeOptions& options = {});

}  // namespace g500::serve
