#include "serve/kernels.hpp"

#include <algorithm>

#include "core/components.hpp"
#include "core/kcore.hpp"
#include "core/remote.hpp"
#include "util/timer.hpp"

namespace g500::serve {

std::string_view kernel_name(AnalyticsKernel kernel) {
  switch (kernel) {
    case AnalyticsKernel::kPageRank:
      return "pagerank";
    case AnalyticsKernel::kKCore:
      return "kcore";
    case AnalyticsKernel::kComponents:
      return "components";
    case AnalyticsKernel::kReachability:
      return "reachability";
  }
  return "unknown";
}

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h = seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

namespace {

/// Digest a gathered global result vector (trivially copyable element
/// bytes in vertex order — what a sequential reference hashes too).
template <typename T>
std::uint64_t digest_vector(const std::vector<T>& full) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a(full.data(), full.size() * sizeof(T));
}

}  // namespace

AnalyticsOutcome KernelRegistry::run(simmpi::Comm& comm,
                                     const graph::DistGraph& g,
                                     AnalyticsKernel kernel,
                                     graph::VertexId root,
                                     graph::VertexId target,
                                     LandmarkOracle* oracle,
                                     std::uint64_t iter_budget) const {
  AnalyticsOutcome out;
  util::Timer timer;
  switch (kernel) {
    case AnalyticsKernel::kPageRank: {
      core::PageRankConfig cfg = config_.pagerank;
      if (iter_budget > 0) cfg.max_iters = std::min(cfg.max_iters, iter_budget);
      core::PageRankStats stats;
      const std::vector<double> mine = core::pagerank(comm, g, cfg, &stats);
      const std::vector<double> full = comm.allgatherv(mine);
      out.digest = digest_vector(full);
      double mass = 0.0;
      for (const auto v : full) mass += v;
      out.value = mass;
      out.truncated = iter_budget > 0 &&
                      iter_budget < config_.pagerank.max_iters &&
                      !stats.converged;
      out.rounds = stats.iterations;
      out.items_sent = stats.contribs_gathered;
      out.items_applied = stats.iterations * g.csr.num_edges();
      break;
    }
    case AnalyticsKernel::kKCore: {
      core::KCoreStats stats;
      const std::vector<std::uint32_t> mine = core::kcore(comm, g, &stats);
      const std::vector<std::uint32_t> full = comm.allgatherv(mine);
      out.digest = digest_vector(full);
      out.value = static_cast<double>(stats.max_core);
      out.rounds = stats.rounds;
      out.items_sent = stats.decrements_sent;
      out.items_applied = stats.decrements_applied;
      break;
    }
    case AnalyticsKernel::kComponents: {
      core::ComponentsStats stats;
      const std::vector<graph::VertexId> mine =
          core::connected_components(comm, g, &stats);
      const std::vector<graph::VertexId> full = comm.allgatherv(mine);
      out.digest = digest_vector(full);
      std::uint64_t components = 0;
      for (std::size_t v = 0; v < full.size(); ++v) {
        if (full[v] == v) ++components;
      }
      out.value = static_cast<double>(components);
      out.rounds = stats.rounds;
      out.items_sent = stats.labels_sent;
      out.items_applied = stats.labels_applied;
      break;
    }
    case AnalyticsKernel::kReachability: {
      bool reachable = false;
      bool settled = false;
      if (oracle != nullptr) {
        // One collective row fetch; a landmark that reaches exactly one
        // endpoint proves disconnection, an exact verdict proves the
        // answer outright — either way the BFS wave is skipped.
        const auto rows = oracle->landmark_distances({root, target});
        const auto bounds = oracle->bounds(rows[0], rows[1], root, target);
        if (bounds.unreachable) {
          reachable = false;
          settled = true;
          out.oracle_short_circuit = true;
        } else if (bounds.exact) {
          reachable = true;  // exact and not unreachable => finite ub
          settled = true;
          out.oracle_short_circuit = true;
        }
      }
      if (!settled) {
        core::BfsStats stats;
        const core::BfsResult mine =
            core::bfs(comm, g, root, config_.bfs, &stats);
        const std::vector<std::uint32_t> level = core::fetch_values(
            comm, g.part, std::vector<graph::VertexId>{target}, mine.level);
        reachable = level[0] != core::BfsResult::kNoLevel;
        out.rounds = stats.rounds;
        out.items_sent = stats.messages_sent;
        out.items_applied = stats.edges_scanned;
      }
      out.value = reachable ? 1.0 : 0.0;
      const std::uint64_t canon[3] = {root, target,
                                      reachable ? std::uint64_t{1} : 0};
      out.digest = fnv1a(canon, sizeof(canon));
      break;
    }
  }
  out.seconds = timer.seconds();
  return out;
}

}  // namespace g500::serve
