#include "serve/json.hpp"

#include "core/json.hpp"  // core::to_json(Log2Histogram)

namespace g500::serve {

namespace {

/// Histogram + its interpolated SLO percentiles in one block.
util::Json hist_with_percentiles(const util::Log2Histogram& h) {
  util::Json j = core::to_json(h);
  const auto p = h.slo_percentiles();
  j["p50"] = p[0];
  j["p90"] = p[1];
  j["p99"] = p[2];
  return j;
}

}  // namespace

util::Json to_json(const ServeConfig& config) {
  util::Json j = util::Json::object();
  j["schema_version"] = kServingSchemaVersion;
  j["queue_depth"] = static_cast<std::uint64_t>(config.queue_depth);
  j["batch_size"] = static_cast<std::uint64_t>(config.batch_size);
  j["max_wait_ticks"] = config.max_wait_ticks;
  j["shed_policy"] = config.shed_policy == ShedPolicy::kRejectNew
                         ? "reject_new"
                         : "drop_oldest";
  j["slo_ticks"] = config.slo_ticks;
  j["cache_budget_bytes"] =
      static_cast<std::uint64_t>(config.cache_budget_bytes);
  util::Json facilities = util::Json::array();
  for (const auto f : config.facilities) facilities.push_back(f);
  j["facilities"] = std::move(facilities);
  j["sssp"] = core::to_json(config.sssp);
  util::Json oracle = util::Json::object();
  oracle["num_landmarks"] =
      static_cast<std::uint64_t>(config.oracle.num_landmarks);
  oracle["prune_slack"] = config.oracle.prune_slack;
  j["oracle"] = std::move(oracle);
  util::Json adaptive = util::Json::object();
  adaptive["enabled"] = config.adaptive.enabled;
  adaptive["min_batch"] = static_cast<std::uint64_t>(config.adaptive.min_batch);
  adaptive["max_batch"] = static_cast<std::uint64_t>(config.adaptive.max_batch);
  adaptive["min_wait_ticks"] = config.adaptive.min_wait_ticks;
  adaptive["max_wait_ticks"] = config.adaptive.max_wait_ticks;
  adaptive["target_wait_ticks"] = config.adaptive.target_wait_ticks;
  adaptive["ewma_alpha"] = config.adaptive.ewma_alpha;
  adaptive["adjust_period"] = config.adaptive.adjust_period;
  j["adaptive"] = std::move(adaptive);
  j["shed_log_cap"] = static_cast<std::uint64_t>(config.shed_log_cap);
  util::Json fault = util::Json::object();
  fault["enabled"] = config.fault.enabled;
  fault["checkpoint_interval"] = config.fault.checkpoint_interval;
  fault["max_wave_attempts"] =
      static_cast<std::int64_t>(config.fault.max_wave_attempts);
  fault["degraded_answers"] = config.fault.degraded_answers;
  fault["breaker_threshold"] =
      static_cast<std::int64_t>(config.fault.breaker_threshold);
  fault["breaker_cooldown_ticks"] = config.fault.breaker_cooldown_ticks;
  fault["deadline_buckets_per_tick"] = config.fault.deadline_buckets_per_tick;
  util::Json backoff = util::Json::object();
  backoff["base_seconds"] = config.fault.backoff.base_seconds;
  backoff["multiplier"] = config.fault.backoff.multiplier;
  backoff["max_seconds"] = config.fault.backoff.max_seconds;
  backoff["jitter"] = config.fault.backoff.jitter;
  backoff["seed"] = config.fault.backoff.seed;
  fault["backoff"] = std::move(backoff);
  j["fault"] = std::move(fault);
  util::Json analytics = util::Json::object();
  analytics["queue_depth"] =
      static_cast<std::uint64_t>(config.analytics_queue_depth);
  analytics["slo_ticks"] = config.analytics_slo_ticks;
  analytics["defer_ticks"] = config.analytics_defer_ticks;
  analytics["deadline_iters_per_tick"] = config.deadline_iters_per_tick;
  util::Json pagerank = util::Json::object();
  pagerank["damping"] = config.analytics.pagerank.damping;
  pagerank["max_iters"] = config.analytics.pagerank.max_iters;
  pagerank["tolerance"] = config.analytics.pagerank.tolerance;
  analytics["pagerank"] = std::move(pagerank);
  j["analytics"] = std::move(analytics);
  j["point_cache_cap"] = static_cast<std::uint64_t>(config.point_cache_cap);
  j["graph_version"] = config.graph_version;
  return j;
}

util::Json to_json(const WorkloadConfig& config) {
  util::Json j = util::Json::object();
  j["schema_version"] = kServingSchemaVersion;
  j["seed"] = config.seed;
  j["ticks"] = config.ticks;
  j["arrivals_per_tick"] = config.arrivals_per_tick;
  j["zipf_s"] = config.zipf_s;
  j["nearest_fraction"] = config.nearest_fraction;
  j["deadline_ticks"] = config.deadline_ticks;
  j["analytics_fraction"] = config.analytics_fraction;
  util::Json weights = util::Json::array();
  for (const auto w : config.kernel_weights) weights.push_back(w);
  j["kernel_weights"] = std::move(weights);
  j["analytics_deadline_ticks"] = config.analytics_deadline_ticks;
  j["root_universe"] = static_cast<std::uint64_t>(config.roots.size());
  j["num_vertices"] = config.num_vertices;
  return j;
}

util::Json to_json(const AvailabilityStats& stats) {
  util::Json j = util::Json::object();
  j["served"] = stats.served;
  j["degraded"] = stats.degraded;
  j["deadline_exceeded"] = stats.deadline_exceeded;
  j["failed"] = stats.failed;
  j["shed"] = stats.shed;
  j["availability"] = stats.availability();
  j["attempts"] = stats.attempts;
  j["wave_retries"] = stats.wave_retries;
  j["waves_abandoned"] = stats.waves_abandoned;
  j["breaker_opened"] = stats.breaker_opened;
  j["breaker_half_opened"] = stats.breaker_half_opened;
  j["breaker_closed"] = stats.breaker_closed;
  j["recovery_ticks"] = stats.recovery_ticks;
  j["backoff_seconds"] = stats.backoff_seconds;
  j["oracle_restored"] = stats.oracle_restored;
  return j;
}

util::Json to_json(const CacheStats& stats) {
  util::Json j = util::Json::object();
  j["hits"] = stats.hits;
  j["misses"] = stats.misses;
  j["hit_rate"] = stats.hit_rate();
  j["inserts"] = stats.inserts;
  j["evictions"] = stats.evictions;
  j["rejected"] = stats.rejected;
  j["version_misses"] = stats.version_misses;
  j["resident_entries"] = static_cast<std::uint64_t>(stats.resident_entries);
  j["resident_bytes"] = static_cast<std::uint64_t>(stats.resident_bytes);
  j["capacity_entries"] = static_cast<std::uint64_t>(stats.capacity_entries);
  return j;
}

util::Json to_json(const ServiceMetrics& metrics) {
  util::Json j = util::Json::object();
  j["schema_version"] = kServingSchemaVersion;
  j["arrived"] = metrics.arrived;
  j["admitted"] = metrics.admitted;
  j["shed"] = metrics.shed;
  j["shed_rate"] =
      metrics.arrived == 0
          ? 0.0
          : static_cast<double>(metrics.shed) /
                static_cast<double>(metrics.arrived);
  j["answered"] = metrics.answered;
  j["slo_violations"] = metrics.slo_violations;
  j["batches"] = metrics.batches;
  j["waves"] = metrics.waves;
  j["pruned_waves"] = metrics.pruned_waves;
  j["fetch_rounds"] = metrics.fetch_rounds;
  j["ticks"] = metrics.ticks;
  j["oracle_exact"] = metrics.oracle_exact;
  j["oracle_unreachable"] = metrics.oracle_unreachable;
  j["adaptive_adjustments"] = metrics.adaptive_adjustments;
  j["deadline_exceeded"] = metrics.deadline_exceeded;
  j["degraded"] = metrics.degraded;
  j["failed_queries"] = metrics.failed_queries;
  j["shed_log_overflow"] = metrics.shed_log_overflow;
  j["deadline_truncated_waves"] = metrics.deadline_truncated_waves;
  j["wave_resumes"] = metrics.wave_resumes;
  j["breaker_half_opened"] = metrics.breaker_half_opened;
  j["breaker_closed"] = metrics.breaker_closed;
  j["wave_seconds"] = metrics.wave_seconds;
  j["fetch_seconds"] = metrics.fetch_seconds;
  j["oracle_seconds"] = metrics.oracle_seconds;
  j["wave_relax_generated"] = metrics.wave_relax_generated;
  j["wave_relax_sent"] = metrics.wave_relax_sent;
  j["wave_pruned_expand"] = metrics.wave_pruned_expand;
  j["wave_pruned_apply"] = metrics.wave_pruned_apply;
  j["oracle_landmarks"] = metrics.oracle_landmarks;
  j["oracle_precompute_waves"] = metrics.oracle_precompute_waves;
  j["oracle_precompute_seconds"] = metrics.oracle_precompute_seconds;
  j["latency_ticks"] = hist_with_percentiles(metrics.latency_ticks);
  j["batch_occupancy"] = hist_with_percentiles(metrics.batch_occupancy);
  j["queue_depth"] = hist_with_percentiles(metrics.queue_depth);
  j["cache"] = to_json(metrics.cache);
  // Per-class carve-out: the top-level counters cover BOTH classes; the
  // distance class is the difference (slo_violations is already
  // distance-only — the analytics class counts against its own target).
  util::Json classes = util::Json::object();
  util::Json dist = util::Json::object();
  dist["arrived"] = metrics.arrived - metrics.analytics_arrived;
  dist["admitted"] = metrics.admitted - metrics.analytics_admitted;
  dist["shed"] = metrics.shed - metrics.analytics_shed;
  dist["answered"] = metrics.answered - metrics.analytics_answered;
  dist["slo_violations"] = metrics.slo_violations;
  dist["deadline_exceeded"] =
      metrics.deadline_exceeded - metrics.analytics_deadline_exceeded;
  dist["degraded"] = metrics.degraded - metrics.analytics_degraded;
  dist["failed"] = metrics.failed_queries - metrics.analytics_failed;
  dist["latency_ticks"] = hist_with_percentiles(metrics.latency_ticks);
  classes["distance"] = std::move(dist);
  util::Json ana = util::Json::object();
  ana["arrived"] = metrics.analytics_arrived;
  ana["admitted"] = metrics.analytics_admitted;
  ana["shed"] = metrics.analytics_shed;
  ana["answered"] = metrics.analytics_answered;
  ana["slo_violations"] = metrics.analytics_slo_violations;
  ana["deadline_exceeded"] = metrics.analytics_deadline_exceeded;
  ana["degraded"] = metrics.analytics_degraded;
  ana["failed"] = metrics.analytics_failed;
  ana["jobs"] = metrics.analytics_jobs;
  ana["memo_hits"] = metrics.analytics_memo_hits;
  ana["deferred_ticks"] = metrics.analytics_deferred_ticks;
  ana["reachability_cutoffs"] = metrics.reachability_cutoffs;
  util::Json per_kernel = util::Json::object();
  for (std::size_t k = 0; k < metrics.kernel_jobs.size(); ++k) {
    per_kernel[std::string(kernel_name(static_cast<AnalyticsKernel>(k)))] =
        metrics.kernel_jobs[k];
  }
  ana["kernel_jobs"] = std::move(per_kernel);
  ana["rounds"] = metrics.analytics_rounds;
  ana["items_sent"] = metrics.analytics_items_sent;
  ana["items_applied"] = metrics.analytics_items_applied;
  ana["seconds"] = metrics.analytics_seconds;
  ana["latency_ticks"] = hist_with_percentiles(metrics.analytics_latency_ticks);
  classes["analytics"] = std::move(ana);
  j["classes"] = std::move(classes);
  util::Json point = util::Json::object();
  point["hits"] = metrics.point_cache_hits;
  point["misses"] = metrics.point_cache_misses;
  point["inserts"] = metrics.point_cache_inserts;
  point["evictions"] = metrics.point_cache_evictions;
  point["persisted"] = metrics.point_persisted;
  point["restored"] = metrics.point_restored;
  j["point_cache"] = std::move(point);
  util::Json inval = util::Json::object();
  inval["graph_updates"] = metrics.graph_updates;
  inval["update_edges_applied"] = metrics.update_edges_applied;
  inval["roots_invalidated"] = metrics.roots_invalidated;
  inval["roots_retained"] = metrics.roots_retained;
  inval["points_invalidated"] = metrics.points_invalidated;
  inval["points_retained"] = metrics.points_retained;
  inval["memo_invalidated"] = metrics.memo_invalidated;
  inval["slices_refreshed"] = metrics.slices_refreshed;
  inval["wholesale_flushes"] = metrics.wholesale_flushes;
  inval["version_misses"] = metrics.cache.version_misses;
  j["invalidation"] = std::move(inval);
  return j;
}

util::Json to_json(const ServingRunReport& report) {
  util::Json j = util::Json::object();
  j["schema_version"] = kServingSchemaVersion;
  j["ticks_run"] = report.ticks_run;
  j["wall_seconds"] = report.wall_seconds;
  j["graph_version"] = report.graph_version;
  j["throughput_qps"] = report.throughput_qps();
  j["wire_bytes"] = report.wire_bytes;
  j["relax_generated"] = report.relax_generated;
  j["relax_sent"] = report.relax_sent;
  j["pruned_expand"] = report.pruned_expand;
  j["pruned_apply"] = report.pruned_apply;
  j["metrics"] = to_json(report.metrics);
  j["availability"] = to_json(report.availability);
  return j;
}

}  // namespace g500::serve
