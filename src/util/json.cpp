#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <system_error>

namespace g500::util {

namespace {

constexpr int kMaxParseDepth = 256;

[[noreturn]] void type_error(const char* what) {
  throw std::logic_error(std::string("json: ") + what);
}

}  // namespace

Json::Json(unsigned long long value) noexcept {
  if (value <= static_cast<unsigned long long>(
                   std::numeric_limits<std::int64_t>::max())) {
    type_ = Type::kInt;
    int_ = static_cast<std::int64_t>(value);
  } else {
    type_ = Type::kUint;
    uint_ = value;
  }
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("operator[] on a non-object");
  for (auto& [k, v] : object_) {
    if (k == key) return v;
  }
  object_.emplace_back(key, Json());
  return object_.back().second;
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) type_error("at(key) on a non-object");
  for (const auto& [k, v] : object_) {
    if (k == key) return v;
  }
  throw std::out_of_range("json: missing key '" + key + "'");
}

bool Json::contains(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("members() on a non-object");
  return object_;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("push_back on a non-array");
  array_.push_back(std::move(value));
}

const Json& Json::at(std::size_t index) const {
  if (type_ != Type::kArray) type_error("at(index) on a non-array");
  return array_.at(index);
}

const std::vector<Json>& Json::elements() const {
  if (type_ != Type::kArray) type_error("elements() on a non-array");
  return array_;
}

std::size_t Json::size() const noexcept {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  return 0;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("as_bool on a non-bool");
  return bool_;
}

double Json::as_double() const {
  switch (type_) {
    case Type::kInt:
      return static_cast<double>(int_);
    case Type::kUint:
      return static_cast<double>(uint_);
    case Type::kDouble:
      return double_;
    default:
      type_error("as_double on a non-number");
  }
}

std::int64_t Json::as_int64() const {
  if (type_ == Type::kInt) return int_;
  type_error("as_int64 on a non-integer");
}

std::uint64_t Json::as_uint64() const {
  if (type_ == Type::kUint) return uint_;
  if (type_ == Type::kInt && int_ >= 0) return static_cast<std::uint64_t>(int_);
  type_error("as_uint64 on a negative or non-integer value");
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("as_string on a non-string");
  return string_;
}

bool operator==(const Json& a, const Json& b) {
  // Numbers compare across integer/double storage by value, which is what
  // the round-trip tests need; everything else compares structurally.
  if (a.is_number() && b.is_number()) {
    if (a.type_ == Json::Type::kDouble || b.type_ == Json::Type::kDouble) {
      return a.as_double() == b.as_double();
    }
    if (a.type_ == Json::Type::kUint || b.type_ == Json::Type::kUint) {
      return (a.type_ == Json::Type::kInt ? a.int_ >= 0 : true) &&
             (b.type_ == Json::Type::kInt ? b.int_ >= 0 : true) &&
             a.as_uint64() == b.as_uint64();
    }
    return a.int_ == b.int_;
  }
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Json::Type::kNull:
      return true;
    case Json::Type::kBool:
      return a.bool_ == b.bool_;
    case Json::Type::kString:
      return a.string_ == b.string_;
    case Json::Type::kArray:
      return a.array_ == b.array_;
    case Json::Type::kObject:
      return a.object_ == b.object_;
    default:
      return false;
  }
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

std::string json_double(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof(buf), value);
  std::string out(buf, res.ptr);
  // Keep doubles recognizable as doubles: to_chars emits "1" for 1.0.
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d),
               ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kUint:
      out += std::to_string(uint_);
      break;
    case Type::kDouble:
      out += json_double(double_);
      break;
    case Type::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      break;
    case Type::kArray: {
      out += '[';
      bool first = true;
      for (const auto& v : array_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        v.write(out, indent, depth + 1);
      }
      if (!array_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += json_escape(k);
        out += indent < 0 ? "\":" : "\": ";
        v.write(out, indent, depth + 1);
      }
      if (!object_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

void Json::dump_to(std::ostream& out, int indent) const {
  out << dump(indent);
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse() {
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxParseDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value(depth + 1);
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("raw control character in string");
        }
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          append_utf8(out, code);
          break;
        }
        default:
          fail("unknown escape character");
      }
    }
  }

  static void append_utf8(std::string& out, unsigned code) {
    // Basic-plane code points only (surrogate pairs are passed through as
    // two 3-byte sequences; the telemetry writer never emits them).
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("bad number");
    if (integral) {
      std::int64_t i = 0;
      auto res = std::from_chars(tok.data(), tok.data() + tok.size(), i);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        return Json(i);
      }
      std::uint64_t u = 0;
      res = std::from_chars(tok.data(), tok.data() + tok.size(), u);
      if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
        return Json(u);
      }
      // Falls through to double for out-of-range integers.
    }
    double d = 0.0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      fail("bad number");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse(); }

}  // namespace g500::util
