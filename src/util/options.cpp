#include "util/options.hpp"

#include <stdexcept>

namespace g500::util {

namespace {
bool looks_like_flag(const std::string& arg) {
  return arg.size() > 2 && arg[0] == '-' && arg[1] == '-';
}
}  // namespace

Options::Options(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` if the next token is not itself a flag, else boolean.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Options::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects an integer, got '" + it->second +
                                "'");
  }
}

double Options::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name +
                                " expects a number, got '" + it->second + "'");
  }
}

bool Options::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes" ||
         it->second == "on";
}

}  // namespace g500::util
