#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <sstream>

namespace g500::util {

namespace {
std::size_t bucket_index(std::uint64_t value) {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value) - 1);
}

// Inclusive bounds of bucket i.  The top bucket (i == 63) spans up to
// 2^64 - 1; computing its upper bound as (1 << 64) - 1 would be shift UB,
// so it saturates instead.
std::uint64_t bucket_lower(std::size_t i) {
  return i == 0 ? 0 : std::uint64_t{1} << i;
}

std::uint64_t bucket_upper(std::size_t i) {
  if (i + 1 >= 64) return std::numeric_limits<std::uint64_t>::max();
  return (std::uint64_t{1} << (i + 1)) - 1;
}
}  // namespace

void Log2Histogram::add(std::uint64_t value, std::uint64_t weight) {
  const std::size_t idx = bucket_index(value);
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += weight;
  count_ += weight;
  sum_ += value * weight;
  max_ = std::max(max_, value);
}

void Log2Histogram::merge(const Log2Histogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double Log2Histogram::mean() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Log2Histogram::quantile_upper_bound(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) {
    // The minimum lives in the first non-empty bucket; report its lower
    // bound (a truncating rank would skip to that bucket's upper bound).
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] > 0) return bucket_lower(i);
    }
    return 0;
  }
  // Ceiling rank: the q-th sample is the smallest k with k >= q * count,
  // so at least q of the mass is <= its bucket's upper bound.  Truncation
  // would land one sample early (the median of 3 samples would resolve to
  // the 1st sample's bucket).
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) {
      return i == 0 ? 1 : bucket_upper(i);
    }
  }
  return max_;
}

double Log2Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target mass in [0, count]; walk the cumulative distribution and
  // interpolate linearly inside the bin that crosses it.
  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      const double lo = i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i));
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double fraction =
          (target - before) / static_cast<double>(buckets_[i]);
      const double value = lo + fraction * (hi - lo);
      return std::min(value, static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::vector<double> Log2Histogram::slo_percentiles() const {
  return {quantile(0.50), quantile(0.90), quantile(0.99)};
}

std::string Log2Histogram::to_string(std::size_t bar_width) const {
  std::ostringstream out;
  std::uint64_t peak = 0;
  for (auto b : buckets_) peak = std::max(peak, b);
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t lo = bucket_lower(i);
    const std::uint64_t hi = bucket_upper(i);
    const auto bar = static_cast<std::size_t>(
        peak == 0 ? 0
                  : (static_cast<double>(buckets_[i]) /
                     static_cast<double>(peak)) *
                        static_cast<double>(bar_width));
    out << '[' << lo << ", " << hi << "]\t" << buckets_[i] << '\t'
        << std::string(bar, '#') << '\n';
  }
  return out.str();
}

}  // namespace g500::util
