#include "util/buildinfo.hpp"

#include <ctime>

#include <unistd.h>

#ifndef G500_GIT_DESCRIBE
#define G500_GIT_DESCRIBE "unknown"
#endif
#ifndef G500_BUILD_TYPE
#define G500_BUILD_TYPE "unknown"
#endif

namespace g500::util {

/// Bump when the manifest block changes incompatibly (docs/telemetry.md).
constexpr int kManifestSchemaVersion = 1;

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.git_describe = G500_GIT_DESCRIBE;
    b.build_type = G500_BUILD_TYPE;
#if defined(__VERSION__) && defined(__clang__)
    b.compiler = std::string("clang ") + __VERSION__;
#elif defined(__VERSION__)
    b.compiler = std::string("gcc ") + __VERSION__;
#else
    b.compiler = "unknown";
#endif
    b.cxx_standard = static_cast<int>(__cplusplus / 100 % 100) + 2000;
    return b;
  }();
  return info;
}

std::string host_name() {
  char buf[256] = {};
  if (gethostname(buf, sizeof(buf) - 1) == 0 && buf[0] != '\0') {
    return buf;
  }
  return "unknown";
}

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

Json run_manifest() {
  const BuildInfo& b = build_info();
  Json m = Json::object();
  m["schema_version"] = kManifestSchemaVersion;
  m["host"] = host_name();
  m["timestamp_utc"] = utc_timestamp();
  m["git_describe"] = b.git_describe;
  m["build_type"] = b.build_type;
  m["compiler"] = b.compiler;
  m["cxx_standard"] = b.cxx_standard;
  return m;
}

}  // namespace g500::util
