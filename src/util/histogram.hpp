// Power-of-two histogram for skewed distributions (degrees, bucket sizes,
// message sizes).  Bucket k counts samples in [2^k, 2^(k+1)), with bucket 0
// also absorbing the value 0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace g500::util {

class Log2Histogram {
 public:
  void add(std::uint64_t value, std::uint64_t weight = 1);

  /// Merge another histogram into this one (used to aggregate per-rank stats).
  void merge(const Log2Histogram& other);

  [[nodiscard]] std::uint64_t total_count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t total_sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept;

  /// Smallest v such that >= q of the mass is <= v, estimated from buckets
  /// (upper bucket bound).  q in [0,1].  The rank is ceil(q * count) — the
  /// median of 3 samples resolves to the 2nd sample's bucket — and q = 0
  /// reports the lower bound of the first non-empty bucket (the minimum's
  /// bucket).  The top bucket's upper bound saturates at 2^64 - 1.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const;

  /// Interpolated quantile estimate: mass is assumed uniform within each
  /// power-of-two bin (the Prometheus histogram_quantile convention), so
  /// the result is a double inside the bin holding the q-th sample,
  /// clamped to the observed maximum.  Error is bounded by the bin width.
  /// q in [0,1]; 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  /// The three SLO percentiles every latency report carries, in order
  /// {p50, p90, p99} (each = quantile(q)).
  [[nodiscard]] std::vector<double> slo_percentiles() const;

  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

  /// Multi-line ASCII rendering: one row per non-empty bucket with a bar.
  [[nodiscard]] std::string to_string(std::size_t bar_width = 40) const;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace g500::util
