#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace g500::util {

std::string si_format(double value, int precision) {
  static constexpr struct {
    double threshold;
    const char* suffix;
  } kScales[] = {
      {1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
  };
  std::ostringstream out;
  out << std::setprecision(precision) << std::fixed;
  const double mag = std::fabs(value);
  for (const auto& s : kScales) {
    if (mag >= s.threshold) {
      out << value / s.threshold << s.suffix;
      return out.str();
    }
  }
  out << value;
  return out.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  rows_.back().reserve(headers_.size());
  return *this;
}

Table& Table::add(const std::string& value) {
  rows_.back().push_back(value);
  return *this;
}

Table& Table::add(const char* value) { return add(std::string(value)); }

Table& Table::add(std::uint64_t value) { return add(std::to_string(value)); }

Table& Table::add(std::int64_t value) { return add(std::to_string(value)); }

Table& Table::add(int value) { return add(std::to_string(value)); }

Table& Table::add(double value, int precision) {
  std::ostringstream out;
  out << std::setprecision(precision) << std::fixed << value;
  return add(out.str());
}

Table& Table::add_si(double value, int precision) {
  return add(si_format(value, precision));
}

void Table::print(std::ostream& out, const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << cell;
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

std::string Table::to_string(const std::string& title) const {
  std::ostringstream out;
  print(out, title);
  return out.str();
}

Json to_json(const Table& table) {
  Json j = Json::object();
  Json headers = Json::array();
  for (const auto& h : table.headers()) headers.push_back(h);
  j["headers"] = std::move(headers);
  Json rows = Json::array();
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    Json row = Json::array();
    for (const auto& cell : table.row_cells(i)) row.push_back(cell);
    rows.push_back(std::move(row));
  }
  j["rows"] = std::move(rows);
  return j;
}

}  // namespace g500::util
