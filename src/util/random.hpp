// Deterministic pseudo-random primitives used throughout the library.
//
// Everything in the Graph 500 reproduction must be reproducible across runs
// and across simulated-rank counts: the edge list of a (scale, seed) graph is
// a pure function of those inputs, independent of which rank materializes
// which slice.  To get that property we avoid stateful engines for data
// generation and instead use *counter-based* constructions: a strong 64-bit
// mixing function applied to (seed, stream, counter) tuples.  A stateful
// SplitMix64 engine is provided for places where sequential draws are fine
// (root sampling, shuffles).
#pragma once

#include <cstdint>
#include <cstring>
#include <limits>

namespace g500::util {

/// Finalizing mixer from SplitMix64 / MurmurHash3.  Bijective on 64 bits,
/// passes BigCrush as the core of SplitMix64.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Counter-based hash of two 64-bit words.  Used as a stateless RNG:
/// hash64(seed, counter) yields an i.i.d.-looking stream indexed by counter.
constexpr std::uint64_t hash64(std::uint64_t a, std::uint64_t b) noexcept {
  // Weyl-style combination before mixing keeps (a,b) -> (b,a) collisions away.
  return mix64(a * 0x9e3779b97f4a7c15ULL + mix64(b + 0x2545f4914f6cdd1dULL));
}

/// Three-word variant for keys like (seed, stream, counter).
constexpr std::uint64_t hash64(std::uint64_t a, std::uint64_t b,
                               std::uint64_t c) noexcept {
  return hash64(hash64(a, b), c);
}

/// Checksum a byte range with the same mixing core: fold 8-byte words (and
/// a zero-padded tail) through hash64, seeded so ranges can be chained
/// (pass the previous checksum as `seed`).  Length is mixed in, so a
/// truncated buffer never collides with its prefix.  Used for alltoallv
/// payload verification and checkpoint integrity.
inline std::uint64_t hash_bytes(const void* data, std::size_t size,
                                std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = hash64(seed, size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h = hash64(h, w);
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, p + i, size - i);
    h = hash64(h, w);
  }
  return h;
}

/// Map a 64-bit hash to a double in [0, 1).  Uses the top 53 bits so the
/// result is exactly representable and never 1.0.
constexpr double to_unit_double(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Map a 64-bit hash to a float in [0, 1).  Top 24 bits; never 1.0f.
constexpr float to_unit_float(std::uint64_t h) noexcept {
  return static_cast<float>(h >> 40) * 0x1.0p-24f;
}

/// Minimal stateful engine (SplitMix64).  Satisfies UniformRandomBitGenerator
/// so it can drive <random> distributions and std::shuffle.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    return mix64(state_);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept { return to_unit_double((*this)()); }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift reduction
  /// (slight modulo bias < 2^-64 * bound, irrelevant at our sizes).
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    const auto x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

 private:
  std::uint64_t state_;
};

}  // namespace g500::util
