// Dependency-free JSON document builder, writer and reader.
//
// The telemetry layer (docs/telemetry.md) serializes every run's counters
// to machine-readable reports, so numbers must survive the trip: doubles
// are written with the shortest representation that parses back to the
// identical bit pattern (std::to_chars), integers are kept as integers up
// to the full 64-bit range, and object keys preserve insertion order so
// two reports of the same run diff cleanly line-by-line.
//
// Policy for non-finite doubles: JSON has no NaN/Infinity, so they are
// serialized as null (the choice Chrome's trace viewer and most parsers
// tolerate best).  The parser accepts strict JSON only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace g500::util {

class Json {
 public:
  enum class Type {
    kNull,
    kBool,
    kInt,     ///< signed 64-bit integer
    kUint,    ///< unsigned 64-bit integer above int64 range
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Json() noexcept : type_(Type::kNull) {}
  Json(std::nullptr_t) noexcept : type_(Type::kNull) {}
  Json(bool value) noexcept : type_(Type::kBool), bool_(value) {}
  Json(int value) noexcept : type_(Type::kInt), int_(value) {}
  Json(long value) noexcept : type_(Type::kInt), int_(value) {}
  Json(long long value) noexcept : type_(Type::kInt), int_(value) {}
  Json(unsigned value) noexcept : Json(static_cast<unsigned long long>(value)) {}
  Json(unsigned long value) noexcept
      : Json(static_cast<unsigned long long>(value)) {}
  Json(unsigned long long value) noexcept;
  Json(double value) noexcept : type_(Type::kDouble), double_(value) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(std::string_view value)
      : type_(Type::kString), string_(value) {}

  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kInt || type_ == Type::kUint ||
           type_ == Type::kDouble;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }

  /// Object access: insert-or-get.  A null value silently becomes an
  /// object (builder ergonomics); any other type throws std::logic_error.
  Json& operator[](const std::string& key);
  /// Checked object lookup; throws std::out_of_range if absent.
  [[nodiscard]] const Json& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const noexcept;
  /// Object members in insertion order.
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const;

  /// Array access.
  void push_back(Json value);
  [[nodiscard]] const Json& at(std::size_t index) const;
  [[nodiscard]] const std::vector<Json>& elements() const;

  /// Elements of an array, members of an object, 0 otherwise.
  [[nodiscard]] std::size_t size() const noexcept;

  /// Typed reads; throw std::logic_error on a type mismatch.  as_double
  /// accepts any number; as_int64/as_uint64 accept integers that fit.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;
  [[nodiscard]] std::uint64_t as_uint64() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Serialize.  indent < 0: compact one-line form; indent >= 0: pretty
  /// form with that many spaces per level (reports use 2 so they diff).
  [[nodiscard]] std::string dump(int indent = -1) const;
  void dump_to(std::ostream& out, int indent = -1) const;

  /// Strict JSON parser; throws std::invalid_argument with a byte offset
  /// on malformed input.
  [[nodiscard]] static Json parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

/// Escape `s` as the contents of a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest decimal form of `value` that parses back bit-identically;
/// "null" for NaN/Infinity (the serialization policy of this module).
[[nodiscard]] std::string json_double(double value);

}  // namespace g500::util
