// Seeded exponential backoff with deterministic jitter.
//
// Every retry loop in the repo (the resilient benchmark driver, the
// recovery drill, the serving layer's wave retry) charges simulated
// backoff through this one policy so their semantics cannot drift.
// Jitter is counter-based — a pure function of (seed, attempt) — so a
// rerun of the same harness reproduces the same delays, yet two drivers
// seeded differently never stampede in sync.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/random.hpp"

namespace g500::util {

/// Exponential backoff schedule: attempt k (1-based) waits
/// min(base * multiplier^(k-1), max) scaled by a deterministic jitter
/// factor drawn from [1 - jitter, 1).  jitter = 0 disables randomization.
struct BackoffPolicy {
  double base_seconds = 1.0;   ///< delay charged for the first retry
  double multiplier = 2.0;     ///< growth factor per subsequent attempt
  double max_seconds = 60.0;   ///< cap on the un-jittered delay
  double jitter = 0.5;         ///< fraction of the delay subject to jitter
  std::uint64_t seed = 0x0b0f;  ///< jitter stream seed

  /// Delay for the k-th retry (attempt >= 1).  attempt == 0 returns 0.
  [[nodiscard]] double delay(std::uint64_t attempt) const noexcept {
    if (attempt == 0 || base_seconds <= 0.0) return 0.0;
    double d = base_seconds;
    for (std::uint64_t i = 1; i < attempt && d < max_seconds; ++i) {
      d *= multiplier;
    }
    d = std::min(d, max_seconds);
    if (jitter > 0.0) {
      const double u = to_unit_double(hash64(seed, attempt));
      d *= (1.0 - jitter) + jitter * u;
    }
    return d;
  }
};

}  // namespace g500::util
