// Aligned ASCII table printer used by the benchmark harnesses to emit the
// paper-style result rows (EXPERIMENTS.md copies these verbatim).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace g500::util {

class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Start a new row; subsequent add() calls fill it left to right.
  Table& row();

  Table& add(const std::string& value);
  Table& add(const char* value);
  Table& add(std::uint64_t value);
  Table& add(std::int64_t value);
  Table& add(int value);
  /// Doubles are formatted with `precision` significant decimal digits.
  Table& add(double value, int precision = 3);
  /// Scientific-style human formatting: 1234567 -> "1.23M".
  Table& add_si(double value, int precision = 3);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row_cells(std::size_t i) const {
    return rows_.at(i);
  }
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }

  /// Render with column alignment, header underline, optional title.
  void print(std::ostream& out, const std::string& title = {}) const;
  [[nodiscard]] std::string to_string(const std::string& title = {}) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with SI suffix (k/M/G/T) — e.g. 1.5e9 -> "1.50G".
std::string si_format(double value, int precision = 3);

/// Serialize a table as {"headers": [...], "rows": [[...], ...]} (cells as
/// the formatted strings the console prints) — the generic echo every
/// harness report embeds alongside its typed measurements.
[[nodiscard]] Json to_json(const Table& table);

}  // namespace g500::util
