// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace g500::util {

/// Monotonic wall-clock stopwatch.  Construction starts it.
class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulating timer for repeatedly-entered phases: `acc.add(t.seconds())`.
class Accumulator {
 public:
  void add(double seconds) noexcept {
    total_ += seconds;
    ++count_;
    if (seconds > max_) max_ = seconds;
  }

  [[nodiscard]] double total() const noexcept { return total_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : total_ / static_cast<double>(count_);
  }

  void clear() noexcept { *this = Accumulator{}; }

 private:
  double total_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace g500::util
