// Run-manifest facts: which build produced a telemetry report, on which
// host, when.  Every BENCH_*.json embeds this block so two runs can be
// diffed knowing whether the binary itself changed (docs/telemetry.md).
//
// git_describe and build_type are baked in at configure time by
// src/util/CMakeLists.txt; they read "unknown" in builds outside git.
#pragma once

#include <string>

#include "util/json.hpp"

namespace g500::util {

struct BuildInfo {
  std::string git_describe;  ///< `git describe --always --dirty --tags`
  std::string build_type;    ///< CMAKE_BUILD_TYPE
  std::string compiler;      ///< compiler identification string
  int cxx_standard = 0;      ///< __cplusplus, folded to the year
};

/// The facts baked into this binary.
[[nodiscard]] const BuildInfo& build_info();

/// Hostname of the machine running now ("unknown" if undeterminable).
[[nodiscard]] std::string host_name();

/// Current wall-clock time as UTC ISO-8601 ("2026-08-05T12:34:56Z").
[[nodiscard]] std::string utc_timestamp();

/// The manifest object embedded in every run report: host, timestamp_utc,
/// git_describe, build_type, compiler, schema_version.
[[nodiscard]] Json run_manifest();

}  // namespace g500::util
