// Minimal command-line option parser for the example binaries.
//
// Supports `--name value`, `--name=value` and boolean `--flag` forms; typed
// getters with defaults; and automatic --help output.  Deliberately tiny —
// examples need reproducible parameterization, not a CLI framework.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace g500::util {

class Options {
 public:
  /// Parse argv.  Throws std::invalid_argument on malformed input
  /// (e.g. `--name` at end of line when a value was expected is treated as
  /// a boolean flag, never an error).
  Options(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non --) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// All parsed --name values (telemetry reports echo these so a run's
  /// parameterization is recorded next to its results).
  [[nodiscard]] const std::map<std::string, std::string>& named()
      const noexcept {
    return values_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace g500::util
