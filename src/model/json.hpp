// JSON serialization of the projection/replay layer
// (docs/telemetry.md is the authoritative schema reference).
#pragma once

#include "model/machine.hpp"
#include "model/projection.hpp"
#include "model/replay.hpp"
#include "util/json.hpp"

namespace g500::model {

constexpr int kCalibrationSchemaVersion = 1;
constexpr int kProjectionPointSchemaVersion = 1;
constexpr int kReplayReportSchemaVersion = 1;

/// The measured per-edge/per-round unit costs a projection runs on.
[[nodiscard]] util::Json to_json(const Calibration& cal);

/// One predicted (scale, nodes) point with its cost split.
[[nodiscard]] util::Json to_json(const ProjectionPoint& p);

/// The machine description a projection/replay priced against.
[[nodiscard]] util::Json to_json(const Machine& machine);

/// Per-collective-kind share of a replayed trace.
[[nodiscard]] util::Json to_json(const ReplayBreakdown& b);

/// Whole replay: total, by-kind breakdown and the per-round timeline.
/// include_rounds=false drops the O(rounds) timeline array.
[[nodiscard]] util::Json to_json(const ReplayReport& report,
                                 bool include_rounds = true);

}  // namespace g500::model
