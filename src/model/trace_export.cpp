#include "model/trace_export.hpp"

#include <stdexcept>

namespace g500::model {

namespace {

/// Stable thread-row id per collective kind (the viewer sorts by tid).
int kind_tid(simmpi::CollectiveKind kind) {
  return static_cast<int>(kind) + 1;  // tid 0 reads as "process" in viewers
}

}  // namespace

util::Json chrome_trace(const std::vector<simmpi::TraceRound>& trace,
                        const ReplayReport& replay) {
  if (replay.round_seconds.size() != trace.size()) {
    throw std::invalid_argument(
        "chrome_trace: replay has " +
        std::to_string(replay.round_seconds.size()) + " rounds but trace has " +
        std::to_string(trace.size()) +
        " (replay and trace must come from the same recording)");
  }

  util::Json doc = util::Json::object();
  doc["schema_version"] = kChromeTraceSchemaVersion;
  doc["displayTimeUnit"] = "ms";

  util::Json events = util::Json::array();

  // Name the process and one thread row per collective kind (metadata
  // events, ph "M").
  {
    util::Json proc = util::Json::object();
    proc["name"] = "process_name";
    proc["ph"] = "M";
    proc["pid"] = 0;
    proc["tid"] = 0;
    util::Json args = util::Json::object();
    args["name"] = "modeled SSSP collective timeline";
    proc["args"] = std::move(args);
    events.push_back(std::move(proc));
  }
  for (const auto kind :
       {simmpi::CollectiveKind::kBarrier, simmpi::CollectiveKind::kAlltoallv,
        simmpi::CollectiveKind::kAllreduce,
        simmpi::CollectiveKind::kAllgather,
        simmpi::CollectiveKind::kBroadcast}) {
    util::Json thread = util::Json::object();
    thread["name"] = "thread_name";
    thread["ph"] = "M";
    thread["pid"] = 0;
    thread["tid"] = kind_tid(kind);
    util::Json args = util::Json::object();
    args["name"] = simmpi::to_string(kind);
    thread["args"] = std::move(args);
    events.push_back(std::move(thread));
  }

  double now_us = 0.0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& round = trace[i];
    const double dur_us = replay.round_seconds[i] * 1e6;
    util::Json ev = util::Json::object();
    ev["name"] = simmpi::to_string(round.kind);
    ev["cat"] = "collective";
    ev["ph"] = "X";
    ev["ts"] = now_us;
    ev["dur"] = dur_us;
    ev["pid"] = 0;
    ev["tid"] = kind_tid(round.kind);
    util::Json args = util::Json::object();
    args["round"] = i;
    args["total_bytes"] = round.total_bytes;
    args["max_rank_bytes"] = round.max_rank_bytes;
    args["stall_seconds"] = round.stall_seconds;
    ev["args"] = std::move(args);
    events.push_back(std::move(ev));
    now_us += dur_us;
  }

  doc["traceEvents"] = std::move(events);

  util::Json other = util::Json::object();
  other["rounds"] = trace.size();
  other["modeled_total_seconds"] = replay.total_seconds;
  doc["otherData"] = std::move(other);
  return doc;
}

util::Json chrome_trace(const std::vector<simmpi::TraceRound>& trace,
                        const Machine& machine, std::int64_t nodes,
                        int ranks_per_node, int traced_ranks) {
  return chrome_trace(
      trace, replay_trace(trace, machine, nodes, ranks_per_node, traced_ranks));
}

}  // namespace g500::model
