// Trace replay: price a recorded collective sequence on a target machine.
//
// Takes the machine-wide round log produced by simmpi::World::merged_trace
// and walks it through the net::CostModel of a Machine description,
// yielding a modeled timeline: how long each round would take on the
// target interconnect and how total time splits across collective kinds.
// This is the post-mortem attribution record-run papers use to explain
// where an SSSP spends its time at full machine scale.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "model/machine.hpp"
#include "simmpi/trace.hpp"

namespace g500::model {

struct ReplayBreakdown {
  simmpi::CollectiveKind kind{};
  std::uint64_t rounds = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
};

struct ReplayReport {
  double total_seconds = 0.0;
  /// One entry per collective kind that appears in the trace.
  std::vector<ReplayBreakdown> by_kind;
  /// Modeled duration of every round, in trace order.
  std::vector<double> round_seconds;

  void print(std::ostream& out) const;
};

/// Replay `trace` on `machine` scaled to `nodes` with `ranks_per_node`
/// algorithm ranks sharing each node.  `traced_ranks` is the rank count
/// the trace was recorded with (per-rank byte loads are rescaled to the
/// target rank count assuming uniform spread).
[[nodiscard]] ReplayReport replay_trace(
    const std::vector<simmpi::TraceRound>& trace, const Machine& machine,
    std::int64_t nodes, int ranks_per_node, int traced_ranks);

/// Replay an asynchronous run: the (typically short) collective round log
/// plus the aggregated point-to-point stream summary
/// (simmpi::World::p2p_summary).  The stream is priced as overlapped
/// bandwidth — bytes over the binding link, no per-round barrier latency —
/// plus a per-flush software/injection overhead charged at the busiest
/// rank's flush rate; it appears as one kPoint2Point entry in by_kind (no
/// round_seconds entries: parcels are not rounds).
[[nodiscard]] ReplayReport replay_async_trace(
    const std::vector<simmpi::TraceRound>& trace,
    const simmpi::P2pSummary& p2p, const Machine& machine,
    std::int64_t nodes, int ranks_per_node, int traced_ranks);

}  // namespace g500::model
