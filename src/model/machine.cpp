#include "model/machine.hpp"

namespace g500::model {

Machine Machine::new_sunway() {
  Machine m;
  m.name = "New Sunway";
  m.num_nodes = 107520;
  m.cores_per_node = 390;  // 6 core groups x (1 MPE + 64 CPEs)
  m.nodes_per_supernode = 256;
  m.memory_per_node_GB = 96.0;
  m.link.latency_us = 1.5;
  m.link.bandwidth_GBps = 16.0;
  m.link.injection_GBps = 16.0;
  m.central_taper = 0.25;
  // CPE clusters sort/relax on-chip; effective per-core rate is modest but
  // there are a lot of cores.
  m.core_edge_rate = 4e6;
  return m;
}

Machine Machine::fugaku_like() {
  Machine m;
  m.name = "Fugaku-like";
  m.num_nodes = 158976;
  m.cores_per_node = 48;
  m.nodes_per_supernode = 384;  // Tofu-D group
  m.memory_per_node_GB = 32.0;
  m.link.latency_us = 0.9;
  m.link.bandwidth_GBps = 6.8;  // Tofu-D per-direction link class
  m.link.injection_GBps = 40.8;  // 6 links per node
  m.central_taper = 0.4;
  m.core_edge_rate = 1.5e7;  // strong general-purpose cores
  return m;
}

Machine Machine::commodity_cluster(std::int64_t nodes) {
  Machine m;
  m.name = "commodity-cluster";
  m.num_nodes = nodes;
  m.cores_per_node = 64;
  m.nodes_per_supernode = 64;  // one switch group
  m.memory_per_node_GB = 256.0;
  m.link.latency_us = 1.2;
  m.link.bandwidth_GBps = 25.0;  // 200 Gb/s HDR
  m.link.injection_GBps = 25.0;
  m.central_taper = 0.5;
  m.core_edge_rate = 2e7;
  return m;
}

}  // namespace g500::model
