// Chrome trace_event export of a merged collective trace.
//
// Converts the machine-wide round log (simmpi::World::merged_trace) into
// the JSON Object Format of the Chrome Trace Event specification, loadable
// in chrome://tracing and Perfetto.  Durations come from a replay of the
// trace on a model::Machine (model::replay_trace), so the timeline shows
// where an SSSP would spend its time on the *target* interconnect — the
// visual form of the paper's post-mortem round attribution.
//
// Layout: every round is one complete ("ph":"X") event on pid 0.  Rounds
// are laid out on one thread row per collective kind (tid = kind), so the
// viewer separates alltoallv bandwidth time from allreduce latency time at
// a glance; "args" carries the round's bytes and injected-stall charge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/machine.hpp"
#include "model/replay.hpp"
#include "simmpi/trace.hpp"
#include "util/json.hpp"

namespace g500::model {

constexpr int kChromeTraceSchemaVersion = 1;

/// Build the trace_event document for `trace`, with round durations (and
/// the implied start offsets) taken from `replay`.  Throws
/// std::invalid_argument if replay.round_seconds does not line up with
/// the trace (they must come from the same recording).
[[nodiscard]] util::Json chrome_trace(
    const std::vector<simmpi::TraceRound>& trace, const ReplayReport& replay);

/// Convenience: replay `trace` on `machine` at (nodes, ranks_per_node,
/// traced_ranks) and export the priced timeline in one call.
[[nodiscard]] util::Json chrome_trace(
    const std::vector<simmpi::TraceRound>& trace, const Machine& machine,
    std::int64_t nodes, int ranks_per_node, int traced_ranks);

}  // namespace g500::model
