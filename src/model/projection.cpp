#include "model/projection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace g500::model {

Calibration Calibration::from_run(const core::SsspStats& stats,
                                  const simmpi::CommStats& comm,
                                  std::uint64_t num_input_edges,
                                  std::uint64_t num_sssp_runs, int scale) {
  if (num_input_edges == 0 || num_sssp_runs == 0) {
    throw std::invalid_argument("Calibration: empty run");
  }
  Calibration cal;
  const double edges =
      static_cast<double>(num_input_edges) * static_cast<double>(num_sssp_runs);
  cal.relax_per_input_edge =
      std::max(0.1, static_cast<double>(stats.relax_generated) / edges);
  cal.wire_bytes_per_input_edge =
      static_cast<double>(comm.total_bytes()) / edges;
  cal.rounds_per_sssp = static_cast<double>(comm.rounds()) /
                        static_cast<double>(num_sssp_runs);
  cal.calibration_scale = scale;
  return cal;
}

Projection::Projection(Machine machine, Calibration calibration)
    : machine_(std::move(machine)), calibration_(calibration) {}

ProjectionPoint Projection::predict(int scale, std::int64_t nodes,
                                    int ranks_per_node) const {
  if (scale < 1 || scale > 50) {
    throw std::invalid_argument("Projection: scale out of range");
  }
  if (nodes < 1 || ranks_per_node < 1) {
    throw std::invalid_argument("Projection: bad machine size");
  }
  const Machine m = machine_.scaled_to(nodes);
  const net::SunwayTopology topo = m.topology();
  const net::CostModel cost(topo, ranks_per_node);
  const std::int64_t ranks = nodes * ranks_per_node;

  ProjectionPoint p;
  p.scale = scale;
  p.nodes = nodes;
  p.cores = m.total_cores();
  p.input_edges = std::uint64_t{16} << scale;
  const double M = static_cast<double>(p.input_edges);

  // --- memory feasibility: ~12 bytes per directed edge (CSR) x 2
  //     directions, plus 16 bytes per vertex of engine state.
  const double vertices = std::ldexp(1.0, scale);
  const double graph_bytes = 2.0 * M * 12.0 + vertices * 16.0;
  p.memory_feasible =
      graph_bytes <= m.memory_per_node_GB * 1e9 * static_cast<double>(nodes);

  // --- compute term: total relaxations over aggregate core throughput.
  const double relaxations = M * calibration_.relax_per_input_edge;
  p.compute_seconds =
      relaxations / (static_cast<double>(m.total_cores()) * m.core_edge_rate);

  // --- bandwidth term: wire bytes spread over the machine, priced as one
  //     big alltoallv (uniform destinations: Kronecker scramble makes the
  //     traffic matrix near-uniform).
  const double wire_bytes = M * calibration_.wire_bytes_per_input_edge;
  net::AlltoallTraffic traffic;
  traffic.total_bytes = wire_bytes;
  traffic.max_rank_bytes = wire_bytes / static_cast<double>(ranks);
  traffic.cross_cut_fraction = 0.5;
  // Subtract the latency part (counted separately per round below).
  const double one_shot = cost.alltoallv_seconds(traffic, ranks);
  const double latency_part =
      cost.alltoallv_seconds(net::AlltoallTraffic{}, ranks);
  p.network_seconds = std::max(0.0, one_shot - latency_part);

  // --- latency term: synchronization rounds grow ~linearly with scale
  //     (bucket count tracks the weighted diameter ~ log n).
  const double round_growth =
      static_cast<double>(scale) /
      static_cast<double>(std::max(1, calibration_.calibration_scale));
  const double rounds = calibration_.rounds_per_sssp * round_growth;
  p.latency_seconds = rounds * cost.allreduce_seconds(64.0, ranks);

  p.total_seconds = p.compute_seconds + p.network_seconds + p.latency_seconds;
  p.gteps = M / p.total_seconds / 1e9;
  return p;
}

std::vector<ProjectionPoint> Projection::strong_scaling(
    int scale, const std::vector<std::int64_t>& node_counts) const {
  std::vector<ProjectionPoint> points;
  points.reserve(node_counts.size());
  for (const auto nodes : node_counts) points.push_back(predict(scale, nodes));
  return points;
}

std::vector<ProjectionPoint> Projection::weak_scaling(int base_scale,
                                                      std::int64_t base_nodes,
                                                      int doublings) const {
  std::vector<ProjectionPoint> points;
  points.reserve(static_cast<std::size_t>(doublings) + 1);
  for (int i = 0; i <= doublings; ++i) {
    points.push_back(predict(base_scale + i, base_nodes << i));
  }
  return points;
}

}  // namespace g500::model
