#include "model/json.hpp"

#include "simmpi/json.hpp"

namespace g500::model {

util::Json to_json(const Calibration& cal) {
  util::Json j = util::Json::object();
  j["schema_version"] = kCalibrationSchemaVersion;
  j["relax_per_input_edge"] = cal.relax_per_input_edge;
  j["wire_bytes_per_input_edge"] = cal.wire_bytes_per_input_edge;
  j["rounds_per_sssp"] = cal.rounds_per_sssp;
  j["calibration_scale"] = cal.calibration_scale;
  return j;
}

util::Json to_json(const ProjectionPoint& p) {
  util::Json j = util::Json::object();
  j["schema_version"] = kProjectionPointSchemaVersion;
  j["scale"] = p.scale;
  j["nodes"] = p.nodes;
  j["cores"] = p.cores;
  j["input_edges"] = p.input_edges;
  j["compute_seconds"] = p.compute_seconds;
  j["network_seconds"] = p.network_seconds;
  j["latency_seconds"] = p.latency_seconds;
  j["total_seconds"] = p.total_seconds;
  j["gteps"] = p.gteps;
  j["memory_feasible"] = p.memory_feasible;
  return j;
}

util::Json to_json(const Machine& machine) {
  util::Json j = util::Json::object();
  j["name"] = machine.name;
  j["num_nodes"] = machine.num_nodes;
  j["cores_per_node"] = machine.cores_per_node;
  j["nodes_per_supernode"] = machine.nodes_per_supernode;
  j["memory_per_node_GB"] = machine.memory_per_node_GB;
  j["central_taper"] = machine.central_taper;
  j["core_edge_rate"] = machine.core_edge_rate;
  return j;
}

util::Json to_json(const ReplayBreakdown& b) {
  util::Json j = util::Json::object();
  j["kind"] = simmpi::to_string(b.kind);
  j["rounds"] = b.rounds;
  j["bytes"] = b.bytes;
  j["seconds"] = b.seconds;
  return j;
}

util::Json to_json(const ReplayReport& report, bool include_rounds) {
  util::Json j = util::Json::object();
  j["schema_version"] = kReplayReportSchemaVersion;
  j["total_seconds"] = report.total_seconds;
  util::Json by_kind = util::Json::array();
  for (const auto& b : report.by_kind) by_kind.push_back(to_json(b));
  j["by_kind"] = std::move(by_kind);
  if (include_rounds) {
    util::Json rounds = util::Json::array();
    for (const auto s : report.round_seconds) rounds.push_back(s);
    j["round_seconds"] = std::move(rounds);
  }
  return j;
}

}  // namespace g500::model
