// Extreme-scale performance projection.
//
// Predicts Graph 500 SSSP time/GTEPS for (scale, machine) points far beyond
// what one host can materialize — the 140-trillion-edge record entry — by
// combining:
//   * a Calibration measured on real (simulated-rank) runs: how many
//     relaxations an input edge costs, how many bytes survive the
//     optimizations onto the wire, how many synchronization rounds an SSSP
//     takes and how that grows with scale;
//   * a Machine/topology description priced by net::CostModel.
//
// The projection reproduces the paper's *shape*: weak scaling stays near
// flat while per-node traffic fits the injection/bisection budget, the
// latency term grows with rounds x log(P), and hub filtering is what keeps
// the byte term survivable at full machine size.
#pragma once

#include <cstdint>
#include <vector>

#include "core/sssp_types.hpp"
#include "model/machine.hpp"
#include "net/costmodel.hpp"
#include "simmpi/stats.hpp"

namespace g500::model {

/// Per-edge/per-round unit costs extracted from a measured run.
struct Calibration {
  /// Candidate relaxations generated per input edge (work amplification).
  double relax_per_input_edge = 2.0;
  /// Wire bytes per input edge after coalescing/hub/pull filtering.
  double wire_bytes_per_input_edge = 4.0;
  /// Global synchronization rounds of one SSSP at the calibration scale.
  double rounds_per_sssp = 100.0;
  /// Scale at which the calibration was measured (rounds grow ~linearly in
  /// scale: bucket count is roughly proportional to the weighted diameter,
  /// which grows with log n for Kronecker graphs).
  int calibration_scale = 16;

  /// Extract the per-edge ratios from a measured run.
  [[nodiscard]] static Calibration from_run(
      const core::SsspStats& stats_sum_over_ranks,
      const simmpi::CommStats& comm_aggregate, std::uint64_t num_input_edges,
      std::uint64_t num_sssp_runs, int scale);
};

/// One predicted configuration.
struct ProjectionPoint {
  int scale = 0;
  std::int64_t nodes = 0;
  std::int64_t cores = 0;
  std::uint64_t input_edges = 0;

  double compute_seconds = 0.0;
  double network_seconds = 0.0;  ///< bandwidth-bound term
  double latency_seconds = 0.0;  ///< rounds x collective latency
  double total_seconds = 0.0;
  double gteps = 0.0;

  bool memory_feasible = true;  ///< graph fits in aggregate node memory
};

class Projection {
 public:
  Projection(Machine machine, Calibration calibration);

  /// Predict one (scale, node-count) point.  ranks_per_node: how many
  /// algorithm processes share a node (record runs use one per core group).
  [[nodiscard]] ProjectionPoint predict(int scale, std::int64_t nodes,
                                        int ranks_per_node = 6) const;

  /// Sweep node counts at a fixed scale (strong-scaling shape).
  [[nodiscard]] std::vector<ProjectionPoint> strong_scaling(
      int scale, const std::vector<std::int64_t>& node_counts) const;

  /// Grow scale with machine size (weak-scaling / record-run shape).
  [[nodiscard]] std::vector<ProjectionPoint> weak_scaling(
      int base_scale, std::int64_t base_nodes, int doublings) const;

  [[nodiscard]] const Machine& machine() const noexcept { return machine_; }
  [[nodiscard]] const Calibration& calibration() const noexcept {
    return calibration_;
  }

 private:
  Machine machine_;
  Calibration calibration_;
};

}  // namespace g500::model
