// Machine descriptions for the extreme-scale projection.
//
// The paper's runs use the New Sunway supercomputer; we cannot run there,
// so the projection module (projection.hpp) combines a Machine description
// with per-edge costs *measured on the simulated runtime* to predict
// record-scale behaviour.  The DESIGN.md substitution table documents this
// methodology.
#pragma once

#include <cstdint>
#include <string>

#include "net/topology.hpp"

namespace g500::model {

struct Machine {
  std::string name;
  std::int64_t num_nodes = 1;
  int cores_per_node = 1;
  std::int64_t nodes_per_supernode = 256;
  double memory_per_node_GB = 16.0;

  net::LinkParams link;          ///< interconnect parameters
  double central_taper = 0.25;   ///< top-level bisection taper

  /// Sustained edge-relaxation throughput per core (edges/s); calibrated
  /// from measured runs, default from the simulated runtime's measurements.
  double core_edge_rate = 5e6;

  [[nodiscard]] std::int64_t total_cores() const noexcept {
    return num_nodes * cores_per_node;
  }

  [[nodiscard]] net::SunwayTopology topology() const {
    const std::int64_t supernodes =
        (num_nodes + nodes_per_supernode - 1) / nodes_per_supernode;
    const std::int64_t sn_size =
        supernodes == 1 ? num_nodes : nodes_per_supernode;
    return net::SunwayTopology(supernodes, sn_size, central_taper, link);
  }

  /// A copy of this machine scaled down to `nodes` nodes.
  [[nodiscard]] Machine scaled_to(std::int64_t nodes) const {
    Machine m = *this;
    m.num_nodes = nodes;
    return m;
  }

  /// The full New Sunway configuration of the record run: 107,520 nodes x
  /// 390 cores (6 core groups of 1 MPE + 64 CPEs) ~= 41.9M cores, 96 GB
  /// per node, supernodes of 256 nodes.
  [[nodiscard]] static Machine new_sunway();

  /// A mid-size commodity cluster for comparison tables.
  [[nodiscard]] static Machine commodity_cluster(std::int64_t nodes);

  /// A Fugaku-class machine (the BFS-list rival): ~158k nodes x 48 cores,
  /// Tofu-D-like interconnect with healthy taper.  Used by the projection
  /// comparison table.
  [[nodiscard]] static Machine fugaku_like();
};

}  // namespace g500::model
