#include "model/replay.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <stdexcept>

#include "net/costmodel.hpp"
#include "util/table.hpp"

namespace g500::model {

using simmpi::CollectiveKind;
using simmpi::TraceRound;

ReplayReport replay_trace(const std::vector<TraceRound>& trace,
                          const Machine& machine, std::int64_t nodes,
                          int ranks_per_node, int traced_ranks) {
  if (traced_ranks < 1 || ranks_per_node < 1 || nodes < 1) {
    throw std::invalid_argument("replay_trace: bad machine shape");
  }
  const Machine scaled = machine.scaled_to(nodes);
  const net::SunwayTopology topo = scaled.topology();
  const net::CostModel cost(topo, ranks_per_node);
  const std::int64_t target_ranks = nodes * ranks_per_node;
  // Per-rank loads shrink when the same total traffic spreads over more
  // ranks (weak-scaling replays pass traced_ranks == target to disable).
  const double spread = static_cast<double>(traced_ranks) /
                        static_cast<double>(target_ranks);

  ReplayReport report;
  report.round_seconds.reserve(trace.size());
  std::map<CollectiveKind, ReplayBreakdown> by_kind;
  for (const TraceRound& round : trace) {
    double seconds = 0.0;
    switch (round.kind) {
      case CollectiveKind::kBarrier:
        seconds = cost.barrier_seconds(target_ranks);
        break;
      case CollectiveKind::kAlltoallv: {
        net::AlltoallTraffic traffic;
        traffic.total_bytes = static_cast<double>(round.total_bytes);
        traffic.max_rank_bytes =
            static_cast<double>(round.max_rank_bytes) * spread;
        traffic.cross_cut_fraction = 0.5;
        seconds = cost.alltoallv_seconds(traffic, target_ranks);
        break;
      }
      case CollectiveKind::kAllreduce:
        seconds = cost.allreduce_seconds(
            static_cast<double>(round.max_rank_bytes), target_ranks);
        break;
      case CollectiveKind::kAllgather:
      case CollectiveKind::kBroadcast:
        seconds = cost.allgatherv_seconds(
            static_cast<double>(round.total_bytes), target_ranks);
        break;
      case CollectiveKind::kPoint2Point:
        // Unreachable: parcels are unmatched and never enter the collective
        // round log (replay_async_trace prices the p2p stream separately).
        break;
    }
    // Injected stalls hold the whole round: collectives complete at the
    // pace of the slowest participant.
    seconds += round.stall_seconds;
    report.round_seconds.push_back(seconds);
    report.total_seconds += seconds;
    auto& slot = by_kind[round.kind];
    slot.kind = round.kind;
    ++slot.rounds;
    slot.bytes += round.total_bytes;
    slot.seconds += seconds;
  }
  report.by_kind.reserve(by_kind.size());
  for (const auto& [kind, breakdown] : by_kind) {
    report.by_kind.push_back(breakdown);
  }
  std::sort(report.by_kind.begin(), report.by_kind.end(),
            [](const ReplayBreakdown& a, const ReplayBreakdown& b) {
              return a.seconds > b.seconds;
            });
  return report;
}

ReplayReport replay_async_trace(const std::vector<TraceRound>& trace,
                                const simmpi::P2pSummary& p2p,
                                const Machine& machine, std::int64_t nodes,
                                int ranks_per_node, int traced_ranks) {
  ReplayReport report =
      replay_trace(trace, machine, nodes, ranks_per_node, traced_ranks);
  if (p2p.flushes == 0) return report;

  const Machine scaled = machine.scaled_to(nodes);
  const net::SunwayTopology topo = scaled.topology();
  const net::CostModel cost(topo, ranks_per_node);
  const std::int64_t target_ranks = nodes * ranks_per_node;
  const double spread = static_cast<double>(traced_ranks) /
                        static_cast<double>(target_ranks);

  // Bandwidth term: the stream moves the same bytes an alltoallv would,
  // but with no synchronized round there is no per-round latency charge —
  // subtract the model's zero-byte cost to keep only the transfer time.
  net::AlltoallTraffic traffic;
  traffic.total_bytes = static_cast<double>(p2p.bytes);
  traffic.max_rank_bytes = static_cast<double>(p2p.max_rank_bytes) * spread;
  traffic.cross_cut_fraction = 0.5;
  const double bandwidth_seconds =
      cost.alltoallv_seconds(traffic, target_ranks) -
      cost.alltoallv_seconds(net::AlltoallTraffic{}, target_ranks);
  // Injection overhead: each flush is one software send.  Flushes overlap
  // across ranks, so charge the mean per-rank flush count at the cost of a
  // minimal two-party exchange.
  const double per_flush = cost.alltoallv_seconds(net::AlltoallTraffic{}, 2);
  const double flush_seconds =
      per_flush * (static_cast<double>(p2p.flushes) /
                   static_cast<double>(traced_ranks));
  const double seconds = bandwidth_seconds + flush_seconds;

  ReplayBreakdown stream;
  stream.kind = CollectiveKind::kPoint2Point;
  stream.rounds = p2p.flushes;  // parcels, not synchronized rounds
  stream.bytes = p2p.bytes;
  stream.seconds = seconds;
  report.by_kind.push_back(stream);
  std::sort(report.by_kind.begin(), report.by_kind.end(),
            [](const ReplayBreakdown& a, const ReplayBreakdown& b) {
              return a.seconds > b.seconds;
            });
  report.total_seconds += seconds;
  return report;
}

void ReplayReport::print(std::ostream& out) const {
  util::Table table({"collective", "rounds", "bytes", "modeled (s)", "share"});
  for (const auto& b : by_kind) {
    table.row()
        .add(simmpi::to_string(b.kind))
        .add(b.rounds)
        .add_si(static_cast<double>(b.bytes))
        .add(b.seconds, 4)
        .add(total_seconds > 0 ? b.seconds / total_seconds : 0.0, 3);
  }
  table.print(out, "trace replay");
  out << "total modeled: " << total_seconds << " s over "
      << round_seconds.size() << " rounds\n";
}

}  // namespace g500::model
