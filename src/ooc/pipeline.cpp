#include "ooc/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "graph/partition.hpp"
#include "graph/shard.hpp"
#include "util/timer.hpp"

namespace g500::ooc {
namespace {

namespace fs = std::filesystem;
using graph::LocalId;
using graph::VertexId;
using graph::Weight;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ooc pipeline: " + what);
}

/// 16-byte directed edge with a localized source — the run-file record.
struct RunEdge {
  std::uint64_t dst;
  std::uint32_t src;  // local index on the owning rank
  float w;
};
static_assert(sizeof(RunEdge) == 16);

/// Run order (src, dst, w): the merge key of the dedup pass.  Matches the
/// in-memory builder's sort, so keep-first == keep-minimum-weight.
bool run_less(const RunEdge& a, const RunEdge& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.dst != b.dst) return a.dst < b.dst;
  return a.w < b.w;
}

/// The same edge keyed by its global neighbour — the pull-index record.
struct PullEntry {
  std::uint64_t src;  // global neighbour id
  std::uint32_t dst;  // local index
  float w;
};
static_assert(sizeof(PullEntry) == 16);

/// Pull order (src, w, dst): exactly PullIndex::from_csr's sort.
bool pull_less(const PullEntry& a, const PullEntry& b) {
  if (a.src != b.src) return a.src < b.src;
  if (a.w != b.w) return a.w < b.w;
  return a.dst < b.dst;
}

/// Charges every pipeline allocation against the per-rank budget.  The
/// pipeline throws the moment it would exceed the cap — out-of-core means
/// bounded memory by construction, not by hope.
class Budget {
 public:
  explicit Budget(std::uint64_t cap) : cap_(cap) {}

  void acquire(std::uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += bytes;
    if (now_ > peak_) peak_ = now_;
    if (now_ > cap_) {
      fail("resident budget exceeded (" + std::to_string(now_) +
           " bytes held, cap " + std::to_string(cap_) + ")");
    }
  }
  void release(std::uint64_t bytes) noexcept {
    std::lock_guard<std::mutex> lock(mu_);
    now_ -= std::min(bytes, now_);
  }
  [[nodiscard]] std::uint64_t peak() const {
    std::lock_guard<std::mutex> lock(mu_);
    return peak_;
  }

 private:
  std::uint64_t cap_;
  std::uint64_t now_ = 0;
  std::uint64_t peak_ = 0;
  mutable std::mutex mu_;
};

/// Charge a vector's capacity growth against the budget (tracked via the
/// caller's `charged` running total; release `charged` when done).
template <typename V>
void charge_growth(Budget& budget, const V& v, std::uint64_t& charged) {
  const std::uint64_t now = v.capacity() * sizeof(typename V::value_type);
  if (now > charged) {
    budget.acquire(now - charged);
    charged = now;
  }
}

/// Single-producer single-consumer bounded handoff queue (the bin -> sort
/// pipeline coupling; depth bounds how many runs are in flight).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t depth) : depth_(depth) {}

  void push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_space_.wait(lock, [&] { return q_.size() < depth_ || closed_; });
    if (closed_) return;
    q_.push(std::move(item));
    cv_item_.notify_one();
  }
  bool pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_item_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return false;
    out = std::move(q_.front());
    q_.pop();
    cv_space_.notify_one();
    return true;
  }
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_item_.notify_all();
    cv_space_.notify_all();
  }

 private:
  std::size_t depth_;
  bool closed_ = false;
  std::queue<T> q_;
  std::mutex mu_;
  std::condition_variable cv_item_, cv_space_;
};

/// Buffered sequential reader over a binary file of T records, budget-
/// charged for its read buffer.
template <typename T>
class RunReader {
 public:
  RunReader(const std::string& path, std::size_t buf_items, Budget& budget)
      : in_(path, std::ios::binary),
        path_(path),
        budget_(&budget),
        cap_(std::max<std::size_t>(1, buf_items)) {
    if (!in_) fail("cannot reopen spilled run " + path);
    budget.acquire(cap_ * sizeof(T));
    refill();
  }
  ~RunReader() {
    if (budget_ != nullptr) budget_->release(cap_ * sizeof(T));
  }
  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;

  [[nodiscard]] bool empty() const { return pos_ >= buf_.size(); }
  [[nodiscard]] const T& head() const { return buf_[pos_]; }
  void advance() {
    if (++pos_ >= buf_.size() && !done_) refill();
  }

 private:
  void refill() {
    buf_.resize(cap_);
    in_.read(reinterpret_cast<char*>(buf_.data()),
             static_cast<std::streamsize>(cap_ * sizeof(T)));
    const auto got_bytes = static_cast<std::size_t>(in_.gcount());
    if (got_bytes % sizeof(T) != 0) {
      fail("spilled run " + path_ + " has a torn record");
    }
    buf_.resize(got_bytes / sizeof(T));
    pos_ = 0;
    if (buf_.size() < cap_) done_ = true;
  }

  std::ifstream in_;
  std::string path_;
  Budget* budget_;
  std::size_t cap_;
  std::vector<T> buf_;
  std::size_t pos_ = 0;
  bool done_ = false;
};

/// Byte-counting buffered writer for run files and section temporaries.
class TempWriter {
 public:
  explicit TempWriter(std::string path)
      : path_(std::move(path)), out_(path_, std::ios::binary) {
    if (!out_) fail("cannot create temporary " + path_);
  }
  template <typename T>
  void append(const T* data, std::size_t count) {
    out_.write(reinterpret_cast<const char*>(data),
               static_cast<std::streamsize>(count * sizeof(T)));
    bytes_ += count * sizeof(T);
  }
  void close() {
    out_.close();
    if (out_.fail()) fail("write to temporary " + path_ + " failed");
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] std::uint64_t bytes() const noexcept { return bytes_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t bytes_ = 0;
};

/// K-way merge over sorted run files: a binary min-heap of reader indices.
template <typename T, typename Less>
class RunMerger {
 public:
  RunMerger(std::vector<std::unique_ptr<RunReader<T>>> readers, Less less)
      : readers_(std::move(readers)), less_(std::move(less)) {
    for (std::size_t i = 0; i < readers_.size(); ++i) {
      if (!readers_[i]->empty()) heap_.push_back(i);
    }
    const auto cmp = [this](std::size_t a, std::size_t b) {
      return less_(readers_[b]->head(), readers_[a]->head());  // min-heap
    };
    std::make_heap(heap_.begin(), heap_.end(), cmp);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] const T& head() const {
    return readers_[heap_.front()]->head();
  }
  void advance() {
    const auto cmp = [this](std::size_t a, std::size_t b) {
      return less_(readers_[b]->head(), readers_[a]->head());
    };
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    const std::size_t i = heap_.back();
    readers_[i]->advance();
    if (readers_[i]->empty()) {
      heap_.pop_back();
    } else {
      std::push_heap(heap_.begin(), heap_.end(), cmp);
    }
  }

 private:
  std::vector<std::unique_ptr<RunReader<T>>> readers_;
  Less less_;
  std::vector<std::size_t> heap_;
};

std::string tmp_name(const std::string& dir, int rank, const char* kind,
                     std::size_t index) {
  return dir + "/ooc_r" + std::to_string(rank) + "_" + kind + "_" +
         std::to_string(index) + ".tmp";
}

/// Stream a section temporary into the shard writer in bounded chunks.
template <typename T, typename Append>
void stream_section(const std::string& path, Budget& budget,
                    std::size_t chunk_items, Append append) {
  budget.acquire(chunk_items * sizeof(T));
  std::vector<T> buf(chunk_items);
  std::ifstream in(path, std::ios::binary);
  if (!in) fail("cannot reopen temporary " + path);
  for (;;) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(chunk_items * sizeof(T)));
    const auto got = static_cast<std::size_t>(in.gcount()) / sizeof(T);
    if (got == 0) break;
    append(std::span<const T>(buf.data(), got));
    if (got < chunk_items) break;
  }
  budget.release(chunk_items * sizeof(T));
}

}  // namespace

util::Json to_json(const BuildPipelineStats& stats) {
  const auto stage = [](const StageStats& s) {
    util::Json j = util::Json::object();
    j["edges"] = s.edges;
    j["bytes"] = s.bytes;
    j["seconds"] = s.seconds;
    j["meps"] = s.meps();
    return j;
  };
  util::Json j = util::Json::object();
  j["bin"] = stage(stats.bin);
  j["sort"] = stage(stats.sort);
  j["pack"] = stage(stats.pack);
  j["runs_spilled"] = stats.runs_spilled;
  j["spilled_bytes"] = stats.spilled_bytes;
  j["shard_bytes"] = stats.shard_bytes;
  j["peak_resident_bytes"] = stats.peak_resident_bytes;
  j["budget_bytes"] = stats.budget_bytes;
  j["total_seconds"] = stats.total_seconds;
  return j;
}

BuildPipelineStats build_sharded_kronecker(simmpi::Comm& comm,
                                           const graph::KroneckerParams& params,
                                           const std::string& shard_dir,
                                           const PipelineOptions& opts,
                                           const graph::BuildOptions& build_opts) {
  const int P = comm.size();
  const int r = comm.rank();
  const VertexId n = params.num_vertices();
  const graph::BlockPartition part(n, P);
  const VertexId my_begin = part.begin(r);
  const std::uint64_t num_local = part.count(r);
  const std::string scratch =
      opts.scratch_dir.empty() ? shard_dir : opts.scratch_dir;
  if (r == 0) {
    fs::create_directories(shard_dir);
    fs::create_directories(scratch);
  }
  comm.barrier();

  Budget budget(opts.resident_budget_bytes);
  util::Timer total_timer;

  // Staging and one in-flight sort job are the two big holders; with queue
  // depth 1 at most three run buffers coexist, so a sixth of the budget
  // each leaves half for chunk exchange and the pack-phase buffers.  A
  // loose budget is additionally bounded by what the rank will stage at
  // all (~2 directed edges per input tuple) so small builds don't reserve
  // gratuitously large runs.
  const std::uint64_t expected_staged =
      2 * (params.num_edges() / static_cast<std::uint64_t>(P) + 1) *
      sizeof(RunEdge);
  const std::uint64_t run_bytes = std::max<std::uint64_t>(
      64u << 10,
      std::min(opts.resident_budget_bytes / 6, expected_staged));
  const std::size_t run_capacity =
      static_cast<std::size_t>(run_bytes / sizeof(RunEdge));

  // ---- sort stage: worker thread, overlapped with bin ----
  struct SortJob {
    std::vector<RunEdge> edges;
    std::string path;
  };
  struct SorterState {
    double seconds = 0.0;
    std::uint64_t edges = 0;
    std::uint64_t bytes = 0;
    std::exception_ptr error;  // written before `failed`, read after
    std::atomic<bool> failed{false};
  };
  SorterState sorter;
  BoundedQueue<SortJob> jobs(1);
  std::thread sort_thread([&] {
    SortJob job;
    while (jobs.pop(job)) {
      try {
        util::Timer timer;
        auto& edges = job.edges;
        std::sort(edges.begin(), edges.end(), run_less);
        // Within-run dedup: first of each (src, dst) is its run minimum;
        // the cross-run merge applies the same rule globally.
        edges.erase(std::unique(edges.begin(), edges.end(),
                                [](const RunEdge& a, const RunEdge& b) {
                                  return a.src == b.src && a.dst == b.dst;
                                }),
                    edges.end());
        TempWriter out(job.path);
        out.append(edges.data(), edges.size());
        out.close();
        sorter.seconds += timer.seconds();
        sorter.edges += edges.size();
        sorter.bytes += out.bytes();
        edges.clear();
        edges.shrink_to_fit();
        budget.release(run_bytes);
      } catch (...) {
        sorter.error = std::current_exception();
        sorter.failed.store(true);
        budget.release(run_bytes);
      }
    }
  });
  // If anything below throws (budget overflow, I/O failure), the queue must
  // close and the worker join before `sort_thread` unwinds, or std::thread's
  // destructor would terminate the process.
  struct JoinGuard {
    BoundedQueue<SortJob>& queue;
    std::thread& worker;
    ~JoinGuard() {
      queue.close();
      if (worker.joinable()) worker.join();
    }
  } join_guard{jobs, sort_thread};
  const auto check_sorter = [&] {
    if (sorter.failed.load()) {
      jobs.close();
      sort_thread.join();
      std::rethrow_exception(sorter.error);
    }
  };

  // ---- bin stage: generate, route, exchange, stage ----
  const std::uint64_t total_edges = params.num_edges();
  const auto Pu = static_cast<std::uint64_t>(P);
  const auto ru = static_cast<std::uint64_t>(r);
  const std::uint64_t slice_begin = total_edges * ru / Pu;
  const std::uint64_t slice_end = total_edges * (ru + 1) / Pu;
  const std::uint64_t chunk = std::max<std::uint64_t>(1, opts.chunk_edges);
  const std::uint64_t rounds = comm.allreduce_max(
      (slice_end - slice_begin + chunk - 1) / chunk);

  std::vector<std::string> run_paths;
  std::vector<RunEdge> staging;
  budget.acquire(run_bytes);
  staging.reserve(run_capacity);
  const auto spill = [&] {
    if (staging.empty()) return;
    SortJob job{std::move(staging), tmp_name(scratch, r, "run",
                                             run_paths.size())};
    run_paths.push_back(job.path);
    staging = {};
    budget.acquire(run_bytes);
    staging.reserve(run_capacity);
    jobs.push(std::move(job));
  };

  StageStats bin;
  util::Timer bin_timer;
  for (std::uint64_t round = 0; round < rounds; ++round) {
    check_sorter();
    const std::uint64_t b = std::min(slice_end, slice_begin + round * chunk);
    const std::uint64_t e = std::min(slice_end, b + chunk);

    std::uint64_t chunk_charge = (e - b) * sizeof(graph::Edge);
    budget.acquire(chunk_charge);
    const std::vector<graph::Edge> gen = graph::kronecker_slice(params, b, e);

    // Both directions of every tuple, routed to the direction's source
    // owner — the same cleaning rules as graph::build_distributed.
    budget.acquire(2 * gen.size() * sizeof(graph::WireEdge));
    chunk_charge += 2 * gen.size() * sizeof(graph::WireEdge);
    std::vector<std::vector<graph::WireEdge>> outbox(
        static_cast<std::size_t>(P));
    for (const auto& ed : gen) {
      if (ed.src == ed.dst) continue;
      if (ed.src >= n || ed.dst >= n) {
        fail("generator emitted endpoint >= num_vertices");
      }
      outbox[static_cast<std::size_t>(part.owner(ed.src))].push_back(
          graph::WireEdge{ed.src, ed.dst, ed.weight});
      outbox[static_cast<std::size_t>(part.owner(ed.dst))].push_back(
          graph::WireEdge{ed.dst, ed.src, ed.weight});
    }
    const std::vector<graph::WireEdge> mine = comm.alltoallv(outbox);
    const std::uint64_t recv_charge = mine.size() * sizeof(graph::WireEdge);
    budget.acquire(recv_charge);
    outbox.clear();

    for (const auto& we : mine) {
      if (staging.size() == run_capacity) spill();
      staging.push_back(RunEdge{we.dst,
                                static_cast<std::uint32_t>(we.src - my_begin),
                                we.weight});
    }
    budget.release(chunk_charge + recv_charge);
    bin.edges += mine.size();
    bin.bytes += mine.size() * sizeof(RunEdge);
  }
  spill();
  jobs.close();
  sort_thread.join();
  budget.release(run_bytes);  // the final (empty) staging reservation
  staging = {};
  if (sorter.failed.load()) std::rethrow_exception(sorter.error);
  bin.seconds = bin_timer.seconds();
  StageStats sort_stats{sorter.edges, sorter.bytes, sorter.seconds};

  // ---- pack stage: merge runs, dedup, re-sort per vertex, write shard ----
  StageStats pack;
  util::Timer pack_timer;
  const bool has_pull = opts.build_pull_index && build_opts.build_pull_index;
  const std::size_t read_items = 1024;  // 16 KiB per open run

  std::vector<std::uint64_t> offsets(num_local + 1, 0);
  budget.acquire(offsets.size() * sizeof(std::uint64_t));
  TempWriter dst_tmp(tmp_name(scratch, r, "dst", 0));
  TempWriter w_tmp(tmp_name(scratch, r, "w", 0));

  std::vector<std::string> pull_run_paths;
  std::vector<PullEntry> pull_stage;
  std::uint64_t pull_spilled_bytes = 0;
  if (has_pull) {
    budget.acquire(run_bytes);
    pull_stage.reserve(run_capacity);
  }
  const auto spill_pull = [&] {
    if (pull_stage.empty()) return;
    std::sort(pull_stage.begin(), pull_stage.end(), pull_less);
    TempWriter out(tmp_name(scratch, r, "pullrun", pull_run_paths.size()));
    out.append(pull_stage.data(), pull_stage.size());
    out.close();
    pull_spilled_bytes += out.bytes();
    pull_run_paths.push_back(out.path());
    pull_stage.clear();
  };

  std::uint64_t num_edges = 0;
  {
    std::vector<std::unique_ptr<RunReader<RunEdge>>> readers;
    readers.reserve(run_paths.size());
    for (const auto& path : run_paths) {
      readers.push_back(
          std::make_unique<RunReader<RunEdge>>(path, read_items, budget));
    }
    RunMerger<RunEdge, bool (*)(const RunEdge&, const RunEdge&)> merger(
        std::move(readers), run_less);

    // Current vertex's adjacency, re-sorted (w, dst) before flushing — the
    // LocalCsr invariant.  Charged as it grows; a single vertex's degree
    // must fit the budget (true at any scale we materialize per rank).
    std::vector<std::pair<Weight, VertexId>> group;
    std::uint64_t group_charged = 0;
    std::uint32_t group_src = 0;
    const auto flush_group = [&] {
      if (group.empty()) return;
      std::sort(group.begin(), group.end());
      for (const auto& [w, dst] : group) {
        dst_tmp.append(&dst, 1);
        w_tmp.append(&w, 1);
      }
      offsets[group_src + 1] = num_edges;
      group.clear();
    };

    bool have_prev = false;
    RunEdge prev{};
    while (!merger.empty()) {
      const RunEdge head = merger.head();
      merger.advance();
      if (have_prev && head.src == prev.src && head.dst == prev.dst) {
        continue;  // duplicate (src, dst): first instance carried min weight
      }
      if (have_prev && head.src != prev.src) flush_group();
      prev = head;
      have_prev = true;
      group_src = head.src;
      group.push_back({head.w, head.dst});
      charge_growth(budget, group, group_charged);
      ++num_edges;
      if (has_pull) {
        if (pull_stage.size() == run_capacity) spill_pull();
        pull_stage.push_back(PullEntry{head.dst, head.src, head.w});
      }
    }
    flush_group();
    budget.release(group_charged);
    // offsets[] holds per-vertex end positions where vertices have edges;
    // fill the gaps so it is the standard monotone prefix array.
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] = std::max(offsets[i], offsets[i - 1]);
    }
  }
  dst_tmp.close();
  w_tmp.close();
  for (const auto& path : run_paths) fs::remove(path);

  // Pull sections: merge the pull runs into (sources, offsets) in memory
  // (distinct neighbours, vertex-bounded) plus streamed dst/w temps.
  std::vector<VertexId> pull_sources;
  std::vector<std::uint64_t> pull_offsets;
  std::uint64_t pull_sources_charged = 0;
  std::uint64_t pull_offsets_charged = 0;
  TempWriter pull_dst_tmp(tmp_name(scratch, r, "pulldst", 0));
  TempWriter pull_w_tmp(tmp_name(scratch, r, "pullw", 0));
  std::uint64_t num_pull_entries = 0;
  if (has_pull) {
    spill_pull();
    pull_stage = {};
    budget.release(run_bytes);
    std::vector<std::unique_ptr<RunReader<PullEntry>>> readers;
    readers.reserve(pull_run_paths.size());
    for (const auto& path : pull_run_paths) {
      readers.push_back(
          std::make_unique<RunReader<PullEntry>>(path, read_items, budget));
    }
    RunMerger<PullEntry, bool (*)(const PullEntry&, const PullEntry&)> merger(
        std::move(readers), pull_less);
    while (!merger.empty()) {
      const PullEntry head = merger.head();
      merger.advance();
      if (pull_sources.empty() || pull_sources.back() != head.src) {
        pull_sources.push_back(head.src);
        pull_offsets.push_back(num_pull_entries);
        charge_growth(budget, pull_sources, pull_sources_charged);
        charge_growth(budget, pull_offsets, pull_offsets_charged);
      }
      const LocalId dst = head.dst;
      pull_dst_tmp.append(&dst, 1);
      pull_w_tmp.append(&head.w, 1);
      ++num_pull_entries;
    }
    pull_offsets.push_back(num_pull_entries);
  }
  pull_dst_tmp.close();
  pull_w_tmp.close();
  for (const auto& path : pull_run_paths) fs::remove(path);

  // Assemble the shard from the section temporaries.
  graph::ShardWriter::Meta meta;
  meta.rank = r;
  meta.num_ranks = P;
  meta.num_vertices = n;
  meta.num_local = num_local;
  meta.num_input_edges = total_edges;
  meta.num_edges = num_edges;
  meta.num_pull_sources = pull_sources.size();
  meta.num_pull_entries = num_pull_entries;
  meta.has_pull = has_pull;
  const std::string shard_file = graph::shard_path(shard_dir, r, P);
  {
    graph::ShardWriter writer(shard_file, meta);
    writer.append_offsets(offsets);
    stream_section<VertexId>(dst_tmp.path(), budget, read_items,
                             [&](std::span<const VertexId> s) {
                               writer.append_dst(s);
                             });
    stream_section<Weight>(w_tmp.path(), budget, read_items,
                           [&](std::span<const Weight> s) {
                             writer.append_w(s);
                           });
    if (has_pull) {
      writer.append_pull_sources(pull_sources);
      writer.append_pull_offsets(pull_offsets);
      stream_section<LocalId>(pull_dst_tmp.path(), budget, read_items,
                              [&](std::span<const LocalId> s) {
                                writer.append_pull_dst(s);
                              });
      stream_section<Weight>(pull_w_tmp.path(), budget, read_items,
                             [&](std::span<const Weight> s) {
                               writer.append_pull_w(s);
                             });
    }
    writer.finish();
  }
  fs::remove(dst_tmp.path());
  fs::remove(w_tmp.path());
  fs::remove(pull_dst_tmp.path());
  fs::remove(pull_w_tmp.path());
  budget.release(offsets.size() * sizeof(std::uint64_t));
  budget.release(pull_sources_charged + pull_offsets_charged);
  pack.edges = num_edges + num_pull_entries;
  pack.bytes = fs::file_size(shard_file);
  pack.seconds = pack_timer.seconds();

  // ---- reduce stats so every rank reports the machine-wide picture ----
  BuildPipelineStats stats;
  stats.bin = StageStats{comm.allreduce_sum(bin.edges),
                         comm.allreduce_sum(bin.bytes),
                         comm.allreduce_max(bin.seconds)};
  stats.sort = StageStats{comm.allreduce_sum(sort_stats.edges),
                          comm.allreduce_sum(sort_stats.bytes),
                          comm.allreduce_max(sort_stats.seconds)};
  stats.pack = StageStats{comm.allreduce_sum(pack.edges),
                          comm.allreduce_sum(pack.bytes),
                          comm.allreduce_max(pack.seconds)};
  stats.runs_spilled = comm.allreduce_sum<std::uint64_t>(
      run_paths.size() + pull_run_paths.size());
  stats.spilled_bytes =
      comm.allreduce_sum(sorter.bytes + pull_spilled_bytes);
  stats.shard_bytes = comm.allreduce_sum(pack.bytes);
  stats.peak_resident_bytes = comm.allreduce_max(budget.peak());
  stats.budget_bytes = opts.resident_budget_bytes;
  stats.total_seconds = comm.allreduce_max(total_timer.seconds());
  return stats;
}

}  // namespace g500::ooc
