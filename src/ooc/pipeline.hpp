// Out-of-core pipelined graph construction.
//
// Builds the same distributed CSR as graph::build_distributed without ever
// holding a rank's edge set in memory.  The classic external-memory
// bin/sort/pack pipeline (cf. the Graph500 reference out-of-core
// implementations): generator chunks stream through a chunked alltoallv
// exchange into a bounded staging buffer ("bin"), full buffers are handed
// to a worker thread that sorts and spills them as runs ("sort",
// overlapped with the next chunks' generation and exchange), and a final
// k-way merge deduplicates, re-sorts each vertex's adjacency and streams
// the packed CSR shard to disk ("pack").  The result is a shard directory
// graph::load_sharded maps back as a DistGraph whose arrays are
// byte-identical to the in-memory build's.
//
// Memory honesty: every buffer the pipeline allocates is charged against
// PipelineOptions::resident_budget_bytes through a shared accountant; the
// build *throws* if the budget would be exceeded instead of silently
// ballooning, and reports the true peak so harnesses can gate on it.
#pragma once

#include <cstdint>
#include <string>

#include "graph/builder.hpp"
#include "graph/kronecker.hpp"
#include "simmpi/comm.hpp"
#include "util/json.hpp"

namespace g500::ooc {

struct PipelineOptions {
  /// Hard cap on pipeline heap per rank (staging, queued runs, merge
  /// buffers, offset arrays).  Exceeding it throws std::runtime_error.
  std::uint64_t resident_budget_bytes = 256ull << 20;
  /// Generator edges materialized and exchanged per round.
  std::uint64_t chunk_edges = 1ull << 15;
  /// Build and serialize the pull-index sections too.
  bool build_pull_index = true;
  /// Where run files and section temporaries live; defaults to the shard
  /// directory itself when empty.
  std::string scratch_dir;
};

/// One pipeline stage's aggregate counters (summed over ranks).
struct StageStats {
  std::uint64_t edges = 0;    ///< edges through the stage
  std::uint64_t bytes = 0;    ///< bytes produced by the stage
  double seconds = 0.0;       ///< max over ranks, busy time

  /// Millions of edges per second through the stage.
  [[nodiscard]] double meps() const {
    return seconds > 0.0 ? static_cast<double>(edges) / seconds / 1e6 : 0.0;
  }
};

/// What one pipelined build did — the `build_pipeline` telemetry block.
struct BuildPipelineStats {
  StageStats bin;    ///< generate + route + exchange into staging
  StageStats sort;   ///< sort staged runs and spill them (worker thread)
  StageStats pack;   ///< merge, dedup, per-vertex re-sort, shard write
  std::uint64_t runs_spilled = 0;        ///< run files written, all ranks
  std::uint64_t spilled_bytes = 0;       ///< run + temp bytes written
  std::uint64_t shard_bytes = 0;         ///< final shard files, all ranks
  std::uint64_t peak_resident_bytes = 0; ///< max over ranks of the true peak
  std::uint64_t budget_bytes = 0;        ///< the enforced per-rank cap
  double total_seconds = 0.0;            ///< max over ranks, whole build
};

/// `build_pipeline` telemetry object (docs/out_of_core.md).
[[nodiscard]] util::Json to_json(const BuildPipelineStats& stats);

/// SPMD: stream this rank's slice of the Kronecker edge stream through the
/// bin/sort/pack pipeline and write shard `comm.rank()` of `comm.size()`
/// into `shard_dir` (created if needed).  Collective: every rank must
/// call with identical params/options.  Returns identical stats on every
/// rank.  Throws std::runtime_error if the resident budget is exceeded or
/// any file operation fails.
BuildPipelineStats build_sharded_kronecker(
    simmpi::Comm& comm, const graph::KroneckerParams& params,
    const std::string& shard_dir, const PipelineOptions& opts = {},
    const graph::BuildOptions& build_opts = {});

}  // namespace g500::ooc
