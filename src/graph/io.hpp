// Edge-list I/O: move graphs in and out of the library.
//
// Two formats:
//   * binary — a compact header (magic, version, counts) followed by raw
//     Edge records; byte-exact round-trips, used for checkpointing
//     generated graphs and importing converted datasets;
//   * TSV — "src<TAB>dst<TAB>weight" per line, '#' comments, the common
//     interchange format of public graph datasets (weight defaults to 1.0
//     when the column is absent).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/edge_list.hpp"

namespace g500::graph {

/// Write/read the compact binary format.  Throws std::runtime_error on I/O
/// failure or malformed input.  The header is treated as untrusted: the
/// reader refuses edge counts the stream cannot hold (no blind reserve),
/// rejects records whose endpoints fall outside [0, num_vertices), and
/// keeps the per-record truncation check for non-seekable streams.
void write_edge_list_binary(const std::string& path, const EdgeList& list);
[[nodiscard]] EdgeList read_edge_list_binary(const std::string& path);

/// Stream variants (unit-testable without touching the filesystem).
void write_edge_list_binary(std::ostream& out, const EdgeList& list);
[[nodiscard]] EdgeList read_edge_list_binary(std::istream& in);

/// TSV: one "src dst [weight]" line per edge, whitespace-separated, lines
/// starting with '#' ignored.  num_vertices is max endpoint + 1 unless a
/// "# vertices: N" header raises it.  An *absent* weight column defaults
/// to 1.0; an unparseable one ("abc", "0.5junk") is a malformed line.
void write_edge_list_tsv(std::ostream& out, const EdgeList& list);
[[nodiscard]] EdgeList read_edge_list_tsv(std::istream& in);

void write_edge_list_tsv(const std::string& path, const EdgeList& list);
[[nodiscard]] EdgeList read_edge_list_tsv(const std::string& path);

}  // namespace g500::graph
