#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/random.hpp"

namespace g500::graph {

std::vector<VertexId> degree_descending_permutation(const EdgeList& list) {
  std::vector<std::uint64_t> degree(list.num_vertices, 0);
  for (const auto& e : list.edges) {
    if (e.src >= list.num_vertices || e.dst >= list.num_vertices) {
      throw std::out_of_range("degree_descending_permutation: bad endpoint");
    }
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::vector<VertexId> order(list.num_vertices);
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (degree[a] != degree[b]) return degree[a] > degree[b];
    return a < b;
  });
  // order[new] = old; we return perm[old] = new.
  std::vector<VertexId> perm(list.num_vertices);
  for (VertexId new_id = 0; new_id < list.num_vertices; ++new_id) {
    perm[order[new_id]] = new_id;
  }
  return perm;
}

std::vector<VertexId> random_permutation(VertexId n, std::uint64_t seed) {
  // Fisher-Yates with the deterministic engine: exact, any n.
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  util::SplitMix64 rng(seed);
  for (VertexId i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.next_below(i)]);
  }
  return perm;
}

EdgeList apply_permutation(const EdgeList& list,
                           std::span<const VertexId> perm) {
  if (perm.size() != list.num_vertices) {
    throw std::invalid_argument("apply_permutation: size mismatch");
  }
  // Validate bijectivity: every new id hit exactly once.
  std::vector<char> seen(list.num_vertices, 0);
  for (const auto v : perm) {
    if (v >= list.num_vertices || seen[v] != 0) {
      throw std::invalid_argument("apply_permutation: not a bijection");
    }
    seen[v] = 1;
  }
  EdgeList out;
  out.num_vertices = list.num_vertices;
  out.edges.reserve(list.edges.size());
  for (const auto& e : list.edges) {
    out.edges.push_back(Edge{perm[e.src], perm[e.dst], e.weight});
  }
  return out;
}

std::vector<VertexId> invert_permutation(std::span<const VertexId> perm) {
  std::vector<VertexId> inverse(perm.size());
  std::vector<char> seen(perm.size(), 0);
  for (std::size_t old_id = 0; old_id < perm.size(); ++old_id) {
    const VertexId new_id = perm[old_id];
    if (new_id >= perm.size() || seen[new_id] != 0) {
      throw std::invalid_argument("invert_permutation: not a bijection");
    }
    seen[new_id] = 1;
    inverse[new_id] = static_cast<VertexId>(old_id);
  }
  return inverse;
}

}  // namespace g500::graph
