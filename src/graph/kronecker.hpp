// Graph 500 Kronecker (R-MAT style) edge generator.
//
// Matches the official specification: 2^scale vertices, edgefactor x 2^scale
// undirected input edges, initiator matrix [[A,B],[C,D]] with
// A=0.57, B=C=0.19, D=0.05, and a pseudo-random bijective scramble of vertex
// labels so locality cannot be exploited by construction order.
//
// The generator is *counter-based*: edge i is a pure function of
// (params, i), so any rank can materialize any slice of the edge list with
// no communication and the graph is identical regardless of how many ranks
// generate it — the property real Graph 500 runs rely on.
//
// Weights: the SSSP benchmark augments each input edge with a uniform [0,1)
// weight; here weight(i) is derived from the same counter stream (clamped
// away from exact zero so edge weights are strictly positive, keeping
// shortest-path trees acyclic).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace g500::graph {

struct KroneckerParams {
  int scale = 16;          ///< log2(num_vertices)
  int edgefactor = 16;     ///< edges per vertex (undirected input tuples)
  std::uint64_t seed1 = 2; ///< Graph 500 default user seeds
  std::uint64_t seed2 = 3;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  bool scramble = true;    ///< permute vertex labels (spec requires it)

  [[nodiscard]] VertexId num_vertices() const noexcept {
    return VertexId{1} << scale;
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return static_cast<std::uint64_t>(edgefactor) << scale;
  }
};

/// Bijective scramble of a vertex label within [0, 2^scale), built from a
/// balanced Feistel network keyed by the seeds.  Same function the whole
/// library uses whenever a deterministic permutation of ids is needed.
[[nodiscard]] VertexId scramble_vertex(VertexId v, int scale,
                                       std::uint64_t seed1,
                                       std::uint64_t seed2);

/// Inverse of scramble_vertex (used by tests to prove bijectivity).
[[nodiscard]] VertexId unscramble_vertex(VertexId v, int scale,
                                         std::uint64_t seed1,
                                         std::uint64_t seed2);

/// Deterministically materialize edge #index of the Kronecker stream.
[[nodiscard]] Edge kronecker_edge(const KroneckerParams& params,
                                  std::uint64_t index);

/// Materialize the half-open slice [begin, end) of the edge stream.
[[nodiscard]] std::vector<Edge> kronecker_slice(const KroneckerParams& params,
                                                std::uint64_t begin,
                                                std::uint64_t end);

/// Whole graph as an EdgeList (small scales / tests / sequential oracle).
[[nodiscard]] EdgeList kronecker_graph(const KroneckerParams& params);

}  // namespace g500::graph
