// On-disk CSR shards: the storage format of the out-of-core build.
//
// A shard is one rank's slice of the distributed graph — exactly what
// graph::build_distributed would have produced in memory — serialized as
// packed CSR arrays behind the shared G500EDGE header (binary_format.hpp)
// at version 2:
//
//   BinaryHeader   magic "G500EDGE", version 2, num_vertices (global),
//                  num_edges (directed edges of THIS shard)
//   ShardHeader    rank / num_ranks, num_local, global undirected input
//                  tuple count, section offsets, file size, checksum
//   offsets        (num_local + 1) x u64          — CSR row offsets
//   dst            num_edges x u64                — neighbour global ids
//   w              num_edges x f32                — weights
//   pull_sources   num_pull_sources x u64         — optional pull index
//   pull_offsets   (num_pull_sources + 1) x u64     (flags bit 0)
//   pull_dst       num_pull_entries x u32
//   pull_w         num_pull_entries x f32
//
// Sections are 8-byte aligned.  Adjacency within a vertex is weight-sorted
// (ties by destination) and the pull index is grouped by global source —
// the exact invariants LocalCsr / PullIndex promise — so a mapped shard is
// byte-identical to the arrays the in-memory builder would hold.
//
// ShardedCsr::map mmap()s a shard and exposes LocalCsr / PullIndex views
// into the mapping: the engine's adjacency accesses page in on demand and
// the OS may evict them under pressure, so resident memory stays bounded
// by the engine's own per-vertex state instead of the edge count.
// load_sharded() is the SPMD entry point that assembles a full DistGraph
// (partition, hubs, degree histogram) from per-rank shard files.
//
// Every field read from disk is untrusted until validated: map() checks
// magic/version/checksum, section bounds against the real file size, and
// offset-array monotonicity before any view is handed out.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "graph/builder.hpp"
#include "graph/csr.hpp"
#include "simmpi/comm.hpp"

namespace g500::graph {

/// Memory-mapped read-only file (RAII over mmap/munmap).
class MappedFile {
 public:
  explicit MappedFile(const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const unsigned char* data() const noexcept { return data_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

 private:
  const unsigned char* data_ = nullptr;
  std::uint64_t size_ = 0;
};

/// Shard file name of `rank` within a directory of `num_ranks` shards.
[[nodiscard]] std::string shard_path(const std::string& dir, int rank,
                                     int num_ranks);

/// One rank's mapped shard: metadata plus CSR / pull views into the
/// mapping.  Copyable (copies share the mapping).
class ShardedCsr {
 public:
  /// Map and validate `path`.  Throws std::runtime_error on any
  /// malformation (bad magic/version/checksum, sections out of bounds,
  /// non-monotone offsets, counts the file cannot hold).
  [[nodiscard]] static ShardedCsr map(const std::string& path);

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int num_ranks() const noexcept { return num_ranks_; }
  [[nodiscard]] VertexId num_vertices() const noexcept {
    return num_vertices_;
  }
  [[nodiscard]] LocalId num_local() const noexcept { return num_local_; }
  [[nodiscard]] std::uint64_t num_input_edges() const noexcept {
    return num_input_edges_;
  }
  [[nodiscard]] bool has_pull() const noexcept { return has_pull_; }

  /// Views into the mapping — valid while this object (or a copy of the
  /// mapping handle) is alive.
  [[nodiscard]] const LocalCsr& csr() const noexcept { return csr_; }
  [[nodiscard]] const PullIndex& pull() const noexcept { return pull_; }

  [[nodiscard]] std::uint64_t mapped_bytes() const noexcept;
  [[nodiscard]] std::shared_ptr<const MappedFile> mapping() const noexcept {
    return file_;
  }

 private:
  std::shared_ptr<const MappedFile> file_;
  int rank_ = 0;
  int num_ranks_ = 1;
  VertexId num_vertices_ = 0;
  LocalId num_local_ = 0;
  std::uint64_t num_input_edges_ = 0;
  bool has_pull_ = false;
  LocalCsr csr_;
  PullIndex pull_;
};

/// Streaming shard serializer: all counts are declared up front (the
/// header layout and checksum need them), then sections are appended in
/// file order — each in one or many chunks — and finish() validates that
/// every declared element was written.  The out-of-core pipeline streams
/// merge output through this without ever holding a section in memory;
/// write_shard() is the convenience wrapper for in-memory graphs.
class ShardWriter {
 public:
  struct Meta {
    int rank = 0;
    int num_ranks = 1;
    VertexId num_vertices = 0;
    std::uint64_t num_local = 0;
    std::uint64_t num_input_edges = 0;
    std::uint64_t num_edges = 0;
    std::uint64_t num_pull_sources = 0;
    std::uint64_t num_pull_entries = 0;
    bool has_pull = false;
  };

  /// Opens `path` and writes the headers.  Throws std::runtime_error on
  /// I/O failure or inconsistent meta.
  ShardWriter(const std::string& path, const Meta& meta);
  ~ShardWriter();
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  // Sections must be appended in this order; each append may be called
  // repeatedly until its declared element count is reached.  Appending to
  // a later section with an earlier one incomplete throws.
  void append_offsets(std::span<const std::uint64_t> data);
  void append_dst(std::span<const VertexId> data);
  void append_w(std::span<const Weight> data);
  void append_pull_sources(std::span<const VertexId> data);
  void append_pull_offsets(std::span<const std::uint64_t> data);
  void append_pull_dst(std::span<const LocalId> data);
  void append_pull_w(std::span<const Weight> data);

  /// Verifies every section is complete, pads to the declared file size
  /// and flushes.  Throws if any section is short or the stream failed.
  void finish();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Serialize one rank's piece of a built DistGraph as a shard file (the
/// out-of-core pipeline writes shards directly via ShardWriter; this path
/// exists to spill an in-memory graph and for format round-trip tests).
void write_shard(const std::string& path, const DistGraph& g, int rank);

/// SPMD: map this rank's shard from `dir` and assemble the DistGraph the
/// engines run over — partition, mapped CSR/pull views, hubs re-selected
/// collectively from the mapped degrees (identical to the in-memory
/// build's), degree histogram.  The returned graph carries the mapping
/// handle (DistGraph::mapping) and reports GraphBacking::kMapped.
[[nodiscard]] DistGraph load_sharded(simmpi::Comm& comm,
                                     const std::string& dir,
                                     const BuildOptions& opts = {});

}  // namespace g500::graph
