// Vertex relabeling utilities.
//
// Record-scale graph codes relabel vertices to shape locality and load:
// degree-descending orders pack the hubs into a dense low-id prefix (so hub
// lookups become a range check and hub state a dense array), and a
// pseudo-random permutation (the generator's scramble) balances block
// partitions statistically.  These helpers produce and apply such
// relabelings on EdgeLists; results of SSSP/BFS on a relabeled graph map
// back through the same permutation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"

namespace g500::graph {

/// Permutation mapping old id -> new id such that new ids ascend by
/// degree descending (ties: old id ascending).  Isolated vertices sort
/// last.  Degree counts both endpoints of every tuple; self-loops add 2.
[[nodiscard]] std::vector<VertexId> degree_descending_permutation(
    const EdgeList& list);

/// Pseudo-random bijection on [0, n) from the generator's Feistel scramble
/// (n need not be a power of two: cycle-walking keeps it in range).
[[nodiscard]] std::vector<VertexId> random_permutation(VertexId n,
                                                       std::uint64_t seed);

/// new_list = perm applied to every endpoint.  perm must be a bijection on
/// [0, num_vertices); validated in O(n).
[[nodiscard]] EdgeList apply_permutation(const EdgeList& list,
                                         std::span<const VertexId> perm);

/// inverse[perm[v]] == v.
[[nodiscard]] std::vector<VertexId> invert_permutation(
    std::span<const VertexId> perm);

}  // namespace g500::graph
