#include "graph/kronecker.hpp"

#include <stdexcept>

#include "util/random.hpp"

namespace g500::graph {

using util::hash64;
using util::to_unit_double;

namespace {

constexpr int kFeistelRounds = 4;

/// Smallest positive weight: keeps every weight strictly > 0 so tree edges
/// strictly increase distance and parent chains cannot cycle.
constexpr double kMinWeight = 1e-9;

std::uint64_t mask_bits(int bits) {
  return bits >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
}

}  // namespace

VertexId scramble_vertex(VertexId v, int scale, std::uint64_t seed1,
                         std::uint64_t seed2) {
  if (scale <= 0) return v;
  if (scale == 1) {
    // One-bit domain: the only non-trivial permutation is a flip.
    return v ^ (hash64(seed1, seed2) & 1);
  }
  const std::uint64_t key = hash64(seed1, seed2, 0xfe15731u);
  int lbits = scale / 2;
  int rbits = scale - lbits;
  std::uint64_t l = v >> rbits;
  std::uint64_t r = v & mask_bits(rbits);
  for (int round = 0; round < kFeistelRounds; ++round) {
    // (l, r) -> (r, l ^ F(r)); widths travel with the halves so the whole
    // map is a bijection on exactly scale bits.
    const std::uint64_t f =
        hash64(key, static_cast<std::uint64_t>(round), r) & mask_bits(lbits);
    const std::uint64_t new_l = r;
    const std::uint64_t new_r = l ^ f;
    l = new_l;
    r = new_r;
    std::swap(lbits, rbits);
  }
  return (l << rbits) | r;
}

VertexId unscramble_vertex(VertexId v, int scale, std::uint64_t seed1,
                           std::uint64_t seed2) {
  if (scale <= 0) return v;
  if (scale == 1) {
    return v ^ (hash64(seed1, seed2) & 1);
  }
  const std::uint64_t key = hash64(seed1, seed2, 0xfe15731u);
  // Reconstruct the final widths: they swap once per round.
  int lbits = scale / 2;
  int rbits = scale - lbits;
  if (kFeistelRounds % 2 != 0) std::swap(lbits, rbits);
  std::uint64_t l = v >> rbits;
  std::uint64_t r = v & mask_bits(rbits);
  for (int round = kFeistelRounds - 1; round >= 0; --round) {
    std::swap(lbits, rbits);
    const std::uint64_t prev_r = l;
    const std::uint64_t f =
        hash64(key, static_cast<std::uint64_t>(round), prev_r) &
        mask_bits(lbits);
    const std::uint64_t prev_l = r ^ f;
    l = prev_l;
    r = prev_r;
  }
  return (l << rbits) | r;
}

Edge kronecker_edge(const KroneckerParams& params, std::uint64_t index) {
  if (params.scale < 1 || params.scale > 62) {
    throw std::invalid_argument("kronecker scale must be in [1, 62]");
  }
  const double ab = params.a + params.b;
  const double abc = ab + params.c;
  if (!(abc < 1.0) || params.a <= 0.0 || params.b < 0.0 || params.c < 0.0) {
    throw std::invalid_argument("kronecker initiator probabilities invalid");
  }
  const std::uint64_t stream = hash64(params.seed1, params.seed2);

  VertexId u = 0;
  VertexId v = 0;
  for (int level = 0; level < params.scale; ++level) {
    const double r = to_unit_double(
        hash64(stream, index, static_cast<std::uint64_t>(level)));
    // Quadrant choice per the initiator matrix.
    const std::uint64_t ubit = r >= ab ? 1u : 0u;
    const std::uint64_t vbit = (r >= params.a && r < ab) || r >= abc ? 1u : 0u;
    u = (u << 1) | ubit;
    v = (v << 1) | vbit;
  }
  if (params.scramble) {
    u = scramble_vertex(u, params.scale, params.seed1, params.seed2);
    v = scramble_vertex(v, params.scale, params.seed1, params.seed2);
  }
  double w = to_unit_double(hash64(stream ^ 0x5eedba5eULL, index));
  if (w < kMinWeight) w = kMinWeight;
  return Edge{u, v, static_cast<Weight>(w)};
}

std::vector<Edge> kronecker_slice(const KroneckerParams& params,
                                  std::uint64_t begin, std::uint64_t end) {
  if (begin > end || end > params.num_edges()) {
    throw std::out_of_range("kronecker_slice: bad range");
  }
  std::vector<Edge> edges;
  edges.reserve(end - begin);
  for (std::uint64_t i = begin; i < end; ++i) {
    edges.push_back(kronecker_edge(params, i));
  }
  return edges;
}

EdgeList kronecker_graph(const KroneckerParams& params) {
  EdgeList list;
  list.num_vertices = params.num_vertices();
  list.edges = kronecker_slice(params, 0, params.num_edges());
  return list;
}

}  // namespace g500::graph
