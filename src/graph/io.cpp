#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace g500::graph {

namespace {

constexpr char kMagic[8] = {'G', '5', '0', '0', 'E', 'D', 'G', 'E'};
constexpr std::uint32_t kVersion = 1;

struct BinaryHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t num_vertices;
  std::uint64_t num_edges;
};
static_assert(sizeof(BinaryHeader) == 32);

/// On-disk edge record: fixed layout independent of struct padding.
struct BinaryEdge {
  std::uint64_t src;
  std::uint64_t dst;
  float weight;
  float pad;
};
static_assert(sizeof(BinaryEdge) == 24);

[[noreturn]] void io_fail(const std::string& what) {
  throw std::runtime_error("edge-list I/O: " + what);
}

}  // namespace

void write_edge_list_binary(std::ostream& out, const EdgeList& list) {
  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.num_vertices = list.num_vertices;
  header.num_edges = list.edges.size();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (const auto& e : list.edges) {
    BinaryEdge rec{e.src, e.dst, e.weight, 0.0f};
    out.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  }
  if (!out) io_fail("write failed");
}

EdgeList read_edge_list_binary(std::istream& in) {
  BinaryHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    io_fail("bad magic (not a G500EDGE file)");
  }
  if (header.version != kVersion) {
    io_fail("unsupported version " + std::to_string(header.version));
  }
  EdgeList list;
  list.num_vertices = header.num_vertices;
  list.edges.reserve(header.num_edges);
  for (std::uint64_t i = 0; i < header.num_edges; ++i) {
    BinaryEdge rec{};
    in.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (!in) io_fail("truncated payload at edge " + std::to_string(i));
    list.edges.push_back(Edge{rec.src, rec.dst, rec.weight});
  }
  return list;
}

void write_edge_list_binary(const std::string& path, const EdgeList& list) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_fail("cannot open " + path + " for writing");
  write_edge_list_binary(out, list);
}

EdgeList read_edge_list_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) io_fail("cannot open " + path);
  return read_edge_list_binary(in);
}

void write_edge_list_tsv(std::ostream& out, const EdgeList& list) {
  out << "# vertices: " << list.num_vertices << '\n';
  out << "# edges: " << list.edges.size() << '\n';
  for (const auto& e : list.edges) {
    out << e.src << '\t' << e.dst << '\t' << e.weight << '\n';
  }
  if (!out) io_fail("write failed");
}

EdgeList read_edge_list_tsv(std::istream& in) {
  EdgeList list;
  VertexId max_endpoint = 0;
  bool any_edge = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Optional "# vertices: N" header.
      std::istringstream header(line.substr(1));
      std::string key;
      header >> key;
      if (key == "vertices:") {
        VertexId declared = 0;
        if (header >> declared) {
          list.num_vertices = std::max(list.num_vertices, declared);
        }
      }
      continue;
    }
    std::istringstream fields(line);
    Edge e;
    if (!(fields >> e.src >> e.dst)) {
      io_fail("malformed line " + std::to_string(line_number) + ": '" + line +
              "'");
    }
    if (!(fields >> e.weight)) e.weight = 1.0f;
    if (!(e.weight > 0.0f) || e.weight == std::numeric_limits<float>::infinity()) {
      io_fail("non-positive or non-finite weight on line " +
              std::to_string(line_number));
    }
    max_endpoint = std::max({max_endpoint, e.src, e.dst});
    any_edge = true;
    list.edges.push_back(e);
  }
  if (any_edge) {
    list.num_vertices = std::max(list.num_vertices, max_endpoint + 1);
  }
  return list;
}

void write_edge_list_tsv(const std::string& path, const EdgeList& list) {
  std::ofstream out(path);
  if (!out) io_fail("cannot open " + path + " for writing");
  write_edge_list_tsv(out, list);
}

EdgeList read_edge_list_tsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) io_fail("cannot open " + path);
  return read_edge_list_tsv(in);
}

}  // namespace g500::graph
