#include "graph/io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/binary_format.hpp"

namespace g500::graph {

namespace {

using binfmt::BinaryEdge;
using binfmt::BinaryHeader;

[[noreturn]] void io_fail(const std::string& what) {
  throw std::runtime_error("edge-list I/O: " + what);
}

/// Bytes left in `in` from the current position, or -1 when the stream is
/// not seekable.  Restores the read position either way.
std::streamoff remaining_bytes(std::istream& in) {
  const std::istream::pos_type pos = in.tellg();
  if (pos == std::istream::pos_type(-1)) return -1;
  in.seekg(0, std::ios::end);
  const std::istream::pos_type end = in.tellg();
  in.seekg(pos);
  in.clear();
  if (end == std::istream::pos_type(-1) || end < pos) return -1;
  return static_cast<std::streamoff>(end - pos);
}

/// Parse a strictly-positive finite float consuming the whole token;
/// returns false on any malformation ("abc", "0.5junk", overflow, ...).
bool parse_weight_token(const std::string& token, float& out) {
  errno = 0;
  char* end = nullptr;
  const float value = std::strtof(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || errno == ERANGE) return false;
  out = value;
  return true;
}

}  // namespace

void write_edge_list_binary(std::ostream& out, const EdgeList& list) {
  BinaryHeader header{};
  std::memcpy(header.magic, binfmt::kMagic, sizeof(binfmt::kMagic));
  header.version = binfmt::kEdgeListVersion;
  header.num_vertices = list.num_vertices;
  header.num_edges = list.edges.size();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  for (const auto& e : list.edges) {
    BinaryEdge rec{e.src, e.dst, e.weight, 0.0f};
    out.write(reinterpret_cast<const char*>(&rec), sizeof(rec));
  }
  if (!out) io_fail("write failed");
}

EdgeList read_edge_list_binary(std::istream& in) {
  BinaryHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, binfmt::kMagic,
                         sizeof(binfmt::kMagic)) != 0) {
    io_fail("bad magic (not a G500EDGE file)");
  }
  if (header.version == binfmt::kShardVersion) {
    io_fail("version 2 is a CSR shard, not an edge list (use graph/shard.hpp)");
  }
  if (header.version != binfmt::kEdgeListVersion) {
    io_fail("unsupported version " + std::to_string(header.version));
  }

  // The header is untrusted: never reserve() what it claims without
  // checking the stream can actually hold that many records — a corrupt
  // num_edges of 2^60 would otherwise OOM before any payload validation.
  const std::streamoff remaining = remaining_bytes(in);
  if (remaining >= 0) {
    const auto capacity =
        static_cast<std::uint64_t>(remaining) / sizeof(BinaryEdge);
    if (header.num_edges > capacity) {
      io_fail("truncated: header claims " + std::to_string(header.num_edges) +
              " edges but the stream holds at most " +
              std::to_string(capacity));
    }
  }
  // Non-seekable streams fall back to a bounded initial reservation and
  // rely on the per-record truncation check below.
  constexpr std::uint64_t kFallbackReserve = std::uint64_t{1} << 20;

  EdgeList list;
  list.num_vertices = header.num_vertices;
  list.edges.reserve(static_cast<std::size_t>(
      std::min(header.num_edges,
               remaining >= 0 ? header.num_edges : kFallbackReserve)));
  for (std::uint64_t i = 0; i < header.num_edges; ++i) {
    BinaryEdge rec{};
    in.read(reinterpret_cast<char*>(&rec), sizeof(rec));
    if (!in) io_fail("truncated payload at edge " + std::to_string(i));
    if (rec.src >= header.num_vertices || rec.dst >= header.num_vertices) {
      io_fail("edge " + std::to_string(i) + ": endpoint (" +
              std::to_string(rec.src) + ", " + std::to_string(rec.dst) +
              ") out of range for " + std::to_string(header.num_vertices) +
              " vertices");
    }
    list.edges.push_back(Edge{rec.src, rec.dst, rec.weight});
  }
  return list;
}

void write_edge_list_binary(const std::string& path, const EdgeList& list) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_fail("cannot open " + path + " for writing");
  write_edge_list_binary(out, list);
}

EdgeList read_edge_list_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) io_fail("cannot open " + path);
  return read_edge_list_binary(in);
}

void write_edge_list_tsv(std::ostream& out, const EdgeList& list) {
  out << "# vertices: " << list.num_vertices << '\n';
  out << "# edges: " << list.edges.size() << '\n';
  for (const auto& e : list.edges) {
    out << e.src << '\t' << e.dst << '\t' << e.weight << '\n';
  }
  if (!out) io_fail("write failed");
}

EdgeList read_edge_list_tsv(std::istream& in) {
  EdgeList list;
  VertexId max_endpoint = 0;
  bool any_edge = false;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Optional "# vertices: N" header.
      std::istringstream header(line.substr(1));
      std::string key;
      header >> key;
      if (key == "vertices:") {
        VertexId declared = 0;
        if (header >> declared) {
          list.num_vertices = std::max(list.num_vertices, declared);
        }
      }
      continue;
    }
    std::istringstream fields(line);
    Edge e;
    if (!(fields >> e.src >> e.dst)) {
      io_fail("malformed line " + std::to_string(line_number) + ": '" + line +
              "'");
    }
    // The weight column may be *absent* (defaults to 1.0) but never
    // *unparseable*: "1 2 abc" is a malformed line, not weight 1.
    std::string weight_field;
    if (fields >> weight_field) {
      if (!parse_weight_token(weight_field, e.weight)) {
        io_fail("malformed weight '" + weight_field + "' on line " +
                std::to_string(line_number));
      }
    } else {
      e.weight = 1.0f;
    }
    if (!(e.weight > 0.0f) || e.weight == std::numeric_limits<float>::infinity()) {
      io_fail("non-positive or non-finite weight on line " +
              std::to_string(line_number));
    }
    max_endpoint = std::max({max_endpoint, e.src, e.dst});
    any_edge = true;
    list.edges.push_back(e);
  }
  if (any_edge) {
    list.num_vertices = std::max(list.num_vertices, max_endpoint + 1);
  }
  return list;
}

void write_edge_list_tsv(const std::string& path, const EdgeList& list) {
  std::ofstream out(path);
  if (!out) io_fail("cannot open " + path + " for writing");
  write_edge_list_tsv(out, list);
}

EdgeList read_edge_list_tsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) io_fail("cannot open " + path);
  return read_edge_list_tsv(in);
}

}  // namespace g500::graph
