// Fundamental graph types shared across the library.
#pragma once

#include <cstdint>
#include <limits>

namespace g500::graph {

/// Global vertex identifier.  64-bit: the record-scale graph has 2^43
/// vertices, far beyond 32 bits.
using VertexId = std::uint64_t;

/// Rank-local vertex index (vertices per rank stay well below 2^32 at any
/// scale we materialize).
using LocalId = std::uint32_t;

/// Edge weight.  Graph 500 SSSP draws weights uniformly from [0, 1);
/// float matches the official reference implementation's wire format.
using Weight = float;

/// Sentinel "no vertex" (parent of unreachable vertices).
inline constexpr VertexId kNoVertex = std::numeric_limits<VertexId>::max();

/// Distance of unreachable vertices.
inline constexpr Weight kInfDistance = std::numeric_limits<Weight>::infinity();

/// One weighted directed edge (undirected graphs store both directions).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 0.0f;

  friend bool operator==(const Edge&, const Edge&) = default;
};

}  // namespace g500::graph
