// Rank-local graph storage.
//
// LocalCsr: outgoing adjacency of the vertices a rank owns, with each
// vertex's edge list sorted by weight ascending.  The weight sort lets the
// SSSP engine derive the light/heavy split for *any* delta with one binary
// search per vertex, so delta sweeps never rebuild the graph.
//
// PullIndex: the same edges regrouped by (global) source id — the structure
// the direction-optimized "pull" phase scans when the frontier is broadcast
// instead of pushing per-edge messages.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace g500::graph {

/// One directed edge on the wire during construction.
struct WireEdge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 0.0f;
};

class LocalCsr {
 public:
  LocalCsr() = default;

  /// Build from directed edges whose sources are *local* indices in
  /// [0, num_local).  Edges must already be deduplicated; they are regrouped
  /// and weight-sorted here.
  LocalCsr(LocalId num_local, std::vector<WireEdge> edges);

  [[nodiscard]] LocalId num_local() const noexcept { return num_local_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return adj_dst_.size();
  }

  [[nodiscard]] std::uint64_t degree(LocalId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Edge index range [first, last) of vertex u, weight-ascending.
  [[nodiscard]] std::uint64_t edges_begin(LocalId u) const {
    return offsets_[u];
  }
  [[nodiscard]] std::uint64_t edges_end(LocalId u) const {
    return offsets_[u + 1];
  }

  [[nodiscard]] VertexId dst(std::uint64_t e) const { return adj_dst_[e]; }
  [[nodiscard]] Weight weight(std::uint64_t e) const { return adj_w_[e]; }

  /// First edge index of u with weight >= delta (edges are weight-sorted,
  /// so [edges_begin, split) are light and [split, edges_end) are heavy).
  [[nodiscard]] std::uint64_t split_at(LocalId u, Weight delta) const;

  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return offsets_;
  }

 private:
  LocalId num_local_ = 0;
  std::vector<std::uint64_t> offsets_;  // num_local_ + 1
  std::vector<VertexId> adj_dst_;
  std::vector<Weight> adj_w_;
};

class PullIndex {
 public:
  PullIndex() = default;

  /// Build from the local CSR: edge u->v (u local) becomes an entry
  /// v -> (u, w) keyed by the *global* neighbour id v.  Within each source
  /// group, destinations are weight-sorted (same reason as LocalCsr).
  static PullIndex from_csr(const LocalCsr& csr);

  [[nodiscard]] std::size_t num_sources() const noexcept {
    return sources_.size();
  }
  [[nodiscard]] std::uint64_t num_entries() const noexcept {
    return dst_.size();
  }

  /// Locate the entry range of global source s; returns {0, 0} if s has no
  /// edges into this rank.  If `index` is non-null and s is present, the
  /// position of s within sources() is stored there (for split caching).
  struct Range {
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    [[nodiscard]] bool empty() const noexcept { return first == last; }
  };
  [[nodiscard]] Range find(VertexId s, std::size_t* index = nullptr) const;

  /// Entry range of the i-th source group (i < num_sources()).
  [[nodiscard]] Range range(std::size_t i) const {
    return Range{offsets_[i], offsets_[i + 1]};
  }

  [[nodiscard]] LocalId dst(std::uint64_t e) const { return dst_[e]; }
  [[nodiscard]] Weight weight(std::uint64_t e) const { return w_[e]; }

  /// First entry in [r.first, r.last) with weight >= delta.
  [[nodiscard]] std::uint64_t split_at(Range r, Weight delta) const;

  [[nodiscard]] std::span<const VertexId> sources() const noexcept {
    return sources_;
  }

 private:
  std::vector<VertexId> sources_;       // sorted distinct global ids
  std::vector<std::uint64_t> offsets_;  // sources_.size() + 1
  std::vector<LocalId> dst_;
  std::vector<Weight> w_;
};

}  // namespace g500::graph
