// Rank-local graph storage.
//
// LocalCsr: outgoing adjacency of the vertices a rank owns, with each
// vertex's edge list sorted by weight ascending.  The weight sort lets the
// SSSP engine derive the light/heavy split for *any* delta with one binary
// search per vertex, so delta sweeps never rebuild the graph.
//
// PullIndex: the same edges regrouped by (global) source id — the structure
// the direction-optimized "pull" phase scans when the frontier is broadcast
// instead of pushing per-edge messages.
//
// Both structures are *views* over their arrays: the normal construction
// path owns them as heap vectors, while the out-of-core path (shard.hpp)
// binds them to an mmap'd CSR shard so the engine runs with the adjacency
// paged in on demand instead of resident.  Accessors are identical either
// way; engines never see the difference.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace g500::graph {

/// One directed edge on the wire during construction.
struct WireEdge {
  VertexId src = 0;
  VertexId dst = 0;
  Weight weight = 0.0f;
};

class LocalCsr {
 public:
  LocalCsr() = default;

  /// Build from directed edges whose sources are *local* indices in
  /// [0, num_local).  Edges must already be deduplicated; they are regrouped
  /// and weight-sorted here.  The resulting arrays are heap-owned.
  LocalCsr(LocalId num_local, std::vector<WireEdge> edges);

  /// Non-owning view over externally-owned CSR arrays (e.g. a mapped
  /// shard).  `offsets` must have num_local + 1 entries with offsets[0] == 0
  /// and offsets.back() == dst.size() == w.size(); the caller keeps the
  /// backing storage alive for the lifetime of the view (DistGraph carries
  /// the mapping handle).  Layout invariants (per-vertex weight sort) must
  /// already hold — the shard writer guarantees them.
  [[nodiscard]] static LocalCsr view(LocalId num_local,
                                     std::span<const std::uint64_t> offsets,
                                     std::span<const VertexId> dst,
                                     std::span<const Weight> w);

  // Views alias owned vectors, so copies rebind and moves re-point.
  LocalCsr(const LocalCsr& other) { *this = other; }
  LocalCsr& operator=(const LocalCsr& other);
  LocalCsr(LocalCsr&& other) noexcept { *this = std::move(other); }
  LocalCsr& operator=(LocalCsr&& other) noexcept;

  /// True when the arrays live on this object's heap (false for a view
  /// into a mapped shard or other external storage).
  [[nodiscard]] bool owns_storage() const noexcept { return owned_; }

  /// Heap bytes this object keeps resident (0 for a mapped view).
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept;

  [[nodiscard]] LocalId num_local() const noexcept { return num_local_; }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return adj_dst_.size();
  }

  [[nodiscard]] std::uint64_t degree(LocalId u) const {
    return offsets_[u + 1] - offsets_[u];
  }

  /// Edge index range [first, last) of vertex u, weight-ascending.
  [[nodiscard]] std::uint64_t edges_begin(LocalId u) const {
    return offsets_[u];
  }
  [[nodiscard]] std::uint64_t edges_end(LocalId u) const {
    return offsets_[u + 1];
  }

  [[nodiscard]] VertexId dst(std::uint64_t e) const { return adj_dst_[e]; }
  [[nodiscard]] Weight weight(std::uint64_t e) const { return adj_w_[e]; }

  /// First edge index of u with weight >= delta (edges are weight-sorted,
  /// so [edges_begin, split) are light and [split, edges_end) are heavy).
  [[nodiscard]] std::uint64_t split_at(LocalId u, Weight delta) const;

  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const VertexId> adjacency() const noexcept {
    return adj_dst_;
  }
  [[nodiscard]] std::span<const Weight> weights() const noexcept {
    return adj_w_;
  }

 private:
  void bind_owned();

  LocalId num_local_ = 0;
  bool owned_ = true;
  // Owned storage (empty for views)...
  std::vector<std::uint64_t> offsets_store_;  // num_local_ + 1
  std::vector<VertexId> dst_store_;
  std::vector<Weight> w_store_;
  // ...and the views every accessor reads through.
  std::span<const std::uint64_t> offsets_;
  std::span<const VertexId> adj_dst_;
  std::span<const Weight> adj_w_;
};

class PullIndex {
 public:
  PullIndex() = default;

  /// Build from the local CSR: edge u->v (u local) becomes an entry
  /// v -> (u, w) keyed by the *global* neighbour id v.  Within each source
  /// group, destinations are weight-sorted (same reason as LocalCsr).
  static PullIndex from_csr(const LocalCsr& csr);

  /// Non-owning view over externally-owned pull arrays (mapped shard);
  /// same lifetime contract as LocalCsr::view.  `sources` are sorted
  /// distinct global ids; `offsets` has sources.size() + 1 entries.
  [[nodiscard]] static PullIndex view(std::span<const VertexId> sources,
                                      std::span<const std::uint64_t> offsets,
                                      std::span<const LocalId> dst,
                                      std::span<const Weight> w);

  PullIndex(const PullIndex& other) { *this = other; }
  PullIndex& operator=(const PullIndex& other);
  PullIndex(PullIndex&& other) noexcept { *this = std::move(other); }
  PullIndex& operator=(PullIndex&& other) noexcept;

  [[nodiscard]] bool owns_storage() const noexcept { return owned_; }
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept;

  [[nodiscard]] std::size_t num_sources() const noexcept {
    return sources_.size();
  }
  [[nodiscard]] std::uint64_t num_entries() const noexcept {
    return dst_.size();
  }

  /// Locate the entry range of global source s; returns {0, 0} if s has no
  /// edges into this rank.  If `index` is non-null and s is present, the
  /// position of s within sources() is stored there (for split caching).
  struct Range {
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    [[nodiscard]] bool empty() const noexcept { return first == last; }
  };
  [[nodiscard]] Range find(VertexId s, std::size_t* index = nullptr) const;

  /// Entry range of the i-th source group (i < num_sources()).
  [[nodiscard]] Range range(std::size_t i) const {
    return Range{offsets_[i], offsets_[i + 1]};
  }

  [[nodiscard]] LocalId dst(std::uint64_t e) const { return dst_[e]; }
  [[nodiscard]] Weight weight(std::uint64_t e) const { return w_[e]; }

  /// First entry in [r.first, r.last) with weight >= delta.
  [[nodiscard]] std::uint64_t split_at(Range r, Weight delta) const;

  [[nodiscard]] std::span<const VertexId> sources() const noexcept {
    return sources_;
  }
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const LocalId> destinations() const noexcept {
    return dst_;
  }
  [[nodiscard]] std::span<const Weight> weights() const noexcept {
    return w_;
  }

 private:
  void bind_owned();

  bool owned_ = true;
  std::vector<VertexId> sources_store_;       // sorted distinct global ids
  std::vector<std::uint64_t> offsets_store_;  // sources_.size() + 1
  std::vector<LocalId> dst_store_;
  std::vector<Weight> w_store_;
  std::span<const VertexId> sources_;
  std::span<const std::uint64_t> offsets_;
  std::span<const LocalId> dst_;
  std::span<const Weight> w_;
};

}  // namespace g500::graph
