// Deterministic non-Kronecker generators: structured graphs for tests,
// examples (road-network-like grids) and baseline benchmarks.
//
// All weights are drawn deterministically from the given seed, uniform in
// (0, 1) unless stated otherwise, so results are reproducible bit-for-bit.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace g500::graph {

/// Path 0-1-2-...-(n-1).  Worst case for bucketed SSSP (diameter n-1).
[[nodiscard]] EdgeList path_graph(VertexId n, std::uint64_t seed = 1);

/// Cycle 0-1-...-(n-1)-0.
[[nodiscard]] EdgeList ring_graph(VertexId n, std::uint64_t seed = 1);

/// Star with center 0 and n-1 leaves.  Extreme hub skew.
[[nodiscard]] EdgeList star_graph(VertexId n, std::uint64_t seed = 1);

/// rows x cols 4-neighbour grid — a road-network stand-in (large diameter,
/// uniform degree).  Vertex (r, c) has id r*cols + c.
[[nodiscard]] EdgeList grid_graph(VertexId rows, VertexId cols,
                                  std::uint64_t seed = 1);

/// Complete graph on n vertices (n small!).
[[nodiscard]] EdgeList complete_graph(VertexId n, std::uint64_t seed = 1);

/// Uniform random multigraph: m undirected tuples with endpoints uniform in
/// [0, n).  May include self-loops/duplicates — exercised deliberately by
/// builder tests.
[[nodiscard]] EdgeList random_graph(VertexId n, std::uint64_t m,
                                    std::uint64_t seed = 1);

/// Deterministic weight for auxiliary generators: uniform in (0,1).
[[nodiscard]] Weight edge_weight(std::uint64_t seed, std::uint64_t index);

}  // namespace g500::graph
