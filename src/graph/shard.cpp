#include "graph/shard.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <limits>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "graph/binary_format.hpp"
#include "util/random.hpp"

namespace g500::graph {

namespace {

using binfmt::BinaryHeader;

/// Fixed-layout shard metadata following the BinaryHeader (all offsets are
/// absolute file positions, 8-byte aligned).
struct ShardHeader {
  std::uint32_t rank;
  std::uint32_t num_ranks;
  std::uint64_t num_local;
  std::uint64_t num_input_edges;  // global undirected input tuples
  std::uint32_t flags;            // bit 0: pull sections present
  std::uint32_t reserved;
  std::uint64_t num_pull_sources;
  std::uint64_t num_pull_entries;
  std::uint64_t offsets_off;
  std::uint64_t dst_off;
  std::uint64_t w_off;
  std::uint64_t pull_sources_off;
  std::uint64_t pull_offsets_off;
  std::uint64_t pull_dst_off;
  std::uint64_t pull_w_off;
  std::uint64_t file_bytes;
  std::uint64_t checksum;  // FNV over both headers with this field zeroed
};
static_assert(sizeof(ShardHeader) == 120);

constexpr std::uint32_t kFlagPull = 1u;

[[noreturn]] void shard_fail(const std::string& what) {
  throw std::runtime_error("CSR shard: " + what);
}

std::uint64_t align8(std::uint64_t off) { return (off + 7) & ~std::uint64_t{7}; }

/// Header digest: both headers hashed with the checksum field zeroed.
std::uint64_t header_checksum(const BinaryHeader& bin, ShardHeader shard) {
  shard.checksum = 0;
  std::uint64_t h = util::hash_bytes(&bin, sizeof(bin), /*seed=*/0x5348u);
  return util::hash64(h, util::hash_bytes(&shard, sizeof(shard), h));
}

/// Bounds-checked typed view of a mapped section.
template <typename T>
std::span<const T> map_section(const MappedFile& file, std::uint64_t off,
                               std::uint64_t count, const char* what) {
  if (off % 8 != 0) {
    shard_fail(std::string(what) + ": misaligned section offset");
  }
  const std::uint64_t bytes = count * sizeof(T);
  if (count > file.size() / sizeof(T) || off > file.size() ||
      bytes > file.size() - off) {
    shard_fail(std::string(what) + ": section exceeds file size");
  }
  return {reinterpret_cast<const T*>(file.data() + off),
          static_cast<std::size_t>(count)};
}

void check_monotone(std::span<const std::uint64_t> offsets,
                    std::uint64_t total, const char* what) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != total) {
    shard_fail(std::string(what) + ": offset array endpoints corrupt");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      shard_fail(std::string(what) + ": offsets not monotone at " +
                 std::to_string(i));
    }
  }
}

}  // namespace

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    shard_fail("cannot open " + path + " (" + std::strerror(errno) + ")");
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    shard_fail("cannot stat " + path + " (" + std::strerror(err) + ")");
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  if (size_ > 0) {
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      shard_fail("mmap of " + path + " failed (" + std::strerror(err) + ")");
    }
    data_ = static_cast<const unsigned char*>(p);
  }
  ::close(fd);  // the mapping keeps the file alive
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

std::string shard_path(const std::string& dir, int rank, int num_ranks) {
  return dir + "/shard_" + std::to_string(rank) + "_of_" +
         std::to_string(num_ranks) + ".g500";
}

struct ShardWriter::Impl {
  std::ofstream out;
  std::string path;
  // Section order: offsets, dst, w, pull_sources, pull_offsets, pull_dst,
  // pull_w — indexed 0..6 below.
  std::uint64_t section_off[7] = {};
  std::uint64_t expected[7] = {};  // element counts declared by Meta
  std::uint64_t written[7] = {};
  std::size_t elem_size[7] = {};
  std::uint64_t file_bytes = 0;
  int cursor = 0;  // all sections before this one are complete

  void pad_to(std::uint64_t off) {
    const auto pos = static_cast<std::uint64_t>(out.tellp());
    if (pos > off) shard_fail("internal: section overlap while writing");
    for (std::uint64_t i = pos; i < off; ++i) out.put('\0');
  }

  void append(int k, const char* what, const void* data, std::size_t count) {
    while (cursor < k) {
      if (written[cursor] != expected[cursor]) {
        shard_fail(std::string(what) +
                   " appended before an earlier section completed");
      }
      ++cursor;
    }
    if (k < cursor) {
      shard_fail(std::string(what) + " appended out of section order");
    }
    if (written[k] + count > expected[k]) {
      shard_fail(std::string(what) + ": more elements than declared (" +
                 std::to_string(expected[k]) + ")");
    }
    if (written[k] == 0) pad_to(section_off[k]);
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(count * elem_size[k]));
    written[k] += count;
  }
};

ShardWriter::ShardWriter(const std::string& path, const Meta& meta)
    : impl_(std::make_unique<Impl>()) {
  if (!meta.has_pull &&
      (meta.num_pull_sources != 0 || meta.num_pull_entries != 0)) {
    shard_fail("meta declares pull elements without has_pull");
  }
  BinaryHeader bin{};
  std::memcpy(bin.magic, binfmt::kMagic, sizeof(binfmt::kMagic));
  bin.version = binfmt::kShardVersion;
  bin.num_vertices = meta.num_vertices;
  bin.num_edges = meta.num_edges;

  ShardHeader sh{};
  sh.rank = static_cast<std::uint32_t>(meta.rank);
  sh.num_ranks = static_cast<std::uint32_t>(meta.num_ranks);
  sh.num_local = meta.num_local;
  sh.num_input_edges = meta.num_input_edges;
  sh.flags = meta.has_pull ? kFlagPull : 0u;
  sh.num_pull_sources = meta.num_pull_sources;
  sh.num_pull_entries = meta.num_pull_entries;

  Impl& im = *impl_;
  im.path = path;
  im.expected[0] = meta.num_local + 1;
  im.elem_size[0] = sizeof(std::uint64_t);
  im.expected[1] = meta.num_edges;
  im.elem_size[1] = sizeof(VertexId);
  im.expected[2] = meta.num_edges;
  im.elem_size[2] = sizeof(Weight);
  im.expected[3] = meta.num_pull_sources;
  im.elem_size[3] = sizeof(VertexId);
  im.expected[4] = meta.has_pull ? meta.num_pull_sources + 1 : 0;
  im.elem_size[4] = sizeof(std::uint64_t);
  im.expected[5] = meta.num_pull_entries;
  im.elem_size[5] = sizeof(LocalId);
  im.expected[6] = meta.num_pull_entries;
  im.elem_size[6] = sizeof(Weight);

  std::uint64_t off = sizeof(BinaryHeader) + sizeof(ShardHeader);
  for (int k = 0; k < 7; ++k) {
    im.section_off[k] = off = align8(off);
    off += im.expected[k] * im.elem_size[k];
  }
  sh.offsets_off = im.section_off[0];
  sh.dst_off = im.section_off[1];
  sh.w_off = im.section_off[2];
  sh.pull_sources_off = im.section_off[3];
  sh.pull_offsets_off = im.section_off[4];
  sh.pull_dst_off = im.section_off[5];
  sh.pull_w_off = im.section_off[6];
  sh.file_bytes = im.file_bytes = off;
  sh.checksum = header_checksum(bin, sh);

  im.out.open(path, std::ios::binary);
  if (!im.out) shard_fail("cannot open " + path + " for writing");
  im.out.write(reinterpret_cast<const char*>(&bin), sizeof(bin));
  im.out.write(reinterpret_cast<const char*>(&sh), sizeof(sh));
}

ShardWriter::~ShardWriter() = default;

void ShardWriter::append_offsets(std::span<const std::uint64_t> data) {
  impl_->append(0, "offsets", data.data(), data.size());
}
void ShardWriter::append_dst(std::span<const VertexId> data) {
  impl_->append(1, "dst", data.data(), data.size());
}
void ShardWriter::append_w(std::span<const Weight> data) {
  impl_->append(2, "w", data.data(), data.size());
}
void ShardWriter::append_pull_sources(std::span<const VertexId> data) {
  impl_->append(3, "pull_sources", data.data(), data.size());
}
void ShardWriter::append_pull_offsets(std::span<const std::uint64_t> data) {
  impl_->append(4, "pull_offsets", data.data(), data.size());
}
void ShardWriter::append_pull_dst(std::span<const LocalId> data) {
  impl_->append(5, "pull_dst", data.data(), data.size());
}
void ShardWriter::append_pull_w(std::span<const Weight> data) {
  impl_->append(6, "pull_w", data.data(), data.size());
}

void ShardWriter::finish() {
  Impl& im = *impl_;
  for (int k = 0; k < 7; ++k) {
    if (im.written[k] != im.expected[k]) {
      shard_fail("finish with section " + std::to_string(k) + " short (" +
                 std::to_string(im.written[k]) + " of " +
                 std::to_string(im.expected[k]) + " elements)");
    }
  }
  // Pad to the declared size so truncation is always detectable.
  im.pad_to(im.file_bytes);
  im.out.close();
  if (im.out.fail()) shard_fail("write of " + im.path + " failed");
}

void write_shard(const std::string& path, const DistGraph& g, int rank) {
  const LocalCsr& csr = g.csr;
  const PullIndex& pull = g.pull;

  ShardWriter::Meta meta;
  meta.rank = rank;
  meta.num_ranks = g.part.num_ranks();
  meta.num_vertices = g.num_vertices;
  meta.num_local = csr.num_local();
  meta.num_input_edges = g.num_input_edges;
  meta.num_edges = csr.num_edges();
  meta.has_pull = pull.num_entries() > 0 || pull.num_sources() > 0;
  meta.num_pull_sources = meta.has_pull ? pull.num_sources() : 0;
  meta.num_pull_entries = meta.has_pull ? pull.num_entries() : 0;

  ShardWriter writer(path, meta);
  writer.append_offsets(csr.offsets());
  writer.append_dst(csr.adjacency());
  writer.append_w(csr.weights());
  if (meta.has_pull) {
    writer.append_pull_sources(pull.sources());
    writer.append_pull_offsets(pull.offsets());
    writer.append_pull_dst(pull.destinations());
    writer.append_pull_w(pull.weights());
  }
  writer.finish();
}

ShardedCsr ShardedCsr::map(const std::string& path) {
  ShardedCsr shard;
  shard.file_ = std::make_shared<MappedFile>(path);
  const MappedFile& file = *shard.file_;
  if (file.size() < sizeof(BinaryHeader) + sizeof(ShardHeader)) {
    shard_fail(path + ": too small for a shard header");
  }
  BinaryHeader bin{};
  std::memcpy(&bin, file.data(), sizeof(bin));
  if (std::memcmp(bin.magic, binfmt::kMagic, sizeof(binfmt::kMagic)) != 0) {
    shard_fail(path + ": bad magic (not a G500EDGE file)");
  }
  if (bin.version != binfmt::kShardVersion) {
    shard_fail(path + ": unsupported shard version " +
               std::to_string(bin.version));
  }
  ShardHeader sh{};
  std::memcpy(&sh, file.data() + sizeof(bin), sizeof(sh));
  if (sh.checksum != header_checksum(bin, sh)) {
    shard_fail(path + ": header checksum mismatch");
  }
  if (sh.file_bytes != file.size()) {
    shard_fail(path + ": truncated (header declares " +
               std::to_string(sh.file_bytes) + " bytes, file has " +
               std::to_string(file.size()) + ")");
  }
  if (sh.num_ranks == 0 || sh.rank >= sh.num_ranks) {
    shard_fail(path + ": rank " + std::to_string(sh.rank) + " of " +
               std::to_string(sh.num_ranks) + " is invalid");
  }
  if (sh.num_local >
      std::numeric_limits<LocalId>::max() - std::uint64_t{1}) {
    shard_fail(path + ": num_local exceeds the local index space");
  }

  const auto offsets = map_section<std::uint64_t>(
      file, sh.offsets_off, sh.num_local + 1, "offsets");
  const auto dst =
      map_section<VertexId>(file, sh.dst_off, bin.num_edges, "dst");
  const auto w = map_section<Weight>(file, sh.w_off, bin.num_edges, "w");
  check_monotone(offsets, bin.num_edges, "offsets");

  shard.rank_ = static_cast<int>(sh.rank);
  shard.num_ranks_ = static_cast<int>(sh.num_ranks);
  shard.num_vertices_ = bin.num_vertices;
  shard.num_local_ = static_cast<LocalId>(sh.num_local);
  shard.num_input_edges_ = sh.num_input_edges;
  shard.csr_ = LocalCsr::view(shard.num_local_, offsets, dst, w);

  shard.has_pull_ = (sh.flags & kFlagPull) != 0;
  if (shard.has_pull_) {
    const auto pull_sources = map_section<VertexId>(
        file, sh.pull_sources_off, sh.num_pull_sources, "pull_sources");
    const auto pull_offsets = map_section<std::uint64_t>(
        file, sh.pull_offsets_off, sh.num_pull_sources + 1, "pull_offsets");
    const auto pull_dst = map_section<LocalId>(
        file, sh.pull_dst_off, sh.num_pull_entries, "pull_dst");
    const auto pull_w = map_section<Weight>(file, sh.pull_w_off,
                                            sh.num_pull_entries, "pull_w");
    check_monotone(pull_offsets, sh.num_pull_entries, "pull_offsets");
    shard.pull_ =
        PullIndex::view(pull_sources, pull_offsets, pull_dst, pull_w);
  }
  return shard;
}

std::uint64_t ShardedCsr::mapped_bytes() const noexcept {
  return file_ ? file_->size() : 0;
}

DistGraph load_sharded(simmpi::Comm& comm, const std::string& dir,
                       const BuildOptions& opts) {
  const ShardedCsr shard =
      ShardedCsr::map(shard_path(dir, comm.rank(), comm.size()));
  if (shard.num_ranks() != comm.size() || shard.rank() != comm.rank()) {
    shard_fail("shard set in " + dir + " was built for " +
               std::to_string(shard.num_ranks()) + " ranks, loaded on " +
               std::to_string(comm.size()));
  }

  DistGraph g;
  g.num_vertices = shard.num_vertices();
  g.part = BlockPartition(g.num_vertices, comm.size());
  if (g.part.count(comm.rank()) != shard.num_local()) {
    shard_fail("shard local count disagrees with the block partition");
  }
  g.num_input_edges = shard.num_input_edges();
  g.csr = shard.csr();
  if (opts.build_pull_index && shard.has_pull()) {
    g.pull = shard.pull();
  }
  g.backing = GraphBacking::kMapped;
  g.mapped_bytes = shard.mapped_bytes();
  g.mapping = shard.mapping();

  // Cross-shard agreement: every shard must describe the same graph.
  const auto agree = [&](std::uint64_t v, const char* what) {
    if (comm.allreduce_min(v) != comm.allreduce_max(v)) {
      shard_fail(std::string("shard set disagrees on ") + what);
    }
  };
  agree(g.num_vertices, "num_vertices");
  agree(g.num_input_edges, "num_input_edges");
  g.num_directed_edges = comm.allreduce_sum<std::uint64_t>(g.csr.num_edges());

  for (LocalId u = 0; u < shard.num_local(); ++u) {
    g.degree_hist.add(g.csr.degree(u));
  }
  select_hubs(comm, g.part, g.csr,
              resolved_hub_count(opts, g.num_vertices), g.hubs,
              g.hub_degrees);
  return g;
}

}  // namespace g500::graph
