#include "graph/generators.hpp"

#include <stdexcept>

#include "util/random.hpp"

namespace g500::graph {

using util::hash64;
using util::to_unit_double;

Weight edge_weight(std::uint64_t seed, std::uint64_t index) {
  double w = to_unit_double(hash64(seed ^ 0x77e19457ULL, index));
  if (w < 1e-9) w = 1e-9;
  return static_cast<Weight>(w);
}

EdgeList path_graph(VertexId n, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("path_graph: n must be >= 1");
  EdgeList list;
  list.num_vertices = n;
  list.edges.reserve(n > 0 ? n - 1 : 0);
  for (VertexId v = 0; v + 1 < n; ++v) {
    list.edges.push_back(Edge{v, v + 1, edge_weight(seed, v)});
  }
  return list;
}

EdgeList ring_graph(VertexId n, std::uint64_t seed) {
  if (n < 3) throw std::invalid_argument("ring_graph: n must be >= 3");
  EdgeList list = path_graph(n, seed);
  list.edges.push_back(Edge{n - 1, 0, edge_weight(seed, n - 1)});
  return list;
}

EdgeList star_graph(VertexId n, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("star_graph: n must be >= 2");
  EdgeList list;
  list.num_vertices = n;
  list.edges.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) {
    list.edges.push_back(Edge{0, v, edge_weight(seed, v)});
  }
  return list;
}

EdgeList grid_graph(VertexId rows, VertexId cols, std::uint64_t seed) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("grid_graph: rows and cols must be >= 1");
  }
  EdgeList list;
  list.num_vertices = rows * cols;
  list.edges.reserve(2 * rows * cols);
  std::uint64_t index = 0;
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      const VertexId v = r * cols + c;
      if (c + 1 < cols) {
        list.edges.push_back(Edge{v, v + 1, edge_weight(seed, index++)});
      }
      if (r + 1 < rows) {
        list.edges.push_back(Edge{v, v + cols, edge_weight(seed, index++)});
      }
    }
  }
  return list;
}

EdgeList complete_graph(VertexId n, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("complete_graph: n must be >= 2");
  if (n > 4096) {
    throw std::invalid_argument("complete_graph: n too large (max 4096)");
  }
  EdgeList list;
  list.num_vertices = n;
  list.edges.reserve(n * (n - 1) / 2);
  std::uint64_t index = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      list.edges.push_back(Edge{u, v, edge_weight(seed, index++)});
    }
  }
  return list;
}

EdgeList random_graph(VertexId n, std::uint64_t m, std::uint64_t seed) {
  if (n == 0) throw std::invalid_argument("random_graph: n must be >= 1");
  EdgeList list;
  list.num_vertices = n;
  list.edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    const VertexId u = hash64(seed, i, 0) % n;
    const VertexId v = hash64(seed, i, 1) % n;
    list.edges.push_back(Edge{u, v, edge_weight(seed, i)});
  }
  return list;
}

}  // namespace g500::graph
