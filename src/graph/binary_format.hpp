// On-disk binary layout shared by the edge-list reader/writer (io.cpp)
// and the out-of-core CSR shard format (shard.cpp).
//
// Both file families open with the same 32-byte G500EDGE header; the
// version field tells them apart:
//   * version 1 — flat edge-list payload (BinaryEdge records),
//   * version 2 — CSR shard (ShardHeader + packed adjacency sections,
//     see shard.hpp).
//
// Every on-disk file is a trust boundary: readers must validate counts
// against the actual stream length and endpoints against num_vertices
// before allocating or indexing anything derived from the header.
#pragma once

#include <cstdint>

namespace g500::graph::binfmt {

inline constexpr char kMagic[8] = {'G', '5', '0', '0', 'E', 'D', 'G', 'E'};
inline constexpr std::uint32_t kEdgeListVersion = 1;
inline constexpr std::uint32_t kShardVersion = 2;

/// Common file prologue (both versions).
struct BinaryHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t reserved;
  std::uint64_t num_vertices;
  /// v1: edge records that follow; v2: directed edges of this shard.
  std::uint64_t num_edges;
};
static_assert(sizeof(BinaryHeader) == 32);

/// v1 payload record: fixed layout independent of struct padding.
struct BinaryEdge {
  std::uint64_t src;
  std::uint64_t dst;
  float weight;
  float pad;
};
static_assert(sizeof(BinaryEdge) == 24);

}  // namespace g500::graph::binfmt
