// Vertex partitioning: balanced 1-D block distribution (owner computes).
//
// Record-scale Graph 500 codes use 1-D vertex block partitions with the
// vertex labels pre-scrambled by the generator, which makes blocks
// statistically balanced in degree without an explicit partitioner.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "graph/types.hpp"

namespace g500::graph {

/// Balanced block partition of [0, n) over P ranks: the first (n mod P)
/// ranks own ceil(n/P) vertices, the rest floor(n/P).
class BlockPartition {
 public:
  BlockPartition() = default;

  BlockPartition(VertexId num_vertices, int num_ranks)
      : n_(num_vertices), p_(static_cast<VertexId>(num_ranks)) {
    if (num_ranks < 1) {
      throw std::invalid_argument("BlockPartition: num_ranks must be >= 1");
    }
    base_ = n_ / p_;
    extra_ = n_ % p_;
  }

  [[nodiscard]] VertexId num_vertices() const noexcept { return n_; }
  [[nodiscard]] int num_ranks() const noexcept { return static_cast<int>(p_); }

  /// Number of vertices rank r owns.
  [[nodiscard]] VertexId count(int r) const {
    check_rank(r);
    return base_ + (static_cast<VertexId>(r) < extra_ ? 1 : 0);
  }

  /// First global vertex owned by rank r.
  [[nodiscard]] VertexId begin(int r) const {
    check_rank(r);
    const auto rr = static_cast<VertexId>(r);
    return rr < extra_ ? rr * (base_ + 1) : extra_ * (base_ + 1) +
                                                (rr - extra_) * base_;
  }

  /// One-past-last global vertex owned by rank r.
  [[nodiscard]] VertexId end(int r) const { return begin(r) + count(r); }

  /// Which rank owns global vertex v.
  [[nodiscard]] int owner(VertexId v) const {
    check_vertex(v);
    const VertexId boundary = extra_ * (base_ + 1);
    if (v < boundary) {
      return static_cast<int>(v / (base_ + 1));
    }
    return static_cast<int>(extra_ + (v - boundary) / base_);
  }

  /// Local index of global vertex v on its owner.
  [[nodiscard]] LocalId local(VertexId v) const {
    return static_cast<LocalId>(v - begin(owner(v)));
  }

  /// Global id of local vertex lv on rank r.
  [[nodiscard]] VertexId global(int r, LocalId lv) const {
    return begin(r) + lv;
  }

 private:
  void check_rank(int r) const {
    if (r < 0 || static_cast<VertexId>(r) >= p_) {
      throw std::out_of_range("BlockPartition: rank out of range");
    }
  }
  void check_vertex(VertexId v) const {
    if (v >= n_) throw std::out_of_range("BlockPartition: vertex out of range");
  }

  VertexId n_ = 0;
  VertexId p_ = 1;
  VertexId base_ = 0;
  VertexId extra_ = 0;
};

}  // namespace g500::graph
