// Distributed graph construction.
//
// Implements the Graph 500 construction phase: each rank holds a slice of
// the undirected input tuples; the builder routes both directions of every
// tuple to the owner of its source vertex (1-D block partition), drops
// self-loops, deduplicates parallel edges keeping the minimum weight (the
// SSSP-relevant one), and produces the rank-local CSR plus the auxiliary
// structures the optimized engine needs (pull index, hub list, degree
// statistics).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/kronecker.hpp"
#include "graph/partition.hpp"
#include "simmpi/comm.hpp"
#include "util/histogram.hpp"

namespace g500::graph {

struct BuildOptions {
  /// "Size the hub list automatically": min(1024, max(16, n/256)) — hub
  /// replication pays off for a vanishing fraction of vertices, and the
  /// per-bucket mirror sync costs O(hubs) per rank per bucket.
  static constexpr std::size_t kAutoHubCount =
      ~static_cast<std::size_t>(0);

  /// How many top-degree vertices to expose as hubs (global, identical on
  /// every rank).  0 disables hub selection; explicit values are honored
  /// as-is; the default picks automatically per the graph size.
  std::size_t hub_count = kAutoHubCount;
  /// Build the pull index (costs one extra copy of the local edges).
  bool build_pull_index = true;
};

/// How a DistGraph's adjacency arrays are backed: heap vectors built in
/// memory, or views into an mmap'd CSR shard (graph/shard.hpp) whose pages
/// the OS loads on demand — the out-of-core execution mode.
enum class GraphBacking { kResident, kMapped };

/// The distributed graph one rank holds.  An SPMD program constructs one
/// per rank; global invariants (hub list, edge counts) are identical across
/// ranks by construction.
struct DistGraph {
  BlockPartition part;
  VertexId num_vertices = 0;

  /// Undirected input tuples, including self-loops and duplicates — the M
  /// that official Graph 500 TEPS is normalized by.
  std::uint64_t num_input_edges = 0;
  /// Directed edges after cleaning, summed over ranks.
  std::uint64_t num_directed_edges = 0;

  LocalCsr csr;     ///< out-edges of owned vertices
  PullIndex pull;   ///< same edges regrouped by source (may be empty)

  /// Global ids of the top-degree vertices, highest degree first (ties by
  /// id ascending); identical on all ranks.
  std::vector<VertexId> hubs;
  /// Degrees matching `hubs` entry-wise.
  std::vector<std::uint64_t> hub_degrees;

  /// Histogram of owned-vertex degrees (merge across ranks for global).
  util::Log2Histogram degree_hist;

  /// Storage backing of csr/pull.  When kMapped, `mapping` keeps the shard
  /// file mapped for the lifetime of the views and `mapped_bytes` counts
  /// the file-backed section bytes (not resident heap).
  GraphBacking backing = GraphBacking::kResident;
  std::uint64_t mapped_bytes = 0;
  std::shared_ptr<const void> mapping;

  [[nodiscard]] int rank_of(VertexId v) const { return part.owner(v); }
  [[nodiscard]] VertexId local_count() const {
    return static_cast<VertexId>(csr.num_local());
  }
};

/// Build from an explicit slice of input tuples (every rank passes its own
/// slice; the union over ranks is the whole graph).
[[nodiscard]] DistGraph build_distributed(simmpi::Comm& comm,
                                          const EdgeList& input_slice,
                                          VertexId num_vertices,
                                          const BuildOptions& opts = {});

/// Convenience: generate this rank's Kronecker slice internally, then build.
[[nodiscard]] DistGraph build_kronecker(simmpi::Comm& comm,
                                        const KroneckerParams& params,
                                        const BuildOptions& opts = {});

/// Split an EdgeList by edge index so rank r of P receives a contiguous
/// slice — test helper mirroring how real runs shard generator output.
[[nodiscard]] EdgeList slice_for_rank(const EdgeList& whole, int rank,
                                      int num_ranks);

/// The effective hub count for `opts` on an n-vertex graph (resolves
/// BuildOptions::kAutoHubCount; shared by the builder and shard loader).
[[nodiscard]] std::size_t resolved_hub_count(const BuildOptions& opts,
                                             VertexId num_vertices);

/// Collectively agree on the global top-`hub_count` vertices by degree
/// (ties by id ascending): every rank contributes its local top
/// candidates, the union is reduced identically everywhere.  Shared by
/// build_distributed and load_sharded so both paths select the same hubs.
void select_hubs(simmpi::Comm& comm, const BlockPartition& part,
                 const LocalCsr& csr, std::size_t hub_count,
                 std::vector<VertexId>& hubs,
                 std::vector<std::uint64_t>& hub_degrees);

}  // namespace g500::graph
