// 2-D (checkerboard) edge placement.
//
// The standard alternative to the 1-D owner-computes layout at extreme
// scale: ranks form an R x C process grid; the edge u -> v is stored at the
// rank in grid column col(owner(u)) and grid row row(owner(v)), where
// row/col are the grid coordinates of the owning rank.  A relaxation round
// then touches only:
//   * the column group (R ranks) when broadcasting frontier distances, and
//   * the row group (C ranks) when returning candidates to owners,
// bounding per-rank message targets to R + C ~ 2 sqrt(P) instead of P.
// The engine built on this layout (core/delta_stepping_2d.hpp) is the
// comparison point for the paper's 1-D + hub-filtering design.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/partition.hpp"
#include "simmpi/comm.hpp"

namespace g500::graph {

/// Process-grid geometry: P ranks factored into rows x cols (rows * cols
/// == P; the factorization closest to square is chosen automatically).
class ProcessGrid {
 public:
  explicit ProcessGrid(int num_ranks);

  [[nodiscard]] int num_ranks() const noexcept { return rows_ * cols_; }
  [[nodiscard]] int rows() const noexcept { return rows_; }
  [[nodiscard]] int cols() const noexcept { return cols_; }

  [[nodiscard]] int row_of(int rank) const { return rank / cols_; }
  [[nodiscard]] int col_of(int rank) const { return rank % cols_; }
  [[nodiscard]] int rank_at(int row, int col) const {
    return row * cols_ + col;
  }

  /// Rank holding edges u -> v given the owning ranks of u and v.
  [[nodiscard]] int edge_home(int owner_u, int owner_v) const {
    return rank_at(row_of(owner_v), col_of(owner_u));
  }

 private:
  int rows_;
  int cols_;
};

/// Edge block keyed by *source* global id: distinct sources sorted, each
/// group's (destination, weight) pairs weight-ascending so the light/heavy
/// split for any delta is one binary search.  Like PullIndex, but
/// destinations stay global — they belong to other ranks' blocks.
class SourceBlock {
 public:
  SourceBlock() = default;

  /// Build from cleaned directed edges (any order; regrouped here).
  explicit SourceBlock(std::vector<WireEdge> edges);

  [[nodiscard]] std::size_t num_sources() const noexcept {
    return sources_.size();
  }
  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return dst_.size();
  }

  struct Range {
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    [[nodiscard]] bool empty() const noexcept { return first == last; }
  };
  [[nodiscard]] Range find(VertexId source) const;
  [[nodiscard]] Range range(std::size_t i) const {
    return Range{offsets_[i], offsets_[i + 1]};
  }
  [[nodiscard]] VertexId source(std::size_t i) const { return sources_[i]; }

  [[nodiscard]] VertexId dst(std::uint64_t e) const { return dst_[e]; }
  [[nodiscard]] Weight weight(std::uint64_t e) const { return w_[e]; }

  /// First entry of r with weight >= delta.
  [[nodiscard]] std::uint64_t split_at(Range r, Weight delta) const;

 private:
  std::vector<VertexId> sources_;
  std::vector<std::uint64_t> offsets_;
  std::vector<VertexId> dst_;
  std::vector<Weight> w_;
};

/// One rank's share of a 2-D partitioned graph.
///
/// `block` holds this rank's edges keyed by source global id; `part` is the
/// same 1-D vertex ownership used for distances, buckets and results —
/// only edge storage moves to the checkerboard.
struct Dist2DGraph {
  ProcessGrid grid{1};
  BlockPartition part;
  VertexId num_vertices = 0;
  std::uint64_t num_input_edges = 0;
  std::uint64_t num_directed_edges = 0;

  SourceBlock block;

  /// Out-degree of every *owned* vertex (this rank's edges live elsewhere
  /// in the grid; owners still need degrees for root eligibility).
  std::vector<std::uint64_t> owned_degree;
};

/// Build the 2-D distribution from this rank's slice of input tuples.
/// Cleaning matches build_distributed: both directions, self-loops
/// dropped, duplicates deduplicated to minimum weight (per edge home).
[[nodiscard]] Dist2DGraph build_2d(simmpi::Comm& comm,
                                   const EdgeList& input_slice,
                                   VertexId num_vertices);

}  // namespace g500::graph
