// In-memory edge list: the interchange format between generators and the
// distributed graph builder.  Edges are *undirected input tuples* in Graph
// 500 terms: (u, v, w) means an undirected edge; the builder materializes
// both directions.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace g500::graph {

struct EdgeList {
  /// Number of vertices (ids are in [0, num_vertices)).
  VertexId num_vertices = 0;
  /// Undirected input edges; may contain self-loops and duplicates, which
  /// the builder drops / dedupes exactly as the Graph 500 spec requires.
  std::vector<Edge> edges;

  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return edges.size();
  }
};

}  // namespace g500::graph
