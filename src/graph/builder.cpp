#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace g500::graph {

namespace {

/// Candidate hub entry exchanged between ranks.
struct HubCandidate {
  VertexId vertex;
  std::uint64_t degree;
};

/// Deterministic hub ordering: degree descending, id ascending on ties.
bool hub_less(const HubCandidate& a, const HubCandidate& b) {
  if (a.degree != b.degree) return a.degree > b.degree;
  return a.vertex < b.vertex;
}

}  // namespace

std::size_t resolved_hub_count(const BuildOptions& opts,
                               VertexId num_vertices) {
  if (opts.hub_count != BuildOptions::kAutoHubCount) return opts.hub_count;
  return std::min<std::size_t>(
      1024, std::max<std::size_t>(
                16, static_cast<std::size_t>(num_vertices / 256)));
}

void select_hubs(simmpi::Comm& comm, const BlockPartition& part,
                 const LocalCsr& csr, std::size_t hub_count,
                 std::vector<VertexId>& hubs,
                 std::vector<std::uint64_t>& hub_degrees) {
  hubs.clear();
  hub_degrees.clear();
  if (hub_count == 0) return;

  // Local top-H by degree...
  std::vector<HubCandidate> local;
  local.reserve(csr.num_local());
  for (LocalId u = 0; u < csr.num_local(); ++u) {
    const auto deg = csr.degree(u);
    if (deg > 0) {
      local.push_back(HubCandidate{part.global(comm.rank(), u), deg});
    }
  }
  if (local.size() > hub_count) {
    std::nth_element(local.begin(),
                     local.begin() + static_cast<std::ptrdiff_t>(hub_count),
                     local.end(), hub_less);
    local.resize(hub_count);
  }
  std::sort(local.begin(), local.end(), hub_less);

  // ...then the global top-H from the union of local candidates.  Correct
  // because a global top-H vertex is necessarily in its owner's local top-H.
  std::vector<HubCandidate> all = comm.allgatherv(local);
  std::sort(all.begin(), all.end(), hub_less);
  if (all.size() > hub_count) all.resize(hub_count);

  hubs.reserve(all.size());
  hub_degrees.reserve(all.size());
  for (const auto& c : all) {
    hubs.push_back(c.vertex);
    hub_degrees.push_back(c.degree);
  }
}

DistGraph build_distributed(simmpi::Comm& comm, const EdgeList& input_slice,
                            VertexId num_vertices, const BuildOptions& opts) {
  if (num_vertices == 0) {
    throw std::invalid_argument("build_distributed: empty vertex set");
  }
  DistGraph g;
  g.num_vertices = num_vertices;
  g.part = BlockPartition(num_vertices, comm.size());
  g.num_input_edges =
      comm.allreduce_sum<std::uint64_t>(input_slice.edges.size());

  // Route both directions of every tuple to the owner of the direction's
  // source.  Self-loops never affect shortest paths; drop them here.
  const int P = comm.size();
  std::vector<std::vector<WireEdge>> outbox(static_cast<std::size_t>(P));
  for (const auto& e : input_slice.edges) {
    if (e.src == e.dst) continue;
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      throw std::out_of_range("build_distributed: edge endpoint >= n");
    }
    outbox[static_cast<std::size_t>(g.part.owner(e.src))].push_back(
        WireEdge{e.src, e.dst, e.weight});
    outbox[static_cast<std::size_t>(g.part.owner(e.dst))].push_back(
        WireEdge{e.dst, e.src, e.weight});
  }
  std::vector<WireEdge> mine = comm.alltoallv(outbox);
  outbox.clear();
  outbox.shrink_to_fit();

  // Deduplicate parallel edges keeping the smallest weight: sort by
  // (src, dst, weight) and keep the first of each (src, dst) run.
  std::sort(mine.begin(), mine.end(), [](const WireEdge& a, const WireEdge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  mine.erase(std::unique(mine.begin(), mine.end(),
                         [](const WireEdge& a, const WireEdge& b) {
                           return a.src == b.src && a.dst == b.dst;
                         }),
             mine.end());

  // Localize sources and build the CSR.
  const VertexId my_begin = g.part.begin(comm.rank());
  for (auto& e : mine) {
    e.src -= my_begin;  // LocalCsr takes local source indices
  }
  const auto local_n = static_cast<LocalId>(g.part.count(comm.rank()));
  g.csr = LocalCsr(local_n, std::move(mine));
  g.num_directed_edges = comm.allreduce_sum<std::uint64_t>(g.csr.num_edges());

  if (opts.build_pull_index) {
    g.pull = PullIndex::from_csr(g.csr);
  }

  for (LocalId u = 0; u < local_n; ++u) {
    g.degree_hist.add(g.csr.degree(u));
  }

  select_hubs(comm, g.part, g.csr, resolved_hub_count(opts, num_vertices),
              g.hubs, g.hub_degrees);
  return g;
}

DistGraph build_kronecker(simmpi::Comm& comm, const KroneckerParams& params,
                          const BuildOptions& opts) {
  const std::uint64_t total = params.num_edges();
  const auto P = static_cast<std::uint64_t>(comm.size());
  const auto r = static_cast<std::uint64_t>(comm.rank());
  const std::uint64_t begin = total * r / P;
  const std::uint64_t end = total * (r + 1) / P;

  EdgeList slice;
  slice.num_vertices = params.num_vertices();
  slice.edges = kronecker_slice(params, begin, end);
  return build_distributed(comm, slice, params.num_vertices(), opts);
}

EdgeList slice_for_rank(const EdgeList& whole, int rank, int num_ranks) {
  if (num_ranks < 1 || rank < 0 || rank >= num_ranks) {
    throw std::invalid_argument("slice_for_rank: bad rank");
  }
  const std::uint64_t total = whole.edges.size();
  const auto P = static_cast<std::uint64_t>(num_ranks);
  const auto r = static_cast<std::uint64_t>(rank);
  EdgeList slice;
  slice.num_vertices = whole.num_vertices;
  slice.edges.assign(
      whole.edges.begin() + static_cast<std::ptrdiff_t>(total * r / P),
      whole.edges.begin() + static_cast<std::ptrdiff_t>(total * (r + 1) / P));
  return slice;
}

}  // namespace g500::graph
