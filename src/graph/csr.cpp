#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

namespace g500::graph {

LocalCsr::LocalCsr(LocalId num_local, std::vector<WireEdge> edges)
    : num_local_(num_local) {
  for (const auto& e : edges) {
    if (e.src >= num_local) {
      throw std::out_of_range("LocalCsr: edge source is not a local index");
    }
  }
  // Group by source, then weight-ascending within a source (ties by dst for
  // determinism).
  std::sort(edges.begin(), edges.end(),
            [](const WireEdge& a, const WireEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.weight != b.weight) return a.weight < b.weight;
              return a.dst < b.dst;
            });

  offsets_.assign(static_cast<std::size_t>(num_local) + 1, 0);
  adj_dst_.reserve(edges.size());
  adj_w_.reserve(edges.size());
  for (const auto& e : edges) {
    ++offsets_[static_cast<std::size_t>(e.src) + 1];
    adj_dst_.push_back(e.dst);
    adj_w_.push_back(e.weight);
  }
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] += offsets_[i - 1];
  }
}

std::uint64_t LocalCsr::split_at(LocalId u, Weight delta) const {
  const auto first = adj_w_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
  const auto last =
      adj_w_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
  return static_cast<std::uint64_t>(
      std::lower_bound(first, last, delta) - adj_w_.begin());
}

PullIndex PullIndex::from_csr(const LocalCsr& csr) {
  struct Entry {
    VertexId src;
    LocalId dst;
    Weight w;
  };
  std::vector<Entry> entries;
  entries.reserve(csr.num_edges());
  for (LocalId u = 0; u < csr.num_local(); ++u) {
    for (std::uint64_t e = csr.edges_begin(u); e < csr.edges_end(u); ++e) {
      entries.push_back(Entry{csr.dst(e), u, csr.weight(e)});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.w != b.w) return a.w < b.w;
    return a.dst < b.dst;
  });

  PullIndex index;
  index.dst_.reserve(entries.size());
  index.w_.reserve(entries.size());
  for (const auto& e : entries) {
    if (index.sources_.empty() || index.sources_.back() != e.src) {
      index.sources_.push_back(e.src);
      index.offsets_.push_back(index.dst_.size());
    }
    index.dst_.push_back(e.dst);
    index.w_.push_back(e.w);
  }
  index.offsets_.push_back(index.dst_.size());
  return index;
}

PullIndex::Range PullIndex::find(VertexId s, std::size_t* index) const {
  const auto it = std::lower_bound(sources_.begin(), sources_.end(), s);
  if (it == sources_.end() || *it != s) return Range{};
  const auto i = static_cast<std::size_t>(it - sources_.begin());
  if (index != nullptr) *index = i;
  return Range{offsets_[i], offsets_[i + 1]};
}

std::uint64_t PullIndex::split_at(Range r, Weight delta) const {
  const auto first = w_.begin() + static_cast<std::ptrdiff_t>(r.first);
  const auto last = w_.begin() + static_cast<std::ptrdiff_t>(r.last);
  return static_cast<std::uint64_t>(std::lower_bound(first, last, delta) -
                                    w_.begin());
}

}  // namespace g500::graph
