#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace g500::graph {

LocalCsr::LocalCsr(LocalId num_local, std::vector<WireEdge> edges)
    : num_local_(num_local) {
  for (const auto& e : edges) {
    if (e.src >= num_local) {
      throw std::out_of_range("LocalCsr: edge source is not a local index");
    }
  }
  // Group by source, then weight-ascending within a source (ties by dst for
  // determinism).
  std::sort(edges.begin(), edges.end(),
            [](const WireEdge& a, const WireEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.weight != b.weight) return a.weight < b.weight;
              return a.dst < b.dst;
            });

  offsets_store_.assign(static_cast<std::size_t>(num_local) + 1, 0);
  dst_store_.reserve(edges.size());
  w_store_.reserve(edges.size());
  for (const auto& e : edges) {
    ++offsets_store_[static_cast<std::size_t>(e.src) + 1];
    dst_store_.push_back(e.dst);
    w_store_.push_back(e.weight);
  }
  for (std::size_t i = 1; i < offsets_store_.size(); ++i) {
    offsets_store_[i] += offsets_store_[i - 1];
  }
  bind_owned();
}

LocalCsr LocalCsr::view(LocalId num_local,
                        std::span<const std::uint64_t> offsets,
                        std::span<const VertexId> dst,
                        std::span<const Weight> w) {
  if (offsets.size() != static_cast<std::size_t>(num_local) + 1 ||
      offsets.front() != 0 || offsets.back() != dst.size() ||
      dst.size() != w.size()) {
    throw std::invalid_argument("LocalCsr::view: inconsistent array shapes");
  }
  LocalCsr csr;
  csr.num_local_ = num_local;
  csr.owned_ = false;
  csr.offsets_ = offsets;
  csr.adj_dst_ = dst;
  csr.adj_w_ = w;
  return csr;
}

void LocalCsr::bind_owned() {
  owned_ = true;
  offsets_ = offsets_store_;
  adj_dst_ = dst_store_;
  adj_w_ = w_store_;
}

LocalCsr& LocalCsr::operator=(const LocalCsr& other) {
  if (this == &other) return *this;
  num_local_ = other.num_local_;
  if (other.owned_) {
    offsets_store_ = other.offsets_store_;
    dst_store_ = other.dst_store_;
    w_store_ = other.w_store_;
    bind_owned();
  } else {
    // Copies of a view share the external storage.
    offsets_store_.clear();
    dst_store_.clear();
    w_store_.clear();
    owned_ = false;
    offsets_ = other.offsets_;
    adj_dst_ = other.adj_dst_;
    adj_w_ = other.adj_w_;
  }
  return *this;
}

LocalCsr& LocalCsr::operator=(LocalCsr&& other) noexcept {
  if (this == &other) return *this;
  num_local_ = other.num_local_;
  owned_ = other.owned_;
  // Moving a vector transfers its heap buffer, so spans into it stay valid.
  offsets_store_ = std::move(other.offsets_store_);
  dst_store_ = std::move(other.dst_store_);
  w_store_ = std::move(other.w_store_);
  offsets_ = other.offsets_;
  adj_dst_ = other.adj_dst_;
  adj_w_ = other.adj_w_;
  other.num_local_ = 0;
  other.owned_ = true;
  other.offsets_ = {};
  other.adj_dst_ = {};
  other.adj_w_ = {};
  return *this;
}

std::uint64_t LocalCsr::resident_bytes() const noexcept {
  return offsets_store_.capacity() * sizeof(std::uint64_t) +
         dst_store_.capacity() * sizeof(VertexId) +
         w_store_.capacity() * sizeof(Weight);
}

std::uint64_t LocalCsr::split_at(LocalId u, Weight delta) const {
  const auto first = adj_w_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
  const auto last =
      adj_w_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
  return static_cast<std::uint64_t>(
      std::lower_bound(first, last, delta) - adj_w_.begin());
}

PullIndex PullIndex::from_csr(const LocalCsr& csr) {
  struct Entry {
    VertexId src;
    LocalId dst;
    Weight w;
  };
  std::vector<Entry> entries;
  entries.reserve(csr.num_edges());
  for (LocalId u = 0; u < csr.num_local(); ++u) {
    for (std::uint64_t e = csr.edges_begin(u); e < csr.edges_end(u); ++e) {
      entries.push_back(Entry{csr.dst(e), u, csr.weight(e)});
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.w != b.w) return a.w < b.w;
    return a.dst < b.dst;
  });

  PullIndex index;
  index.dst_store_.reserve(entries.size());
  index.w_store_.reserve(entries.size());
  for (const auto& e : entries) {
    if (index.sources_store_.empty() || index.sources_store_.back() != e.src) {
      index.sources_store_.push_back(e.src);
      index.offsets_store_.push_back(index.dst_store_.size());
    }
    index.dst_store_.push_back(e.dst);
    index.w_store_.push_back(e.w);
  }
  index.offsets_store_.push_back(index.dst_store_.size());
  index.bind_owned();
  return index;
}

PullIndex PullIndex::view(std::span<const VertexId> sources,
                          std::span<const std::uint64_t> offsets,
                          std::span<const LocalId> dst,
                          std::span<const Weight> w) {
  if (offsets.size() != sources.size() + 1 ||
      (offsets.empty() ? !dst.empty()
                       : (offsets.front() != 0 || offsets.back() != dst.size())) ||
      dst.size() != w.size()) {
    throw std::invalid_argument("PullIndex::view: inconsistent array shapes");
  }
  PullIndex index;
  index.owned_ = false;
  index.sources_ = sources;
  index.offsets_ = offsets;
  index.dst_ = dst;
  index.w_ = w;
  return index;
}

void PullIndex::bind_owned() {
  owned_ = true;
  sources_ = sources_store_;
  offsets_ = offsets_store_;
  dst_ = dst_store_;
  w_ = w_store_;
}

PullIndex& PullIndex::operator=(const PullIndex& other) {
  if (this == &other) return *this;
  if (other.owned_) {
    sources_store_ = other.sources_store_;
    offsets_store_ = other.offsets_store_;
    dst_store_ = other.dst_store_;
    w_store_ = other.w_store_;
    bind_owned();
  } else {
    sources_store_.clear();
    offsets_store_.clear();
    dst_store_.clear();
    w_store_.clear();
    owned_ = false;
    sources_ = other.sources_;
    offsets_ = other.offsets_;
    dst_ = other.dst_;
    w_ = other.w_;
  }
  return *this;
}

PullIndex& PullIndex::operator=(PullIndex&& other) noexcept {
  if (this == &other) return *this;
  owned_ = other.owned_;
  sources_store_ = std::move(other.sources_store_);
  offsets_store_ = std::move(other.offsets_store_);
  dst_store_ = std::move(other.dst_store_);
  w_store_ = std::move(other.w_store_);
  sources_ = other.sources_;
  offsets_ = other.offsets_;
  dst_ = other.dst_;
  w_ = other.w_;
  other.owned_ = true;
  other.sources_ = {};
  other.offsets_ = {};
  other.dst_ = {};
  other.w_ = {};
  return *this;
}

std::uint64_t PullIndex::resident_bytes() const noexcept {
  return sources_store_.capacity() * sizeof(VertexId) +
         offsets_store_.capacity() * sizeof(std::uint64_t) +
         dst_store_.capacity() * sizeof(LocalId) +
         w_store_.capacity() * sizeof(Weight);
}

PullIndex::Range PullIndex::find(VertexId s, std::size_t* index) const {
  const auto it = std::lower_bound(sources_.begin(), sources_.end(), s);
  if (it == sources_.end() || *it != s) return Range{};
  const auto i = static_cast<std::size_t>(it - sources_.begin());
  if (index != nullptr) *index = i;
  return Range{offsets_[i], offsets_[i + 1]};
}

std::uint64_t PullIndex::split_at(Range r, Weight delta) const {
  const auto first = w_.begin() + static_cast<std::ptrdiff_t>(r.first);
  const auto last = w_.begin() + static_cast<std::ptrdiff_t>(r.last);
  return static_cast<std::uint64_t>(std::lower_bound(first, last, delta) -
                                    w_.begin());
}

}  // namespace g500::graph
