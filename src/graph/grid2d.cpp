#include "graph/grid2d.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace g500::graph {

ProcessGrid::ProcessGrid(int num_ranks) {
  if (num_ranks < 1) {
    throw std::invalid_argument("ProcessGrid: num_ranks must be >= 1");
  }
  // Factorization closest to square with rows <= cols.
  rows_ = 1;
  for (int r = static_cast<int>(std::sqrt(static_cast<double>(num_ranks)));
       r >= 1; --r) {
    if (num_ranks % r == 0) {
      rows_ = r;
      break;
    }
  }
  cols_ = num_ranks / rows_;
}

SourceBlock::SourceBlock(std::vector<WireEdge> edges) {
  std::sort(edges.begin(), edges.end(),
            [](const WireEdge& a, const WireEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              if (a.weight != b.weight) return a.weight < b.weight;
              return a.dst < b.dst;
            });
  dst_.reserve(edges.size());
  w_.reserve(edges.size());
  for (const auto& e : edges) {
    if (sources_.empty() || sources_.back() != e.src) {
      sources_.push_back(e.src);
      offsets_.push_back(dst_.size());
    }
    dst_.push_back(e.dst);
    w_.push_back(e.weight);
  }
  offsets_.push_back(dst_.size());
}

SourceBlock::Range SourceBlock::find(VertexId source) const {
  const auto it = std::lower_bound(sources_.begin(), sources_.end(), source);
  if (it == sources_.end() || *it != source) return Range{};
  const auto i = static_cast<std::size_t>(it - sources_.begin());
  return Range{offsets_[i], offsets_[i + 1]};
}

std::uint64_t SourceBlock::split_at(Range r, Weight delta) const {
  const auto first = w_.begin() + static_cast<std::ptrdiff_t>(r.first);
  const auto last = w_.begin() + static_cast<std::ptrdiff_t>(r.last);
  return static_cast<std::uint64_t>(std::lower_bound(first, last, delta) -
                                    w_.begin());
}

Dist2DGraph build_2d(simmpi::Comm& comm, const EdgeList& input_slice,
                     VertexId num_vertices) {
  if (num_vertices == 0) {
    throw std::invalid_argument("build_2d: empty vertex set");
  }
  Dist2DGraph g;
  g.grid = ProcessGrid(comm.size());
  g.part = BlockPartition(num_vertices, comm.size());
  g.num_vertices = num_vertices;
  g.num_input_edges =
      comm.allreduce_sum<std::uint64_t>(input_slice.edges.size());

  // Route both directions of every tuple to the edge's checkerboard home.
  const int P = comm.size();
  std::vector<std::vector<WireEdge>> outbox(static_cast<std::size_t>(P));
  for (const auto& e : input_slice.edges) {
    if (e.src == e.dst) continue;
    if (e.src >= num_vertices || e.dst >= num_vertices) {
      throw std::out_of_range("build_2d: edge endpoint >= n");
    }
    const int ou = g.part.owner(e.src);
    const int ov = g.part.owner(e.dst);
    outbox[static_cast<std::size_t>(g.grid.edge_home(ou, ov))].push_back(
        WireEdge{e.src, e.dst, e.weight});
    outbox[static_cast<std::size_t>(g.grid.edge_home(ov, ou))].push_back(
        WireEdge{e.dst, e.src, e.weight});
  }
  std::vector<WireEdge> mine = comm.alltoallv(outbox);
  outbox.clear();

  // Dedup to minimum weight per (src, dst).  Edge homes are deterministic,
  // so all duplicates of a directed edge land on the same rank.
  std::sort(mine.begin(), mine.end(), [](const WireEdge& a, const WireEdge& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.weight < b.weight;
  });
  mine.erase(std::unique(mine.begin(), mine.end(),
                         [](const WireEdge& a, const WireEdge& b) {
                           return a.src == b.src && a.dst == b.dst;
                         }),
             mine.end());

  // Report per-source degrees to the source's owner.
  struct DegreeReport {
    VertexId vertex;
    std::uint64_t degree;
  };
  std::vector<std::vector<DegreeReport>> degree_out(
      static_cast<std::size_t>(P));
  for (std::size_t i = 0; i < mine.size();) {
    std::size_t j = i;
    while (j < mine.size() && mine[j].src == mine[i].src) ++j;
    degree_out[static_cast<std::size_t>(g.part.owner(mine[i].src))].push_back(
        DegreeReport{mine[i].src, j - i});
    i = j;
  }
  const auto degree_in = comm.alltoallv(degree_out);
  g.owned_degree.assign(g.part.count(comm.rank()), 0);
  for (const auto& report : degree_in) {
    g.owned_degree[g.part.local(report.vertex)] += report.degree;
  }

  g.block = SourceBlock(std::move(mine));
  g.num_directed_edges =
      comm.allreduce_sum<std::uint64_t>(g.block.num_edges());
  return g;
}

}  // namespace g500::graph
