// simmpi — a simulated MPI-like SPMD runtime running every rank as a thread
// inside one process.
//
// Why this exists: the paper's substrate is a 107k-node supercomputer.  The
// reproduction runs the *same algorithm code* a real MPI rank would run, but
// transports messages through shared memory, so algorithmic behaviour
// (message volume, round counts, bucket dynamics) is bit-identical to a real
// distributed execution while remaining runnable on one machine.  Every
// collective records the traffic it would have put on a real interconnect
// (see stats.hpp); the net/ and model/ layers map that traffic onto a
// Sunway-like topology to produce scaling projections.
//
// Programming model: bulk-synchronous collectives only (barrier, alltoallv,
// allreduce, allgather[v], broadcast).  Record-scale graph codes aggregate
// all point-to-point traffic into alltoallv rounds anyway — at 40M cores,
// un-aggregated sends are not survivable — so the BSP-only interface is a
// feature, not a shortcut.
//
// Usage:
//   simmpi::World world(8);
//   world.run([&](simmpi::Comm& comm) {
//     std::vector<std::vector<int>> out(comm.size());
//     ... fill out[dst] ...
//     std::vector<int> in = comm.alltoallv(out);
//   });
#pragma once

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "simmpi/fault.hpp"
#include "simmpi/stats.hpp"
#include "simmpi/trace.hpp"
#include "util/random.hpp"

namespace g500::simmpi {

class World;

/// Thrown in surviving ranks when another rank exits with an exception, so
/// the whole SPMD program unwinds instead of deadlocking on a barrier.
class AbortedError : public std::runtime_error {
 public:
  AbortedError() : std::runtime_error("simmpi: peer rank aborted") {}
};

/// One asynchronously delivered point-to-point buffer: an aggregator flush
/// or a quiescence-control message.  Parcels bypass the barrier protocol
/// entirely — the receiver drains them whenever it polls.
struct Parcel {
  int src = -1;
  int tag = 0;
  std::vector<std::byte> bytes;
};

/// Why a parcel was deposited — drives the capacity/timeout flush split in
/// CommStats.
enum class SendReason : std::uint8_t {
  kCapacityFlush,  ///< destination buffer reached its capacity
  kTimeoutFlush,   ///< buffer aged out between polls / idle drain
  kManualFlush,    ///< explicit flush (end of phase)
  kControl,        ///< quiescence token / terminate (not a flush)
};

/// Handle a rank uses to communicate.  One per rank, owned by World; valid
/// only inside World::run.
class Comm {
 public:
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept;

  /// Global synchronization point.
  void barrier();

  /// Personalized all-to-all: out[d] is the data for rank d (out.size() must
  /// equal size()).  Returns the received data concatenated in rank order.
  /// Data for self (out[rank()]) is delivered too but not counted as traffic.
  template <typename T>
  std::vector<T> alltoallv(const std::vector<std::vector<T>>& out);

  /// As above, but keeps per-source boundaries.
  template <typename T>
  std::vector<std::vector<T>> alltoallv_by_src(
      const std::vector<std::vector<T>>& out);

  /// Reduce `value` across all ranks with `op` (must be associative and
  /// commutative); every rank gets the result.  Reduction order is rank
  /// 0..P-1, identical on all ranks, so results are deterministic.
  template <typename T, typename Op>
  T allreduce(T value, Op op);

  /// Sum / min / max conveniences.
  template <typename T>
  T allreduce_sum(T value) {
    return allreduce(value, [](T a, T b) { return a + b; });
  }
  template <typename T>
  T allreduce_min(T value) {
    return allreduce(value, [](T a, T b) { return b < a ? b : a; });
  }
  template <typename T>
  T allreduce_max(T value) {
    return allreduce(value, [](T a, T b) { return a < b ? b : a; });
  }

  /// Logical OR across ranks (any rank true).
  bool allreduce_or(bool value) {
    return allreduce_sum<std::uint32_t>(value ? 1u : 0u) != 0;
  }

  /// Element-wise reduction of equal-length vectors.
  template <typename T, typename Op>
  std::vector<T> allreduce_vec(const std::vector<T>& value, Op op);

  /// Gather one value per rank; every rank receives the full vector.
  template <typename T>
  std::vector<T> allgather(const T& value);

  /// Gather a variable-length vector per rank, concatenated in rank order.
  /// If `offsets` is non-null it receives P+1 prefix offsets.
  template <typename T>
  std::vector<T> allgatherv(const std::vector<T>& value,
                            std::vector<std::size_t>* offsets = nullptr);

  /// Broadcast `value` from `root` to all ranks.
  template <typename T>
  void broadcast(T& value, int root);

  /// Asynchronous point-to-point send: deposit a copy of
  /// [data, data + bytes) into `dst`'s mailbox.  NOT a collective — no
  /// barrier, no rank matching; the receiver sees it at its next
  /// poll_parcels().  Traffic lands in CommStats::p2p (self-sends excluded
  /// from the wire counters, like everywhere else) and `reason` feeds the
  /// capacity/timeout flush split.  The fault injector is consulted like a
  /// collective entry, so planned stalls/crashes can hit a flush.
  void send_parcel(int dst, int tag, const void* data, std::size_t bytes,
                   SendReason reason);

  /// Drain this rank's mailbox (non-blocking; parcels keep per-sender
  /// deposit order).  Throws AbortedError once any rank has failed — async
  /// receive loops poll this instead of sitting in a barrier, so a crashed
  /// peer unwinds them too.
  [[nodiscard]] std::vector<Parcel> poll_parcels();

  /// True when nothing is waiting in this rank's mailbox.
  [[nodiscard]] bool mailbox_empty() const;

  /// This rank's traffic record (reset via World::reset_stats).
  [[nodiscard]] const CommStats& stats() const noexcept { return stats_; }

  /// This rank's collective trace (empty unless World::enable_trace).
  [[nodiscard]] const std::vector<TraceEvent>& trace() const noexcept {
    return trace_;
  }

 private:
  friend class World;
  Comm(World& world, int rank) : world_(&world), rank_(rank) {}

  /// Publish this rank's slot pointer and wait until all ranks have.
  void publish(const void* ptr);
  /// Read rank r's published pointer (only between publish() and release()).
  [[nodiscard]] const void* peer(int r) const;
  /// Signal that this rank is done reading peers' data.
  void release();

  /// Mark the whole world failed with `ep`, then rethrow it.  Collectives
  /// route argument-validation errors and injected crashes through here so
  /// peers observe AbortedError at their next sync even if user code
  /// swallows the exception on the throwing rank — without this, a caught
  /// error would leave the surviving ranks pairing mismatched collectives.
  [[noreturn]] void fail(std::exception_ptr ep);

  /// Fault-injection hook at collective entry: consults the installed
  /// FaultInjector (if any); may throw InjectedCrashError (routed through
  /// fail) and charges injected stall time to stats / the pending trace
  /// event.
  void begin_collective(CollectiveKind kind);

  /// Append a trace event if tracing is on.
  void record(CollectiveKind kind, std::uint64_t bytes) {
    if (trace_enabled_) {
      trace_.push_back(TraceEvent{kind, bytes, stall_pending_});
    }
    stall_pending_ = 0.0;
  }

  World* world_;
  int rank_;
  CommStats stats_;
  bool trace_enabled_ = false;
  bool checksums_enabled_ = false;
  double stall_pending_ = 0.0;
  std::vector<TraceEvent> trace_;
};

/// Owns the simulated machine: N ranks, the shared barrier, the slot array.
class World {
 public:
  /// num_ranks >= 1.  Each rank becomes one OS thread during run().
  explicit World(int num_ranks);

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(comms_.size());
  }

  /// Execute `fn(comm)` once per rank, in parallel.  If any rank throws, the
  /// remaining ranks unwind with AbortedError and the first real exception
  /// is rethrown here.  Statistics accumulate across calls until
  /// reset_stats().
  void run(const std::function<void(Comm&)>& fn);

  /// run() and collect one result per rank.
  template <typename R>
  std::vector<R> run_collect(const std::function<R(Comm&)>& fn) {
    std::vector<R> results(comms_.size());
    run([&](Comm& comm) { results[comm.rank()] = fn(comm); });
    return results;
  }

  [[nodiscard]] const CommStats& rank_stats(int rank) const {
    return comms_.at(rank)->stats_;
  }

  /// Sum of all per-rank records (bytes_to becomes the row-sum vector).
  [[nodiscard]] CommStats aggregate_stats() const;

  void reset_stats();

  /// Start recording per-rank collective traces (cleared by reset_stats).
  void enable_trace(bool enabled = true);

  /// Verify alltoallv payloads end-to-end: the sender attaches a checksum
  /// per destination, the receiver recomputes after the copy.  A mismatch
  /// (i.e. injected or real corruption "on the wire") raises
  /// CorruptionError on every rank of the offending exchange.
  void enable_checksums(bool enabled = true);

  /// Install a deterministic fault schedule (replacing any existing one).
  /// The injector's per-rank counters are monotonic across run() calls, so
  /// a one-shot fault consumed by a failed run does not re-fire on retry.
  /// Call between runs only.
  void set_fault_plan(FaultPlan plan);
  void clear_fault_plan();
  [[nodiscard]] FaultInjector* injector() noexcept { return injector_.get(); }

  /// Merge the per-rank traces into a machine-wide round log.  Throws
  /// std::logic_error if rank sequences diverge (mismatched collectives).
  [[nodiscard]] std::vector<TraceRound> merged_trace() const;

  /// Machine-wide view of the aggregated point-to-point stream (totals and
  /// busiest sender), built from the per-rank CommStats.  The async analog
  /// of merged_trace(): what model::replay_async_trace prices.
  [[nodiscard]] P2pSummary p2p_summary() const;

 private:
  friend class Comm;

  /// One rank's incoming async message queue.
  struct Mailbox {
    std::mutex mutex;
    std::vector<Parcel> queue;
  };

  /// Barrier phase used by every collective; throws AbortedError in
  /// surviving ranks once any rank has failed.
  void sync();

  /// Record `ep` as the run's first error and flip the failed flag (the
  /// world-abort path shared by the run() wrapper, Comm::fail and the
  /// corruption rendezvous).
  void mark_failed(std::exception_ptr ep);

  /// Called by a receiving rank that detected a checksum mismatch on the
  /// payload src -> dst, before the release barrier; first detector wins.
  void flag_corruption(int src, int dst);

  /// After the release barrier of a checksummed alltoallv: raise
  /// CorruptionError on every rank if any link was flagged this round.
  void throw_if_corrupted();

  std::vector<std::unique_ptr<Comm>> comms_;
  std::optional<std::barrier<>> barrier_;  // recreated per run()
  std::vector<const void*> slots_;
  // One mailbox per rank (unique_ptr: std::mutex is immovable).  Cleared at
  // the start of each run() so a failed run's stranded parcels cannot leak
  // into the next.
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;
  std::mutex error_mutex_;

  std::unique_ptr<FaultInjector> injector_;
  std::atomic<bool> corrupted_{false};
  std::atomic<int> corrupt_src_{-1};
  std::atomic<int> corrupt_dst_{-1};
};

// ---------------------------------------------------------------------------
// Template implementations.
// ---------------------------------------------------------------------------

inline int Comm::size() const noexcept { return world_->size(); }

template <typename T>
std::vector<std::vector<T>> Comm::alltoallv_by_src(
    const std::vector<std::vector<T>>& out) {
  static_assert(std::is_trivially_copyable_v<T>,
                "alltoallv payloads must be trivially copyable (they model "
                "wire data)");
  const int P = size();
  if (static_cast<int>(out.size()) != P) {
    fail(std::make_exception_ptr(
        std::invalid_argument("alltoallv: out.size() != world size")));
  }
  begin_collective(CollectiveKind::kAlltoallv);
  std::uint64_t call_bytes = 0;
  for (int d = 0; d < P; ++d) {
    if (d == rank_) continue;
    const std::uint64_t bytes = out[d].size() * sizeof(T);
    call_bytes += bytes;
    stats_.alltoallv.bytes += bytes;
    stats_.bytes_to[d] += bytes;
    if (!out[d].empty()) ++stats_.alltoallv.messages;
  }
  ++stats_.alltoallv.calls;
  record(CollectiveKind::kAlltoallv, call_bytes);

  // What goes "on the wire": the payload plus, when checksums are on, one
  // checksum per destination computed before transmission.
  struct Published {
    const std::vector<std::vector<T>>* data;
    const std::uint64_t* sums;  // per-destination, null when disabled
  };
  std::vector<std::uint64_t> sums;
  if (checksums_enabled_) {
    sums.resize(static_cast<std::size_t>(P));
    for (int d = 0; d < P; ++d) {
      sums[d] = util::hash_bytes(out[d].data(), out[d].size() * sizeof(T));
    }
  }
  const Published pub{&out, checksums_enabled_ ? sums.data() : nullptr};

  publish(&pub);
  std::vector<std::vector<T>> in(P);
  FaultInjector* const faults = world_->injector();
  for (int s = 0; s < P; ++s) {
    const auto& src = *static_cast<const Published*>(peer(s));
    in[s] = (*src.data)[rank_];  // copy: source buffer reused after release()
    if (faults != nullptr && s != rank_) {
      // Wire damage: after the sender's checksum, before verification.
      faults->corrupt_payload(rank_, s, in[s].data(),
                              in[s].size() * sizeof(T));
    }
    if (src.sums != nullptr &&
        util::hash_bytes(in[s].data(), in[s].size() * sizeof(T)) !=
            src.sums[rank_]) {
      world_->flag_corruption(s, rank_);
    }
  }
  release();
  if (checksums_enabled_) world_->throw_if_corrupted();
  return in;
}

template <typename T>
std::vector<T> Comm::alltoallv(const std::vector<std::vector<T>>& out) {
  auto by_src = alltoallv_by_src(out);
  std::size_t total = 0;
  for (const auto& v : by_src) total += v.size();
  std::vector<T> in;
  in.reserve(total);
  for (auto& v : by_src) in.insert(in.end(), v.begin(), v.end());
  return in;
}

template <typename T, typename Op>
T Comm::allreduce(T value, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int P = size();
  begin_collective(CollectiveKind::kAllreduce);
  stats_.allreduce.bytes += sizeof(T);  // logical: one contribution on the wire
  stats_.allreduce.messages += 1;
  ++stats_.allreduce.calls;
  record(CollectiveKind::kAllreduce, sizeof(T));

  publish(&value);
  // Every rank reduces in identical order => identical result bits.
  T result = *static_cast<const T*>(peer(0));
  for (int s = 1; s < P; ++s) {
    result = op(result, *static_cast<const T*>(peer(s)));
  }
  release();
  return result;
}

template <typename T, typename Op>
std::vector<T> Comm::allreduce_vec(const std::vector<T>& value, Op op) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int P = size();
  begin_collective(CollectiveKind::kAllreduce);
  stats_.allreduce.bytes += value.size() * sizeof(T);
  stats_.allreduce.messages += 1;
  ++stats_.allreduce.calls;
  record(CollectiveKind::kAllreduce, value.size() * sizeof(T));

  publish(&value);
  std::vector<T> result = *static_cast<const std::vector<T>*>(peer(0));
  for (int s = 1; s < P; ++s) {
    const auto& contrib = *static_cast<const std::vector<T>*>(peer(s));
    if (contrib.size() != result.size()) {
      release();
      fail(std::make_exception_ptr(
          std::invalid_argument("allreduce_vec: length mismatch")));
    }
    for (std::size_t i = 0; i < result.size(); ++i) {
      result[i] = op(result[i], contrib[i]);
    }
  }
  release();
  return result;
}

template <typename T>
std::vector<T> Comm::allgather(const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int P = size();
  begin_collective(CollectiveKind::kAllgather);
  stats_.allgather.bytes += sizeof(T);
  stats_.allgather.messages += 1;
  ++stats_.allgather.calls;
  record(CollectiveKind::kAllgather, sizeof(T));

  publish(&value);
  std::vector<T> result;
  result.reserve(P);
  for (int s = 0; s < P; ++s) {
    result.push_back(*static_cast<const T*>(peer(s)));
  }
  release();
  return result;
}

template <typename T>
std::vector<T> Comm::allgatherv(const std::vector<T>& value,
                                std::vector<std::size_t>* offsets) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int P = size();
  begin_collective(CollectiveKind::kAllgather);
  stats_.allgather.bytes += value.size() * sizeof(T);
  stats_.allgather.messages += 1;
  ++stats_.allgather.calls;
  record(CollectiveKind::kAllgather, value.size() * sizeof(T));

  publish(&value);
  std::vector<T> result;
  if (offsets != nullptr) {
    offsets->assign(1, 0);
    offsets->reserve(static_cast<std::size_t>(P) + 1);
  }
  std::size_t total = 0;
  for (int s = 0; s < P; ++s) {
    total += static_cast<const std::vector<T>*>(peer(s))->size();
  }
  result.reserve(total);
  for (int s = 0; s < P; ++s) {
    const auto& contrib = *static_cast<const std::vector<T>*>(peer(s));
    result.insert(result.end(), contrib.begin(), contrib.end());
    if (offsets != nullptr) offsets->push_back(result.size());
  }
  release();
  return result;
}

template <typename T>
void Comm::broadcast(T& value, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (root < 0 || root >= size()) {
    fail(std::make_exception_ptr(
        std::invalid_argument("broadcast: bad root rank")));
  }
  begin_collective(CollectiveKind::kBroadcast);
  if (rank_ == root) {
    stats_.broadcast.bytes += sizeof(T);
    stats_.broadcast.messages += static_cast<std::uint64_t>(size()) - 1;
  }
  ++stats_.broadcast.calls;
  record(CollectiveKind::kBroadcast, rank_ == root ? sizeof(T) : 0);

  publish(&value);
  const T result = *static_cast<const T*>(peer(root));
  release();
  value = result;
}

}  // namespace g500::simmpi
