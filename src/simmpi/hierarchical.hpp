// Two-level (supernode-aggregated) personalized all-to-all.
//
// At 40M cores a flat alltoallv creates O(P^2) point-to-point messages per
// round — far beyond what any interconnect sustains.  Record runs aggregate
// hierarchically along the machine topology: ranks are grouped (supernodes
// on Sunway); each message first hops to the member of the *sender's* group
// that proxies the destination group, then travels in one bundled message
// per (group, group) pair, then scatters inside the destination group.
// Message count per round drops from P^2 to ~3 P^2 / G (with G the group
// size) concentrated on far fewer, larger messages, at the cost of each
// byte crossing the network up to three times.
//
// two_level_alltoallv is a drop-in replacement for Comm::alltoallv (same
// delivery contract, different schedule); the SSSP engine exposes it via
// SsspConfig::hierarchical_group.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "simmpi/comm.hpp"

namespace g500::simmpi {

/// Deliver out[d] to rank d for all d, like Comm::alltoallv, but routed in
/// three aggregated phases over groups of `group_size` consecutive ranks.
/// Delivery order within the result differs from flat alltoallv (messages
/// are grouped by proxy, not purely by source rank); callers must not rely
/// on source ordering.  group_size must be >= 1; values <= 1 or >= P fall
/// back to the flat exchange.
template <typename T>
std::vector<T> two_level_alltoallv(Comm& comm,
                                   const std::vector<std::vector<T>>& out,
                                   int group_size) {
  static_assert(std::is_trivially_copyable_v<T>);
  const int P = comm.size();
  if (static_cast<int>(out.size()) != P) {
    throw std::invalid_argument("two_level_alltoallv: out.size() != size()");
  }
  if (group_size <= 1 || group_size >= P) {
    return comm.alltoallv(out);
  }
  const int my_group = comm.rank() / group_size;
  const int num_groups = (P + group_size - 1) / group_size;
  auto group_of = [group_size](int rank) { return rank / group_size; };
  auto group_begin = [group_size](int group) { return group * group_size; };
  auto group_count = [&](int group) {
    return std::min(group_size, P - group_begin(group));
  };
  // Proxy inside group g for destination group h: member h mod |g|.
  auto proxy_rank = [&](int src_group, int dst_group) {
    return group_begin(src_group) + dst_group % group_count(src_group);
  };

  // Every payload carries its final destination across the two hops.
  struct Routed {
    std::int32_t dst;
    T payload;
  };

  // ---- Phase 1: hand each message to this group's proxy for its
  //      destination group (intra-group traffic only).
  std::vector<std::vector<Routed>> stage1(static_cast<std::size_t>(P));
  for (int d = 0; d < P; ++d) {
    const int via = proxy_rank(my_group, group_of(d));
    auto& box = stage1[static_cast<std::size_t>(via)];
    box.reserve(box.size() + out[static_cast<std::size_t>(d)].size());
    for (const T& item : out[static_cast<std::size_t>(d)]) {
      box.push_back(Routed{d, item});
    }
  }
  const std::vector<Routed> gathered = comm.alltoallv(stage1);

  // ---- Phase 2: one bundled message per destination group, sent to that
  //      group's proxy for *our* group (inter-group traffic only).
  std::vector<std::vector<Routed>> stage2(static_cast<std::size_t>(P));
  for (const Routed& item : gathered) {
    const int via = proxy_rank(group_of(item.dst), my_group);
    stage2[static_cast<std::size_t>(via)].push_back(item);
  }
  const std::vector<Routed> landed = comm.alltoallv(stage2);

  // ---- Phase 3: scatter to final destinations inside this group.
  std::vector<std::vector<T>> stage3(static_cast<std::size_t>(P));
  for (const Routed& item : landed) {
    stage3[static_cast<std::size_t>(item.dst)].push_back(item.payload);
  }
  return comm.alltoallv(stage3);
}

}  // namespace g500::simmpi
