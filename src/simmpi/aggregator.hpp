// Message aggregation and distributed quiescence for the asynchronous
// engine path.
//
// The BSP collectives in comm.hpp charge one global synchronization per
// exchange, so an engine built on them pays latency proportional to its
// round count.  The record-run codes this repo models avoid that by
// streaming relaxations through per-destination aggregation buffers
// (Grappa's RDMAAggregator is the canonical design): a message is appended
// locally and leaves the rank only when its buffer fills (capacity flush)
// or ages out (timeout flush).  No rank ever waits for another to make
// progress — the only global question left is "is everyone done?", which a
// Mattern-style four-counter token ring answers without a barrier.
//
// Usage (one Aggregator per rank, inside World::run):
//   Aggregator<Update> agg(comm, opts);
//   agg.send(dst, update);             // buffers; may flush at capacity
//   std::vector<Update> in;
//   agg.poll(in);                      // drain mailbox + age out buffers
//   ...when locally idle...
//   agg.advance_quiescence();          // flush residue + drive the token
//   if (agg.quiescent()) { /* globally done */ }
//
// See docs/async.md for the protocol and its safety argument.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>
#include <vector>

#include "simmpi/comm.hpp"

namespace g500::simmpi {

/// Flush-policy knobs for one Aggregator.
struct AggregatorOptions {
  /// Records buffered per destination before a capacity flush.
  std::size_t capacity = 512;
  /// Poll cycles a non-empty buffer may sit before a timeout flush.
  std::uint64_t max_age = 4;
  /// Parcel tag for data flushes (must be >= 0; negative tags are reserved
  /// for quiescence control).
  int tag = 0;
};

/// Reserved control tags (outside the user range, which is >= 0).
inline constexpr int kQuiescenceTokenTag = -1;
inline constexpr int kQuiescenceTerminateTag = -2;

/// Mattern-style four-counter termination detection over the parcel
/// transport.  Each rank keeps monotone counters of records sent and
/// received; rank 0 circulates a token around the ring accumulating them.
/// The system has terminated when two consecutive waves report the same
/// global (sent, received) pair with sent == received: equality across
/// waves proves no rank did anything between its two report instants, and
/// sent == received proves nothing was in flight at them.  Rank 0 then
/// deposits a terminate parcel to every rank.
///
/// Callers must invoke advance() only while locally idle (no unprocessed
/// input, no unflushed output) — a busy rank simply holds the token, which
/// delays the wave but never falsifies it.
class QuiescenceDetector {
 public:
  explicit QuiescenceDetector(Comm& comm) : comm_(&comm) {}

  /// Record `n` payload records leaving this rank (call before deposit).
  void note_sent(std::uint64_t n) noexcept { sent_ += n; }
  /// Record `n` payload records consumed by this rank.
  void note_received(std::uint64_t n) noexcept { received_ += n; }

  /// Offer a parcel from the mailbox; returns true when it was a control
  /// parcel this detector consumed (token or terminate).
  bool on_control(const Parcel& parcel);

  /// Drive the protocol one step: rank 0 launches a wave when none is in
  /// flight; any rank holding the token stamps its counters and forwards
  /// it.  Only call while locally idle.
  void advance();

  /// True once the terminate decision has reached this rank.
  [[nodiscard]] bool quiescent() const noexcept { return terminated_; }

  /// Completed token round-trips (diagnostic).
  [[nodiscard]] std::uint64_t waves_completed() const noexcept {
    return waves_completed_;
  }

 private:
  /// The payload circulated through kQuiescenceTokenTag parcels.
  struct Token {
    std::uint64_t wave = 0;
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
  };

  void forward(const Token& token, int dst);

  Comm* comm_;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;

  Token held_{};           // token waiting for this rank's idle moment
  bool holding_ = false;
  bool wave_in_flight_ = false;  // rank 0 only
  bool have_prev_ = false;       // rank 0 only
  Token prev_{};                 // rank 0 only: last completed wave
  std::uint64_t next_wave_ = 0;  // rank 0 only
  std::uint64_t waves_completed_ = 0;
  bool terminated_ = false;
};

/// Per-destination aggregation buffers over trivially-copyable records.
/// One per rank; owns a QuiescenceDetector counting its records.
template <typename T>
class Aggregator {
  static_assert(std::is_trivially_copyable_v<T>,
                "aggregated records model wire data");

 public:
  Aggregator(Comm& comm, AggregatorOptions options = {})
      : comm_(&comm), options_(options), detector_(comm) {
    if (options_.tag < 0) {
      throw std::invalid_argument(
          "Aggregator: negative tags are reserved for quiescence control");
    }
    buffers_.resize(static_cast<std::size_t>(comm.size()));
    birth_cycle_.assign(buffers_.size(), 0);
  }

  /// Buffer one record for `dst`; flushes the destination's buffer when it
  /// reaches capacity.
  void send(int dst, const T& record) {
    auto& buf = buffers_[static_cast<std::size_t>(dst)];
    if (buf.empty()) birth_cycle_[static_cast<std::size_t>(dst)] = cycle_;
    buf.push_back(record);
    if (buf.size() >= options_.capacity) {
      flush(dst, SendReason::kCapacityFlush);
    }
  }

  /// Deposit `dst`'s buffer as one parcel (no-op when empty).  The
  /// compactor hook (dedup/coalesce) runs first, so capacity flushes ship
  /// already-compressed payloads.
  void flush(int dst, SendReason reason) {
    auto& buf = buffers_[static_cast<std::size_t>(dst)];
    if (buf.empty()) return;
    if (compactor_) compactor_(buf);
    if (!buf.empty()) {
      detector_.note_sent(buf.size());
      comm_->send_parcel(dst, options_.tag, buf.data(),
                         buf.size() * sizeof(T), reason);
    }
    buf.clear();
  }

  void flush_all(SendReason reason = SendReason::kManualFlush) {
    for (int d = 0; d < static_cast<int>(buffers_.size()); ++d) {
      flush(d, reason);
    }
  }

  /// Drain this rank's mailbox, appending decoded records to `out`.  Also
  /// ages the send buffers: one poll = one cycle, and buffers older than
  /// max_age cycles are timeout-flushed so records cannot linger while the
  /// owner busies itself elsewhere.  Returns the number of records
  /// appended.  Throws AbortedError once any rank has failed.
  std::size_t poll(std::vector<T>& out) {
    ++cycle_;
    for (int d = 0; d < static_cast<int>(buffers_.size()); ++d) {
      const auto& buf = buffers_[static_cast<std::size_t>(d)];
      if (!buf.empty() &&
          cycle_ - birth_cycle_[static_cast<std::size_t>(d)] >=
              options_.max_age) {
        flush(d, SendReason::kTimeoutFlush);
      }
    }
    std::size_t appended = 0;
    for (const Parcel& parcel : comm_->poll_parcels()) {
      if (detector_.on_control(parcel)) continue;
      const std::size_t n = parcel.bytes.size() / sizeof(T);
      const std::size_t old = out.size();
      out.resize(old + n);
      if (n != 0) {
        std::memcpy(out.data() + old, parcel.bytes.data(), n * sizeof(T));
      }
      detector_.note_received(n);
      appended += n;
    }
    return appended;
  }

  /// Records buffered locally, not yet flushed.
  [[nodiscard]] std::size_t pending() const noexcept {
    std::size_t total = 0;
    for (const auto& buf : buffers_) total += buf.size();
    return total;
  }

  /// Call when locally idle: drains any buffered residue (counted as
  /// timeout flushes — the idle drain is the degenerate age-out) and drives
  /// the termination token.
  void advance_quiescence() {
    flush_all(SendReason::kTimeoutFlush);
    detector_.advance();
  }

  [[nodiscard]] bool quiescent() const noexcept {
    return detector_.quiescent();
  }

  /// Install a hook run on each buffer right before it is flushed —
  /// typically dedup/min-coalescing, so the wire carries no redundant
  /// records.  The hook may shrink (even empty) the buffer.
  void set_compactor(std::function<void(std::vector<T>&)> fn) {
    compactor_ = std::move(fn);
  }

  [[nodiscard]] const QuiescenceDetector& detector() const noexcept {
    return detector_;
  }

 private:
  Comm* comm_;
  AggregatorOptions options_;
  QuiescenceDetector detector_;
  std::vector<std::vector<T>> buffers_;
  std::vector<std::uint64_t> birth_cycle_;
  std::uint64_t cycle_ = 0;
  std::function<void(std::vector<T>&)> compactor_;
};

}  // namespace g500::simmpi
